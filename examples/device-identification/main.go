// Device identification: the paper's Fig. 3 scenario. Three users take
// turns on a single shared workstation over 100 minutes; each 1-minute
// window is classified against every profile and the timeline shows that
// the active user's own model holds the longest runs of accepted windows.
package main

import (
	"fmt"
	"log"
	"time"

	"webtxprofile"
)

func main() {
	cfg := webtxprofile.DefaultSynthConfig()
	cfg.Users = 8
	cfg.SmallUsers = 0
	cfg.Devices = 6
	cfg.Weeks = 3
	cfg.Services = 200
	cfg.Archetypes = 8
	cfg.ConfusableUsers = 2
	cfg.WeeklyTxMedian = 1200
	cfg.WeeklyTxSigma = 0.4
	ds, err := webtxprofile.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	set, _, err := webtxprofile.Train(ds, webtxprofile.Config{MaxTrainWindows: 500})
	if err != nil {
		log.Fatal(err)
	}
	users := set.Users()

	// The Fig. 3 cast: three profiled users share one device for 100
	// minutes (40 + 30 + 30).
	cast := []string{users[0], users[len(users)/2], users[len(users)-1]}
	const device = "10.50.0.1"
	start := cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	scenario, err := webtxprofile.GenerateDeviceScenario(cfg, device, start, []webtxprofile.SynthSegment{
		{UserID: cast[0], Offset: 0, Length: 40 * time.Minute},
		{UserID: cast[1], Offset: 40 * time.Minute, Length: 30 * time.Minute},
		{UserID: cast[2], Offset: 70 * time.Minute, Length: 30 * time.Minute},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s for 40min, then %s for 30min, then %s for 30min on %s\n\n",
		cast[0], cast[1], cast[2], device)

	tl, err := set.IdentifyHost(scenario, device)
	if err != nil {
		log.Fatal(err)
	}

	// Render the Fig. 3 timeline: one row per model that accepted at
	// least one window.
	fmt.Printf("%-12s", "actual:")
	for _, pt := range tl {
		mark := byte('?')
		for ci, u := range cast {
			if pt.ActualUser == u {
				mark = byte('1' + ci)
			}
		}
		fmt.Printf("%c", mark)
	}
	fmt.Println()
	for _, u := range users {
		accepted := 0
		line := make([]byte, len(tl))
		for i, pt := range tl {
			line[i] = '.'
			for _, a := range pt.Accepted {
				if a == u {
					line[i] = '#'
					accepted++
				}
			}
		}
		if accepted > 0 {
			fmt.Printf("%-12s%s\n", u+":", line)
		}
	}

	// The consecutive-window rule sketched at the end of Sect. V-B.
	if u, idx, ok := webtxprofile.IdentifyConsecutive(tl, 5); ok {
		fmt.Printf("\nfirst identification: %s after window %d (5 consecutive acceptances, ~%s of monitoring)\n",
			u, idx+1, time.Duration(idx+1)*30*time.Second)
	}
}
