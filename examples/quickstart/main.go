// Quickstart: generate a small synthetic benchmark, train one profile per
// user, and evaluate user differentiation — the paper's Sect. V-A
// experiment in ~30 lines of API use.
package main

import (
	"fmt"
	"log"
	"os"

	"webtxprofile"
)

func main() {
	// 1. A small synthetic enterprise: 8 users on 6 devices, 3 weeks.
	cfg := webtxprofile.DefaultSynthConfig()
	cfg.Users = 8
	cfg.SmallUsers = 2
	cfg.Devices = 6
	cfg.Weeks = 3
	cfg.Services = 200
	cfg.Archetypes = 7
	cfg.ConfusableUsers = 2
	cfg.WeeklyTxMedian = 1200
	cfg.WeeklyTxSigma = 0.5
	ds, err := webtxprofile.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.ComputeStats()
	fmt.Printf("dataset: %d transactions, %d users, %d devices\n",
		stats.Transactions, stats.Users, stats.Hosts)

	// 2. Train with the paper's defaults: 60s windows shifting by 30s,
	//    OC-SVM with a linear kernel, 75/25 chronological split.
	set, test, err := webtxprofile.Train(ds, webtxprofile.Config{MaxTrainWindows: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d profiles (window %s)\n", len(set.Profiles), set.Window)

	// 3. Differentiate: every model against every user's held-out windows.
	cm, err := set.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nacceptance confusion matrix (percent):")
	if err := cm.Format(os.Stdout); err != nil {
		log.Fatal(err)
	}
	mean := cm.Mean()
	fmt.Printf("\nACCself %.1f%%  ACCother %.1f%%  ACC %.1f%%  (paper: ~90%% / 7.3%%)\n",
		100*mean.Self, 100*mean.Other, 100*mean.ACC())
}
