// Continuous authentication: the paper's motivating application (Sect. I).
// A streaming identifier watches one workstation. While the legitimate
// user browses, their identity is confirmed window after window; when a
// different person takes over the keyboard, the identity check fails and
// the session is "logged out".
package main

import (
	"fmt"
	"log"
	"time"

	"webtxprofile"
)

func main() {
	cfg := webtxprofile.DefaultSynthConfig()
	cfg.Users = 8
	cfg.SmallUsers = 0
	cfg.Devices = 6
	cfg.Weeks = 3
	cfg.Services = 200
	cfg.Archetypes = 8
	cfg.ConfusableUsers = 0
	cfg.WeeklyTxMedian = 1200
	cfg.WeeklyTxSigma = 0.4
	ds, err := webtxprofile.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	set, _, err := webtxprofile.Train(ds, webtxprofile.Config{MaxTrainWindows: 500})
	if err != nil {
		log.Fatal(err)
	}
	users := set.Users()
	legit, intruder := users[0], users[len(users)-1]

	// Scenario: the legitimate user works for 20 minutes, then an
	// intruder uses the logged-in session for 10 minutes.
	const device = "10.60.0.1"
	start := cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	scenario, err := webtxprofile.GenerateDeviceScenario(cfg, device, start, []webtxprofile.SynthSegment{
		{UserID: legit, Offset: 0, Length: 20 * time.Minute},
		{UserID: intruder, Offset: 20 * time.Minute, Length: 10 * time.Minute},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session owner: %s; intruder arrives after 20 minutes: %s\n\n", legit, intruder)

	// The continuous-authentication loop: 3 consecutive accepted windows
	// confirm the owner's identity; 3 consecutive windows that the owner's
	// model rejects trigger the automatic logout (the paper suggests this
	// consecutive-window smoothing at the end of Sect. V-B).
	id, err := webtxprofile.NewIdentifier(set, device, 3)
	if err != nil {
		log.Fatal(err)
	}
	authenticated := false
	loggedOut := false
	missStreak := 0
	process := func(events []webtxprofile.Event) {
		for _, ev := range events {
			at := ev.Window.Start.Sub(start).Round(time.Second)
			if !authenticated {
				if ev.Identified == legit {
					authenticated = true
					fmt.Printf("[%8s] session authenticated as %s\n", at, legit)
				}
				continue
			}
			if loggedOut {
				continue
			}
			ownerAccepted := false
			for _, u := range ev.Accepted {
				if u == legit {
					ownerAccepted = true
				}
			}
			if ownerAccepted {
				missStreak = 0
				continue
			}
			missStreak++
			if missStreak >= 3 {
				loggedOut = true
				fmt.Printf("[%8s] identity check FAILED for 3 consecutive windows (last matched %v) -> automatic logout\n",
					at, ev.Accepted)
			}
		}
	}
	for _, tx := range scenario.Transactions {
		events, err := id.Feed(tx)
		if err != nil {
			log.Fatal(err)
		}
		process(events)
	}
	process(id.Flush())

	switch {
	case !authenticated:
		fmt.Println("owner was never authenticated — try more training data")
	case !loggedOut:
		fmt.Println("intruder was not detected — try more distinctive users")
	default:
		fmt.Println("\ncontinuous authentication worked: owner confirmed, intruder evicted.")
	}
}
