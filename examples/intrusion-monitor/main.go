// Intrusion monitoring over the network: the full deployment of the
// paper's Sect. I scenario. A TCP collector (the profiling service)
// receives live transaction logs from a proxy; a multi-device Monitor
// raises an alert whenever observed behaviour stops matching the account
// owner's profile.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"webtxprofile"
)

func main() {
	cfg := webtxprofile.DefaultSynthConfig()
	cfg.Users = 8
	cfg.SmallUsers = 0
	cfg.Devices = 6
	cfg.Weeks = 3
	cfg.Services = 200
	cfg.Archetypes = 8
	cfg.ConfusableUsers = 0
	cfg.WeeklyTxMedian = 1200
	cfg.WeeklyTxSigma = 0.4
	ds, err := webtxprofile.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	set, test, err := webtxprofile.Train(ds, webtxprofile.Config{MaxTrainWindows: 500})
	if err != nil {
		log.Fatal(err)
	}
	// Pick the owner/intruder pair with the least mutual confusion on the
	// held-out windows, so the demo's alert story is unambiguous.
	cm, err := set.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	owner, intruder := cm.Users[0], cm.Users[1]
	best := 3.0
	for i := range cm.Users {
		for j := range cm.Users {
			if i == j || cm.Ratio[i][i] < 0.7 || cm.Ratio[j][j] < 0.7 {
				continue
			}
			if mutual := cm.Ratio[i][j] + cm.Ratio[j][i]; mutual < best {
				best = mutual
				owner, intruder = cm.Users[i], cm.Users[j]
			}
		}
	}

	// Monitoring service: identity transitions become alerts.
	var alertCount atomic.Int64
	mon, err := webtxprofile.NewMonitor(set, 3, func(a webtxprofile.Alert) {
		at := a.Event.Window.Start.Format("15:04:05")
		switch {
		case a.Kind == webtxprofile.AlertIdentified && a.Previous == "":
			fmt.Printf("[%s] device %s: identified %s\n", at, a.Device, a.User)
		case a.Kind == webtxprofile.AlertIdentified:
			alertCount.Add(1)
			fmt.Printf("[%s] device %s: ALERT — %s's session is now used by %s\n",
				at, a.Device, a.Previous, a.User)
		case a.Kind == webtxprofile.AlertLost && a.Event.Window.Start.IsZero():
			alertCount.Add(1)
			fmt.Printf("device %s: ALERT — %s's session ended (device idle, evicted)\n",
				a.Device, a.User)
		case a.Kind == webtxprofile.AlertLost:
			alertCount.Add(1)
			fmt.Printf("[%s] device %s: ALERT — behaviour no longer matches %s\n",
				at, a.Device, a.User)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := webtxprofile.ListenCollector("127.0.0.1:0", func(tx webtxprofile.Transaction) {
		if err := mon.Feed(tx); err != nil {
			log.Printf("feed: %v", err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("monitoring service on %s; account owner %s, intruder %s\n\n", srv.Addr(), owner, intruder)

	// The "proxy": streams a scenario where the intruder takes over the
	// owner's workstation mid-session.
	const device = "10.70.0.1"
	start := cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	scenario, err := webtxprofile.GenerateDeviceScenario(cfg, device, start, []webtxprofile.SynthSegment{
		{UserID: owner, Offset: 0, Length: 15 * time.Minute},
		{UserID: intruder, Offset: 15 * time.Minute, Length: 10 * time.Minute},
	})
	if err != nil {
		log.Fatal(err)
	}
	client, err := webtxprofile.DialCollector(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	for _, tx := range scenario.Transactions {
		if err := client.Send(tx); err != nil {
			log.Fatal(err)
		}
	}
	if err := client.Close(); err != nil {
		log.Fatal(err)
	}

	// Wait for the collector to drain, stop ingestion (Close waits for the
	// connection goroutines, so no Feed is in flight), then flush pending
	// windows.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Received() < int64(scenario.Len()) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	srv.Close()
	mon.Flush()
	mon.Close()
	fmt.Printf("\nprocessed %d transactions over the wire; alerts raised: %d\n",
		srv.Received(), alertCount.Load())
}
