package webtxprofile

import (
	"io"
	"os"
	"time"

	"webtxprofile/internal/core"
	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

// Domain types, re-exported so downstream code only imports this package.
type (
	// Transaction is one augmented proxy-log record.
	Transaction = weblog.Transaction
	// Dataset is an in-memory transaction collection with per-user and
	// per-device views.
	Dataset = weblog.Dataset
	// MediaType is a MIME-style media type split into super/sub-type.
	MediaType = taxonomy.MediaType
	// Reputation is the URL reputation level assigned by the logging
	// service.
	Reputation = taxonomy.Reputation
	// WindowConfig holds the sliding-window parameters (duration D,
	// shift S).
	WindowConfig = features.WindowConfig
	// Window is one aggregated transaction window.
	Window = features.Window
	// Config parameterizes Train; its zero value selects the paper's
	// defaults (D=60s, S=30s, OC-SVM, linear kernel, ν=0.1, 75/25 split).
	Config = core.Config
	// Profile is one user's trained profile.
	Profile = core.Profile
	// ProfileSet is the trained artifact: vocabulary + one model per user.
	ProfileSet = core.ProfileSet
	// Identifier streams transactions from one device and reports which
	// profiled user is at the keyboard.
	Identifier = core.Identifier
	// Event is one streaming identification step.
	Event = core.Event
	// ConfusionMatrix is the differentiation result (Table V shape).
	ConfusionMatrix = eval.ConfusionMatrix
	// Acceptance is the (ACC_self, ACC_other) pair with ACC() = their
	// difference.
	Acceptance = eval.Acceptance
	// TimelinePoint is one step of a device-identification timeline.
	TimelinePoint = eval.TimelinePoint
	// Kernel selects and parameterizes a kernel function.
	Kernel = svm.Kernel
	// Algorithm selects the one-class classifier family.
	Algorithm = svm.Algorithm
	// Model is a trained one-class classifier.
	Model = svm.Model
	// Monitor tracks every device in a transaction stream and raises
	// Alerts on identity transitions — the reusable core of the
	// continuous-authentication daemon. Devices are lock-striped across
	// shards; alerts are delivered from a dedicated goroutine.
	Monitor = core.Monitor
	// MonitorConfig tunes the monitor's sharding, idle-device eviction
	// and alert buffering.
	MonitorConfig = core.MonitorConfig
	// Alert is one identity transition on a monitored device.
	Alert = core.Alert
	// AlertKind distinguishes identification from identity loss.
	AlertKind = core.AlertKind
	// Refresher retrains profiles on recently observed windows to track
	// behavioural drift.
	Refresher = core.Refresher
	// RefresherConfig bounds the refresh buffers.
	RefresherConfig = core.RefresherConfig
	// StateStore persists evicted devices' identification state so idle
	// eviction, shard handoff and process restarts keep window buffers
	// and consecutive-accept streaks.
	StateStore = core.StateStore
	// MemStateStore is the in-process StateStore.
	MemStateStore = core.MemStateStore
	// DiskStateStore is the directory-backed gzip-JSON StateStore.
	DiskStateStore = core.DiskStateStore
	// IdentifierState is a serializable streaming-identifier snapshot.
	IdentifierState = core.IdentifierState
	// DeviceState is the portable per-device monitor state (identifier
	// snapshot plus confirmed identity), the unit StateStores hold.
	DeviceState = core.DeviceState
	// KernelMode selects the fused scoring engine's kernel
	// implementations (MonitorConfig.ScoringKernels): auto-resolved or
	// forced portable. Every engine is bit-identical in float64 mode.
	KernelMode = svm.KernelMode
	// SynthConfig parameterizes synthetic benchmark generation.
	SynthConfig = synth.Config
	// SynthSegment is one user-interval of a device scenario.
	SynthSegment = synth.Segment
)

// Algorithms.
const (
	// OCSVM is the ν-one-class SVM of Schölkopf et al.
	OCSVM = svm.OCSVM
	// SVDD is the Support Vector Data Description of Tax & Duin.
	SVDD = svm.SVDD
)

// Kernel engine modes.
const (
	// KernelsAuto resolves to the fastest scoring engine the CPU
	// supports (the packed AVX-512 kernels, else the Go lane kernels).
	KernelsAuto = svm.KernelsAuto
	// KernelsPortable forces the per-posting reference loops.
	KernelsPortable = svm.KernelsPortable
)

// Alert kinds.
const (
	// AlertIdentified fires when a user reaches the consecutive-window
	// threshold on a device.
	AlertIdentified = core.AlertIdentified
	// AlertLost fires when a confirmed identity stops matching.
	AlertLost = core.AlertLost
)

// Reputation levels.
const (
	Unverified  = taxonomy.Unverified
	MinimalRisk = taxonomy.MinimalRisk
	MediumRisk  = taxonomy.MediumRisk
	HighRisk    = taxonomy.HighRisk
)

// Kernel constructors.
var (
	// LinearKernel returns the linear kernel k(x,y) = x·y.
	LinearKernel = svm.Linear
	// RBFKernel returns the Gaussian kernel with parameter γ.
	RBFKernel = svm.RBF
	// PolyKernel returns the polynomial kernel (γ·x·y + c₀)^d.
	PolyKernel = svm.Poly
	// SigmoidKernel returns tanh(γ·x·y + c₀).
	SigmoidKernel = svm.Sigmoid
)

// ReadLog parses a transaction log stream into a dataset.
func ReadLog(r io.Reader) (*Dataset, error) {
	return weblog.NewReader(r).ReadAll()
}

// ReadLogFile parses a transaction log file into a dataset.
func ReadLogFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLog(f)
}

// WriteLog writes a dataset in the self-describing log-line format.
func WriteLog(w io.Writer, ds *Dataset) error {
	return weblog.WriteDataset(w, ds)
}

// Train runs the full pipeline of the paper on a raw dataset: drop
// under-represented users, split each user's history chronologically,
// build the data-driven feature vocabulary, window, optionally grid-search
// per-user parameters, and fit one model per user. It returns the trained
// set and the held-out test dataset.
func Train(ds *Dataset, cfg Config) (*ProfileSet, *Dataset, error) {
	return core.Train(ds, cfg)
}

// BuildProfiles trains on an already-prepared training corpus (no
// filtering or splitting).
func BuildProfiles(train *Dataset, cfg Config) (*ProfileSet, error) {
	return core.BuildProfiles(train, cfg)
}

// LoadProfiles restores a profile set saved with ProfileSet.Save.
func LoadProfiles(r io.Reader) (*ProfileSet, error) {
	return core.Load(r)
}

// LoadProfilesFile restores a profile set from a file written with
// ProfileSet.SaveFile.
func LoadProfilesFile(path string) (*ProfileSet, error) {
	return core.LoadFile(path)
}

// NewIdentifier creates a streaming identifier for one device;
// consecutiveK consecutive accepted windows identify a user.
func NewIdentifier(set *ProfileSet, host string, consecutiveK int) (*Identifier, error) {
	return core.NewIdentifier(set, host, consecutiveK)
}

// NewMonitor creates a multi-device monitor over a trained profile set
// with the default configuration; alerts receives every identity
// transition.
func NewMonitor(set *ProfileSet, consecutiveK int, alerts func(Alert)) (*Monitor, error) {
	return core.NewMonitor(set, consecutiveK, alerts)
}

// NewMonitorWithConfig creates a monitor with explicit shard count, idle
// eviction TTL and alert buffering.
func NewMonitorWithConfig(set *ProfileSet, consecutiveK int, alerts func(Alert), cfg MonitorConfig) (*Monitor, error) {
	return core.NewMonitorWithConfig(set, consecutiveK, alerts, cfg)
}

// NewRefresher wraps a profile set for drift-tracking retrains.
func NewRefresher(set *ProfileSet, cfg RefresherConfig) (*Refresher, error) {
	return core.NewRefresher(set, cfg)
}

// NewMemStateStore returns an in-memory identifier-state store: evicted
// devices survive eviction (bounding live identifier memory) but not the
// process.
func NewMemStateStore() *MemStateStore {
	return core.NewMemStateStore()
}

// NewDiskStateStore opens (creating if needed) a directory-backed
// identifier-state store whose spilled device states survive process
// restarts — the backing for profilerd's -state-dir.
func NewDiskStateStore(dir string) (*DiskStateStore, error) {
	return core.NewDiskStateStore(dir)
}

// RestoreIdentifier rebuilds a streaming identifier from a snapshot taken
// with Identifier.Snapshot, resuming the exact event sequence.
func RestoreIdentifier(set *ProfileSet, st IdentifierState) (*Identifier, error) {
	return core.RestoreIdentifier(set, st)
}

// IdentifyConsecutive applies the consecutive-window identification rule
// to a batch timeline.
func IdentifyConsecutive(tl []TimelinePoint, k int) (user string, windowIdx int, ok bool) {
	return eval.IdentifyConsecutive(tl, k)
}

// DefaultSynthConfig returns the paper-shaped synthetic benchmark
// configuration (36 users, 35 devices, 26 weeks).
func DefaultSynthConfig() SynthConfig {
	return synth.DefaultConfig()
}

// GenerateDataset produces a synthetic benchmark dataset — the substitute
// for the vendor's proprietary corpus (see DESIGN.md).
func GenerateDataset(cfg SynthConfig) (*Dataset, error) {
	g, err := synth.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

// GenerateDeviceScenario produces a Fig. 3-style workload: the listed
// users take turns on one device, each interval filled with that user's
// regular browsing behaviour.
func GenerateDeviceScenario(cfg SynthConfig, device string, start time.Time, segments []SynthSegment) (*Dataset, error) {
	g, err := synth.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return g.GenerateDeviceScenario(device, start, segments)
}
