// Package webtxprofile profiles the users of a network from their web
// transactions, reproducing "Profiling Users by Modeling Web Transactions"
// (Tomšů, Marchal, Asokan — ICDCS 2017).
//
// A web transaction is one proxy-logged HTTP(S) request augmented with
// service knowledge (website category, application type, media type, URL
// reputation). The library turns sequences of transactions into sliding
// bag-of-words feature windows, fits a one-class classifier (ν-OC-SVM or
// SVDD, solved from scratch with an SMO solver) per user, and uses the
// per-user models to differentiate and identify users — including live,
// streaming identification for continuous authentication.
//
// # Quick start
//
//	ds, err := webtxprofile.ReadLogFile("proxy.log")
//	// handle err
//	set, test, err := webtxprofile.Train(ds, webtxprofile.Config{})
//	// handle err
//	cm, err := set.Evaluate(test)
//	// handle err
//	fmt.Println(cm.Mean()) // ACC_self / ACC_other / ACC
//
// # Streaming identification engine
//
// The live path — the proxy-side daemon of the paper's deployment
// scenario — is a sharded, allocation-lean engine:
//
//   - Every kernel of the paper factors through the dot product x·y —
//     linear and sigmoid directly, polynomial via (γ·x·y+c₀)^d, and RBF
//     via ‖x−y‖² = ‖x‖²+‖y‖²−2x·y with cached support-vector norms — so no
//     decision pays a per-support-vector sparse-sparse merge join: linear
//     models precompute the dense weight vector w = Σᵢ αᵢxᵢ (one O(nnz(x))
//     dot product per decision), and polynomial/RBF/sigmoid models carry
//     an inverted support-vector index that yields all SV dot products in
//     one pass over the window's non-zeros before a scalar kernel loop.
//   - Multi-model scoring fuses the whole population into one shared
//     inverted index (svm.FusedIndex): the postings of every model's
//     weight vector and support vectors are merged per feature, so a
//     single pass over a window's ~20 non-zeros accumulates every
//     profile's dot products at once instead of U separate index walks.
//     Layered decision screening (Cauchy–Schwarz norm bounds, then
//     transcendental-free per-support-vector bounds on the kernel sum)
//     proves most models cannot accept the window without running their
//     scalar kernel loops. The index is immutable after construction and
//     shared read-only across monitor shards; each shard carries only
//     per-window scratch (svm.Scorer). An optional float32 postings mode
//     (MonitorConfig.Float32Scoring) halves index memory, with the
//     float64 divergence certified per decision by
//     svm.Float32DecisionBound; the default stays exact float64, whose
//     accept/reject decisions are bit-identical to the per-model engine.
//   - The fused postings are laid out cache-blocked in fixed-width
//     zero-padded lanes, consumed by interchangeable kernel engines:
//     packed AVX-512 assembly where the CPU supports it, straight-line Go
//     lane kernels elsewhere, and portable reference loops on demand
//     (MonitorConfig.ScoringKernels, profilerd -score-portable). Engine
//     choice is pure mechanism — decisions are bit-identical across all
//     of them, in float64 and float32 alike, a property pinned by a
//     differential fuzz target and a monitor-level alert-equivalence
//     suite. Daemons log the resolved engine and the index footprint
//     (svm.FusedIndex.Footprint) at startup.
//   - Per-user grid searches share one Gram matrix across all ν/C cells of
//     a (user, kernel) row — the kernel matrix depends only on the kernel
//     and the training windows — cutting the search's kernel evaluations
//     by over an order of magnitude.
//   - The Monitor lock-stripes devices across configurable shards
//     (MonitorConfig.Shards); each device hashes to one shard, preserving
//     per-device event order while devices on different shards feed in
//     parallel (Feed or the batched FeedBatch, whose bounded worker pool —
//     MonitorConfig.BatchWorkers — scores the windows completed within a
//     batch concurrently across shards).
//   - Alerts are delivered in enqueue order from a dedicated goroutine
//     rather than under a lock; Flush waits for delivery, Close stops the
//     engine.
//   - Devices idle longer than MonitorConfig.IdleTTL (in stream time) are
//     evicted, bounding tracked-device memory.
//
// # Ingest queue and backpressure
//
// The collector's connections do not call the handler themselves: every
// connection parses its lines (or binary records — DialCollectorBinary
// switches a sender to length-prefixed weblog binary records, decoded
// zero-copy) and feeds one bounded multi-producer single-consumer
// queue; a single consumer goroutine invokes the handler, so handlers
// need no locking and per-connection transaction order is preserved
// end to end. The queue (CollectorBatchConfig.QueueDepth, default
// 4×MaxBatch) is the backpressure contract: when the consumer falls
// behind, enqueues block, the connection goroutines stop reading, and
// the stall propagates through TCP flow control back to the proxies —
// the collector never buffers unboundedly and never drops a parsed
// transaction. Batch delivery (ListenCollectorBatch) rides the same
// queue, pairing with FeedBatch so each shard lock is taken once per
// batch; a size-capped batch flushes immediately, a partial batch after
// FlushInterval. The steady-state feed path — ParseLine through feature
// extraction into the shard loop — is allocation-free once warm,
// gated by testing.AllocsPerRun tests at every layer.
//
// # Durable identifier state
//
// The full streaming-identification state is serializable at every layer:
// a features.Streamer snapshots its window anchor, buffered transactions
// and emit position; an Identifier adds its per-user consecutive-accept
// streaks (keyed by user id, so snapshots survive profile retrains); a
// Monitor wraps that with the confirmed identity per device. The state
// moves through a small lifecycle:
//
//	live ──(idle eviction with MonitorConfig.Spill)──► spilled ──(next
//	transaction)──► rehydrated — or, between processes, exported
//	(Monitor.ExportShard) ──► imported (Monitor.ImportShard).
//
// A StateStore holds spilled devices: NewMemStateStore keeps them
// in-process (eviction bounds live identifier memory without losing
// streaks), NewDiskStateStore persists one gzip-JSON file per device so
// state survives restarts (profilerd's -state-dir; Monitor.Checkpoint
// spills every live device for a graceful shutdown). Resume is exact:
// an evicting-and-rehydrating monitor emits the identical alert sequence
// to a never-evicting one, and ExportShard→ImportShard preserves every
// device's pending windows and streaks — both properties are asserted by
// tests. Serialized state carries a format version, checked on decode
// like the profile bundle's.
//
// # Multi-node clustering
//
// Past one process, the engine scales out over the shard-handoff
// primitives: ClusterNodes each run a sharded Monitor over the same
// trained bundle and speak a length-prefixed wire protocol (versioned
// per connection: JSON v1 for compatibility, compact binary v2 — feeds
// as zero-copy binary transaction records — negotiated in the hello
// exchange; handoffs travel as the versioned state blobs above in both,
// plus an alert push stream), and a ClusterRouter fronts them.
//
// The router's placement guarantee: every device is owned by the member
// with the highest rendezvous-hash score for it, so a membership change
// moves only the devices whose top score shifts — AddNode drains an
// expected 1/n of the population onto the new node, RemoveNode drains
// exactly the removed node's devices, and nothing else is touched. The
// routing table stays authoritative over the hash: a failed drain leaves
// the devices on their old owner with their state intact.
//
// The router's drain guarantee: a drained device moves whole (window
// buffer, streaks, confirmed identity), transactions arriving mid-drain
// are buffered and replayed to the new owner in arrival order, and the
// old owner's alerts are delivered before the new owner's. Net effect,
// asserted by the internal cluster equivalence suites under -race: the
// cluster's per-device alert sequences are byte-identical to a single
// never-resharded Monitor, through any sequence of membership changes.
// Alerts fan in to the router tagged with their origin node (NodeAlert).
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the experiment-by-experiment reproduction map.
package webtxprofile
