// Package webtxprofile profiles the users of a network from their web
// transactions, reproducing "Profiling Users by Modeling Web Transactions"
// (Tomšů, Marchal, Asokan — ICDCS 2017).
//
// A web transaction is one proxy-logged HTTP(S) request augmented with
// service knowledge (website category, application type, media type, URL
// reputation). The library turns sequences of transactions into sliding
// bag-of-words feature windows, fits a one-class classifier (ν-OC-SVM or
// SVDD, solved from scratch with an SMO solver) per user, and uses the
// per-user models to differentiate and identify users — including live,
// streaming identification for continuous authentication.
//
// # Quick start
//
//	ds, err := webtxprofile.ReadLogFile("proxy.log")
//	// handle err
//	set, test, err := webtxprofile.Train(ds, webtxprofile.Config{})
//	// handle err
//	cm, err := set.Evaluate(test)
//	// handle err
//	fmt.Println(cm.Mean()) // ACC_self / ACC_other / ACC
//
// # Streaming identification engine
//
// The live path — the proxy-side daemon of the paper's deployment
// scenario — is a sharded, allocation-lean engine:
//
//   - Linear-kernel models precompute the dense weight vector w = Σᵢ αᵢxᵢ,
//     so each decision is one O(nnz(x)) sparse-dense dot product instead
//     of a per-support-vector kernel sum; a batch scorer evaluates one
//     window against every profile with reusable scratch buffers.
//   - The Monitor lock-stripes devices across configurable shards
//     (MonitorConfig.Shards); each device hashes to one shard, preserving
//     per-device event order while devices on different shards feed in
//     parallel (Feed or the batched FeedBatch).
//   - Alerts are delivered in enqueue order from a dedicated goroutine
//     rather than under a lock; Flush waits for delivery, Close stops the
//     engine.
//   - Devices idle longer than MonitorConfig.IdleTTL (in stream time) are
//     flushed and evicted, bounding tracked-device memory.
//
// The collector can deliver parsed transactions in batches
// (ListenCollectorBatch), pairing with FeedBatch so each shard lock is
// taken once per batch.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the experiment-by-experiment reproduction map.
package webtxprofile
