// Package webtxprofile profiles the users of a network from their web
// transactions, reproducing "Profiling Users by Modeling Web Transactions"
// (Tomšů, Marchal, Asokan — ICDCS 2017).
//
// A web transaction is one proxy-logged HTTP(S) request augmented with
// service knowledge (website category, application type, media type, URL
// reputation). The library turns sequences of transactions into sliding
// bag-of-words feature windows, fits a one-class classifier (ν-OC-SVM or
// SVDD, solved from scratch with an SMO solver) per user, and uses the
// per-user models to differentiate and identify users — including live,
// streaming identification for continuous authentication.
//
// # Quick start
//
//	ds, err := webtxprofile.ReadLogFile("proxy.log")
//	// handle err
//	set, test, err := webtxprofile.Train(ds, webtxprofile.Config{})
//	// handle err
//	cm, err := set.Evaluate(test)
//	// handle err
//	fmt.Println(cm.Mean()) // ACC_self / ACC_other / ACC
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the experiment-by-experiment reproduction map.
package webtxprofile
