// Benchmarks regenerating every table and figure of the paper (Tables
// I–V, Figures 1–5) at a compact scale, plus micro-benchmarks for the
// pipeline stages the paper times (feature composition, Fig. 5; window
// prediction, Fig. 4). Run with:
//
//	go test -bench=. -benchmem .
package webtxprofile_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webtxprofile"
	"webtxprofile/internal/experiments"
	"webtxprofile/internal/features"
	"webtxprofile/internal/grid"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/weblog"
)

// benchEnv is the shared experiment environment, built once on first use.
var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := experiments.SmallScale(1)
		// Compact further so every bench iteration stays sub-second.
		scale.Synth.Users = 8
		scale.Synth.SmallUsers = 2
		scale.Synth.Devices = 6
		scale.Synth.Weeks = 3
		scale.Synth.Services = 200
		scale.Synth.Archetypes = 6
		scale.Synth.ConfusableUsers = 2
		scale.Synth.WeeklyTxMedian = 1200
		scale.Synth.WeeklyTxSigma = 0.4
		scale.NoveltyWeeks = []int{1, 2}
		scale.GridTrainCap = 120
		scale.GridOtherCap = 40
		scale.FinalTrainCap = 200
		scale.EvalCap = 150
		scale.Params = []float64{0.5, 0.1}
		scale.Combos = []features.WindowConfig{
			experiments.RetainedWindow(),
			{Duration: 5 * time.Minute, Shift: time.Minute},
		}
		env, err := experiments.NewEnv(scale)
		if err != nil {
			panic(err)
		}
		benchEnvVal = env
	})
	return benchEnvVal
}

func benchTable(b *testing.B, fn func(*experiments.Env) (*experiments.Table, error)) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Vocabulary regenerates Table I (feature composition).
func BenchmarkTable1Vocabulary(b *testing.B) { benchTable(b, experiments.Table1) }

// BenchmarkFigure1Novelty regenerates Fig. 1 (per-field novelty curves).
func BenchmarkFigure1Novelty(b *testing.B) { benchTable(b, experiments.Figure1) }

// BenchmarkFigure2WindowNovelty regenerates Fig. 2 (window novelty).
func BenchmarkFigure2WindowNovelty(b *testing.B) { benchTable(b, experiments.Figure2) }

// BenchmarkTable2WindowGrid regenerates Table II (the D/S grid search).
func BenchmarkTable2WindowGrid(b *testing.B) { benchTable(b, experiments.Table2) }

// BenchmarkTable3KernelGrid regenerates Table III (kernel × ν/C grid for
// one user).
func BenchmarkTable3KernelGrid(b *testing.B) {
	benchTable(b, func(e *experiments.Env) (*experiments.Table, error) {
		return experiments.Table3(e, "")
	})
}

// BenchmarkTable4Acceptance regenerates Table IV (averaged acceptance
// across window combinations, optimized parameters).
func BenchmarkTable4Acceptance(b *testing.B) { benchTable(b, experiments.Table4) }

// BenchmarkTable5Confusion regenerates Table V (the full confusion
// matrix).
func BenchmarkTable5Confusion(b *testing.B) { benchTable(b, experiments.Table5) }

// BenchmarkFigure3Identification regenerates Fig. 3 (multi-user device
// timeline).
func BenchmarkFigure3Identification(b *testing.B) { benchTable(b, experiments.Figure3) }

// BenchmarkFigure5Composition regenerates Fig. 5 (composition-time
// scaling).
func BenchmarkFigure5Composition(b *testing.B) { benchTable(b, experiments.Figure5) }

// benchModel returns a trained model and probe vectors for the prediction
// benches.
func benchModel(b *testing.B, algo svm.Algorithm) (*svm.Model, []features.Window) {
	b.Helper()
	env := benchEnv(b)
	models, err := env.Models(algo)
	if err != nil {
		b.Fatal(err)
	}
	testWs, err := env.TestWindows()
	if err != nil {
		b.Fatal(err)
	}
	u := env.Users[len(env.Users)/2]
	ws := testWs[u]
	if len(ws) == 0 {
		b.Fatal("no probe windows")
	}
	return models[u], ws
}

// BenchmarkFigure4PredictOCSVM measures single-window OC-SVM decisions —
// the left box of Fig. 4 (paper: < 100µs).
func BenchmarkFigure4PredictOCSVM(b *testing.B) {
	m, ws := benchModel(b, svm.OCSVM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decision(ws[i%len(ws)].Vector)
	}
}

// BenchmarkFigure4PredictSVDD measures single-window SVDD decisions — the
// right box of Fig. 4 (paper: faster than OC-SVM).
func BenchmarkFigure4PredictSVDD(b *testing.B) {
	m, ws := benchModel(b, svm.SVDD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decision(ws[i%len(ws)].Vector)
	}
}

// BenchmarkAblationFlow regenerates the flow/Markov feature-family
// ablation.
func BenchmarkAblationFlow(b *testing.B) { benchTable(b, experiments.AblationFlow) }

// BenchmarkAblationFeatures regenerates the feature-knockout ablation.
func BenchmarkAblationFeatures(b *testing.B) { benchTable(b, experiments.AblationFeatures) }

// BenchmarkExtensionAlgorithms regenerates the algorithm-family extension
// (OC-SVM vs SVDD vs autoencoder).
func BenchmarkExtensionAlgorithms(b *testing.B) { benchTable(b, experiments.ExtensionAlgorithms) }

// BenchmarkExtensionTrainingEpoch regenerates the training-epoch sweep.
func BenchmarkExtensionTrainingEpoch(b *testing.B) { benchTable(b, experiments.ExtensionTrainingEpoch) }

// BenchmarkExtensionROC regenerates the per-user AUC sweep.
func BenchmarkExtensionROC(b *testing.B) { benchTable(b, experiments.ExtensionROC) }

// BenchmarkExtensionLatency regenerates the time-to-identification table.
func BenchmarkExtensionLatency(b *testing.B) {
	benchTable(b, experiments.ExtensionIdentificationLatency)
}

// BenchmarkExtractTransaction measures single-transaction feature
// extraction (the per-record cost inside Fig. 5's curve).
func BenchmarkExtractTransaction(b *testing.B) {
	env := benchEnv(b)
	txs := env.Train.Transactions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Vocab.Extract(&txs[i%len(txs)])
	}
}

// BenchmarkComposeWindows measures sliding-window composition over one
// user's training epoch at D=60s/S=30s.
func BenchmarkComposeWindows(b *testing.B) {
	env := benchEnv(b)
	txs := env.Train.UserTransactions(env.Users[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.Compose(env.Vocab, experiments.RetainedWindow(), txs, "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainOCSVM measures fitting one user model (200 windows,
// linear kernel, ν=0.1).
func BenchmarkTrainOCSVM(b *testing.B) {
	benchTrain(b, svm.OCSVM, 0.1)
}

// BenchmarkTrainSVDD measures fitting one SVDD model (200 windows, linear
// kernel, C=0.5).
func BenchmarkTrainSVDD(b *testing.B) {
	benchTrain(b, svm.SVDD, 0.5)
}

func benchTrain(b *testing.B, algo svm.Algorithm, param float64) {
	b.Helper()
	env := benchEnv(b)
	trainWs, err := env.TrainWindows()
	if err != nil {
		b.Fatal(err)
	}
	ws := trainWs[env.Users[0]]
	if len(ws) > 200 {
		ws = ws[:200]
	}
	vecs := features.Vectors(ws)
	cfg := svm.TrainConfig{Kernel: svm.Linear(), CacheMB: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(algo, vecs, param, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogParse measures log-line parsing throughput.
func BenchmarkLogParse(b *testing.B) {
	env := benchEnv(b)
	line := env.Train.Transactions[0].MarshalLine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weblog.ParseLine(line); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticModel hand-assembles a one-class model with nsv random support
// vectors (window-shaped: ~20 non-zeros over 800 columns) plus probe
// vectors; Validate populates the kernel fast paths (weight vector for
// linear, inverted SV index otherwise).
func syntheticModel(b *testing.B, kernel svm.Kernel, nsv int) (*svm.Model, []sparse.Vector) {
	b.Helper()
	r := rand.New(rand.NewSource(int64(nsv)))
	randVec := func(dim, nnz int) sparse.Vector {
		dense := make(map[int]float64, nnz)
		for len(dense) < nnz {
			dense[r.Intn(dim)] = 0.1 + r.Float64()
		}
		return sparse.New(dense)
	}
	m := &svm.Model{Algo: svm.OCSVM, Kernel: kernel, Param: 0.1, TrainSize: nsv, Rho: 1}
	for i := 0; i < nsv; i++ {
		m.SVs = append(m.SVs, randVec(800, 20))
		m.Coef = append(m.Coef, 0.01+r.Float64())
	}
	if err := m.Validate(); err != nil {
		b.Fatal(err)
	}
	probes := make([]sparse.Vector, 256)
	for i := range probes {
		probes[i] = randVec(800, 20)
	}
	return m, probes
}

// syntheticLinearModel keeps the linear-specific call sites readable.
func syntheticLinearModel(b *testing.B, nsv int) (*svm.Model, []sparse.Vector) {
	return syntheticModel(b, svm.Linear(), nsv)
}

// BenchmarkDecisionLinear compares the precomputed-weight-vector fast path
// against the per-support-vector kernel sum at growing support-vector
// counts — the tentpole speedup: the fast path is O(nnz(x)) regardless of
// the SV count, the generic path O(#SVs × nnz).
func BenchmarkDecisionLinear(b *testing.B) {
	for _, nsv := range []int{50, 200, 800} {
		m, probes := syntheticLinearModel(b, nsv)
		b.Run(fmt.Sprintf("fast/svs=%d", nsv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Decision(probes[i%len(probes)])
			}
		})
		b.Run(fmt.Sprintf("generic/svs=%d", nsv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.DecisionGeneric(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkDecisionKernels compares the inverted-SV-index decision against
// the per-support-vector merge-join sum for the non-linear kernel family —
// the tentpole speedup of the dot-product-factored engine: one pass over
// the window's non-zeros yields all SV dot products, then a scalar loop
// applies the kernel, instead of one sparse-sparse merge join per SV.
func BenchmarkDecisionKernels(b *testing.B) {
	kernels := []struct {
		name string
		k    svm.Kernel
	}{
		{"poly", svm.Poly(1.0/800, 0, 3)},
		{"rbf", svm.RBF(1.0 / 800)},
		{"sigmoid", svm.Sigmoid(1.0/800, 0)},
	}
	for _, kc := range kernels {
		for _, nsv := range []int{50, 500} {
			m, probes := syntheticModel(b, kc.k, nsv)
			b.Run(fmt.Sprintf("%s/indexed/svs=%d", kc.name, nsv), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.Decision(probes[i%len(probes)])
				}
			})
			b.Run(fmt.Sprintf("%s/generic/svs=%d", kc.name, nsv), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.DecisionGeneric(probes[i%len(probes)])
				}
			})
		}
	}
}

// BenchmarkDecisionBatch measures one window scored against a fleet of
// linear models through the batch scorer — the per-window cost of the
// streaming identification loop.
func BenchmarkDecisionBatch(b *testing.B) {
	const fleet = 32
	models := make([]*svm.Model, fleet)
	var probes []sparse.Vector
	for i := range models {
		models[i], probes = syntheticLinearModel(b, 60+i)
	}
	sc := svm.NewScorer(models)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Decisions(probes[i%len(probes)])
	}
}

// monitorBenchSet trains a compact profile set once for the monitor feed
// benchmarks.
var (
	monitorSetOnce sync.Once
	monitorSetVal  *webtxprofile.ProfileSet
	monitorSetErr  error
)

func monitorBenchSet(b *testing.B) *webtxprofile.ProfileSet {
	b.Helper()
	env := benchEnv(b)
	monitorSetOnce.Do(func() {
		monitorSetVal, monitorSetErr = webtxprofile.BuildProfiles(env.Train, webtxprofile.Config{
			MaxTrainWindows: 200,
			Train:           svm.TrainConfig{CacheMB: 16},
		})
	})
	if monitorSetErr != nil {
		b.Fatal(monitorSetErr)
	}
	return monitorSetVal
}

// benchMonitorFeedBatch drives FeedBatch over a synthetic device
// population with the given monitor configuration (transactions/op = 1).
func benchMonitorFeedBatch(b *testing.B, devices int, cfg webtxprofile.MonitorConfig) {
	set := monitorBenchSet(b)
	env := benchEnv(b)
	mon, err := webtxprofile.NewMonitorWithConfig(set, 5, func(webtxprofile.Alert) {}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer mon.Close()
	names := make([]string, devices)
	for i := range names {
		names[i] = fmt.Sprintf("10.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff)
	}
	base := env.Train.Transactions
	start := base[len(base)-1].Timestamp.Add(time.Hour)
	const batchSize = 512
	batch := make([]webtxprofile.Transaction, 0, batchSize)
	b.ResetTimer()
	fed := 0
	for fed < b.N {
		n := min(batchSize, b.N-fed)
		batch = batch[:0]
		for j := 0; j < n; j++ {
			tx := base[(fed+j)%len(base)]
			tx.SourceIP = names[(fed+j)%devices]
			tx.Timestamp = start.Add(time.Duration(fed+j) * 50 * time.Millisecond)
			batch = append(batch, tx)
		}
		if err := mon.FeedBatch(batch); err != nil {
			b.Fatal(err)
		}
		fed += n
	}
	b.StopTimer()
	mon.Flush()
}

// BenchmarkMonitorFeed measures sharded-monitor ingest throughput
// (transactions/op = 1) with the device population the paper's deployment
// scenario implies: every transaction is routed to its device's streaming
// identifier and completed windows are scored against every profile.
func BenchmarkMonitorFeed(b *testing.B) {
	for _, devices := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			benchMonitorFeedBatch(b, devices, webtxprofile.MonitorConfig{Shards: 64})
		})
	}
}

// BenchmarkIngestToMonitor measures the full feed path the daemon runs —
// TCP collector, shared ingest queue, batch delivery, Monitor.FeedBatch —
// at the paper's deployment population (100k devices), comparing the two
// sender encodings (transactions/op = 1).
func BenchmarkIngestToMonitor(b *testing.B) {
	const devices = 100_000
	for _, enc := range []string{"lines", "binary"} {
		b.Run(enc, func(b *testing.B) {
			set := monitorBenchSet(b)
			env := benchEnv(b)
			mon, err := webtxprofile.NewMonitorWithConfig(set, 5, func(webtxprofile.Alert) {},
				webtxprofile.MonitorConfig{Shards: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer mon.Close()
			var fedTo atomic.Int64
			done := make(chan struct{})
			target := int64(b.N)
			srv, err := webtxprofile.ListenCollectorBatch("127.0.0.1:0", func(txs []webtxprofile.Transaction) {
				if err := mon.FeedBatch(txs); err != nil {
					b.Error(err)
				}
				if fedTo.Add(int64(len(txs))) >= target {
					select {
					case <-done:
					default:
						close(done)
					}
				}
			}, webtxprofile.CollectorBatchConfig{})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			dial := webtxprofile.DialCollector
			if enc == "binary" {
				dial = webtxprofile.DialCollectorBinary
			}
			c, err := dial(srv.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			names := benchDeviceNames(devices)
			base := env.Train.Transactions
			start := base[len(base)-1].Timestamp.Add(time.Hour)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := base[i%len(base)]
				tx.SourceIP = names[i%devices]
				tx.Timestamp = start.Add(time.Duration(i) * 50 * time.Millisecond)
				if err := c.Send(tx); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			c.Close() // conn-end flush marker delivers the final partial batch
			<-done
			b.StopTimer()
			mon.Flush()
		})
	}
}

// BenchmarkMonitorFeedBatchWorkers isolates the FeedBatch worker pool:
// the same batched stream processed by one worker (the previous
// sequential-shard behavior) versus the default pool, which scores windows
// completed within a batch concurrently across shards.
func BenchmarkMonitorFeedBatchWorkers(b *testing.B) {
	const devices = 10_000
	b.Run("workers=1", func(b *testing.B) {
		benchMonitorFeedBatch(b, devices, webtxprofile.MonitorConfig{Shards: 64, BatchWorkers: 1})
	})
	b.Run("workers=max", func(b *testing.B) {
		benchMonitorFeedBatch(b, devices, webtxprofile.MonitorConfig{Shards: 64})
	})
}

// calibratedPopulationModel builds one synthetic RBF OC-SVM profile the
// way per-user training shapes them: the user's windows draw from a
// 60-column "home" vocabulary subset (users revisit the same services),
// the RBF width discriminates between same-user and alien windows, dual
// coefficients cluster near the 1/(νn) training bound, and ρ is placed
// just under the weakest training vector's kernel sum — every training
// support vector accepted, alien windows decisively rejected.
func calibratedPopulationModel(tb testing.TB, r *rand.Rand, dim int) *svm.Model {
	home := r.Perm(dim)[:min(60, dim)]
	m := &svm.Model{Algo: svm.OCSVM, Kernel: svm.RBF(0.3), Param: 0.1, TrainSize: 50}
	for s := 0; s < 50; s++ {
		dense := make(map[int]float64, 20)
		for len(dense) < 20 {
			dense[home[r.Intn(len(home))]] = 0.1 + r.Float64()
		}
		m.SVs = append(m.SVs, sparse.New(dense))
		m.Coef = append(m.Coef, 0.4+0.2*r.Float64())
	}
	if err := m.Validate(); err != nil {
		tb.Fatal(err)
	}
	// With ρ = 0, Decision(x) is the raw kernel sum Σαᵢk(xᵢ,x).
	minS := math.Inf(1)
	for _, sv := range m.SVs {
		if d := m.Decision(sv); d < minS {
			minS = d
		}
	}
	m.Rho = 0.9 * minS
	return m
}

// benchRandVec generates a window-like sparse vector for the population
// fixtures.
func benchRandVec(r *rand.Rand, dim, nnz int) sparse.Vector {
	dense := make(map[int]float64, nnz)
	for len(dense) < nnz {
		dense[r.Intn(dim)] = 0.1 + r.Float64()
	}
	return sparse.New(dense)
}

// populationModels builds U calibrated profiles over 800 columns plus
// probe windows. Every 8th probe is a copy of some model's support
// vector, so the accept/exact-kernel-loop path is exercised alongside
// the screened rejections that dominate multi-user scoring.
func populationModels(b testing.TB, u int) ([]*svm.Model, []sparse.Vector) {
	b.Helper()
	r := rand.New(rand.NewSource(int64(u)*31 + 7))
	models := make([]*svm.Model, u)
	for i := range models {
		models[i] = calibratedPopulationModel(b, r, 800)
	}
	probes := make([]sparse.Vector, 256)
	for i := range probes {
		if i%8 == 0 {
			m := models[r.Intn(u)]
			probes[i] = m.SVs[r.Intn(len(m.SVs))]
		} else {
			probes[i] = benchRandVec(r, 800, 20)
		}
	}
	return models, probes
}

// BenchmarkPopulationDecisions is the PR 7 headline: one window scored
// against U user models, comparing the per-model-index baseline
// (DecisionBatch: each model re-walks the window through its own inverted
// index) against the fused population index (one shared postings pass plus
// decision screening) in both precision modes. decisions/sec is the
// reported capacity metric — the paper's identification loop runs exactly
// this evaluation per completed window.
func BenchmarkPopulationDecisions(b *testing.B) {
	for _, u := range []int{100, 1_000, 10_000} {
		models, probes := populationModels(b, u)
		rate := func(b *testing.B) {
			b.ReportMetric(float64(u)*float64(b.N)/b.Elapsed().Seconds(), "decisions/sec")
		}
		b.Run(fmt.Sprintf("baseline/models=%d", u), func(b *testing.B) {
			var out []float64
			for i := 0; i < b.N; i++ {
				out = svm.DecisionBatch(models, probes[i%len(probes)], out[:0])
			}
			rate(b)
		})
		b.Run(fmt.Sprintf("fused/models=%d", u), func(b *testing.B) {
			sc := svm.NewScorer(models)
			before := svm.ReadKernelStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.AcceptMask(probes[i%len(probes)])
			}
			rate(b)
			st := svm.ReadKernelStats().Sub(before)
			b.ReportMetric(float64(st.ScreenedModels)/float64(b.N), "screened/op")
		})
		b.Run(fmt.Sprintf("fused-float32/models=%d", u), func(b *testing.B) {
			sc := svm.NewFusedIndex(models, svm.FusedConfig{Float32: true}).NewScorer()
			before := svm.ReadKernelStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.AcceptMask(probes[i%len(probes)])
			}
			rate(b)
			st := svm.ReadKernelStats().Sub(before)
			b.ReportMetric(float64(st.ScreenedModels)/float64(b.N), "screened/op")
		})
		// The portable engine on the same index layout: the A/B column for
		// the vectorized kernels (identical decisions; see -score-portable).
		b.Run(fmt.Sprintf("fused-portable/models=%d", u), func(b *testing.B) {
			sc := svm.NewFusedIndex(models, svm.FusedConfig{Kernels: svm.KernelsPortable}).NewScorer()
			before := svm.ReadKernelStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.AcceptMask(probes[i%len(probes)])
			}
			rate(b)
			st := svm.ReadKernelStats().Sub(before)
			b.ReportMetric(float64(st.ScreenedModels)/float64(b.N), "screened/op")
		})
	}
}

// populationProfileSet grafts U synthetic profiles onto the bench set's
// real vocabulary and window configuration, so a Monitor over an
// arbitrarily large population still extracts features from the genuine
// taxonomy.
func populationProfileSet(b *testing.B, u int) *webtxprofile.ProfileSet {
	b.Helper()
	base := monitorBenchSet(b)
	dim := base.Vocabulary.Size()
	r := rand.New(rand.NewSource(int64(u)*17 + 3))
	set := &webtxprofile.ProfileSet{
		Vocabulary: base.Vocabulary,
		Window:     base.Window,
		Algorithm:  svm.OCSVM,
		Profiles:   make(map[string]*webtxprofile.Profile, u),
	}
	for i := 0; i < u; i++ {
		id := fmt.Sprintf("synth-user-%05d", i)
		set.Profiles[id] = &webtxprofile.Profile{
			UserID: id, Model: calibratedPopulationModel(b, r, dim), TrainWindows: 50,
		}
	}
	return set
}

// BenchmarkMonitorFeedPopulation measures the monitor end of the fused
// engine at the paper's deployment population — 100k tracked devices —
// as the enrolled-profile count grows. Every device is admitted in an
// untimed warm-up lap; each timed transaction then completes exactly one
// window (the per-device gap exceeds the window span), so ops measure the
// steady-state feed-extract-score path and decisions/sec ≈ U × windows/sec.
func BenchmarkMonitorFeedPopulation(b *testing.B) {
	const devices = 100_000
	env := benchEnv(b)
	names := benchDeviceNames(devices)
	for _, u := range []int{100, 1_000, 10_000} {
		b.Run(fmt.Sprintf("profiles=%d", u), func(b *testing.B) {
			set := populationProfileSet(b, u)
			mon, err := webtxprofile.NewMonitorWithConfig(set, 5, func(webtxprofile.Alert) {},
				webtxprofile.MonitorConfig{Shards: 16})
			if err != nil {
				b.Fatal(err)
			}
			defer mon.Close()
			base := env.Train.Transactions
			start := base[len(base)-1].Timestamp.Add(time.Hour)
			const batchSize = 512
			batch := make([]webtxprofile.Transaction, 0, batchSize)
			feed := func(from, n int) {
				fed := 0
				for fed < n {
					c := min(batchSize, n-fed)
					batch = batch[:0]
					for j := 0; j < c; j++ {
						i := from + fed + j
						tx := base[i%len(base)]
						tx.SourceIP = names[i%devices]
						tx.Timestamp = start.Add(time.Duration(i) * 50 * time.Millisecond)
						batch = append(batch, tx)
					}
					if err := mon.FeedBatch(batch); err != nil {
						b.Fatal(err)
					}
					fed += c
				}
			}
			feed(0, devices) // warm-up: admit every device
			b.ResetTimer()
			feed(devices, b.N)
			b.StopTimer()
			b.ReportMetric(float64(u)*float64(b.N)/b.Elapsed().Seconds(), "decisions/sec")
			// No Flush: it would classify every tracked device's open
			// window — 100k × U decisions of teardown, not steady state.
		})
	}
}

// BenchmarkParamSearchFullGrid measures one user's full Table III grid —
// all 15 ν values across the paper's four kernels — through the
// Gram-sharing search, reporting the kernel-evaluation and Gram-build
// counters per op (the per-cell column-cache path re-evaluated kernel
// columns in every one of the 60 cells; the row path builds 4 Grams).
func BenchmarkParamSearchFullGrid(b *testing.B) {
	env := benchEnv(b)
	trainWs, err := env.TrainWindows()
	if err != nil {
		b.Fatal(err)
	}
	user := env.Users[0]
	cfg := grid.Config{Algorithm: svm.OCSVM, MaxTrainWindows: 120, MaxOtherWindows: 40}
	kernels := grid.PaperKernels(env.Vocab.Size())
	before := svm.ReadKernelStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grid.ParamSearchUsers([]string{user}, trainWs, grid.PaperParams, kernels, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d := svm.ReadKernelStats().Sub(before)
	b.ReportMetric(float64(d.KernelEvals)/float64(b.N), "kernelEvals/op")
	b.ReportMetric(float64(d.GramBuilds)/float64(b.N), "gramBuilds/op")
	b.ReportMetric(float64(d.CacheHits)/float64(b.N), "cacheHits/op")
}

// benchDeviceNames generates a synthetic device population.
func benchDeviceNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("10.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff)
	}
	return names
}

// benchStateRound feeds one transaction per device (advancing timestamps),
// giving every device in-flight identification state — or, after a
// checkpoint, rehydrating every device from the spill store.
func benchStateRound(b *testing.B, mon *webtxprofile.Monitor, names []string, base []webtxprofile.Transaction, start time.Time, round int) {
	b.Helper()
	batch := make([]webtxprofile.Transaction, len(names))
	for d := range names {
		i := round*len(names) + d
		tx := base[i%len(base)]
		tx.SourceIP = names[d]
		tx.Timestamp = start.Add(time.Duration(i) * 10 * time.Millisecond)
		batch[d] = tx
	}
	if err := mon.FeedBatch(batch); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMonitorCheckpointRestore measures the durable-state cycle at
// fleet scale: Checkpoint spills every device's identification state to
// the store (serialize + write), and the next batch rehydrates all of
// them (read + restore) — one op is a full suspend/resume of the device
// population, against both store backends.
func BenchmarkMonitorCheckpointRestore(b *testing.B) {
	const devices = 1_000
	for _, impl := range []string{"mem", "disk"} {
		b.Run(impl, func(b *testing.B) {
			set := monitorBenchSet(b)
			env := benchEnv(b)
			var store webtxprofile.StateStore = webtxprofile.NewMemStateStore()
			if impl == "disk" {
				ds, err := webtxprofile.NewDiskStateStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				store = ds
			}
			mon, err := webtxprofile.NewMonitorWithConfig(set, 5, func(webtxprofile.Alert) {},
				webtxprofile.MonitorConfig{Shards: 64, Spill: store})
			if err != nil {
				b.Fatal(err)
			}
			defer mon.Close()
			names := benchDeviceNames(devices)
			base := env.Train.Transactions
			start := base[len(base)-1].Timestamp.Add(time.Hour)
			benchStateRound(b, mon, names, base, start, 0)
			benchStateRound(b, mon, names, base, start, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, _, err := mon.Checkpoint()
				if err != nil || n != devices {
					b.Fatalf("checkpoint spilled %d devices: %v", n, err)
				}
				benchStateRound(b, mon, names, base, start, i+2)
			}
			b.StopTimer()
			b.ReportMetric(devices, "devices/op")
			mon.Flush()
		})
	}
}

// BenchmarkMonitorShardHandoff measures ExportShard→ImportShard over the
// whole device population — the serialization cost of moving shards
// between processes, reporting the handoff payload size.
func BenchmarkMonitorShardHandoff(b *testing.B) {
	const devices = 1_000
	const shards = 16
	set := monitorBenchSet(b)
	env := benchEnv(b)
	mon, err := webtxprofile.NewMonitorWithConfig(set, 5, func(webtxprofile.Alert) {},
		webtxprofile.MonitorConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	defer mon.Close()
	names := benchDeviceNames(devices)
	base := env.Train.Transactions
	start := base[len(base)-1].Timestamp.Add(time.Hour)
	benchStateRound(b, mon, names, base, start, 0)
	benchStateRound(b, mon, names, base, start, 1)
	b.ResetTimer()
	var moved int64
	for i := 0; i < b.N; i++ {
		for s := 0; s < shards; s++ {
			blob, err := mon.ExportShard(s)
			if err != nil {
				b.Fatal(err)
			}
			moved += int64(len(blob))
			if _, err := mon.ImportShard(blob); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(moved)/float64(b.N), "exportBytes/op")
	mon.Flush()
}
