package webtxprofile

import (
	"webtxprofile/internal/cluster"
)

// Multi-node deployment: a ClusterRouter places devices on ClusterNodes
// by rendezvous hashing and rebalances on membership changes by draining
// exactly the devices whose placement moved — with per-device alert
// sequences proven byte-identical to a single never-resharded Monitor
// (see internal/cluster's equivalence suites).
type (
	// ClusterNode is one cluster member: a TCP server exposing its
	// Monitor's feed, shard-handoff and flush operations plus an alert
	// push stream.
	ClusterNode = cluster.Node
	// ClusterNodeConfig configures a cluster member (name, threshold,
	// monitor tuning, local alert tap).
	ClusterNodeConfig = cluster.NodeConfig
	// ClusterRouter is the cluster front end: rendezvous placement,
	// transaction forwarding, drain-based rebalancing, alert fan-in.
	ClusterRouter = cluster.Router
	// ClusterRouterConfig tunes the router.
	ClusterRouterConfig = cluster.RouterConfig
	// ClusterMember names and addresses one node of the membership view.
	ClusterMember = cluster.Member
	// ClusterMembership is the router's versioned membership view.
	ClusterMembership = cluster.Membership
	// NodeAlert is an identity transition tagged with its origin node —
	// the router's fan-in alert unit.
	NodeAlert = cluster.NodeAlert
	// ClusterNodeClient is a low-level client for one node's wire
	// protocol (the router manages these internally; exposed for tools).
	ClusterNodeClient = cluster.NodeClient
	// ClusterGossipServer accepts gossip exchanges from replica routers:
	// each inbound exchange reconciles membership views and placement
	// overrides in both directions.
	ClusterGossipServer = cluster.GossipServer
	// ClusterGossipState is one router's shareable state — the versioned
	// membership view and the override table replicas converge on.
	ClusterGossipState = cluster.GossipState
	// ClusterStats snapshots the process-wide replication and
	// rebalancing counters: gossip rounds, view adoptions, override
	// entries/tombstones, handoff aborts, warm restores and failover
	// reroutes.
	ClusterStats = cluster.ClusterStats
)

// ReadClusterStats returns the replication/rebalancing counters
// (cumulative since process start); profilerd logs a snapshot at
// front-end shutdown.
func ReadClusterStats() ClusterStats { return cluster.ReadClusterStats() }

// ResetClusterStats zeroes the replication/rebalancing counters.
func ResetClusterStats() { cluster.ResetClusterStats() }

// ListenClusterNode starts a cluster node on addr over a trained profile
// set; the node owns a sharded Monitor configured by cfg.
func ListenClusterNode(addr string, set *ProfileSet, cfg ClusterNodeConfig) (*ClusterNode, error) {
	return cluster.ListenNode(addr, set, cfg)
}

// NewClusterRouter creates a router with no members; alerts receives
// every identity transition from every node, tagged with its origin.
// Add nodes with AddNode before feeding.
func NewClusterRouter(alerts func(NodeAlert), cfg ClusterRouterConfig) *ClusterRouter {
	return cluster.NewRouter(alerts, cfg)
}

// DialClusterNode connects to a node's wire protocol directly (the
// router does this internally; exposed for diagnostics and tools).
func DialClusterNode(addr string, onAlert func(NodeAlert)) (*ClusterNodeClient, error) {
	return cluster.DialNode(addr, onAlert)
}

// ServeClusterGossip starts a gossip listener for a router so replica
// routers (ClusterRouter.GossipWith) can reconcile state with it. Any
// number of replicas can front the same nodes; gossip carries the two
// things placement cannot re-derive — the versioned membership view and
// the routing overrides.
func ServeClusterGossip(r *ClusterRouter, addr string) (*ClusterGossipServer, error) {
	return cluster.ServeGossip(r, addr)
}
