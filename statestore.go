package webtxprofile

import "webtxprofile/internal/statestore"

// The fleet-wide state tier: a networked StateStore backend, so spill
// and checkpoint stop assuming a local disk and a device's
// identification state survives the node that held it. See
// internal/statestore for the protocol, the write-behind batching and
// the versioning fence, and internal/cluster for the two payoffs built
// on top (warm restore on join, failover without handoff).
type (
	// StateServer is the authoritative side of the tier: per-device
	// versioned blobs in memory, optionally persisted through any
	// StateStore (profilerd: -state-server, backed by -state-dir).
	StateServer = statestore.Server
	// StateServerConfig configures a StateServer.
	StateServerConfig = statestore.ServerConfig
	// RemoteStateStore is the write-behind client backend: a StateStore
	// whose Put coalesces into a bounded dirty queue flushed by count or
	// age, with read-through Get (profilerd: -state-addr). Each monitor
	// needs its own client.
	RemoteStateStore = statestore.Client
	// RemoteStateConfig tunes the write-behind client.
	RemoteStateConfig = statestore.ClientConfig
)

// ListenStateServer starts a state-tier server on addr.
func ListenStateServer(addr string, cfg StateServerConfig) (*StateServer, error) {
	return statestore.ListenServer(addr, cfg)
}

// DialStateStore connects a write-behind client to the state server at
// addr; the result plugs into MonitorConfig.Spill (set SharedSpill too).
func DialStateStore(addr string, cfg RemoteStateConfig) (*RemoteStateStore, error) {
	return statestore.Dial(addr, cfg)
}
