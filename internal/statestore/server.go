package statestore

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webtxprofile/internal/core"
)

// ServerConfig configures a state server; the zero value works.
type ServerConfig struct {
	// Backing, when non-nil, persists every accepted write through an
	// ordinary core.StateStore (a DiskStateStore directory makes the
	// tier durable across server restarts). Blobs are stored wrapped in
	// a small envelope carrying the device's version, so the monotonic
	// fence survives the restart; a directory previously written by a
	// plain -state-dir daemon is adopted with every device at version 1.
	// Backing failures are logged and do not fail the in-memory apply:
	// the tier stays available and the durability is best-effort, like
	// the monitor's own spill fallback.
	Backing core.StateStore
	// WriteTimeout bounds each reply write (default 30s).
	WriteTimeout time.Duration
	// ErrorLog receives per-connection and backing-store errors
	// (default log.Default()).
	ErrorLog *log.Logger
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.ErrorLog == nil {
		c.ErrorLog = log.Default()
	}
	return c
}

// entry is one device's authoritative record. blob == nil is a
// tombstone: no state, but the version still fences stale writes.
type entry struct {
	ver  uint64
	blob []byte
}

// ServerStats counts protocol operations since the server started;
// StaleDrops is the versioning fence doing its job (a Put at or below
// the version in force, dropped).
type ServerStats struct {
	Puts       uint64
	StaleDrops uint64
	Gets       uint64
	GetHits    uint64
	Deletes    uint64
	Lists      uint64
}

// Server is the state tier's authoritative side: per-device versioned
// blobs in memory, optional write-through to a backing store, one
// goroutine per connection.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	wg  sync.WaitGroup

	puts, staleDrops, gets, getHits, deletes, lists atomic.Uint64

	mu      sync.Mutex
	entries map[string]*entry
	conns   map[net.Conn]struct{}
	closed  bool
}

// ListenServer starts a state server on addr ("host:0" picks a port).
// With a Backing store, the existing device states are loaded eagerly so
// warm restores hit memory.
func ListenServer(addr string, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		entries: make(map[string]*entry),
		conns:   make(map[net.Conn]struct{}),
	}
	if cfg.Backing != nil {
		devices, err := cfg.Backing.Devices()
		if err != nil {
			return nil, fmt.Errorf("statestore: listing backing store: %w", err)
		}
		for _, d := range devices {
			raw, ok, err := cfg.Backing.Get(d)
			if err != nil {
				return nil, fmt.Errorf("statestore: loading device %s from backing store: %w", d, err)
			}
			if !ok {
				continue
			}
			ver, blob, ok := decodeEnvelope(raw)
			if !ok {
				ver, blob = 1, raw
			}
			s.entries[d] = &entry{ver: ver, blob: append([]byte(nil), blob...)}
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("statestore: listening on %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Len reports how many devices currently hold state (tombstones
// excluded).
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if e.blob != nil {
			n++
		}
	}
	return n
}

// Stats returns an operation-count snapshot.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Puts:       s.puts.Load(),
		StaleDrops: s.staleDrops.Load(),
		Gets:       s.gets.Load(),
		GetHits:    s.getHits.Load(),
		Deletes:    s.deletes.Load(),
		Lists:      s.lists.Load(),
	}
}

// Close stops the listener and every connection. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var readBuf, writeBuf []byte
	for {
		payload, err := readFrame(br, readBuf)
		if err != nil {
			return // EOF and read errors both just end the connection
		}
		readBuf = payload[:0]
		req, err := decodeMessage(payload)
		var resp message
		if err != nil {
			// Can't trust the stream past a malformed frame: answer
			// in-band (seq 0) and drop the connection.
			resp = message{op: opErr, seq: 0, errMsg: err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		out, encErr := appendMessage(writeBuf[:0], resp)
		if encErr != nil {
			s.cfg.ErrorLog.Printf("statestore: encoding reply: %v", encErr)
			return
		}
		writeBuf = out[:0]
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if werr := writeFrame(bw, out); werr != nil {
			return
		}
		if err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req message) message {
	switch req.op {
	case opPut:
		return s.applyPut(req)
	case opGet:
		return s.applyGet(req)
	case opDelete:
		return s.applyDelete(req)
	case opList:
		return s.applyList(req)
	default:
		return message{op: opErr, seq: req.seq, errMsg: fmt.Sprintf("unexpected op 0x%02x", req.op)}
	}
}

// applyPut applies each entry iff its version is strictly greater than
// the one in force, and replies with the per-device version now in
// force: equal to the sent version means applied, greater means a newer
// write (or a tombstone) superseded this one and it was dropped.
func (s *Server) applyPut(req message) message {
	vers := make([]uint64, len(req.puts))
	s.mu.Lock()
	for i, p := range req.puts {
		e := s.entries[p.device]
		if e == nil {
			e = &entry{}
			// Clone the key: p.device aliases the connection's read buffer,
			// which the next frame overwrites in place.
			s.entries[strings.Clone(p.device)] = e
		}
		if p.ver > e.ver {
			e.ver = p.ver
			e.blob = append(e.blob[:0:0], p.blob...)
			s.persist(p.device, e)
			s.puts.Add(1)
		} else {
			s.staleDrops.Add(1)
		}
		vers[i] = e.ver
	}
	s.mu.Unlock()
	return message{op: opPutOK, seq: req.seq, vers: vers}
}

func (s *Server) applyGet(req message) message {
	s.gets.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[req.device]
	if e == nil || e.blob == nil {
		var ver uint64
		if e != nil {
			ver = e.ver
		}
		return message{op: opGetOK, seq: req.seq, found: false, ver: ver}
	}
	s.getHits.Add(1)
	return message{op: opGetOK, seq: req.seq, found: true, ver: e.ver, blob: e.blob}
}

// applyDelete drops the blob but keeps a tombstone at the bumped
// version: the fence that makes a new owner's rehydrate-consume final
// against the old owner's still-queued writes. Deleting an absent
// device plants a version-1 tombstone, harmlessly.
func (s *Server) applyDelete(req message) message {
	s.deletes.Add(1)
	s.mu.Lock()
	e := s.entries[req.device]
	if e == nil {
		e = &entry{}
		s.entries[strings.Clone(req.device)] = e // key must not alias the read buffer
	}
	e.ver++
	e.blob = nil
	if s.cfg.Backing != nil {
		if err := s.cfg.Backing.Delete(req.device); err != nil {
			s.cfg.ErrorLog.Printf("statestore: backing delete of device %s: %v", req.device, err)
		}
	}
	ver := e.ver
	s.mu.Unlock()
	return message{op: opDeleteOK, seq: req.seq, ver: ver}
}

func (s *Server) applyList(req message) message {
	s.lists.Add(1)
	s.mu.Lock()
	devices := make([]string, 0, len(s.entries))
	for d, e := range s.entries {
		if e.blob != nil {
			devices = append(devices, d)
		}
	}
	s.mu.Unlock()
	sort.Strings(devices)
	return message{op: opListOK, seq: req.seq, devices: devices}
}

// persist writes one accepted entry through the backing store (under
// s.mu; best-effort — see ServerConfig.Backing).
func (s *Server) persist(device string, e *entry) {
	if s.cfg.Backing == nil {
		return
	}
	enveloped := appendEnvelope(make([]byte, 0, len(e.blob)+16), e.ver, e.blob)
	if err := s.cfg.Backing.Put(device, enveloped); err != nil {
		s.cfg.ErrorLog.Printf("statestore: backing put of device %s: %v", device, err)
	}
}
