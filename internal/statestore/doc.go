// Package statestore is the fleet-wide state tier: a small networked
// backend for core.StateStore, so spill and checkpoint stop assuming a
// local disk and a device's identification state survives the node that
// held it.
//
// Two halves. Server holds the authoritative per-device blobs in memory
// (optionally persisted through any core.StateStore, e.g. a
// core.DiskStateStore directory) and speaks a length-prefixed binary
// protocol in the style of the cluster's wire v2. Client implements the
// four-method core.StateStore interface over that protocol with
// write-behind batching: Put never touches the network — it coalesces
// into a bounded dirty queue flushed by count or age — so the monitor's
// hot eviction path is a map write, while Get reads through (pending
// local writes first, then the server) and Delete and Devices are
// synchronous RPCs.
//
// # Device lifecycle through the tier
//
//	          eviction / checkpoint                 flush (count/age/Flush)
//	live ───────────────────────────► write-behind ───────────────────────► flushed
//	  ▲        Client.Put: coalesced      │ dirty queue,                       │ server holds
//	  │        into the dirty queue,      │ read-through                       │ (ver, blob);
//	  │        versioned per device       │ serves Get                         │ backing store
//	  │                                   ▼                                    │ persists it
//	  └◄──────────────────────────────────┴────────────────────────────────────┘
//	    next transaction rehydrates (Get → restore → Delete), on the same
//	    node or any other: a cold node joining the cluster warm-restores
//	    its placement's devices from here instead of draining a live peer,
//	    and a dead node's devices rehydrate lazily at their new owner —
//	    failover without handoff (see internal/cluster: RouterConfig.
//	    SharedState and Router.FailNode).
//
// # Versioning: why a stale flush cannot clobber a newer spill
//
// Write-behind means a flush can arrive late — after the device moved to
// a new owner and the new owner already spilled newer state. Every
// client Put therefore assigns the device a fresh monotonic version
// (greater than both the highest version the server has acknowledged to
// this client and the highest this client has assigned), and the server
// applies a Put only if its version is strictly greater than the current
// one, replying with the version now in force. Delete bumps the version
// and leaves a tombstone version behind, so a new owner's
// rehydrate-consume (Get → Delete) fences every version the old owner
// could still have queued: the delayed flush arrives with a version at
// or below the tombstone and is dropped (counted, not erred — staleness
// is the protocol working). The write-behind version-conflict tests
// prove the invariant over seeded interleavings.
//
// # Degradation
//
// The feed path never blocks on this tier. If the server is unreachable,
// flushes retry with backoff while new Puts keep landing in the dirty
// queue; when the queue fills, Put fails fast with ErrQueueFull and the
// monitor falls back to its lossy eviction path (flush + AlertLost) —
// degraded, bounded, and alive. Tombstones live only in server memory:
// a server restart forgets fence versions, which is safe whenever the
// restart outlives the queued writes of dead former owners.
package statestore
