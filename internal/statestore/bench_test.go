package statestore

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkStateStoreWriteBehind measures the feed-path cost of a spill
// Put under the two disciplines the tier supports: write-behind (the
// default — Put is a local queue write, the flusher batches to the
// server) against write-through (every Put synchronously flushed, the
// cost a naive networked StateStore would put on the eviction path).
func BenchmarkStateStoreWriteBehind(b *testing.B) {
	const devices = 512
	blob := make([]byte, 1024)
	for i := range blob {
		blob[i] = byte(i)
	}
	names := make([]string, devices)
	for i := range names {
		names[i] = fmt.Sprintf("10.9.%d.%d", i/256, i%256)
	}

	run := func(b *testing.B, cfg ClientConfig, flushEvery bool) {
		srv, err := ListenServer("127.0.0.1:0", ServerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr().String(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.SetBytes(int64(len(blob)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Put(names[i%devices], blob); err != nil {
				b.Fatal(err)
			}
			if flushEvery {
				if err := c.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
	}

	b.Run("writebehind", func(b *testing.B) {
		run(b, ClientConfig{FlushCount: 64, FlushAge: 5 * time.Millisecond}, false)
	})
	b.Run("writethrough", func(b *testing.B) {
		run(b, ClientConfig{FlushCount: 1 << 30, FlushAge: time.Hour}, true)
	})
}
