package statestore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webtxprofile/internal/core"
)

// ErrQueueFull is returned by Put when the write-behind queue is at
// MaxPending and the device has no entry to coalesce into — the signal
// for the monitor to fall back to lossy eviction instead of blocking the
// feed path on an unreachable tier.
var ErrQueueFull = errors.New("statestore: write-behind queue full")

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("statestore: client closed")

// serverError is an in-band opErr reply: a server decision, not a
// transport failure, so the RPC retry loop surfaces it untried.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "statestore: server error: " + e.msg }

// ClientConfig tunes the write-behind client; the zero value works.
type ClientConfig struct {
	// FlushCount flushes the dirty queue once it holds this many devices
	// (default 64).
	FlushCount int
	// FlushAge flushes once the oldest dirty entry has waited this long
	// (default 50ms). Coalescing keeps the original arrival time, so a
	// hot device cannot postpone its own flush forever.
	FlushAge time.Duration
	// MaxPending bounds dirty + in-flight entries (default 4096); at the
	// bound, Put of a new device fails fast with ErrQueueFull.
	MaxPending int
	// DialTimeout bounds each (re)dial (default 5s).
	DialTimeout time.Duration
	// RPCTimeout bounds each request write and reply read (default 30s).
	RPCTimeout time.Duration
	// RetryAttempts is how many times a failed RPC is retried on a fresh
	// connection before the error surfaces (default 4).
	RetryAttempts int
	// RetryBaseDelay seeds the exponential backoff between retries
	// (default 25ms, doubling, capped at RetryMaxDelay).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff (default 1s).
	RetryMaxDelay time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.FlushCount <= 0 {
		c.FlushCount = 64
	}
	if c.FlushAge <= 0 {
		c.FlushAge = 50 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.RetryAttempts < 0 {
		c.RetryAttempts = 0
	} else if c.RetryAttempts == 0 {
		c.RetryAttempts = 4
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 25 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = time.Second
	}
	return c
}

// ClientStats snapshots the write-behind machinery.
type ClientStats struct {
	Flushes       uint64 // flush RPCs completed
	FlushedPuts   uint64 // entries acknowledged by the server
	StaleDrops    uint64 // entries the server superseded (fence worked)
	QueueFull     uint64 // Puts rejected with ErrQueueFull
	FlushFailures uint64 // flush RPCs that failed after all retries
	Pending       int    // dirty + in-flight entries right now
}

// pendEntry is one device's queued write. ver is the monotonic fencing
// version assigned at Put time; at is the first-Put arrival time that
// drives the age-based flush.
type pendEntry struct {
	ver  uint64
	blob []byte
	at   time.Time
}

// Client is the write-behind core.StateStore backend over a state
// server. Put is a local queue write (never a network call); Get reads
// pending local writes first, then the server; Delete and Devices are
// synchronous RPCs. Safe for concurrent use.
//
// Each monitor needs its own Client: the dirty queue and version cache
// are the *owner's* pending view of the tier, and sharing one across
// monitors would merge views that the versioning protocol keeps apart.
type Client struct {
	cfg  ClientConfig
	addr string

	flushes, flushedPuts, staleDrops, queueFull, flushFailures atomic.Uint64

	// mu guards the queue and version state. Never held across a network
	// call — flushOnce snapshots under mu, RPCs outside it.
	mu       sync.Mutex
	dirty    map[string]*pendEntry // queued, not yet sent
	inflight map[string]*pendEntry // sent, not yet acknowledged
	vers     map[string]uint64     // highest version the server acknowledged
	assigned map[string]uint64     // highest version handed out locally
	fences   map[string]uint64     // Delete fences: drop requeues at or below
	closed   bool

	// rpcMu serializes every RPC on the single connection (synchronous
	// request/reply — no pending map, no receive loop) and guards the
	// conn fields. Never acquired while holding mu.
	rpcMu   sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	seq     uint64
	scratch []byte

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

var _ core.StateStore = (*Client)(nil)

// Dial connects a write-behind client to the state server at addr. The
// initial dial is eager so a misconfigured address fails at startup;
// later failures redial transparently with backoff.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{
		cfg:      cfg.withDefaults(),
		addr:     addr,
		dirty:    make(map[string]*pendEntry),
		inflight: make(map[string]*pendEntry),
		vers:     make(map[string]uint64),
		assigned: make(map[string]uint64),
		fences:   make(map[string]uint64),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("statestore: dialing %s: %w", addr, err)
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	c.wg.Add(1)
	go c.flusher()
	return c, nil
}

// Stats returns a write-behind snapshot.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	pending := len(c.dirty) + len(c.inflight)
	c.mu.Unlock()
	return ClientStats{
		Flushes:       c.flushes.Load(),
		FlushedPuts:   c.flushedPuts.Load(),
		StaleDrops:    c.staleDrops.Load(),
		QueueFull:     c.queueFull.Load(),
		FlushFailures: c.flushFailures.Load(),
		Pending:       pending,
	}
}

// Put queues the device's blob for write-behind flushing, assigning it a
// fresh monotonic version: strictly above everything the server has
// acknowledged to this client and everything this client has already
// handed out, so a re-Put always supersedes the copy a flush may have in
// flight. Never blocks on the network; at MaxPending it fails fast with
// ErrQueueFull.
func (c *Client) Put(device string, blob []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if e, ok := c.dirty[device]; ok {
		// Coalesce: newest blob, fresh version, original arrival time
		// (so a hot device still flushes by age).
		e.blob = append(e.blob[:0], blob...)
		e.ver = c.nextVerLocked(device)
		c.mu.Unlock()
		return nil
	}
	if len(c.dirty)+len(c.inflight) >= c.cfg.MaxPending {
		c.queueFull.Add(1)
		c.mu.Unlock()
		return fmt.Errorf("%w (%d pending)", ErrQueueFull, c.cfg.MaxPending)
	}
	c.dirty[device] = &pendEntry{
		ver:  c.nextVerLocked(device),
		blob: append([]byte(nil), blob...),
		at:   time.Now(),
	}
	trigger := len(c.dirty) >= c.cfg.FlushCount
	c.mu.Unlock()
	if trigger {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

func (c *Client) nextVerLocked(device string) uint64 {
	v := c.vers[device]
	if a := c.assigned[device]; a > v {
		v = a
	}
	v++
	c.assigned[device] = v
	return v
}

// Get reads through: a pending local write (dirty first — it is newer —
// then in-flight) is served from memory; otherwise the server is asked.
func (c *Client) Get(device string) ([]byte, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if e, ok := c.dirty[device]; ok {
		blob := append([]byte(nil), e.blob...)
		c.mu.Unlock()
		return blob, true, nil
	}
	if e, ok := c.inflight[device]; ok {
		blob := append([]byte(nil), e.blob...)
		c.mu.Unlock()
		return blob, true, nil
	}
	c.mu.Unlock()
	resp, err := c.rpc(message{op: opGet, device: device})
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if resp.ver > c.vers[device] {
		c.vers[device] = resp.ver
	}
	c.mu.Unlock()
	if !resp.found {
		return nil, false, nil
	}
	return resp.blob, true, nil
}

// Delete removes the device everywhere: the local queue, and on the
// server, where a bumped tombstone version fences every write this or
// any other client could still have queued below it. Synchronous, so a
// rehydrate-consume (Get → restore → Delete) is final once it returns.
func (c *Client) Delete(device string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	delete(c.dirty, device)
	// Fence the in-flight copy too: if its flush fails it must not be
	// requeued, and if it succeeds the server-side tombstone below still
	// outranks it (the Delete RPC is serialized after the flush RPC).
	if a := c.assigned[device]; a > c.fences[device] {
		c.fences[device] = a
	}
	c.mu.Unlock()
	resp, err := c.rpc(message{op: opDelete, device: device})
	if err != nil {
		return err
	}
	c.mu.Lock()
	if resp.ver > c.vers[device] {
		c.vers[device] = resp.ver
	}
	if resp.ver > c.assigned[device] {
		c.assigned[device] = resp.ver
	}
	c.mu.Unlock()
	return nil
}

// Devices lists every device with state in the tier: the server's view
// merged with this client's still-pending writes.
func (c *Client) Devices() ([]string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	resp, err := c.rpc(message{op: opList})
	if err != nil {
		return nil, err
	}
	set := make(map[string]struct{}, len(resp.devices))
	for _, d := range resp.devices {
		set[strings.Clone(d)] = struct{}{}
	}
	c.mu.Lock()
	for d := range c.dirty {
		set[d] = struct{}{}
	}
	for d, e := range c.inflight {
		if c.fences[d] < e.ver {
			set[d] = struct{}{}
		}
	}
	c.mu.Unlock()
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// Flush synchronously drains the write-behind queue: every dirty and
// in-flight entry is pushed to the server (or its error returned). The
// barrier before a membership change or shutdown.
func (c *Client) Flush() error {
	for {
		c.mu.Lock()
		d, f := len(c.dirty), len(c.inflight)
		c.mu.Unlock()
		if d == 0 && f == 0 {
			return nil
		}
		if d > 0 {
			if err := c.flushOnce(true); err != nil {
				return err
			}
			continue
		}
		// In-flight only: the background flusher's RPC holds rpcMu, so
		// acquiring it is the barrier; by release the entries are either
		// acknowledged or requeued into dirty.
		c.rpcMu.Lock()
		c.rpcMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}
}

// Close stops the flusher after a final best-effort flush and drops the
// connection. Use Flush first when the final flush must not be
// best-effort. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
	c.rpcMu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.rpcMu.Unlock()
	return nil
}

func (c *Client) flusher() {
	defer c.wg.Done()
	tick := c.cfg.FlushAge / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			c.flushOnce(true) // final best-effort push
			return
		case <-c.kick:
		case <-t.C:
		}
		c.flushOnce(false)
	}
}

// flushOnce pushes the dirty queue as one batched Put. Without force it
// first checks the count/age thresholds. On RPC failure every entry is
// requeued unless a Delete fenced it or a newer Put superseded it; on
// success each entry retires if the server's version in force is at or
// above the sent one (equal: applied; above: superseded — either way the
// write-behind obligation is met).
func (c *Client) flushOnce(force bool) error {
	c.mu.Lock()
	if len(c.dirty) == 0 {
		c.mu.Unlock()
		return nil
	}
	if !force && len(c.dirty) < c.cfg.FlushCount {
		aged, now := false, time.Now()
		for _, e := range c.dirty {
			if now.Sub(e.at) >= c.cfg.FlushAge {
				aged = true
				break
			}
		}
		if !aged {
			c.mu.Unlock()
			return nil
		}
	}
	batch := make([]putEntry, 0, len(c.dirty))
	for d, e := range c.dirty {
		c.inflight[d] = e
		delete(c.dirty, d)
		batch = append(batch, putEntry{device: d, ver: e.ver, blob: e.blob})
	}
	c.mu.Unlock()
	sort.Slice(batch, func(i, j int) bool { return batch[i].device < batch[j].device })

	resp, err := c.rpc(message{op: opPut, puts: batch})
	if err == nil && len(resp.vers) != len(batch) {
		err = fmt.Errorf("statestore: put reply carries %d versions for %d entries", len(resp.vers), len(batch))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		for _, p := range batch {
			e := c.inflight[p.device]
			if e == nil || e.ver != p.ver {
				continue
			}
			delete(c.inflight, p.device)
			if c.fences[p.device] >= p.ver {
				continue // deleted while in flight
			}
			if cur, ok := c.dirty[p.device]; ok && cur.ver > p.ver {
				continue // superseded by a newer Put
			}
			c.dirty[p.device] = e // requeue with original arrival time
		}
		c.flushFailures.Add(1)
		return err
	}
	for i, p := range batch {
		if e := c.inflight[p.device]; e != nil && e.ver == p.ver {
			delete(c.inflight, p.device)
		}
		cur := resp.vers[i]
		if cur > c.vers[p.device] {
			c.vers[p.device] = cur
		}
		if cur > c.assigned[p.device] {
			c.assigned[p.device] = cur
		}
		if cur > p.ver {
			c.staleDrops.Add(1)
		}
	}
	c.flushes.Add(1)
	c.flushedPuts.Add(uint64(len(batch)))
	return nil
}

// rpc performs one synchronous request/reply, redialing with exponential
// backoff on transport failures. An in-band opErr reply is a server
// decision, returned without retry. Safe to retry every op: Get, Delete
// and List are idempotent, and Put is made so by the versioning.
func (c *Client) rpc(req message) (message, error) {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			delay := c.cfg.RetryBaseDelay << (attempt - 1)
			if delay > c.cfg.RetryMaxDelay || delay <= 0 {
				delay = c.cfg.RetryMaxDelay
			}
			time.Sleep(delay)
		}
		resp, err := c.attempt(req)
		if err == nil {
			return resp, nil
		}
		var srvErr *serverError
		if errors.As(err, &srvErr) {
			// In-band server decision: deterministic, don't retry.
			return message{}, err
		}
		lastErr = err
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
	}
	return message{}, fmt.Errorf("statestore: %s unreachable after %d attempts: %w",
		c.addr, c.cfg.RetryAttempts+1, lastErr)
}

// attempt runs one request on the current connection (dialing if
// needed); the caller holds rpcMu.
func (c *Client) attempt(req message) (message, error) {
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
		if err != nil {
			return message{}, err
		}
		c.conn = conn
		c.br = bufio.NewReader(conn)
		c.bw = bufio.NewWriter(conn)
	}
	c.seq++
	req.seq = c.seq
	payload, err := appendMessage(c.scratch[:0], req)
	if err != nil {
		return message{}, err
	}
	c.scratch = payload[:0]
	c.conn.SetDeadline(time.Now().Add(c.cfg.RPCTimeout))
	if err := writeFrame(c.bw, payload); err != nil {
		return message{}, err
	}
	// Fresh buffer per reply: decoded strings and blobs alias it, and
	// Get hands the blob to the caller.
	raw, err := readFrame(c.br, nil)
	if err != nil {
		return message{}, err
	}
	resp, err := decodeMessage(raw)
	if err != nil {
		return message{}, err
	}
	if resp.op == opErr {
		// The server drops the connection after an in-band error, so
		// ours is stale either way.
		c.conn.Close()
		c.conn = nil
		return message{}, &serverError{msg: strings.Clone(resp.errMsg)}
	}
	if resp.seq != req.seq {
		return message{}, fmt.Errorf("statestore: reply seq %d for request %d", resp.seq, req.seq)
	}
	return resp, nil
}
