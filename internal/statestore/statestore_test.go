package statestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"webtxprofile/internal/core"
)

// manualFlush is a client config whose write-behind machinery never fires
// on its own: only explicit Flush calls push the queue, so a test controls
// exactly when a client's writes reach the server.
var manualFlush = ClientConfig{
	FlushCount: 1 << 30,
	FlushAge:   time.Hour,
	RPCTimeout: 5 * time.Second,
}

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := ListenServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialServer(t *testing.T, s *Server, cfg ClientConfig) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustPut(t *testing.T, c *Client, device string, blob []byte) {
	t.Helper()
	if err := c.Put(device, blob); err != nil {
		t.Fatalf("put %s: %v", device, err)
	}
}

func mustGet(t *testing.T, c *Client, device string) ([]byte, bool) {
	t.Helper()
	blob, ok, err := c.Get(device)
	if err != nil {
		t.Fatalf("get %s: %v", device, err)
	}
	return blob, ok
}

func TestClientServerRoundTrip(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	c := dialServer(t, srv, manualFlush)

	blobs := map[string][]byte{}
	for i := 0; i < 5; i++ {
		d := fmt.Sprintf("dev-%d", i)
		blobs[d] = []byte(fmt.Sprintf("state-%d", i))
		mustPut(t, c, d, blobs[d])
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Len(); got != 5 {
		t.Fatalf("server holds %d devices, want 5", got)
	}

	// A second client sees the flushed state through the server.
	c2 := dialServer(t, srv, manualFlush)
	for d, want := range blobs {
		got, ok := mustGet(t, c2, d)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("device %s: got %q ok=%v, want %q", d, got, ok, want)
		}
	}
	devices, err := c2.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 5 {
		t.Fatalf("Devices lists %d, want 5: %v", len(devices), devices)
	}

	if err := c2.Delete("dev-0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustGet(t, c2, "dev-0"); ok {
		t.Fatal("dev-0 still found after delete")
	}
	if got := srv.Len(); got != 4 {
		t.Fatalf("server holds %d devices after delete, want 4", got)
	}
	devices, err = c2.Devices()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devices {
		if d == "dev-0" {
			t.Fatal("Devices still lists dev-0 after delete")
		}
	}
}

func TestWriteBehindFlushesByCount(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	c := dialServer(t, srv, ClientConfig{FlushCount: 4, FlushAge: time.Hour})

	for i := 0; i < 4; i++ {
		mustPut(t, c, fmt.Sprintf("dev-%d", i), []byte("x"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Len() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("count-triggered flush never reached the server (%d/4 devices)", srv.Len())
		}
		time.Sleep(time.Millisecond)
	}
	if st := c.Stats(); st.FlushedPuts < 4 {
		t.Fatalf("FlushedPuts = %d, want >= 4", st.FlushedPuts)
	}
}

func TestWriteBehindFlushesByAge(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	c := dialServer(t, srv, ClientConfig{FlushCount: 1 << 30, FlushAge: 10 * time.Millisecond})

	mustPut(t, c, "dev", []byte("x"))
	deadline := time.Now().Add(5 * time.Second)
	for srv.Len() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("age-triggered flush never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGetReadsThroughDirtyQueue(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	c := dialServer(t, srv, manualFlush)

	mustPut(t, c, "dev", []byte("v1"))
	mustPut(t, c, "dev", []byte("v2")) // coalesces
	got, ok := mustGet(t, c, "dev")
	if !ok || string(got) != "v2" {
		t.Fatalf("dirty read-through: got %q ok=%v, want v2", got, ok)
	}
	if gets := srv.Stats().Gets; gets != 0 {
		t.Fatalf("server saw %d gets for a dirty-queue hit, want 0", gets)
	}
	// The queued entry lists locally before any flush.
	devices, err := c.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 1 || devices[0] != "dev" {
		t.Fatalf("Devices = %v, want [dev]", devices)
	}
}

func TestPutFailsFastWhenQueueFull(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	c := dialServer(t, srv, ClientConfig{FlushCount: 1 << 30, FlushAge: time.Hour, MaxPending: 2})

	mustPut(t, c, "a", []byte("x"))
	mustPut(t, c, "b", []byte("x"))
	if err := c.Put("c", []byte("x")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("put at MaxPending: got %v, want ErrQueueFull", err)
	}
	// Coalescing into an existing entry still works at the bound.
	mustPut(t, c, "a", []byte("y"))
	if st := c.Stats(); st.QueueFull != 1 {
		t.Fatalf("QueueFull = %d, want 1", st.QueueFull)
	}
}

func TestDeleteDropsQueuedWrite(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	c := dialServer(t, srv, manualFlush)

	mustPut(t, c, "dev", []byte("doomed"))
	if err := c.Delete("dev"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustGet(t, c, "dev"); ok {
		t.Fatal("deleted device resurrected by a later flush")
	}
	if got := srv.Len(); got != 0 {
		t.Fatalf("server holds %d devices, want 0", got)
	}
}

// TestVersionFenceProperty is the write-behind versioning property test:
// an old owner (client A) holds a delayed queued write for every device —
// at most one per device, which is what the monitor's
// spill → rehydrate → Delete cycle structurally guarantees — while the
// new owner (client B) runs the takeover sequence (Get, Delete, Put,
// Flush). A's Flush is injected at a random point of B's sequence, across
// many seeded interleavings. Whatever the interleaving, the server must
// end holding B's final write: a stale flush can never clobber a newer
// owner's state.
func TestVersionFenceProperty(t *testing.T) {
	const seeds = 30
	const devices = 4
	var totalStaleDrops uint64

	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			srv := startServer(t, ServerConfig{})
			a := dialServer(t, srv, manualFlush)
			b := dialServer(t, srv, manualFlush)

			devs := make([]string, devices)
			for i := range devs {
				devs[i] = fmt.Sprintf("dev-%d", i)
			}

			// A's history: some devices were spilled and flushed before the
			// takeover (the store already holds A's old state), and every
			// device has one more queued write that has not flushed yet.
			for _, d := range devs {
				if rng.Intn(2) == 0 {
					mustPut(t, a, d, []byte("A-old:"+d))
					if err := a.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				mustPut(t, a, d, []byte("A-stale:"+d))
			}

			// B's takeover: per device Get (restore), Delete (consume), Put
			// (B's own spill later), then one final Flush. A's delayed Flush
			// lands at a random position in that op sequence.
			type op func()
			var ops []op
			for _, d := range devs {
				d := d
				ops = append(ops,
					func() { b.Get(d) },
					func() {
						if err := b.Delete(d); err != nil {
							t.Fatal(err)
						}
					},
					func() { mustPut(t, b, d, []byte("B-final:"+d)) },
				)
			}
			ops = append(ops, func() {
				if err := b.Flush(); err != nil {
					t.Fatal(err)
				}
			})
			pos := rng.Intn(len(ops) + 1)
			ops = append(ops[:pos], append([]op{func() { a.Flush() }}, ops[pos:]...)...)
			for _, o := range ops {
				o()
			}
			// Drain both ends regardless of where the injected flushes fell.
			a.Flush()
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}

			check := dialServer(t, srv, manualFlush)
			for _, d := range devs {
				got, ok := mustGet(t, check, d)
				want := "B-final:" + d
				if !ok || string(got) != want {
					t.Fatalf("device %s: server holds %q ok=%v, want %q (stale flush clobbered the takeover)",
						d, got, ok, want)
				}
			}
			totalStaleDrops += srv.Stats().StaleDrops + a.Stats().StaleDrops
		})
	}
	if totalStaleDrops == 0 {
		t.Fatal("no interleaving exercised the versioning fence — the property test proves nothing")
	}
}

// TestBackingDurability proves the tier survives a server restart when
// backed by a disk store: blobs and the per-device version fence both
// come back.
func TestBackingDurability(t *testing.T) {
	dir := t.TempDir()
	backing, err := core.NewDiskStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, ServerConfig{Backing: backing})
	c := dialServer(t, srv, manualFlush)

	// Three put+flush rounds walk dev-a to version 3.
	for i := 1; i <= 3; i++ {
		mustPut(t, c, "dev-a", []byte(fmt.Sprintf("a-v%d", i)))
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(t, c, "dev-b", []byte("b-v1"))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("dev-b"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()

	backing2, err := core.NewDiskStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := startServer(t, ServerConfig{Backing: backing2})
	if got := srv2.Len(); got != 1 {
		t.Fatalf("restarted server holds %d devices, want 1", got)
	}
	c2 := dialServer(t, srv2, manualFlush)
	got, ok := mustGet(t, c2, "dev-a")
	if !ok || string(got) != "a-v3" {
		t.Fatalf("dev-a after restart: %q ok=%v, want a-v3", got, ok)
	}

	// The version fence survived the restart: a fresh client's first Put
	// (version 1) is stale against the restored version 3 and must drop.
	fresh := dialServer(t, srv2, manualFlush)
	mustPut(t, fresh, "dev-a", []byte("imposter"))
	if err := fresh.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := mustGet(t, c2, "dev-a"); string(got) != "a-v3" {
		t.Fatalf("restored fence did not drop the stale write: server holds %q", got)
	}
	if fresh.Stats().StaleDrops == 0 {
		t.Fatal("fresh client saw no stale drop")
	}
	// The drop taught the client the version in force; its next write wins.
	mustPut(t, fresh, "dev-a", []byte("a-v4"))
	if err := fresh.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := mustGet(t, c2, "dev-a"); string(got) != "a-v4" {
		t.Fatalf("post-drop write did not land: server holds %q", got)
	}
}

// TestBackingAdoptsPlainStateDir proves a directory written by a plain
// -state-dir daemon promotes into the shared tier: raw (non-enveloped)
// blobs load as version 1.
func TestBackingAdoptsPlainStateDir(t *testing.T) {
	dir := t.TempDir()
	plain, err := core.NewDiskStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Put("dev-legacy", []byte("legacy-state")); err != nil {
		t.Fatal(err)
	}

	backing, err := core.NewDiskStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, ServerConfig{Backing: backing})
	if got := srv.Len(); got != 1 {
		t.Fatalf("server adopted %d devices, want 1", got)
	}
	c := dialServer(t, srv, manualFlush)
	got, ok := mustGet(t, c, "dev-legacy")
	if !ok || string(got) != "legacy-state" {
		t.Fatalf("adopted blob: %q ok=%v, want legacy-state", got, ok)
	}
}

// TestClientRedialsAfterConnectionLoss drops the client's connection out
// from under it and checks the next RPC transparently redials.
func TestClientRedialsAfterConnectionLoss(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	c := dialServer(t, srv, manualFlush)

	mustPut(t, c, "dev", []byte("v1"))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	c.rpcMu.Lock()
	c.conn.Close()
	c.rpcMu.Unlock()

	mustPut(t, c, "dev", []byte("v2"))
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after connection loss: %v", err)
	}
	c2 := dialServer(t, srv, manualFlush)
	if got, _ := mustGet(t, c2, "dev"); string(got) != "v2" {
		t.Fatalf("server holds %q after redial, want v2", got)
	}
}

// TestServerRejectsMalformedFrame speaks garbage to the server directly:
// the reply is an in-band error and the connection is dropped, never a
// crash or a hang.
func TestServerRejectsMalformedFrame(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Valid length prefix, garbage payload.
	if _, err := conn.Write([]byte{0, 0, 0, 3, 0xde, 0xad, 0xbf}); err != nil {
		t.Fatal(err)
	}
	var lenBuf [4]byte
	if _, err := readFull(conn, lenBuf[:]); err != nil {
		t.Fatalf("reading error reply length: %v", err)
	}
	n := int(lenBuf[0])<<24 | int(lenBuf[1])<<16 | int(lenBuf[2])<<8 | int(lenBuf[3])
	payload := make([]byte, n)
	if _, err := readFull(conn, payload); err != nil {
		t.Fatalf("reading error reply: %v", err)
	}
	resp, err := decodeMessage(payload)
	if err != nil {
		t.Fatalf("decoding error reply: %v", err)
	}
	if resp.op != opErr {
		t.Fatalf("reply op = 0x%02x, want opErr", resp.op)
	}
	// The server hangs up after an in-band error.
	if _, err := conn.Read(lenBuf[:]); err == nil {
		t.Fatal("connection still open after malformed frame")
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TestWireRoundTrip pushes every op's message shape through
// encode/decode over seeded random content.
func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	msgs := []message{
		{op: opPut, seq: 1, puts: []putEntry{
			{device: "a", ver: 1, blob: randBytes(0)},
			{device: "device/with=odd:chars", ver: 1 << 40, blob: randBytes(300)},
		}},
		{op: opGet, seq: 2, device: "dev"},
		{op: opDelete, seq: 3, device: ""},
		{op: opList, seq: 4},
		{op: opPutOK, seq: 5, vers: []uint64{0, 1, 1 << 50}},
		{op: opGetOK, seq: 6, found: true, ver: 9, blob: randBytes(64)},
		{op: opGetOK, seq: 7, found: false, ver: 3},
		{op: opDeleteOK, seq: 8, ver: 12},
		{op: opListOK, seq: 9, devices: []string{"a", "b", "c"}},
		{op: opListOK, seq: 10},
		{op: opErr, seq: 11, errMsg: "boom"},
	}
	for i, m := range msgs {
		enc, err := appendMessage(nil, m)
		if err != nil {
			t.Fatalf("msg %d: encode: %v", i, err)
		}
		dec, err := decodeMessage(enc)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if fmt.Sprintf("%+v", dec) != fmt.Sprintf("%+v", m) {
			t.Fatalf("msg %d round trip:\n got %+v\nwant %+v", i, dec, m)
		}
		// Trailing garbage must not decode.
		if _, err := decodeMessage(append(enc, 0)); err == nil {
			t.Fatalf("msg %d: trailing byte accepted", i)
		}
	}

	for n := 0; n < 50; n++ {
		ver := rng.Uint64()
		blob := randBytes(rng.Intn(200))
		env := appendEnvelope(nil, ver, blob)
		gotVer, gotBlob, ok := decodeEnvelope(env)
		if !ok || gotVer != ver || !bytes.Equal(gotBlob, blob) {
			t.Fatalf("envelope round trip: ver %d ok=%v", gotVer, ok)
		}
	}
	if _, _, ok := decodeEnvelope([]byte(`{"json":"plain state"}`)); ok {
		t.Fatal("plain JSON decoded as an envelope")
	}
}
