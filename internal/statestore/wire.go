package statestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format, in the style of the cluster's binary wire v2: every frame
// is a 4-byte big-endian length followed by that many payload bytes, and
// the payload is
//
//	magic (0xF6) | version (1) | op | uvarint seq | op-specific body
//
// with strings and blobs as uvarint-length-prefixed bytes. The magic
// differs from the cluster protocol's (0xF7) so a misdirected connection
// fails loudly at the first frame, and the frame bound stays at or below
// the cluster's MaxFrameBytes so clustertest.ChaosProxy — which enforces
// only the length bound and forwards undecodable frames verbatim — can
// sit in front of a state server in the chaos suites.
const (
	wireMagic     = 0xF6
	wireVersion   = 1
	maxFrameBytes = 64 << 20
)

// Operation codes. Requests and replies share the message struct; every
// reply echoes the request's seq.
const (
	opPut      = 0x01 // puts                → opPutOK vers (per entry, version now in force)
	opGet      = 0x02 // device              → opGetOK found, ver, blob
	opDelete   = 0x03 // device              → opDeleteOK ver (the tombstone's)
	opList     = 0x04 // —                   → opListOK devices
	opPutOK    = 0x81
	opGetOK    = 0x82
	opDeleteOK = 0x83
	opListOK   = 0x84
	opErr      = 0xFF // errMsg (in-band server error; not a transport failure)
)

// putEntry is one device's versioned blob inside a batched opPut.
type putEntry struct {
	device string
	ver    uint64
	blob   []byte
}

// message is the decoded form of any frame; which fields are meaningful
// depends on op.
type message struct {
	op  byte
	seq uint64

	device  string     // opGet, opDelete
	puts    []putEntry // opPut
	vers    []uint64   // opPutOK
	found   bool       // opGetOK
	ver     uint64     // opGetOK, opDeleteOK
	blob    []byte     // opGetOK
	devices []string   // opListOK
	errMsg  string     // opErr
}

var errMalformed = fmt.Errorf("statestore: malformed frame")

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errMalformed
	}
	return v, b[n:], nil
}

// readBytes returns a sub-slice aliasing b: callers that retain the
// result past the read buffer's reuse must copy it.
func readBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil || n > uint64(len(rest)) {
		return nil, nil, errMalformed
	}
	return rest[:n], rest[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	raw, rest, err := readBytes(b)
	return string(raw), rest, err
}

// appendMessage encodes m onto dst (which may be a reused scratch
// buffer) and returns the extended slice.
func appendMessage(dst []byte, m message) ([]byte, error) {
	dst = append(dst, wireMagic, wireVersion, m.op)
	dst = binary.AppendUvarint(dst, m.seq)
	switch m.op {
	case opPut:
		dst = binary.AppendUvarint(dst, uint64(len(m.puts)))
		for _, p := range m.puts {
			dst = appendString(dst, p.device)
			dst = binary.AppendUvarint(dst, p.ver)
			dst = appendBytes(dst, p.blob)
		}
	case opGet, opDelete:
		dst = appendString(dst, m.device)
	case opList:
	case opPutOK:
		dst = binary.AppendUvarint(dst, uint64(len(m.vers)))
		for _, v := range m.vers {
			dst = binary.AppendUvarint(dst, v)
		}
	case opGetOK:
		if m.found {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendUvarint(dst, m.ver)
		dst = appendBytes(dst, m.blob)
	case opDeleteOK:
		dst = binary.AppendUvarint(dst, m.ver)
	case opListOK:
		dst = binary.AppendUvarint(dst, uint64(len(m.devices)))
		for _, d := range m.devices {
			dst = appendString(dst, d)
		}
	case opErr:
		dst = appendString(dst, m.errMsg)
	default:
		return nil, fmt.Errorf("statestore: encoding unknown op 0x%02x", m.op)
	}
	return dst, nil
}

// decodeMessage parses a frame payload. Strings and blobs alias the
// payload; the whole payload must be consumed (trailing bytes are an
// error, like the cluster codec). Errors, never panics, on adversarial
// input: every length is checked against the remaining bytes.
func decodeMessage(payload []byte) (message, error) {
	if len(payload) < 3 || payload[0] != wireMagic || payload[1] != wireVersion {
		return message{}, errMalformed
	}
	m := message{op: payload[2]}
	rest := payload[3:]
	var err error
	if m.seq, rest, err = readUvarint(rest); err != nil {
		return message{}, err
	}
	switch m.op {
	case opPut:
		var n uint64
		if n, rest, err = readUvarint(rest); err != nil {
			return message{}, err
		}
		if n > uint64(len(rest)) { // each entry takes >= 1 byte
			return message{}, errMalformed
		}
		m.puts = make([]putEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			var p putEntry
			if p.device, rest, err = readString(rest); err != nil {
				return message{}, err
			}
			if p.ver, rest, err = readUvarint(rest); err != nil {
				return message{}, err
			}
			if p.blob, rest, err = readBytes(rest); err != nil {
				return message{}, err
			}
			m.puts = append(m.puts, p)
		}
	case opGet, opDelete:
		if m.device, rest, err = readString(rest); err != nil {
			return message{}, err
		}
	case opList:
	case opPutOK:
		var n uint64
		if n, rest, err = readUvarint(rest); err != nil {
			return message{}, err
		}
		if n > uint64(len(rest)) {
			return message{}, errMalformed
		}
		m.vers = make([]uint64, 0, n)
		for i := uint64(0); i < n; i++ {
			var v uint64
			if v, rest, err = readUvarint(rest); err != nil {
				return message{}, err
			}
			m.vers = append(m.vers, v)
		}
	case opGetOK:
		if len(rest) < 1 {
			return message{}, errMalformed
		}
		m.found = rest[0] != 0
		rest = rest[1:]
		if m.ver, rest, err = readUvarint(rest); err != nil {
			return message{}, err
		}
		if m.blob, rest, err = readBytes(rest); err != nil {
			return message{}, err
		}
	case opDeleteOK:
		if m.ver, rest, err = readUvarint(rest); err != nil {
			return message{}, err
		}
	case opListOK:
		var n uint64
		if n, rest, err = readUvarint(rest); err != nil {
			return message{}, err
		}
		if n > uint64(len(rest)) {
			return message{}, errMalformed
		}
		m.devices = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var d string
			if d, rest, err = readString(rest); err != nil {
				return message{}, err
			}
			m.devices = append(m.devices, d)
		}
	case opErr:
		if m.errMsg, rest, err = readString(rest); err != nil {
			return message{}, err
		}
	default:
		return message{}, fmt.Errorf("statestore: unknown op 0x%02x", m.op)
	}
	if len(rest) != 0 {
		return message{}, errMalformed
	}
	return m, nil
}

// writeFrame writes one length-prefixed frame and flushes.
func writeFrame(bw *bufio.Writer, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("statestore: frame of %d bytes exceeds the %d-byte bound", len(payload), maxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// readFrame reads one frame payload, reusing buf when it fits. The
// returned slice is only valid until the next call with the same buf.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrameBytes {
		return nil, fmt.Errorf("statestore: frame of %d bytes exceeds the %d-byte bound", n, maxFrameBytes)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Envelope for blobs persisted through a backing core.StateStore: a
// version byte, the device's uvarint version, then the raw blob — so the
// monotonic fence survives a server restart over the same directory. A
// backing blob without the envelope (a plain -state-dir promoted to the
// shared tier) is adopted as version 1: JSON state never starts with
// byte 0x01, so the two are unambiguous.
const envelopeVersion = 0x01

func appendEnvelope(dst []byte, ver uint64, blob []byte) []byte {
	dst = append(dst, envelopeVersion)
	dst = binary.AppendUvarint(dst, ver)
	return append(dst, blob...)
}

func decodeEnvelope(b []byte) (ver uint64, blob []byte, ok bool) {
	if len(b) == 0 || b[0] != envelopeVersion {
		return 0, nil, false
	}
	v, n := binary.Uvarint(b[1:])
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[1+n:], true
}
