package autoenc

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"webtxprofile/internal/sparse"
)

// cluster builds window-like vectors over a dim-column universe: a fixed
// core plus random noise columns.
func cluster(r *rand.Rand, n, dim int, core []int, noise []int, pNoise float64) []sparse.Vector {
	out := make([]sparse.Vector, n)
	for i := range out {
		dense := map[int]float64{}
		for _, c := range core {
			dense[c] = 1
		}
		for _, c := range noise {
			if r.Float64() < pNoise {
				dense[c] = 1
			}
		}
		out[i] = sparse.New(dense)
	}
	return out
}

const dim = 40

func TestTrainSeparatesUsers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	self := cluster(r, 200, dim, []int{0, 3, 7, 11}, []int{20, 21}, 0.4)
	other := cluster(r, 100, dim, []int{25, 28, 31, 35}, []int{5, 6}, 0.4)
	m, err := Train(self, dim, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AcceptanceRatio(self); got < 0.85 {
		t.Errorf("self acceptance = %.3f", got)
	}
	if got := m.AcceptanceRatio(other); got > 0.1 {
		t.Errorf("other acceptance = %.3f", got)
	}
}

func TestNuControlsTrainingRejection(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := cluster(r, 200, dim, []int{0, 3}, []int{10, 11, 12, 13}, 0.5)
	for _, nu := range []float64{0.05, 0.2} {
		m, err := Train(xs, dim, Config{Seed: 2, Nu: nu})
		if err != nil {
			t.Fatal(err)
		}
		rejected := 1 - m.AcceptanceRatio(xs)
		if rejected > nu+0.05 {
			t.Errorf("nu=%v: rejected %.3f of training data", nu, rejected)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := cluster(r, 50, dim, []int{1, 2}, []int{8, 9}, 0.4)
	m1, err := Train(xs, dim, Config{Seed: 9, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(xs, dim, Config{Seed: 9, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Threshold != m2.Threshold {
		t.Error("training not deterministic")
	}
	m3, err := Train(xs, dim, Config{Seed: 10, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Threshold == m3.Threshold {
		t.Error("seed has no effect")
	}
}

func TestTrainValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	xs := cluster(r, 10, dim, []int{0}, nil, 0)
	cases := []struct {
		name string
		run  func() error
	}{
		{"empty", func() error { _, err := Train(nil, dim, Config{}); return err }},
		{"zero dim", func() error { _, err := Train(xs, 0, Config{}); return err }},
		{"index out of range", func() error {
			_, err := Train([]sparse.Vector{sparse.New(map[int]float64{dim + 5: 1})}, dim, Config{})
			return err
		}},
		{"bad nu", func() error { _, err := Train(xs, dim, Config{Nu: 1}); return err }},
		{"bad lr", func() error { _, err := Train(xs, dim, Config{LearningRate: -1}); return err }},
		{"bad hidden", func() error { _, err := Train(xs, dim, Config{Hidden: -2}); return err }},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestReconstructionErrorProperties(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := cluster(r, 100, dim, []int{0, 3, 7}, []int{15}, 0.3)
	m, err := Train(xs, dim, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Training-like vectors reconstruct better than a far-off vector.
	far := sparse.New(map[int]float64{30: 1, 31: 1, 32: 1, 33: 1})
	trainErr := m.ReconstructionError(xs[0])
	farErr := m.ReconstructionError(far)
	if trainErr >= farErr {
		t.Errorf("training error %.5f not below foreign error %.5f", trainErr, farErr)
	}
	if trainErr < 0 || math.IsNaN(trainErr) {
		t.Errorf("bad error %v", trainErr)
	}
	// Decision convention matches Accept.
	if (m.Decision(xs[0]) >= 0) != m.Accept(xs[0]) {
		t.Error("Decision and Accept disagree")
	}
}

func TestAcceptanceRatioEmpty(t *testing.T) {
	m := &Model{Dim: 1, Hidden: 1}
	if m.AcceptanceRatio(nil) != 0 {
		t.Error("empty acceptance != 0")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	xs := cluster(r, 60, dim, []int{2, 5}, []int{9}, 0.4)
	m, err := Train(xs, dim, Config{Seed: 6, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[:10] {
		if a, b := m.Decision(x), back.Decision(x); a != b {
			t.Fatalf("decision drift: %v vs %v", a, b)
		}
	}
}

func TestValidateRejectsCorrupt(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := cluster(r, 20, dim, []int{0}, nil, 0)
	m, err := Train(xs, dim, Config{Seed: 7, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("trained model invalid: %v", err)
	}
	bad := *m
	bad.W1 = bad.W1[:len(bad.W1)-1]
	if bad.Validate() == nil {
		t.Error("truncated W1 accepted")
	}
	bad2 := *m
	bad2.Dim = 0
	if bad2.Validate() == nil {
		t.Error("zero dim accepted")
	}
}
