// Package autoenc implements the one-class autoencoder the paper names as
// future work (Sect. VII: "We plan to test other one-class classification
// algorithms e.g. auto encoders"): a single-hidden-layer autoencoder
// trained on a user's window vectors, accepting a window when its
// reconstruction error stays below a threshold calibrated on the training
// data (the ν-quantile, mirroring the OC-SVM outlier budget).
//
// The network is deliberately small — sigmoid activations, SGD — because
// window vectors are sparse, low-entropy and near-binary; it exists to
// compare the model family against the SVM-based classifiers, not to be a
// deep-learning framework.
package autoenc

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"webtxprofile/internal/sparse"
)

// Config parameterizes training. Zero values select the defaults.
type Config struct {
	// Hidden is the hidden-layer width (default 32).
	Hidden int
	// Epochs is the number of SGD passes (default 30).
	Epochs int
	// LearningRate is the initial SGD step (default 0.5, decaying per
	// epoch).
	LearningRate float64
	// Nu is the training outlier budget for threshold calibration
	// (default 0.1), playing the role of the OC-SVM ν.
	Nu float64
	// L2 is the weight-decay coefficient (default 1e-5).
	L2 float64
	// Seed drives weight initialization and sample shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
	if c.Nu == 0 {
		c.Nu = 0.1
	}
	if c.L2 == 0 {
		c.L2 = 1e-5
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Hidden < 1:
		return fmt.Errorf("autoenc: hidden width %d must be >= 1", c.Hidden)
	case c.Epochs < 1:
		return fmt.Errorf("autoenc: epochs %d must be >= 1", c.Epochs)
	case c.LearningRate <= 0:
		return fmt.Errorf("autoenc: learning rate %g must be positive", c.LearningRate)
	case c.Nu < 0 || c.Nu >= 1:
		return fmt.Errorf("autoenc: nu %g out of [0, 1)", c.Nu)
	case c.L2 < 0:
		return fmt.Errorf("autoenc: l2 %g must be non-negative", c.L2)
	}
	return nil
}

// Model is a trained one-class autoencoder.
type Model struct {
	Dim    int `json:"dim"`
	Hidden int `json:"hidden"`
	// W1 (hidden × dim) and B1 feed the hidden layer; W2 (dim × hidden)
	// and B2 reconstruct the input.
	W1 [][]float64 `json:"w1"`
	B1 []float64   `json:"b1"`
	W2 [][]float64 `json:"w2"`
	B2 []float64   `json:"b2"`
	// Threshold is the calibrated acceptance cut on reconstruction error.
	Threshold float64 `json:"threshold"`
	// Nu records the calibration budget.
	Nu float64 `json:"nu"`
}

// Train fits an autoencoder on the window vectors. dim is the feature
// dimensionality (the vocabulary size); indexes at or above dim are
// rejected.
func Train(xs []sparse.Vector, dim int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("autoenc: empty training set")
	}
	if dim < 1 {
		return nil, fmt.Errorf("autoenc: dimension %d must be >= 1", dim)
	}
	for i := range xs {
		if n := xs[i].NNZ(); n > 0 && int(xs[i].Idx[n-1]) >= dim {
			return nil, fmt.Errorf("autoenc: vector %d exceeds dimension %d", i, dim)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Hold out a calibration slice: thresholds set on training
	// reconstruction errors underestimate the generalization error and
	// reject far more than ν of unseen windows. With very few samples the
	// split is skipped.
	fit, calib := xs, xs
	if len(xs) >= 20 {
		cut := len(xs) - len(xs)/5
		fit, calib = xs[:cut], xs[cut:]
	}
	m := &Model{
		Dim:    dim,
		Hidden: cfg.Hidden,
		W1:     randomMatrix(rng, cfg.Hidden, dim, 1/math.Sqrt(float64(dim))),
		B1:     make([]float64, cfg.Hidden),
		W2:     randomMatrix(rng, dim, cfg.Hidden, 1/math.Sqrt(float64(cfg.Hidden))),
		B2:     make([]float64, dim),
		Nu:     cfg.Nu,
	}

	order := rng.Perm(len(fit))
	hidden := make([]float64, cfg.Hidden)
	output := make([]float64, dim)
	deltaOut := make([]float64, dim)
	deltaHid := make([]float64, cfg.Hidden)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		// Fisher–Yates reshuffle per epoch, deterministic from the rng.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, idx := range order {
			m.sgdStep(fit[idx], lr, cfg.L2, hidden, output, deltaOut, deltaHid)
		}
	}

	// Calibrate the threshold at the (1−ν) quantile of held-out errors,
	// so roughly ν of unseen same-user windows are rejected.
	errs := make([]float64, len(calib))
	for i := range calib {
		errs[i] = m.ReconstructionError(calib[i])
	}
	sort.Float64s(errs)
	k := int((1 - cfg.Nu) * float64(len(errs)-1))
	m.Threshold = errs[k]
	return m, nil
}

// sgdStep runs one forward/backward pass on x.
func (m *Model) sgdStep(x sparse.Vector, lr, l2 float64, hidden, output, deltaOut, deltaHid []float64) {
	m.forward(x, hidden, output)
	// Output deltas: (y − x)·σ'(y).
	for j := 0; j < m.Dim; j++ {
		deltaOut[j] = (output[j]) * output[j] * (1 - output[j])
	}
	for k, xi := range x.Idx {
		j := int(xi)
		deltaOut[j] = (output[j] - x.Val[k]) * output[j] * (1 - output[j])
	}
	// Hidden deltas.
	for k := 0; k < m.Hidden; k++ {
		var s float64
		for j := 0; j < m.Dim; j++ {
			s += deltaOut[j] * m.W2[j][k]
		}
		deltaHid[k] = s * hidden[k] * (1 - hidden[k])
	}
	// Update output layer.
	for j := 0; j < m.Dim; j++ {
		dj := deltaOut[j]
		row := m.W2[j]
		for k := 0; k < m.Hidden; k++ {
			row[k] -= lr * (dj*hidden[k] + l2*row[k])
		}
		m.B2[j] -= lr * dj
	}
	// Update hidden layer: only columns with non-zero input move (plus
	// weight decay on those columns).
	for k := 0; k < m.Hidden; k++ {
		dk := deltaHid[k]
		row := m.W1[k]
		for t, xi := range x.Idx {
			j := int(xi)
			row[j] -= lr * (dk*x.Val[t] + l2*row[j])
		}
		m.B1[k] -= lr * dk
	}
}

// forward computes the hidden activations and the reconstruction.
func (m *Model) forward(x sparse.Vector, hidden, output []float64) {
	for k := 0; k < m.Hidden; k++ {
		s := m.B1[k]
		row := m.W1[k]
		for t, xi := range x.Idx {
			s += row[int(xi)] * x.Val[t]
		}
		hidden[k] = sigmoid(s)
	}
	for j := 0; j < m.Dim; j++ {
		s := m.B2[j]
		row := m.W2[j]
		for k := 0; k < m.Hidden; k++ {
			s += row[k] * hidden[k]
		}
		output[j] = sigmoid(s)
	}
}

// ReconstructionError returns the mean squared reconstruction error of x.
func (m *Model) ReconstructionError(x sparse.Vector) float64 {
	hidden := make([]float64, m.Hidden)
	output := make([]float64, m.Dim)
	m.forward(x, hidden, output)
	var sum float64
	dense := x.Dense(m.Dim)
	for j := 0; j < m.Dim; j++ {
		d := output[j] - dense[j]
		sum += d * d
	}
	return sum / float64(m.Dim)
}

// Decision returns threshold − error: non-negative means accepted, the
// same convention as svm.Model.
func (m *Model) Decision(x sparse.Vector) float64 {
	return m.Threshold - m.ReconstructionError(x)
}

// Accept reports whether the window is accepted as the profiled user's.
func (m *Model) Accept(x sparse.Vector) bool {
	return m.Decision(x) >= 0
}

// AcceptanceRatio returns the accepted fraction of xs.
func (m *Model) AcceptanceRatio(xs []sparse.Vector) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if m.Accept(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Validate checks structural integrity (e.g. after deserialization).
func (m *Model) Validate() error {
	if m.Dim < 1 || m.Hidden < 1 {
		return fmt.Errorf("autoenc: invalid shape %dx%d", m.Dim, m.Hidden)
	}
	if len(m.W1) != m.Hidden || len(m.B1) != m.Hidden ||
		len(m.W2) != m.Dim || len(m.B2) != m.Dim {
		return fmt.Errorf("autoenc: inconsistent layer sizes")
	}
	for k := range m.W1 {
		if len(m.W1[k]) != m.Dim {
			return fmt.Errorf("autoenc: W1 row %d has %d columns", k, len(m.W1[k]))
		}
	}
	for j := range m.W2 {
		if len(m.W2[j]) != m.Hidden {
			return fmt.Errorf("autoenc: W2 row %d has %d columns", j, len(m.W2[j]))
		}
	}
	return nil
}

// MarshalJSON serializes the model.
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias Model
	return json.Marshal((*alias)(m))
}

// UnmarshalJSON restores and validates a model.
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias Model
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*m = Model(a)
	return m.Validate()
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func randomMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64() * scale
		}
	}
	return out
}
