package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton != 0")
	}
	if !almost(Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 4) {
		t.Errorf("Variance = %v, want 4", Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Error("StdDev wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 5) {
		t.Error("extremes wrong")
	}
	if !almost(Quantile(xs, 0.5), 3) {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile(xs, 0.25), 2) {
		t.Errorf("q1 = %v", Quantile(xs, 0.25))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	// Clamping.
	if !almost(Quantile(xs, -1), 1) || !almost(Quantile(xs, 2), 5) {
		t.Error("clamping wrong")
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		qa, qb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(raw, qa) <= Quantile(raw, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) succeeded")
	}
	f, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Min != 1 || f.Max != 5 || f.Median != 3 || f.Q1 != 2 || f.Q3 != 4 {
		t.Errorf("summary = %+v", f)
	}
	if !almost(f.IQR(), 2) {
		t.Errorf("IQR = %v", f.IQR())
	}
	if f.String() == "" {
		t.Error("empty String()")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2) || !almost(fit.Intercept, 1) || !almost(fit.R2, 1) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.Predict(10), 21) {
		t.Errorf("Predict(10) = %v", fit.Predict(10))
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.5*xs[i] + 3 + 0.1*r.NormFloat64()
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.5) > 0.01 || math.Abs(fit.Intercept-3) > 0.5 {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitLineFlat(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 0) || !almost(fit.Intercept, 4) || !almost(fit.R2, 1) {
		t.Errorf("flat fit = %+v", fit)
	}
}

func TestHistogram(t *testing.T) {
	bins, err := Histogram([]float64{0, 0.5, 1, 1.5, 2, 9, 10, -5, 11}, 5, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// [0,2): 0, 0.5, 1, 1.5 -> 4; [2,4): 2 -> 1; [8,10]: 9, 10 -> 2.
	want := []int{4, 1, 0, 0, 2}
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bins = %v, want %v", bins, want)
			break
		}
	}
	if _, err := Histogram(nil, 0, 0, 1); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Histogram(nil, 3, 5, 5); err == nil {
		t.Error("empty range accepted")
	}
}
