// Package stats provides the descriptive statistics the experiment harness
// reports: means/variances for the novelty curves (Figs. 1–2), five-number
// box-plot summaries for prediction latency (Fig. 4) and least-squares
// linear fits for the composition-speed scaling (Fig. 5).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It sorts a copy; the input is
// not modified. NaN is returned for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FiveNum is a box-and-whiskers summary: minimum, lower quartile, median,
// upper quartile and maximum, as plotted in Fig. 4 of the paper.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, fmt.Errorf("stats: empty sample")
	}
	return FiveNum{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}, nil
}

// IQR returns the interquartile range.
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

// String renders the summary compactly.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g",
		f.Min, f.Q1, f.Median, f.Q3, f.Max)
}

// LinearFit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits a least-squares line through (xs[i], ys[i]).
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d, %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // all residuals zero on a flat line
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Slope*x + f.Intercept
}

// Histogram counts xs into n equal-width bins over [min, max]. Values at
// max land in the last bin.
func Histogram(xs []float64, n int, min, max float64) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: non-positive bin count %d", n)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: empty range [%g, %g]", min, max)
	}
	bins := make([]int, n)
	width := (max - min) / float64(n)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		b := int((x - min) / width)
		if b >= n {
			b = n - 1
		}
		bins[b]++
	}
	return bins, nil
}
