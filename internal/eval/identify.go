package eval

import (
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
)

// TimelinePoint is one host window of the Fig. 3 identification timeline:
// which user actually generated the window and which user models accepted
// it.
type TimelinePoint struct {
	Start      time.Time
	ActualUser string
	Accepted   []string // sorted model (user) ids that accepted the window
}

// Timeline classifies every host window against every model — the Fig. 3
// experiment — scoring each window against all models in one batch-scorer
// pass. Windows must come from host-specific windowing so that UserCounts
// carries the ground truth.
func Timeline(models map[string]*svm.Model, hostWindows []features.Window) []TimelinePoint {
	users, sc := sortedScorer(models)
	out := make([]TimelinePoint, 0, len(hostWindows))
	for i := range hostWindows {
		w := &hostWindows[i]
		pt := TimelinePoint{Start: w.Start, ActualUser: w.DominantUser()}
		for j, accepted := range sc.AcceptMask(w.Vector) {
			if accepted {
				pt.Accepted = append(pt.Accepted, users[j])
			}
		}
		out = append(out, pt)
	}
	return out
}

// TimelineStats summarizes a timeline the way Sect. V-B discusses Fig. 3.
type TimelineStats struct {
	Windows int
	// ActualAccepted counts windows whose true user's own model accepted.
	ActualAccepted int
	// ExclusiveCorrect counts windows accepted by the true user's model
	// and nobody else's.
	ExclusiveCorrect int
	// MeanAccepting is the mean number of models accepting a window.
	MeanAccepting float64
	// LongestRunByUser maps each user to their longest run of consecutive
	// windows accepted by their model — Fig. 3's observation that the
	// true user holds the longest streak.
	LongestRunByUser map[string]int
}

// Summarize computes timeline statistics over the given model ids.
func Summarize(tl []TimelinePoint, users []string) TimelineStats {
	st := TimelineStats{Windows: len(tl), LongestRunByUser: make(map[string]int, len(users))}
	var totalAccepting int
	run := make(map[string]int, len(users))
	for _, pt := range tl {
		accepted := make(map[string]bool, len(pt.Accepted))
		for _, u := range pt.Accepted {
			accepted[u] = true
		}
		totalAccepting += len(pt.Accepted)
		if accepted[pt.ActualUser] {
			st.ActualAccepted++
			if len(pt.Accepted) == 1 {
				st.ExclusiveCorrect++
			}
		}
		for _, u := range users {
			if accepted[u] {
				run[u]++
				if run[u] > st.LongestRunByUser[u] {
					st.LongestRunByUser[u] = run[u]
				}
			} else {
				run[u] = 0
			}
		}
	}
	if len(tl) > 0 {
		st.MeanAccepting = float64(totalAccepting) / float64(len(tl))
	}
	return st
}

// IdentifyConsecutive implements the identification rule sketched at the
// end of Sect. V-B: a user is identified once their model accepts k
// consecutive windows. It returns the first user to reach k consecutive
// acceptances and the window index where that happened (ok=false when no
// user qualifies).
func IdentifyConsecutive(tl []TimelinePoint, k int) (user string, windowIdx int, ok bool) {
	if k <= 0 {
		k = 1
	}
	run := make(map[string]int)
	for i, pt := range tl {
		accepted := make(map[string]bool, len(pt.Accepted))
		for _, u := range pt.Accepted {
			accepted[u] = true
		}
		// Advance runs for accepted users; others reset. Iterate accepted
		// in sorted order so ties resolve deterministically.
		for _, u := range pt.Accepted {
			run[u]++
			if run[u] >= k {
				return u, i, true
			}
		}
		for u := range run {
			if !accepted[u] {
				run[u] = 0
			}
		}
	}
	return "", 0, false
}
