package eval

import (
	"fmt"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/stats"
	"webtxprofile/internal/weblog"
)

// FieldSelector extracts one augmentation label from a transaction for the
// per-field novelty analysis of Fig. 1. ok is false when the transaction
// carries no value for the field.
type FieldSelector func(tx *weblog.Transaction) (string, bool)

// SelectCategory selects the website category field.
func SelectCategory(tx *weblog.Transaction) (string, bool) {
	return tx.Category, tx.Category != ""
}

// SelectAppType selects the application-type field.
func SelectAppType(tx *weblog.Transaction) (string, bool) {
	return tx.AppType, tx.AppType != ""
}

// SelectMediaSubType selects the media sub-type field (the "media_type"
// series of Fig. 1 tracks sub-types, the largest media dimension).
func SelectMediaSubType(tx *weblog.Transaction) (string, bool) {
	if tx.MediaType.IsZero() {
		return "", false
	}
	return tx.MediaType.Sub, true
}

// NoveltyPoint is one point of the Fig. 1 / Fig. 2 curves: the novelty
// ratio across users after `Week` weeks of observation.
type NoveltyPoint struct {
	Week     int
	Mean     float64
	Variance float64
	// PerUser carries the per-user ratios behind the aggregate (user order
	// matches the `users` argument).
	PerUser []float64
}

// FieldNovelty reproduces the Fig. 1 analysis for one field: for each
// epoch length t (in weeks from start), split each user's transactions
// into observed (before t) and subsequent; the user's novelty ratio is the
// fraction of distinct field values in subsequent that never appeared in
// observed. Users whose subsequent set is empty are skipped for that week.
func FieldNovelty(ds *weblog.Dataset, users []string, weeks []int, start time.Time, sel FieldSelector) ([]NoveltyPoint, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("eval: no users")
	}
	points := make([]NoveltyPoint, 0, len(weeks))
	perUserTx := make(map[string][]weblog.Transaction, len(users))
	for _, u := range users {
		perUserTx[u] = ds.UserTransactions(u)
	}
	for _, w := range weeks {
		cut := start.Add(time.Duration(w) * 7 * 24 * time.Hour)
		pt := NoveltyPoint{Week: w}
		for _, u := range users {
			observed := make(map[string]bool)
			subsequent := make(map[string]bool)
			for i := range perUserTx[u] {
				tx := &perUserTx[u][i]
				v, ok := sel(tx)
				if !ok {
					continue
				}
				if tx.Timestamp.Before(cut) {
					observed[v] = true
				} else {
					subsequent[v] = true
				}
			}
			if len(subsequent) == 0 {
				pt.PerUser = append(pt.PerUser, -1) // marker: skipped
				continue
			}
			novel := 0
			for v := range subsequent {
				if !observed[v] {
					novel++
				}
			}
			pt.PerUser = append(pt.PerUser, float64(novel)/float64(len(subsequent)))
		}
		valid := make([]float64, 0, len(pt.PerUser))
		for _, r := range pt.PerUser {
			if r >= 0 {
				valid = append(valid, r)
			}
		}
		pt.Mean = stats.Mean(valid)
		pt.Variance = stats.Variance(valid)
		points = append(points, pt)
	}
	return points, nil
}

// WindowNovelty reproduces the Fig. 2 analysis: per user, compose windows
// separately from the observed and subsequent transaction sets and report
// the fraction of subsequent window vectors that are not strictly equal to
// any observed window vector.
func WindowNovelty(ds *weblog.Dataset, users []string, weeks []int, start time.Time, vocab *features.Vocabulary, cfg features.WindowConfig) ([]NoveltyPoint, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("eval: no users")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	points := make([]NoveltyPoint, 0, len(weeks))
	perUserTx := make(map[string][]weblog.Transaction, len(users))
	for _, u := range users {
		perUserTx[u] = ds.UserTransactions(u)
	}
	for _, w := range weeks {
		cut := start.Add(time.Duration(w) * 7 * 24 * time.Hour)
		pt := NoveltyPoint{Week: w}
		for _, u := range users {
			txs := perUserTx[u]
			split := 0
			for split < len(txs) && txs[split].Timestamp.Before(cut) {
				split++
			}
			obsWs, err := features.Compose(vocab, cfg, txs[:split], u)
			if err != nil {
				return nil, fmt.Errorf("eval: windowing %s observed: %w", u, err)
			}
			subWs, err := features.Compose(vocab, cfg, txs[split:], u)
			if err != nil {
				return nil, fmt.Errorf("eval: windowing %s subsequent: %w", u, err)
			}
			if len(subWs) == 0 {
				pt.PerUser = append(pt.PerUser, -1)
				continue
			}
			seen := make(map[string]bool, len(obsWs))
			for i := range obsWs {
				seen[obsWs[i].Vector.Key()] = true
			}
			novel := 0
			for i := range subWs {
				if !seen[subWs[i].Vector.Key()] {
					novel++
				}
			}
			pt.PerUser = append(pt.PerUser, float64(novel)/float64(len(subWs)))
		}
		valid := make([]float64, 0, len(pt.PerUser))
		for _, r := range pt.PerUser {
			if r >= 0 {
				valid = append(valid, r)
			}
		}
		pt.Mean = stats.Mean(valid)
		pt.Variance = stats.Variance(valid)
		points = append(points, pt)
	}
	return points, nil
}

// CoverageCount returns the number of distinct values of a field a user
// exhibits over their whole history — the paper reports the averages
// (17.84/105 categories, 17.12/257 sub-types, 19.08/464 application
// types, Sect. IV-B).
func CoverageCount(txs []weblog.Transaction, sel FieldSelector) int {
	seen := make(map[string]bool)
	for i := range txs {
		if v, ok := sel(&txs[i]); ok {
			seen[v] = true
		}
	}
	return len(seen)
}
