package eval

import (
	"math"
	"math/rand"
	"testing"

	"webtxprofile/internal/features"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
)

func rocFixture(t *testing.T) (*svm.Model, []sparse.Vector, []sparse.Vector) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	selfWs := makeWindows(r, "self", 120, []int{0, 1, 2}, []int{10, 11})
	otherWs := makeWindows(r, "other", 120, []int{20, 21, 22}, []int{30, 31})
	m := trainOn(t, selfWs)
	return m, features.Vectors(selfWs), features.Vectors(otherWs)
}

func TestAUCWellSeparated(t *testing.T) {
	m, self, others := rocFixture(t)
	auc, err := AUC(m, self, others)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.95 {
		t.Errorf("AUC = %.3f, want near 1 for separated users", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	// Identical distributions must give AUC ~ 0.5.
	r := rand.New(rand.NewSource(7))
	ws := makeWindows(r, "u", 200, []int{0, 1}, []int{5, 6, 7})
	m := trainOn(t, ws[:100])
	a := features.Vectors(ws[100:150])
	b := features.Vectors(ws[150:])
	auc, err := AUC(m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.15 {
		t.Errorf("AUC = %.3f for identical distributions, want ~0.5", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	m, self, _ := rocFixture(t)
	if _, err := AUC(m, self, nil); err == nil {
		t.Error("empty others accepted")
	}
	if _, err := AUC(m, nil, self); err == nil {
		t.Error("empty self accepted")
	}
}

func TestROCCurveProperties(t *testing.T) {
	m, self, others := rocFixture(t)
	curve, err := ROC(m, self, others, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Endpoints: (0,0)-ish and (1,1).
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("first point = %+v, want origin", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("last point = %+v, want (1,1)", last)
	}
	// Monotone in both axes after sorting.
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR-1e-12 {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
	// A well-separated model dominates the diagonal somewhere.
	dominated := false
	for _, p := range curve {
		if p.TPR > p.FPR+0.5 {
			dominated = true
		}
	}
	if !dominated {
		t.Error("curve never dominates the diagonal strongly")
	}
}

func TestROCErrors(t *testing.T) {
	m, self, _ := rocFixture(t)
	if _, err := ROC(m, self, nil, 10); err == nil {
		t.Error("empty others accepted")
	}
}
