package eval

import (
	"fmt"
	"sort"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
)

// ROCPoint is one operating point of a model's threshold sweep: moving
// the decision cut trades self-acceptance (TPR) against other-acceptance
// (FPR). The paper fixes the cut at the trained threshold; the sweep shows
// the full trade-off.
type ROCPoint struct {
	Offset float64 // added to the decision value before the sign test
	TPR    float64
	FPR    float64
}

// ROC sweeps the acceptance threshold of a trained model over the union
// of self and other decision values, producing at most maxPoints points
// ordered by increasing FPR.
func ROC(m *svm.Model, self, others []sparse.Vector, maxPoints int) ([]ROCPoint, error) {
	if len(self) == 0 || len(others) == 0 {
		return nil, fmt.Errorf("eval: ROC needs both self and other samples")
	}
	if maxPoints < 2 {
		maxPoints = 64
	}
	selfScores := decisions(m, self)
	otherScores := decisions(m, others)

	// Candidate offsets: make every distinct score a switching point,
	// then subsample to maxPoints.
	all := make([]float64, 0, len(selfScores)+len(otherScores))
	all = append(all, selfScores...)
	all = append(all, otherScores...)
	sort.Float64s(all)
	step := len(all) / maxPoints
	if step < 1 {
		step = 1
	}
	var curve []ROCPoint
	add := func(offset float64) {
		curve = append(curve, ROCPoint{
			Offset: offset,
			TPR:    fracAtLeast(selfScores, -offset),
			FPR:    fracAtLeast(otherScores, -offset),
		})
	}
	// Extremes: accept-nothing and accept-everything.
	add(-(all[len(all)-1] + 1))
	for i := 0; i < len(all); i += step {
		add(-all[i])
	}
	add(-(all[0] - 1))
	sort.Slice(curve, func(i, j int) bool {
		if curve[i].FPR != curve[j].FPR {
			return curve[i].FPR < curve[j].FPR
		}
		return curve[i].TPR < curve[j].TPR
	})
	return curve, nil
}

// AUC computes the area under the ROC directly from the decision scores
// via the Mann–Whitney statistic: P(self > other) + ½P(self = other).
func AUC(m *svm.Model, self, others []sparse.Vector) (float64, error) {
	if len(self) == 0 || len(others) == 0 {
		return 0, fmt.Errorf("eval: AUC needs both self and other samples")
	}
	selfScores := decisions(m, self)
	otherScores := decisions(m, others)
	sort.Float64s(otherScores)
	var sum float64
	n := float64(len(otherScores))
	for _, s := range selfScores {
		below := sort.SearchFloat64s(otherScores, s)
		// Count ties for the ½ credit.
		above := below
		for above < len(otherScores) && otherScores[above] == s {
			above++
		}
		sum += (float64(below) + float64(above-below)/2) / n
	}
	return sum / float64(len(selfScores)), nil
}

func decisions(m *svm.Model, xs []sparse.Vector) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = m.Decision(xs[i])
	}
	return out
}

func fracAtLeast(scores []float64, threshold float64) float64 {
	n := 0
	for _, s := range scores {
		if s >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(scores))
}
