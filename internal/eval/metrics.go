// Package eval implements the paper's evaluation machinery: acceptance
// ratios (ACC_self, ACC_other, ACC — Sect. IV-C), the user-differentiation
// confusion matrix (Table V), the temporal novelty analyses behind Figs. 1
// and 2, and the user-identification timeline of Fig. 3.
package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
)

// Acceptance is the paper's model-quality triple: the ratio of accepted
// windows from the profiled user (ACC_self, to maximize), from other users
// (ACC_other, to minimize), and the objective ACC = ACC_self − ACC_other.
type Acceptance struct {
	Self  float64
	Other float64
}

// ACC returns the global acceptance objective ACC_self − ACC_other.
func (a Acceptance) ACC() float64 { return a.Self - a.Other }

// String renders the triple in percent, as the paper's tables do.
func (a Acceptance) String() string {
	return fmt.Sprintf("self=%.1f%% other=%.1f%% acc=%.1f%%",
		100*a.Self, 100*a.Other, 100*a.ACC())
}

// Accept evaluates a model on windows and returns the accepted fraction
// (0 when windows is empty). Callers that score many models on the same
// window sets (the grid search in particular) should materialize the
// vectors once with features.Vectors and use svm.Model.AcceptanceRatio
// directly instead of re-extracting them per model.
func Accept(m *svm.Model, ws []features.Window) float64 {
	return m.AcceptanceRatio(features.Vectors(ws))
}

// UserAcceptance computes the triple for one user's model: self on the
// user's windows, other as the mean acceptance across every other user's
// window set (each user weighted equally, as in Tab. II).
func UserAcceptance(m *svm.Model, user string, windows map[string][]features.Window) Acceptance {
	a := Acceptance{Self: Accept(m, windows[user])}
	var sum float64
	n := 0
	for other, ws := range windows {
		if other == user || len(ws) == 0 {
			continue
		}
		sum += Accept(m, ws)
		n++
	}
	if n > 0 {
		a.Other = sum / float64(n)
	}
	return a
}

// ConfusionMatrix is the Table V structure: Ratio[i][j] is the fraction of
// user j's windows accepted by user i's model, with users in sorted order.
type ConfusionMatrix struct {
	Users []string
	Ratio [][]float64
}

// sortedScorer builds a batch scorer over the models with users in sorted
// order — the shared scoring loop behind Confusion and Timeline.
func sortedScorer(models map[string]*svm.Model) ([]string, *svm.Scorer) {
	users := make([]string, 0, len(models))
	for u := range models {
		users = append(users, u)
	}
	sort.Strings(users)
	ms := make([]*svm.Model, len(users))
	for i, u := range users {
		ms[i] = models[u]
	}
	return users, svm.NewScorer(ms)
}

// Confusion evaluates every model against every user's windows. Each
// window is scored once against all models via the batch scorer (hitting
// the linear-kernel fast path where available) instead of re-walking the
// window sets per model.
func Confusion(models map[string]*svm.Model, windows map[string][]features.Window) *ConfusionMatrix {
	users, sc := sortedScorer(models)
	cm := &ConfusionMatrix{Users: users, Ratio: make([][]float64, len(users))}
	for i := range users {
		cm.Ratio[i] = make([]float64, len(users))
	}
	counts := make([]int, len(users))
	for j, tu := range users {
		ws := windows[tu]
		if len(ws) == 0 {
			continue
		}
		clear(counts)
		for w := range ws {
			for i, accepted := range sc.AcceptMask(ws[w].Vector) {
				if accepted {
					counts[i]++
				}
			}
		}
		for i := range users {
			cm.Ratio[i][j] = float64(counts[i]) / float64(len(ws))
		}
	}
	return cm
}

// Mean returns the averaged acceptance triple over all users: the mean
// diagonal (ACC_self) and the mean off-diagonal (ACC_other), as reported
// in Tab. IV.
func (c *ConfusionMatrix) Mean() Acceptance {
	n := len(c.Users)
	if n == 0 {
		return Acceptance{}
	}
	var self, other float64
	for i := range c.Ratio {
		for j := range c.Ratio[i] {
			if i == j {
				self += c.Ratio[i][j]
			} else {
				other += c.Ratio[i][j]
			}
		}
	}
	a := Acceptance{Self: self / float64(n)}
	if n > 1 {
		a.Other = other / float64(n*(n-1))
	}
	return a
}

// Diagonal returns the per-user self-acceptance values in user order.
func (c *ConfusionMatrix) Diagonal() []float64 {
	out := make([]float64, len(c.Users))
	for i := range c.Users {
		out[i] = c.Ratio[i][i]
	}
	return out
}

// Format writes the matrix as a percent table in the layout of Table V:
// one row per model, one column per test set.
func (c *ConfusionMatrix) Format(w io.Writer) error {
	var b strings.Builder
	b.WriteString("model")
	for j := range c.Users {
		fmt.Fprintf(&b, "\tt%d", j+1)
	}
	b.WriteByte('\n')
	for i := range c.Users {
		fmt.Fprintf(&b, "m%d", i+1)
		for j := range c.Ratio[i] {
			fmt.Fprintf(&b, "\t%.1f", 100*c.Ratio[i][j])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
