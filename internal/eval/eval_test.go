package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

var start = time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC)

// makeWindows builds n windows for a user whose vectors cluster on the
// given core columns.
func makeWindows(r *rand.Rand, user string, n int, core []int, noise []int) []features.Window {
	out := make([]features.Window, n)
	for i := range out {
		dense := map[int]float64{}
		for _, c := range core {
			dense[c] = 1
		}
		for _, c := range noise {
			if r.Float64() < 0.4 {
				dense[c] = 1
			}
		}
		out[i] = features.Window{
			Start:      start.Add(time.Duration(i) * 30 * time.Second),
			End:        start.Add(time.Duration(i)*30*time.Second + time.Minute),
			Vector:     sparse.New(dense),
			Count:      5,
			Entity:     user,
			UserCounts: map[string]int{user: 5},
		}
	}
	return out
}

// trainOn fits an OC-SVM on the windows.
func trainOn(t *testing.T, ws []features.Window) *svm.Model {
	t.Helper()
	m, err := svm.TrainOCSVM(features.Vectors(ws), 0.1, svm.TrainConfig{Kernel: svm.Linear()})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func threeUsers(t *testing.T) (map[string]*svm.Model, map[string][]features.Window) {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	windows := map[string][]features.Window{
		"user_1": makeWindows(r, "user_1", 80, []int{0, 1, 2}, []int{10, 11}),
		"user_2": makeWindows(r, "user_2", 80, []int{20, 21, 22}, []int{30, 31}),
		"user_3": makeWindows(r, "user_3", 80, []int{40, 41, 42}, []int{50, 51}),
	}
	models := map[string]*svm.Model{}
	for u, ws := range windows {
		models[u] = trainOn(t, ws)
	}
	return models, windows
}

func TestAcceptanceTriple(t *testing.T) {
	a := Acceptance{Self: 0.9, Other: 0.07}
	if math.Abs(a.ACC()-0.83) > 1e-12 {
		t.Errorf("ACC = %v", a.ACC())
	}
	if !strings.Contains(a.String(), "90.0%") {
		t.Errorf("String = %q", a.String())
	}
}

func TestUserAcceptance(t *testing.T) {
	models, windows := threeUsers(t)
	a := UserAcceptance(models["user_1"], "user_1", windows)
	if a.Self < 0.85 {
		t.Errorf("self = %v", a.Self)
	}
	if a.Other > 0.05 {
		t.Errorf("other = %v", a.Other)
	}
}

func TestConfusionMatrix(t *testing.T) {
	models, windows := threeUsers(t)
	cm := Confusion(models, windows)
	if len(cm.Users) != 3 || cm.Users[0] != "user_1" {
		t.Fatalf("users = %v", cm.Users)
	}
	for i := range cm.Users {
		if cm.Ratio[i][i] < 0.85 {
			t.Errorf("diagonal [%d] = %v", i, cm.Ratio[i][i])
		}
		for j := range cm.Users {
			if i != j && cm.Ratio[i][j] > 0.05 {
				t.Errorf("off-diagonal [%d][%d] = %v", i, j, cm.Ratio[i][j])
			}
		}
	}
	mean := cm.Mean()
	if mean.Self < 0.85 || mean.Other > 0.05 {
		t.Errorf("mean = %+v", mean)
	}
	diag := cm.Diagonal()
	if len(diag) != 3 {
		t.Fatalf("diagonal len = %d", len(diag))
	}
	var sb strings.Builder
	if err := cm.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "m1") || !strings.Contains(sb.String(), "t3") {
		t.Errorf("format output missing headers: %q", sb.String())
	}
}

func TestConfusionMatrixEmpty(t *testing.T) {
	cm := &ConfusionMatrix{}
	if got := cm.Mean(); got.Self != 0 || got.Other != 0 {
		t.Errorf("empty mean = %+v", got)
	}
}

func tx(ts time.Time, user, cat, app, sub string) weblog.Transaction {
	mt := taxonomy.MediaType{}
	if sub != "" {
		mt = taxonomy.MediaType{Super: "text", Sub: sub}
	}
	return weblog.Transaction{
		Timestamp: ts, Host: "h.example.com", Scheme: taxonomy.SchemeHTTP,
		Action: taxonomy.ActionGet, UserID: user, SourceIP: "10.0.0.1",
		Category: cat, MediaType: mt, AppType: app,
		Reputation: taxonomy.MinimalRisk,
	}
}

func TestFieldNovelty(t *testing.T) {
	// user_1 visits categories A,B in week 1 and A,B,C after; novelty at
	// week 1 should be 1/3.
	ds := weblog.NewDataset()
	ds.Add(tx(start.Add(1*time.Hour), "user_1", "A", "app1", "html"))
	ds.Add(tx(start.Add(2*time.Hour), "user_1", "B", "app1", "html"))
	ds.Add(tx(start.Add(8*24*time.Hour), "user_1", "A", "app1", "html"))
	ds.Add(tx(start.Add(9*24*time.Hour), "user_1", "B", "app2", "html"))
	ds.Add(tx(start.Add(10*24*time.Hour), "user_1", "C", "app2", "html"))
	pts, err := FieldNovelty(ds, []string{"user_1"}, []int{1, 2}, start, SelectCategory)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if math.Abs(pts[0].Mean-1.0/3) > 1e-9 {
		t.Errorf("week-1 category novelty = %v, want 1/3", pts[0].Mean)
	}
	// The week-2 cut (day 14) lies after every transaction, so the
	// subsequent set is empty and the user is skipped for that week.
	if pts[1].PerUser[0] != -1 || pts[1].Mean != 0 {
		t.Errorf("week-2 point = %+v, want skipped user", pts[1])
	}
	// App-type novelty at week 1: subsequent apps {app1, app2}, observed
	// {app1} -> 1/2.
	apts, err := FieldNovelty(ds, []string{"user_1"}, []int{1}, start, SelectAppType)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(apts[0].Mean-0.5) > 1e-9 {
		t.Errorf("app novelty = %v, want 0.5", apts[0].Mean)
	}
}

func TestFieldNoveltySkipsEmptySubsequent(t *testing.T) {
	ds := weblog.NewDataset()
	ds.Add(tx(start.Add(time.Hour), "user_1", "A", "app1", "html"))
	pts, err := FieldNovelty(ds, []string{"user_1"}, []int{1}, start, SelectCategory)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Mean != 0 || pts[0].PerUser[0] != -1 {
		t.Errorf("point = %+v", pts[0])
	}
}

func TestFieldNoveltyNoUsers(t *testing.T) {
	if _, err := FieldNovelty(weblog.NewDataset(), nil, []int{1}, start, SelectCategory); err == nil {
		t.Error("no users accepted")
	}
}

func TestSelectors(t *testing.T) {
	x := tx(start, "u", "Cat", "App", "html")
	if v, ok := SelectCategory(&x); !ok || v != "Cat" {
		t.Error("SelectCategory")
	}
	if v, ok := SelectAppType(&x); !ok || v != "App" {
		t.Error("SelectAppType")
	}
	if v, ok := SelectMediaSubType(&x); !ok || v != "html" {
		t.Error("SelectMediaSubType")
	}
	empty := tx(start, "u", "", "", "")
	if _, ok := SelectCategory(&empty); ok {
		t.Error("empty category selected")
	}
	if _, ok := SelectMediaSubType(&empty); ok {
		t.Error("zero media selected")
	}
}

func TestWindowNovelty(t *testing.T) {
	// Weeks 1-2: user alternates categories A and B; week 3+: new
	// category C appears, so some subsequent windows are novel.
	ds := weblog.NewDataset()
	for d := 0; d < 14; d++ {
		cat := "A"
		if d%2 == 1 {
			cat = "B"
		}
		ds.Add(tx(start.Add(time.Duration(d)*24*time.Hour), "user_1", cat, "app", "html"))
	}
	for d := 14; d < 21; d++ {
		ds.Add(tx(start.Add(time.Duration(d)*24*time.Hour), "user_1", "C", "app", "html"))
	}
	vocab := features.BuildFromDataset(ds)
	cfg := features.WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}
	pts, err := WindowNovelty(ds, []string{"user_1"}, []int{1, 2}, start, vocab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After week 1 (only A,B seen): subsequent has A, B and C windows;
	// the A/B windows repeat observed vectors, the C windows are novel.
	if pts[0].Mean <= 0 || pts[0].Mean >= 1 {
		t.Errorf("week-1 window novelty = %v, want in (0,1)", pts[0].Mean)
	}
	// After week 2 every subsequent window carries the never-seen
	// category C: novelty 1.
	if pts[1].Mean != 1 {
		t.Errorf("week-2 window novelty = %v, want 1", pts[1].Mean)
	}
}

func TestWindowNoveltyBadConfig(t *testing.T) {
	ds := weblog.NewDataset()
	_, err := WindowNovelty(ds, []string{"u"}, []int{1}, start, features.Build(nil), features.WindowConfig{})
	if err == nil {
		t.Error("bad window config accepted")
	}
}

func TestCoverageCount(t *testing.T) {
	txs := []weblog.Transaction{
		tx(start, "u", "A", "x", "html"),
		tx(start.Add(time.Minute), "u", "B", "x", "css"),
		tx(start.Add(2*time.Minute), "u", "A", "y", ""),
	}
	if got := CoverageCount(txs, SelectCategory); got != 2 {
		t.Errorf("categories = %d", got)
	}
	if got := CoverageCount(txs, SelectAppType); got != 2 {
		t.Errorf("apps = %d", got)
	}
	if got := CoverageCount(txs, SelectMediaSubType); got != 2 {
		t.Errorf("subtypes = %d", got)
	}
}

func TestTimelineAndSummarize(t *testing.T) {
	models, windows := threeUsers(t)
	// Build a host timeline: first user_1's windows, then user_2's.
	host := append([]features.Window{}, windows["user_1"][:10]...)
	host = append(host, windows["user_2"][:10]...)
	tl := Timeline(models, host)
	if len(tl) != 20 {
		t.Fatalf("timeline = %d points", len(tl))
	}
	correct := 0
	for i, pt := range tl {
		want := "user_1"
		if i >= 10 {
			want = "user_2"
		}
		if pt.ActualUser != want {
			t.Fatalf("point %d actual = %s", i, pt.ActualUser)
		}
		for _, u := range pt.Accepted {
			if u == want {
				correct++
			}
		}
	}
	if correct < 16 {
		t.Errorf("own model accepted only %d/20 windows", correct)
	}
	st := Summarize(tl, []string{"user_1", "user_2", "user_3"})
	if st.Windows != 20 {
		t.Errorf("windows = %d", st.Windows)
	}
	if st.ActualAccepted < 16 {
		t.Errorf("actual accepted = %d", st.ActualAccepted)
	}
	if st.LongestRunByUser["user_1"] < 5 {
		t.Errorf("user_1 longest run = %d", st.LongestRunByUser["user_1"])
	}
	if st.LongestRunByUser["user_3"] > 2 {
		t.Errorf("user_3 longest run = %d (model should not match)", st.LongestRunByUser["user_3"])
	}
}

func TestIdentifyConsecutive(t *testing.T) {
	tl := []TimelinePoint{
		{Accepted: []string{"a", "b"}},
		{Accepted: []string{"a"}},
		{Accepted: []string{"a", "c"}},
		{Accepted: []string{"c"}},
	}
	u, idx, ok := IdentifyConsecutive(tl, 3)
	if !ok || u != "a" || idx != 2 {
		t.Errorf("got %q at %d ok=%v", u, idx, ok)
	}
	// b never reaches 2 consecutive.
	if _, _, ok := IdentifyConsecutive(tl[:1], 2); ok {
		t.Error("identified with too few windows")
	}
	// k<=0 behaves as k=1.
	u, idx, ok = IdentifyConsecutive(tl, 0)
	if !ok || u != "a" || idx != 0 {
		t.Errorf("k=0: got %q at %d ok=%v", u, idx, ok)
	}
	// Reset logic: c's run breaks at point 1.
	u, _, ok = IdentifyConsecutive(tl, 2)
	if !ok || u != "a" {
		t.Errorf("k=2: got %q", u)
	}
}
