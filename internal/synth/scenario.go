package synth

import (
	"fmt"
	"math/rand"
	"time"

	"webtxprofile/internal/weblog"
)

// hashString derives a stable 64-bit value from a string (FNV-1a).
func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// Segment is one interval of a device-usage scenario: the named user is
// active on the device from Offset for Length.
type Segment struct {
	UserID string
	Offset time.Duration
	Length time.Duration
}

// GenerateDeviceScenario produces the Fig. 3 workload: a sequence of users
// taking turns on a single device. Each segment fills with the named
// user's regular browsing behaviour (their profile from this generator),
// so their own model should accept the resulting windows. The device
// address must be one of the generator's devices or any designated
// address; all transactions carry it as SourceIP.
//
// start anchors the scenario on the generation timeline (typically inside
// the test epoch).
func (g *Generator) GenerateDeviceScenario(device string, start time.Time, segments []Segment) (*weblog.Dataset, error) {
	if device == "" {
		return nil, fmt.Errorf("synth: empty device address")
	}
	byID := make(map[string]*user, len(g.users))
	for _, u := range g.users {
		byID[u.id] = u
	}
	ds := weblog.NewDataset()
	for i, seg := range segments {
		u, ok := byID[seg.UserID]
		if !ok {
			return nil, fmt.Errorf("synth: segment %d: unknown user %q", i, seg.UserID)
		}
		if seg.Length <= 0 {
			return nil, fmt.Errorf("synth: segment %d: non-positive length %v", i, seg.Length)
		}
		// Scenario streams are deterministic and independent of any prior
		// Generate call: re-seed from the user seed, the device and the
		// segment index.
		u.rng = rand.New(rand.NewSource(u.seed ^ hashString(device) ^ (int64(i+1) * 1_000_003)))
		segStart := start.Add(seg.Offset)
		end := segStart.Add(seg.Length)
		ts := segStart
		// Continuous activity: bursts against Zipf-chosen services until
		// the segment ends, mirroring generateSession pacing.
		for ts.Before(end) {
			svc := u.sampleService(g.services, g.cfg.PExplore)
			burst := 1 + int(u.rng.ExpFloat64()*4)
			for b := 0; b < burst && ts.Before(end); b++ {
				ds.Add(g.transaction(u, svc, device, ts))
				ts = ts.Add(time.Duration(100+u.rng.Intn(1500)) * time.Millisecond)
			}
			ts = ts.Add(time.Duration(u.rng.ExpFloat64() * 8 * float64(time.Second)))
		}
	}
	ds.SortByTime()
	return ds, nil
}
