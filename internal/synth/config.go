// Package synth generates synthetic enterprise web-transaction datasets
// with the statistical shape of the paper's vendor benchmark (Sect. IV-A):
// tens of users on shared devices over months of traffic, heavy-tailed
// per-user volumes, small per-user service vocabularies (~18 categories,
// ~17 media sub-types, ~19 application types on average), Zipf-distributed
// service preferences (which yields the declining novelty curves of
// Figs. 1–2), and a confusable cluster of users with near-identical
// behaviour (the m13–m17 block of Table V).
//
// The vendor dataset was itself generated programmatically; this package
// is the reproduction's substitute for it, per DESIGN.md. All generation
// is deterministic given Config.Seed.
package synth

import (
	"fmt"
	"time"
)

// Config parameterizes dataset generation. DefaultConfig returns the
// paper-shaped configuration; tests use smaller values.
type Config struct {
	// Seed drives all randomness; identical configs generate identical
	// datasets.
	Seed int64
	// Users is the total number of synthetic users, including the
	// under-threshold ones (paper: 36).
	Users int
	// SmallUsers of the Users are generated with tiny volumes so they fall
	// below the paper's 1,500-transaction representativeness threshold
	// (paper: 11, leaving 25 kept users).
	SmallUsers int
	// Devices is the number of distinct source addresses (paper: 35).
	Devices int
	// Weeks is the monitoring duration (paper: ~26, six months).
	Weeks int
	// Start is the first instant of traffic; defaults to a Monday.
	Start time.Time
	// Services is the size of the global service pool users draw from.
	Services int
	// Archetypes is the number of behavioural archetypes users cluster
	// around.
	Archetypes int
	// ConfusableUsers makes the first N kept users share one archetype
	// with nearly identical service pools, producing a confusion block as
	// in Table V.
	ConfusableUsers int
	// ServicesPerUserMin/Max bound the personal service pool size; ~30
	// services across ~18 categories matches the paper's per-user feature
	// coverage.
	ServicesPerUserMin, ServicesPerUserMax int
	// WeeklyTxMedian is the median of the lognormal weekly transaction
	// budget across kept users.
	WeeklyTxMedian float64
	// WeeklyTxSigma is the lognormal σ of the weekly budget (heavy tail).
	WeeklyTxSigma float64
	// MinKeptTx floors the expected total volume of kept (non-small)
	// users so they stay above the paper's 1,500-transaction
	// representativeness threshold (the paper's smallest kept user has
	// 2,514 transactions).
	MinKeptTx float64
	// MeanSessionTx is the mean number of transactions per browsing
	// session.
	MeanSessionTx float64
	// PExplore is the probability a visit targets a random service outside
	// the personal pool — the residual long-term novelty (~5% plateau in
	// Fig. 1).
	PExplore float64
	// ZipfExponent shapes the service preference distribution; larger
	// values concentrate visits on fewer services.
	ZipfExponent float64
	// DriftWeek, when positive, makes the first DriftUsers kept users
	// switch to a partially different service pool from that week on —
	// the behavioural drift scenario behind profile refreshing.
	DriftWeek int
	// DriftUsers is the number of kept users affected by the drift.
	DriftUsers int
}

// DefaultConfig returns the paper-shaped generation parameters.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Users:              36,
		SmallUsers:         11,
		Devices:            35,
		Weeks:              26,
		Start:              time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC), // a Monday
		Services:           600,
		Archetypes:         12,
		ConfusableUsers:    5,
		ServicesPerUserMin: 22,
		ServicesPerUserMax: 40,
		WeeklyTxMedian:     250,
		WeeklyTxSigma:      1.1,
		MinKeptTx:          2600,
		MeanSessionTx:      200,
		PExplore:           0.01,
		ZipfExponent:       1.1,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("synth: Users = %d must be positive", c.Users)
	case c.SmallUsers < 0 || c.SmallUsers >= c.Users:
		return fmt.Errorf("synth: SmallUsers = %d out of [0, Users)", c.SmallUsers)
	case c.Devices <= 0:
		return fmt.Errorf("synth: Devices = %d must be positive", c.Devices)
	case c.Weeks <= 0:
		return fmt.Errorf("synth: Weeks = %d must be positive", c.Weeks)
	case c.Services <= 0:
		return fmt.Errorf("synth: Services = %d must be positive", c.Services)
	case c.Archetypes <= 0:
		return fmt.Errorf("synth: Archetypes = %d must be positive", c.Archetypes)
	case c.ConfusableUsers < 0 || c.ConfusableUsers > c.Users-c.SmallUsers:
		return fmt.Errorf("synth: ConfusableUsers = %d exceeds kept users", c.ConfusableUsers)
	case c.ServicesPerUserMin <= 0 || c.ServicesPerUserMax < c.ServicesPerUserMin:
		return fmt.Errorf("synth: bad services-per-user range [%d, %d]",
			c.ServicesPerUserMin, c.ServicesPerUserMax)
	case c.ServicesPerUserMax > c.Services:
		return fmt.Errorf("synth: ServicesPerUserMax %d exceeds pool %d",
			c.ServicesPerUserMax, c.Services)
	case c.WeeklyTxMedian <= 0:
		return fmt.Errorf("synth: WeeklyTxMedian = %g must be positive", c.WeeklyTxMedian)
	case c.WeeklyTxSigma < 0:
		return fmt.Errorf("synth: WeeklyTxSigma = %g must be non-negative", c.WeeklyTxSigma)
	case c.MinKeptTx < 0:
		return fmt.Errorf("synth: MinKeptTx = %g must be non-negative", c.MinKeptTx)
	case c.MeanSessionTx < 1:
		return fmt.Errorf("synth: MeanSessionTx = %g must be >= 1", c.MeanSessionTx)
	case c.PExplore < 0 || c.PExplore > 1:
		return fmt.Errorf("synth: PExplore = %g out of [0, 1]", c.PExplore)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("synth: ZipfExponent = %g must be positive", c.ZipfExponent)
	case c.DriftWeek < 0 || c.DriftWeek >= c.Weeks:
		if c.DriftWeek != 0 {
			return fmt.Errorf("synth: DriftWeek = %d out of [1, Weeks)", c.DriftWeek)
		}
	case c.DriftUsers < 0 || (c.DriftWeek > 0 && c.DriftUsers > c.Users-c.SmallUsers):
		return fmt.Errorf("synth: DriftUsers = %d exceeds kept users", c.DriftUsers)
	}
	if c.Start.IsZero() {
		return fmt.Errorf("synth: Start must be set")
	}
	return nil
}

// KeptUsers returns the number of users expected to survive the
// representativeness filter.
func (c Config) KeptUsers() int { return c.Users - c.SmallUsers }
