package synth

import (
	"fmt"
	"math/rand"

	"webtxprofile/internal/taxonomy"
)

// serviceKind drives a service's media-type and action mix.
type serviceKind int

const (
	kindPage serviceKind = iota
	kindVideo
	kindAudio
	kindAPI
	kindDownload
	kindIntranet
	numKinds
)

// service is one synthetic web destination with fixed augmentation labels,
// standing in for a (host, logging-service knowledge) pair.
type service struct {
	host       string
	category   string
	appType    string
	reputation taxonomy.Reputation
	private    bool
	kind       serviceKind
	// httpsProb is the probability a transaction uses HTTPS (and thus
	// CONNECT tunnelling part of the time).
	httpsProb float64
	// mediaTypes are the response media types this service serves, with
	// cumulative weights.
	mediaTypes []taxonomy.MediaType
	mediaCum   []float64
}

// buildServices creates the global pool. Category and application
// assignments concentrate on a subset of the taxonomy so per-user coverage
// matches the paper (users observe ~18 of 105 categories overall).
func buildServices(cfg Config, tax *taxonomy.Taxonomy, rng *rand.Rand) []*service {
	services := make([]*service, cfg.Services)
	// Active label pools: services cluster on ~half the categories and a
	// fraction of the app types, mirroring enterprise traffic.
	nCats := min(len(tax.Categories), 60)
	nApps := min(len(tax.AppTypes), 300)
	catPool := sampleIndexes(rng, len(tax.Categories), nCats)
	appPool := sampleIndexes(rng, len(tax.AppTypes), nApps)
	for i := range services {
		kind := serviceKind(rng.Intn(int(numKinds)))
		cat := tax.Categories[catPool[rng.Intn(len(catPool))]]
		app := tax.AppTypes[appPool[rng.Intn(len(appPool))]]
		s := &service{
			host:     fmt.Sprintf("svc%03d.%s.example.com", i, kindSlug(kind)),
			category: cat,
			appType:  app,
			kind:     kind,
		}
		switch r := rng.Float64(); {
		case r < 0.79:
			s.reputation = taxonomy.MinimalRisk
		case r < 0.94:
			s.reputation = taxonomy.Unverified
		case r < 0.99:
			s.reputation = taxonomy.MediumRisk
		default:
			s.reputation = taxonomy.HighRisk
		}
		if kind == kindIntranet {
			s.private = true
			s.httpsProb = 0.2
		} else {
			s.httpsProb = 0.3 + 0.5*rng.Float64()
		}
		s.assignMedia(tax, rng)
		services[i] = s
	}
	return services
}

// assignMedia gives the service a kind-appropriate media-type mix.
func (s *service) assignMedia(tax *taxonomy.Taxonomy, rng *rand.Rand) {
	super := map[serviceKind]string{
		kindPage:     "text",
		kindVideo:    "video",
		kindAudio:    "audio",
		kindAPI:      "application",
		kindDownload: "application",
		kindIntranet: "text",
	}[s.kind]
	primary := tax.MediaTypesOf(super)
	secondary := tax.MediaTypesOf("image")
	pick := func(pool []string) taxonomy.MediaType {
		mt, err := taxonomy.ParseMediaType(pool[rng.Intn(len(pool))])
		if err != nil {
			panic("synth: taxonomy produced unparsable media type: " + err.Error())
		}
		return mt
	}
	// 2-4 media types: mostly the kind's super-type plus image assets.
	n := 2 + rng.Intn(3)
	weights := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		var mt taxonomy.MediaType
		if i == 0 || rng.Float64() < 0.7 {
			mt = pick(primary)
		} else {
			mt = pick(secondary)
		}
		s.mediaTypes = append(s.mediaTypes, mt)
		if i == 0 {
			weights = append(weights, 1)
		} else {
			weights = append(weights, 0.15+0.3*rng.Float64())
		}
	}
	var cum float64
	s.mediaCum = make([]float64, len(weights))
	for i, w := range weights {
		cum += w
		s.mediaCum[i] = cum
	}
}

// sampleMedia draws a media type from the service's mix. A small fraction
// of transactions (CONNECT tunnels) carry no media type; the caller
// handles that case.
func (s *service) sampleMedia(rng *rand.Rand) taxonomy.MediaType {
	total := s.mediaCum[len(s.mediaCum)-1]
	r := rng.Float64() * total
	for i, c := range s.mediaCum {
		if r <= c {
			return s.mediaTypes[i]
		}
	}
	return s.mediaTypes[len(s.mediaTypes)-1]
}

// sampleAction draws an HTTP action given the chosen scheme. HTTPS
// sessions tunnel via CONNECT part of the time; APIs POST more.
func (s *service) sampleAction(rng *rand.Rand, https bool) string {
	r := rng.Float64()
	if https && r < 0.25 {
		return taxonomy.ActionConnect
	}
	switch s.kind {
	case kindAPI:
		switch {
		case r < 0.55:
			return taxonomy.ActionGet
		case r < 0.9:
			return taxonomy.ActionPost
		default:
			return taxonomy.ActionHead
		}
	default:
		switch {
		case r < 0.85:
			return taxonomy.ActionGet
		case r < 0.95:
			return taxonomy.ActionPost
		default:
			return taxonomy.ActionHead
		}
	}
}

func kindSlug(k serviceKind) string {
	switch k {
	case kindPage:
		return "web"
	case kindVideo:
		return "video"
	case kindAudio:
		return "audio"
	case kindAPI:
		return "api"
	case kindDownload:
		return "dl"
	case kindIntranet:
		return "corp"
	default:
		return "misc"
	}
}

// sampleIndexes picks k distinct indexes out of [0, n) deterministically
// from rng.
func sampleIndexes(rng *rand.Rand, n, k int) []int {
	perm := rng.Perm(n)
	return perm[:k]
}
