package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

// user is one synthetic user's behavioural profile.
type user struct {
	id string
	// pool is the ranked personal service list; visits follow a Zipf law
	// over the ranks, so early entries dominate. driftPool, when non-nil,
	// replaces pool from the configured drift week on.
	pool      []*service
	poolCum   []float64
	driftPool []*service
	// devices and deviceCum weight the user's devices (primary first).
	devices   []string
	deviceCum []float64
	// weeklyTx is the user's lognormal weekly transaction budget.
	weeklyTx float64
	// seed rebuilds rng at the start of every generation run, so repeated
	// Generate calls yield identical datasets.
	seed int64
	// hourWeights shape the diurnal activity profile.
	hourWeights [24]float64
	dayWeights  [7]float64
	rng         *rand.Rand
}

// Generator produces synthetic datasets. Create with NewGenerator.
type Generator struct {
	cfg      Config
	tax      *taxonomy.Taxonomy
	services []*service
	users    []*user
}

// NewGenerator validates cfg and precomputes the service pool and user
// profiles.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Start.IsZero() {
		cfg.Start = DefaultConfig().Start
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, tax: taxonomy.Default()}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g.services = buildServices(cfg, g.tax, rng)
	g.buildUsers(rng)
	return g, nil
}

// Taxonomy returns the taxonomy backing the generated labels.
func (g *Generator) Taxonomy() *taxonomy.Taxonomy { return g.tax }

// UserIDs returns all user ids, kept users first.
func (g *Generator) UserIDs() []string {
	out := make([]string, len(g.users))
	for i, u := range g.users {
		out[i] = u.id
	}
	return out
}

// KeptUserIDs returns the ids of users expected to pass the
// representativeness filter.
func (g *Generator) KeptUserIDs() []string {
	return g.UserIDs()[:g.cfg.KeptUsers()]
}

// buildUsers constructs profiles: archetype service rankings, personal
// pools, device assignments and activity shapes.
func (g *Generator) buildUsers(rng *rand.Rand) {
	cfg := g.cfg
	// Archetypes are distinct rankings over disjoint-ish service subsets.
	// Each archetype also prefers a few service kinds (page-heavy office
	// users, video-heavy users, API-heavy developers, ...) so archetypes
	// differ in their action/scheme/media mix, not just in which hosts
	// they visit — as distinct roles in an enterprise do.
	archetypes := make([][]*service, cfg.Archetypes)
	for a := range archetypes {
		kindPerm := rng.Perm(int(numKinds))
		preferred := map[serviceKind]bool{
			serviceKind(kindPerm[0]): true,
			serviceKind(kindPerm[1]): true,
		}
		perm := rng.Perm(len(g.services))
		size := min(len(g.services), 3*cfg.ServicesPerUserMax)
		head := make([]*service, 0, size)
		tail := make([]*service, 0, size)
		for _, pi := range perm {
			svc := g.services[pi]
			if preferred[svc.kind] {
				head = append(head, svc)
			} else {
				tail = append(tail, svc)
			}
		}
		subset := append(head, tail...)[:size]
		archetypes[a] = subset
	}

	devices := make([]string, cfg.Devices)
	for d := range devices {
		devices[d] = fmt.Sprintf("10.0.%d.%d", d/250, d%250+1)
	}

	g.users = make([]*user, cfg.Users)
	kept := cfg.KeptUsers()
	// The confusable cluster shares archetype 0 and a common base pool.
	confusableBase := samplePool(rng, archetypes[0], cfg.ServicesPerUserMin, cfg.ServicesPerUserMax)

	for i := 0; i < cfg.Users; i++ {
		seed := cfg.Seed ^ (int64(-7046029254386353131) * int64(i+1))
		u := &user{
			id:   fmt.Sprintf("user_%d", i+1),
			seed: seed,
			rng:  rand.New(rand.NewSource(seed)),
		}
		small := i >= kept
		confusable := i < cfg.ConfusableUsers

		switch {
		case confusable:
			// Perturb the shared base slightly: drop a couple of entries,
			// add a couple of personal ones.
			u.pool = perturbPool(u.rng, confusableBase, archetypes[0], 2)
		default:
			// Non-confusable users spread round-robin over the remaining
			// archetypes (archetype 0 is reserved for the confusable
			// cluster when one exists): pairs of users that share an
			// archetype stay moderately similar, everyone else differs —
			// the structure of the paper's Table V.
			ai := 0
			if cfg.Archetypes > 1 {
				ai = 1 + i%(cfg.Archetypes-1)
			}
			u.pool = samplePool(u.rng, archetypes[ai], cfg.ServicesPerUserMin, cfg.ServicesPerUserMax)
		}
		u.poolCum = zipfCum(len(u.pool), cfg.ZipfExponent)
		if cfg.DriftWeek > 0 && !small && i < cfg.DriftUsers {
			// Drifted users keep the pool size (so poolCum still applies)
			// but swap the dominant head of their ranking for services
			// from a different archetype — visits concentrate on the head
			// (Zipf), so this changes most of the observed behaviour.
			other := archetypes[(i+1)%cfg.Archetypes]
			u.driftPool = driftedPool(u.rng, u.pool, other)
		}

		// Weekly budget: lognormal around the median; small users get a
		// fraction that keeps them under the paper's 1,500 threshold.
		u.weeklyTx = cfg.WeeklyTxMedian * math.Exp(cfg.WeeklyTxSigma*u.rng.NormFloat64())
		if small {
			limit := 1400.0 / float64(cfg.Weeks)
			u.weeklyTx = limit * (0.2 + 0.6*u.rng.Float64())
		} else if floor := cfg.MinKeptTx / float64(cfg.Weeks); u.weeklyTx < floor {
			u.weeklyTx = floor
		}

		// Devices: a primary plus a heavy-tailed count of extras (paper:
		// 1–17 devices per user). Primary assignment round-robins so every
		// device sees traffic.
		nExtra := 0
		for u.rng.Float64() < 0.45 && nExtra < 16 {
			nExtra++
		}
		primary := devices[i%len(devices)]
		u.devices = append(u.devices, primary)
		for _, d := range sampleIndexes(u.rng, len(devices), min(nExtra, len(devices))) {
			if devices[d] != primary {
				u.devices = append(u.devices, devices[d])
			}
		}
		u.deviceCum = make([]float64, len(u.devices))
		cum := 0.0
		for d := range u.devices {
			w := 0.3 / float64(max(len(u.devices)-1, 1))
			if d == 0 {
				w = 0.7
			}
			if len(u.devices) == 1 {
				w = 1
			}
			cum += w
			u.deviceCum[d] = cum
		}

		// Diurnal shape: office hours dominate with per-user jitter.
		for h := 0; h < 24; h++ {
			base := 0.05
			switch {
			case h >= 9 && h <= 11, h >= 13 && h <= 17:
				base = 1.0
			case h == 12:
				base = 0.6
			case h >= 18 && h <= 22:
				base = 0.35
			case h >= 7 && h <= 8:
				base = 0.4
			}
			u.hourWeights[h] = base * (0.7 + 0.6*u.rng.Float64())
		}
		for d := 0; d < 7; d++ {
			w := 1.0
			if d >= 5 { // Saturday, Sunday
				w = 0.25
			}
			u.dayWeights[d] = w * (0.7 + 0.6*u.rng.Float64())
		}
		g.users[i] = u
	}
}

// Generate produces the full dataset: every user's traffic over the
// configured weeks, time-sorted. Generation is idempotent: repeated calls
// on the same generator return identical datasets (per-user streams are
// re-seeded on every run).
func (g *Generator) Generate() *weblog.Dataset {
	ds := weblog.NewDataset()
	for _, u := range g.users {
		u.rng = rand.New(rand.NewSource(u.seed))
		g.generateUser(ds, u)
	}
	ds.SortByTime()
	return ds
}

// generateUser emits one user's sessions week by week, switching a
// drifted user's pool at the drift week.
func (g *Generator) generateUser(ds *weblog.Dataset, u *user) {
	cfg := g.cfg
	basePool := u.pool
	for week := 0; week < cfg.Weeks; week++ {
		if u.driftPool != nil && cfg.DriftWeek > 0 && week >= cfg.DriftWeek {
			u.pool = u.driftPool
		} else {
			u.pool = basePool
		}
		budget := u.weeklyTx * (0.8 + 0.4*u.rng.Float64())
		for budget >= 1 {
			sessionTx := 1 + int(u.rng.ExpFloat64()*(cfg.MeanSessionTx-1))
			if float64(sessionTx) > budget {
				sessionTx = int(budget)
			}
			if sessionTx < 1 {
				break
			}
			start := g.sessionStart(u, week)
			device := u.sampleDevice()
			g.generateSession(ds, u, start, device, sessionTx)
			budget -= float64(sessionTx)
		}
	}
	u.pool = basePool
}

// sessionStart draws a session start time within the given week following
// the user's day/hour profile.
func (g *Generator) sessionStart(u *user, week int) time.Time {
	day := sampleWeighted(u.rng, u.dayWeights[:])
	hour := sampleWeighted(u.rng, u.hourWeights[:])
	minute := u.rng.Intn(60)
	second := u.rng.Intn(60)
	return g.cfg.Start.Add(time.Duration(week*7+day)*24*time.Hour +
		time.Duration(hour)*time.Hour +
		time.Duration(minute)*time.Minute +
		time.Duration(second)*time.Second)
}

// generateSession emits one browsing session: bursts of transactions to
// Zipf-chosen services with exponential think times.
func (g *Generator) generateSession(ds *weblog.Dataset, u *user, start time.Time, device string, txCount int) {
	ts := start
	remaining := txCount
	for remaining > 0 {
		svc := u.sampleService(g.services, g.cfg.PExplore)
		// Burst: several transactions against the same service (page plus
		// assets), geometric-ish length. Pacing targets the paper's window
		// occupancy (median 54 transactions per 1-minute window).
		burst := 1 + int(u.rng.ExpFloat64()*6)
		if burst > remaining {
			burst = remaining
		}
		for b := 0; b < burst; b++ {
			ds.Add(g.transaction(u, svc, device, ts))
			// Asset fetches follow quickly; think time between bursts.
			ts = ts.Add(time.Duration(100+u.rng.Intn(700)) * time.Millisecond)
		}
		ts = ts.Add(time.Duration(u.rng.ExpFloat64() * 2500 * float64(time.Millisecond)))
		remaining -= burst
	}
}

// transaction materializes one log record for a service visit.
func (g *Generator) transaction(u *user, svc *service, device string, ts time.Time) weblog.Transaction {
	https := u.rng.Float64() < svc.httpsProb
	scheme := taxonomy.SchemeHTTP
	if https {
		scheme = taxonomy.SchemeHTTPS
	}
	action := svc.sampleAction(u.rng, https)
	var mt taxonomy.MediaType
	if action != taxonomy.ActionConnect && action != taxonomy.ActionHead {
		mt = svc.sampleMedia(u.rng)
	}
	return weblog.Transaction{
		Timestamp:  ts,
		Host:       svc.host,
		Scheme:     scheme,
		Action:     action,
		UserID:     u.id,
		SourceIP:   device,
		Category:   svc.category,
		MediaType:  mt,
		AppType:    svc.appType,
		Reputation: svc.reputation,
		Private:    svc.private,
	}
}

// sampleService draws from the personal pool by Zipf rank, or explores a
// random global service with probability pExplore.
func (u *user) sampleService(global []*service, pExplore float64) *service {
	if pExplore > 0 && u.rng.Float64() < pExplore {
		return global[u.rng.Intn(len(global))]
	}
	total := u.poolCum[len(u.poolCum)-1]
	r := u.rng.Float64() * total
	i := sort.SearchFloat64s(u.poolCum, r)
	if i >= len(u.pool) {
		i = len(u.pool) - 1
	}
	return u.pool[i]
}

// sampleDevice draws a device per the user's device weights.
func (u *user) sampleDevice() string {
	total := u.deviceCum[len(u.deviceCum)-1]
	r := u.rng.Float64() * total
	i := sort.SearchFloat64s(u.deviceCum, r)
	if i >= len(u.devices) {
		i = len(u.devices) - 1
	}
	return u.devices[i]
}

// samplePool draws a ranked personal pool from an archetype's ranking.
func samplePool(rng *rand.Rand, arch []*service, minN, maxN int) []*service {
	n := minN + rng.Intn(maxN-minN+1)
	if n > len(arch) {
		n = len(arch)
	}
	// Favor the archetype's head: sample ranks with geometric skew, then
	// keep rank order (pool is ranked by preference).
	seen := make(map[int]bool, n)
	ranks := make([]int, 0, n)
	for len(ranks) < n {
		r := int(rng.ExpFloat64() * float64(len(arch)) / 2.2)
		if r >= len(arch) {
			r = len(arch) - 1
		}
		if !seen[r] {
			seen[r] = true
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	pool := make([]*service, n)
	for i, r := range ranks {
		pool[i] = arch[r]
	}
	return pool
}

// driftedPool replaces the first half of a ranked pool — the Zipf head
// that receives most visits — with fresh services from another archetype.
func driftedPool(rng *rand.Rand, base, other []*service) []*service {
	pool := make([]*service, len(base))
	copy(pool, base)
	inPool := make(map[*service]bool, len(pool))
	for _, s := range pool {
		inPool[s] = true
	}
	for pos := 0; pos < len(pool)/2; pos++ {
		for tries := 0; tries < 50; tries++ {
			cand := other[rng.Intn(len(other))]
			if !inPool[cand] {
				inPool[cand] = true
				delete(inPool, pool[pos])
				pool[pos] = cand
				break
			}
		}
	}
	return pool
}

// perturbPool copies a base pool with k entries swapped for fresh
// archetype services — confusable users differ this little.
func perturbPool(rng *rand.Rand, base, arch []*service, k int) []*service {
	pool := make([]*service, len(base))
	copy(pool, base)
	inPool := make(map[*service]bool, len(pool))
	for _, s := range pool {
		inPool[s] = true
	}
	for i := 0; i < k; i++ {
		// Replace a random tail entry with a random unused archetype
		// service; tail swaps keep the dominant head shared.
		pos := len(pool)/2 + rng.Intn(len(pool)-len(pool)/2)
		for tries := 0; tries < 50; tries++ {
			cand := arch[rng.Intn(len(arch))]
			if !inPool[cand] {
				inPool[cand] = true
				delete(inPool, pool[pos])
				pool[pos] = cand
				break
			}
		}
	}
	return pool
}

// zipfCum returns cumulative Zipf weights 1/r^s for ranks 1..n.
func zipfCum(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), s)
		cum[r] = total
	}
	return cum
}

// sampleWeighted draws an index proportionally to weights.
func sampleWeighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
