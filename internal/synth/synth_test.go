package synth

import (
	"testing"
	"time"
)

// testConfig is a small, fast configuration for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Users = 8
	cfg.SmallUsers = 2
	cfg.Devices = 6
	cfg.Weeks = 3
	cfg.Services = 120
	cfg.Archetypes = 3
	cfg.ConfusableUsers = 2
	cfg.ServicesPerUserMin = 10
	cfg.ServicesPerUserMax = 20
	cfg.WeeklyTxMedian = 120
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := map[string]func(*Config){
		"zero users":        func(c *Config) { c.Users = 0 },
		"small >= users":    func(c *Config) { c.SmallUsers = c.Users },
		"zero devices":      func(c *Config) { c.Devices = 0 },
		"zero weeks":        func(c *Config) { c.Weeks = 0 },
		"zero services":     func(c *Config) { c.Services = 0 },
		"zero archetypes":   func(c *Config) { c.Archetypes = 0 },
		"confusable > kept": func(c *Config) { c.ConfusableUsers = c.Users },
		"bad pool range":    func(c *Config) { c.ServicesPerUserMin = 30; c.ServicesPerUserMax = 10 },
		"pool > services":   func(c *Config) { c.ServicesPerUserMax = c.Services + 1 },
		"zero median":       func(c *Config) { c.WeeklyTxMedian = 0 },
		"neg sigma":         func(c *Config) { c.WeeklyTxSigma = -1 },
		"tiny session":      func(c *Config) { c.MeanSessionTx = 0.5 },
		"bad explore":       func(c *Config) { c.PExplore = 1.5 },
		"bad zipf":          func(c *Config) { c.ZipfExponent = 0 },
		"zero start":        func(c *Config) { c.Start = time.Time{} },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil && name != "zero start" {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	if ds.Len() == 0 {
		t.Fatal("empty dataset")
	}
	stats := ds.ComputeStats()
	if stats.Users != 8 {
		t.Errorf("users = %d, want 8", stats.Users)
	}
	// All transactions must validate.
	for i := range ds.Transactions {
		if err := ds.Transactions[i].Validate(); err != nil {
			t.Fatalf("transaction %d invalid: %v", i, err)
		}
	}
	// Chronological order.
	for i := 1; i < ds.Len(); i++ {
		if ds.Transactions[i].Timestamp.Before(ds.Transactions[i-1].Timestamp) {
			t.Fatal("dataset not sorted")
		}
	}
	// Time span within configured weeks (plus slack for trailing sessions).
	start, end, _ := ds.TimeSpan()
	if start.Before(testConfig().Start) {
		t.Errorf("starts before config start: %v", start)
	}
	if end.After(testConfig().Start.Add(time.Duration(testConfig().Weeks)*7*24*time.Hour + 2*time.Hour)) {
		t.Errorf("ends after configured span: %v", end)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := g1.Generate(), g2.Generate()
	if d1.Len() != d2.Len() {
		t.Fatalf("lengths differ: %d vs %d", d1.Len(), d2.Len())
	}
	for i := range d1.Transactions {
		if d1.Transactions[i] != d2.Transactions[i] {
			t.Fatalf("transaction %d differs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg := testConfig()
	g1, _ := NewGenerator(cfg)
	cfg.Seed = 99
	g2, _ := NewGenerator(cfg)
	d1, d2 := g1.Generate(), g2.Generate()
	if d1.Len() == d2.Len() {
		same := true
		for i := range d1.Transactions {
			if d1.Transactions[i] != d2.Transactions[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestSmallUsersFallBelowThreshold(t *testing.T) {
	cfg := testConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	kept, dropped := ds.FilterMinTransactions(1500)
	if len(dropped) != cfg.SmallUsers {
		counts := map[string]int{}
		for _, u := range ds.Users() {
			counts[u] = ds.UserCount(u)
		}
		t.Fatalf("dropped %v (want %d small users); counts: %v", dropped, cfg.SmallUsers, counts)
	}
	if got := len(kept.Users()); got != cfg.KeptUsers() {
		t.Errorf("kept %d users, want %d", got, cfg.KeptUsers())
	}
	for _, u := range g.KeptUserIDs() {
		if ds.UserCount(u) < 1500 {
			t.Errorf("kept user %s has only %d transactions", u, ds.UserCount(u))
		}
	}
}

func TestUserVocabularyCoverage(t *testing.T) {
	// Per-user label coverage should be small relative to the taxonomy —
	// the paper reports ~18 categories / ~19 app types per user on
	// average.
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	for _, u := range g.KeptUserIDs() {
		cats := map[string]bool{}
		apps := map[string]bool{}
		for _, tx := range ds.UserTransactions(u) {
			cats[tx.Category] = true
			apps[tx.AppType] = true
		}
		if len(cats) > 40 {
			t.Errorf("%s observes %d categories, want a small subset", u, len(cats))
		}
		if len(apps) > 45 {
			t.Errorf("%s observes %d app types, want a small subset", u, len(apps))
		}
	}
}

func TestConfusableUsersOverlap(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	overlap := func(a, b *user) float64 {
		set := map[*service]bool{}
		for _, s := range a.pool {
			set[s] = true
		}
		n := 0
		for _, s := range b.pool {
			if set[s] {
				n++
			}
		}
		return float64(n) / float64(len(b.pool))
	}
	// The confusable pair shares most services.
	if ov := overlap(g.users[0], g.users[1]); ov < 0.7 {
		t.Errorf("confusable overlap = %.2f, want >= 0.7", ov)
	}
}

func TestDeviceSharing(t *testing.T) {
	// Enough sessions per user that secondary devices actually see
	// traffic (sessions are ~MeanSessionTx transactions each).
	cfg := DefaultConfig()
	cfg.Weeks = 4
	cfg.WeeklyTxMedian = 800
	cfg.MinKeptTx = 3000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	stats := ds.ComputeStats()
	if stats.Hosts < cfg.Devices/2 {
		t.Errorf("only %d devices saw traffic (configured %d)", stats.Hosts, cfg.Devices)
	}
	if stats.UsersPerHost < 1.5 {
		t.Errorf("users per device = %.2f, want shared devices", stats.UsersPerHost)
	}
	if stats.HostsPerUserMax < 2 {
		t.Errorf("max devices per user = %d, want multi-device users", stats.HostsPerUserMax)
	}
}

func TestHeavyTailVolumes(t *testing.T) {
	// Full-length run so the kept-user volume floor (MinKeptTx) does not
	// flatten the lognormal tail.
	cfg := DefaultConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	stats := ds.ComputeStats()
	if stats.MaxPerUser < 4*stats.MedianPerUser {
		t.Errorf("volume tail too light: max %d vs median %d", stats.MaxPerUser, stats.MedianPerUser)
	}
}

func TestGenerateDeviceScenario(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := testConfig().Start.Add(100 * 24 * time.Hour)
	segments := []Segment{
		{UserID: "user_1", Offset: 0, Length: 40 * time.Minute},
		{UserID: "user_4", Offset: 40 * time.Minute, Length: 30 * time.Minute},
		{UserID: "user_5", Offset: 70 * time.Minute, Length: 30 * time.Minute},
	}
	ds, err := g.GenerateDeviceScenario("10.0.0.99", start, segments)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("empty scenario")
	}
	if got := ds.Hosts(); len(got) != 1 || got[0] != "10.0.0.99" {
		t.Errorf("hosts = %v", got)
	}
	users := ds.Users()
	if len(users) != 3 {
		t.Fatalf("users = %v", users)
	}
	// Every transaction falls in its user's segment.
	for i := range ds.Transactions {
		tx := &ds.Transactions[i]
		var seg *Segment
		for s := range segments {
			if segments[s].UserID == tx.UserID {
				seg = &segments[s]
			}
		}
		lo := start.Add(seg.Offset)
		hi := lo.Add(seg.Length + 30*time.Second) // burst tail slack
		if tx.Timestamp.Before(lo) || tx.Timestamp.After(hi) {
			t.Fatalf("transaction at %v outside segment [%v, %v] for %s",
				tx.Timestamp, lo, hi, tx.UserID)
		}
	}
}

func TestGenerateDeviceScenarioErrors(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.GenerateDeviceScenario("", time.Now(), nil); err == nil {
		t.Error("empty device accepted")
	}
	_, err = g.GenerateDeviceScenario("10.0.0.1", time.Now(), []Segment{{UserID: "nobody", Length: time.Minute}})
	if err == nil {
		t.Error("unknown user accepted")
	}
	_, err = g.GenerateDeviceScenario("10.0.0.1", time.Now(), []Segment{{UserID: "user_1", Length: 0}})
	if err == nil {
		t.Error("zero-length segment accepted")
	}
}

func TestZipfCum(t *testing.T) {
	cum := zipfCum(4, 1)
	if len(cum) != 4 {
		t.Fatalf("len = %d", len(cum))
	}
	// 1, 1.5, 1.8333, 2.0833
	if cum[0] != 1 || cum[3] < 2.08 || cum[3] > 2.09 {
		t.Errorf("cum = %v", cum)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] <= cum[i-1] {
			t.Error("not increasing")
		}
	}
}

func TestNoveltyDeclines(t *testing.T) {
	// The Zipf visit process must yield declining novelty over weeks —
	// the precondition for Figs. 1–2. Check category novelty for one
	// mid-size user: week-2 novelty should exceed week-(n-1) novelty.
	cfg := testConfig()
	cfg.Weeks = 6
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	u := g.KeptUserIDs()[2]
	txs := ds.UserTransactions(u)
	novelty := func(week int) float64 {
		cut := cfg.Start.Add(time.Duration(week) * 7 * 24 * time.Hour)
		seen := map[string]bool{}
		after := map[string]bool{} // observed-after set
		for _, tx := range txs {
			if tx.Timestamp.Before(cut) {
				seen[tx.AppType] = true
			} else {
				after[tx.AppType] = true
			}
		}
		if len(after) == 0 {
			return 0
		}
		novel := 0
		for a := range after {
			if !seen[a] {
				novel++
			}
		}
		return float64(novel) / float64(len(after))
	}
	early, late := novelty(1), novelty(cfg.Weeks-1)
	if late > early+1e-9 && late > 0.2 {
		t.Errorf("novelty grew over time: week1=%.3f week%d=%.3f", early, cfg.Weeks-1, late)
	}
}

func TestGenerateIdempotent(t *testing.T) {
	g, err := NewGenerator(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d1 := g.Generate()
	d2 := g.Generate()
	if d1.Len() != d2.Len() {
		t.Fatalf("repeated Generate differs in length: %d vs %d", d1.Len(), d2.Len())
	}
	for i := range d1.Transactions {
		if d1.Transactions[i] != d2.Transactions[i] {
			t.Fatalf("repeated Generate differs at %d", i)
		}
	}
}

func TestDriftChangesBehaviour(t *testing.T) {
	cfg := testConfig()
	cfg.Weeks = 4
	cfg.DriftWeek = 2
	cfg.DriftUsers = 1
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	u := g.KeptUserIDs()[0]
	cut := cfg.Start.Add(2 * 7 * 24 * time.Hour)
	hostsOf := func(before bool) map[string]bool {
		out := map[string]bool{}
		for _, tx := range ds.UserTransactions(u) {
			if tx.Timestamp.Before(cut) == before {
				out[tx.Host] = true
			}
		}
		return out
	}
	pre, post := hostsOf(true), hostsOf(false)
	fresh := 0
	for h := range post {
		if !pre[h] {
			fresh++
		}
	}
	if frac := float64(fresh) / float64(len(post)); frac < 0.3 {
		t.Errorf("post-drift novel-host fraction %.2f, want substantial drift", frac)
	}
	// A non-drifted user keeps a stable host set.
	stable := g.KeptUserIDs()[2]
	preS, postS := map[string]bool{}, map[string]bool{}
	for _, tx := range ds.UserTransactions(stable) {
		if tx.Timestamp.Before(cut) {
			preS[tx.Host] = true
		} else {
			postS[tx.Host] = true
		}
	}
	freshS := 0
	for h := range postS {
		if !preS[h] {
			freshS++
		}
	}
	if len(postS) > 0 && float64(freshS)/float64(len(postS)) > 0.5 {
		t.Errorf("non-drifted user changed hosts too much: %d/%d", freshS, len(postS))
	}
}

func TestDriftConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.DriftWeek = cfg.Weeks
	if cfg.Validate() == nil {
		t.Error("DriftWeek == Weeks accepted")
	}
	cfg = testConfig()
	cfg.DriftWeek = 1
	cfg.DriftUsers = cfg.Users
	if cfg.Validate() == nil {
		t.Error("DriftUsers beyond kept users accepted")
	}
}
