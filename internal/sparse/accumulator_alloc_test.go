package sparse

import (
	"reflect"
	"testing"
)

// vec builds a test vector directly from pre-sorted parallel slices.
func vec(idx []int32, val []float64) Vector { return Vector{Idx: idx, Val: val} }

// TestAccumulatorAddAllocs gates the hot-path budget: once the scratch has
// grown to the vocabulary width, Reset and Add allocate nothing.
func TestAccumulatorAddAllocs(t *testing.T) {
	numeric := map[int32]bool{6: true, 7: true}
	acc := NewAccumulator(numeric)
	v1 := vec([]int32{0, 5, 6, 7}, []float64{1, 1, 0.5, 1})
	v2 := vec([]int32{1, 6, 40}, []float64{1, 0.25, 1})
	// Warm the scratch to the highest column before measuring.
	acc.Add(v1)
	acc.Add(v2)
	if avg := testing.AllocsPerRun(200, func() {
		acc.Reset()
		acc.Add(v1)
		acc.Add(v2)
		acc.Add(v1)
	}); avg > 0 {
		t.Errorf("warm Reset+Add allocates %.1f times per window, want 0", avg)
	}
}

// TestAccumulatorReuseMatchesFresh: an accumulator reused through many
// Reset cycles produces exactly what a freshly constructed one produces,
// including after scratch growth and interleaved column sets.
func TestAccumulatorReuseMatchesFresh(t *testing.T) {
	numeric := map[int32]bool{2: true, 9: true}
	windows := [][]Vector{
		{vec([]int32{0, 2}, []float64{1, 0.5}), vec([]int32{1, 2}, []float64{1, -0.5})},
		{vec([]int32{9}, []float64{0.25})},
		{}, // empty window: zero Vector from both
		{vec([]int32{30, 2}, []float64{1, 1}), vec([]int32{0}, []float64{1})},
	}
	reused := NewAccumulator(numeric)
	for wi, txs := range windows {
		reused.Reset()
		fresh := NewAccumulator(numeric)
		for _, v := range txs {
			reused.Add(v)
			fresh.Add(v)
		}
		got, want := reused.Vector(), fresh.Vector()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("window %d: reused %+v, fresh %+v", wi, got, want)
		}
	}
}

// TestAccumulatorEpochWraparound drives the epoch counter across its uint32
// wrap and checks stale marks cannot leak a previous window's columns.
func TestAccumulatorEpochWraparound(t *testing.T) {
	acc := NewAccumulator(nil)
	acc.Add(vec([]int32{3, 8}, []float64{1, 1}))
	// Force the wrap: the next Reset lands the epoch on 0, which must clear
	// the stamps rather than resurrect the marks set above.
	acc.epoch = ^uint32(0)
	acc.Reset()
	if acc.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", acc.epoch)
	}
	acc.Add(vec([]int32{5}, []float64{1}))
	want := vec([]int32{5}, []float64{1})
	if got := acc.Vector(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-wrap vector %+v, want %+v", got, want)
	}
}

// TestAccumulatorIgnoresNegativeIndex: a negative column index (illegal in
// a validated Vector, but reachable from a hostile wire peer) is skipped
// rather than crashing the shard loop.
func TestAccumulatorIgnoresNegativeIndex(t *testing.T) {
	acc := NewAccumulator(map[int32]bool{-4: true})
	acc.Add(Vector{Idx: []int32{-4, 2}, Val: []float64{1, 1}})
	want := vec([]int32{2}, []float64{1})
	if got := acc.Vector(); !reflect.DeepEqual(got, want) {
		t.Errorf("vector %+v, want %+v", got, want)
	}
}
