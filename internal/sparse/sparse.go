// Package sparse provides the sparse float vector used throughout the
// profiling pipeline. Feature vectors have 800+ columns (Table I of the
// paper) but only ~20 non-zeros per window, so kernels and aggregation
// operate on sorted (index, value) pairs.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Vector is a sparse float64 vector: parallel slices of strictly increasing
// column indexes and their non-zero values. The zero Vector is the empty
// (all-zero) vector and is ready to use.
type Vector struct {
	Idx []int32
	Val []float64
}

// New builds a Vector from a dense map of column -> value, dropping zeros.
func New(dense map[int]float64) Vector {
	idx := make([]int32, 0, len(dense))
	for i, v := range dense {
		if v != 0 {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	val := make([]float64, len(idx))
	for k, i := range idx {
		val[k] = dense[int(i)]
	}
	return Vector{Idx: idx, Val: val}
}

// FromDense builds a Vector from a dense slice, dropping zeros.
func FromDense(dense []float64) Vector {
	var v Vector
	for i, x := range dense {
		if x != 0 {
			v.Idx = append(v.Idx, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// NNZ returns the number of stored non-zeros.
func (v Vector) NNZ() int { return len(v.Idx) }

// At returns the value at column i (0 when not stored).
func (v Vector) At(i int) float64 {
	k := sort.Search(len(v.Idx), func(k int) bool { return v.Idx[k] >= int32(i) })
	if k < len(v.Idx) && v.Idx[k] == int32(i) {
		return v.Val[k]
	}
	return 0
}

// Dense expands the vector into a dense slice of length n. Stored indexes
// beyond n-1 cause a panic, indicating a vocabulary mismatch.
func (v Vector) Dense(n int) []float64 {
	out := make([]float64, n)
	for k, i := range v.Idx {
		out[i] = v.Val[k]
	}
	return out
}

// Dot returns the inner product v·w in O(nnz(v)+nnz(w)).
func Dot(v, w Vector) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(v.Idx) && j < len(w.Idx) {
		switch {
		case v.Idx[i] == w.Idx[j]:
			sum += v.Val[i] * w.Val[j]
			i++
			j++
		case v.Idx[i] < w.Idx[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// NormSq returns ||v||².
func (v Vector) NormSq() float64 {
	var sum float64
	for _, x := range v.Val {
		sum += x * x
	}
	return sum
}

// SqDist returns ||v-w||² in O(nnz(v)+nnz(w)).
func SqDist(v, w Vector) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(v.Idx) || j < len(w.Idx) {
		switch {
		case j >= len(w.Idx) || (i < len(v.Idx) && v.Idx[i] < w.Idx[j]):
			sum += v.Val[i] * v.Val[i]
			i++
		case i >= len(v.Idx) || w.Idx[j] < v.Idx[i]:
			sum += w.Val[j] * w.Val[j]
			j++
		default:
			d := v.Val[i] - w.Val[j]
			sum += d * d
			i++
			j++
		}
	}
	return sum
}

// Equal reports exact equality of stored indexes and values.
func Equal(v, w Vector) bool {
	if len(v.Idx) != len(w.Idx) {
		return false
	}
	for k := range v.Idx {
		if v.Idx[k] != w.Idx[k] || v.Val[k] != w.Val[k] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for exact-match window deduplication
// (the Fig. 2 novelty analysis compares windows for strict equality).
// Values are rendered with enough precision that distinct float64 values map
// to distinct keys.
func (v Vector) Key() string {
	var b strings.Builder
	b.Grow(len(v.Idx) * 12)
	for k := range v.Idx {
		if k > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.FormatInt(int64(v.Idx[k]), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(v.Val[k], 'g', -1, 64))
	}
	return b.String()
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := Vector{Idx: make([]int32, len(v.Idx)), Val: make([]float64, len(v.Val))}
	copy(out.Idx, v.Idx)
	copy(out.Val, v.Val)
	return out
}

// Validate checks the structural invariants: strictly increasing indexes,
// no explicit zeros, no NaN/Inf values, matching slice lengths.
func (v Vector) Validate() error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse: index/value length mismatch %d != %d", len(v.Idx), len(v.Val))
	}
	for k := range v.Idx {
		if k > 0 && v.Idx[k] <= v.Idx[k-1] {
			return fmt.Errorf("sparse: indexes not strictly increasing at position %d", k)
		}
		if v.Idx[k] < 0 {
			return fmt.Errorf("sparse: negative index %d", v.Idx[k])
		}
		if v.Val[k] == 0 {
			return fmt.Errorf("sparse: explicit zero at column %d", v.Idx[k])
		}
		if math.IsNaN(v.Val[k]) || math.IsInf(v.Val[k], 0) {
			return fmt.Errorf("sparse: non-finite value at column %d", v.Idx[k])
		}
	}
	return nil
}

// String renders the vector as "{i:v, ...}" for debugging.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for k := range v.Idx {
		if k > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%g", v.Idx[k], v.Val[k])
	}
	b.WriteByte('}')
	return b.String()
}
