package sparse

import "sort"

// Accumulator aggregates many transaction vectors into one window vector
// following Sect. III-C of the paper: binary (bag-of-words) columns combine
// by logical OR, numeric columns by arithmetic mean over the windowed
// transactions.
//
// The caller declares which columns are numeric via the numeric mask; every
// other column is treated as binary. Means divide by the total number of
// accumulated transactions (not by the count of transactions that stored
// the column), matching the paper's worked example where reputation 0, 0.5,
// 0 over three transactions yields 0.167.
type Accumulator struct {
	numeric map[int32]bool
	sums    map[int32]float64 // numeric columns: running sums
	present map[int32]bool    // binary columns: OR
	count   int
}

// NewAccumulator returns an empty accumulator. numericCols lists the column
// indexes aggregated by mean; it is retained by reference and must not be
// mutated while the accumulator is in use.
func NewAccumulator(numericCols map[int32]bool) *Accumulator {
	return &Accumulator{
		numeric: numericCols,
		sums:    make(map[int32]float64),
		present: make(map[int32]bool),
	}
}

// Add folds one transaction vector into the window.
func (a *Accumulator) Add(v Vector) {
	a.count++
	for k, i := range v.Idx {
		if a.numeric[i] {
			a.sums[i] += v.Val[k]
		} else {
			a.present[i] = true
		}
	}
}

// Count returns the number of transactions accumulated so far.
func (a *Accumulator) Count() int { return a.count }

// Vector materializes the aggregated window vector. It returns the zero
// Vector when no transactions were added.
func (a *Accumulator) Vector() Vector {
	if a.count == 0 {
		return Vector{}
	}
	idx := make([]int32, 0, len(a.present)+len(a.sums))
	for i := range a.present {
		idx = append(idx, i)
	}
	for i := range a.sums {
		if a.sums[i] != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(x, y int) bool { return idx[x] < idx[y] })
	val := make([]float64, len(idx))
	for k, i := range idx {
		if a.numeric[i] {
			val[k] = a.sums[i] / float64(a.count)
		} else {
			val[k] = 1
		}
	}
	return Vector{Idx: idx, Val: val}
}

// Reset clears the accumulator for reuse.
func (a *Accumulator) Reset() {
	a.count = 0
	clear(a.sums)
	clear(a.present)
}
