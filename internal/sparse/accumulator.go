package sparse

import "slices"

// Accumulator aggregates many transaction vectors into one window vector
// following Sect. III-C of the paper: binary (bag-of-words) columns combine
// by logical OR, numeric columns by arithmetic mean over the windowed
// transactions.
//
// The caller declares which columns are numeric via the numeric mask; every
// other column is treated as binary. Means divide by the total number of
// accumulated transactions (not by the count of transactions that stored
// the column), matching the paper's worked example where reputation 0, 0.5,
// 0 over three transactions yields 0.167.
//
// The accumulator is built for reuse on the streaming hot path: instead of
// per-window maps it keeps dense scratch arrays sized to the highest column
// seen — per-column value and epoch-mark slots plus the touched-column list
// — so Reset is a counter bump and Add never allocates once the scratch has
// grown to the vocabulary's width. Only Vector materializes fresh slices
// (they leave with the emitted window).
type Accumulator struct {
	numeric []bool    // dense numeric-column mask
	vals    []float64 // per-column running sum (numeric) or presence (binary)
	mark    []uint32  // epoch stamp: vals[i] is live iff mark[i] == epoch
	touched []int32   // columns stamped this epoch, unsorted
	epoch   uint32
	count   int
}

// NewAccumulator returns an empty accumulator. numericCols lists the column
// indexes aggregated by mean; the set is copied into a dense mask, so later
// mutation of the map does not affect the accumulator.
func NewAccumulator(numericCols map[int32]bool) *Accumulator {
	a := &Accumulator{epoch: 1}
	for col, ok := range numericCols {
		if !ok || col < 0 {
			continue
		}
		if int(col) >= len(a.numeric) {
			a.numeric = append(a.numeric, make([]bool, int(col)+1-len(a.numeric))...)
		}
		a.numeric[col] = true
	}
	return a
}

// isNumeric reports whether column i aggregates by mean.
func (a *Accumulator) isNumeric(i int32) bool {
	return int(i) < len(a.numeric) && a.numeric[i]
}

// ensure grows the scratch arrays to hold column i. Fresh slots carry mark
// 0, which no epoch ever equals (epochs start at 1 and skip 0 on wrap).
func (a *Accumulator) ensure(i int32) {
	if int(i) < len(a.mark) {
		return
	}
	n := int(i) + 1 - len(a.mark)
	a.mark = append(a.mark, make([]uint32, n)...)
	a.vals = append(a.vals, make([]float64, n)...)
}

// Add folds one transaction vector into the window.
func (a *Accumulator) Add(v Vector) {
	a.count++
	for k, i := range v.Idx {
		if i < 0 {
			continue
		}
		a.ensure(i)
		if a.isNumeric(i) {
			if a.mark[i] != a.epoch {
				a.mark[i] = a.epoch
				a.vals[i] = 0
				a.touched = append(a.touched, i)
			}
			a.vals[i] += v.Val[k]
		} else if a.mark[i] != a.epoch {
			a.mark[i] = a.epoch
			a.touched = append(a.touched, i)
		}
	}
}

// Count returns the number of transactions accumulated so far.
func (a *Accumulator) Count() int { return a.count }

// Vector materializes the aggregated window vector. It returns the zero
// Vector when no transactions were added. Binary columns emit 1; numeric
// columns emit their mean, except an exact-zero sum, which (like an absent
// column) contributes nothing.
func (a *Accumulator) Vector() Vector {
	if a.count == 0 {
		return Vector{}
	}
	slices.Sort(a.touched)
	idx := make([]int32, 0, len(a.touched))
	val := make([]float64, 0, len(a.touched))
	for _, i := range a.touched {
		if a.isNumeric(i) {
			if a.vals[i] == 0 {
				continue
			}
			idx = append(idx, i)
			val = append(val, a.vals[i]/float64(a.count))
		} else {
			idx = append(idx, i)
			val = append(val, 1)
		}
	}
	return Vector{Idx: idx, Val: val}
}

// Reset clears the accumulator for reuse: the epoch bump invalidates every
// stamped slot at once, no scratch is released.
func (a *Accumulator) Reset() {
	a.count = 0
	a.touched = a.touched[:0]
	a.epoch++
	if a.epoch == 0 {
		// Epoch wrapped onto the fresh-slot sentinel: clear the stamps once
		// and restart above it.
		clear(a.mark)
		a.epoch = 1
	}
}
