package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVector is the testing/quick generator for random sparse vectors over a
// small column universe so collisions between vectors are common.
type genVector Vector

func (genVector) Generate(r *rand.Rand, size int) reflect.Value {
	dense := make(map[int]float64)
	n := r.Intn(size + 1)
	for i := 0; i < n; i++ {
		col := r.Intn(32)
		val := math.Round(r.Float64()*8) / 8 // grid values; zeros possible
		dense[col] = val
	}
	return reflect.ValueOf(genVector(New(dense)))
}

func TestNewSortsAndDropsZeros(t *testing.T) {
	v := New(map[int]float64{5: 1, 2: 0.5, 9: 0, 0: 2})
	if err := v.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := Vector{Idx: []int32{0, 2, 5}, Val: []float64{2, 0.5, 1}}
	if !Equal(v, want) {
		t.Errorf("got %v, want %v", v, want)
	}
}

func TestFromDense(t *testing.T) {
	v := FromDense([]float64{0, 1, 0, 0.5})
	want := New(map[int]float64{1: 1, 3: 0.5})
	if !Equal(v, want) {
		t.Errorf("got %v, want %v", v, want)
	}
}

func TestAtAndDense(t *testing.T) {
	v := New(map[int]float64{1: 1, 3: 0.5})
	if v.At(1) != 1 || v.At(3) != 0.5 || v.At(0) != 0 || v.At(2) != 0 || v.At(7) != 0 {
		t.Errorf("At lookups wrong: %v", v)
	}
	d := v.Dense(5)
	want := []float64{0, 1, 0, 0.5, 0}
	if !reflect.DeepEqual(d, want) {
		t.Errorf("Dense = %v, want %v", d, want)
	}
}

func TestDotMatchesDense(t *testing.T) {
	f := func(a, b genVector) bool {
		va, vb := Vector(a), Vector(b)
		got := Dot(va, vb)
		da, db := va.Dense(32), vb.Dense(32)
		var want float64
		for i := range da {
			want += da[i] * db[i]
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSqDistMatchesDense(t *testing.T) {
	f := func(a, b genVector) bool {
		va, vb := Vector(a), Vector(b)
		got := SqDist(va, vb)
		da, db := va.Dense(32), vb.Dense(32)
		var want float64
		for i := range da {
			d := da[i] - db[i]
			want += d * d
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSqDistIdentities(t *testing.T) {
	f := func(a, b genVector) bool {
		va, vb := Vector(a), Vector(b)
		// ||a-b||² == ||a||² + ||b||² - 2a·b
		lhs := SqDist(va, vb)
		rhs := va.NormSq() + vb.NormSq() - 2*Dot(va, vb)
		if math.Abs(lhs-rhs) > 1e-9 {
			return false
		}
		// symmetry and self-distance
		return math.Abs(SqDist(va, vb)-SqDist(vb, va)) < 1e-12 && SqDist(va, va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEqualConsistency(t *testing.T) {
	f := func(a, b genVector) bool {
		va, vb := Vector(a), Vector(b)
		return Equal(va, vb) == (va.Key() == vb.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := New(map[int]float64{1: 1, 2: 2})
	c := v.Clone()
	if !Equal(v, c) {
		t.Fatal("clone differs")
	}
	if len(c.Val) > 0 {
		c.Val[0] = 99
		if v.Val[0] == 99 {
			t.Error("clone shares backing array")
		}
	}
}

func TestValidateRejectsBadVectors(t *testing.T) {
	bad := []Vector{
		{Idx: []int32{1}, Val: nil},
		{Idx: []int32{2, 1}, Val: []float64{1, 1}},
		{Idx: []int32{1, 1}, Val: []float64{1, 1}},
		{Idx: []int32{-1}, Val: []float64{1}},
		{Idx: []int32{1}, Val: []float64{0}},
		{Idx: []int32{1}, Val: []float64{math.NaN()}},
		{Idx: []int32{1}, Val: []float64{math.Inf(1)}},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid vector %v", i, v)
		}
	}
}

func TestZeroVectorReady(t *testing.T) {
	var v Vector
	if v.NNZ() != 0 || v.NormSq() != 0 || v.Key() != "" {
		t.Errorf("zero vector misbehaves: %v", v)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("zero vector invalid: %v", err)
	}
	if Dot(v, New(map[int]float64{1: 1})) != 0 {
		t.Error("dot with zero vector != 0")
	}
}

func TestAccumulatorPaperExample(t *testing.T) {
	// The worked example from Sect. III-C: columns are
	// CONNECT(0) | HTTP(1) | reputation(2) | verified(3) | Messaging(4)
	// with reputation and verified numeric. Three transactions:
	//   1 1 0   1 0
	//   0 0 0.5 1 0
	//   0 1 0   0 0
	// must aggregate to 1 1 0.167 0.667 0.
	numeric := map[int32]bool{2: true, 3: true}
	acc := NewAccumulator(numeric)
	acc.Add(New(map[int]float64{0: 1, 1: 1, 3: 1}))
	acc.Add(New(map[int]float64{2: 0.5, 3: 1}))
	acc.Add(New(map[int]float64{1: 1}))
	got := acc.Vector()
	if got.At(0) != 1 || got.At(1) != 1 || got.At(4) != 0 {
		t.Errorf("binary OR columns wrong: %v", got)
	}
	if math.Abs(got.At(2)-0.5/3) > 1e-9 {
		t.Errorf("reputation mean = %v, want 0.167", got.At(2))
	}
	if math.Abs(got.At(3)-2.0/3) > 1e-9 {
		t.Errorf("verified mean = %v, want 0.667", got.At(3))
	}
	if acc.Count() != 3 {
		t.Errorf("Count = %d", acc.Count())
	}
}

func TestAccumulatorEmptyAndReset(t *testing.T) {
	acc := NewAccumulator(nil)
	if v := acc.Vector(); v.NNZ() != 0 {
		t.Errorf("empty accumulator vector: %v", v)
	}
	acc.Add(New(map[int]float64{1: 1}))
	acc.Reset()
	if acc.Count() != 0 || acc.Vector().NNZ() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestAccumulatorSingleTransactionIdentity(t *testing.T) {
	// Aggregating a single transaction must reproduce it exactly. Binary
	// (bag-of-words) columns hold 0/1 in transaction vectors, so force
	// non-numeric columns to 1 as the feature extractor does.
	numeric := map[int32]bool{3: true, 7: true}
	f := func(a genVector) bool {
		v := Vector(a)
		for k, i := range v.Idx {
			if !numeric[i] {
				v.Val[k] = 1
			}
		}
		acc := NewAccumulator(numeric)
		acc.Add(v)
		return Equal(acc.Vector(), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorBinaryIdempotent(t *testing.T) {
	// With no numeric columns, adding the same binary vector k times must
	// yield that vector (OR is idempotent).
	f := func(a genVector, k uint8) bool {
		v := Vector(a)
		// Force binary values.
		for i := range v.Val {
			v.Val[i] = 1
		}
		acc := NewAccumulator(nil)
		n := int(k%5) + 1
		for i := 0; i < n; i++ {
			acc.Add(v)
		}
		return Equal(acc.Vector(), v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidateAcceptsGenerated(t *testing.T) {
	f := func(a genVector) bool {
		return Vector(a).Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
