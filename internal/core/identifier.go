package core

import (
	"fmt"

	"webtxprofile/internal/features"
	"webtxprofile/internal/weblog"
)

// Event is one identification step emitted by the streaming Identifier:
// a completed window, the profiles that accepted it, and — once a profile
// has accepted ConsecutiveK windows in a row — the identified user.
type Event struct {
	Window   features.Window
	Accepted []string
	// Identified is the user whose model has accepted ConsecutiveK
	// consecutive windows ending at this one ("" while undecided). This
	// is the consecutive-window rule sketched at the end of Sect. V-B.
	Identified string
}

// Identifier consumes a live transaction stream from one device and emits
// identification events — the paper's continuous-authentication /
// intrusion-monitoring deployment (Sect. I). It is not safe for concurrent
// use; feed it from a single goroutine.
type Identifier struct {
	set      *ProfileSet
	streamer *features.Streamer
	sc       *scorer
	k        int
	// runs tracks each user's current consecutive-accept streak, parallel
	// to sc.users.
	runs []int
	host string
}

// NewIdentifier creates a streaming identifier for one device.
// consecutiveK is the number of consecutive accepted windows required to
// report identification (1 = identify on any accepted window; the paper
// suggests e.g. 10 windows ≈ 5 minutes at S=30s).
func NewIdentifier(set *ProfileSet, host string, consecutiveK int) (*Identifier, error) {
	sc, err := newScorer(set)
	if err != nil {
		return nil, err
	}
	return newIdentifierWithScorer(set, host, consecutiveK, sc)
}

// newIdentifierWithScorer creates an identifier sharing an existing scorer
// (and its scratch buffers) — the Monitor hands every identifier in a
// shard the shard's scorer, since the shard lock already serializes them.
func newIdentifierWithScorer(set *ProfileSet, host string, consecutiveK int, sc *scorer) (*Identifier, error) {
	if consecutiveK <= 0 {
		consecutiveK = 1
	}
	st, err := features.NewStreamer(set.Vocabulary, set.Window, host)
	if err != nil {
		return nil, err
	}
	return &Identifier{
		set:      set,
		streamer: st,
		sc:       sc,
		k:        consecutiveK,
		runs:     make([]int, len(sc.users)),
		host:     host,
	}, nil
}

// Feed ingests one transaction (timestamps must be non-decreasing) and
// returns the events for any windows completed by its arrival.
func (id *Identifier) Feed(tx weblog.Transaction) ([]Event, error) {
	if tx.SourceIP != id.host {
		return nil, fmt.Errorf("core: transaction from %s fed to identifier for %s", tx.SourceIP, id.host)
	}
	ws, err := id.streamer.Add(tx)
	if err != nil {
		return nil, err
	}
	return id.classify(ws), nil
}

// Flush completes the pending windows at end of stream.
func (id *Identifier) Flush() []Event {
	return id.classify(id.streamer.Close())
}

func (id *Identifier) classify(ws []features.Window) []Event {
	if len(ws) == 0 {
		return nil
	}
	users := id.sc.users
	events := make([]Event, 0, len(ws))
	for i := range ws {
		ev := Event{Window: ws[i]}
		mask := id.sc.acceptMask(ws[i].Vector)
		for j, accepted := range mask {
			if accepted {
				ev.Accepted = append(ev.Accepted, users[j])
				id.runs[j]++
			} else {
				id.runs[j] = 0
			}
		}
		// Deterministic winner: longest current run ≥ k, ties broken by
		// user id (users are sorted, strict > keeps the first).
		bestRun := 0
		for j := range users {
			if id.runs[j] >= id.k && id.runs[j] > bestRun {
				bestRun = id.runs[j]
				ev.Identified = users[j]
			}
		}
		events = append(events, ev)
	}
	return events
}
