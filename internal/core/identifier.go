package core

import (
	"fmt"

	"webtxprofile/internal/features"
	"webtxprofile/internal/weblog"
)

// Event is one identification step emitted by the streaming Identifier:
// a completed window, the profiles that accepted it, and — once a profile
// has accepted ConsecutiveK windows in a row — the identified user.
type Event struct {
	Window   features.Window
	Accepted []string
	// Identified is the user whose model has accepted ConsecutiveK
	// consecutive windows ending at this one ("" while undecided). This
	// is the consecutive-window rule sketched at the end of Sect. V-B.
	Identified string
}

// Identifier consumes a live transaction stream from one device and emits
// identification events — the paper's continuous-authentication /
// intrusion-monitoring deployment (Sect. I). It is not safe for concurrent
// use; feed it from a single goroutine.
type Identifier struct {
	set      *ProfileSet
	streamer *features.Streamer
	sc       *scorer
	k        int
	// runs tracks each user's current consecutive-accept streak, parallel
	// to sc.users.
	runs []int
	host string
}

// NewIdentifier creates a streaming identifier for one device.
// consecutiveK is the number of consecutive accepted windows required to
// report identification (1 = identify on any accepted window; the paper
// suggests e.g. 10 windows ≈ 5 minutes at S=30s).
func NewIdentifier(set *ProfileSet, host string, consecutiveK int) (*Identifier, error) {
	sc, err := newScorer(set)
	if err != nil {
		return nil, err
	}
	return newIdentifierWithScorer(set, host, consecutiveK, sc)
}

// newIdentifierWithScorer creates an identifier sharing an existing scorer
// (and its scratch buffers) — the Monitor hands every identifier in a
// shard the shard's scorer, since the shard lock already serializes them.
func newIdentifierWithScorer(set *ProfileSet, host string, consecutiveK int, sc *scorer) (*Identifier, error) {
	if consecutiveK <= 0 {
		consecutiveK = 1
	}
	st, err := features.NewStreamer(set.Vocabulary, set.Window, host)
	if err != nil {
		return nil, err
	}
	return &Identifier{
		set:      set,
		streamer: st,
		sc:       sc,
		k:        consecutiveK,
		runs:     make([]int, len(sc.users)),
		host:     host,
	}, nil
}

// IdentifierState is a serializable snapshot of a streaming Identifier:
// the streamer state (anchor, buffered transactions, window position) plus
// the per-user consecutive-accept streaks. Streaks are keyed by user id —
// not by profile index — so a snapshot survives profile-set reloads as
// long as the vocabulary and window configuration are unchanged; streaks
// of users absent from the restoring set are dropped, and users new to it
// start at zero.
type IdentifierState struct {
	Host string `json:"host"`
	// K is the consecutive-window threshold the identifier ran with.
	// RestoreIdentifier resumes with it; the Monitor's import paths use
	// the monitor's own threshold instead (every device of a monitor
	// shares one rule).
	K        int                    `json:"k"`
	Streamer features.StreamerState `json:"streamer"`
	Runs     map[string]int         `json:"runs,omitempty"`
}

// Snapshot captures the identifier's full resumable state. The snapshot is
// independent of the identifier (buffered transactions are copied) and
// stays valid while it keeps running.
func (id *Identifier) Snapshot() IdentifierState {
	st := IdentifierState{Host: id.host, K: id.k, Streamer: id.streamer.Snapshot()}
	for j, u := range id.sc.users {
		if id.runs[j] != 0 {
			if st.Runs == nil {
				st.Runs = make(map[string]int)
			}
			st.Runs[u] = id.runs[j]
		}
	}
	return st
}

// RestoreIdentifier rebuilds an identifier from a snapshot against the
// given profile set (which must carry the vocabulary and window
// configuration the snapshot was taken under). The restored identifier
// emits exactly the event sequence the snapshotted one would have emitted —
// the property TestIdentifierSnapshotResume asserts.
func RestoreIdentifier(set *ProfileSet, st IdentifierState) (*Identifier, error) {
	sc, err := newScorer(set)
	if err != nil {
		return nil, err
	}
	return restoreIdentifierWithScorer(set, st, st.K, sc)
}

// restoreIdentifierWithScorer is RestoreIdentifier sharing an existing
// scorer and overriding the consecutive-window threshold — the shape the
// Monitor's rehydration and shard-import paths need.
func restoreIdentifierWithScorer(set *ProfileSet, st IdentifierState, consecutiveK int, sc *scorer) (*Identifier, error) {
	if consecutiveK <= 0 {
		consecutiveK = 1
	}
	if st.Host == "" {
		return nil, fmt.Errorf("core: identifier state missing host")
	}
	if st.Streamer.Entity != st.Host {
		return nil, fmt.Errorf("core: identifier state for %s carries streamer state for %q", st.Host, st.Streamer.Entity)
	}
	streamer, err := features.RestoreStreamer(set.Vocabulary, set.Window, st.Streamer)
	if err != nil {
		return nil, fmt.Errorf("core: restoring streamer for %s: %w", st.Host, err)
	}
	runs := make([]int, len(sc.users))
	for j, u := range sc.users {
		r := st.Runs[u]
		if r < 0 {
			return nil, fmt.Errorf("core: negative streak %d for user %s in state for %s", r, u, st.Host)
		}
		runs[j] = r
	}
	return &Identifier{
		set:      set,
		streamer: streamer,
		sc:       sc,
		k:        consecutiveK,
		runs:     runs,
		host:     st.Host,
	}, nil
}

// Feed ingests one transaction (timestamps must be non-decreasing) and
// returns the events for any windows completed by its arrival.
func (id *Identifier) Feed(tx weblog.Transaction) ([]Event, error) {
	if tx.SourceIP != id.host {
		return nil, fmt.Errorf("core: transaction from %s fed to identifier for %s", tx.SourceIP, id.host)
	}
	ws, err := id.streamer.Add(tx)
	if err != nil {
		return nil, err
	}
	return id.classify(ws), nil
}

// Flush completes the pending windows at end of stream.
func (id *Identifier) Flush() []Event {
	return id.classify(id.streamer.Close())
}

func (id *Identifier) classify(ws []features.Window) []Event {
	if len(ws) == 0 {
		return nil
	}
	users := id.sc.users
	events := make([]Event, 0, len(ws))
	for i := range ws {
		ev := Event{Window: ws[i]}
		mask := id.sc.acceptMask(ws[i].Vector)
		for j, accepted := range mask {
			if accepted {
				ev.Accepted = append(ev.Accepted, users[j])
				id.runs[j]++
			} else {
				id.runs[j] = 0
			}
		}
		// Deterministic winner: longest current run ≥ k, ties broken by
		// user id (users are sorted, strict > keeps the first).
		bestRun := 0
		for j := range users {
			if id.runs[j] >= id.k && id.runs[j] > bestRun {
				bestRun = id.runs[j]
				ev.Identified = users[j]
			}
		}
		events = append(events, ev)
	}
	return events
}
