package core

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
	"webtxprofile/internal/weblog"
)

// smallDataset generates a compact but realistic corpus once per package.
var smallDataset = func() *weblog.Dataset {
	cfg := synth.DefaultConfig()
	cfg.Users = 6
	cfg.SmallUsers = 1
	cfg.Devices = 5
	cfg.Weeks = 3
	cfg.Services = 150
	cfg.Archetypes = 6
	cfg.ConfusableUsers = 0
	cfg.ServicesPerUserMin = 10
	cfg.ServicesPerUserMax = 18
	cfg.WeeklyTxMedian = 1600
	cfg.WeeklyTxSigma = 0.4
	cfg.MinKeptTx = 2600
	g, err := synth.NewGenerator(cfg)
	if err != nil {
		panic(err)
	}
	return g.Generate()
}()

func testConfig() Config {
	return Config{
		MaxTrainWindows: 300,
		Workers:         2,
		Train:           svm.TrainConfig{CacheMB: 16},
	}
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Window.Duration != time.Minute || cfg.Window.Shift != 30*time.Second {
		t.Errorf("default window = %v", cfg.Window)
	}
	if cfg.Algorithm != svm.OCSVM || cfg.Param != 0.1 || cfg.TrainFraction != 0.75 {
		t.Errorf("defaults = %+v", cfg)
	}
	if svdd := (Config{Algorithm: svm.SVDD}).WithDefaults(); svdd.Param != 0.5 {
		t.Errorf("SVDD default param = %v", svdd.Param)
	}
	if cfg.MinTransactions != 1500 {
		t.Errorf("min transactions = %d", cfg.MinTransactions)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := cfg
	bad.Param = 1.5 // nu must be <= 1 for OC-SVM
	if err := bad.Validate(); err == nil {
		t.Error("nu=1.5 accepted for OC-SVM")
	}
	bad2 := cfg
	bad2.TrainFraction = 1
	if err := bad2.Validate(); err == nil {
		t.Error("train fraction 1 accepted")
	}
	bad3 := cfg
	bad3.Algorithm = svm.Algorithm(9)
	if err := bad3.Validate(); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestPrepareSplit(t *testing.T) {
	split, err := PrepareSplit(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Dropped) != 1 {
		t.Errorf("dropped = %v, want the 1 small user", split.Dropped)
	}
	users := split.Train.Users()
	if len(users) != 5 {
		t.Fatalf("train users = %v", users)
	}
	for _, u := range users {
		tr, te := split.Train.UserCount(u), split.Test.UserCount(u)
		frac := float64(tr) / float64(tr+te)
		if frac < 0.74 || frac > 0.76 {
			t.Errorf("%s train fraction = %.3f", u, frac)
		}
	}
}

func TestTrainEvaluateEndToEnd(t *testing.T) {
	set, test, err := Train(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Profiles) != 5 {
		t.Fatalf("profiles = %d", len(set.Profiles))
	}
	for u, p := range set.Profiles {
		if p.UserID != u || p.Model == nil || p.TrainWindows == 0 {
			t.Errorf("profile %s malformed: %+v", u, p)
		}
		if p.Model.NumSVs() == 0 {
			t.Errorf("profile %s has no SVs", u)
		}
	}
	cm, err := set.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	mean := cm.Mean()
	// On cleanly separated synthetic users the paper-shaped result holds:
	// high self acceptance, low other acceptance.
	if mean.Self < 0.6 {
		t.Errorf("mean self acceptance = %.3f, want >= 0.6", mean.Self)
	}
	if mean.Other > 0.35 {
		t.Errorf("mean other acceptance = %.3f, want <= 0.35", mean.Other)
	}
	if mean.ACC() < 0.4 {
		t.Errorf("mean ACC = %.3f", mean.ACC())
	}
}

func TestTrainAutoTune(t *testing.T) {
	cfg := testConfig()
	cfg.AutoTune = true
	cfg.GridParams = []float64{0.2, 0.1}
	cfg.GridKernels = []svm.Kernel{svm.Linear()}
	cfg.MaxTrainWindows = 150
	set, test, err := Train(smallDataset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := set.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Mean().ACC() < 0.4 {
		t.Errorf("auto-tuned ACC = %.3f", cm.Mean().ACC())
	}
	for u, p := range set.Profiles {
		if p.TunedACC == 0 {
			t.Errorf("profile %s has no tuned ACC", u)
		}
	}
}

func TestBuildProfilesErrors(t *testing.T) {
	if _, err := BuildProfiles(weblog.NewDataset(), testConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	cfg := testConfig()
	cfg.Window = features.WindowConfig{Duration: -1, Shift: -1}
	if _, err := BuildProfiles(smallDataset, cfg); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestIdentifyHost(t *testing.T) {
	set, test, err := Train(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	hosts := test.Hosts()
	if len(hosts) == 0 {
		t.Fatal("no hosts in test set")
	}
	tl, err := set.IdentifyHost(test, hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	if _, err := set.IdentifyHost(test, "203.0.113.1"); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	set, test, err := Train(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Window != set.Window || back.Algorithm != set.Algorithm {
		t.Error("metadata drift after round trip")
	}
	if len(back.Profiles) != len(set.Profiles) {
		t.Fatalf("profiles = %d, want %d", len(back.Profiles), len(set.Profiles))
	}
	// Decisions must be identical after reload.
	windows, err := features.ComposeUsers(set.Vocabulary, set.Window, test)
	if err != nil {
		t.Fatal(err)
	}
	for u := range set.Profiles {
		ws := windows[u]
		if len(ws) > 20 {
			ws = ws[:20]
		}
		for i := range ws {
			a := set.Profiles[u].Model.Decision(ws[i].Vector)
			b := back.Profiles[u].Model.Decision(ws[i].Vector)
			if a != b {
				t.Fatalf("decision drift for %s window %d: %v vs %v", u, i, a, b)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	set, _, err := Train(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.json.gz")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Profiles) != len(set.Profiles) {
		t.Error("profile count drift")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gz")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestIdentifierStreaming(t *testing.T) {
	set, test, err := Train(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Feed one user's test transactions as if they came from one device.
	users := set.Users()
	u := users[0]
	txs := test.UserTransactions(u)
	if len(txs) > 2000 {
		txs = txs[:2000]
	}
	const host = "192.0.2.7"
	id, err := NewIdentifier(set, host, 3)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for _, tx := range txs {
		tx.SourceIP = host
		evs, err := id.Feed(tx)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, evs...)
	}
	events = append(events, id.Flush()...)
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	// The profiled user should be identified at some point.
	identified := false
	for _, ev := range events {
		if ev.Identified == u {
			identified = true
			break
		}
	}
	if !identified {
		t.Errorf("user %s never identified across %d events", u, len(events))
	}
}

func TestIdentifierRejectsWrongHost(t *testing.T) {
	set, test, err := Train(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewIdentifier(set, "192.0.2.7", 1)
	if err != nil {
		t.Fatal(err)
	}
	tx := test.Transactions[0]
	tx.SourceIP = "198.51.100.1"
	if _, err := id.Feed(tx); err == nil {
		t.Error("foreign-host transaction accepted")
	}
}
