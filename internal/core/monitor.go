package core

import (
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webtxprofile/internal/svm"
	"webtxprofile/internal/weblog"
)

// Alert is one identity-state change on a monitored device, the event
// stream of the paper's continuous-authentication and intrusion-monitoring
// applications (Sect. I).
type Alert struct {
	Device string
	// Kind distinguishes the transitions.
	Kind AlertKind
	// User is the newly identified user (AlertIdentified), or the user
	// whose identity was lost (AlertLost).
	User string
	// Previous is the previously confirmed user, if any.
	Previous string
	// Event carries the underlying window classification.
	Event Event
}

// AlertKind enumerates identity transitions.
type AlertKind int

// Alert kinds.
const (
	// AlertIdentified fires when a user reaches the consecutive-window
	// threshold on a device (including taking over from another user).
	AlertIdentified AlertKind = iota + 1
	// AlertLost fires when a confirmed identity stops matching the
	// observed windows.
	AlertLost
)

// String names the alert kind.
func (k AlertKind) String() string {
	switch k {
	case AlertIdentified:
		return "identified"
	case AlertLost:
		return "lost"
	default:
		return fmt.Sprintf("alert(%d)", int(k))
	}
}

// MonitorConfig tunes the sharded monitor. The zero value selects the
// defaults, which behave exactly like the original single-lock monitor
// (no eviction) while removing its lock contention.
type MonitorConfig struct {
	// Shards is the number of lock-striped device shards (default 16).
	// Each device hashes to one shard, so per-device event order is
	// preserved while devices on different shards feed in parallel.
	Shards int
	// IdleTTL evicts a device whose last transaction is older than this,
	// measured in stream time (the maximum transaction timestamp seen by
	// the whole monitor, not wall clock), bounding tracked-device memory.
	// Pending windows of an evicted device are flushed first, and a
	// device evicted while an identity is confirmed fires a final
	// AlertLost, so consumers always see sessions end. Sweeps cover every
	// shard — including quiet ones — and are amortized to one full pass
	// per IdleTTL of stream time, so an idle device lingers for at most
	// 2×IdleTTL while any traffic flows anywhere.
	//
	// The stream clock defends against corrupt timestamps: a single
	// transaction advances it by at most IdleTTL, sweeps pause while
	// recent input disagrees with the clock, and a clock poisoned by a
	// corrupt far-future timestamp snaps back once enough legitimate
	// traffic follows. A client whose clock is *persistently* years
	// ahead and that dominates the stream is indistinguishable from
	// genuine stream progress and can still starve other devices of
	// stream time — feed the monitor from time-sane sources or disable
	// eviction. 0 disables eviction.
	IdleTTL time.Duration
	// AlertBuffer is the capacity of the alert delivery channel
	// (default 256). Feeding blocks when the callback falls this far
	// behind.
	AlertBuffer int
	// BatchWorkers bounds the worker pool FeedBatch uses to process the
	// batch's shards concurrently, so windows completed within one batch
	// are scored in parallel (default GOMAXPROCS, further capped at the
	// number of shards holding work; 1 processes shards sequentially).
	// Each shard's transactions are still handled in order under the
	// shard lock, so per-device event and alert order is identical to
	// the sequential setting — only the interleaving of alerts *across*
	// devices varies.
	BatchWorkers int
	// Spill, when non-nil, makes idle eviction durable instead of lossy:
	// an evicted device's identification state (pending window buffer,
	// consecutive-accept streaks, confirmed identity) is serialized into
	// the store, no flush happens and no synthetic AlertLost fires, and
	// the state is transparently rehydrated — and removed from the store —
	// when the device's next transaction arrives. With a spill store the
	// alert sequence of an evicting monitor is identical to a
	// never-evicting one (TestMonitorSpillRehydrateMatchesNeverEvicting),
	// and Checkpoint can persist every live device across a process
	// restart. Store I/O runs under the affected device's shard lock.
	// Should the store fail on a spill, the monitor falls back to the
	// lossy eviction path (flush + AlertLost) rather than leak the device.
	Spill StateStore
	// SharedSpill declares that Spill is a store shared by several
	// monitors — the fleet-wide state tier of internal/statestore —
	// rather than this process's private directory. It changes who
	// claims spilled state: TrackedDevices reports only live devices (a
	// node must not claim every device in the fleet-wide store as its
	// own holdings), and device-granular exports do not harvest the
	// store (the importing monitor reads the shared tier directly when
	// the device's next transaction arrives). Rehydration on admit is
	// unchanged — Get, restore, Delete — and the tier's per-device
	// versioning fences a stale write-behind flush from resurrecting
	// overwritten state.
	SharedSpill bool
	// Float32Scoring stores the shared fused scoring index's postings —
	// and runs the per-shard accumulators — in float32, roughly halving
	// scoring memory and accumulation bandwidth for large populations.
	// Decisions then match the exact float64 engine only within
	// svm.Float32DecisionBound, so alert sequences may differ for windows
	// inside that bound of a profile's decision boundary. Leave it false
	// (the default, exact float64) when byte-identical equivalence
	// matters more than memory.
	Float32Scoring bool
	// ScoringKernels selects the fused index's kernel implementations:
	// svm.KernelsAuto (the zero value) resolves to the fastest engine the
	// CPU supports, svm.KernelsPortable forces the per-posting reference
	// loops. Every engine produces bit-identical float64 decisions and
	// identical accept masks, so this is an escape hatch and an A/B
	// instrument, not a semantics knob.
	ScoringKernels svm.KernelMode

	// StagedTTL reclaims import stagings (StageImport) whose commit never
	// arrived, measured in stream time like IdleTTL. Only import stagings
	// are swept — the source still holds the authoritative copy, and a
	// later commit for a swept id reports ErrUnknownHandoff — so a mover
	// that died mid-handoff cannot leak staged state forever. Export
	// holdings are never swept. 0 keeps stagings until commit, abort or
	// process exit.
	StagedTTL time.Duration

	// referenceScoring routes every shard's window scoring through the
	// pre-fused per-model decision path instead of the shared fused
	// index — the reference engine for the fused-equivalence suites.
	// Test seam only (unexported): always false in production.
	referenceScoring bool
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.AlertBuffer <= 0 {
		c.AlertBuffer = 256
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Monitor tracks every device seen in a transaction stream, maintaining
// one streaming Identifier per device and emitting Alerts on identity
// transitions. It is the reusable core of the profilerd daemon and the
// intrusion-monitor example. Safe for concurrent use: devices are
// lock-striped across shards, and alerts are delivered in enqueue order
// by one dedicated goroutine rather than under a shard lock, so the
// callback may block briefly without stalling ingestion (until
// AlertBuffer fills). Alerts for one device always arrive in that
// device's event order. The callback must not call back into the
// Monitor: a feeder blocked on a full alert buffer holds its shard lock,
// and a re-entrant callback could wait on that same lock.
type Monitor struct {
	set *ProfileSet
	k   int
	cfg MonitorConfig

	// ix is the monitor-wide fused scoring index (nil only under the
	// referenceScoring test seam); kept for the engine/footprint accessors.
	ix *svm.FusedIndex

	seed   maphash.Seed
	shards []*monitorShard

	// streamNow is the maximum transaction timestamp (unix nanos) seen so
	// far — the monitor-wide stream clock driving idle eviction.
	// lastSweep is the stream time of the last full eviction sweep.
	// behind counts consecutive transactions observed far behind the
	// clock; a long unbroken run means the clock was poisoned by a
	// corrupt timestamp and triggers a regression (see advanceClock).
	streamNow atomic.Int64
	lastSweep atomic.Int64
	behind    atomic.Int64

	// Two-phase handoff stagings (see handoff.go). hmu is leaf-ordered
	// after the shard locks are NOT held: handoff operations take hmu
	// first and shard locks inside, and no shard-locked path ever takes
	// hmu. stagedImports mirrors the staged-import entry count so the
	// feed path can skip the sweep lock when nothing is staged.
	hmu           sync.Mutex
	handoffs      map[string]*handoffEntry
	recentCommits map[string]int
	commitOrder   []string
	stagedImports atomic.Int64

	// pump owns alert delivery. It is a separate allocation referenced by
	// the delivery goroutine instead of the Monitor itself, so an
	// abandoned Monitor can be collected (a GC cleanup then stops the
	// goroutine) even when Close was never called.
	pump *alertPump
}

// alertPump delivers alerts in enqueue order from one goroutine and lets
// Flush/Close wait until everything enqueued has been handed to the
// callback. The in-flight count is guarded by a mutex/cond (not a
// WaitGroup) so waiting and enqueueing may overlap freely — a Flush
// racing a concurrent feeder must not trip WaitGroup's add-during-wait
// misuse detection.
type alertPump struct {
	ch      chan Alert
	cb      func(Alert)
	drained chan struct{}
	stop    sync.Once

	mu       sync.Mutex
	cond     sync.Cond
	inFlight int
}

func newAlertPump(cb func(Alert), buffer int) *alertPump {
	p := &alertPump{
		ch:      make(chan Alert, buffer),
		cb:      cb,
		drained: make(chan struct{}),
	}
	p.cond.L = &p.mu
	return p
}

// run delivers until the channel closes. Running outside the shard locks
// means a slow callback stalls delivery, not ingestion (until the buffer
// fills).
func (p *alertPump) run() {
	for a := range p.ch {
		p.cb(a)
		p.mu.Lock()
		p.inFlight--
		if p.inFlight == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
	close(p.drained)
}

func (p *alertPump) emit(a Alert) {
	p.mu.Lock()
	p.inFlight++
	p.mu.Unlock()
	p.ch <- a
}

// wait blocks until every alert enqueued so far has been delivered.
func (p *alertPump) wait() {
	p.mu.Lock()
	for p.inFlight > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// halt closes the channel exactly once; run drains what is buffered and
// exits.
func (p *alertPump) halt() {
	p.stop.Do(func() { close(p.ch) })
}

// monitorShard is one lock stripe: its devices, plus a shard-owned scorer
// whose scratch buffers every identifier in the shard shares.
type monitorShard struct {
	mu      sync.Mutex
	devices map[string]*deviceTrack
	sc      *scorer
}

type deviceTrack struct {
	id      *Identifier
	current string
	// lastSeen is the newest transaction timestamp, driving IdleTTL
	// eviction in stream time.
	lastSeen time.Time
}

// NewMonitor creates a monitor with the default configuration. alerts
// receives every transition from a dedicated delivery goroutine; Flush
// (and Close) wait for deliveries to complete.
func NewMonitor(set *ProfileSet, consecutiveK int, alerts func(Alert)) (*Monitor, error) {
	return NewMonitorWithConfig(set, consecutiveK, alerts, MonitorConfig{})
}

// NewMonitorWithConfig creates a monitor over a trained profile set with
// explicit sharding/eviction configuration. consecutiveK is the
// identification threshold.
func NewMonitorWithConfig(set *ProfileSet, consecutiveK int, alerts func(Alert), cfg MonitorConfig) (*Monitor, error) {
	if set == nil || len(set.Profiles) == 0 {
		return nil, fmt.Errorf("core: monitor needs a trained profile set")
	}
	if alerts == nil {
		return nil, fmt.Errorf("core: nil alert callback")
	}
	if consecutiveK <= 0 {
		consecutiveK = 1
	}
	cfg = cfg.withDefaults()
	m := &Monitor{
		set:    set,
		k:      consecutiveK,
		cfg:    cfg,
		seed:   maphash.MakeSeed(),
		shards: make([]*monitorShard, cfg.Shards),
		pump:   newAlertPump(alerts, cfg.AlertBuffer),
	}
	// One fused index is built for the whole monitor and shared read-only
	// across shards; each shard's scorer only adds private accumulator
	// scratch, so scoring memory stays O(population + shards·scratch)
	// instead of O(shards × population).
	users, models, err := setModels(set)
	if err != nil {
		return nil, err
	}
	var ix *svm.FusedIndex
	if !cfg.referenceScoring {
		ix = svm.NewFusedIndex(models, svm.FusedConfig{
			Float32: cfg.Float32Scoring,
			Kernels: cfg.ScoringKernels,
		})
		m.ix = ix
	}
	for i := range m.shards {
		var sc *scorer
		if cfg.referenceScoring {
			sc = newReferenceScorer(users, models)
		} else {
			sc = newSharedScorer(users, ix)
		}
		m.shards[i] = &monitorShard{devices: make(map[string]*deviceTrack), sc: sc}
	}
	go m.pump.run()
	// Safety net for monitors dropped without Close: the pump goroutine
	// references only the pump, so an unreachable Monitor is collectable
	// and this cleanup stops the goroutine. (A callback that captures the
	// Monitor keeps it reachable — such callers must Close explicitly.)
	runtime.AddCleanup(m, func(p *alertPump) { p.halt() }, m.pump)
	return m, nil
}

// ScoringEngine names the fused index's resolved kernel engine (e.g.
// "block8/float64+avx512 (cpu: ...)"), or "per-model" under the reference
// scoring seam. Daemons log it at startup so deployments can tell which
// engine a host resolved to.
func (m *Monitor) ScoringEngine() string {
	if m.ix == nil {
		return "per-model"
	}
	return m.ix.Engine()
}

// ScoringFootprint returns the shared fused index's memory accounting
// (zero under the reference scoring seam).
func (m *Monitor) ScoringFootprint() svm.IndexFootprint {
	if m.ix == nil {
		return svm.IndexFootprint{}
	}
	return m.ix.Footprint()
}

// shardIndex is the single device→shard routing rule; Feed, FeedBatch and
// Current must all agree on it or per-device ordering breaks.
func (m *Monitor) shardIndex(device string) int {
	if len(m.shards) == 1 {
		return 0
	}
	return int(maphash.String(m.seed, device) % uint64(len(m.shards)))
}

func (m *Monitor) shardFor(device string) *monitorShard {
	return m.shards[m.shardIndex(device)]
}

// Feed routes one transaction to its device's identifier, emitting alerts
// for any identity transitions the completed windows cause.
func (m *Monitor) Feed(tx weblog.Transaction) error {
	sh := m.shardFor(tx.SourceIP)
	sh.mu.Lock()
	err := m.feedLocked(sh, tx)
	sh.mu.Unlock()
	m.maybeSweep()
	return err
}

// feedBatchMaxErrs caps the per-transaction errors FeedBatch reports, so a
// fully bad batch cannot produce an unbounded error value.
const feedBatchMaxErrs = 8

// batchScratch holds FeedBatch's counting-sort partition arrays. The
// arrays scale with batch size and shard count, so a steady-state feed
// loop would otherwise pay several allocations per batch; pooling them
// keeps the batch path allocation-free once warm. Pool-local, never
// retained past the FeedBatch call that took it.
type batchScratch struct {
	shardOf []int32
	order   []int32
	starts  []int
	fill    []int
	work    []int
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grab sizes the scratch for a batch of n transactions over shards
// shards, reusing prior capacity.
func (sc *batchScratch) grab(n, shards int) (shardOf, order []int32, starts, fill []int) {
	if cap(sc.shardOf) < n {
		sc.shardOf = make([]int32, n)
		sc.order = make([]int32, n)
	}
	if cap(sc.starts) < shards+1 {
		sc.starts = make([]int, shards+1)
		sc.fill = make([]int, shards+1)
	}
	starts = sc.starts[:shards+1]
	clear(starts)
	return sc.shardOf[:n], sc.order[:n], starts, sc.fill[:shards]
}

// FeedBatch feeds a slice of transactions (non-decreasing timestamps per
// device, as with Feed), taking each shard lock once per batch instead of
// once per transaction and processing the batch's shards on a bounded
// worker pool (MonitorConfig.BatchWorkers), so windows completed within
// one batch are scored concurrently. Transactions for the same device are
// processed in slice order, and each device's alerts are enqueued in that
// device's event order regardless of the worker count — only the
// interleaving of alerts across devices depends on scheduling.
// Per-transaction errors (e.g. out-of-order timestamps) are collected —
// annotated with the offending device, capped so a fully bad batch cannot
// produce an unbounded error — and joined; the rest of the batch still
// feeds.
func (m *Monitor) FeedBatch(txs []weblog.Transaction) error {
	if len(txs) == 0 {
		return nil
	}
	// Stable counting-sort partition by shard: no copies of the
	// Transaction structs themselves, and the index arrays come from a
	// pool so a warm feed loop allocates nothing here.
	sc := batchScratchPool.Get().(*batchScratch)
	shardOf, order, starts, fill := sc.grab(len(txs), len(m.shards))
	work := sc.work[:0]
	defer func() {
		sc.work = work
		batchScratchPool.Put(sc)
	}()
	for i := range txs {
		s := m.shardIndex(txs[i].SourceIP)
		shardOf[i] = int32(s)
		starts[s+1]++
	}
	for s := 0; s < len(m.shards); s++ {
		starts[s+1] += starts[s]
	}
	copy(fill, starts[:len(m.shards)])
	for i := range txs {
		s := shardOf[i]
		order[fill[s]] = int32(i)
		fill[s]++
	}
	for si := range m.shards {
		if starts[si] < starts[si+1] {
			work = append(work, si)
		}
	}

	var errs []error
	suppressed := 0
	if workers := min(m.cfg.BatchWorkers, len(work)); workers <= 1 {
		for _, si := range work {
			es, supp := m.feedShard(si, order[starts[si]:starts[si+1]], txs)
			errs = append(errs, es...)
			suppressed += supp
		}
	} else {
		// Each busy shard is handled whole by one worker; merging the
		// per-shard error lists afterwards (in shard order) keeps the
		// reported errors deterministic for a given batch.
		perShard := make([][]error, len(m.shards))
		perSupp := make([]int, len(m.shards))
		shardCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range shardCh {
					perShard[si], perSupp[si] = m.feedShard(si, order[starts[si]:starts[si+1]], txs)
				}
			}()
		}
		for _, si := range work {
			shardCh <- si
		}
		close(shardCh)
		wg.Wait()
		for _, si := range work {
			errs = append(errs, perShard[si]...)
			suppressed += perSupp[si]
		}
	}
	m.maybeSweep()
	if len(errs) > feedBatchMaxErrs {
		suppressed += len(errs) - feedBatchMaxErrs
		errs = errs[:feedBatchMaxErrs]
	}
	if suppressed > 0 {
		errs = append(errs, fmt.Errorf("core: %d more feed errors in batch", suppressed))
	}
	return errors.Join(errs...)
}

// feedShard feeds one shard's slice of a partitioned batch under its lock,
// returning up to feedBatchMaxErrs annotated errors plus the count of
// errors beyond the cap.
func (m *Monitor) feedShard(si int, order []int32, txs []weblog.Transaction) ([]error, int) {
	sh := m.shards[si]
	var errs []error
	suppressed := 0
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, ti := range order {
		if err := m.feedLocked(sh, txs[ti]); err != nil {
			if len(errs) < feedBatchMaxErrs {
				errs = append(errs, fmt.Errorf("device %s: %w", txs[ti].SourceIP, err))
			} else {
				suppressed++
			}
		}
	}
	return errs, suppressed
}

// feedLocked runs under sh.mu.
func (m *Monitor) feedLocked(sh *monitorShard, tx weblog.Transaction) error {
	tr, ok := sh.devices[tx.SourceIP]
	if !ok {
		var err error
		if tr, err = m.admitLocked(sh, tx.SourceIP); err != nil {
			return err
		}
	}
	if m.cfg.IdleTTL > 0 || m.cfg.StagedTTL > 0 {
		// Record lastSeen in stream-clock coordinates: the clock is
		// clamped (below), so a corrupt far-future timestamp must not
		// give its device an unevictable far-future lastSeen either.
		// StagedTTL alone also runs the clock — the staged-import sweep
		// is stream-timed like eviction.
		seen := m.advanceClock(tx.Timestamp.UnixNano())
		if ts := tx.Timestamp.UnixNano(); ts < seen {
			seen = ts
		}
		if t := time.Unix(0, seen); t.After(tr.lastSeen) {
			tr.lastSeen = t
		}
	}
	events, err := tr.id.Feed(tx)
	if err != nil {
		return err
	}
	m.process(tx.SourceIP, tr, events)
	return nil
}

// admitLocked starts tracking a device not currently in the shard: if a
// spill store holds the device's state (evicted earlier, or checkpointed
// by a previous process), the device is rehydrated from it — resuming its
// window buffer, streaks and confirmed identity exactly — and the blob is
// removed from the store; otherwise a fresh identifier is created. Runs
// under sh.mu.
//
// A corrupt blob (undecodable, version-drifted, or restore-rejected) fails
// the admitting transaction once and is deleted, so the device's next
// transaction starts it fresh instead of wedging the device forever. A
// store read that merely errors (transient I/O) leaves the blob in place —
// deleting durable state over a momentary failure would be exactly the
// loss this machinery exists to prevent — and only fails the one
// transaction; the next one retries the rehydration.
func (m *Monitor) admitLocked(sh *monitorShard, device string) (*deviceTrack, error) {
	// The id arrives aliasing transient ingest memory (a wire frame's
	// payload, a log line); clone it before it becomes a long-lived map
	// key so tracking one device cannot pin a whole decoded frame.
	device = strings.Clone(device)
	if m.cfg.Spill != nil {
		blob, ok, err := m.cfg.Spill.Get(device)
		if err != nil {
			return nil, fmt.Errorf("core: reading spilled state for device %s: %w", device, err)
		}
		if ok {
			st, err := decodeDeviceState(blob)
			if err == nil && st.Device != device {
				err = fmt.Errorf("core: spilled state for device %s names device %s", device, st.Device)
			}
			var tr *deviceTrack
			if err == nil {
				tr, err = m.restoreTrackLocked(sh, st)
			}
			if err != nil {
				// Corrupt state: drop the blob so only this one transaction
				// errors.
				m.cfg.Spill.Delete(device)
				return nil, fmt.Errorf("core: rehydrating device %s: %w", device, err)
			}
			if derr := m.cfg.Spill.Delete(device); derr != nil {
				return nil, fmt.Errorf("core: rehydrated device %s but could not clear spilled state: %w", device, derr)
			}
			sh.devices[device] = tr
			return tr, nil
		}
	}
	id, err := newIdentifierWithScorer(m.set, device, m.k, sh.sc)
	if err != nil {
		return nil, err
	}
	tr := &deviceTrack{id: id}
	sh.devices[device] = tr
	return tr, nil
}

// restoreTrackLocked rebuilds a device track from portable state, clamping
// the restored last-seen stamp into the importing monitor's stream-clock
// range (a zero or far-future stamp from another process must not make the
// device instantly evictable or unevictable). Runs under the target
// shard's lock.
func (m *Monitor) restoreTrackLocked(sh *monitorShard, st DeviceState) (*deviceTrack, error) {
	id, err := restoreIdentifierWithScorer(m.set, st.Identifier, m.k, sh.sc)
	if err != nil {
		return nil, err
	}
	tr := &deviceTrack{id: id, current: st.Current, lastSeen: st.LastSeen}
	if m.cfg.IdleTTL > 0 {
		if now := m.streamNow.Load(); now != 0 {
			clock := time.Unix(0, now)
			if tr.lastSeen.IsZero() || tr.lastSeen.Before(clock.Add(-m.cfg.IdleTTL)) || tr.lastSeen.After(clock.Add(m.cfg.IdleTTL)) {
				tr.lastSeen = clock
			}
		}
	}
	return tr, nil
}

// deviceStateLocked snapshots one tracked device into portable state.
// Runs under the device's shard lock.
func deviceStateLocked(device string, tr *deviceTrack) DeviceState {
	return DeviceState{
		Version:    stateVersion,
		Device:     device,
		Current:    tr.current,
		LastSeen:   tr.lastSeen,
		Identifier: tr.id.Snapshot(),
	}
}

// clockRegressAfter is the number of consecutive far-behind transactions
// that convict the stream clock of being poisoned and snap it back.
const clockRegressAfter = 512

// advanceClock advances the monitor-wide stream clock to ts (strict
// monotonic max across concurrent feeders) and returns the resulting
// clock value. A single transaction may advance the clock by at most
// IdleTTL once initialized: without the clamp, one corrupt far-future
// timestamp would move the eviction cutoff past every device's lastSeen
// and wipe all identification state on the next sweep.
//
// The first transaction initializes the clock unclamped (there is nothing
// to clamp against), so a corrupt *first* timestamp can pin the clock in
// the far future and stall eviction. That case self-heals: when
// clockRegressAfter consecutive transactions arrive more than 2×IdleTTL
// behind the clock, the clock snaps back to the observed stream.
func (m *Monitor) advanceClock(ts int64) int64 {
	ttl := int64(m.cfg.IdleTTL)
	if ttl == 0 {
		// Eviction off but the staged-import sweep on: StagedTTL becomes
		// the clamp unit, so the clock still cannot be yanked into the
		// far future by one corrupt timestamp.
		ttl = int64(m.cfg.StagedTTL)
	}
	for {
		cur := m.streamNow.Load()
		if cur == 0 {
			if m.streamNow.CompareAndSwap(0, ts) {
				return ts
			}
			continue
		}
		switch {
		case ts+2*ttl < cur:
			// Far behind the clock: suspicion, not progress. Count toward
			// a regression instead of advancing; while any suspicion is
			// outstanding, maybeSweep holds off eviction.
			if m.behind.Add(1) < clockRegressAfter {
				return cur
			}
			if m.streamNow.CompareAndSwap(cur, ts) {
				m.behind.Store(0)
				m.lastSweep.Store(ts) // resume the sweep schedule from here
				return ts
			}
			continue
		case ts > cur+2*ttl:
			// Far ahead: clamp the advance and leave the suspicion count
			// alone — a persistently clock-skewed client must not keep
			// "confirming" a poisoned clock and defeat the recovery.
			if m.streamNow.CompareAndSwap(cur, cur+ttl) {
				return cur + ttl
			}
			continue
		case ts > cur+ttl:
			ts = cur + ttl
		}
		if ts <= cur {
			m.behind.Store(0)
			return cur
		}
		if m.streamNow.CompareAndSwap(cur, ts) {
			m.behind.Store(0)
			return ts
		}
	}
}

// maybeSweep runs a full eviction sweep across every shard — quiet ones
// included — once per IdleTTL of stream time. Driving the sweep from the
// monitor-wide stream clock (rather than per-shard feeds) means devices
// on a shard that stops receiving traffic are still evicted as long as
// traffic flows anywhere. Called without any shard lock held; the CAS
// elects a single sweeping feeder.
func (m *Monitor) maybeSweep() {
	if m.cfg.StagedTTL > 0 && m.stagedImports.Load() > 0 {
		m.sweepStagedImports()
	}
	if m.cfg.IdleTTL <= 0 {
		return
	}
	if m.behind.Load() > 0 {
		// Recent transactions arrived far behind the clock — either a
		// stale replay burst or a clock poisoned by a corrupt far-future
		// timestamp (e.g. as the first-ever transaction, where the init
		// is unclamped). Either way, evicting against a suspect clock
		// could wipe legitimately-timestamped devices; hold off until
		// the stream looks sane again (or the regression snaps the clock
		// back and resets the count).
		return
	}
	now := m.streamNow.Load()
	last := m.lastSweep.Load()
	if now-last < int64(m.cfg.IdleTTL) || !m.lastSweep.CompareAndSwap(last, now) {
		return
	}
	cutoff := time.Unix(0, now).Add(-m.cfg.IdleTTL)
	future := time.Unix(0, now).Add(m.cfg.IdleTTL)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for device, tr := range sh.devices {
			// A lastSeen more than IdleTTL ahead of the clock means the
			// clock moved backwards under the device: either its lastSeen
			// is a remnant of a corrupt timestamp, or the clock
			// legitimately regressed after a stale replay burst. Touch
			// rather than evict — live devices keep their identification
			// state, and a true remnant simply idles out one TTL later.
			if tr.lastSeen.After(future) {
				tr.lastSeen = time.Unix(0, now)
				continue
			}
			// Strictly idle longer than IdleTTL: a device seen at the
			// clock's own time must survive one maximal (clamped) clock
			// jump, or a single corrupt timestamp could still evict it.
			if tr.lastSeen.Before(cutoff) {
				m.evictLocked(sh, device, tr)
			}
		}
		sh.mu.Unlock()
	}
}

// evictLocked drops one idle device. With a spill store configured the
// device's state is serialized into the store instead — no windows are
// flushed and no alert fires, so the device resumes mid-streak when its
// next transaction rehydrates it. Without a store (or if the store
// refuses the blob) the seed behaviour applies: pending windows are
// flushed and, if an identity is still confirmed after the flush, a final
// AlertLost fires (with a zero Event.Window — there is no closing window
// for a silent departure), so continuous-authentication consumers always
// see the session end.
func (m *Monitor) evictLocked(sh *monitorShard, device string, tr *deviceTrack) {
	if m.cfg.Spill != nil && m.spillLocked(device, tr) == nil {
		delete(sh.devices, device)
		return
	}
	m.process(device, tr, tr.id.Flush())
	if tr.current != "" {
		m.emit(Alert{
			Device: device, Kind: AlertLost,
			User: tr.current, Previous: tr.current,
		})
	}
	delete(sh.devices, device)
}

// spillLocked serializes one device into the spill store. Runs under the
// device's shard lock; the caller removes the device from the shard on
// success.
func (m *Monitor) spillLocked(device string, tr *deviceTrack) error {
	blob, err := encodeDeviceState(deviceStateLocked(device, tr))
	if err != nil {
		return err
	}
	return m.cfg.Spill.Put(device, blob)
}

// Checkpoint spills every tracked device into the configured spill store
// and stops tracking it, returning the number of devices persisted — the
// graceful-shutdown path of a daemon with durable state (profilerd's
// SIGTERM handler): after a restart over the same store, each device
// rehydrates on its next transaction with its window buffer and streaks
// intact. No windows are flushed and no alerts fire. The sweep never
// aborts early: devices whose spill fails stay tracked (and live), the
// per-device errors come back joined, and the counts say exactly what
// the store holds versus what stayed in memory — so a restart, or the
// operator reading the shutdown log, knows what it has. Call Flush
// instead for lossy end-of-stream semantics. Feeding concurrently with
// Checkpoint is safe but the interleaving decides which side a racing
// device lands on.
func (m *Monitor) Checkpoint() (spilled, failed int, err error) {
	if m.cfg.Spill == nil {
		return 0, 0, fmt.Errorf("core: Checkpoint needs MonitorConfig.Spill")
	}
	var errs []error
	for _, sh := range m.shards {
		sh.mu.Lock()
		for device, tr := range sh.devices {
			if err := m.spillLocked(device, tr); err != nil {
				errs = append(errs, err)
				failed++
				continue
			}
			delete(sh.devices, device)
			spilled++
		}
		sh.mu.Unlock()
	}
	if len(errs) > 0 {
		err = fmt.Errorf("core: checkpoint spilled %d devices, %d failed and stay tracked: %w",
			spilled, failed, errors.Join(errs...))
	}
	return spilled, failed, err
}

// ExportShard serializes and stops tracking every device of shard i — one
// side of a shard handoff between processes: the bytes carry each device's
// window buffer, streaks, confirmed identity and last-seen stamp, and
// ImportShard on another Monitor resumes them exactly. Alerts already
// enqueued for the exported devices still deliver here. The empty shard
// exports successfully (zero devices).
func (m *Monitor) ExportShard(i int) ([]byte, error) {
	if i < 0 || i >= len(m.shards) {
		return nil, fmt.Errorf("core: shard %d out of range [0,%d)", i, len(m.shards))
	}
	sh := m.shards[i]
	sh.mu.Lock()
	states := make([]DeviceState, 0, len(sh.devices))
	for device, tr := range sh.devices {
		states = append(states, deviceStateLocked(device, tr))
		delete(sh.devices, device)
	}
	sh.mu.Unlock()
	// Deterministic bytes for a given shard population.
	sort.Slice(states, func(a, b int) bool { return states[a].Device < states[b].Device })
	return encodeShardState(states)
}

// ExportDevices serializes and stops tracking the named devices — the
// device-granular side of a shard handoff, used by the cluster router to
// drain exactly the devices whose placement changed on a membership
// change. The blob is the same format ExportShard produces, so ImportShard
// on another Monitor resumes the devices exactly. Devices not currently
// tracked are looked up in the spill store (they may have been idle-evicted
// there) and exported from it; devices unknown to both are skipped — the
// caller may be draining a device this monitor never saw. Duplicate names
// are exported once. It returns the number of devices exported. Alerts
// already enqueued for the exported devices still deliver here; call Sync
// to wait for them before handing the blob to the importer.
//
// Feeding an exported device again starts it fresh (or rehydrates a stale
// spill copy), forking its state from the exported blob — callers moving
// live devices must stop routing transactions here first.
func (m *Monitor) ExportDevices(devices []string) ([]byte, int, error) {
	states, errs := m.collectDeviceStates(devices)
	// Deterministic bytes for a given device population, like ExportShard.
	sort.Slice(states, func(a, b int) bool { return states[a].Device < states[b].Device })
	blob, err := encodeShardState(states)
	if err != nil {
		return nil, 0, errors.Join(append(errs, err)...)
	}
	return blob, len(states), errors.Join(errs...)
}

// ImportShard adopts the devices of an ExportShard blob, routing each to
// this monitor's own shard for it (the exporting monitor's shard layout —
// count and hash seed — does not travel; only the devices do) and resuming
// identification with this monitor's consecutive-window threshold. It
// returns the number of devices adopted. A device already tracked here is
// left untouched and reported in the joined error — two live states for
// one device means the handoff routed transactions wrong.
func (m *Monitor) ImportShard(data []byte) (int, error) {
	states, err := decodeShardState(data)
	if err != nil {
		return 0, err
	}
	imported := 0
	var errs []error
	for _, st := range states {
		sh := m.shardFor(st.Device)
		sh.mu.Lock()
		if _, exists := sh.devices[st.Device]; exists {
			sh.mu.Unlock()
			errs = append(errs, fmt.Errorf("core: device %s already tracked, import skipped", st.Device))
			continue
		}
		tr, err := m.restoreTrackLocked(sh, st)
		if err != nil {
			sh.mu.Unlock()
			errs = append(errs, err)
			continue
		}
		sh.devices[st.Device] = tr
		sh.mu.Unlock()
		imported++
	}
	return imported, errors.Join(errs...)
}

// Flush completes all devices' pending windows (end of stream), emits any
// final alerts, and waits until every alert enqueued so far has been
// delivered to the callback. Flushing concurrently with Feed/FeedBatch is
// safe, but alerts caused by feeds that complete after Flush begins may
// be delivered after it returns — call it once feeding has stopped for
// end-of-stream semantics.
func (m *Monitor) Flush() {
	for _, sh := range m.shards {
		sh.mu.Lock()
		for device, tr := range sh.devices {
			m.process(device, tr, tr.id.Flush())
		}
		sh.mu.Unlock()
	}
	m.pump.wait()
}

// Sync blocks until every alert enqueued so far has been delivered to the
// callback, without flushing any windows — the ordering barrier a shard
// handoff needs: after ExportDevices+Sync, all of the exported devices'
// alerts have left this monitor, so the importer's alerts are strictly
// later. Syncing concurrently with feeding is safe; alerts enqueued after
// Sync begins may or may not be waited for.
func (m *Monitor) Sync() {
	m.pump.wait()
}

// Close waits for outstanding alert deliveries and stops the delivery
// goroutine. Call it after feeding has stopped (typically after Flush);
// feeding a closed monitor panics. Close is idempotent. Monitors dropped
// without Close are reclaimed by a GC cleanup unless the alert callback
// itself keeps the Monitor reachable.
func (m *Monitor) Close() {
	m.pump.wait()
	m.pump.halt()
	<-m.pump.drained
}

// Devices returns the number of devices currently tracked.
func (m *Monitor) Devices() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.devices)
		sh.mu.Unlock()
	}
	return n
}

// Current returns the confirmed user on a device ("" if none).
func (m *Monitor) Current(device string) string {
	sh := m.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if tr, ok := sh.devices[device]; ok {
		return tr.current
	}
	return ""
}

// process turns identification events into alerts, enqueued for the
// delivery goroutine in event order.
func (m *Monitor) process(device string, tr *deviceTrack, events []Event) {
	for _, ev := range events {
		switch {
		case ev.Identified != "" && ev.Identified != tr.current:
			m.emit(Alert{
				Device: device, Kind: AlertIdentified,
				User: ev.Identified, Previous: tr.current, Event: ev,
			})
			tr.current = ev.Identified
		case ev.Identified == "" && tr.current != "":
			m.emit(Alert{
				Device: device, Kind: AlertLost,
				User: tr.current, Previous: tr.current, Event: ev,
			})
			tr.current = ""
		}
	}
}

func (m *Monitor) emit(a Alert) {
	m.pump.emit(a)
}
