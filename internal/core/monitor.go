package core

import (
	"fmt"
	"sync"

	"webtxprofile/internal/weblog"
)

// Alert is one identity-state change on a monitored device, the event
// stream of the paper's continuous-authentication and intrusion-monitoring
// applications (Sect. I).
type Alert struct {
	Device string
	// Kind distinguishes the transitions.
	Kind AlertKind
	// User is the newly identified user (AlertIdentified), or the user
	// whose identity was lost (AlertLost).
	User string
	// Previous is the previously confirmed user, if any.
	Previous string
	// Event carries the underlying window classification.
	Event Event
}

// AlertKind enumerates identity transitions.
type AlertKind int

// Alert kinds.
const (
	// AlertIdentified fires when a user reaches the consecutive-window
	// threshold on a device (including taking over from another user).
	AlertIdentified AlertKind = iota + 1
	// AlertLost fires when a confirmed identity stops matching the
	// observed windows.
	AlertLost
)

// String names the alert kind.
func (k AlertKind) String() string {
	switch k {
	case AlertIdentified:
		return "identified"
	case AlertLost:
		return "lost"
	default:
		return fmt.Sprintf("alert(%d)", int(k))
	}
}

// Monitor tracks every device seen in a transaction stream, maintaining
// one streaming Identifier per device and emitting Alerts on identity
// transitions. It is the reusable core of the profilerd daemon and the
// intrusion-monitor example. Safe for concurrent use.
type Monitor struct {
	set *ProfileSet
	k   int

	mu      sync.Mutex
	devices map[string]*deviceTrack
	alerts  func(Alert)
}

type deviceTrack struct {
	id      *Identifier
	current string
}

// NewMonitor creates a monitor over a trained profile set. consecutiveK
// is the identification threshold; alerts receives every transition (it
// is called with the monitor's lock held — keep it fast, hand off to a
// channel for heavy work).
func NewMonitor(set *ProfileSet, consecutiveK int, alerts func(Alert)) (*Monitor, error) {
	if set == nil || len(set.Profiles) == 0 {
		return nil, fmt.Errorf("core: monitor needs a trained profile set")
	}
	if alerts == nil {
		return nil, fmt.Errorf("core: nil alert callback")
	}
	if consecutiveK <= 0 {
		consecutiveK = 1
	}
	return &Monitor{
		set:     set,
		k:       consecutiveK,
		devices: make(map[string]*deviceTrack),
		alerts:  alerts,
	}, nil
}

// Feed routes one transaction to its device's identifier, emitting alerts
// for any identity transitions the completed windows cause.
func (m *Monitor) Feed(tx weblog.Transaction) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr, ok := m.devices[tx.SourceIP]
	if !ok {
		id, err := NewIdentifier(m.set, tx.SourceIP, m.k)
		if err != nil {
			return err
		}
		tr = &deviceTrack{id: id}
		m.devices[tx.SourceIP] = tr
	}
	events, err := tr.id.Feed(tx)
	if err != nil {
		return err
	}
	m.process(tx.SourceIP, tr, events)
	return nil
}

// Flush completes all devices' pending windows (end of stream) and emits
// any final alerts.
func (m *Monitor) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for device, tr := range m.devices {
		m.process(device, tr, tr.id.Flush())
	}
}

// Devices returns the number of devices currently tracked.
func (m *Monitor) Devices() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.devices)
}

// Current returns the confirmed user on a device ("" if none).
func (m *Monitor) Current(device string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tr, ok := m.devices[device]; ok {
		return tr.current
	}
	return ""
}

func (m *Monitor) process(device string, tr *deviceTrack, events []Event) {
	for _, ev := range events {
		switch {
		case ev.Identified != "" && ev.Identified != tr.current:
			m.alerts(Alert{
				Device: device, Kind: AlertIdentified,
				User: ev.Identified, Previous: tr.current, Event: ev,
			})
			tr.current = ev.Identified
		case ev.Identified == "" && tr.current != "":
			m.alerts(Alert{
				Device: device, Kind: AlertLost,
				User: tr.current, Previous: tr.current, Event: ev,
			})
			tr.current = ""
		}
	}
}
