package core

import (
	"fmt"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
)

// scorer owns the profile-set scoring loop: one window evaluated against
// every user's model, with the users in sorted order. It is the single
// accept-loop shared by the streaming Identifier (and through it the
// Monitor) and the batch evaluation paths, replacing the per-call
// map-iterate-and-sort that used to be duplicated across them.
//
// A scorer is not safe for concurrent use (it reuses scratch via the
// underlying svm.Scorer); the Monitor keeps one per shard, serialized by
// the shard lock.
type scorer struct {
	users []string
	sc    *svm.Scorer
}

// newScorer builds a scorer over the set's profiles.
func newScorer(set *ProfileSet) (*scorer, error) {
	if set == nil || len(set.Profiles) == 0 {
		return nil, fmt.Errorf("core: scorer needs a trained profile set")
	}
	users := set.Users()
	models := make([]*svm.Model, len(users))
	for i, u := range users {
		p := set.Profiles[u]
		if p == nil || p.Model == nil {
			return nil, fmt.Errorf("core: profile %s has no model", u)
		}
		models[i] = p.Model
	}
	return &scorer{users: users, sc: svm.NewScorer(models)}, nil
}

// acceptMask scores one window vector against every profile and returns
// the per-user accept mask, parallel to s.users. The mask is scratch owned
// by the scorer, valid until the next call.
func (s *scorer) acceptMask(x sparse.Vector) []bool {
	return s.sc.AcceptMask(x)
}
