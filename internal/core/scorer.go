package core

import (
	"fmt"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
)

// scorer owns the profile-set scoring loop: one window evaluated against
// every user's model, with the users in sorted order. It is the single
// accept-loop shared by the streaming Identifier (and through it the
// Monitor) and the batch evaluation paths, replacing the per-call
// map-iterate-and-sort that used to be duplicated across them. Scoring
// runs on the fused population index (svm.FusedIndex): the Monitor builds
// one index for the whole profile set and every shard attaches only its
// own scratch, so the postings are shared read-only across shards.
//
// A scorer is not safe for concurrent use (it reuses scratch via the
// underlying svm.Scorer); the Monitor keeps one per shard, serialized by
// the shard lock.
type scorer struct {
	users []string
	sc    *svm.Scorer

	// refModels, when non-nil, routes acceptMask through the pre-fused
	// per-model decision path (svm.Model.Accept, one window walk per
	// model) — the reference engine the fused-equivalence suites compare
	// against. Test seam only; never set in production.
	refModels []*svm.Model
	refAcc    []bool
}

// setModels extracts the set's models in sorted-user order — the model
// ordering every scorer (and the shared fused index) uses.
func setModels(set *ProfileSet) ([]string, []*svm.Model, error) {
	if set == nil || len(set.Profiles) == 0 {
		return nil, nil, fmt.Errorf("core: scorer needs a trained profile set")
	}
	users := set.Users()
	models := make([]*svm.Model, len(users))
	for i, u := range users {
		p := set.Profiles[u]
		if p == nil || p.Model == nil {
			return nil, nil, fmt.Errorf("core: profile %s has no model", u)
		}
		models[i] = p.Model
	}
	return users, models, nil
}

// newScorer builds a scorer over the set's profiles with its own private
// fused index (the standalone Identifier path; Monitor shards share one
// index via newSharedScorer).
func newScorer(set *ProfileSet) (*scorer, error) {
	users, models, err := setModels(set)
	if err != nil {
		return nil, err
	}
	return &scorer{users: users, sc: svm.NewScorer(models)}, nil
}

// newSharedScorer attaches fresh per-shard scratch to an already-built
// fused index.
func newSharedScorer(users []string, ix *svm.FusedIndex) *scorer {
	return &scorer{users: users, sc: ix.NewScorer()}
}

// newReferenceScorer builds the pre-fused per-model scorer (test seam —
// see MonitorConfig.referenceScoring).
func newReferenceScorer(users []string, models []*svm.Model) *scorer {
	return &scorer{
		users:     users,
		sc:        svm.NewScorer(models),
		refModels: models,
		refAcc:    make([]bool, len(models)),
	}
}

// acceptMask scores one window vector against every profile and returns
// the per-user accept mask, parallel to s.users. The mask is scratch owned
// by the scorer, valid until the next call.
func (s *scorer) acceptMask(x sparse.Vector) []bool {
	if s.refModels != nil {
		for i, m := range s.refModels {
			s.refAcc[i] = m.Accept(x)
		}
		return s.refAcc
	}
	return s.sc.AcceptMask(x)
}
