package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/weblog"
)

// sharedSet trains one profile set per test binary for the sharded-monitor
// tests (training is the expensive part; the monitor under test is cheap).
var (
	sharedSetOnce sync.Once
	sharedSetVal  *ProfileSet
	sharedTestDS  *weblog.Dataset
	sharedSetErr  error
)

func sharedSet(t *testing.T) (*ProfileSet, *weblog.Dataset) {
	t.Helper()
	sharedSetOnce.Do(func() {
		sharedSetVal, sharedTestDS, sharedSetErr = Train(smallDataset, testConfig())
	})
	if sharedSetErr != nil {
		t.Fatal(sharedSetErr)
	}
	return sharedSetVal, sharedTestDS
}

// deviceStream fans the chronological test transactions out over n synthetic
// devices round-robin: each device's subsequence stays time-ordered, and
// every device sees a mix of users.
func deviceStream(ds *weblog.Dataset, n, limit int) ([]weblog.Transaction, []string) {
	txs := append([]weblog.Transaction(nil), ds.Transactions...)
	sort.SliceStable(txs, func(i, j int) bool { return txs[i].Timestamp.Before(txs[j].Timestamp) })
	if len(txs) > limit {
		txs = txs[:limit]
	}
	devices := make([]string, n)
	for i := range devices {
		devices[i] = fmt.Sprintf("10.9.%d.%d", i/256, i%256)
	}
	out := make([]weblog.Transaction, len(txs))
	for i, tx := range txs {
		tx.SourceIP = devices[i%n]
		out[i] = tx
	}
	return out, devices
}

// alertSig reduces an alert to a comparable signature.
func alertSig(a Alert) string {
	return fmt.Sprintf("%s|%v|%s|%s|%s|%s",
		a.Device, a.Kind, a.User, a.Previous,
		a.Event.Window.Start.Format(time.RFC3339Nano), a.Event.Identified)
}

// referenceAlerts replays the stream through the seed design — one
// single-goroutine Identifier per device plus the transition rule — and
// returns per-device alert signatures, the ground truth the sharded
// monitor must reproduce exactly.
func referenceAlerts(t *testing.T, set *ProfileSet, txs []weblog.Transaction, k int) map[string][]string {
	t.Helper()
	type refTrack struct {
		id      *Identifier
		current string
	}
	tracks := map[string]*refTrack{}
	out := map[string][]string{}
	record := func(device string, events []Event) {
		tr := tracks[device]
		for _, ev := range events {
			switch {
			case ev.Identified != "" && ev.Identified != tr.current:
				out[device] = append(out[device], alertSig(Alert{
					Device: device, Kind: AlertIdentified,
					User: ev.Identified, Previous: tr.current, Event: ev,
				}))
				tr.current = ev.Identified
			case ev.Identified == "" && tr.current != "":
				out[device] = append(out[device], alertSig(Alert{
					Device: device, Kind: AlertLost,
					User: tr.current, Previous: tr.current, Event: ev,
				}))
				tr.current = ""
			}
		}
	}
	for _, tx := range txs {
		tr, ok := tracks[tx.SourceIP]
		if !ok {
			id, err := NewIdentifier(set, tx.SourceIP, k)
			if err != nil {
				t.Fatal(err)
			}
			tr = &refTrack{id: id}
			tracks[tx.SourceIP] = tr
		}
		events, err := tr.id.Feed(tx)
		if err != nil {
			t.Fatal(err)
		}
		record(tx.SourceIP, events)
	}
	for device, tr := range tracks {
		record(device, tr.id.Flush())
	}
	return out
}

// collectAlerts gathers per-device alert signatures from a monitor run.
type alertCollector struct {
	mu  sync.Mutex
	got map[string][]string
}

func newAlertCollector() *alertCollector { return &alertCollector{got: map[string][]string{}} }

func (c *alertCollector) callback(a Alert) {
	c.mu.Lock()
	c.got[a.Device] = append(c.got[a.Device], alertSig(a))
	c.mu.Unlock()
}

func comparePerDevice(t *testing.T, want, got map[string][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("alerting devices: got %d, want %d", len(got), len(want))
	}
	total := 0
	for device, w := range want {
		g := got[device]
		if len(g) != len(w) {
			t.Errorf("device %s: %d alerts, want %d", device, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				t.Errorf("device %s alert %d:\n got %s\nwant %s", device, i, g[i], w[i])
				break
			}
		}
		total += len(w)
	}
	if total == 0 {
		t.Fatal("reference produced no alerts — test exercises nothing")
	}
}

// TestMonitorShardedMatchesReference is the tentpole equivalence check:
// per device and in order, the sharded monitor's alerts must be identical
// to the seed single-lock design's.
func TestMonitorShardedMatchesReference(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 7, 6000)
	const k = 2
	want := referenceAlerts(t, set, txs, k)

	for _, shards := range []int{1, 4, 16} {
		col := newAlertCollector()
		mon, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, tx := range txs {
			if err := mon.Feed(tx); err != nil {
				t.Fatal(err)
			}
		}
		mon.Flush()
		mon.Close()
		comparePerDevice(t, want, col.got)
	}
}

// TestMonitorFeedBatchConcurrent feeds interleaved transactions for many
// devices from multiple goroutines via FeedBatch (run with -race) and
// checks the per-device alert sequences still match the single-goroutine
// reference. Each goroutine owns a disjoint device subset so per-device
// order is well defined.
func TestMonitorFeedBatchConcurrent(t *testing.T) {
	set, testDS := sharedSet(t)
	const devices, workers, batchSize = 12, 4, 64
	txs, devNames := deviceStream(testDS, devices, 6000)
	const k = 2
	want := referenceAlerts(t, set, txs, k)

	// Partition the stream by device owner: worker w feeds every
	// transaction of devices with index ≡ w (mod workers), in order, in
	// batches.
	owner := map[string]int{}
	for i, d := range devNames {
		owner[d] = i % workers
	}
	streams := make([][]weblog.Transaction, workers)
	for _, tx := range txs {
		w := owner[tx.SourceIP]
		streams[w] = append(streams[w], tx)
	}

	col := newAlertCollector()
	mon, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 8, AlertBuffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []weblog.Transaction) {
			defer wg.Done()
			for len(stream) > 0 {
				n := min(batchSize, len(stream))
				if err := mon.FeedBatch(stream[:n]); err != nil {
					t.Errorf("FeedBatch: %v", err)
					return
				}
				stream = stream[n:]
			}
		}(streams[w])
	}
	wg.Wait()
	if got := mon.Devices(); got != devices {
		t.Errorf("devices = %d, want %d", got, devices)
	}
	mon.Flush()
	mon.Close()
	comparePerDevice(t, want, col.got)
}

// TestMonitorFeedBatchWorkersMatchSequential is the parallel-batch
// equivalence check: the per-device alert sequences produced with the
// FeedBatch worker pool (several pool sizes, run under -race) must be
// byte-identical to the BatchWorkers=1 sequential scorer's, which in turn
// must match the single-goroutine reference.
func TestMonitorFeedBatchWorkersMatchSequential(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 9, 6000)
	const k, batchSize = 2, 128
	want := referenceAlerts(t, set, txs, k)

	run := func(workers int) map[string][]string {
		col := newAlertCollector()
		mon, err := NewMonitorWithConfig(set, k, col.callback,
			MonitorConfig{Shards: 8, BatchWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for rest := txs; len(rest) > 0; {
			n := min(batchSize, len(rest))
			if err := mon.FeedBatch(rest[:n]); err != nil {
				t.Fatalf("FeedBatch(workers=%d): %v", workers, err)
			}
			rest = rest[n:]
		}
		mon.Flush()
		mon.Close()
		return col.got
	}

	sequential := run(1)
	comparePerDevice(t, want, sequential)
	for _, workers := range []int{2, 4, 8} {
		comparePerDevice(t, sequential, run(workers))
	}
}

// TestMonitorFeedBatchErrors checks that a bad transaction inside a batch
// surfaces as an error without poisoning the rest of the batch.
func TestMonitorFeedBatchErrors(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 3, 50)
	mon, err := NewMonitor(set, 2, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if err := mon.FeedBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	bad := txs[10]
	bad.Timestamp = bad.Timestamp.Add(-24 * time.Hour) // out of order for its device
	batch := append(append([]weblog.Transaction(nil), txs...), bad)
	if err := mon.FeedBatch(batch); err == nil {
		t.Error("out-of-order transaction in batch not reported")
	}
	if got := mon.Devices(); got != 3 {
		t.Errorf("devices = %d, want 3 (batch processing aborted?)", got)
	}
}

// TestMonitorIdleEviction checks IdleTTL-based eviction in stream time:
// devices that go quiet are flushed and dropped, bounding tracked-device
// memory, while active devices stay. Several shards ensure the sweep
// reaches quiet shards: the idle device keeps getting evicted no matter
// which shard it hashed to, driven purely by the other device's traffic.
func TestMonitorIdleEviction(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 1, 40)
	const ttl = 10 * time.Minute
	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 4, IdleTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// Device A transacts briefly, then only device B keeps going.
	a := txs[0]
	a.SourceIP = "10.0.0.1"
	if err := mon.Feed(a); err != nil {
		t.Fatal(err)
	}
	if mon.Devices() != 1 {
		t.Fatalf("devices = %d after first feed", mon.Devices())
	}
	// A corrupt far-future timestamp must not fast-forward the stream
	// clock and mass-evict: the clock advances by at most TTL per
	// transaction.
	corrupt := txs[0]
	corrupt.SourceIP = "10.0.0.3"
	corrupt.Timestamp = a.Timestamp.Add(100 * 365 * 24 * time.Hour)
	if err := mon.Feed(corrupt); err != nil {
		t.Fatal(err)
	}
	if got := mon.Devices(); got != 2 {
		t.Errorf("devices = %d after corrupt timestamp, want 2 (mass eviction?)", got)
	}
	b := txs[0]
	b.SourceIP = "10.0.0.2"
	// Advance stream time past 2×TTL so the amortized sweep must fire.
	for i := 0; i < 5; i++ {
		b.Timestamp = a.Timestamp.Add(time.Duration(i+2) * ttl)
		if err := mon.Feed(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := mon.Devices(); got != 1 {
		t.Errorf("devices = %d, want 1 (idle devices not evicted)", got)
	}
	if mon.Current("10.0.0.1") != "" {
		t.Error("evicted device still has a confirmed user")
	}
	mon.Flush()
}

// TestMonitorEvictionEmitsLost checks the continuous-authentication
// contract: evicting a device whose identity is confirmed fires a final
// AlertLost even when no partial window is pending.
func TestMonitorEvictionEmitsLost(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 1, 10)
	const ttl = 10 * time.Minute
	col := newAlertCollector()
	mon, err := NewMonitorWithConfig(set, 2, col.callback, MonitorConfig{Shards: 2, IdleTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	a := txs[0]
	a.SourceIP = "10.0.0.1"
	if err := mon.Feed(a); err != nil {
		t.Fatal(err)
	}
	// White-box: confirm an identity on the tracked device, then let
	// another device's traffic age it out.
	sh := mon.shardFor("10.0.0.1")
	sh.mu.Lock()
	sh.devices["10.0.0.1"].current = set.Users()[0]
	sh.mu.Unlock()
	b := txs[0]
	b.SourceIP = "10.0.0.2"
	for i := 0; i < 4; i++ {
		b.Timestamp = a.Timestamp.Add(time.Duration(i+1) * ttl)
		if err := mon.Feed(b); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Current("10.0.0.1") != "" {
		t.Fatal("device not evicted")
	}
	mon.Flush()
	col.mu.Lock()
	defer col.mu.Unlock()
	// The loss may surface through the flushed pending window or, with
	// nothing pending, through the synthetic eviction alert — either way
	// the consumer must see the session end.
	found := false
	prefix := fmt.Sprintf("10.0.0.1|%v|%s|%s|", AlertLost, set.Users()[0], set.Users()[0])
	for _, sig := range col.got["10.0.0.1"] {
		if strings.HasPrefix(sig, prefix) {
			found = true
		}
	}
	if !found {
		t.Errorf("no eviction AlertLost for 10.0.0.1; alerts: %v", col.got["10.0.0.1"])
	}
}

// TestMonitorClockPoisonRecovery: a corrupt far-future *first* timestamp
// initializes the stream clock unclamped, which would otherwise pin it
// and disable eviction forever. After clockRegressAfter consecutive
// far-behind transactions the clock must snap back, evict the
// future-stamped remnant device, and resume normal idle eviction.
func TestMonitorClockPoisonRecovery(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 1, 10)
	const ttl = 2 * time.Minute
	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2, IdleTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	t0 := txs[0].Timestamp
	// First-ever transaction carries a corrupt year-2100-style timestamp.
	corrupt := txs[0]
	corrupt.SourceIP = "10.0.0.66"
	corrupt.Timestamp = t0.Add(75 * 365 * 24 * time.Hour)
	if err := mon.Feed(corrupt); err != nil {
		t.Fatal(err)
	}
	// A legitimate device appears, then another keeps transacting with
	// real timestamps; every one is far behind the poisoned clock.
	a := txs[0]
	a.SourceIP = "10.0.0.1"
	a.Timestamp = t0
	if err := mon.Feed(a); err != nil {
		t.Fatal(err)
	}
	b := txs[0]
	b.SourceIP = "10.0.0.2"
	// Enough stream time after the snap-back for the remnant to be
	// touched down to the clock on one sweep and then idle out on a
	// later one.
	for i := 0; i < clockRegressAfter+500; i++ {
		b.Timestamp = t0.Add(time.Duration(i+1) * time.Second)
		if err := mon.Feed(b); err != nil {
			t.Fatal(err)
		}
	}
	// The clock has snapped back and swept: the future-stamped remnant
	// and the long-idle device are gone, the live device remains.
	if got := mon.Devices(); got != 1 {
		t.Errorf("devices = %d, want 1 (clock poison not recovered)", got)
	}
	if mon.Current("10.0.0.66") != "" || mon.Current("10.0.0.1") != "" {
		t.Error("evicted devices still present")
	}
	mon.Flush()
}

// TestMonitorPoisonedFirstBatchNoMassEviction: a corrupt far-future
// timestamp as the first-ever transaction of a FeedBatch must not evict
// the legitimately-timestamped devices arriving right behind it in the
// same batch — the sweep holds off while recent input disagrees with the
// clock.
func TestMonitorPoisonedFirstBatchNoMassEviction(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 1, 10)
	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 4, IdleTTL: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	t0 := txs[0].Timestamp
	batch := make([]weblog.Transaction, 0, 7)
	corrupt := txs[0]
	corrupt.SourceIP = "10.0.0.66"
	corrupt.Timestamp = t0.Add(75 * 365 * 24 * time.Hour)
	batch = append(batch, corrupt)
	for i := 0; i < 6; i++ {
		tx := txs[0]
		tx.SourceIP = fmt.Sprintf("10.0.0.%d", i+1)
		tx.Timestamp = t0
		batch = append(batch, tx)
	}
	if err := mon.FeedBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := mon.Devices(); got != 7 {
		t.Errorf("devices = %d, want 7 (legit devices mass-evicted by poisoned clock)", got)
	}
	mon.Flush()
}

// TestMonitorCloseIdempotent ensures Close can be called repeatedly and
// after Flush.
func TestMonitorCloseIdempotent(t *testing.T) {
	set, _ := sharedSet(t)
	mon, err := NewMonitor(set, 2, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	mon.Flush()
	mon.Close()
	mon.Close()
}
