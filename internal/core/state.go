package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// stateVersion guards the serialized identifier-state format: the
// per-device blobs a StateStore holds and the shard exports ExportShard
// produces. Bump it when DeviceState (or anything it embeds) changes
// incompatibly — decode rejects mismatched versions, like persist.go's
// bundle loader.
const stateVersion = 1

// DeviceState is the portable identification state of one monitored
// device: the streaming identifier's snapshot plus the monitor-level
// identity tracking (the currently confirmed user and the stream-time
// last-seen stamp driving idle eviction). It is everything a Monitor needs
// to resume the device exactly where another Monitor — or a previous
// process — left off.
type DeviceState struct {
	Version int    `json:"version"`
	Device  string `json:"device"`
	// Current is the confirmed user at snapshot time ("" if none).
	Current string `json:"current,omitempty"`
	// LastSeen is the device's stream-clock last-activity stamp; the
	// importing monitor clamps it into its own clock's sane range.
	LastSeen   time.Time       `json:"last_seen"`
	Identifier IdentifierState `json:"identifier"`
}

// encodeDeviceState serializes one device blob (plain JSON; the disk store
// adds gzip).
func encodeDeviceState(st DeviceState) ([]byte, error) {
	st.Version = stateVersion
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("core: encoding state for device %s: %w", st.Device, err)
	}
	return b, nil
}

// decodeDeviceState parses and version-checks one device blob.
func decodeDeviceState(blob []byte) (DeviceState, error) {
	var st DeviceState
	if err := json.Unmarshal(blob, &st); err != nil {
		return DeviceState{}, fmt.Errorf("core: decoding device state: %w", err)
	}
	if st.Version != stateVersion {
		return DeviceState{}, fmt.Errorf("core: unsupported device state version %d (want %d)", st.Version, stateVersion)
	}
	if st.Device == "" {
		return DeviceState{}, fmt.Errorf("core: device state missing device id")
	}
	return st, nil
}

// StateStore persists evicted devices' identification state so an idle
// eviction — or a process restart — no longer severs the device's window
// buffer and consecutive-accept streak. The Monitor spills a device's
// state on eviction (MonitorConfig.Spill) and transparently rehydrates it
// when the device's next transaction arrives.
//
// Blobs are opaque versioned bytes produced by the Monitor; a store only
// keys them by device. Implementations must be safe for concurrent use —
// different monitor shards spill and rehydrate concurrently.
type StateStore interface {
	// Put stores the blob for a device, replacing any previous one.
	Put(device string, blob []byte) error
	// Get returns the stored blob, with ok=false when the device has no
	// spilled state (which is not an error).
	Get(device string) (blob []byte, ok bool, err error)
	// Delete removes the device's blob; deleting an absent device is not
	// an error.
	Delete(device string) error
	// Devices lists the devices with stored state, sorted.
	Devices() ([]string, error)
}

// MemStateStore is an in-process StateStore: spilled devices survive
// eviction (bounding live identifier memory to the active population)
// but not the process. Safe for concurrent use.
type MemStateStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStateStore returns an empty in-memory state store.
func NewMemStateStore() *MemStateStore {
	return &MemStateStore{blobs: make(map[string][]byte)}
}

// Put stores a copy of the blob.
func (s *MemStateStore) Put(device string, blob []byte) error {
	s.mu.Lock()
	s.blobs[device] = append([]byte(nil), blob...)
	s.mu.Unlock()
	return nil
}

// Get returns the stored blob for device.
func (s *MemStateStore) Get(device string) ([]byte, bool, error) {
	s.mu.RLock()
	blob, ok := s.blobs[device]
	s.mu.RUnlock()
	return blob, ok, nil
}

// Delete removes the device's blob.
func (s *MemStateStore) Delete(device string) error {
	s.mu.Lock()
	delete(s.blobs, device)
	s.mu.Unlock()
	return nil
}

// Devices lists devices with stored state, sorted.
func (s *MemStateStore) Devices() ([]string, error) {
	s.mu.RLock()
	out := make([]string, 0, len(s.blobs))
	for d := range s.blobs {
		out = append(out, d)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// Len returns the number of stored device blobs.
func (s *MemStateStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// diskStateSuffix names the per-device state files a DiskStateStore
// writes: <url.PathEscape(device)>.state.gz in the store directory.
const diskStateSuffix = ".state.gz"

// DiskStateStore is a StateStore keeping one gzip-compressed blob file per
// device in a directory, so spilled identification state survives process
// restarts — the profilerd -state-dir backing. Writes are atomic (temp
// file + rename, like ProfileSet.SaveFile) and an in-memory presence index
// built at open time makes the Get miss — every first-seen device of a
// monitor with spilling enabled — a map lookup instead of a stat.
//
// Safe for concurrent use within one process; the directory must not be
// shared by multiple live processes.
type DiskStateStore struct {
	dir string

	// gzPool recycles gzip writers across Puts: each deflate state is
	// ~800 KB, which a fleet-wide Checkpoint would otherwise reallocate
	// once per device.
	gzPool sync.Pool

	mu      sync.Mutex
	present map[string]struct{}
}

// NewDiskStateStore opens (creating if needed) a directory-backed state
// store and indexes the device states already present from earlier
// processes.
func NewDiskStateStore(dir string) (*DiskStateStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating state dir %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: reading state dir %s: %w", dir, err)
	}
	s := &DiskStateStore{dir: dir, present: make(map[string]struct{})}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if !strings.HasSuffix(name, diskStateSuffix) {
			// A ".state-*" entry without the suffix is a temp file from a
			// Put that crashed before its rename: it holds no committed
			// state, so collect it instead of accumulating one per crash.
			// (The suffix check above runs first: a device named
			// ".state-x" escapes to ".state-x.state.gz" and is kept.)
			if strings.HasPrefix(name, ".state-") {
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return nil, fmt.Errorf("core: sweeping orphaned temp file %s: %w", name, err)
				}
			}
			continue
		}
		device, err := url.PathUnescape(strings.TrimSuffix(name, diskStateSuffix))
		if err != nil {
			return nil, fmt.Errorf("core: state dir %s has unparseable entry %s: %w", dir, name, err)
		}
		s.present[device] = struct{}{}
	}
	return s, nil
}

// Dir returns the backing directory.
func (s *DiskStateStore) Dir() string { return s.dir }

func (s *DiskStateStore) path(device string) string {
	return filepath.Join(s.dir, url.PathEscape(device)+diskStateSuffix)
}

// Put writes the blob as a gzip file, atomically and crash-durably: the
// temp file is fsynced before the rename and the directory after it, so
// a power cut leaves either the old committed state or the new one —
// never a torn file under the device's name.
func (s *DiskStateStore) Put(device string, blob []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".state-*")
	if err != nil {
		return fmt.Errorf("core: spilling device %s: %w", device, err)
	}
	defer os.Remove(tmp.Name())
	gz, _ := s.gzPool.Get().(*gzip.Writer)
	if gz == nil {
		gz = gzip.NewWriter(tmp)
	} else {
		gz.Reset(tmp)
	}
	if _, err = gz.Write(blob); err == nil {
		err = gz.Close()
	} else {
		gz.Close()
	}
	s.gzPool.Put(gz)
	if err == nil {
		err = tmp.Sync()
	}
	if err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		return fmt.Errorf("core: spilling device %s: %w", device, err)
	}
	if err := os.Rename(tmp.Name(), s.path(device)); err != nil {
		return fmt.Errorf("core: spilling device %s: %w", device, err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("core: spilling device %s: %w", device, err)
	}
	s.mu.Lock()
	s.present[device] = struct{}{}
	s.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get reads and decompresses the device's blob. Devices absent from the
// presence index return ok=false without touching the filesystem.
func (s *DiskStateStore) Get(device string) ([]byte, bool, error) {
	s.mu.Lock()
	_, ok := s.present[device]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	f, err := os.Open(s.path(device))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("core: reading state for device %s: %w", device, err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, false, fmt.Errorf("core: state for device %s not gzip: %w", device, err)
	}
	defer gz.Close()
	blob, err := io.ReadAll(gz)
	if err != nil {
		return nil, false, fmt.Errorf("core: reading state for device %s: %w", device, err)
	}
	return blob, true, nil
}

// Delete removes the device's state file.
func (s *DiskStateStore) Delete(device string) error {
	if err := os.Remove(s.path(device)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("core: deleting state for device %s: %w", device, err)
	}
	s.mu.Lock()
	delete(s.present, device)
	s.mu.Unlock()
	return nil
}

// Devices lists devices with stored state, sorted.
func (s *DiskStateStore) Devices() ([]string, error) {
	s.mu.Lock()
	out := make([]string, 0, len(s.present))
	for d := range s.present {
		out = append(out, d)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out, nil
}

// shardStateJSON is the serialized form of one exported monitor shard —
// the handoff unit for moving a shard's devices between processes.
type shardStateJSON struct {
	Version int           `json:"version"`
	Devices []DeviceState `json:"devices"`
}

// encodeShardState renders a shard export as gzip-compressed JSON.
func encodeShardState(devices []DeviceState) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := json.NewEncoder(gz).Encode(shardStateJSON{Version: stateVersion, Devices: devices}); err != nil {
		gz.Close()
		return nil, fmt.Errorf("core: encoding shard export: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("core: encoding shard export: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeShardState parses and version-checks a shard export.
func decodeShardState(data []byte) ([]DeviceState, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("core: shard export not gzip: %w", err)
	}
	defer gz.Close()
	var s shardStateJSON
	if err := json.NewDecoder(gz).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding shard export: %w", err)
	}
	if s.Version != stateVersion {
		return nil, fmt.Errorf("core: unsupported shard export version %d (want %d)", s.Version, stateVersion)
	}
	for i := range s.Devices {
		if s.Devices[i].Device == "" {
			return nil, fmt.Errorf("core: shard export entry %d missing device id", i)
		}
	}
	return s.Devices, nil
}
