package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadFileVersionMismatch checks that a bundle with an unsupported
// format version is rejected and the error names both the version and the
// offending file.
func TestLoadFileVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := json.NewEncoder(gz).Encode(map[string]any{"version": 99}); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "future.gz")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("version-99 bundle accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the file: %v", err)
	}
	if !strings.Contains(err.Error(), "version 99") {
		t.Errorf("error does not name the version: %v", err)
	}
}

// TestLoadFileTruncatedGzip checks that a bundle cut off mid-stream — the
// classic crash-during-copy artifact — fails with the path in the error
// instead of a bare gzip error.
func TestLoadFileTruncatedGzip(t *testing.T) {
	set, _ := sharedSet(t)
	path := filepath.Join(t.TempDir(), "bundle.gz")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("truncated bundle accepted")
	} else if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the file: %v", err)
	}
}

// TestSaveFileErrorNamesPath checks the write side: saving into a missing
// directory reports the destination path.
func TestSaveFileErrorNamesPath(t *testing.T) {
	set, _ := sharedSet(t)
	path := filepath.Join(t.TempDir(), "no-such-dir", "bundle.gz")
	err := set.SaveFile(path)
	if err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the destination: %v", err)
	}
}
