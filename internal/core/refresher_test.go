package core

import (
	"testing"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
)

// driftDataset generates a corpus where the first kept user switches half
// their service pool at week 3 of 6.
func driftDataset(t *testing.T) (*ProfileSet, *synth.Generator, string) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 5
	cfg.SmallUsers = 0
	cfg.Devices = 4
	cfg.Weeks = 6
	cfg.Services = 150
	cfg.Archetypes = 5
	cfg.ConfusableUsers = 0
	cfg.ServicesPerUserMin = 10
	cfg.ServicesPerUserMax = 18
	cfg.WeeklyTxMedian = 900
	cfg.WeeklyTxSigma = 0.3
	cfg.DriftWeek = 3
	cfg.DriftUsers = 1
	g, err := synth.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	// Train on the pre-drift epoch only.
	cut := cfg.Start.Add(3 * 7 * 24 * 3600e9)
	preDrift, _ := ds.SplitAtTime(cut)
	set, err := BuildProfiles(preDrift, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return set, g, "user_1"
}

func TestRefresherRecoversFromDrift(t *testing.T) {
	set, g, drifted := driftDataset(t)
	ds := g.Generate()
	cut := g.Taxonomy() // placeholder to silence unused; replaced below
	_ = cut

	// Post-drift windows of the drifted user.
	cfgStart := synth.DefaultConfig().Start
	_ = cfgStart
	after := ds.UserTransactions(drifted)
	// Keep only post-drift transactions (week >= 3).
	split := 0
	driftTime := after[0].Timestamp
	for i := range after {
		if after[i].Timestamp.Sub(after[0].Timestamp) >= 3*7*24*3600e9 {
			split = i
			driftTime = after[i].Timestamp
			break
		}
	}
	_ = driftTime
	post := after[split:]
	// Deployment workflow: absorb the newly observed services into the
	// vocabulary first (stale models keep their decisions — their support
	// vectors reference unchanged columns), then window with the extended
	// vocabulary so the refresh sees the new behaviour.
	if added := set.ExtendVocabulary(post); added == 0 {
		t.Fatal("drift introduced no new vocabulary")
	}
	windows, err := features.Compose(set.Vocabulary, set.Window, post, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) < 60 {
		t.Fatalf("only %d post-drift windows", len(windows))
	}
	half := len(windows) / 2
	adapt, holdout := windows[:half], windows[half:]

	// The stale (pre-drift) model degrades on post-drift behaviour.
	stale := set.Profiles[drifted].Model
	staleAcc := stale.AcceptanceRatio(features.Vectors(holdout))

	r, err := NewRefresher(set, RefresherConfig{MinWindows: 30, Train: svm.TrainConfig{CacheMB: 16}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range adapt {
		if err := r.Observe(drifted, w); err != nil {
			t.Fatal(err)
		}
	}
	if !r.CanRefresh(drifted) {
		t.Fatalf("buffer %d not refreshable", r.Buffered(drifted))
	}
	if err := r.Refresh(drifted); err != nil {
		t.Fatal(err)
	}
	if r.Refreshes(drifted) != 1 {
		t.Errorf("refreshes = %d", r.Refreshes(drifted))
	}
	fresh := set.Profiles[drifted].Model
	if fresh == stale {
		t.Fatal("model not replaced")
	}
	freshAcc := fresh.AcceptanceRatio(features.Vectors(holdout))
	if freshAcc <= staleAcc+0.05 {
		t.Errorf("refresh did not help: stale %.3f -> fresh %.3f", staleAcc, freshAcc)
	}
	if freshAcc < 0.6 {
		t.Errorf("refreshed acceptance %.3f still low", freshAcc)
	}
}

func TestRefresherValidation(t *testing.T) {
	set, _, _ := driftDataset(t)
	if _, err := NewRefresher(nil, RefresherConfig{}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := NewRefresher(set, RefresherConfig{MinWindows: 100, MaxWindows: 10}); err == nil {
		t.Error("max < min accepted")
	}
	r, err := NewRefresher(set, RefresherConfig{MinWindows: 5, MaxWindows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Observe("nobody", features.Window{}); err == nil {
		t.Error("unknown user accepted")
	}
	if err := r.Refresh("nobody"); err == nil {
		t.Error("refresh of unknown user accepted")
	}
	if err := r.Refresh(set.Users()[0]); err == nil {
		t.Error("refresh below MinWindows accepted")
	}
	// Buffer bounding.
	u := set.Users()[0]
	for i := 0; i < 25; i++ {
		if err := r.Observe(u, features.Window{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Buffered(u); got != 10 {
		t.Errorf("buffer = %d, want capped at 10", got)
	}
}

func TestRefreshAll(t *testing.T) {
	set, g, drifted := driftDataset(t)
	ds := g.Generate()
	r, err := NewRefresher(set, RefresherConfig{MinWindows: 20, Train: svm.TrainConfig{CacheMB: 16}})
	if err != nil {
		t.Fatal(err)
	}
	windows, err := features.Compose(set.Vocabulary, set.Window, ds.UserTransactions(drifted), drifted)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range windows[:30] {
		if err := r.Observe(drifted, w); err != nil {
			t.Fatal(err)
		}
	}
	done, err := r.RefreshAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0] != drifted {
		t.Errorf("refreshed = %v", done)
	}
}

func TestExtendVocabulary(t *testing.T) {
	set, g, _ := driftDataset(t)
	before := set.Vocabulary.Size()
	// The full dataset (including drift-pool services unseen pre-drift)
	// should add columns.
	ds := g.Generate()
	added := set.ExtendVocabulary(ds.Transactions)
	if added <= 0 {
		t.Fatalf("added = %d, want positive (drift introduces new services)", added)
	}
	if set.Vocabulary.Size() != before+added {
		t.Errorf("size %d != %d + %d", set.Vocabulary.Size(), before, added)
	}
	// Models still validate and decide.
	for _, u := range set.Users() {
		if err := set.Profiles[u].Model.Validate(); err != nil {
			t.Errorf("model %s invalid after extend: %v", u, err)
		}
	}
}
