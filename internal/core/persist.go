package core

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
)

// bundleVersion guards the on-disk format.
const bundleVersion = 1

// bundleJSON is the serialized ProfileSet.
type bundleJSON struct {
	Version    int                  `json:"version"`
	Vocabulary *features.Vocabulary `json:"vocabulary"`
	WindowD    time.Duration        `json:"window_duration_ns"`
	WindowS    time.Duration        `json:"window_shift_ns"`
	Algorithm  string               `json:"algorithm"`
	Profiles   map[string]*Profile  `json:"profiles"`
}

// Save writes the profile set as gzip-compressed JSON.
func (ps *ProfileSet) Save(w io.Writer) error {
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	if err := enc.Encode(bundleJSON{
		Version:    bundleVersion,
		Vocabulary: ps.Vocabulary,
		WindowD:    ps.Window.Duration,
		WindowS:    ps.Window.Shift,
		Algorithm:  ps.Algorithm.String(),
		Profiles:   ps.Profiles,
	}); err != nil {
		gz.Close()
		return fmt.Errorf("core: encoding bundle: %w", err)
	}
	return gz.Close()
}

// Load restores a profile set written by Save, validating every model.
func Load(r io.Reader) (*ProfileSet, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: bundle not gzip: %w", err)
	}
	defer gz.Close()
	var b bundleJSON
	if err := json.NewDecoder(gz).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decoding bundle: %w", err)
	}
	if b.Version != bundleVersion {
		return nil, fmt.Errorf("core: unsupported bundle version %d", b.Version)
	}
	if b.Vocabulary == nil || len(b.Profiles) == 0 {
		return nil, fmt.Errorf("core: bundle missing vocabulary or profiles")
	}
	algo, err := svm.ParseAlgorithm(b.Algorithm)
	if err != nil {
		return nil, err
	}
	set := &ProfileSet{
		Vocabulary: b.Vocabulary,
		Window:     features.WindowConfig{Duration: b.WindowD, Shift: b.WindowS},
		Algorithm:  algo,
		Profiles:   b.Profiles,
	}
	if err := set.Window.Validate(); err != nil {
		return nil, err
	}
	for u, p := range set.Profiles {
		if p == nil || p.Model == nil {
			return nil, fmt.Errorf("core: profile %s has no model", u)
		}
		if err := p.Model.Validate(); err != nil {
			return nil, fmt.Errorf("core: profile %s: %w", u, err)
		}
	}
	return set, nil
}

// SaveFile writes the bundle to path (atomically via a temp file in the
// same directory, so the final rename never crosses filesystems). Errors
// are annotated with the destination path.
func (ps *ProfileSet) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".webtxprofile-bundle-*")
	if err != nil {
		return fmt.Errorf("core: saving bundle %s: %w", path, err)
	}
	defer os.Remove(tmp.Name())
	if err := ps.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("core: saving bundle %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving bundle %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving bundle %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a bundle from path. Errors are annotated with the path,
// so a daemon loading several bundles reports which one was truncated or
// version-mismatched.
func LoadFile(path string) (*ProfileSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err // os.PathError already names the path
	}
	defer f.Close()
	set, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("core: loading bundle %s: %w", path, err)
	}
	return set, nil
}
