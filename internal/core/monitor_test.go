package core

import (
	"testing"
	"time"

	"webtxprofile/internal/synth"
)

func TestMonitorIdentifiesAndAlerts(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Users = 6
	cfg.SmallUsers = 0
	cfg.Devices = 5
	cfg.Weeks = 3
	cfg.Services = 150
	cfg.Archetypes = 6
	cfg.ConfusableUsers = 0
	cfg.ServicesPerUserMin = 10
	cfg.ServicesPerUserMax = 18
	cfg.WeeklyTxMedian = 1200
	cfg.WeeklyTxSigma = 0.4
	g, err := synth.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set, _, err := Train(g.Generate(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	users := set.Users()
	owner, intruder := users[0], users[len(users)-1]

	var alerts []Alert
	mon, err := NewMonitor(set, 3, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// Owner works for 15 minutes, then the intruder takes over.
	start := cfg.Start.Add(time.Duration(cfg.Weeks) * 7 * 24 * time.Hour)
	scenario, err := g.GenerateDeviceScenario("10.42.0.1", start, []synth.Segment{
		{UserID: owner, Offset: 0, Length: 15 * time.Minute},
		{UserID: intruder, Offset: 15 * time.Minute, Length: 10 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range scenario.Transactions {
		if err := mon.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	mon.Flush()

	if mon.Devices() != 1 {
		t.Errorf("devices = %d", mon.Devices())
	}
	// Expected story: owner identified, then either an identity loss or a
	// direct takeover identification of the intruder.
	if len(alerts) < 2 {
		t.Fatalf("alerts = %+v, want at least identify + transition", alerts)
	}
	if alerts[0].Kind != AlertIdentified || alerts[0].User != owner {
		t.Errorf("first alert = %+v, want owner identified", alerts[0])
	}
	sawTransition := false
	for _, a := range alerts[1:] {
		if a.Kind == AlertLost && a.User == owner {
			sawTransition = true
		}
		if a.Kind == AlertIdentified && a.User == intruder {
			sawTransition = true
		}
	}
	if !sawTransition {
		t.Errorf("no owner-loss or intruder-identification alert in %+v", alerts)
	}
	if got := mon.Current("10.42.0.1"); got == owner {
		t.Errorf("owner still confirmed after takeover (current %q)", got)
	}
	if mon.Current("203.0.113.9") != "" {
		t.Error("unknown device has a current user")
	}
}

func TestMonitorValidation(t *testing.T) {
	set, _, err := Train(smallDataset, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitor(nil, 3, func(Alert) {}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := NewMonitor(set, 3, nil); err == nil {
		t.Error("nil callback accepted")
	}
	mon, err := NewMonitor(set, 0, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	// Out-of-order transactions on one device surface the identifier
	// error.
	tx := smallDataset.Transactions[100]
	tx.SourceIP = "10.42.0.2"
	if err := mon.Feed(tx); err != nil {
		t.Fatal(err)
	}
	earlier := tx
	earlier.Timestamp = tx.Timestamp.Add(-time.Hour)
	if err := mon.Feed(earlier); err == nil {
		t.Error("out-of-order feed accepted")
	}
}

func TestAlertKindString(t *testing.T) {
	if AlertIdentified.String() != "identified" || AlertLost.String() != "lost" {
		t.Error("alert kind names wrong")
	}
	if AlertKind(9).String() != "alert(9)" {
		t.Error("unknown alert kind name wrong")
	}
}
