package core

import (
	"testing"
	"time"
)

// TestMonitorExportDevicesMatchesReference moves an arbitrary subset of
// live devices between two monitors mid-stream via the device-granular
// export and checks the combined per-device alert sequences stay
// byte-identical to a single uninterrupted monitor — the primitive the
// cluster router's drain is built on.
func TestMonitorExportDevicesMatchesReference(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, devices := deviceStream(testDS, 6, 6000)
	const k = 2
	want := referenceAlerts(t, set, txs, k)

	col := newAlertCollector()
	src, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	moved := map[string]bool{devices[1]: true, devices[4]: true}
	cut := len(txs) / 2
	for _, tx := range txs[:cut] {
		if err := src.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	blob, n, err := src.ExportDevices([]string{devices[1], devices[4], devices[1], "", "10.255.0.9"})
	if err != nil {
		t.Fatalf("ExportDevices: %v", err)
	}
	if n != 2 {
		t.Fatalf("exported %d devices, want 2 (dups, empties and unknowns skipped)", n)
	}
	src.Sync()
	if got, err := dst.ImportShard(blob); err != nil || got != 2 {
		t.Fatalf("ImportShard = %d, %v", got, err)
	}
	for _, tx := range txs[cut:] {
		m := src
		if moved[tx.SourceIP] {
			m = dst
		}
		if err := m.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	src.Flush()
	dst.Flush()
	src.Close()
	dst.Close()
	comparePerDevice(t, want, col.got)
}

// TestMonitorExportDevicesFromSpill checks that exporting a device that
// was idle-evicted into the spill store pulls its state out of the store,
// and that the blob resumes it exactly on the importer.
func TestMonitorExportDevicesFromSpill(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 1, 40)
	store := NewMemStateStore()
	const ttl = 10 * time.Minute
	src, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2, IdleTTL: ttl, Spill: store})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	a := txs[0]
	a.SourceIP = "10.0.0.1"
	if err := src.Feed(a); err != nil {
		t.Fatal(err)
	}
	// Another device's traffic ages 10.0.0.1 out into the store.
	b := txs[0]
	b.SourceIP = "10.0.0.2"
	for i := 0; i < 5; i++ {
		b.Timestamp = a.Timestamp.Add(time.Duration(i+2) * ttl)
		if err := src.Feed(b); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 1 {
		t.Fatalf("spilled devices = %d, want 1", store.Len())
	}
	blob, n, err := src.ExportDevices([]string{"10.0.0.1"})
	if err != nil || n != 1 {
		t.Fatalf("ExportDevices = %d, %v", n, err)
	}
	if store.Len() != 0 {
		t.Error("export left the spilled blob behind")
	}
	dst, err := NewMonitor(set, 2, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if got, err := dst.ImportShard(blob); err != nil || got != 1 {
		t.Fatalf("ImportShard = %d, %v", got, err)
	}
	if dst.Devices() != 1 {
		t.Errorf("importer tracks %d devices, want 1", dst.Devices())
	}
}

// TestMonitorExportDevicesEmpty: exporting nothing (or only unknowns)
// yields a valid empty blob that imports as zero devices.
func TestMonitorExportDevicesEmpty(t *testing.T) {
	set, _ := sharedSet(t)
	m, err := NewMonitor(set, 2, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	blob, n, err := m.ExportDevices([]string{"10.1.2.3"})
	if err != nil || n != 0 {
		t.Fatalf("ExportDevices = %d, %v", n, err)
	}
	if got, err := m.ImportShard(blob); err != nil || got != 0 {
		t.Fatalf("ImportShard of empty export = %d, %v", got, err)
	}
}
