package core

import (
	"fmt"
	"sort"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
)

// Refresher keeps profiles current as behaviour drifts — the operational
// counterpart of the paper's observation that user novelty never quite
// reaches zero (Fig. 1) and its future-work plan to train on short recent
// epochs (Sect. VII). Confirmed windows (windows the deployment attributes
// to the user, e.g. after successful identification) accumulate in a
// bounded per-user buffer; Refresh retrains that user's model on the most
// recent windows, preserving the model's kernel and parameter.
//
// Refresher is not safe for concurrent use; callers serialize access.
type Refresher struct {
	set *ProfileSet
	// MinWindows is the smallest buffer that allows a refresh.
	minWindows int
	// maxWindows bounds each buffer; older windows fall off.
	maxWindows int
	train      svm.TrainConfig
	buffers    map[string][]features.Window
	refreshes  map[string]int
}

// RefresherConfig bounds the refresh buffers.
type RefresherConfig struct {
	// MinWindows gates Refresh (default 100).
	MinWindows int
	// MaxWindows bounds the per-user buffer (default 2000).
	MaxWindows int
	// Train carries SMO knobs for retraining (Kernel/param come from the
	// existing profile).
	Train svm.TrainConfig
}

// NewRefresher wraps a trained profile set.
func NewRefresher(set *ProfileSet, cfg RefresherConfig) (*Refresher, error) {
	if set == nil || len(set.Profiles) == 0 {
		return nil, fmt.Errorf("core: refresher needs a trained profile set")
	}
	if cfg.MinWindows <= 0 {
		cfg.MinWindows = 100
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = 2000
	}
	if cfg.MaxWindows < cfg.MinWindows {
		return nil, fmt.Errorf("core: MaxWindows %d below MinWindows %d", cfg.MaxWindows, cfg.MinWindows)
	}
	return &Refresher{
		set:        set,
		minWindows: cfg.MinWindows,
		maxWindows: cfg.MaxWindows,
		train:      cfg.Train,
		buffers:    make(map[string][]features.Window, len(set.Profiles)),
		refreshes:  make(map[string]int, len(set.Profiles)),
	}, nil
}

// Observe buffers one confirmed window for the user. Windows should
// arrive roughly chronologically; the buffer keeps the newest MaxWindows.
func (r *Refresher) Observe(user string, w features.Window) error {
	if _, ok := r.set.Profiles[user]; !ok {
		return fmt.Errorf("core: no profile for user %q", user)
	}
	buf := append(r.buffers[user], w)
	if len(buf) > r.maxWindows {
		buf = buf[len(buf)-r.maxWindows:]
	}
	r.buffers[user] = buf
	return nil
}

// Buffered returns the user's current buffer length.
func (r *Refresher) Buffered(user string) int { return len(r.buffers[user]) }

// Refreshes returns how many times the user's model was retrained.
func (r *Refresher) Refreshes(user string) int { return r.refreshes[user] }

// CanRefresh reports whether the user's buffer has reached MinWindows.
func (r *Refresher) CanRefresh(user string) bool {
	return len(r.buffers[user]) >= r.minWindows
}

// Refresh retrains the user's model on the buffered windows, keeping the
// profile's algorithm, kernel and ν/C parameter. The buffer is retained
// (it keeps sliding), so repeated refreshes track ongoing drift.
func (r *Refresher) Refresh(user string) error {
	p, ok := r.set.Profiles[user]
	if !ok {
		return fmt.Errorf("core: no profile for user %q", user)
	}
	if !r.CanRefresh(user) {
		return fmt.Errorf("core: user %q has %d buffered windows, need %d",
			user, len(r.buffers[user]), r.minWindows)
	}
	tc := r.train
	tc.Kernel = p.Model.Kernel
	m, err := svm.Train(r.set.Algorithm, features.Vectors(r.buffers[user]), p.Model.Param, tc)
	if err != nil {
		return fmt.Errorf("core: refreshing %s: %w", user, err)
	}
	p.Model = m
	p.TrainWindows = len(r.buffers[user])
	r.refreshes[user]++
	return nil
}

// RefreshAll retrains every user whose buffer is ready, returning the
// refreshed user ids in sorted order.
func (r *Refresher) RefreshAll() ([]string, error) {
	var done []string
	for _, u := range r.set.Users() {
		if !r.CanRefresh(u) {
			continue
		}
		if err := r.Refresh(u); err != nil {
			return done, err
		}
		done = append(done, u)
	}
	sort.Strings(done)
	return done, nil
}
