package core

import (
	"errors"
	"testing"
	"time"
)

// TestHandoffCommitMatchesReference drives the full two-phase move —
// stage on the source, stage on the destination, commit both sides — and
// checks the combined per-device alert sequences stay byte-identical to
// one uninterrupted monitor. Staged devices must be invisible on the
// importer until the commit, and both commits must be idempotent.
func TestHandoffCommitMatchesReference(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, devices := deviceStream(testDS, 6, 6000)
	const k = 2
	want := referenceAlerts(t, set, txs, k)

	col := newAlertCollector()
	src, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	moved := map[string]bool{devices[0]: true, devices[3]: true}
	cut := len(txs) / 2
	for _, tx := range txs[:cut] {
		if err := src.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}

	const id = "router-1/7"
	blob, n, err := src.ExportStaged(id, []string{devices[0], devices[3]})
	if err != nil || n != 2 {
		t.Fatalf("ExportStaged = %d, %v", n, err)
	}
	// Retrying the staged export must return the identical held blob.
	blob2, n2, err := src.ExportStaged(id, []string{devices[0], devices[3]})
	if err != nil || n2 != 2 || string(blob2) != string(blob) {
		t.Fatalf("retried ExportStaged = %d bytes, %d, %v; want the same blob", len(blob2), n2, err)
	}
	src.Sync()

	if n, err := dst.StageImport(id, blob); err != nil || n != 2 {
		t.Fatalf("StageImport = %d, %v", n, err)
	}
	if dst.Devices() != 0 {
		t.Fatalf("staged devices leaked into the live shards: %d tracked", dst.Devices())
	}
	if n, err := dst.StageImport(id, blob); err != nil || n != 2 {
		t.Fatalf("retried StageImport = %d, %v", n, err)
	}
	if n, err := dst.CommitHandoff(id); err != nil || n != 2 {
		t.Fatalf("importer CommitHandoff = %d, %v", n, err)
	}
	if dst.Devices() != 2 {
		t.Fatalf("importer tracks %d devices after commit, want 2", dst.Devices())
	}
	if n, err := dst.CommitHandoff(id); err != nil || n != 2 {
		t.Fatalf("retried CommitHandoff = %d, %v (commit must be idempotent)", n, err)
	}
	if n, err := src.CommitHandoff(id); err != nil || n != 2 {
		t.Fatalf("exporter CommitHandoff = %d, %v", n, err)
	}
	if src.PendingHandoffs() != 0 || dst.PendingHandoffs() != 0 {
		t.Fatalf("pending handoffs after commit: src %d, dst %d", src.PendingHandoffs(), dst.PendingHandoffs())
	}

	for _, tx := range txs[cut:] {
		m := src
		if moved[tx.SourceIP] {
			m = dst
		}
		if err := m.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	src.Flush()
	dst.Flush()
	src.Close()
	dst.Close()
	comparePerDevice(t, want, col.got)
}

// TestHandoffAbortReadopts cancels a staged export and checks the
// devices resume on the source with nothing lost: the alert stream stays
// byte-identical to a monitor that never staged anything, which is
// exactly the automatic-recovery contract the router's abort path relies
// on.
func TestHandoffAbortReadopts(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, devices := deviceStream(testDS, 4, 4000)
	const k = 2
	want := referenceAlerts(t, set, txs, k)

	col := newAlertCollector()
	src, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(txs) / 2
	for _, tx := range txs[:cut] {
		if err := src.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	const id = "router-1/8"
	if _, n, err := src.ExportStaged(id, devices[:2]); err != nil || n != 2 {
		t.Fatalf("ExportStaged = %d, %v", n, err)
	}
	if n, err := src.AbortHandoff(id); err != nil || n != 2 {
		t.Fatalf("AbortHandoff = %d, %v", n, err)
	}
	// Aborting again is a no-op, not an error.
	if n, err := src.AbortHandoff(id); err != nil || n != 0 {
		t.Fatalf("retried AbortHandoff = %d, %v", n, err)
	}
	for _, tx := range txs[cut:] {
		if err := src.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	src.Flush()
	src.Close()
	comparePerDevice(t, want, col.got)
}

// TestHandoffLifecycleErrors pins the error and idempotency contract the
// router's retry logic depends on: unknown commits are definitive,
// committed aborts are refused, a staged import is dropped by abort.
func TestHandoffLifecycleErrors(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, devices := deviceStream(testDS, 2, 200)
	m, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, tx := range txs {
		if err := m.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := m.CommitHandoff("never-seen"); !errors.Is(err, ErrUnknownHandoff) {
		t.Fatalf("commit of unknown id = %v, want ErrUnknownHandoff", err)
	}
	if _, _, err := m.ExportStaged("", devices); err == nil {
		t.Fatal("empty handoff id accepted")
	}

	const id = "r/1"
	blob, _, err := m.ExportStaged(id, devices[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StageImport(id, blob); err == nil {
		t.Fatal("staging an import under an export-holding id accepted")
	}
	if _, err := m.CommitHandoff(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AbortHandoff(id); !errors.Is(err, ErrHandoffCommitted) {
		t.Fatalf("abort after commit = %v, want ErrHandoffCommitted", err)
	}
	if _, _, err := m.ExportStaged(id, devices[:1]); !errors.Is(err, ErrHandoffCommitted) {
		t.Fatalf("re-export of committed id = %v, want ErrHandoffCommitted", err)
	}

	// A staged import dropped by abort leaves no trace: the commit that
	// never came now reports the definitive unknown-handoff error.
	other, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.StageImport("r/2", blob); err != nil {
		t.Fatal(err)
	}
	if n, err := other.AbortHandoff("r/2"); err != nil || n != 2 && n != 1 {
		t.Fatalf("abort of staged import = %d, %v", n, err)
	}
	if other.Devices() != 0 {
		t.Fatalf("aborted staged import leaked %d devices", other.Devices())
	}
	if _, err := other.CommitHandoff("r/2"); !errors.Is(err, ErrUnknownHandoff) {
		t.Fatalf("commit of aborted staging = %v, want ErrUnknownHandoff", err)
	}

	// Committing a staged import whose device is already live must refuse
	// the whole staging and keep it intact for an abort.
	if _, err := other.StageImport("r/3", blob); err != nil {
		t.Fatal(err)
	}
	for _, tx := range txs {
		if err := other.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := other.CommitHandoff("r/3"); err == nil {
		t.Fatal("commit adopted a device that is already live")
	}
	if other.PendingHandoffs() != 1 {
		t.Fatalf("refused commit dropped the staging: %d pending", other.PendingHandoffs())
	}
	if n, err := other.AbortHandoff("r/3"); err != nil || n == 0 {
		t.Fatalf("abort after refused commit = %d, %v", n, err)
	}
}

// TestHandoffStagedTTLSweep ages an abandoned import staging out via
// stream time and checks the sweep tells a late committer the truth
// (ErrUnknownHandoff), while export holdings survive indefinitely.
func TestHandoffStagedTTLSweep(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, devices := deviceStream(testDS, 2, 400)
	const ttl = time.Minute
	donor, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close()
	for _, tx := range txs[:len(txs)/2] {
		if err := donor.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	blob, _, err := donor.ExportStaged("d/1", devices[:1])
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2, StagedTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.StageImport("i/1", blob); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ExportStaged("e/1", nil); err != nil {
		t.Fatal(err)
	}
	// Stream traffic far past the TTL: the clamp advances the clock by at
	// most one StagedTTL per transaction, so walk it there step by step.
	base := txs[0].Timestamp
	tick := txs[0]
	for i := 0; i < 8; i++ {
		tick.Timestamp = base.Add(time.Duration(i+1) * ttl)
		if err := m.Feed(tick); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.CommitHandoff("i/1"); !errors.Is(err, ErrUnknownHandoff) {
		t.Fatalf("commit of swept staging = %v, want ErrUnknownHandoff", err)
	}
	if m.PendingHandoffs() != 1 {
		t.Fatalf("pending = %d, want 1 (export holding must never be swept)", m.PendingHandoffs())
	}
	if _, err := m.CommitHandoff("e/1"); err != nil {
		t.Fatalf("export holding swept or lost: %v", err)
	}
}

// TestTrackedDevices checks the enumeration a stateless placement mover
// relies on: live and spilled devices are both listed, staged handoff
// state is not.
func TestTrackedDevices(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 1, 40)
	store := NewMemStateStore()
	const ttl = 10 * time.Minute
	m, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2, IdleTTL: ttl, Spill: store})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	a := txs[0]
	a.SourceIP = "10.0.0.1"
	if err := m.Feed(a); err != nil {
		t.Fatal(err)
	}
	b := txs[0]
	b.SourceIP = "10.0.0.2"
	for i := 0; i < 5; i++ {
		b.Timestamp = a.Timestamp.Add(time.Duration(i+2) * ttl)
		if err := m.Feed(b); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != 1 {
		t.Fatalf("spilled devices = %d, want 1 (test setup)", store.Len())
	}
	names, err := m.TrackedDevices()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "10.0.0.1" || names[1] != "10.0.0.2" {
		t.Fatalf("TrackedDevices = %v, want the live and the spilled device", names)
	}

	if _, _, err := m.ExportStaged("t/1", []string{"10.0.0.2"}); err != nil {
		t.Fatal(err)
	}
	names, err = m.TrackedDevices()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "10.0.0.1" {
		t.Fatalf("TrackedDevices with a staged export = %v, want only the live device", names)
	}
}
