package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"webtxprofile/internal/weblog"
)

// stateBlobSeeds are the checked-in seeds for FuzzDeviceStateBlob: real
// encoded state (a device mid-stream on the shared trained set, both the
// per-device blob and a whole shard export), hand-damaged variants, and
// plain garbage. Kept in code so the testdata corpus is reproducible
// (see TestRegenerateStateFuzzCorpus).
func stateBlobSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	set, testDS := sharedSetForFuzz(tb)
	txs, _ := deviceStream(testDS, 1, 60)
	mon, err := NewMonitor(set, 2, func(Alert) {})
	if err != nil {
		tb.Fatal(err)
	}
	defer mon.Close()
	for _, tx := range txs {
		if err := mon.Feed(tx); err != nil {
			tb.Fatal(err)
		}
	}
	device := txs[0].SourceIP
	sh := mon.shardFor(device)
	sh.mu.Lock()
	blob, err := encodeDeviceState(deviceStateLocked(device, sh.devices[device]))
	sh.mu.Unlock()
	if err != nil {
		tb.Fatal(err)
	}
	export, _, err := mon.ExportDevices([]string{device})
	if err != nil {
		tb.Fatal(err)
	}
	truncated := append([]byte(nil), blob[:len(blob)/2]...)
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/3] ^= 0xff
	return [][]byte{
		blob,
		export,
		truncated,
		flipped,
		[]byte(`{}`),
		[]byte(`{"version":99,"device":"x"}`),
		[]byte(`{"version":1,"device":"x","identifier":{"host":"y"}}`),
		[]byte(`{"version":1}`),
		[]byte("not json at all"),
		{0x1f, 0x8b, 0x08, 0x00}, // gzip magic, truncated body
		{},
	}
}

// sharedSetForFuzz adapts sharedSet's *testing.T-shaped helper to the
// testing.TB both fuzz setup (*testing.F) and tests use.
func sharedSetForFuzz(tb testing.TB) (*ProfileSet, *weblog.Dataset) {
	tb.Helper()
	sharedSetOnce.Do(func() {
		sharedSetVal, sharedTestDS, sharedSetErr = Train(smallDataset, testConfig())
	})
	if sharedSetErr != nil {
		tb.Fatal(sharedSetErr)
	}
	return sharedSetVal, sharedTestDS
}

// FuzzDeviceStateBlob: the two state decoders — the per-device StateStore
// blob (decodeDeviceState, the admit/rehydrate path) and the shard-export
// envelope (decodeShardState, the ImportShard path) — must error on
// malformed input, never panic; and any blob that decodes must also
// survive RestoreIdentifier's structural validation (error or identifier,
// never a panic) against a real trained profile set.
func FuzzDeviceStateBlob(f *testing.F) {
	for _, seed := range stateBlobSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if st, err := decodeDeviceState(data); err == nil {
			set, _ := sharedSetForFuzz(t)
			id, rerr := RestoreIdentifier(set, st.Identifier)
			if rerr == nil {
				// A restored identifier must be immediately usable.
				id.Flush()
			}
		}
		if states, err := decodeShardState(data); err == nil {
			set, _ := sharedSetForFuzz(t)
			for _, st := range states {
				if id, rerr := RestoreIdentifier(set, st.Identifier); rerr == nil {
					id.Flush()
				}
			}
		}
	})
}

// TestRegenerateStateFuzzCorpus rewrites testdata/fuzz/FuzzDeviceStateBlob
// from stateBlobSeeds when WTP_REGEN_CORPUS=1; otherwise it verifies the
// checked-in corpus exists.
//
// Note the regenerated real-state seeds are not byte-stable across runs
// (timestamps and training are deterministic, but JSON map order is not);
// regeneration refreshes coverage, it does not produce a canonical file.
func TestRegenerateStateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDeviceStateBlob")
	seeds := stateBlobSeeds(t)
	if os.Getenv("WTP_REGEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range old {
			os.Remove(f)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing (run with WTP_REGEN_CORPUS=1 to create): %v", err)
	}
	if len(entries) < len(seeds) {
		t.Errorf("corpus has %d entries, want >= %d", len(entries), len(seeds))
	}
}
