package core

import (
	"errors"
	"fmt"
	"sort"
)

// Two-phase shard handoff. The device-granular ExportDevices/ImportShard
// pair moves state at most once: if the importer applied the blob but its
// acknowledgement was lost, the mover cannot distinguish that from a
// never-applied import, and re-adopting at the source strands a stale
// copy on the destination. The staged API closes that window by making
// both sides hold the state revocably under a caller-chosen handoff id:
//
//   - ExportStaged serializes and stops tracking the devices like
//     ExportDevices, but keeps the decoded states in a holding area. The
//     source can re-adopt them (AbortHandoff) or release them
//     (CommitHandoff) later; until then the devices are gone from the
//     live shards but not from this process.
//   - StageImport decodes and validates a blob but keeps the devices
//     invisible — they are not tracked, not fed, not exported — until
//     CommitHandoff adopts them atomically or AbortHandoff drops them.
//
// Every operation is idempotent per id, so a caller whose reply was lost
// simply retries: a re-staged id returns the held blob or count again, a
// re-committed id reports the recorded count, and aborting an id this
// monitor never saw (or already aborted) is a no-op. Committing is
// remembered (bounded, see recentCommitCap) precisely so a retried
// commit after a lost reply is distinguishable from a commit of state
// that was lost with a process restart — the latter reports
// ErrUnknownHandoff, the definitive signal that the staged copy is gone
// and the mover must fall back to the source copy.

// ErrUnknownHandoff reports a commit or stage lookup for an id this
// monitor holds no state for — typically because the process restarted
// (staged state is in-memory only) or a StagedTTL sweep reclaimed an
// abandoned staging. For a commit this is definitive: the staged copy no
// longer exists, so the caller can safely fall back to the source copy.
var ErrUnknownHandoff = errors.New("core: unknown handoff id")

// ErrHandoffCommitted reports an abort of an already-committed handoff.
// The devices live on the committed side now; re-adopting them at the
// source would fork their state.
var ErrHandoffCommitted = errors.New("core: handoff already committed")

// recentCommitCap bounds the committed-id memory backing commit
// idempotency. 512 ids is orders of magnitude more than the handoffs a
// router keeps in flight; the memory exists to absorb one lost reply's
// retry horizon, not to be a durable log.
const recentCommitCap = 512

// handoffEntry is one staged handoff's held state. Export holdings keep
// the encoded blob too, so a retried ExportStaged returns identical
// bytes.
type handoffEntry struct {
	states []DeviceState
	blob   []byte
	// stagedImport distinguishes an importer-side staging (droppable: the
	// authoritative copy is still at the source) from an exporter-side
	// holding (never swept: it is the authoritative copy).
	stagedImport bool
	// stagedAt is the stream time the staging was observed, for the
	// StagedTTL sweep. Zero until traffic establishes a stream clock.
	stagedAt int64
}

// ExportStaged serializes and stops tracking the named devices like
// ExportDevices, but holds their states under id so the caller can
// AbortHandoff (re-adopt them here) or CommitHandoff (release them) once
// the fate of the move is known. Calling it again with the same id
// returns the identical held blob without touching the live shards, so a
// mover whose reply was lost retries safely. Exporting under a recently
// committed id is an error.
func (m *Monitor) ExportStaged(id string, devices []string) ([]byte, int, error) {
	if id == "" {
		return nil, 0, fmt.Errorf("core: empty handoff id")
	}
	m.hmu.Lock()
	defer m.hmu.Unlock()
	if _, done := m.recentCommits[id]; done {
		return nil, 0, fmt.Errorf("core: exporting handoff %q: %w", id, ErrHandoffCommitted)
	}
	if e, ok := m.handoffs[id]; ok {
		if e.stagedImport {
			return nil, 0, fmt.Errorf("core: handoff %q is a staged import here", id)
		}
		return e.blob, len(e.states), nil
	}
	states, errs := m.collectDeviceStates(devices)
	sort.Slice(states, func(a, b int) bool { return states[a].Device < states[b].Device })
	blob, err := encodeShardState(states)
	if err != nil {
		return nil, 0, errors.Join(append(errs, err)...)
	}
	m.putHandoffLocked(id, &handoffEntry{states: states, blob: blob, stagedAt: m.streamNow.Load()})
	return blob, len(states), errors.Join(errs...)
}

// StageImport decodes and validates a shard-state blob and holds its
// devices invisibly under id: they are not tracked or fed until
// CommitHandoff adopts them, and AbortHandoff (or a StagedTTL sweep, or
// a process restart) drops them without touching live state. Re-staging
// an id already held returns its count again; the blob is trusted to be
// the same — handoff ids are single-use per move. It returns the number
// of devices staged.
func (m *Monitor) StageImport(id string, data []byte) (int, error) {
	if id == "" {
		return 0, fmt.Errorf("core: empty handoff id")
	}
	m.hmu.Lock()
	defer m.hmu.Unlock()
	if _, done := m.recentCommits[id]; done {
		return 0, fmt.Errorf("core: staging handoff %q: %w", id, ErrHandoffCommitted)
	}
	if e, ok := m.handoffs[id]; ok {
		if !e.stagedImport {
			return 0, fmt.Errorf("core: handoff %q is an export holding here", id)
		}
		return len(e.states), nil
	}
	states, err := decodeShardState(data)
	if err != nil {
		return 0, err
	}
	m.putHandoffLocked(id, &handoffEntry{states: states, stagedImport: true, stagedAt: m.streamNow.Load()})
	return len(states), nil
}

// CommitHandoff finishes a handoff: a staged import is adopted into the
// live shards atomically (all devices or none), an export holding is
// released. The committed id is remembered (bounded), so a retried
// commit after a lost reply reports the same count instead of
// ErrUnknownHandoff. A failed adoption — a device already tracked, or a
// state this monitor's profiles cannot restore — leaves the staging
// intact and the handoff uncommitted, so the caller can abort and fall
// back to the source copy.
func (m *Monitor) CommitHandoff(id string) (int, error) {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	if n, done := m.recentCommits[id]; done {
		return n, nil
	}
	e, ok := m.handoffs[id]
	if !ok {
		return 0, fmt.Errorf("core: committing handoff %q: %w", id, ErrUnknownHandoff)
	}
	n := len(e.states)
	if e.stagedImport {
		if err := m.adoptStatesAtomic(e.states); err != nil {
			return 0, fmt.Errorf("core: committing handoff %q: %w", id, err)
		}
	}
	m.dropHandoffLocked(id)
	m.recentCommits[id] = n
	m.commitOrder = append(m.commitOrder, id)
	if len(m.commitOrder) > recentCommitCap {
		delete(m.recentCommits, m.commitOrder[0])
		m.commitOrder = m.commitOrder[1:]
	}
	return n, nil
}

// AbortHandoff cancels a handoff: a staged import is dropped (the
// authoritative copy is still at the source), an export holding is
// re-adopted into the live shards atomically — the automatic recovery
// path when the other side refused or vanished. Aborting an id this
// monitor holds nothing for is an idempotent no-op reporting 0; aborting
// a committed id is ErrHandoffCommitted, because the devices live on
// the other side now.
func (m *Monitor) AbortHandoff(id string) (int, error) {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	if _, done := m.recentCommits[id]; done {
		return 0, fmt.Errorf("core: aborting handoff %q: %w", id, ErrHandoffCommitted)
	}
	e, ok := m.handoffs[id]
	if !ok {
		return 0, nil
	}
	if !e.stagedImport {
		if err := m.adoptStatesAtomic(e.states); err != nil {
			return 0, fmt.Errorf("core: aborting handoff %q: %w", id, err)
		}
	}
	n := len(e.states)
	m.dropHandoffLocked(id)
	return n, nil
}

// PendingHandoffs reports how many handoffs are currently staged here
// (import stagings plus export holdings) — an observability and test
// hook for the staging lifecycle.
func (m *Monitor) PendingHandoffs() int {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	return len(m.handoffs)
}

func (m *Monitor) putHandoffLocked(id string, e *handoffEntry) {
	if m.handoffs == nil {
		m.handoffs = make(map[string]*handoffEntry)
		m.recentCommits = make(map[string]int)
	}
	m.handoffs[id] = e
	if e.stagedImport {
		m.stagedImports.Add(1)
	}
}

func (m *Monitor) dropHandoffLocked(id string) {
	if e, ok := m.handoffs[id]; ok && e.stagedImport {
		m.stagedImports.Add(-1)
	}
	delete(m.handoffs, id)
}

// sweepStagedImports reclaims import stagings older than StagedTTL in
// stream time — abandoned by a mover that died between stage and
// commit. Only import stagings are swept: dropping one loses nothing
// (the source still holds the authoritative copy, and a later commit
// for the id reports ErrUnknownHandoff, telling the mover exactly
// that). Export holdings are never swept — they ARE the authoritative
// copy and are bounded by the mover's in-flight handoffs, not by time.
// A staging observed before any traffic established the stream clock is
// stamped at the first swept sight and ages from there.
func (m *Monitor) sweepStagedImports() {
	now := m.streamNow.Load()
	if now == 0 {
		return
	}
	m.hmu.Lock()
	defer m.hmu.Unlock()
	for id, e := range m.handoffs {
		if !e.stagedImport {
			continue
		}
		if e.stagedAt == 0 {
			e.stagedAt = now
			continue
		}
		if now-e.stagedAt > int64(m.cfg.StagedTTL) {
			m.dropHandoffLocked(id)
		}
	}
}

// adoptStatesAtomic restores every state and inserts all of them under
// their shard locks, or none: shards are locked in index order (the
// consistent order makes the multi-lock deadlock-free against
// single-shard feeders), every device is checked untracked and every
// state restored while the locks are held, and only then do the inserts
// happen. An error — a device already live here, or a state naming an
// unknown profile — leaves the monitor untouched.
func (m *Monitor) adoptStatesAtomic(states []DeviceState) error {
	if len(states) == 0 {
		return nil
	}
	byShard := make(map[*monitorShard][]DeviceState)
	shardIdx := make(map[*monitorShard]int)
	for i, sh := range m.shards {
		shardIdx[sh] = i
	}
	for _, st := range states {
		sh := m.shardFor(st.Device)
		byShard[sh] = append(byShard[sh], st)
	}
	locked := make([]*monitorShard, 0, len(byShard))
	for sh := range byShard {
		locked = append(locked, sh)
	}
	sort.Slice(locked, func(a, b int) bool { return shardIdx[locked[a]] < shardIdx[locked[b]] })
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
	}
	for _, sh := range locked {
		sh.mu.Lock()
	}
	type pending struct {
		sh     *monitorShard
		device string
		tr     *deviceTrack
	}
	adopts := make([]pending, 0, len(states))
	for _, sh := range locked {
		for _, st := range byShard[sh] {
			if _, exists := sh.devices[st.Device]; exists {
				unlock()
				return fmt.Errorf("core: device %s already tracked, adoption refused", st.Device)
			}
			tr, err := m.restoreTrackLocked(sh, st)
			if err != nil {
				unlock()
				return err
			}
			adopts = append(adopts, pending{sh, st.Device, tr})
		}
	}
	for _, p := range adopts {
		p.sh.devices[p.device] = p.tr
	}
	unlock()
	return nil
}

// collectDeviceStates serializes and stops tracking the named devices —
// the shared harvesting pass behind ExportDevices and ExportStaged.
// Untracked devices are looked up in the spill store; devices unknown to
// both (and duplicates, and empty names) are skipped. Per-device spill
// failures are reported in the returned slice without stopping the
// harvest.
func (m *Monitor) collectDeviceStates(devices []string) ([]DeviceState, []error) {
	states := make([]DeviceState, 0, len(devices))
	seen := make(map[string]struct{}, len(devices))
	var errs []error
	for _, device := range devices {
		if _, dup := seen[device]; dup || device == "" {
			continue
		}
		seen[device] = struct{}{}
		sh := m.shardFor(device)
		sh.mu.Lock()
		if tr, ok := sh.devices[device]; ok {
			states = append(states, deviceStateLocked(device, tr))
			delete(sh.devices, device)
			sh.mu.Unlock()
			continue
		}
		sh.mu.Unlock()
		// A shared spill tier is not harvested: the state is already
		// where the device's next owner will read it from.
		if m.cfg.Spill == nil || m.cfg.SharedSpill {
			continue
		}
		blob, ok, err := m.cfg.Spill.Get(device)
		if err != nil {
			errs = append(errs, fmt.Errorf("core: exporting spilled device %s: %w", device, err))
			continue
		}
		if !ok {
			continue
		}
		st, err := decodeDeviceState(blob)
		if err == nil && st.Device != device {
			err = fmt.Errorf("core: spilled state for device %s names device %s", device, st.Device)
		}
		if err != nil {
			// Corrupt spill copy: leave it for the admit path's
			// drop-and-restart handling rather than move garbage.
			errs = append(errs, err)
			continue
		}
		if err := m.cfg.Spill.Delete(device); err != nil {
			errs = append(errs, fmt.Errorf("core: exported spilled device %s but could not clear it: %w", device, err))
		}
		states = append(states, st)
	}
	return states, errs
}

// TrackedDevices returns the names of every device this monitor holds
// state for — live in the shards or idle-spilled into the store — sorted
// and deduplicated. Handoff stagings are excluded: staged devices are
// invisible until committed. This is what lets a placement mover with no
// memory of past routing ask a node "who do you hold?" and compute
// drains from the answer.
func (m *Monitor) TrackedDevices() ([]string, error) {
	var names []string
	for _, sh := range m.shards {
		sh.mu.Lock()
		for device := range sh.devices {
			names = append(names, device)
		}
		sh.mu.Unlock()
	}
	// A shared spill tier holds the whole fleet's devices; claiming them
	// all as this monitor's holdings would make every node report every
	// device. Only the private-store spill set belongs to this monitor.
	if m.cfg.Spill != nil && !m.cfg.SharedSpill {
		spilled, err := m.cfg.Spill.Devices()
		if err != nil {
			return nil, fmt.Errorf("core: listing spilled devices: %w", err)
		}
		names = append(names, spilled...)
	}
	sort.Strings(names)
	// A device can race an eviction and appear both live and spilled.
	out := names[:0]
	for i, name := range names {
		if i > 0 && name == names[i-1] {
			continue
		}
		out = append(out, name)
	}
	return out, nil
}
