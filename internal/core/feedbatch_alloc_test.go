package core

import (
	"testing"
	"time"

	"webtxprofile/internal/weblog"
)

// TestFeedBatchSteadyStateAllocs gates the monitor end of the zero-copy
// feed path: once devices are admitted and the partition scratch pool is
// warm, FeedBatch on the sequential path must average no more than 2
// allocations per transaction — window completion and scoring included.
func TestFeedBatchSteadyStateAllocs(t *testing.T) {
	set, ds := sharedSet(t)
	base, _ := deviceStream(ds, 8, 4096)

	// Pre-stamp several laps of the stream, each lap shifted forward so
	// timestamps stay non-decreasing per device for the whole run; the
	// measured closure then only slices, never builds transactions.
	const laps = 6
	span := base[len(base)-1].Timestamp.Sub(base[0].Timestamp) + time.Hour
	stream := make([]weblog.Transaction, 0, laps*len(base))
	for lap := 0; lap < laps; lap++ {
		shift := time.Duration(lap) * span
		for _, tx := range base {
			tx.Timestamp = tx.Timestamp.Add(shift)
			stream = append(stream, tx)
		}
	}

	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	const batch = 256
	fed := 0
	feed := func() {
		if fed+batch > len(stream) {
			t.Fatal("pre-stamped stream exhausted; raise laps")
		}
		if err := mon.FeedBatch(stream[fed : fed+batch]); err != nil {
			t.Fatal(err)
		}
		fed += batch
	}

	// Warm-up: admit every device, grow streamer buffers, fill the pool.
	for fed < len(base) {
		feed()
	}

	avg := testing.AllocsPerRun(20, feed)
	perTx := avg / float64(batch)
	if perTx > 2 {
		t.Errorf("FeedBatch steady state allocates %.2f allocs/tx (%.0f per %d-tx batch), want <= 2",
			perTx, avg, batch)
	}
}
