// Package core assembles the paper's primary contribution: per-user
// profiles built from web-transaction windows with one-class classifiers
// (Sect. III), the training pipeline with optional per-user parameter
// optimization (Sect. IV-C), batch evaluation (Sect. V-A) and streaming
// user identification for continuous authentication (Sect. V-B).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/grid"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/weblog"
)

// Config parameterizes the training pipeline. Zero values select the
// paper's defaults where one exists.
type Config struct {
	// Window is the sliding-window configuration; defaults to the paper's
	// retained D=60s, S=30s.
	Window features.WindowConfig
	// Algorithm selects OC-SVM (default) or SVDD.
	Algorithm svm.Algorithm
	// Kernel and Param configure training when AutoTune is off. Defaults:
	// linear kernel; ν = 0.1 for OC-SVM (≈ the paper's 90% TPR target) or
	// C = 0.5 for SVDD (the Table II setting).
	Kernel svm.Kernel
	Param  float64
	// AutoTune runs the per-user (kernel, ν/C) grid search of Sect. IV-C
	// before training the final models.
	AutoTune bool
	// GridParams/GridKernels override the AutoTune grid (defaults: the
	// paper's Table III grid).
	GridParams  []float64
	GridKernels []svm.Kernel
	// MinTransactions drops users with fewer transactions (default 1500,
	// the paper's representativeness threshold; negative disables).
	MinTransactions int
	// TrainFraction is the chronological train share (default 0.75).
	TrainFraction float64
	// MaxTrainWindows caps per-user training windows (default 2000;
	// negative means unlimited).
	MaxTrainWindows int
	// MaxOtherWindows caps the per-user sample used for ACC_other during
	// AutoTune (default 200; negative means unlimited).
	MaxOtherWindows int
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Train carries SMO knobs (Eps, MaxIter, CacheMB); its Kernel field is
	// ignored.
	Train svm.TrainConfig
}

// WithDefaults returns the config with unset fields filled in.
func (c Config) WithDefaults() Config {
	if c.Window == (features.WindowConfig{}) {
		c.Window = features.WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}
	}
	if c.Algorithm == 0 {
		c.Algorithm = svm.OCSVM
	}
	if c.Kernel == (svm.Kernel{}) {
		c.Kernel = svm.Linear()
	}
	if c.Param == 0 {
		if c.Algorithm == svm.SVDD {
			c.Param = 0.5
		} else {
			c.Param = 0.1
		}
	}
	if c.MinTransactions == 0 {
		c.MinTransactions = 1500
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.75
	}
	if c.MaxTrainWindows == 0 {
		c.MaxTrainWindows = 2000
	}
	if c.MaxOtherWindows == 0 {
		c.MaxOtherWindows = 200
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Validate checks the filled-in config.
func (c Config) Validate() error {
	if err := c.Window.Validate(); err != nil {
		return err
	}
	if c.Algorithm != svm.OCSVM && c.Algorithm != svm.SVDD {
		return fmt.Errorf("core: invalid algorithm %d", int(c.Algorithm))
	}
	if err := c.Kernel.Validate(); err != nil {
		return err
	}
	if c.Param <= 0 || (c.Algorithm == svm.OCSVM && c.Param > 1) {
		return fmt.Errorf("core: parameter %g out of range for %v", c.Param, c.Algorithm)
	}
	if c.TrainFraction <= 0 || c.TrainFraction >= 1 {
		return fmt.Errorf("core: train fraction %g out of (0,1)", c.TrainFraction)
	}
	return nil
}

// Profile is one user's trained profile.
type Profile struct {
	UserID string     `json:"user_id"`
	Model  *svm.Model `json:"model"`
	// TrainWindows is the number of windows the final model was fit on.
	TrainWindows int `json:"train_windows"`
	// TunedACC records the grid-search objective when AutoTune ran.
	TunedACC float64 `json:"tuned_acc,omitempty"`
}

// ProfileSet is the complete trained artifact: the shared vocabulary and
// window configuration plus one profile per user.
type ProfileSet struct {
	Vocabulary *features.Vocabulary
	Window     features.WindowConfig
	Algorithm  svm.Algorithm
	Profiles   map[string]*Profile
}

// Users returns profile owners in sorted order.
func (ps *ProfileSet) Users() []string {
	out := make([]string, 0, len(ps.Profiles))
	for u := range ps.Profiles {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Models projects the set onto user → model, the shape eval consumes.
func (ps *ProfileSet) Models() map[string]*svm.Model {
	out := make(map[string]*svm.Model, len(ps.Profiles))
	for u, p := range ps.Profiles {
		out[u] = p.Model
	}
	return out
}

// SplitResult carries the prepared corpora of the Sect. IV pipeline.
type SplitResult struct {
	Train, Test *weblog.Dataset
	Dropped     []string // users under the representativeness threshold
}

// PrepareSplit applies the paper's data preparation: drop
// under-represented users, then split each user's history
// chronologically.
func PrepareSplit(ds *weblog.Dataset, cfg Config) (*SplitResult, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kept := ds
	var dropped []string
	if cfg.MinTransactions > 0 {
		kept, dropped = ds.FilterMinTransactions(cfg.MinTransactions)
	}
	if kept.Len() == 0 {
		return nil, fmt.Errorf("core: no transactions after filtering")
	}
	train, test, err := kept.SplitChronological(cfg.TrainFraction)
	if err != nil {
		return nil, err
	}
	return &SplitResult{Train: train, Test: test, Dropped: dropped}, nil
}

// Train runs the full pipeline on a raw dataset: filter, split, build the
// vocabulary from the training epoch, window per user, optionally
// auto-tune, and fit the final models. The returned test set is the
// held-out epoch for evaluation.
func Train(ds *weblog.Dataset, cfg Config) (*ProfileSet, *weblog.Dataset, error) {
	cfg = cfg.WithDefaults()
	split, err := PrepareSplit(ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	set, err := BuildProfiles(split.Train, cfg)
	if err != nil {
		return nil, nil, err
	}
	return set, split.Test, nil
}

// BuildProfiles trains profiles on an already-prepared training dataset.
// The vocabulary is built from exactly this corpus (Sect. IV-A: the
// feature space is data-driven).
func BuildProfiles(train *weblog.Dataset, cfg Config) (*ProfileSet, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	users := train.Users()
	if len(users) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	vocab := features.BuildFromDataset(train)
	windows, err := features.ComposeUsers(vocab, cfg.Window, train)
	if err != nil {
		return nil, err
	}
	for _, u := range users {
		if n := cfg.MaxTrainWindows; n > 0 && len(windows[u]) > n {
			windows[u] = windows[u][:n]
		}
		if len(windows[u]) == 0 {
			return nil, fmt.Errorf("core: user %s has no training windows", u)
		}
	}

	kernelOf := func(string) svm.Kernel { return cfg.Kernel }
	paramOf := func(string) float64 { return cfg.Param }
	tunedACC := map[string]float64{}
	if cfg.AutoTune {
		params := cfg.GridParams
		if len(params) == 0 {
			params = grid.PaperParams
		}
		kernels := cfg.GridKernels
		if len(kernels) == 0 {
			kernels = grid.PaperKernels(vocab.Size())
		}
		tables, err := grid.ParamSearch(windows, params, kernels, grid.Config{
			Algorithm:       cfg.Algorithm,
			MaxTrainWindows: min(cfg.MaxTrainWindows, 600),
			MaxOtherWindows: cfg.MaxOtherWindows,
			Workers:         cfg.Workers,
			Train:           cfg.Train,
		})
		if err != nil {
			return nil, err
		}
		bests, err := grid.BestParams(tables)
		if err != nil {
			return nil, err
		}
		kernelOf = func(u string) svm.Kernel { return bests[u].Kernel }
		paramOf = func(u string) float64 { return bests[u].Param }
		for u, b := range bests {
			tunedACC[u] = b.Acc.ACC()
		}
	}

	set := &ProfileSet{
		Vocabulary: vocab,
		Window:     cfg.Window,
		Algorithm:  cfg.Algorithm,
		Profiles:   make(map[string]*Profile, len(users)),
	}
	type result struct {
		user    string
		profile *Profile
		err     error
	}
	tasks := make(chan string)
	results := make(chan result)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			for u := range tasks {
				tc := cfg.Train
				tc.Kernel = kernelOf(u)
				m, err := svm.Train(cfg.Algorithm, features.Vectors(windows[u]), paramOf(u), tc)
				if err != nil {
					results <- result{user: u, err: fmt.Errorf("core: training %s: %w", u, err)}
					continue
				}
				results <- result{user: u, profile: &Profile{
					UserID:       u,
					Model:        m,
					TrainWindows: len(windows[u]),
					TunedACC:     tunedACC[u],
				}}
			}
		}()
	}
	go func() {
		for _, u := range users {
			tasks <- u
		}
		close(tasks)
	}()
	var firstErr error
	for range users {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		set.Profiles[r.user] = r.profile
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return set, nil
}

// Evaluate runs the Sect. V-A user-differentiation experiment: every model
// against every user's test windows.
func (ps *ProfileSet) Evaluate(test *weblog.Dataset) (*eval.ConfusionMatrix, error) {
	windows, err := features.ComposeUsers(ps.Vocabulary, ps.Window, test)
	if err != nil {
		return nil, err
	}
	// Restrict to profiled users: test sets may contain extra users.
	filtered := make(map[string][]features.Window, len(ps.Profiles))
	for u := range ps.Profiles {
		filtered[u] = windows[u]
	}
	return eval.Confusion(ps.Models(), filtered), nil
}

// ExtendVocabulary absorbs label values observed in txs into the set's
// vocabulary (appending columns; existing column ids — and therefore the
// trained models — stay valid). It returns the number of columns added.
// New columns only influence decisions after the affected users are
// retrained (e.g. via a Refresher).
func (ps *ProfileSet) ExtendVocabulary(txs []weblog.Transaction) int {
	before := ps.Vocabulary.Size()
	ps.Vocabulary = ps.Vocabulary.Extend(txs)
	return ps.Vocabulary.Size() - before
}

// IdentifyHost runs the Sect. V-B experiment: host-specific windows from
// one device classified against every profile.
func (ps *ProfileSet) IdentifyHost(ds *weblog.Dataset, host string) ([]eval.TimelinePoint, error) {
	txs := ds.HostTransactions(host)
	if len(txs) == 0 {
		return nil, fmt.Errorf("core: no transactions for host %s", host)
	}
	windows, err := features.Compose(ps.Vocabulary, ps.Window, txs, host)
	if err != nil {
		return nil, err
	}
	return eval.Timeline(ps.Models(), windows), nil
}
