package core

import (
	"testing"
)

// runMonitorAlerts replays txs through a monitor built with cfg and
// returns the per-device alert signatures (stream fully fed, flushed,
// closed).
func runMonitorAlerts(t *testing.T, cfg MonitorConfig, k int) map[string][]string {
	t.Helper()
	set, ds := sharedSet(t)
	txs, _ := deviceStream(ds, 9, 6000)
	col := newAlertCollector()
	mon, err := NewMonitorWithConfig(set, k, col.callback, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(txs); start += 256 {
		end := min(start+256, len(txs))
		if err := mon.FeedBatch(txs[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	mon.Flush()
	mon.Close()
	return col.got
}

// TestMonitorFusedMatchesPreFusedEngine is the PR's Monitor-level
// acceptance property: with the default exact float64 mode, a monitor
// scoring through the shared fused index emits per-device alert sequences
// byte-identical to one scoring through the pre-fused per-model engine
// (the referenceScoring seam routes every window through
// svm.Model.Accept, one walk per model, exactly as before the fused
// index existed).
func TestMonitorFusedMatchesPreFusedEngine(t *testing.T) {
	const k = 2
	ref := runMonitorAlerts(t, MonitorConfig{Shards: 8, referenceScoring: true}, k)
	fused := runMonitorAlerts(t, MonitorConfig{Shards: 8}, k)
	comparePerDevice(t, ref, fused)
}

// TestMonitorFloat32ScoringRuns smokes the float32 mode end to end: the
// monitor must run the full stream and alert. Alert sequences are only
// guaranteed to match float64 within svm.Float32DecisionBound of each
// decision boundary, so this test asserts liveness, not byte equality —
// the bound itself is asserted in internal/svm.
func TestMonitorFloat32ScoringRuns(t *testing.T) {
	got := runMonitorAlerts(t, MonitorConfig{Shards: 8, Float32Scoring: true}, 2)
	total := 0
	for _, sigs := range got {
		total += len(sigs)
	}
	if total == 0 {
		t.Fatal("float32 monitor produced no alerts over the shared stream")
	}
}
