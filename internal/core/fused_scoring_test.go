package core

import (
	"strings"
	"testing"

	"webtxprofile/internal/svm"
)

// runMonitorAlerts replays txs through a monitor built with cfg and
// returns the per-device alert signatures (stream fully fed, flushed,
// closed).
func runMonitorAlerts(t *testing.T, cfg MonitorConfig, k int) map[string][]string {
	t.Helper()
	set, ds := sharedSet(t)
	txs, _ := deviceStream(ds, 9, 6000)
	col := newAlertCollector()
	mon, err := NewMonitorWithConfig(set, k, col.callback, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(txs); start += 256 {
		end := min(start+256, len(txs))
		if err := mon.FeedBatch(txs[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	mon.Flush()
	mon.Close()
	return col.got
}

// TestMonitorFusedMatchesPreFusedEngine is the PR's Monitor-level
// acceptance property: with the default exact float64 mode, a monitor
// scoring through the shared fused index emits per-device alert sequences
// byte-identical to one scoring through the pre-fused per-model engine
// (the referenceScoring seam routes every window through
// svm.Model.Accept, one walk per model, exactly as before the fused
// index existed).
func TestMonitorFusedMatchesPreFusedEngine(t *testing.T) {
	const k = 2
	ref := runMonitorAlerts(t, MonitorConfig{Shards: 8, referenceScoring: true}, k)
	fused := runMonitorAlerts(t, MonitorConfig{Shards: 8}, k)
	comparePerDevice(t, ref, fused)
}

// TestMonitorKernelEnginesAlertEquivalence extends the byte-identity
// property across the kernel-engine seam: a monitor forced onto the
// portable per-posting kernels and one on the auto-resolved engine
// (the packed AVX-512 kernels where the CPU has them, the Go lane
// kernels otherwise) must emit identical per-device alert sequences,
// and both must match the pre-fused per-model reference. Run under
// -race in CI with the vector engine on.
func TestMonitorKernelEnginesAlertEquivalence(t *testing.T) {
	const k = 2
	ref := runMonitorAlerts(t, MonitorConfig{Shards: 8, referenceScoring: true}, k)
	auto := runMonitorAlerts(t, MonitorConfig{Shards: 8}, k)
	portable := runMonitorAlerts(t, MonitorConfig{Shards: 8, ScoringKernels: svm.KernelsPortable}, k)
	comparePerDevice(t, ref, auto)
	comparePerDevice(t, ref, portable)
}

// TestMonitorScoringEngineAccessors pins the observability accessors the
// daemon logs at startup: a fused monitor reports the resolved engine
// name and a non-zero index footprint; the portable engine is visible in
// the name.
func TestMonitorScoringEngineAccessors(t *testing.T) {
	set, _ := sharedSet(t)
	col := newAlertCollector()
	mon, err := NewMonitorWithConfig(set, 2, col.callback, MonitorConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if eng := mon.ScoringEngine(); !strings.HasPrefix(eng, "block8/float64") {
		t.Errorf("ScoringEngine() = %q, want block8/float64 prefix", eng)
	}
	if fp := mon.ScoringFootprint(); fp.IndexBytes == 0 {
		t.Errorf("ScoringFootprint() = %+v, want non-zero IndexBytes", fp)
	}
	pmon, err := NewMonitorWithConfig(set, 2, col.callback,
		MonitorConfig{Shards: 2, ScoringKernels: svm.KernelsPortable})
	if err != nil {
		t.Fatal(err)
	}
	defer pmon.Close()
	if eng := pmon.ScoringEngine(); !strings.HasPrefix(eng, "portable/") {
		t.Errorf("portable ScoringEngine() = %q, want portable/ prefix", eng)
	}
}

// TestMonitorFloat32ScoringRuns smokes the float32 mode end to end: the
// monitor must run the full stream and alert. Alert sequences are only
// guaranteed to match float64 within svm.Float32DecisionBound of each
// decision boundary, so this test asserts liveness, not byte equality —
// the bound itself is asserted in internal/svm.
func TestMonitorFloat32ScoringRuns(t *testing.T) {
	got := runMonitorAlerts(t, MonitorConfig{Shards: 8, Float32Scoring: true}, 2)
	total := 0
	for _, sigs := range got {
		total += len(sigs)
	}
	if total == 0 {
		t.Fatal("float32 monitor produced no alerts over the shared stream")
	}
}
