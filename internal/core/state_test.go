package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/weblog"
)

// eventSig reduces an identification event to a comparable signature
// covering the window identity, its content, and the decision.
func eventSig(ev Event) string {
	return fmt.Sprintf("%s|%s|%d|%s|%v|%s",
		ev.Window.Start.Format(time.RFC3339Nano), ev.Window.End.Format(time.RFC3339Nano),
		ev.Window.Count, ev.Window.Vector.Key(), ev.Accepted, ev.Identified)
}

func eventSigs(evs []Event) []string {
	out := make([]string, len(evs))
	for i := range evs {
		out[i] = eventSig(evs[i])
	}
	return out
}

// hostStream rewrites one user's chronological test transactions onto a
// single device.
func hostStream(t *testing.T, ds *weblog.Dataset, user, host string, limit int) []weblog.Transaction {
	t.Helper()
	txs := ds.UserTransactions(user)
	if len(txs) > limit {
		txs = txs[:limit]
	}
	if len(txs) == 0 {
		t.Fatalf("no transactions for user %s", user)
	}
	out := make([]weblog.Transaction, len(txs))
	for i, tx := range txs {
		tx.SourceIP = host
		out[i] = tx
	}
	return out
}

// TestIdentifierSnapshotResume is the identifier-level resume property:
// checkpointing at random midpoints of a stream — with the state pushed
// through the same JSON round trip the stores use — must reproduce the
// uninterrupted event sequence byte-for-byte.
func TestIdentifierSnapshotResume(t *testing.T) {
	set, testDS := sharedSet(t)
	const host = "192.0.2.7"
	txs := hostStream(t, testDS, set.Users()[0], host, 1500)

	base, err := NewIdentifier(set, host, 3)
	if err != nil {
		t.Fatal(err)
	}
	var want []Event
	for _, tx := range txs {
		evs, err := base.Feed(tx)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, evs...)
	}
	want = append(want, base.Flush()...)
	if len(want) == 0 {
		t.Fatal("reference run produced no events")
	}
	wantSigs := eventSigs(want)

	r := rand.New(rand.NewSource(41))
	splits := []int{0, len(txs)}
	for i := 0; i < 6; i++ {
		splits = append(splits, r.Intn(len(txs)))
	}
	for _, split := range splits {
		id, err := NewIdentifier(set, host, 3)
		if err != nil {
			t.Fatal(err)
		}
		var got []Event
		for _, tx := range txs[:split] {
			evs, err := id.Feed(tx)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, evs...)
		}
		blob, err := json.Marshal(id.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var st IdentifierState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		resumed, err := RestoreIdentifier(set, st)
		if err != nil {
			t.Fatalf("RestoreIdentifier at split %d: %v", split, err)
		}
		for _, tx := range txs[split:] {
			evs, err := resumed.Feed(tx)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, evs...)
		}
		got = append(got, resumed.Flush()...)
		gotSigs := eventSigs(got)
		if len(gotSigs) != len(wantSigs) {
			t.Fatalf("split %d: %d events, want %d", split, len(gotSigs), len(wantSigs))
		}
		for i := range wantSigs {
			if gotSigs[i] != wantSigs[i] {
				t.Fatalf("split %d: event %d differs:\n got %s\nwant %s", split, i, gotSigs[i], wantSigs[i])
			}
		}
	}
}

// TestRestoreIdentifierValidation covers the corrupt-state paths.
func TestRestoreIdentifierValidation(t *testing.T) {
	set, testDS := sharedSet(t)
	const host = "192.0.2.8"
	id, err := NewIdentifier(set, host, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range hostStream(t, testDS, set.Users()[0], host, 50) {
		if _, err := id.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	good := id.Snapshot()
	if good.K != 2 || good.Host != host {
		t.Errorf("snapshot metadata = k%d %q", good.K, good.Host)
	}

	bad := good
	bad.Host = ""
	if _, err := RestoreIdentifier(set, bad); err == nil {
		t.Error("state without host accepted")
	}
	bad = good
	bad.Host = "somewhere-else"
	if _, err := RestoreIdentifier(set, bad); err == nil {
		t.Error("host/streamer entity mismatch accepted")
	}
	bad = good
	bad.Runs = map[string]int{set.Users()[0]: -3}
	if _, err := RestoreIdentifier(set, bad); err == nil {
		t.Error("negative streak accepted")
	}
	// Streaks for unknown users are dropped, not an error: the profile set
	// may have been retrained with a different population.
	ok := good
	ok.Runs = map[string]int{"user_never_seen": 7}
	if _, err := RestoreIdentifier(set, ok); err != nil {
		t.Errorf("unknown-user streak rejected: %v", err)
	}
}

// TestStateStores exercises both StateStore implementations through the
// same contract, including device ids that need filename escaping and
// disk-store persistence across a reopen.
func TestStateStores(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDiskStateStore(filepath.Join(dir, "state"))
	if err != nil {
		t.Fatal(err)
	}
	stores := []struct {
		name string
		s    StateStore
	}{
		{"mem", NewMemStateStore()},
		{"disk", disk},
	}
	devices := []string{"10.0.0.1", "fe80::1%eth0", "weird/../device name"}
	for _, tc := range stores {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok, err := tc.s.Get("10.0.0.1"); ok || err != nil {
				t.Fatalf("empty store Get = %v, %v", ok, err)
			}
			for i, d := range devices {
				if err := tc.s.Put(d, []byte(fmt.Sprintf("blob-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			got, err := tc.s.Devices()
			if err != nil || len(got) != len(devices) {
				t.Fatalf("Devices = %v, %v", got, err)
			}
			for i, d := range devices {
				blob, ok, err := tc.s.Get(d)
				if err != nil || !ok || string(blob) != fmt.Sprintf("blob-%d", i) {
					t.Fatalf("Get(%q) = %q, %v, %v", d, blob, ok, err)
				}
			}
			if err := tc.s.Put(devices[0], []byte("replaced")); err != nil {
				t.Fatal(err)
			}
			if blob, _, _ := tc.s.Get(devices[0]); string(blob) != "replaced" {
				t.Errorf("Put did not replace: %q", blob)
			}
			if err := tc.s.Delete(devices[0]); err != nil {
				t.Fatal(err)
			}
			if err := tc.s.Delete(devices[0]); err != nil {
				t.Errorf("double delete errored: %v", err)
			}
			if _, ok, _ := tc.s.Get(devices[0]); ok {
				t.Error("deleted device still present")
			}
		})
	}

	// Reopening the disk directory must index the surviving devices.
	reopened, err := NewDiskStateStore(disk.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Devices()
	if err != nil || len(got) != len(devices)-1 {
		t.Fatalf("reopened Devices = %v, %v", got, err)
	}
	for _, d := range devices[1:] {
		if blob, ok, err := reopened.Get(d); err != nil || !ok || len(blob) == 0 {
			t.Errorf("reopened Get(%q) = %q, %v, %v", d, blob, ok, err)
		}
	}
}

// spillScenario builds the eviction-mid-streak stream: device A works long
// enough to build streaks and buffered windows, device B's traffic then
// advances stream time far enough to force A's eviction, and A resumes.
// The final phase is one late B transaction rehydrating B — it may itself
// have idled out and spilled while A was catching up — so a trailing Flush
// covers the same devices on an evicting and a never-evicting monitor.
func spillScenario(t *testing.T, set *ProfileSet, testDS *weblog.Dataset, ttl time.Duration) (a1, b, a2, bFinal []weblog.Transaction) {
	t.Helper()
	const devA, devB = "10.0.0.1", "10.0.0.2"
	all := hostStream(t, testDS, set.Users()[0], devA, 600)
	mid := len(all) / 2
	a1, a2 = all[:mid], all[mid:]
	tmpl := all[mid-1]
	tmpl.SourceIP = devB
	for i := 0; i < 5; i++ {
		tx := tmpl
		tx.Timestamp = tmpl.Timestamp.Add(time.Duration(i+2) * ttl)
		b = append(b, tx)
	}
	last := b[len(b)-1]
	if tail := a2[len(a2)-1].Timestamp; tail.After(last.Timestamp) {
		last.Timestamp = tail
	}
	last.Timestamp = last.Timestamp.Add(time.Minute)
	bFinal = []weblog.Transaction{last}
	return a1, b, a2, bFinal
}

// TestMonitorSpillRehydrateMatchesNeverEvicting is the tentpole acceptance
// criterion: a monitor that evicts a device mid-streak, spills its state
// to a StateStore (memory and disk), and rehydrates it on the device's
// next transaction must emit the identical alert sequence to a monitor
// that never evicts.
func TestMonitorSpillRehydrateMatchesNeverEvicting(t *testing.T) {
	set, testDS := sharedSet(t)
	const ttl = 10 * time.Minute
	const devA = "10.0.0.1"
	a1, b, a2, bFinal := spillScenario(t, set, testDS, ttl)
	feed := func(mon *Monitor, phases ...[]weblog.Transaction) {
		for _, phase := range phases {
			for _, tx := range phase {
				if err := mon.Feed(tx); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Reference: same stream, never evicting.
	refCol := newAlertCollector()
	ref, err := NewMonitorWithConfig(set, 2, refCol.callback, MonitorConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	feed(ref, a1, b, a2, bFinal)
	ref.Flush()
	ref.Close()

	diskStore, err := NewDiskStateStore(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		store StateStore
	}{
		{"mem", NewMemStateStore()},
		{"disk", diskStore},
	} {
		t.Run(tc.name, func(t *testing.T) {
			col := newAlertCollector()
			mon, err := NewMonitorWithConfig(set, 2, col.callback,
				MonitorConfig{Shards: 4, IdleTTL: ttl, Spill: tc.store})
			if err != nil {
				t.Fatal(err)
			}
			defer mon.Close()
			feed(mon, a1)
			feed(mon, b)
			// A must be evicted-with-spill now: gone from the monitor, present
			// in the store, carrying live mid-streak state.
			if mon.Current(devA) != "" {
				t.Fatal("device A still confirmed after eviction window")
			}
			spilled, err := tc.store.Devices()
			if err != nil || len(spilled) != 1 || spilled[0] != devA {
				t.Fatalf("store devices = %v, %v — eviction did not spill", spilled, err)
			}
			blob, ok, err := tc.store.Get(devA)
			if err != nil || !ok {
				t.Fatalf("spilled blob missing: %v", err)
			}
			st, err := decodeDeviceState(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Identifier.Streamer.Buffered) == 0 && len(st.Identifier.Runs) == 0 {
				t.Fatal("spilled state carries neither buffered windows nor streaks — eviction not mid-streak")
			}
			feed(mon, a2)
			// Rehydration consumed A's spilled state (B may have idled out
			// and spilled in the meantime — its late transaction below
			// rehydrates it before the final flush).
			if _, ok, _ := tc.store.Get(devA); ok {
				t.Error("device A still spilled after rehydration")
			}
			feed(mon, bFinal)
			if after, _ := tc.store.Devices(); len(after) != 0 {
				t.Errorf("store still holds %v before the final flush", after)
			}
			mon.Flush()
			comparePerDevice(t, refCol.got, col.got)
		})
	}
}

// TestMonitorSpillFallbackOnStoreFailure: a store that refuses writes must
// not leak the device — the monitor falls back to the lossy flush +
// AlertLost eviction.
func TestMonitorSpillFallbackOnStoreFailure(t *testing.T) {
	set, testDS := sharedSet(t)
	const ttl = 10 * time.Minute
	a1, b, _, _ := spillScenario(t, set, testDS, ttl)
	col := newAlertCollector()
	mon, err := NewMonitorWithConfig(set, 2, col.callback,
		MonitorConfig{Shards: 4, IdleTTL: ttl, Spill: failingStore{}})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	for _, tx := range append(append([]weblog.Transaction(nil), a1...), b...) {
		if err := mon.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	if got := mon.Devices(); got != 1 {
		t.Errorf("devices = %d, want 1 (failed spill leaked the device)", got)
	}
	mon.Flush()
}

// failingStore rejects every write and holds nothing.
type failingStore struct{}

func (failingStore) Put(string, []byte) error         { return fmt.Errorf("store full") }
func (failingStore) Get(string) ([]byte, bool, error) { return nil, false, nil }
func (failingStore) Delete(string) error              { return nil }
func (failingStore) Devices() ([]string, error)       { return nil, nil }

// TestMonitorRehydrateRejectsCorruptBlob: a corrupt spilled blob fails the
// admitting transaction once, is dropped, and the device starts fresh on
// its next transaction.
func TestMonitorRehydrateRejectsCorruptBlob(t *testing.T) {
	set, testDS := sharedSet(t)
	store := NewMemStateStore()
	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Spill: store})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	txs := hostStream(t, testDS, set.Users()[0], "10.0.0.9", 2)
	store.Put("10.0.0.9", []byte("not json"))
	if err := mon.Feed(txs[0]); err == nil {
		t.Fatal("corrupt blob did not fail the admitting transaction")
	}
	if store.Len() != 0 {
		t.Error("corrupt blob not dropped")
	}
	if err := mon.Feed(txs[1]); err != nil {
		t.Errorf("device did not start fresh after corrupt blob: %v", err)
	}

	// Version drift is rejected the same way.
	good, err := encodeDeviceState(DeviceState{Device: "10.0.1.9", Identifier: IdentifierState{Host: "10.0.1.9", Streamer: features.StreamerState{Entity: "10.0.1.9"}}})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(good, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = stateVersion + 1
	future, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	store.Put("10.0.1.9", future)
	tx := txs[1]
	tx.SourceIP = "10.0.1.9"
	if err := mon.Feed(tx); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version blob error = %v", err)
	}
}

// flakyGetStore fails the first Get per device with a transient error.
type flakyGetStore struct {
	*MemStateStore
	failed map[string]bool
}

func (s *flakyGetStore) Get(device string) ([]byte, bool, error) {
	if !s.failed[device] {
		s.failed[device] = true
		return nil, false, fmt.Errorf("transient io error")
	}
	return s.MemStateStore.Get(device)
}

// TestMonitorRehydrateKeepsBlobOnTransientError: a store read that errors
// must fail the one transaction but leave the durable blob alone — only
// corrupt blobs are dropped — so the next transaction rehydrates normally.
func TestMonitorRehydrateKeepsBlobOnTransientError(t *testing.T) {
	set, testDS := sharedSet(t)
	const dev = "10.0.2.9"
	inner := NewMemStateStore()
	store := &flakyGetStore{MemStateStore: inner, failed: map[string]bool{}}
	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Spill: store})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// Seed the store with real spilled state for the device.
	id, err := NewIdentifier(set, dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	txs := hostStream(t, testDS, set.Users()[0], dev, 40)
	for _, tx := range txs[:20] {
		if _, err := id.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := encodeDeviceState(DeviceState{Device: dev, Identifier: id.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	inner.Put(dev, blob)

	if err := mon.Feed(txs[20]); err == nil {
		t.Fatal("transient store error did not surface")
	}
	if inner.Len() != 1 {
		t.Fatal("transient store error destroyed the spilled blob")
	}
	if err := mon.Feed(txs[20]); err != nil {
		t.Fatalf("retry did not rehydrate: %v", err)
	}
	if inner.Len() != 0 {
		t.Error("successful rehydration left the blob in the store")
	}
}

// TestMonitorCheckpointRestoreMatchesReference is the process-restart
// property, driven through FeedBatch under -race: a random stream over
// many devices, checkpointed into a disk store at a random midpoint and
// restored into a fresh monitor over the same store, must produce the
// reference alert sequence byte-identically per device.
func TestMonitorCheckpointRestoreMatchesReference(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 7, 6000)
	const k, batchSize = 2, 128
	want := referenceAlerts(t, set, txs, k)
	r := rand.New(rand.NewSource(43))

	for trial := 0; trial < 3; trial++ {
		store, err := NewDiskStateStore(filepath.Join(t.TempDir(), "state"))
		if err != nil {
			t.Fatal(err)
		}
		cfg := MonitorConfig{Shards: 8, BatchWorkers: 4, Spill: store}
		split := (1 + r.Intn(len(txs)/batchSize-1)) * batchSize

		col := newAlertCollector()
		mon1, err := NewMonitorWithConfig(set, k, col.callback, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for rest := txs[:split]; len(rest) > 0; {
			n := min(batchSize, len(rest))
			if err := mon1.FeedBatch(rest[:n]); err != nil {
				t.Fatal(err)
			}
			rest = rest[n:]
		}
		n, _, err := mon1.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 || mon1.Devices() != 0 {
			t.Fatalf("checkpoint spilled %d devices, %d still tracked", n, mon1.Devices())
		}
		mon1.Flush() // nothing pending; waits for alert delivery
		mon1.Close()

		// "Restart": a fresh monitor over the same directory, reopened.
		reopened, err := NewDiskStateStore(store.Dir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Spill = reopened
		mon2, err := NewMonitorWithConfig(set, k, col.callback, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for rest := txs[split:]; len(rest) > 0; {
			n := min(batchSize, len(rest))
			if err := mon2.FeedBatch(rest[:n]); err != nil {
				t.Fatal(err)
			}
			rest = rest[n:]
		}
		mon2.Flush()
		mon2.Close()
		comparePerDevice(t, want, col.got)
	}
}

// TestMonitorExportImportShards is the shard-handoff acceptance criterion:
// ExportShard→ImportShard into a fresh Monitor (different seed, different
// shard count) must preserve every device's pending windows and streaks —
// proven by the combined alert sequences matching the uninterrupted
// reference.
func TestMonitorExportImportShards(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, _ := deviceStream(testDS, 9, 6000)
	const k, batchSize = 2, 128
	want := referenceAlerts(t, set, txs, k)
	split := len(txs) / 2

	col := newAlertCollector()
	mon1, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 8, BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for rest := txs[:split]; len(rest) > 0; {
		n := min(batchSize, len(rest))
		if err := mon1.FeedBatch(rest[:n]); err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
	}
	moved := mon1.Devices()
	if moved == 0 {
		t.Fatal("no devices to hand off")
	}

	// The receiving monitor has a different shard layout on purpose.
	mon2, err := NewMonitorWithConfig(set, k, col.callback, MonitorConfig{Shards: 5, BatchWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	imported := 0
	for i := 0; i < 8; i++ {
		blob, err := mon1.ExportShard(i)
		if err != nil {
			t.Fatal(err)
		}
		n, err := mon2.ImportShard(blob)
		if err != nil {
			t.Fatal(err)
		}
		imported += n
	}
	if imported != moved {
		t.Fatalf("imported %d devices, exported monitor had %d", imported, moved)
	}
	if mon1.Devices() != 0 {
		t.Errorf("exporting monitor still tracks %d devices", mon1.Devices())
	}
	if mon2.Devices() != moved {
		t.Errorf("importing monitor tracks %d devices, want %d", mon2.Devices(), moved)
	}
	mon1.Flush()
	mon1.Close()

	for rest := txs[split:]; len(rest) > 0; {
		n := min(batchSize, len(rest))
		if err := mon2.FeedBatch(rest[:n]); err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
	}
	mon2.Flush()
	mon2.Close()
	comparePerDevice(t, want, col.got)
}

// TestMonitorExportImportErrors covers the handoff error paths: bad shard
// index, garbage bytes, version drift, and importing a device that is
// already tracked.
func TestMonitorExportImportErrors(t *testing.T) {
	set, testDS := sharedSet(t)
	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {}, MonitorConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if _, err := mon.ExportShard(-1); err == nil {
		t.Error("negative shard index accepted")
	}
	if _, err := mon.ExportShard(2); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	if _, err := mon.ImportShard([]byte("junk")); err == nil {
		t.Error("garbage import accepted")
	}
	future, err := encodeShardState(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the version inside the gzip envelope.
	devs, err := decodeShardState(future)
	if err != nil || len(devs) != 0 {
		t.Fatalf("empty export round trip: %v", err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := json.NewEncoder(gz).Encode(shardStateJSON{Version: stateVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.ImportShard(buf.Bytes()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version import error = %v", err)
	}

	// Conflict: export from one monitor, import twice into another that
	// then already tracks the devices.
	txs := hostStream(t, testDS, set.Users()[0], "10.0.0.5", 20)
	for _, tx := range txs {
		if err := mon.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := mon.ExportShard(mon.shardIndex("10.0.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := mon.ImportShard(blob); err != nil || n != 1 {
		t.Fatalf("first import = %d, %v", n, err)
	}
	if n, err := mon.ImportShard(blob); err == nil || n != 0 {
		t.Errorf("duplicate import = %d, %v — conflict not reported", n, err)
	}
}

// TestDiskStateStoreRejectsBadDir covers the open error path.
func TestDiskStateStoreRejectsBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStateStore(file); err == nil {
		t.Error("file path accepted as state dir")
	}
}

// TestDiskStateStoreCrashDurability models the crash the fsync fixes
// guard against: a process dies mid-Put leaving a torn ".state-*" temp
// file next to an intact committed state. Reopening the directory must
// sweep the orphans and keep the committed state — and a device whose
// escaped name itself starts with ".state-" must never be mistaken for
// one.
func TestDiskStateStoreCrashDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	store, err := NewDiskStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("10.0.0.1", []byte("committed-state")); err != nil {
		t.Fatal(err)
	}
	// PathEscape keeps dots and dashes, so this device's file is
	// ".state-evil.state.gz" — prefix of a temp file, suffix of a real one.
	if err := store.Put(".state-evil", []byte("prefixed-device")); err != nil {
		t.Fatal(err)
	}

	// A crash mid-Put leaves the temp file; a crash at open leaves an
	// empty one.
	torn := filepath.Join(dir, ".state-123456789")
	if err := os.WriteFile(torn, []byte("torn gzip garbag"), 0o600); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, ".state-987654321")
	if err := os.WriteFile(empty, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	// Unrelated files are not ours to delete.
	keep := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(keep, []byte("operator notes"), 0o600); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewDiskStateStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, orphan := range []string{torn, empty} {
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Errorf("orphaned temp file %s survived reopen (err=%v)", filepath.Base(orphan), err)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("unrelated file swept: %v", err)
	}
	devices, err := reopened.Devices()
	if err != nil || len(devices) != 2 {
		t.Fatalf("reopened Devices = %v, %v — want both committed devices", devices, err)
	}
	if blob, ok, err := reopened.Get("10.0.0.1"); err != nil || !ok || string(blob) != "committed-state" {
		t.Errorf("committed state after crash: %q, %v, %v", blob, ok, err)
	}
	if blob, ok, err := reopened.Get(".state-evil"); err != nil || !ok || string(blob) != "prefixed-device" {
		t.Errorf("dot-prefixed device swept as an orphan: %q, %v, %v", blob, ok, err)
	}
}

// errDeniedDevice marks selectiveStore's rejected writes so the test can
// prove Checkpoint's joined error preserves the underlying causes.
var errDeniedDevice = errors.New("denied device")

// selectiveStore delegates to a memory store but refuses Puts for the
// deny-listed devices.
type selectiveStore struct {
	mem  StateStore
	deny map[string]bool
}

func (s selectiveStore) Put(d string, b []byte) error {
	if s.deny[d] {
		return fmt.Errorf("%w: %s", errDeniedDevice, d)
	}
	return s.mem.Put(d, b)
}
func (s selectiveStore) Get(d string) ([]byte, bool, error) { return s.mem.Get(d) }
func (s selectiveStore) Delete(d string) error              { return s.mem.Delete(d) }
func (s selectiveStore) Devices() ([]string, error)         { return s.mem.Devices() }

// TestMonitorCheckpointContinuesPastFailures: one device's failed spill
// must not abandon the rest of the checkpoint. The healthy devices spill
// and close, the failed ones stay tracked, and the counts plus a joined
// error report exactly what happened.
func TestMonitorCheckpointContinuesPastFailures(t *testing.T) {
	set, testDS := sharedSet(t)
	txs, devices := deviceStream(testDS, 6, 3000)
	store := selectiveStore{
		mem:  NewMemStateStore(),
		deny: map[string]bool{devices[0]: true, devices[3]: true},
	}
	mon, err := NewMonitorWithConfig(set, 2, func(Alert) {},
		MonitorConfig{Shards: 4, Spill: store})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	for _, tx := range txs {
		if err := mon.Feed(tx); err != nil {
			t.Fatal(err)
		}
	}
	tracked := mon.Devices()
	if tracked != 6 {
		t.Fatalf("tracked %d devices before checkpoint, want 6", tracked)
	}

	spilled, failed, err := mon.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint with denied devices reported success")
	}
	if !errors.Is(err, errDeniedDevice) {
		t.Errorf("checkpoint error does not wrap the cause: %v", err)
	}
	if failed != 2 || spilled != tracked-2 {
		t.Errorf("checkpoint counts: spilled %d failed %d, want %d and 2", spilled, failed, tracked-2)
	}
	if got := mon.Devices(); got != 2 {
		t.Errorf("%d devices tracked after checkpoint, want the 2 failed ones", got)
	}
	inStore, err2 := store.Devices()
	if err2 != nil || len(inStore) != spilled {
		t.Errorf("store holds %d devices (%v), want %d", len(inStore), err2, spilled)
	}
	for _, d := range inStore {
		if store.deny[d] {
			t.Errorf("denied device %s reached the store", d)
		}
	}
}
