package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"webtxprofile/internal/core"
)

// corpusSeeds are the checked-in seeds for FuzzReadFrame: one well-formed
// frame of each type plus the malformed shapes the decoder must reject
// cleanly. Kept in code so the testdata corpus is reproducible (see
// TestRegenerateFuzzCorpus).
func corpusSeeds(t testing.TB) [][]byte {
	valid := []Frame{
		{Type: FrameHello, Seq: 1, Node: "router-1", Subscribe: true},
		{Type: FrameHello, Seq: 1, Node: "router-1", Subscribe: true, Client: "router-1/ab12", Resume: true, Cursor: 42},
		{Type: FrameFeed, Seq: 2, Lines: []string{"2015-01-05 09:00:00.000, svc.example.com, http, GET, user_1, 10.0.0.1, Games, text/html, app, minimal-risk, public"}},
		{Type: FrameFeed, Seq: 2, Replay: true, Lines: []string{"2015-01-05 09:00:00.000, svc.example.com, http, GET, user_1, 10.0.0.1, Games, text/html, app, minimal-risk, public"}},
		{Type: FrameExport, Seq: 3, Devices: []string{"10.0.0.1", "10.0.0.2"}},
		{Type: FrameExport, Seq: 3, Devices: []string{"10.0.0.1"}, Handoff: "ab12/1"},
		{Type: FrameImport, Seq: 4, Blob: []byte{0x1f, 0x8b, 0x08, 0x00, 0x00}},
		{Type: FrameImport, Seq: 4, Blob: []byte{0x1f, 0x8b, 0x08, 0x00, 0x00}, Handoff: "ab12/1"},
		{Type: FrameCommit, Seq: 5, Handoff: "ab12/1"},
		{Type: FrameAbort, Seq: 6, Handoff: "ab12/1"},
		{Type: FrameList, Seq: 7},
		{Type: FrameGossip, Seq: 8, Gossip: &GossipState{
			Membership: Membership{Version: 3, Members: []Member{{Name: "n1", Addr: "10.1.0.1:7100"}}},
			Overrides:  []Override{{Device: "10.0.0.1", Node: "n1", Ver: 5}, {Device: "10.0.0.2", Ver: 6}},
		}},
		{Type: FrameFlush, Seq: 9},
		{Type: FrameStats, Seq: 10},
		{Type: FrameOK, Seq: 11, Count: 3, Blob: []byte("blob")},
		{Type: FrameOK, Seq: 12, Devices: []string{"10.0.0.1"}, Cursor: 9},
		{Type: FrameError, Seq: 13, Error: "refused"},
		{Type: FrameAlert, Seq: 14, Alert: &NodeAlert{Node: "n1", Seq: 14, Alert: core.Alert{
			Device: "10.0.0.1", Kind: core.AlertLost, User: "user_2", Previous: "user_2",
		}}},
	}
	var seeds [][]byte
	for _, f := range valid {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	seeds = append(seeds,
		[]byte{},                                      // empty input
		[]byte{0, 0},                                  // truncated header
		[]byte{0, 0, 0, 0},                            // zero length
		[]byte{0xff, 0xff, 0xff, 0xff},                // absurd length
		[]byte{0, 0, 0, 4, 'n', 'o'},                  // truncated payload
		[]byte("\x00\x00\x00\x04nope"),                // invalid JSON
		[]byte("\x00\x00\x00\x0f{\"type\":\"warp\"}"), // unknown type
	)
	return seeds
}

// FuzzReadFrame: arbitrary bytes must decode to a frame or an error —
// never a panic, never unbounded allocation — and anything that decodes
// must survive a re-encode/re-decode round trip.
func FuzzReadFrame(f *testing.F) {
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		back, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if back.Type != fr.Type || back.Seq != fr.Seq {
			t.Fatalf("round trip drifted: %+v -> %+v", fr, back)
		}
		if _, err := ReadFrame(bytes.NewReader(data)); err != nil {
			t.Fatal("decoding is not deterministic")
		}
	})
}

// TestRegenerateFuzzCorpus rewrites testdata/fuzz/FuzzReadFrame from
// corpusSeeds when WTP_REGEN_CORPUS=1, so the checked-in corpus never
// drifts from the protocol. Normally it only verifies the files exist.
func TestRegenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReadFrame")
	if os.Getenv("WTP_REGEN_CORPUS") == "1" {
		writeCorpus(t, dir, corpusSeeds(t))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing (run with WTP_REGEN_CORPUS=1 to create): %v", err)
	}
	if len(entries) < len(corpusSeeds(t)) {
		t.Errorf("corpus has %d entries, want >= %d", len(entries), len(corpusSeeds(t)))
	}
}

// writeCorpus emits seeds in the go-fuzz corpus file format.
func writeCorpus(t testing.TB, dir string, seeds [][]byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range old {
		os.Remove(f)
	}
	for i, seed := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
