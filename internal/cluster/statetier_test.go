package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
	"webtxprofile/internal/statestore"
	"webtxprofile/internal/weblog"
)

// State-tier suite: the cluster spilling through a shared
// internal/statestore server instead of per-node local stores. The
// invariant stays the one every cluster suite asserts — per-device alert
// sequences byte-identical to a single never-resharded monitor — but the
// topology changes now lean on the tier: a joining node warm-restores
// checkpointed devices without draining a peer, and a dead node's
// devices fail over by lazy rehydration at their new owners.

// startStateServer runs an in-memory state server for one test.
func startStateServer(tb testing.TB) *statestore.Server {
	tb.Helper()
	srv, err := statestore.ListenServer("127.0.0.1:0", statestore.ServerConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { srv.Close() })
	return srv
}

// tierClients dials one write-behind client per node (each monitor needs
// its own queue — sharing one client would merge the per-owner version
// streams the fence keeps apart) and hands them to the harness through
// the NodePrep hook.
type tierClients struct {
	tb   testing.TB
	addr string
	cfg  statestore.ClientConfig

	mu sync.Mutex
	m  map[string]*statestore.Client
}

func newTierClients(tb testing.TB, addr string, cfg statestore.ClientConfig) *tierClients {
	tb.Helper()
	tc := &tierClients{tb: tb, addr: addr, cfg: cfg, m: make(map[string]*statestore.Client)}
	tb.Cleanup(tc.closeAll)
	return tc
}

// prep is the HarnessConfig.NodePrep hook: dial a client for the node
// and point its monitor's spill at the shared tier.
func (tc *tierClients) prep() func(name string, cfg *cluster.NodeConfig) {
	return func(name string, cfg *cluster.NodeConfig) {
		c, err := statestore.Dial(tc.addr, tc.cfg)
		if err != nil {
			tc.tb.Fatalf("dialing state tier for node %s: %v", name, err)
		}
		tc.mu.Lock()
		tc.m[name] = c
		tc.mu.Unlock()
		cfg.Monitor.Spill = c
		cfg.Monitor.SharedSpill = true
	}
}

func (tc *tierClients) client(name string) *statestore.Client {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.m[name]
}

func (tc *tierClients) closeAll() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, c := range tc.m {
		c.Close()
	}
}

// flushTier drains a node's write-behind queue, retrying transient flush
// failures (the chaos runs kill state-server connections mid-flush).
func flushTier(tb testing.TB, c *statestore.Client) {
	tb.Helper()
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if err = c.Flush(); err == nil {
			return
		}
	}
	tb.Fatalf("state client never flushed clean: %v", err)
}

// syncRouter is the feed barrier with the chaos-tolerant retry loop:
// Sync is idempotent, so killed stats connections just mean another
// attempt.
func syncRouter(tb testing.TB, r *cluster.Router) {
	tb.Helper()
	for attempt := 0; ; attempt++ {
		err := r.Sync()
		if err == nil {
			return
		}
		if attempt >= 10 {
			tb.Fatalf("sync never succeeded: %v", err)
		}
	}
}

// feedChunks feeds the workload in small batches so the stream spans
// many wire frames (each one a chaos-kill candidate).
func feedChunks(tb testing.TB, r *cluster.Router, txs []weblog.Transaction, n int) {
	tb.Helper()
	for i := 0; i < len(txs); i += n {
		end := min(i+n, len(txs))
		if err := r.FeedBatch(txs[i:end]); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestWarmRestoreJoinEquivalence is the tentpole's first payoff: a node
// checkpoints its whole population into the shared tier (a SIGTERM
// restart), and a cold node then joins — every device that moves to it
// warm-restores from the tier instead of draining a live peer, and the
// merged alert stream still matches the never-resharded reference.
func TestWarmRestoreJoinEquivalence(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 12, 4000)
	want := clustertest.ReferenceSigs(t, set, equivK, txs)
	prev := cluster.ReadClusterStats()

	srv := startStateServer(t)
	tier := newTierClients(t, srv.Addr().String(), statestore.ClientConfig{})
	h := clustertest.NewHarnessConfig(t, set, equivK, clustertest.HarnessConfig{
		Router:   cluster.RouterConfig{SharedState: true},
		NodePrep: tier.prep(),
	}, "n1")

	// Phase 1: the whole population identifies on n1.
	split := len(txs) * 3 / 5
	feedChunks(t, h.Router, txs[:split], 200)
	syncRouter(t, h.Router)

	// SIGTERM-style checkpoint: every tracked device spills through n1's
	// write-behind client, which is then drained to the server.
	spilled, failed, err := h.Node("n1").Monitor().Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v (%d devices failed)", err, failed)
	}
	if spilled == 0 {
		t.Fatal("checkpoint spilled nothing — the warm join would prove nothing")
	}
	flushTier(t, tier.client("n1"))
	if got := srv.Len(); got < spilled {
		t.Fatalf("tier holds %d devices after flush, want >= %d", got, spilled)
	}

	// A cold node joins. No mover is live anywhere, so the rebalance must
	// flip routes without a single drain.
	h.Join(t, "n2")
	if d := cluster.ReadClusterStats().Sub(prev); d.WarmRestores == 0 {
		t.Fatalf("join drained instead of warm-restoring: %+v", d)
	}

	// Phase 2: devices rehydrate lazily (tier Get → restore → Delete) on
	// their next transaction, wherever they now live.
	feedChunks(t, h.Router, txs[split:], 200)
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
	if h.Alerts.Origins()["n2"] == 0 {
		t.Fatal("no alert originated on the joined node — placement never moved")
	}
	if srv.Stats().GetHits == 0 {
		t.Fatal("no device ever rehydrated from the tier")
	}
}

// TestFailoverWithoutHandoffEquivalence is the tentpole's second payoff:
// a member checkpoints, dies, and is declared failed — its devices
// reroute to the survivors and resume from the tier with no handoff
// protocol at all, byte-identically.
func TestFailoverWithoutHandoffEquivalence(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 12, 4000)
	want := clustertest.ReferenceSigs(t, set, equivK, txs)
	prev := cluster.ReadClusterStats()

	srv := startStateServer(t)
	tier := newTierClients(t, srv.Addr().String(), statestore.ClientConfig{})
	h := clustertest.NewHarnessConfig(t, set, equivK, clustertest.HarnessConfig{
		Router:   cluster.RouterConfig{SharedState: true},
		NodePrep: tier.prep(),
	}, "n1", "n2", "n3")

	split := len(txs) * 3 / 5
	feedChunks(t, h.Router, txs[:split], 200)
	syncRouter(t, h.Router)

	// n1 dies politely: checkpoint, drain the write-behind queue, gone.
	// (The barrier above already delivered its alerts; Close emits no
	// synthetic end-of-stream alerts.)
	n1 := h.Node("n1")
	if _, failed, err := n1.Monitor().Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v (%d devices failed)", err, failed)
	}
	flushTier(t, tier.client("n1"))
	n1.Close()

	if err := h.Router.FailNode("n1"); err != nil {
		t.Fatal(err)
	}
	if d := cluster.ReadClusterStats().Sub(prev); d.FailoverReroutes == 0 {
		t.Fatalf("FailNode rerouted nothing: %+v", d)
	}

	feedChunks(t, h.Router, txs[split:], 200)
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
	if srv.Stats().GetHits == 0 {
		t.Fatal("no failed-over device ever rehydrated from the tier")
	}
}

// TestChaosStateTierMidStreamKills is the ISSUE's proof obligation: the
// ChaosProxy kills state-server connections AND a node's feed
// connections mid-stream, a checkpoint and a warm join land in the
// middle of it, and the alert stream still matches the reference. The
// statestore protocol is opaque to the proxy (its frames are not cluster
// frames), so that plan keys on connection/frame ordinals alone.
func TestChaosStateTierMidStreamKills(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 16, 3600)
	want := clustertest.ReferenceSigs(t, set, equivK, txs)
	prev := cluster.ReadClusterStats()

	rng := rand.New(rand.NewSource(clustertest.ChaosSeed(t)))
	var mu sync.Mutex
	stateKills, nodeKills := 0, 0
	// The very first state frame always dies (a guaranteed retry), the
	// rest die at random; statestore RPC traffic is sparse, so the rate
	// is high and the cap keeps the tail of the run clean.
	statePlan := func(ev clustertest.FaultEvent) clustertest.FaultAction {
		mu.Lock()
		defer mu.Unlock()
		if ev.Conn == 1 && ev.Seq == 1 && ev.Dir == clustertest.ToNode {
			stateKills++
			return clustertest.Kill
		}
		if stateKills < 10 && rng.Intn(4) == 0 {
			stateKills++
			return clustertest.Kill
		}
		return clustertest.Pass
	}
	// Only feed frames die on the node proxy: handshakes succeed, so
	// every kill is a mid-stream loss the client must replay through.
	nodePlan := func(ev clustertest.FaultEvent) clustertest.FaultAction {
		if ev.Dir != clustertest.ToNode || ev.Frame.Type != cluster.FrameFeed {
			return clustertest.Pass
		}
		mu.Lock()
		defer mu.Unlock()
		if nodeKills < 6 && rng.Intn(5) == 0 {
			nodeKills++
			return clustertest.Kill
		}
		return clustertest.Pass
	}

	srv := startStateServer(t)
	stateProxy := clustertest.StartChaosProxy(t, srv.Addr().String(), statePlan)
	tier := newTierClients(t, stateProxy.Addr(), statestore.ClientConfig{
		FlushCount:     8,
		FlushAge:       2 * time.Millisecond,
		RetryAttempts:  8,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
	})
	h := clustertest.NewHarnessConfig(t, set, equivK, clustertest.HarnessConfig{
		Router:   cluster.RouterConfig{SharedState: true, Client: cluster.ClientConfig{Reconnect: fastReconnect()}},
		NodePrep: tier.prep(),
	}, "n1")
	n2 := h.StartNode(t, "n2")
	nodeProxy := clustertest.StartChaosProxy(t, n2.Addr().String(), nodePlan)
	if err := h.Router.AddNode(cluster.Member{Name: "n2", Addr: nodeProxy.Addr()}); err != nil {
		t.Fatal(err)
	}

	split := len(txs) / 2
	feedChunks(t, h.Router, txs[:split], 50)
	syncRouter(t, h.Router)

	// Mid-stream, under fire: checkpoint n1 (its spills retry through
	// the dying state connections), then join a cold node — n1's
	// checkpointed movers warm-restore, n2's live movers drain.
	if _, failed, err := h.Node("n1").Monitor().Checkpoint(); err != nil {
		t.Fatalf("checkpoint under chaos: %v (%d devices failed)", err, failed)
	}
	flushTier(t, tier.client("n1"))
	h.Join(t, "n3")

	feedChunks(t, h.Router, txs[split:], 50)
	syncRouter(t, h.Router)
	stateProxy.SetPlan(nil)
	nodeProxy.SetPlan(nil)
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}

	if stateProxy.Kills() == 0 {
		t.Fatal("no state-server connection was ever killed — the chaos proved nothing")
	}
	if nodeProxy.Kills() == 0 {
		t.Fatal("no node connection was ever killed — the chaos proved nothing")
	}
	t.Logf("survived %d state-server kills and %d node kills", stateProxy.Kills(), nodeProxy.Kills())
	if d := cluster.ReadClusterStats().Sub(prev); d.WarmRestores == 0 {
		t.Fatalf("the mid-chaos join never warm-restored: %+v", d)
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
}

// TestChaosStateTierPartitionDegradesLossy pins the degradation mode the
// tentpole promises: with the state server unreachable, the feed path's
// spill Puts fail fast (bounded queue, ErrQueueFull) instead of
// blocking, and after the partition heals the queued tail still lands.
func TestChaosStateTierPartitionDegradesLossy(t *testing.T) {
	srv := startStateServer(t)
	proxy := clustertest.StartChaosProxy(t, srv.Addr().String(), nil)
	c, err := statestore.Dial(proxy.Addr(), statestore.ClientConfig{
		MaxPending:     8,
		FlushCount:     4,
		FlushAge:       2 * time.Millisecond,
		RetryAttempts:  1,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
		RPCTimeout:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	proxy.Partition()
	start := time.Now()
	full := 0
	for i := 0; i < 64; i++ {
		err := c.Put(fmt.Sprintf("10.9.0.%d", i), []byte("state"))
		if errors.Is(err, statestore.ErrQueueFull) {
			full++
		} else if err != nil {
			t.Fatalf("unexpected Put error: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("64 Puts took %v across a partition — the feed path must not block", elapsed)
	}
	if full == 0 {
		t.Fatal("the bounded queue never rejected a Put during the partition")
	}
	waitFailures := time.Now().Add(5 * time.Second)
	for c.Stats().FlushFailures == 0 {
		if time.Now().After(waitFailures) {
			t.Fatal("the flusher never reported a failure during the partition")
		}
		time.Sleep(time.Millisecond)
	}

	// Heal: the surviving queue drains and the tier catches up.
	proxy.Heal()
	flushTier(t, c)
	if got := srv.Len(); got == 0 {
		t.Fatal("no queued spill survived the partition")
	} else if got > 8 {
		t.Fatalf("server holds %d devices, queue bound was 8", got)
	}
	t.Logf("partition: %d fail-fast rejections, %d devices recovered after heal", full, srv.Len())
}

// BenchmarkWarmRestoreVsDrain times AddNode for a cold node joining a
// one-node cluster whose whole population moves: "drain" pays the
// two-phase handoff (export, replay, import) per mover, "warmrestore"
// flips routes against a checkpointed shared tier and pays nothing up
// front. The untimed setup (training is shared, but feeding is not)
// dominates wall clock, so CI runs this with a small -benchtime count.
func BenchmarkWarmRestoreVsDrain(b *testing.B) {
	set, ds := clustertest.TrainedSet(b)
	txs, _ := clustertest.Workload(b, ds, 24, 1500)

	run := func(b *testing.B, warm bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			var tier *tierClients
			cfg := clustertest.HarnessConfig{}
			if warm {
				srv := startStateServer(b)
				tier = newTierClients(b, srv.Addr().String(), statestore.ClientConfig{})
				cfg.Router = cluster.RouterConfig{SharedState: true}
				cfg.NodePrep = tier.prep()
			}
			h := clustertest.NewHarnessConfig(b, set, equivK, cfg, "n1")
			feedChunks(b, h.Router, txs, 500)
			syncRouter(b, h.Router)
			if warm {
				if _, failed, err := h.Node("n1").Monitor().Checkpoint(); err != nil {
					b.Fatalf("checkpoint: %v (%d devices failed)", err, failed)
				}
				flushTier(b, tier.client("n1"))
			}
			n2 := h.StartNode(b, "n2")
			member := cluster.Member{Name: "n2", Addr: n2.Addr().String()}
			b.StartTimer()
			if err := h.Router.AddNode(member); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			h.Close()
		}
	}

	b.Run("drain", func(b *testing.B) { run(b, false) })
	b.Run("warmrestore", func(b *testing.B) { run(b, true) })
}
