package cluster_test

import (
	"fmt"
	"testing"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
	"webtxprofile/internal/weblog"
)

// TestWireNegotiationMatrix runs one live node/client pair per corner of
// the version matrix and asserts the hello exchange lands on
// min(client, node) — then proves the connection actually works at that
// version by feeding a real workload through it.
func TestWireNegotiationMatrix(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 3, 300)
	cases := []struct {
		nodeMax, clientMax, want int
	}{
		{0, 0, cluster.WireV2}, // both default to the highest version
		{0, 1, cluster.WireV1}, // v1 client against a v2 node
		{1, 0, cluster.WireV1}, // v2 client against a v1-capped node
		{1, 1, cluster.WireV1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("node%d_client%d", tc.nodeMax, tc.clientMax), func(t *testing.T) {
			n, err := cluster.ListenNode("127.0.0.1:0", set,
				cluster.NodeConfig{Name: "n1", K: 2, MaxWire: tc.nodeMax})
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			c, err := cluster.DialNodeWire(n.Addr().String(), nil, tc.clientMax)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Wire() != tc.want {
				t.Fatalf("negotiated wire %d, want %d", c.Wire(), tc.want)
			}
			if err := c.Feed(txs); err != nil {
				t.Fatalf("feed at wire %d: %v", c.Wire(), err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, err := c.Devices(); err != nil || got != 3 {
				t.Fatalf("node tracks %d devices (err %v), want 3", got, err)
			}
		})
	}
}

// TestWireMixedClientsOneNode pins that the wire version is a
// per-connection property: a v1 and a v2 client feeding the same node
// concurrently-held connections must both land their transactions.
func TestWireMixedClientsOneNode(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, devices := clustertest.Workload(t, ds, 4, 400)
	n, err := cluster.ListenNode("127.0.0.1:0", set, cluster.NodeConfig{Name: "n1", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	v1, err := cluster.DialNodeWire(n.Addr().String(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := cluster.DialNodeWire(n.Addr().String(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v1.Wire() != cluster.WireV1 || v2.Wire() != cluster.WireV2 {
		t.Fatalf("negotiated wires %d and %d, want 1 and 2", v1.Wire(), v2.Wire())
	}

	// Split the workload by device so each connection keeps the
	// per-device ordering contract, half the devices per wire version.
	owner := map[string]*cluster.NodeClient{}
	for i, d := range devices {
		if i%2 == 0 {
			owner[d] = v1
		} else {
			owner[d] = v2
		}
	}
	for _, tx := range txs {
		if err := owner[tx.SourceIP].Feed([]weblog.Transaction{tx}); err != nil {
			t.Fatal(err)
		}
	}
	// Flush both connections: each flush is the delivery barrier for the
	// feeds queued on its own connection.
	if err := v1.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := v2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, err := v1.Devices(); err != nil || got != len(devices) {
		t.Fatalf("node tracks %d devices (err %v), want %d", got, err, len(devices))
	}
}

// TestWireFeedRejectsInvalidRecord pins server-side validation on the
// binary feed path: a transaction that fails Validate must be refused as
// an error reply, not fed or dropped silently.
func TestWireFeedRejectsInvalidRecord(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 2, 10)
	n, err := cluster.ListenNode("127.0.0.1:0", set, cluster.NodeConfig{Name: "n1", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c, err := cluster.DialNodeWire(n.Addr().String(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := txs[0]
	bad.UserID = ""
	if err := c.FeedSync([]weblog.Transaction{txs[1], bad}); err == nil {
		t.Fatal("feed with an invalid record succeeded, want error reply")
	}
	// The connection must survive a refused frame.
	if err := c.FeedSync(txs[:1]); err != nil {
		t.Fatalf("feed after refused frame: %v", err)
	}
}
