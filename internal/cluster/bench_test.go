package cluster_test

import (
	"testing"
	"time"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
	"webtxprofile/internal/weblog"
)

// benchNodeFeed measures client→node feed throughput over loopback TCP
// at the given wire-version cap (transactions/op = 1): encode, frame,
// decode and FeedBatch into the node's monitor, with the reply awaited
// per batch.
func benchNodeFeed(b *testing.B, maxWire int) {
	set, ds := clustertest.TrainedSet(b)
	base, _ := clustertest.Workload(b, ds, 64, 4096)
	span := base[len(base)-1].Timestamp.Sub(base[0].Timestamp) + time.Hour

	n, err := cluster.ListenNode("127.0.0.1:0", set, cluster.NodeConfig{Name: "bench", K: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	c, err := cluster.DialNodeWire(n.Addr().String(), nil, maxWire)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if c.Wire() != maxWire {
		b.Fatalf("negotiated wire %d, want %d", c.Wire(), maxWire)
	}

	const batch = 512
	buf := make([]weblog.Transaction, 0, batch)
	b.ResetTimer()
	fed := 0
	for fed < b.N {
		// Replay the workload in laps, each lap shifted forward so
		// per-device timestamps stay non-decreasing.
		buf = buf[:0]
		for len(buf) < batch && fed+len(buf) < b.N {
			i := fed + len(buf)
			tx := base[i%len(base)]
			tx.Timestamp = tx.Timestamp.Add(time.Duration(i/len(base)) * span)
			buf = append(buf, tx)
		}
		if err := c.Feed(buf); err != nil {
			b.Fatal(err)
		}
		fed += len(buf)
	}
	b.StopTimer()
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNodeFeed compares cluster feed throughput across the two wire
// encodings: v1 JSON frames carrying log lines versus v2 binary frames
// carrying zero-copy transaction records.
func BenchmarkNodeFeed(b *testing.B) {
	b.Run("wire1", func(b *testing.B) { benchNodeFeed(b, cluster.WireV1) })
	b.Run("wire2", func(b *testing.B) { benchNodeFeed(b, cluster.WireV2) })
}
