package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"webtxprofile/internal/core"
	"webtxprofile/internal/weblog"
)

// NodeConfig configures one cluster member.
type NodeConfig struct {
	// Name identifies the node in the membership view and in alert tags.
	// Required, and must be unique across the cluster (rendezvous
	// placement hashes it).
	Name string
	// K is the consecutive-window identification threshold of the node's
	// monitor (default 1, as in core).
	K int
	// Monitor tunes the node's monitor (sharding, eviction, spill).
	Monitor core.MonitorConfig
	// OnAlert, when non-nil, is invoked for every alert in addition to
	// the wire push — a local tap for logging daemons. Called from the
	// monitor's delivery goroutine; must not block for long.
	OnAlert func(core.Alert)
	// MaxWire caps the wire version this node will negotiate (default
	// MaxWireVersion). Setting 1 forces JSON frames even with v2-capable
	// peers — an escape hatch for debugging and mixed-version rollouts.
	MaxWire int
	// WriteTimeout bounds every frame write to a connection (default
	// 30s). It is what keeps a stalled peer from wedging the node: a
	// full TCP buffer blocks, it does not error, so without a deadline
	// one subscriber that stops reading would stall its outbox goroutine
	// forever. On timeout the write errors, the connection is dropped,
	// and the alert stream moves on.
	WriteTimeout time.Duration
	// AlertRing is how many recent alerts the node retains for cursor
	// resubscription (default 8192). Every alert is pushed with the
	// node's alert sequence number; a client that reconnects sends the
	// last sequence it saw and the node replays the ring entries past it,
	// so a silently dying connection loses no alerts as long as the
	// client returns within the ring's horizon. It also bounds each
	// subscriber's outbox: a subscriber that falls a full ring behind is
	// dropped (its reconnect replays from the ring).
	AlertRing int
	// DedupWindow is how many recently applied feed sequence numbers the
	// node remembers per named client (default 8192). A reconnecting
	// client replays its unacknowledged feed frames; any whose (client,
	// seq) is already in the window is acknowledged without feeding the
	// monitor twice — the node-side half of exactly-once replay. Size it
	// at least as large as the clients' replay queues.
	DedupWindow int
	// ErrorLog receives connection-level diagnostics; nil discards them.
	ErrorLog *log.Logger
}

// Node is one cluster member: a TCP server exposing its core.Monitor's
// Feed/FeedBatch, ExportDevices/ImportShard and Flush over the
// length-prefixed frame protocol, and pushing every alert to subscribed
// connections tagged with the node's name. A node is passive — it holds
// no membership view and trusts its router(s) to route transactions and
// drains correctly; the placement/drain guarantees live in Router.
type Node struct {
	name         string
	ln           net.Listener
	mon          *core.Monitor
	tap          func(core.Alert)
	writeTimeout time.Duration
	maxWire      int
	ringCap      int
	dedupWindow  int
	elog         *log.Logger

	mu      sync.Mutex
	conns   map[net.Conn]*frameWriter
	clients map[net.Conn]string // hello Client id per connection
	stopped bool
	closed  bool

	// amu guards the alert ring and the subscriber set together, so
	// registering a subscriber (snapshot the cursor, seed the backlog)
	// is atomic against the fanout appending new alerts — no alert can
	// fall between a subscriber's backlog and its live feed.
	amu  sync.Mutex
	ring alertRing
	subs map[net.Conn]*subscriber

	// smu guards the per-client feed dedup sessions.
	smu      sync.Mutex
	sessions map[string]*dedupWindow
	sessFIFO []string

	wg sync.WaitGroup
}

// maxClientSessions bounds the dedup-session map: a node keeps replay
// dedup state for this many distinct named clients (routers), evicting
// the oldest beyond it. Far above any realistic router-replica count.
const maxClientSessions = 64

// ListenNode starts a cluster node on addr over a trained profile set.
// The node owns its monitor; use Monitor for lifecycle operations the
// protocol does not cover (Checkpoint, local stats).
func ListenNode(addr string, set *core.ProfileSet, cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("cluster: node needs a name")
	}
	n := &Node{
		name:         cfg.Name,
		tap:          cfg.OnAlert,
		writeTimeout: cfg.WriteTimeout,
		maxWire:      cfg.MaxWire,
		ringCap:      cfg.AlertRing,
		dedupWindow:  cfg.DedupWindow,
		elog:         cfg.ErrorLog,
		conns:        make(map[net.Conn]*frameWriter),
		clients:      make(map[net.Conn]string),
		subs:         make(map[net.Conn]*subscriber),
		sessions:     make(map[string]*dedupWindow),
	}
	if n.writeTimeout <= 0 {
		n.writeTimeout = 30 * time.Second
	}
	if n.maxWire <= 0 || n.maxWire > MaxWireVersion {
		n.maxWire = MaxWireVersion
	}
	if n.ringCap <= 0 {
		n.ringCap = 8192
	}
	if n.dedupWindow <= 0 {
		n.dedupWindow = 8192
	}
	n.ring.entries = make([]ringAlert, n.ringCap)
	if n.elog == nil {
		n.elog = log.New(io.Discard, "", 0)
	}
	mon, err := core.NewMonitorWithConfig(set, cfg.K, n.fanout, cfg.Monitor)
	if err != nil {
		return nil, err
	}
	n.mon = mon
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		mon.Close()
		return nil, fmt.Errorf("cluster: node %s: listen %s: %w", cfg.Name, addr, err)
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Name returns the node's cluster name.
func (n *Node) Name() string { return n.name }

// Addr returns the bound address (useful with ":0").
func (n *Node) Addr() net.Addr { return n.ln.Addr() }

// Monitor exposes the node's monitor for lifecycle operations outside the
// wire protocol (Checkpoint on shutdown, Devices for stats).
func (n *Node) Monitor() *core.Monitor { return n.mon }

// Stop stops accepting, closes every connection and waits for the
// connection goroutines — but leaves the monitor alive, so the owner can
// still Flush (lossy end-of-stream alerts) or Checkpoint (durable
// shutdown) it afterwards. Idempotent.
func (n *Node) Stop() error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.stopped = true
	err := n.ln.Close()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.amu.Lock()
	for _, sub := range n.subs {
		sub.close()
	}
	n.amu.Unlock()
	n.wg.Wait()
	return err
}

// Close is Stop plus closing the monitor (remaining alerts are delivered
// first). It does not flush pending windows — a node being drained has
// already exported its devices, and a crashing node should not emit
// synthetic end-of-stream alerts; call Stop then Monitor().Flush() first
// for lossy end-of-stream semantics. Idempotent.
func (n *Node) Close() error {
	err := n.Stop()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return err
	}
	n.closed = true
	n.mu.Unlock()
	n.mon.Close()
	return err
}

// fanout is the monitor's alert callback: stamp the alert with the
// node's next alert sequence number, retain it in the ring for cursor
// resubscription, and enqueue it to every subscriber's outbox (tagged
// with this node's name), plus the local tap if any. Runs on the
// monitor's single delivery goroutine, so ring order is per-device alert
// order; each outbox writes in queue order, so every subscriber sees
// that order too. The actual socket writes happen on the outbox
// goroutines — a slow subscriber backs up its own outbox (and is dropped
// when it falls a full ring behind), never the monitor.
func (n *Node) fanout(a core.Alert) {
	if n.tap != nil {
		n.tap(a)
	}
	na := &NodeAlert{Node: n.name, Alert: a}
	n.amu.Lock()
	seq := n.ring.push(*na)
	na.Seq = seq
	subs := make([]*subscriber, 0, len(n.subs))
	for _, sub := range n.subs {
		subs = append(subs, sub)
	}
	n.amu.Unlock()
	f := Frame{Type: FrameAlert, Seq: seq, Alert: na}
	for _, sub := range subs {
		if !sub.enqueue(f, n.ringCap) {
			n.elog.Printf("cluster node %s: dropping alert subscriber %s: outbox full (%d frames behind)", n.name, sub.conn.RemoteAddr(), n.ringCap)
			n.dropSubscriber(sub.conn)
		}
	}
}

// dropSubscriber deregisters and closes one subscriber connection. The
// client's reconnect resumes from its cursor against the ring, so the
// drop costs a round trip, not alerts.
func (n *Node) dropSubscriber(conn net.Conn) {
	n.amu.Lock()
	sub := n.subs[conn]
	delete(n.subs, conn)
	n.amu.Unlock()
	if sub != nil {
		sub.close()
		conn.Close()
	}
}

// syncSubscriber blocks until conn's outbox (if it is a subscriber) has
// written everything enqueued so far — the per-connection half of the
// alert ordering barrier: Monitor.Sync guarantees the alerts reached the
// outbox, this guarantees they reached the wire, so an export or flush
// reply written afterwards is strictly later than every prior alert on
// that connection.
func (n *Node) syncSubscriber(conn net.Conn) {
	n.amu.Lock()
	sub := n.subs[conn]
	n.amu.Unlock()
	if sub != nil {
		sub.drainWait()
	}
}

// ringAlert is one retained alert: the push sequence and the frame body.
type ringAlert struct {
	seq   uint64
	alert NodeAlert
}

// alertRing retains the last cap alerts by sequence number. Guarded by
// Node.amu.
type alertRing struct {
	entries []ringAlert
	seq     uint64 // sequence of the newest entry (0 = none yet)
}

func (r *alertRing) push(a NodeAlert) uint64 {
	r.seq++
	a.Seq = r.seq // (node, seq) names this alert instance cluster-wide
	r.entries[int(r.seq)%len(r.entries)] = ringAlert{seq: r.seq, alert: a}
	return r.seq
}

// at returns the retained entry for seq; valid only while the entry is
// within the ring's horizon (the caller just pushed or checked it).
func (r *alertRing) at(seq uint64) *ringAlert {
	return &r.entries[int(seq)%len(r.entries)]
}

// after collects the retained alerts with sequence > cursor, in order,
// and reports whether the ring still covers that span (false means
// alerts older than the ring's horizon are gone — the client was away
// too long).
func (r *alertRing) after(cursor uint64) (frames []Frame, complete bool) {
	if cursor >= r.seq {
		return nil, true
	}
	oldest := uint64(1)
	if r.seq > uint64(len(r.entries)) {
		oldest = r.seq - uint64(len(r.entries)) + 1
	}
	complete = cursor+1 >= oldest
	start := cursor + 1
	if start < oldest {
		start = oldest
	}
	frames = make([]Frame, 0, r.seq-start+1)
	for s := start; s <= r.seq; s++ {
		// Copy out of the ring: the frame outlives amu, and a later push
		// may recycle the slot while the outbox is still writing.
		a := r.at(s).alert
		frames = append(frames, Frame{Type: FrameAlert, Seq: s, Alert: &a})
	}
	return frames, complete
}

// subscriber is one alert-subscribed connection's outbox: a bounded
// frame queue drained by a dedicated goroutine through the connection's
// shared frameWriter. It starts paused so the hello reply (with the
// cursor) reaches the wire before any backlog.
type subscriber struct {
	conn net.Conn
	w    *frameWriter

	mu      sync.Mutex
	cond    sync.Cond
	queue   []Frame
	paused  bool
	writing bool
	closed  bool
}

func newSubscriber(conn net.Conn, w *frameWriter, backlog []Frame) *subscriber {
	s := &subscriber{conn: conn, w: w, queue: backlog, paused: true}
	s.cond.L = &s.mu
	return s
}

// enqueue appends one frame, failing if the outbox is max frames behind.
func (s *subscriber) enqueue(f Frame, max int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return true // dying anyway; not an overflow
	}
	if len(s.queue) >= max {
		return false
	}
	s.queue = append(s.queue, f)
	s.cond.Broadcast()
	return true
}

func (s *subscriber) unpause() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drainWait blocks until everything enqueued so far is on the wire (or
// the subscriber died).
func (s *subscriber) drainWait() {
	s.mu.Lock()
	for !s.closed && (s.paused || s.writing || len(s.queue) > 0) {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// run writes queued frames in order until closed. A write failure closes
// the subscriber; the caller's deferred cleanup deregisters it.
func (s *subscriber) run(onError func(error)) {
	for {
		s.mu.Lock()
		for !s.closed && (s.paused || len(s.queue) == 0) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		f := s.queue[0]
		s.queue = s.queue[1:]
		s.writing = true
		s.mu.Unlock()
		err := s.w.write(f)
		s.mu.Lock()
		s.writing = false
		if err != nil {
			s.closed = true
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		if err != nil {
			onError(err)
			return
		}
	}
}

// dedupWindow remembers the last cap applied feed sequence numbers of
// one named client, so replayed feeds after a reconnect apply exactly
// once.
type dedupWindow struct {
	mu      sync.Mutex
	applied map[uint64]struct{}
	order   []uint64
	cap     int
}

// seen reports whether seq is in the applied window.
func (d *dedupWindow) seen(seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.applied[seq]
	return ok
}

// admit records seq as applied and reports whether it was new. Replayed
// duplicates return false.
func (d *dedupWindow) admit(seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.applied[seq]; dup {
		return false
	}
	d.applied[seq] = struct{}{}
	d.order = append(d.order, seq)
	if len(d.order) > d.cap {
		delete(d.applied, d.order[0])
		d.order = d.order[1:]
	}
	return true
}

// session returns (creating if needed) the dedup window for a named
// client, evicting the oldest session beyond maxClientSessions.
func (n *Node) session(client string) *dedupWindow {
	n.smu.Lock()
	defer n.smu.Unlock()
	if d, ok := n.sessions[client]; ok {
		return d
	}
	d := &dedupWindow{applied: make(map[uint64]struct{}), cap: n.dedupWindow}
	n.sessions[client] = d
	n.sessFIFO = append(n.sessFIFO, client)
	if len(n.sessFIFO) > maxClientSessions {
		delete(n.sessions, n.sessFIFO[0])
		n.sessFIFO = n.sessFIFO[1:]
	}
	return d
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w := &frameWriter{bw: bufio.NewWriter(conn), conn: conn, timeout: n.writeTimeout}
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = w
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn, w)
	}
}

// serveConn handles one connection's request frames sequentially. Replies
// and alert pushes share the connection's frame writer, so they interleave
// as whole frames.
func (n *Node) serveConn(conn net.Conn, w *frameWriter) {
	defer n.wg.Done()
	defer func() {
		n.dropSubscriber(conn)
		n.mu.Lock()
		delete(n.conns, conn)
		delete(n.clients, conn)
		n.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			if err != io.EOF {
				n.elog.Printf("cluster node %s: %s: %v", n.name, conn.RemoteAddr(), err)
			}
			return
		}
		reply, undo := n.handle(conn, f)
		if err := w.write(reply); err != nil {
			n.elog.Printf("cluster node %s: %s: write: %v", n.name, conn.RemoteAddr(), err)
			if undo != nil {
				undo()
			}
			return
		}
		if f.Type == FrameHello && reply.Type == FrameOK {
			// The negotiated version takes effect after the hello reply:
			// the reply itself is always JSON (a v1 peer must be able to
			// read it), everything later uses what was agreed. Only then
			// does the outbox start — the subscription backlog must land
			// on the wire after the reply that carries its cursor.
			w.setWire(reply.Wire)
			n.amu.Lock()
			sub := n.subs[conn]
			n.amu.Unlock()
			if sub != nil {
				sub.unpause()
			}
		}
	}
}

// handle dispatches one request frame to the monitor and builds the
// reply. A non-nil undo must be run if the reply cannot be delivered: it
// rolls the monitor back so state handed to a vanished peer is not lost
// (today only exports need this — the exported devices were already
// removed from the monitor, and an undeliverable blob would otherwise
// evaporate with the connection).
func (n *Node) handle(conn net.Conn, f Frame) (reply Frame, undo func()) {
	switch f.Type {
	case FrameHello:
		reply = Frame{Type: FrameOK, Seq: f.Seq, Node: n.name, Wire: negotiateWire(f.Wire, n.maxWire)}
		if f.Client != "" {
			n.mu.Lock()
			n.clients[conn] = f.Client
			n.mu.Unlock()
		}
		if f.Subscribe {
			n.mu.Lock()
			w := n.conns[conn]
			n.mu.Unlock()
			n.amu.Lock()
			if old := n.subs[conn]; old != nil {
				old.close() // a re-hello on the same connection replaces the outbox
			}
			var backlog []Frame
			if f.Resume {
				var complete bool
				backlog, complete = n.ring.after(f.Cursor)
				if !complete {
					n.elog.Printf("cluster node %s: %s resumes from alert %d but the ring starts later — older alerts are lost", n.name, conn.RemoteAddr(), f.Cursor)
				}
			}
			sub := newSubscriber(conn, w, backlog)
			n.subs[conn] = sub
			// The cursor in the reply is where the client will stand once
			// its backlog (queued atomically with this snapshot) drains.
			reply.Cursor = n.ring.seq
			n.amu.Unlock()
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				sub.run(func(err error) {
					n.elog.Printf("cluster node %s: dropping alert subscriber %s: %v", n.name, conn.RemoteAddr(), err)
					conn.Close()
				})
			}()
		}
		return reply, nil
	case FrameFeed:
		n.mu.Lock()
		client := n.clients[conn]
		n.mu.Unlock()
		var sess *dedupWindow
		if client != "" && f.Seq != 0 {
			sess = n.session(client)
			if f.Replay && sess.seen(f.Seq) {
				// Applied before the reconnect; the ack was what got lost.
				return Frame{Type: FrameOK, Seq: f.Seq, Count: len(f.Txs) + len(f.Lines)}, nil
			}
		}
		txs := f.Txs
		if txs == nil {
			txs = make([]weblog.Transaction, len(f.Lines))
			for i, line := range f.Lines {
				tx, err := weblog.ParseLine(line)
				if err != nil {
					// Reject the whole frame before feeding anything: a
					// feed frame is an RPC from the router, not a raw proxy
					// log — a bad record means a protocol bug, not dirty
					// input.
					return errorFrame(f.Seq, fmt.Errorf("line %d: %w", i, err)), nil
				}
				txs[i] = tx
			}
		} else {
			// Binary records decode structurally; apply the semantic
			// checks ParseLine would have run on the line path.
			for i := range txs {
				if err := txs[i].Validate(); err != nil {
					return errorFrame(f.Seq, fmt.Errorf("record %d: %w", i, err)), nil
				}
			}
		}
		if err := n.mon.FeedBatch(txs); err != nil {
			return errorFrame(f.Seq, err), nil
		}
		if sess != nil {
			sess.admit(f.Seq)
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Count: len(txs)}, nil
	case FrameExport:
		if f.Handoff != "" {
			// Staged export: the states are held under the handoff id, so
			// no undo is needed — a lost reply is retried (idempotent) and
			// a failed move is aborted, both by the router.
			blob, count, err := n.mon.ExportStaged(f.Handoff, f.Devices)
			if err != nil {
				return errorFrame(f.Seq, err), nil
			}
			n.mon.Sync()
			n.syncSubscriber(conn)
			return Frame{Type: FrameOK, Seq: f.Seq, Blob: blob, Count: count}, nil
		}
		blob, count, err := n.mon.ExportDevices(f.Devices)
		if err != nil {
			// Partial export failure: put the exported states straight
			// back so the node keeps serving them — the router will keep
			// the devices placed here.
			if blob != nil {
				if _, ierr := n.mon.ImportShard(blob); ierr != nil {
					err = errors.Join(err, fmt.Errorf("restoring after failed export: %w", ierr))
				}
			}
			return errorFrame(f.Seq, err), nil
		}
		// Ordering barrier: every alert of the exported devices must be
		// on the wire before the reply, so the importer's alerts are
		// strictly later at the router.
		n.mon.Sync()
		n.syncSubscriber(conn)
		// If the reply cannot be written (peer gone, or the blob blows
		// the frame limit), re-adopt the devices: the router will treat
		// the export as failed and keep them placed here.
		undo := func() {
			if _, err := n.mon.ImportShard(blob); err != nil {
				n.elog.Printf("cluster node %s: restoring %d devices after undeliverable export: %v", n.name, count, err)
			}
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Blob: blob, Count: count}, undo
	case FrameImport:
		if f.Handoff != "" {
			count, err := n.mon.StageImport(f.Handoff, f.Blob)
			if err != nil {
				return errorFrame(f.Seq, err), nil
			}
			return Frame{Type: FrameOK, Seq: f.Seq, Count: count}, nil
		}
		count, err := n.mon.ImportShard(f.Blob)
		if err != nil {
			return errorFrame(f.Seq, err), nil
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Count: count}, nil
	case FrameCommit:
		count, err := n.mon.CommitHandoff(f.Handoff)
		if err != nil {
			return errorFrame(f.Seq, err), nil
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Count: count}, nil
	case FrameAbort:
		count, err := n.mon.AbortHandoff(f.Handoff)
		if err != nil {
			return errorFrame(f.Seq, err), nil
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Count: count}, nil
	case FrameList:
		names, err := n.mon.TrackedDevices()
		if err != nil {
			return errorFrame(f.Seq, err), nil
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Devices: names, Count: len(names)}, nil
	case FrameFlush:
		n.mon.Flush()
		n.syncSubscriber(conn)
		return Frame{Type: FrameOK, Seq: f.Seq}, nil
	case FrameStats:
		// Stats doubles as the router's Sync barrier: the reply must be
		// ordered after every alert raised by already-processed feeds, so
		// drain the monitor's alert pump and this connection's outbox
		// before answering — Router.Sync then guarantees those alerts
		// have reached its fan-in callback.
		n.mon.Sync()
		n.syncSubscriber(conn)
		return Frame{Type: FrameOK, Seq: f.Seq, Count: n.mon.Devices()}, nil
	default:
		return errorFrame(f.Seq, fmt.Errorf("frame type %q is not a request", f.Type)), nil
	}
}

// frameWriter serializes whole-frame writes onto one connection, shared
// by the reply path and the alert fanout. Every write runs under a
// deadline (when conn and timeout are set): a peer that stops reading
// makes the write error out instead of blocking on the kernel buffer.
// Writes start at wire v1 (JSON); setWire upgrades the connection after
// the hello exchange negotiates v2, from which point frames are encoded
// binary into a reused scratch buffer.
type frameWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	conn    net.Conn
	timeout time.Duration
	wire    int
	scratch []byte
}

// setWire fixes the connection's negotiated wire version. Ordered through
// the same lock as write: a frame already being written finishes in the
// old encoding, later frames use the new one.
func (w *frameWriter) setWire(v int) {
	w.mu.Lock()
	w.wire = v
	w.mu.Unlock()
}

func (w *frameWriter) write(f Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn != nil && w.timeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
		defer w.conn.SetWriteDeadline(time.Time{})
	}
	if w.wire >= WireV2 {
		if err := w.writeBinaryLocked(f); err != nil {
			return err
		}
	} else if err := WriteFrame(w.bw, f); err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeBinaryLocked encodes f as a wire-v2 frame into the reused scratch
// buffer and writes it with its length prefix. Runs under w.mu.
func (w *frameWriter) writeBinaryLocked(f Frame) error {
	payload, err := AppendBinaryFrame(w.scratch[:0], f)
	if err != nil {
		return err
	}
	w.scratch = payload[:0]
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("cluster: %s frame of %d bytes exceeds limit %d", f.Type, len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: writing frame header: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("cluster: writing frame payload: %w", err)
	}
	return nil
}
