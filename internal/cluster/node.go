package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"webtxprofile/internal/core"
	"webtxprofile/internal/weblog"
)

// NodeConfig configures one cluster member.
type NodeConfig struct {
	// Name identifies the node in the membership view and in alert tags.
	// Required, and must be unique across the cluster (rendezvous
	// placement hashes it).
	Name string
	// K is the consecutive-window identification threshold of the node's
	// monitor (default 1, as in core).
	K int
	// Monitor tunes the node's monitor (sharding, eviction, spill).
	Monitor core.MonitorConfig
	// OnAlert, when non-nil, is invoked for every alert in addition to
	// the wire push — a local tap for logging daemons. Called from the
	// monitor's delivery goroutine; must not block for long.
	OnAlert func(core.Alert)
	// MaxWire caps the wire version this node will negotiate (default
	// MaxWireVersion). Setting 1 forces JSON frames even with v2-capable
	// peers — an escape hatch for debugging and mixed-version rollouts.
	MaxWire int
	// WriteTimeout bounds every frame write to a connection (default
	// 30s). It is what keeps a stalled peer from wedging the node: a
	// full TCP buffer blocks, it does not error, so without a deadline
	// one subscriber that stops reading would stall the alert delivery
	// goroutine — and with it every feeder — forever. On timeout the
	// write errors, the connection is dropped, and (for subscribers) the
	// alert stream moves on.
	WriteTimeout time.Duration
	// ErrorLog receives connection-level diagnostics; nil discards them.
	ErrorLog *log.Logger
}

// Node is one cluster member: a TCP server exposing its core.Monitor's
// Feed/FeedBatch, ExportDevices/ImportShard and Flush over the
// length-prefixed frame protocol, and pushing every alert to subscribed
// connections tagged with the node's name. A node is passive — it holds
// no membership view and trusts its router(s) to route transactions and
// drains correctly; the placement/drain guarantees live in Router.
type Node struct {
	name         string
	ln           net.Listener
	mon          *core.Monitor
	tap          func(core.Alert)
	writeTimeout time.Duration
	maxWire      int
	elog         *log.Logger

	mu      sync.Mutex
	conns   map[net.Conn]*frameWriter
	subs    map[net.Conn]*frameWriter
	stopped bool
	closed  bool

	wg sync.WaitGroup
}

// ListenNode starts a cluster node on addr over a trained profile set.
// The node owns its monitor; use Monitor for lifecycle operations the
// protocol does not cover (Checkpoint, local stats).
func ListenNode(addr string, set *core.ProfileSet, cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("cluster: node needs a name")
	}
	n := &Node{
		name:         cfg.Name,
		tap:          cfg.OnAlert,
		writeTimeout: cfg.WriteTimeout,
		maxWire:      cfg.MaxWire,
		elog:         cfg.ErrorLog,
		conns:        make(map[net.Conn]*frameWriter),
		subs:         make(map[net.Conn]*frameWriter),
	}
	if n.writeTimeout <= 0 {
		n.writeTimeout = 30 * time.Second
	}
	if n.maxWire <= 0 || n.maxWire > MaxWireVersion {
		n.maxWire = MaxWireVersion
	}
	if n.elog == nil {
		n.elog = log.New(io.Discard, "", 0)
	}
	mon, err := core.NewMonitorWithConfig(set, cfg.K, n.fanout, cfg.Monitor)
	if err != nil {
		return nil, err
	}
	n.mon = mon
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		mon.Close()
		return nil, fmt.Errorf("cluster: node %s: listen %s: %w", cfg.Name, addr, err)
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Name returns the node's cluster name.
func (n *Node) Name() string { return n.name }

// Addr returns the bound address (useful with ":0").
func (n *Node) Addr() net.Addr { return n.ln.Addr() }

// Monitor exposes the node's monitor for lifecycle operations outside the
// wire protocol (Checkpoint on shutdown, Devices for stats).
func (n *Node) Monitor() *core.Monitor { return n.mon }

// Stop stops accepting, closes every connection and waits for the
// connection goroutines — but leaves the monitor alive, so the owner can
// still Flush (lossy end-of-stream alerts) or Checkpoint (durable
// shutdown) it afterwards. Idempotent.
func (n *Node) Stop() error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.stopped = true
	err := n.ln.Close()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}

// Close is Stop plus closing the monitor (remaining alerts are delivered
// first). It does not flush pending windows — a node being drained has
// already exported its devices, and a crashing node should not emit
// synthetic end-of-stream alerts; call Stop then Monitor().Flush() first
// for lossy end-of-stream semantics. Idempotent.
func (n *Node) Close() error {
	err := n.Stop()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return err
	}
	n.closed = true
	n.mu.Unlock()
	n.mon.Close()
	return err
}

// fanout is the monitor's alert callback: push to every subscribed
// connection (tagged with this node's name), and the local tap if any.
// Runs on the monitor's single delivery goroutine, so pushes preserve
// per-device alert order on each connection. A connection whose write
// fails is dropped — a subscriber that stopped reading must not stall
// identification for everyone else.
func (n *Node) fanout(a core.Alert) {
	if n.tap != nil {
		n.tap(a)
	}
	f := Frame{Type: FrameAlert, Alert: &NodeAlert{Node: n.name, Alert: a}}
	n.mu.Lock()
	writers := make([]*frameWriter, 0, len(n.subs))
	conns := make([]net.Conn, 0, len(n.subs))
	for c, w := range n.subs {
		writers = append(writers, w)
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for i, w := range writers {
		if err := w.write(f); err != nil {
			n.elog.Printf("cluster node %s: dropping alert subscriber %s: %v", n.name, conns[i].RemoteAddr(), err)
			n.mu.Lock()
			delete(n.subs, conns[i])
			n.mu.Unlock()
			conns[i].Close()
		}
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		w := &frameWriter{bw: bufio.NewWriter(conn), conn: conn, timeout: n.writeTimeout}
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = w
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn, w)
	}
}

// serveConn handles one connection's request frames sequentially. Replies
// and alert pushes share the connection's frame writer, so they interleave
// as whole frames.
func (n *Node) serveConn(conn net.Conn, w *frameWriter) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		delete(n.subs, conn)
		n.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			if err != io.EOF {
				n.elog.Printf("cluster node %s: %s: %v", n.name, conn.RemoteAddr(), err)
			}
			return
		}
		reply, undo := n.handle(conn, f)
		if err := w.write(reply); err != nil {
			n.elog.Printf("cluster node %s: %s: write: %v", n.name, conn.RemoteAddr(), err)
			if undo != nil {
				undo()
			}
			return
		}
		if f.Type == FrameHello && reply.Type == FrameOK {
			// The negotiated version takes effect after the hello reply:
			// the reply itself is always JSON (a v1 peer must be able to
			// read it), everything later uses what was agreed.
			w.setWire(reply.Wire)
		}
	}
}

// handle dispatches one request frame to the monitor and builds the
// reply. A non-nil undo must be run if the reply cannot be delivered: it
// rolls the monitor back so state handed to a vanished peer is not lost
// (today only exports need this — the exported devices were already
// removed from the monitor, and an undeliverable blob would otherwise
// evaporate with the connection).
func (n *Node) handle(conn net.Conn, f Frame) (reply Frame, undo func()) {
	switch f.Type {
	case FrameHello:
		if f.Subscribe {
			n.mu.Lock()
			n.subs[conn] = n.conns[conn]
			n.mu.Unlock()
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Node: n.name, Wire: negotiateWire(f.Wire, n.maxWire)}, nil
	case FrameFeed:
		txs := f.Txs
		if txs == nil {
			txs = make([]weblog.Transaction, len(f.Lines))
			for i, line := range f.Lines {
				tx, err := weblog.ParseLine(line)
				if err != nil {
					// Reject the whole frame before feeding anything: a
					// feed frame is an RPC from the router, not a raw proxy
					// log — a bad record means a protocol bug, not dirty
					// input.
					return errorFrame(f.Seq, fmt.Errorf("line %d: %w", i, err)), nil
				}
				txs[i] = tx
			}
		} else {
			// Binary records decode structurally; apply the semantic
			// checks ParseLine would have run on the line path.
			for i := range txs {
				if err := txs[i].Validate(); err != nil {
					return errorFrame(f.Seq, fmt.Errorf("record %d: %w", i, err)), nil
				}
			}
		}
		if err := n.mon.FeedBatch(txs); err != nil {
			return errorFrame(f.Seq, err), nil
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Count: len(txs)}, nil
	case FrameExport:
		blob, count, err := n.mon.ExportDevices(f.Devices)
		if err != nil {
			// Partial export failure: put the exported states straight
			// back so the node keeps serving them — the router will keep
			// the devices placed here.
			if blob != nil {
				if _, ierr := n.mon.ImportShard(blob); ierr != nil {
					err = errors.Join(err, fmt.Errorf("restoring after failed export: %w", ierr))
				}
			}
			return errorFrame(f.Seq, err), nil
		}
		// Ordering barrier: every alert of the exported devices must be
		// on the wire before the reply, so the importer's alerts are
		// strictly later at the router.
		n.mon.Sync()
		// If the reply cannot be written (peer gone, or the blob blows
		// the frame limit), re-adopt the devices: the router will treat
		// the export as failed and keep them placed here.
		undo := func() {
			if _, err := n.mon.ImportShard(blob); err != nil {
				n.elog.Printf("cluster node %s: restoring %d devices after undeliverable export: %v", n.name, count, err)
			}
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Blob: blob, Count: count}, undo
	case FrameImport:
		count, err := n.mon.ImportShard(f.Blob)
		if err != nil {
			return errorFrame(f.Seq, err), nil
		}
		return Frame{Type: FrameOK, Seq: f.Seq, Count: count}, nil
	case FrameFlush:
		n.mon.Flush()
		return Frame{Type: FrameOK, Seq: f.Seq}, nil
	case FrameStats:
		return Frame{Type: FrameOK, Seq: f.Seq, Count: n.mon.Devices()}, nil
	default:
		return errorFrame(f.Seq, fmt.Errorf("frame type %q is not a request", f.Type)), nil
	}
}

// frameWriter serializes whole-frame writes onto one connection, shared
// by the reply path and the alert fanout. Every write runs under a
// deadline (when conn and timeout are set): a peer that stops reading
// makes the write error out instead of blocking on the kernel buffer.
// Writes start at wire v1 (JSON); setWire upgrades the connection after
// the hello exchange negotiates v2, from which point frames are encoded
// binary into a reused scratch buffer.
type frameWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	conn    net.Conn
	timeout time.Duration
	wire    int
	scratch []byte
}

// setWire fixes the connection's negotiated wire version. Ordered through
// the same lock as write: a frame already being written finishes in the
// old encoding, later frames use the new one.
func (w *frameWriter) setWire(v int) {
	w.mu.Lock()
	w.wire = v
	w.mu.Unlock()
}

func (w *frameWriter) write(f Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.conn != nil && w.timeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
		defer w.conn.SetWriteDeadline(time.Time{})
	}
	if w.wire >= WireV2 {
		if err := w.writeBinaryLocked(f); err != nil {
			return err
		}
	} else if err := WriteFrame(w.bw, f); err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeBinaryLocked encodes f as a wire-v2 frame into the reused scratch
// buffer and writes it with its length prefix. Runs under w.mu.
func (w *frameWriter) writeBinaryLocked(f Frame) error {
	payload, err := AppendBinaryFrame(w.scratch[:0], f)
	if err != nil {
		return err
	}
	w.scratch = payload[:0]
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("cluster: %s frame of %d bytes exceeds limit %d", f.Type, len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: writing frame header: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("cluster: writing frame payload: %w", err)
	}
	return nil
}
