package cluster

import "sort"

// Replicated routers share no coordinator: placement is deterministic
// rendezvous hashing, so the only state two routers can disagree on is
// the set of routing-table overrides — devices pinned somewhere other
// than their hash owner after a failed or refused drain. Overrides are
// reconciled as a last-writer-wins register per device: each carries a
// version drawn from a per-router monotonic counter, merge keeps the
// higher version, and ties break on the lexicographically smaller node
// name so any two replicas converge on identical tables regardless of
// exchange order (TestOverrideTableConvergence).

// Override pins one device to a node in defiance of its rendezvous
// placement. An empty Node is a tombstone: the pin was lifted and the
// hash owner is authoritative again. Tombstones travel through gossip
// like live pins, so a lifted pin cannot resurrect from a stale peer.
type Override struct {
	Device string `json:"device"`
	Node   string `json:"node,omitempty"`
	// Ver orders writes to the same device's register. Routers stamp
	// overrides from a counter kept strictly above every version they
	// have merged, so a router's own new writes always dominate state it
	// has already seen.
	Ver uint64 `json:"ver"`
}

// OverrideTable is the LWW-register map of device overrides. Zero value
// is ready to use. Not safe for concurrent use; the Router guards its
// table with its balance mutex.
type OverrideTable struct {
	m map[string]Override
}

// Get returns the live pin for device, if any. Tombstoned and absent
// devices both report ok == false.
func (t *OverrideTable) Get(device string) (node string, ok bool) {
	o, ok := t.m[device]
	if !ok || o.Node == "" {
		return "", false
	}
	return o.Node, true
}

// Set records an override written locally at version ver. It applies the
// same merge rule as Merge, so a local write racing a newer gossiped one
// loses cleanly.
func (t *OverrideTable) Set(o Override) bool {
	if t.m == nil {
		t.m = make(map[string]Override)
	}
	cur, ok := t.m[o.Device]
	if ok && !supersedes(o, cur) {
		return false
	}
	t.m[o.Device] = o
	if o.Node == "" {
		statOverrideTombstones.Add(1)
	} else {
		statOverrideEntries.Add(1)
	}
	return true
}

// Merge folds every entry of the snapshot into the table, returning the
// devices whose register changed. Merge is commutative, associative and
// idempotent — the CRDT property the convergence test asserts.
func (t *OverrideTable) Merge(entries []Override) (changed []string) {
	for _, o := range entries {
		if t.Set(o) {
			changed = append(changed, o.Device)
		}
	}
	return changed
}

// Snapshot returns every register (live pins and tombstones), sorted by
// device for deterministic wire payloads.
func (t *OverrideTable) Snapshot() []Override {
	if len(t.m) == 0 {
		return nil
	}
	out := make([]Override, 0, len(t.m))
	for _, o := range t.m {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// MaxVer returns the highest version in the table; a router seeds its
// write counter above this after every merge.
func (t *OverrideTable) MaxVer() uint64 {
	var max uint64
	for _, o := range t.m {
		if o.Ver > max {
			max = o.Ver
		}
	}
	return max
}

// supersedes reports whether register write a beats current register b.
// Higher version wins; equal versions break on the smaller node name, so
// two replicas that somehow stamp the same version still converge.
func supersedes(a, b Override) bool {
	if a.Ver != b.Ver {
		return a.Ver > b.Ver
	}
	return a.Node < b.Node
}

// GossipState is one router's shareable view: its membership and every
// override register. A gossip exchange is symmetric anti-entropy — the
// request carries the caller's state, the ok reply the responder's, and
// both sides merge what they received.
type GossipState struct {
	Membership Membership `json:"membership"`
	Overrides  []Override `json:"overrides,omitempty"`
}
