package clustertest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/cluster"
)

// ChaosSeed returns this run's fault-injection seed: WTP_CHAOS_SEED when
// set, otherwise derived from the clock. The seed is always logged, so a
// failing chaos run replays exactly by exporting it — every scheduled
// fault in a test derives from a PRNG seeded with this value.
func ChaosSeed(tb testing.TB) int64 {
	tb.Helper()
	seed := time.Now().UnixNano()
	if s := os.Getenv("WTP_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			tb.Fatalf("WTP_CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	tb.Logf("chaos seed: %d (replay with WTP_CHAOS_SEED=%d)", seed, seed)
	return seed
}

// Dir is the direction of a frame through the proxy.
type Dir int

const (
	// ToNode is client→node traffic (requests, feeds).
	ToNode Dir = iota
	// ToClient is node→client traffic (replies, alert pushes).
	ToClient
)

func (d Dir) String() string {
	if d == ToNode {
		return "to-node"
	}
	return "to-client"
}

// FaultEvent describes one frame about to be forwarded.
type FaultEvent struct {
	// Conn is the 1-based ordinal of the proxied connection (dials
	// through the proxy since it started, reconnects included).
	Conn int
	// Seq is the 1-based ordinal of this frame in this direction on this
	// connection.
	Seq int
	// Dir is the frame's direction.
	Dir Dir
	// Frame is a decoded copy, for classification only — the proxy
	// forwards the original bytes, so inspecting it cannot corrupt the
	// stream. An undecodable frame still flows (Frame is zero-valued).
	Frame cluster.Frame
}

// FaultAction is a FaultPlan's verdict on one frame.
type FaultAction int

const (
	// Pass forwards the frame unchanged.
	Pass FaultAction = iota
	// Drop swallows this frame and keeps the connection open — a lost
	// message (e.g. a dropped acknowledgement).
	Drop
	// Kill closes the connection with the frame undelivered — a crash or
	// connection reset at an exact protocol step.
	Kill
)

// FaultPlan schedules faults: called for every frame in both directions,
// it returns what happens to it. Called concurrently from the proxy's
// pump goroutines — plans carrying state must lock. Determinism comes
// from the caller: derive every probabilistic choice from a ChaosSeed'ed
// PRNG (guarded by the same lock) and the run replays from its seed.
type FaultPlan func(FaultEvent) FaultAction

// ChaosProxy is a frame-aware TCP proxy between a NodeClient (or
// Router) and a real Node: it decodes each length-prefixed frame for the
// FaultPlan, then forwards the original bytes. Faults are injected at
// exact protocol steps — "kill the connection carrying the third feed",
// "drop the import acknowledgement" — which is what makes the chaos
// suites deterministic where timer-based injection would race.
//
// Partition() severs the node completely (connections die, redials
// accepted then instantly closed) until Heal().
type ChaosProxy struct {
	backend string
	ln      net.Listener
	wg      sync.WaitGroup

	mu          sync.Mutex
	plan        FaultPlan
	conns       map[net.Conn]net.Conn // client conn → backend conn
	nconn       int
	kills       int
	drops       int
	partitioned bool
	closed      bool
}

// StartChaosProxy starts a proxy on loopback in front of backend.
// plan may be nil (all frames pass until SetPlan).
func StartChaosProxy(tb testing.TB, backend string, plan FaultPlan) *ChaosProxy {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	p := &ChaosProxy{backend: backend, ln: ln, plan: plan, conns: make(map[net.Conn]net.Conn)}
	p.wg.Add(1)
	go p.acceptLoop()
	tb.Cleanup(p.Close)
	return p
}

// Addr returns the proxy's listen address — what the router dials.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// SetPlan swaps the fault plan (nil = pass everything).
func (p *ChaosProxy) SetPlan(plan FaultPlan) {
	p.mu.Lock()
	p.plan = plan
	p.mu.Unlock()
}

// Kills reports connections killed by plan verdicts or Partition.
func (p *ChaosProxy) Kills() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kills
}

// Drops reports frames swallowed by plan verdicts.
func (p *ChaosProxy) Drops() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

// Partition cuts the node off: every live proxied connection is killed
// and new dials are accepted and instantly closed (the client sees a
// node that answers TCP but speaks nothing — a one-way partition's
// observable half) until Heal.
func (p *ChaosProxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	for c, b := range p.conns {
		c.Close()
		b.Close()
		p.kills++
	}
	p.mu.Unlock()
}

// Heal ends a Partition; the next dial through the proxy reaches the
// node again.
func (p *ChaosProxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// Close stops the proxy and severs every proxied connection. Idempotent.
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c, b := range p.conns {
		c.Close()
		b.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *ChaosProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.partitioned || p.closed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.nconn++
		id := p.nconn
		p.mu.Unlock()

		backend, err := net.Dial("tcp", p.backend)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns[conn] = backend
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(conn, backend, id, ToNode)
		go p.pump(backend, conn, id, ToClient)
	}
}

// pump forwards frames src→dst, consulting the plan per frame. Closing
// either socket makes both pumps exit (the reader errors out).
func (p *ChaosProxy) pump(src, dst net.Conn, id int, dir Dir) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.mu.Lock()
		if dir == ToNode { // one side owns the bookkeeping
			if b, ok := p.conns[src]; ok && b == dst {
				delete(p.conns, src)
			}
		}
		p.mu.Unlock()
	}()
	br := bufio.NewReader(src)
	seq := 0
	for {
		raw, err := readRawFrame(br)
		if err != nil {
			return
		}
		seq++
		ev := FaultEvent{Conn: id, Seq: seq, Dir: dir}
		// Classification decodes a copy; the original bytes are what get
		// forwarded, so a decode failure just means an unclassified frame.
		if f, err := cluster.ReadFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
			ev.Frame = f
		}
		p.mu.Lock()
		plan := p.plan
		p.mu.Unlock()
		action := Pass
		if plan != nil {
			action = plan(ev)
		}
		switch action {
		case Drop:
			p.mu.Lock()
			p.drops++
			p.mu.Unlock()
			continue
		case Kill:
			p.mu.Lock()
			p.kills++
			p.mu.Unlock()
			return
		}
		if _, err := dst.Write(raw); err != nil {
			return
		}
	}
}

// readRawFrame reads one length-prefixed frame and returns its full wire
// bytes (header included), ready to forward verbatim.
func readRawFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > cluster.MaxFrameBytes {
		return nil, fmt.Errorf("chaosproxy: frame length %d out of range", n)
	}
	raw := make([]byte, 4+int(n))
	copy(raw, hdr[:])
	if _, err := io.ReadFull(br, raw[4:]); err != nil {
		return nil, err
	}
	return raw, nil
}
