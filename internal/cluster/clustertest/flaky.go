package clustertest

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"webtxprofile/internal/cluster"
)

// FlakyMode selects how a FlakyNode misbehaves.
type FlakyMode int

const (
	// FailImport answers every import with an error frame — a node whose
	// monitor refuses the blob (version drift, corrupt state).
	FailImport FlakyMode = iota
	// DieOnImport drops the connection upon receiving an import frame —
	// a node crashing mid-ImportShard.
	DieOnImport
)

// FlakyNode is a protocol-conformant impostor for fault-injection tests:
// it completes the hello handshake and answers feeds and stats, but fails
// shard imports per its mode. Building it on the real wire functions
// keeps the router's failure handling tested against the actual protocol,
// with no test hooks inside the production node.
type FlakyNode struct {
	name string
	mode FlakyMode
	ln   net.Listener
	wg   sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	imports int
}

// StartFlakyNode listens on loopback and serves the flaky protocol until
// the test ends.
func StartFlakyNode(tb testing.TB, name string, mode FlakyMode) *FlakyNode {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	f := &FlakyNode{name: name, mode: mode, ln: ln}
	f.wg.Add(1)
	go f.acceptLoop()
	tb.Cleanup(f.Close)
	return f
}

// Name returns the impostor's cluster name.
func (f *FlakyNode) Name() string { return f.name }

// Addr returns the bound address.
func (f *FlakyNode) Addr() string { return f.ln.Addr().String() }

// Imports reports how many import frames arrived — the drains attempted
// against this node.
func (f *FlakyNode) Imports() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.imports
}

// Close stops the impostor. Idempotent.
func (f *FlakyNode) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	f.ln.Close()
	f.wg.Wait()
}

func (f *FlakyNode) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.serve(conn)
	}
}

func (f *FlakyNode) serve(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	reply := func(fr cluster.Frame) bool {
		if err := cluster.WriteFrame(bw, fr); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	for {
		fr, err := cluster.ReadFrame(br)
		if err != nil {
			if err != io.EOF {
				_ = err // connection torn down mid-frame; nothing to assert
			}
			return
		}
		switch fr.Type {
		case cluster.FrameHello:
			if !reply(cluster.Frame{Type: cluster.FrameOK, Seq: fr.Seq, Node: f.name}) {
				return
			}
		case cluster.FrameFeed:
			// Accept and discard: a black hole, but the router only feeds
			// this node devices it successfully imported — which is never.
			if !reply(cluster.Frame{Type: cluster.FrameOK, Seq: fr.Seq, Count: len(fr.Lines)}) {
				return
			}
		case cluster.FrameImport:
			f.mu.Lock()
			f.imports++
			f.mu.Unlock()
			if f.mode == DieOnImport {
				return // connection drops with the RPC in flight
			}
			if !reply(cluster.Frame{Type: cluster.FrameError, Seq: fr.Seq,
				Error: errors.New("injected import failure").Error()}) {
				return
			}
		case cluster.FrameFlush, cluster.FrameStats:
			if !reply(cluster.Frame{Type: cluster.FrameOK, Seq: fr.Seq}) {
				return
			}
		default:
			if !reply(cluster.Frame{Type: cluster.FrameError, Seq: fr.Seq, Error: "flaky node: unsupported"}) {
				return
			}
		}
	}
}
