// Package clustertest is the in-process multi-node test harness for the
// cluster router: it spins up real Nodes on loopback TCP, wires a Router
// with a recording alert sink, generates normalized workloads, and
// computes single-monitor reference alert sequences — the shared fixture
// of the equivalence, chaos and regression suites, reusable by future
// PRs. Everything runs in one process so the suites work under -race and
// need no external orchestration.
package clustertest

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/core"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
	"webtxprofile/internal/weblog"
)

// trainedSet is built once per test binary: training dominates the cost
// of every cluster suite, the clusters under test are cheap.
var (
	trainedOnce sync.Once
	trainedSet  *core.ProfileSet
	trainedDS   *weblog.Dataset
	trainedErr  error
)

// TrainedSet returns the shared compact profile set and its held-out test
// dataset (the workload source), training them on first use.
func TrainedSet(tb testing.TB) (*core.ProfileSet, *weblog.Dataset) {
	tb.Helper()
	trainedOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Users = 6
		cfg.SmallUsers = 1
		cfg.Devices = 5
		cfg.Weeks = 3
		cfg.Services = 150
		cfg.Archetypes = 6
		cfg.ConfusableUsers = 0
		cfg.ServicesPerUserMin = 10
		cfg.ServicesPerUserMax = 18
		cfg.WeeklyTxMedian = 1600
		cfg.WeeklyTxSigma = 0.4
		cfg.MinKeptTx = 2600
		g, err := synth.NewGenerator(cfg)
		if err != nil {
			trainedErr = err
			return
		}
		trainedSet, trainedDS, trainedErr = core.Train(g.Generate(),
			core.Config{MaxTrainWindows: 300, Workers: 2, Train: svm.TrainConfig{CacheMB: 16}})
	})
	if trainedErr != nil {
		tb.Fatal(trainedErr)
	}
	return trainedSet, trainedDS
}

// Workload fans the dataset's chronological transactions out over n
// synthetic devices round-robin (every device sees a mix of users, each
// device's subsequence stays time-ordered) and normalizes each
// transaction through the wire log-line format, so a stream fed directly
// to a reference monitor is bit-for-bit the stream a cluster node parses
// off the wire (the line format keeps millisecond timestamps in UTC).
func Workload(tb testing.TB, ds *weblog.Dataset, n, limit int) ([]weblog.Transaction, []string) {
	tb.Helper()
	txs := append([]weblog.Transaction(nil), ds.Transactions...)
	sort.SliceStable(txs, func(i, j int) bool { return txs[i].Timestamp.Before(txs[j].Timestamp) })
	if len(txs) > limit {
		txs = txs[:limit]
	}
	devices := make([]string, n)
	for i := range devices {
		devices[i] = fmt.Sprintf("10.9.%d.%d", i/256, i%256)
	}
	out := make([]weblog.Transaction, len(txs))
	for i, tx := range txs {
		tx.SourceIP = devices[i%n]
		norm, err := weblog.ParseLine(tx.MarshalLine())
		if err != nil {
			tb.Fatalf("transaction does not survive the wire format: %v", err)
		}
		out[i] = norm
	}
	return out, devices
}

// Sig reduces an alert to the comparable signature the equivalence suites
// assert on: everything identity-relevant, nothing scheduling-dependent.
func Sig(a core.Alert) string {
	return fmt.Sprintf("%s|%v|%s|%s|%s|%s",
		a.Device, a.Kind, a.User, a.Previous,
		a.Event.Window.Start.Format(time.RFC3339Nano), a.Event.Identified)
}

// Recorder gathers per-device alert signatures from a cluster run, plus
// which node each alert originated on. Safe for concurrent use.
//
// Alerts carrying a node sequence number are deduplicated on
// (node, seq), so one Recorder can be shared by several router replicas
// subscribed to the same nodes: each node's stream arrives in sequence
// order on every subscription, so first-delivery-wins keeps per-device
// order intact while collapsing the copies.
type Recorder struct {
	mu      sync.Mutex
	sigs    map[string][]string
	origins map[string]int // alerts per origin node
	seen    map[string]bool
	dups    int
}

// NewRecorder returns an empty alert recorder.
func NewRecorder() *Recorder {
	return &Recorder{sigs: make(map[string][]string), origins: make(map[string]int), seen: make(map[string]bool)}
}

// Record is the Router fan-in callback.
func (r *Recorder) Record(a cluster.NodeAlert) {
	r.mu.Lock()
	if a.Seq != 0 {
		key := fmt.Sprintf("%s#%d", a.Node, a.Seq)
		if r.seen[key] {
			r.dups++
			r.mu.Unlock()
			return
		}
		r.seen[key] = true
	}
	r.sigs[a.Alert.Device] = append(r.sigs[a.Alert.Device], Sig(a.Alert))
	r.origins[a.Node]++
	r.mu.Unlock()
}

// Dups reports how many duplicate alert deliveries were collapsed —
// nonzero proves a replicated subscription actually overlapped.
func (r *Recorder) Dups() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dups
}

// Sigs returns a copy of the per-device alert signature sequences.
func (r *Recorder) Sigs() map[string][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]string, len(r.sigs))
	for d, s := range r.sigs {
		out[d] = append([]string(nil), s...)
	}
	return out
}

// Origins returns alert counts per origin node.
func (r *Recorder) Origins() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.origins))
	for n, c := range r.origins {
		out[n] = c
	}
	return out
}

// ReferenceSigs replays the workload through one never-resharded monitor
// and returns its per-device alert signature sequences — the ground truth
// every cluster topology must reproduce byte-identically.
func ReferenceSigs(tb testing.TB, set *core.ProfileSet, k int, txs []weblog.Transaction) map[string][]string {
	tb.Helper()
	var mu sync.Mutex
	got := make(map[string][]string)
	mon, err := core.NewMonitor(set, k, func(a core.Alert) {
		mu.Lock()
		got[a.Device] = append(got[a.Device], Sig(a))
		mu.Unlock()
	})
	if err != nil {
		tb.Fatal(err)
	}
	for _, tx := range txs {
		if err := mon.Feed(tx); err != nil {
			tb.Fatal(err)
		}
	}
	mon.Flush()
	mon.Close()
	return got
}

// AssertSameSigs compares per-device alert sequences and fails the test
// on any divergence. An empty reference fails too: a workload that alerts
// on nothing proves nothing.
func AssertSameSigs(tb testing.TB, want, got map[string][]string) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Errorf("alerting devices: got %d, want %d", len(got), len(want))
	}
	total := 0
	for device, w := range want {
		g := got[device]
		if len(g) != len(w) {
			tb.Errorf("device %s: %d alerts, want %d", device, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				tb.Errorf("device %s alert %d:\n got %s\nwant %s", device, i, g[i], w[i])
				break
			}
		}
		total += len(w)
	}
	if total == 0 {
		tb.Fatal("reference produced no alerts — test exercises nothing")
	}
}

// Harness is one in-process cluster: N live nodes joined to a router that
// records alerts. Close tears everything down.
type Harness struct {
	Set    *core.ProfileSet
	K      int
	Wire   int // wire-version cap for router and nodes; 0 = highest
	Router *cluster.Router
	Alerts *Recorder

	mu       sync.Mutex
	nodes    map[string]*cluster.Node
	nodeCfg  cluster.NodeConfig
	nodePrep func(name string, cfg *cluster.NodeConfig)
}

// NewHarness starts one node per name, a router, and joins the nodes in
// order. The nodes run default monitor configs (no eviction) over the
// shared trained set, at the protocol's highest wire version; use
// NewHarnessWire to pin an older one.
func NewHarness(tb testing.TB, set *core.ProfileSet, k int, names ...string) *Harness {
	tb.Helper()
	return NewHarnessWire(tb, set, k, 0, names...)
}

// NewHarnessWire is NewHarness with the cluster's wire version capped at
// wire (0 = highest): the cluster-equivalence suites run once per wire
// version, since the equivalence contract — byte-identical per-device
// alert sequences against the single-monitor reference — must hold on
// both encodings.
func NewHarnessWire(tb testing.TB, set *core.ProfileSet, k int, wire int, names ...string) *Harness {
	tb.Helper()
	return NewHarnessConfig(tb, set, k, HarnessConfig{Wire: wire}, names...)
}

// HarnessConfig customizes a harness beyond the defaults — the chaos
// suites use it to shorten the reconnect schedule and enable the staged
// and idle sweeps.
type HarnessConfig struct {
	// Wire caps the cluster's wire version (0 = highest); it overrides
	// Router.MaxWire and Node.MaxWire.
	Wire int
	// Router seeds the router's config.
	Router cluster.RouterConfig
	// Node seeds every node's config; Name, K and MaxWire are set per
	// node by the harness.
	Node cluster.NodeConfig
	// NodePrep, when set, customizes each node's config after the
	// defaults are applied and before the node starts listening — the
	// state-tier suites use it to dial a per-node spill client (each
	// monitor needs its own write-behind queue; sharing one client would
	// merge views the versioning protocol keeps apart).
	NodePrep func(name string, cfg *cluster.NodeConfig)
}

// NewHarnessConfig is NewHarness with full configuration.
func NewHarnessConfig(tb testing.TB, set *core.ProfileSet, k int, cfg HarnessConfig, names ...string) *Harness {
	tb.Helper()
	h := &Harness{
		Set:      set,
		K:        k,
		Wire:     cfg.Wire,
		Alerts:   NewRecorder(),
		nodes:    make(map[string]*cluster.Node),
		nodeCfg:  cfg.Node,
		nodePrep: cfg.NodePrep,
	}
	rcfg := cfg.Router
	rcfg.MaxWire = cfg.Wire
	h.Router = cluster.NewRouter(h.Alerts.Record, rcfg)
	for _, name := range names {
		h.Join(tb, name)
	}
	tb.Cleanup(h.Close)
	return h
}

// StartNode launches a node without joining it (the caller drives
// AddNode), registering it for teardown.
func (h *Harness) StartNode(tb testing.TB, name string) *cluster.Node {
	tb.Helper()
	cfg := h.nodeCfg
	cfg.Name, cfg.K, cfg.MaxWire = name, h.K, h.Wire
	if h.nodePrep != nil {
		h.nodePrep(name, &cfg)
	}
	n, err := cluster.ListenNode("127.0.0.1:0", h.Set, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	h.mu.Lock()
	h.nodes[name] = n
	h.mu.Unlock()
	return n
}

// Join starts a node and adds it to the router's membership.
func (h *Harness) Join(tb testing.TB, name string) *cluster.Node {
	tb.Helper()
	n := h.StartNode(tb, name)
	if err := h.Router.AddNode(cluster.Member{Name: name, Addr: n.Addr().String()}); err != nil {
		tb.Fatal(err)
	}
	return n
}

// Node returns a started node by name (nil if unknown).
func (h *Harness) Node(name string) *cluster.Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[name]
}

// Close disconnects the router and stops every node. Idempotent.
func (h *Harness) Close() {
	h.Router.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	for name, n := range h.nodes {
		n.Close()
		delete(h.nodes, name)
	}
}
