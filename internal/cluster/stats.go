package cluster

import "sync/atomic"

// Process-wide replication and rebalancing counters, mirroring the
// svm.ReadKernelStats idiom: cheap atomic increments on the hot paths,
// snapshot on demand, Sub for windowed rates. profilerd logs a snapshot
// at front-end shutdown; operators and tests read them to see the
// machinery PR 9 left dark — how often gossip runs and converges, how
// much override traffic placement repair generates, and how often
// handoffs abort and fail over.
var (
	statGossipRounds       atomic.Uint64
	statViewAdoptions      atomic.Uint64
	statOverrideEntries    atomic.Uint64
	statOverrideTombstones atomic.Uint64
	statHandoffAborts      atomic.Uint64
	statWarmRestores       atomic.Uint64
	statFailoverReroutes   atomic.Uint64
)

// ClusterStats is a point-in-time snapshot of the replication and
// rebalancing counters. All fields are cumulative since process start
// (or the last ResetClusterStats).
type ClusterStats struct {
	// GossipRounds counts anti-entropy exchanges merged into this
	// process's routers — every MergeGossip, whether or not anything
	// changed.
	GossipRounds uint64
	// ViewAdoptions counts membership views actually installed from
	// gossip (newer version, all members reachable): rounds that changed
	// this router's placement, as opposed to no-op exchanges.
	ViewAdoptions uint64
	// OverrideEntries counts placement-override pins applied to an
	// override table — locally after a settle off the hash owner, or
	// adopted from a gossip peer. Superseded writes don't count.
	OverrideEntries uint64
	// OverrideTombstones counts override removals applied (a device
	// back on its hash owner, propagated as an LWW tombstone).
	OverrideTombstones uint64
	// HandoffAborts counts two-phase handoffs that unwound — export,
	// import or commit failed and the source re-adopted its held copy.
	HandoffAborts uint64
	// WarmRestores counts devices a joining node adopted from the
	// shared state tier instead of draining a live peer
	// (RouterConfig.SharedState).
	WarmRestores uint64
	// FailoverReroutes counts devices rerouted off a dead member by
	// FailNode — no handoff; with a shared state tier their state
	// rehydrates at the new owner on their next transaction.
	FailoverReroutes uint64
}

// ReadClusterStats returns a consistent-enough snapshot (each counter is
// read atomically; the set is not a transaction).
func ReadClusterStats() ClusterStats {
	return ClusterStats{
		GossipRounds:       statGossipRounds.Load(),
		ViewAdoptions:      statViewAdoptions.Load(),
		OverrideEntries:    statOverrideEntries.Load(),
		OverrideTombstones: statOverrideTombstones.Load(),
		HandoffAborts:      statHandoffAborts.Load(),
		WarmRestores:       statWarmRestores.Load(),
		FailoverReroutes:   statFailoverReroutes.Load(),
	}
}

// ResetClusterStats zeroes every counter (tests; process-wide).
func ResetClusterStats() {
	statGossipRounds.Store(0)
	statViewAdoptions.Store(0)
	statOverrideEntries.Store(0)
	statOverrideTombstones.Store(0)
	statHandoffAborts.Store(0)
	statWarmRestores.Store(0)
	statFailoverReroutes.Store(0)
}

// Sub returns the counter deltas since prev — windowed rates for
// periodic logging.
func (s ClusterStats) Sub(prev ClusterStats) ClusterStats {
	return ClusterStats{
		GossipRounds:       s.GossipRounds - prev.GossipRounds,
		ViewAdoptions:      s.ViewAdoptions - prev.ViewAdoptions,
		OverrideEntries:    s.OverrideEntries - prev.OverrideEntries,
		OverrideTombstones: s.OverrideTombstones - prev.OverrideTombstones,
		HandoffAborts:      s.HandoffAborts - prev.HandoffAborts,
		WarmRestores:       s.WarmRestores - prev.WarmRestores,
		FailoverReroutes:   s.FailoverReroutes - prev.FailoverReroutes,
	}
}
