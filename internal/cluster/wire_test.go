package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"webtxprofile/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Seq: 1, Node: "router-1", Subscribe: true},
		{Type: FrameFeed, Seq: 2, Lines: []string{"a, b", "c, d"}},
		{Type: FrameExport, Seq: 3, Devices: []string{"10.0.0.1", "10.0.0.2"}},
		{Type: FrameImport, Seq: 4, Blob: []byte{0x1f, 0x8b, 0x00, 0xff}},
		{Type: FrameFlush, Seq: 5},
		{Type: FrameStats, Seq: 6},
		{Type: FrameOK, Seq: 7, Count: 42, Blob: []byte("state")},
		{Type: FrameError, Seq: 8, Error: "boom"},
		{Type: FrameAlert, Alert: &NodeAlert{Node: "n1", Alert: core.Alert{
			Device: "10.0.0.1", Kind: core.AlertIdentified, User: "user_3", Previous: "user_1",
		}}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%s): %v", f.Type, err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%s): %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip changed frame:\n got %+v\nwant %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	header := func(n uint32) []byte {
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], n)
		return h[:]
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"zero length", header(0), "zero-length"},
		{"oversize length", header(MaxFrameBytes + 1), "exceeds limit"},
		{"truncated header", []byte{0, 0}, "frame header"},
		{"truncated payload", append(header(10), '{', '}'), "payload"},
		{"invalid json", append(header(4), []byte("nope")...), "decoding frame"},
		{"unknown type", append(header(15), []byte(`{"type":"warp"}`)...), "unknown frame type"},
		{"empty type", append(header(2), []byte(`{}`)...), "unknown frame type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("malformed frame accepted")
			}
			if err == io.EOF {
				t.Fatal("malformed frame reported as clean EOF")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	f := Frame{Type: FrameImport, Blob: make([]byte, MaxFrameBytes)}
	if err := WriteFrame(io.Discard, f); err == nil {
		t.Error("oversize frame written")
	}
}
