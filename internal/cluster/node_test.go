package cluster_test

import (
	"bufio"
	"net"
	"testing"
	"time"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
)

// TestNodeProtocolBasics covers the node lifecycle outside the router:
// handshake naming, non-request frames, nameless configs, idempotent
// close.
func TestNodeProtocolBasics(t *testing.T) {
	set, _ := clustertest.TrainedSet(t)
	if _, err := cluster.ListenNode("127.0.0.1:0", set, cluster.NodeConfig{}); err == nil {
		t.Error("nameless node accepted")
	}
	n, err := cluster.ListenNode("127.0.0.1:0", set, cluster.NodeConfig{Name: "basics"})
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "basics" {
		t.Errorf("node name = %q", n.Name())
	}
	c, err := cluster.DialNode(n.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "basics" {
		t.Errorf("hello reported node %q, want basics", c.Name())
	}
	if err := c.Flush(); err != nil {
		t.Errorf("flush: %v", err)
	}
	c.Close()
	if err := c.Flush(); err == nil {
		t.Error("RPC on a closed client succeeded")
	}

	// A reply-typed frame sent as a request must earn an error reply,
	// not kill the connection.
	conn, err := net.Dial("tcp", n.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := cluster.WriteFrame(bw, cluster.Frame{Type: cluster.FrameOK, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	reply, err := cluster.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != cluster.FrameError || reply.Seq != 9 {
		t.Errorf("reply to non-request = %+v, want error with seq 9", reply)
	}

	if err := n.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestNodeStopLeavesMonitorUsable pins the daemon's lossy-shutdown path:
// Stop tears down the network but the monitor must still accept a Flush
// (final end-of-stream alerts) before Close — profilerd's SIGINT handling
// in -cluster mode.
func TestNodeStopLeavesMonitorUsable(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 2, 800)
	n, err := cluster.ListenNode("127.0.0.1:0", set, cluster.NodeConfig{Name: "stopper", K: equivK})
	if err != nil {
		t.Fatal(err)
	}
	// A short reconnect schedule: the point below is that RPCs against a
	// stopped node fail, not how long the default schedule retries.
	c, err := cluster.DialNodeConfig(n.Addr().String(), nil, cluster.ClientConfig{
		Reconnect: cluster.ReconnectConfig{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FeedSync(txs); err != nil {
		t.Fatal(err)
	}
	if err := n.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Devices(); err == nil {
		t.Error("RPC succeeded against a stopped node")
	}
	n.Monitor().Flush() // must not panic: the pump is still running
	if devs := n.Monitor().Devices(); devs != 2 {
		t.Errorf("monitor lost devices on Stop: %d, want 2", devs)
	}
	if err := n.Close(); err != nil {
		t.Errorf("close after stop: %v", err)
	}
}

// TestNodeRejectsBadFeedLine: a feed frame with an unparseable log line
// is refused whole — nothing before or after the bad line is fed.
func TestNodeRejectsBadFeedLine(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 1, 4)
	h := clustertest.NewHarness(t, set, equivK, "solo")
	c, err := cluster.DialNode(h.Node("solo").Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("tcp", h.Node("solo").Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	lines := []string{txs[0].MarshalLine(), "this is not a log line", txs[1].MarshalLine()}
	if err := cluster.WriteFrame(bw, cluster.Frame{Type: cluster.FrameFeed, Seq: 1, Lines: lines}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	reply, err := cluster.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != cluster.FrameError {
		t.Fatalf("bad line fed: reply %+v", reply)
	}
	if devs, err := c.Devices(); err != nil || devs != 0 {
		t.Errorf("Devices = %d, %v after rejected feed; want 0", devs, err)
	}
}
