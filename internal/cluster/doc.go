// Package cluster scales the continuous-identification monitor past one
// process: a front-end Router places every device on a member Node by
// rendezvous (highest-random-weight) hashing over a versioned membership
// view, forwards transactions to the owning node's core.Monitor, and
// rebalances on membership changes by draining exactly the devices whose
// placement changed — the multi-node deployment of the paper's
// centralized continuous-authentication service (Sect. I), where many
// proxy vantage points feed one logical identification engine.
//
// # Topology
//
// Nodes are passive shards: each runs a sharded core.Monitor over the
// same trained profile set and speaks the length-prefixed frame protocol
// (see wire.go) — feed, export, import, commit, abort, list, flush —
// plus an unsolicited alert push stream. All placement intelligence
// lives in the Router; nodes never talk to each other, and a shard
// handoff is always router-mediated: a staged export on the old owner, a
// staged import on the new, commits on both, transactions buffered in
// between. Routers are replicated (see Replication below); nodes accept
// any number of them.
//
// # Wire versions
//
// Every frame is a 4-byte big-endian length followed by a payload. Two
// payload encodings exist, distinguished per frame by the first payload
// byte:
//
//   - Wire v1: JSON (the payload starts with '{'). The original
//     protocol; feeds carry transactions as proxy log lines.
//   - Wire v2: a compact binary record (the payload starts with the
//     magic byte 0xF7). Layout: magic, version byte (2), frame type
//     code, uvarint sequence number, then tagged fields until the
//     payload ends — each field a tag byte followed by a
//     length/count-prefixed body, zero-valued fields omitted, unknown
//     tags a decode error. Feeds carry transactions as weblog binary
//     records (Frame.Txs), which the node decodes zero-copy: every
//     string field of every decoded transaction aliases the one frame
//     payload. Handoff blobs pass through untouched in both versions.
//
// The version is negotiated per connection in the hello exchange. The
// hello frame and its reply are always JSON: the client advertises the
// highest version it speaks (Frame.Wire; absent means v1, so an old
// peer is negotiated down automatically), the node replies with
// min(client, node), and both sides write the agreed version from the
// next frame on. A reader accepts both encodings at any time — sniffing
// is per frame — so negotiation only chooses what each side writes.
// NodeConfig.MaxWire and RouterConfig.MaxWire cap the advertised
// version (1 forces JSON interop); a future version advertised by a
// newer peer is capped, not rejected, so mixed-version clusters always
// land on a common encoding. Both decoders are fuzzed (FuzzReadFrame,
// FuzzBinaryFrame) with checked-in corpora.
//
// # Correctness
//
// The contract, inherited from the single-process engine and asserted by
// the clustertest equivalence suites, is that the cluster is
// indistinguishable from one never-resharded Monitor: for every device,
// the sequence of alerts (kind, user, previous user, window) is
// byte-identical, regardless of how many nodes there are and how often
// membership changes mid-stream. Three mechanisms carry that proof
// through a drain:
//
//   - State moves whole. A drained device's core.DeviceState blob carries
//     its window buffer, consecutive-accept streaks, confirmed identity
//     and last-seen stamp; the importer resumes mid-streak.
//   - No transaction is lost or reordered. The router buffers a draining
//     device's transactions and replays them to the new owner after the
//     import, in arrival order, before reopening the route.
//   - No alert is reordered. A node syncs its alert deliveries before
//     answering an export, and the client delivers pushed alerts in-line
//     before any later RPC reply, so the old owner's alerts for a device
//     are observed before the new owner's first.
//
// Failure handling favors state over placement: if any step of a drain
// fails, the devices stay routed to (and identifying on) their old owner
// — the rendezvous hash says where devices should live, but the routing
// table says where they do.
//
// # Two-phase handoff
//
// A drain moves state through four idempotent steps, each named by a
// handoff id ("<routerID>/<n>") that is unique across router replicas:
//
//	ExportHandoff(src) → ImportHandoff(dst) → Commit(dst) → Commit(src)
//
// The export holds the moving devices on src (revocable, no longer fed);
// the import stages the blob on dst (invisible, not identified against).
// Ownership flips at exactly one step — the commit on dst — and the
// final commit merely releases src's held copy. Because every step is
// idempotent per id, any step can be retried across reconnects, and any
// failure unwinds by aborting both sides: Abort on src re-adopts the
// held state automatically, so a failed drain never needs operator
// cleanup and can never leave two live copies. A lost commit
// acknowledgement is resolved by asking dst to abort — a "handoff
// already committed" refusal is proof the commit landed. Stagings whose
// router died before resolving them are invisible until the node's
// StagedTTL sweep reclaims them.
//
// # Reconnection
//
// A NodeClient survives connection loss: feeds are queued in a bounded
// replay buffer (ReconnectConfig.ReplayDepth) and re-sent after the
// client redials with exponential backoff; the node deduplicates
// re-sent frames per client session, so delivery is exactly-once.
// While connected, a full buffer applies backpressure; while down, it
// fails fast with ErrReplayOverflow so callers can shed load.
// Subscriptions resume from a cursor into the node's alert ring, so no
// alert is lost or duplicated across a reconnect. MaxAttempts
// consecutive dial failures declare the node down (ErrNodeDown).
//
// # Replication
//
// Any number of router replicas can front the same nodes, because a
// router holds almost no authoritative state: placement is derivable
// from the membership view by rendezvous hashing, and current holdings
// are discoverable from the nodes themselves (list). The two things
// replicas must agree on travel by gossip (GossipState, ServeGossip,
// GossipWith): the versioned membership view (higher version adopted
// wholesale, never triggering a drain — rebalancing belongs to the
// router that ran the membership change) and the override table, a
// last-writer-wins register per device recording placements that
// disagree with the pure hash. Override merges are commutative,
// associative and idempotent, so replicas converge under any exchange
// order. Alerts are fanned to every replica's subscription; each alert
// carries its node's sequence number, so downstream consumers collapse
// duplicates on (node, seq) without disturbing per-device order.
//
// The routing table itself is bounded: a device idle past
// RouterConfig.RouteIdleTTL (in stream time, mirroring the monitor's
// IdleTTL) has its route swept and re-derived on its next transaction.
//
// # Failure modes
//
// What each failure leaves behind, as proven by the chaos suites
// (chaos_test.go, ha_test.go — deterministic fault injection through
// clustertest.ChaosProxy, replayable from the logged WTP_CHAOS_SEED):
//
//	failure                      outcome
//	-------                      -------
//	connection dies mid-feed     client redials, replays unacked frames;
//	                             node dedups; exactly-once delivery
//	node down > MaxAttempts      ErrNodeDown; queued feeds surface via
//	                             OnDrop; RPCs fail fast
//	replay buffer full (down)    ErrReplayOverflow (typed), caller sheds
//	import refused or dies       abort both sides; src re-adopts; devices
//	                             stay on old owner; nothing to clean up
//	import ack lost + partition  staging invisible on dst until StagedTTL
//	                             sweep; devices stay on old owner
//	commit ack lost              abort probe: "already committed" refusal
//	                             confirms the flip; handoff completes
//	router replica crashes       surviving replicas keep routing; alerts
//	                             deduped on (node, seq); no alert lost
//	gossiped view unreachable    adoption is all-or-nothing; old view
//	                             stands, error surfaces in-band
//
// With a shared state tier (RouterConfig.SharedState — every node spills
// through one internal/statestore server, write-behind), the suites in
// statetier_test.go add:
//
//	failure                      outcome
//	-------                      -------
//	member SIGTERMs, cold join   checkpointed movers warm-restore: the
//	                             route flips, state rehydrates from the
//	                             tier on the next transaction; no drain
//	member dies, FailNode        devices reroute to survivors and resume
//	                             from their checkpoints — failover with
//	                             no handoff protocol at all
//	state server unreachable     feed path degrades lossy, never blocks:
//	                             spill Puts fail fast on the bounded
//	                             write-behind queue (ErrQueueFull);
//	                             queued writes land after the heal
//	stale flush after failover   the server's per-device version fence
//	                             drops it: the new owner's
//	                             rehydrate-consume bumped a tombstone
//	                             above every version the dead owner's
//	                             client could still hold
package cluster
