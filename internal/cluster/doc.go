// Package cluster scales the continuous-identification monitor past one
// process: a front-end Router places every device on a member Node by
// rendezvous (highest-random-weight) hashing over a versioned membership
// view, forwards transactions to the owning node's core.Monitor, and
// rebalances on membership changes by draining exactly the devices whose
// placement changed — the multi-node deployment of the paper's
// centralized continuous-authentication service (Sect. I), where many
// proxy vantage points feed one logical identification engine.
//
// # Topology
//
// Nodes are passive shards: each runs a sharded core.Monitor over the
// same trained profile set and speaks the length-prefixed frame protocol
// (see wire.go) — feed, export, import, flush — plus an unsolicited
// alert push stream. All placement intelligence lives in the Router;
// nodes never talk to each other, and a shard handoff is always
// router-mediated: ExportDevices on the old owner, ImportShard on the
// new, transactions buffered in between.
//
// # Wire versions
//
// Every frame is a 4-byte big-endian length followed by a payload. Two
// payload encodings exist, distinguished per frame by the first payload
// byte:
//
//   - Wire v1: JSON (the payload starts with '{'). The original
//     protocol; feeds carry transactions as proxy log lines.
//   - Wire v2: a compact binary record (the payload starts with the
//     magic byte 0xF7). Layout: magic, version byte (2), frame type
//     code, uvarint sequence number, then tagged fields until the
//     payload ends — each field a tag byte followed by a
//     length/count-prefixed body, zero-valued fields omitted, unknown
//     tags a decode error. Feeds carry transactions as weblog binary
//     records (Frame.Txs), which the node decodes zero-copy: every
//     string field of every decoded transaction aliases the one frame
//     payload. Handoff blobs pass through untouched in both versions.
//
// The version is negotiated per connection in the hello exchange. The
// hello frame and its reply are always JSON: the client advertises the
// highest version it speaks (Frame.Wire; absent means v1, so an old
// peer is negotiated down automatically), the node replies with
// min(client, node), and both sides write the agreed version from the
// next frame on. A reader accepts both encodings at any time — sniffing
// is per frame — so negotiation only chooses what each side writes.
// NodeConfig.MaxWire and RouterConfig.MaxWire cap the advertised
// version (1 forces JSON interop); a future version advertised by a
// newer peer is capped, not rejected, so mixed-version clusters always
// land on a common encoding. Both decoders are fuzzed (FuzzReadFrame,
// FuzzBinaryFrame) with checked-in corpora.
//
// # Correctness
//
// The contract, inherited from the single-process engine and asserted by
// the clustertest equivalence suites, is that the cluster is
// indistinguishable from one never-resharded Monitor: for every device,
// the sequence of alerts (kind, user, previous user, window) is
// byte-identical, regardless of how many nodes there are and how often
// membership changes mid-stream. Three mechanisms carry that proof
// through a drain:
//
//   - State moves whole. A drained device's core.DeviceState blob carries
//     its window buffer, consecutive-accept streaks, confirmed identity
//     and last-seen stamp; the importer resumes mid-streak.
//   - No transaction is lost or reordered. The router buffers a draining
//     device's transactions and replays them to the new owner after the
//     import, in arrival order, before reopening the route.
//   - No alert is reordered. A node syncs its alert deliveries before
//     answering an export, and the client delivers pushed alerts in-line
//     before any later RPC reply, so the old owner's alerts for a device
//     are observed before the new owner's first.
//
// Failure handling favors state over placement: if an import is refused
// or the importer dies, the blob is re-imported into the old owner and
// the devices stay routed there — the rendezvous hash says where devices
// should live, but the routing table says where they do.
//
// One known at-most-once gap remains: if the importer applied the blob
// but its ok reply was lost (connection death in the reply window), the
// router cannot distinguish that from a never-applied import and falls
// back to the old owner, leaving the importer with a stale copy. The
// drain error says so explicitly (it distinguishes a definite
// ErrNodeRefused from transport loss) and the remedy is to clear that
// node before it rejoins; an acknowledged two-phase handoff is a future
// step (see ROADMAP).
package cluster
