package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"webtxprofile/internal/core"
	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

// binarySeedTx is a representative transaction for the corpus seeds.
func binarySeedTx() weblog.Transaction {
	return weblog.Transaction{
		Timestamp: time.Date(2015, 5, 29, 5, 5, 4, 123e6, time.UTC),
		Host:      "www.inlinegames.com", Scheme: taxonomy.SchemeHTTP,
		Action: taxonomy.ActionGet, UserID: "user_9", SourceIP: "10.0.0.9",
		Category:  "Games",
		MediaType: taxonomy.MediaType{Super: "text", Sub: "html"},
		AppType:   "browser", Reputation: taxonomy.MinimalRisk,
	}
}

// binaryCorpusSeeds are the checked-in seeds for FuzzBinaryFrame: one
// well-formed wire-v2 payload per frame shape plus the malformed inputs
// the decoder must reject cleanly. Kept in code so the testdata corpus
// is reproducible (see TestRegenerateBinaryFuzzCorpus).
func binaryCorpusSeeds(t testing.TB) [][]byte {
	tx := binarySeedTx()
	valid := []Frame{
		{Type: FrameHello, Seq: 1, Node: "router-1", Subscribe: true, Wire: WireV2},
		{Type: FrameHello, Seq: 1, Node: "router-1", Subscribe: true, Wire: WireV2, Client: "router-1/ab12", Resume: true, Cursor: 42},
		{Type: FrameFeed, Seq: 2, Txs: []weblog.Transaction{tx, tx}},
		{Type: FrameFeed, Seq: 3, Lines: []string{tx.MarshalLine()}},
		{Type: FrameFeed, Seq: 4, Replay: true, Txs: []weblog.Transaction{tx}},
		{Type: FrameExport, Seq: 5, Devices: []string{"10.0.0.1", "10.0.0.2"}},
		{Type: FrameExport, Seq: 6, Devices: []string{"10.0.0.1"}, Handoff: "ab12/1"},
		{Type: FrameImport, Seq: 7, Blob: []byte{0x1f, 0x8b, 0x08, 0x00, 0x00}},
		{Type: FrameImport, Seq: 8, Blob: []byte{0x1f, 0x8b, 0x08, 0x00, 0x00}, Handoff: "ab12/1"},
		{Type: FrameCommit, Seq: 9, Handoff: "ab12/1"},
		{Type: FrameAbort, Seq: 10, Handoff: "ab12/1"},
		{Type: FrameList, Seq: 11},
		{Type: FrameGossip, Seq: 12, Gossip: &GossipState{
			Membership: Membership{Version: 3, Members: []Member{{Name: "n1", Addr: "10.1.0.1:7100"}}},
			Overrides:  []Override{{Device: "10.0.0.1", Node: "n1", Ver: 5}, {Device: "10.0.0.2", Ver: 6}},
		}},
		{Type: FrameFlush, Seq: 13},
		{Type: FrameStats, Seq: 14},
		{Type: FrameOK, Seq: 15, Count: 3, Blob: []byte("blob")},
		{Type: FrameOK, Seq: 16, Count: -1},
		{Type: FrameOK, Seq: 17, Devices: []string{"10.0.0.1"}, Cursor: 9},
		{Type: FrameError, Seq: 18, Error: "refused"},
		{Type: FrameAlert, Seq: 19, Alert: &NodeAlert{Node: "n1", Seq: 19, Alert: core.Alert{
			Device: "10.0.0.1", Kind: core.AlertLost, User: "user_2", Previous: "user_2",
		}}},
		{Type: FrameAlert, Alert: &NodeAlert{Node: "n1", Alert: core.Alert{
			Device: "10.0.0.1", Kind: core.AlertLost, User: "user_2", Previous: "user_2",
		}}},
	}
	var seeds [][]byte
	for _, f := range valid {
		payload, err := AppendBinaryFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, payload)
	}
	seeds = append(seeds,
		[]byte{},                                                       // empty payload
		[]byte{binaryMagic},                                            // bare magic
		[]byte{binaryMagic, 0x01, 0x01, 0x00},                          // wrong version byte
		[]byte{binaryMagic, WireV2, 0x00, 0x00},                        // frame type code 0
		[]byte{binaryMagic, WireV2, 0x63, 0x00},                        // unknown frame type code
		[]byte{binaryMagic, WireV2, 0x01},                              // missing seq varint
		[]byte{binaryMagic, WireV2, 0x01, 0x80},                        // truncated seq varint
		[]byte{binaryMagic, WireV2, 0x01, 0x01, 0xff},                  // unknown field tag
		[]byte{binaryMagic, WireV2, 0x02, 0x01, tagTxs, 0xff, 0xff, 3}, // tx count exceeds payload
		[]byte{binaryMagic, WireV2, 0x02, 0x01, tagLines, 0x09, 0x02},  // line count exceeds payload
		[]byte{binaryMagic, WireV2, 0x04, 0x01, tagBlob, 0x7f, 'x'},    // blob length exceeds payload
	)
	return seeds
}

// FuzzBinaryFrame: arbitrary bytes fed to the wire-v2 payload decoder
// must produce a frame or an error — never a panic, never allocation
// beyond what the input length justifies — and any frame that decodes
// must reach an encode/decode fixed point: re-encoding the canonical
// form reproduces it bit-for-bit.
func FuzzBinaryFrame(f *testing.F) {
	for _, seed := range binaryCorpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		f1, err := decodeBinaryFrame(data)
		if err != nil {
			return
		}
		// The first decode may hold non-canonical shapes (e.g. an empty
		// but non-nil Blob from a zero-length field the encoder would
		// omit); one round trip canonicalizes, after which encoding must
		// be a fixed point.
		enc1, err := AppendBinaryFrame(nil, f1)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", f1, err)
		}
		f2, err := decodeBinaryFrame(enc1)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if f2.Type != f1.Type || f2.Seq != f1.Seq {
			t.Fatalf("round trip drifted: %+v -> %+v", f1, f2)
		}
		enc2, err := AppendBinaryFrame(nil, f2)
		if err != nil {
			t.Fatalf("canonical frame does not re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding is not a fixed point:\n first %x\nsecond %x", enc1, enc2)
		}
		f3, err := decodeBinaryFrame(enc2)
		if err != nil {
			t.Fatalf("fixed-point encoding does not decode: %v", err)
		}
		if !reflect.DeepEqual(f2, f3) {
			t.Fatalf("canonical decode is unstable:\n%+v\n%+v", f2, f3)
		}
	})
}

// TestBinaryFrameRoundTrip pins exact equality for every producer-built
// frame shape: what the writer encodes, the reader decodes back
// field-for-field (the fuzz target only guarantees fixed-point
// stability, which is weaker).
func TestBinaryFrameRoundTrip(t *testing.T) {
	tx := binarySeedTx()
	tx.Scheme, tx.Action = taxonomy.SchemeHTTPS, taxonomy.ActionPost
	tx.Reputation, tx.Private = taxonomy.HighRisk, true
	frames := []Frame{
		{Type: FrameHello, Seq: 1, Node: "router-1", Subscribe: true, Wire: WireV2},
		{Type: FrameFeed, Seq: 2, Txs: []weblog.Transaction{tx}},
		{Type: FrameExport, Seq: 3, Devices: []string{"10.0.0.1", "10.0.0.2"}},
		{Type: FrameImport, Seq: 4, Blob: []byte{1, 2, 3}},
		{Type: FrameOK, Seq: 5, Count: -7},
		{Type: FrameError, Seq: 6, Error: "refused"},
	}
	for _, want := range frames {
		payload, err := AppendBinaryFrame(nil, want)
		if err != nil {
			t.Fatalf("%s: %v", want.Type, err)
		}
		got, err := decodeBinaryFrame(payload)
		if err != nil {
			t.Fatalf("%s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s frame drifted:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

// TestRegenerateBinaryFuzzCorpus rewrites testdata/fuzz/FuzzBinaryFrame
// from binaryCorpusSeeds when WTP_REGEN_CORPUS=1, so the checked-in
// corpus never drifts from the codec. Normally it only verifies the
// files exist.
func TestRegenerateBinaryFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryFrame")
	if os.Getenv("WTP_REGEN_CORPUS") == "1" {
		writeCorpus(t, dir, binaryCorpusSeeds(t))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing (run with WTP_REGEN_CORPUS=1 to create): %v", err)
	}
	if len(entries) < len(binaryCorpusSeeds(t)) {
		t.Errorf("corpus has %d entries, want >= %d", len(entries), len(binaryCorpusSeeds(t)))
	}
}
