package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"webtxprofile/internal/core"
	"webtxprofile/internal/weblog"
)

// Member is one node of the cluster as the router sees it.
type Member struct {
	// Name is the node's cluster name — the rendezvous-hash identity.
	// Renaming a node reshuffles its devices; readdressing it does not.
	Name string
	// Addr is the node's TCP address.
	Addr string
}

// Membership is the router's versioned view of the cluster. Version
// increments on every effective AddNode/RemoveNode; duplicate events
// (adding a present member, removing an absent one) change nothing and
// keep the version, which is what makes membership delivery idempotent.
type Membership struct {
	Version int
	Members []Member // sorted by name
}

// RouterConfig tunes the router. The zero value selects the defaults.
type RouterConfig struct {
	// DrainBatch caps the transactions replayed per RPC when a drained
	// device's buffered backlog is flushed to its new owner (default 256).
	DrainBatch int
	// MaxWire caps the wire version the router advertises to nodes
	// (default MaxWireVersion). Each connection still negotiates down to
	// what its node speaks, so a mixed-version cluster works either way;
	// setting 1 forces JSON frames everywhere.
	MaxWire int
	// RouteIdleTTL bounds the routing table: a device idle for longer (in
	// stream time, mirroring the monitor's IdleTTL) has its route swept.
	// Sweeping is safe because a route never disagrees with the device's
	// effective owner once settled — overrides, which do carry placement
	// memory, are kept separately and survive the sweep. 0 disables.
	RouteIdleTTL time.Duration
	// Client configures the per-node connections (reconnect schedule,
	// replay depth, client identity prefix). Client.MaxWire is overridden
	// by MaxWire above.
	Client ClientConfig
	// SharedState declares that the member nodes spill through a shared
	// state tier (an internal/statestore server, with
	// MonitorConfig.SharedSpill set on every node). Rebalances then skip
	// the drain for devices that are not live on any node — their state
	// already sits in the shared store, so a joining node warm-restores
	// them: the route flips and the state rehydrates there on the
	// device's next transaction. It also makes FailNode lossless for
	// checkpointed devices: a dead member's devices resume at their new
	// owners without any handoff.
	SharedState bool
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.DrainBatch <= 0 {
		c.DrainBatch = 256
	}
	if c.MaxWire <= 0 || c.MaxWire > MaxWireVersion {
		c.MaxWire = MaxWireVersion
	}
	c.Client.MaxWire = c.MaxWire
	return c
}

// Router is the cluster front end: it places every device on a member
// node by rendezvous (highest-random-weight) hashing over the current
// membership view, forwards transactions to the owning node's monitor,
// and rebalances on membership changes by draining only the devices whose
// placement changed.
//
// Placement guarantees:
//
//   - A device's owner is the member with the highest rendezvous score
//     for it, so placement is stable: AddNode moves only devices whose
//     top score shifts to the new node (an expected 1/n of them), and
//     RemoveNode moves only the removed node's devices. No other device
//     is touched by a membership change.
//   - The routing table is authoritative over the hash: if a drain fails
//     (the importer refused or died), the affected devices stay routed to
//     their old owner — placement degrades, state does not.
//
// Drain guarantees:
//
//   - A drained device's identification state travels whole: window
//     buffer, consecutive-accept streaks, confirmed identity and
//     last-seen stamp (the core.DeviceState blob).
//   - Transactions arriving for a device mid-drain are buffered and
//     replayed to the new owner after the import, in arrival order, so no
//     window or streak is lost or reordered. Devices not being drained
//     keep feeding live throughout.
//   - The old owner's alerts for a drained device are all delivered
//     before the new owner's (the export reply is ordered after the
//     alerts on the node connection), so per-device alert order is
//     preserved across the handoff — the cluster-equivalence property the
//     clustertest suites assert.
//
// Feed, FeedBatch and membership changes may be called concurrently;
// transactions for one device must come from one goroutine at a time (the
// monitor's own contract). Rebalances are serialized internally.
type Router struct {
	alerts func(NodeAlert)
	cfg    RouterConfig

	// balMu serializes AddNode/RemoveNode so at most one rebalance is in
	// flight: drains assume no route is already draining when they mark
	// theirs.
	balMu sync.Mutex

	// mu guards the fields below. Lock order: a node handle's mu, when
	// held together with mu, is always acquired first — nothing waits for
	// a handle while holding mu.
	mu        sync.Mutex
	version   int
	nodes     map[string]*nodeHandle
	routes    map[string]*route
	overrides OverrideTable
	clock     int64 // router-wide stream clock: max tx timestamp routed, unix nanos
	lastSweep int64 // stream-clock stamp of the last idle-route sweep
	closed    bool

	// id and handoffN (guarded by balMu, like all rebalance state) name
	// two-phase handoffs: "<routerID>/<n>" never collides across router
	// replicas, so a node can hold stagings from several routers at once.
	id       string
	handoffN int
}

// nodeHandle is the router's connection to one member. Its mu serializes
// every RPC to the node, which is what makes a drain safe: once the
// drainer holds it, no previously-routed transaction is still in flight
// to that node.
type nodeHandle struct {
	member  Member
	mu      sync.Mutex
	client  *NodeClient
	leaving bool
}

// route is the authoritative placement of one device. While draining,
// arriving transactions accumulate in buf and are replayed by the drainer.
type route struct {
	node     string
	draining bool
	buf      []weblog.Transaction
	lastTs   int64 // stream-clock stamp of the device's last routed transaction
}

// NewRouter creates a router with no members. alerts receives every
// identity transition from every node, tagged with its origin; it runs on
// the per-node receive goroutines and must be safe for concurrent use and
// non-blocking. Add at least one node before feeding.
func NewRouter(alerts func(NodeAlert), cfg RouterConfig) *Router {
	if alerts == nil {
		alerts = func(NodeAlert) {}
	}
	var b [6]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return &Router{
		alerts: alerts,
		cfg:    cfg.withDefaults(),
		nodes:  make(map[string]*nodeHandle),
		routes: make(map[string]*route),
		id:     hex.EncodeToString(b[:]),
	}
}

// View returns the current versioned membership.
func (r *Router) View() Membership {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewLocked()
}

// Owner reports which node a device is currently routed to (ok=false for
// a device the router has never seen).
func (r *Router) Owner(device string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[device]
	if !ok {
		return "", false
	}
	return rt.node, true
}

// Devices returns the number of devices the router has placed.
func (r *Router) Devices() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.routes)
}

// Close disconnects from every node. Nodes keep running — closing the
// front end must not destroy the cluster's identification state.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	handles := make([]*nodeHandle, 0, len(r.nodes))
	for _, h := range r.nodes {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	var errs []error
	for _, h := range handles {
		if err := h.client.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Flush asks every node to complete pending windows and deliver all
// outstanding alerts (end-of-stream semantics); every resulting alert has
// been handed to the router's callback when Flush returns. Call it once
// feeding has stopped.
func (r *Router) Flush() error {
	r.mu.Lock()
	handles := make([]*nodeHandle, 0, len(r.nodes))
	for _, h := range r.nodes {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	var errs []error
	for _, h := range handles {
		h.mu.Lock()
		err := h.client.Flush()
		h.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("cluster: flushing node %s: %w", h.member.Name, err))
		}
	}
	return errors.Join(errs...)
}

// Sync blocks until every transaction routed so far has been processed
// by its owner node — and every alert those transactions raised has been
// handed to this router's fan-in callback — without completing any
// window (unlike Flush, which is end-of-stream). This is the barrier a
// replica handoff needs: after Sync, a second router can take over the
// stream knowing none of this router's queued feeds will land later and
// reorder a device's window. It rides the stats RPC — the node orders
// its reply after every feed frame already received on the connection
// and drains its alert outbox first.
func (r *Router) Sync() error {
	r.mu.Lock()
	handles := make([]*nodeHandle, 0, len(r.nodes))
	for _, h := range r.nodes {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	var errs []error
	for _, h := range handles {
		h.mu.Lock()
		_, err := h.client.Devices()
		h.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("cluster: syncing node %s: %w", h.member.Name, err))
		}
	}
	return errors.Join(errs...)
}

// hrwScore is the rendezvous weight of placing device on node: FNV-1a
// over device then node (NUL-separated) pushed through a splitmix64
// finalizer. The finalizer matters: raw FNV-1a diffuses so weakly that
// the *comparison* of two scores is correlated across keys sharing a
// suffix — with similar node names, whole device ranges land on one node.
// Deterministic across processes so an operator can predict placement.
func hrwScore(node, device string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(device))
	h.Write([]byte{0})
	h.Write([]byte(node))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ownerLocked picks the highest-scoring non-leaving member for a device
// ("" when there are none). Ties break to the lexicographically smaller
// name so placement is total and deterministic.
func (r *Router) ownerLocked(device string) string {
	best, bestScore := "", uint64(0)
	for name, h := range r.nodes {
		if h.leaving {
			continue
		}
		s := hrwScore(name, device)
		if best == "" || s > bestScore || (s == bestScore && name < best) {
			best, bestScore = name, s
		}
	}
	return best
}

// effectiveOwnerLocked is ownerLocked with the override table applied:
// an override pinning the device to a live, non-leaving member wins over
// the hash. Overrides are the only placement state router replicas
// share, so this — not ownerLocked — is what placement decisions use;
// pure hash owners matter only as drain *targets*.
func (r *Router) effectiveOwnerLocked(device string) string {
	if pin, ok := r.overrides.Get(device); ok {
		if h := r.nodes[pin]; h != nil && !h.leaving {
			return pin
		}
	}
	return r.ownerLocked(device)
}

// routeLocked returns the device's route, placing it by effective owner
// (override-aware rendezvous hash) on first sight — or re-placing it
// after an idle sweep, which lands on the same node: settle() pins every
// route that disagrees with the pure hash as an override before the
// route can be swept. Returns nil when the cluster has no usable
// members.
func (r *Router) routeLocked(device string) *route {
	if rt, ok := r.routes[device]; ok {
		if rt.draining || r.nodes[rt.node] != nil {
			return rt
		}
		// The recorded owner is gone (a failed drain settled onto a node
		// that then disappeared): re-place the device fresh.
		delete(r.routes, device)
	}
	owner := r.effectiveOwnerLocked(device)
	if owner == "" {
		return nil
	}
	rt := &route{node: owner, lastTs: r.clock}
	r.routes[device] = rt
	return rt
}

// maybeSweepRoutesLocked drops routes idle past RouteIdleTTL, amortized
// to one pass per TTL of stream time. Only settled, empty routes go;
// draining routes and buffered backlogs are live rebalance state. The
// override table is untouched: it is the placement memory that makes
// re-placing a swept route deterministic.
func (r *Router) maybeSweepRoutesLocked() {
	ttl := int64(r.cfg.RouteIdleTTL)
	if ttl <= 0 || r.clock == 0 {
		return
	}
	if r.lastSweep == 0 {
		r.lastSweep = r.clock
		return
	}
	if r.clock-r.lastSweep < ttl {
		return
	}
	r.lastSweep = r.clock
	for device, rt := range r.routes {
		if !rt.draining && len(rt.buf) == 0 && r.clock-rt.lastTs > ttl {
			delete(r.routes, device)
		}
	}
}

// errNoMembers reports feeding an empty cluster.
var errNoMembers = errors.New("cluster: router has no member nodes")

// Feed routes one transaction to its device's owner. A transaction for a
// device mid-drain is buffered and replayed after the handoff; Feed
// returns immediately for it (its feed error, if any, surfaces from the
// membership call driving the drain). Feed is FeedBatch for one
// transaction — the routing, buffering and recheck rules are identical
// by construction.
func (r *Router) Feed(tx weblog.Transaction) error {
	return r.FeedBatch([]weblog.Transaction{tx})
}

// FeedBatch routes a batch, partitioning it per owning node and feeding
// each node its sub-batch in one RPC. Per-device transaction order is
// preserved (a device's transactions share one partition and are sent in
// slice order); transactions for devices mid-drain are buffered exactly
// like Feed's.
func (r *Router) FeedBatch(txs []weblog.Transaction) error {
	var errs []error
	pending := txs
	for rounds := 0; len(pending) > 0; rounds++ {
		if rounds > len(txs)+2 {
			// Each round either feeds, buffers, or re-routes after an
			// observed topology change; this bound is unreachable without
			// a livelock bug.
			errs = append(errs, fmt.Errorf("cluster: batch routing did not settle after %d rounds", rounds))
			break
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			errs = append(errs, ErrClientClosed)
			break
		}
		groups := make(map[string][]weblog.Transaction)
		for _, tx := range pending {
			rt := r.routeLocked(tx.SourceIP)
			if rt == nil {
				r.mu.Unlock()
				return errors.Join(append(errs, errNoMembers)...)
			}
			if ts := tx.Timestamp.UnixNano(); ts > r.clock {
				r.clock = ts
			}
			if r.clock > rt.lastTs {
				rt.lastTs = r.clock
			}
			if rt.draining {
				rt.buf = append(rt.buf, tx)
				continue
			}
			groups[rt.node] = append(groups[rt.node], tx)
		}
		r.maybeSweepRoutesLocked()
		r.mu.Unlock()
		pending = nil
		// Deterministic node order keeps joined errors stable.
		names := make([]string, 0, len(groups))
		for name := range groups {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			group := groups[name]
			r.mu.Lock()
			h := r.nodes[name]
			r.mu.Unlock()
			if h == nil {
				pending = append(pending, group...) // node left; re-route
				continue
			}
			h.mu.Lock()
			r.mu.Lock()
			send := group[:0]
			for _, tx := range group {
				rt := r.routes[tx.SourceIP]
				switch {
				case rt == nil || rt.node != name:
					pending = append(pending, tx) // moved; re-route
				case rt.draining:
					rt.buf = append(rt.buf, tx)
				default:
					send = append(send, tx)
				}
			}
			r.mu.Unlock()
			if len(send) > 0 {
				if err := h.client.Feed(send); err != nil {
					errs = append(errs, fmt.Errorf("cluster: feeding node %s: %w", name, err))
				}
			}
			h.mu.Unlock()
		}
	}
	return errors.Join(errs...)
}

// AddNode joins a member and rebalances: exactly the devices whose
// rendezvous placement moves to the new node are drained from their
// current owners (state exported, transactions buffered and replayed) and
// imported there. Adding an already-present member with the same address
// is an idempotent no-op; the same name at a different address is an
// error (drop the old member first). If the new node refuses or loses an
// import, those devices stay on their old owner with nothing lost, and
// AddNode reports the failure while the membership (already extended)
// stands.
func (r *Router) AddNode(m Member) error {
	if m.Name == "" || m.Addr == "" {
		return fmt.Errorf("cluster: member needs name and addr, got %+v", m)
	}
	r.balMu.Lock()
	defer r.balMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClientClosed
	}
	if h, ok := r.nodes[m.Name]; ok {
		known := h.member
		r.mu.Unlock()
		if known.Addr == m.Addr {
			return nil // duplicate membership event: idempotent
		}
		return fmt.Errorf("cluster: member %s already at %s (got %s)", m.Name, known.Addr, m.Addr)
	}
	r.mu.Unlock()

	client, err := r.dialMember(m)
	if err != nil {
		return err
	}
	h := &nodeHandle{member: m, client: client}

	// Discover where every device lives before the view changes: the
	// routing table plus what each node reports holding (List). The union
	// is what makes a fresh router replica — whose routing table is empty
	// — drain correctly: placement lives on the nodes, not in this
	// process.
	placement, live := r.discoverPlacement()

	r.mu.Lock()
	r.nodes[m.Name] = h
	r.version++
	// Devices whose effective placement moved to the new node drain from
	// their current owners. Overridden devices are pinned and stay put;
	// balMu guarantees none is mid-drain. Under SharedState, a moving
	// device no node holds live needs no drain at all: its state is in
	// the shared tier, so it warm-restores — the route flips to the new
	// node and the state rehydrates there on its next transaction.
	moves := make(map[string][]string)
	warm := make(map[string][]string) // current owner → not-live movers
	for device, cur := range placement {
		if rt, ok := r.routes[device]; ok {
			cur = rt.node // the routing table is authoritative over List
		}
		if cur == m.Name || r.effectiveOwnerLocked(device) != m.Name {
			continue
		}
		rt, ok := r.routes[device]
		if !ok {
			rt = &route{node: cur, lastTs: r.clock}
			r.routes[device] = rt
		}
		rt.draining = true
		if r.cfg.SharedState && !live[device] {
			warm[cur] = append(warm[cur], device)
			continue
		}
		moves[cur] = append(moves[cur], device)
	}
	r.mu.Unlock()

	var errs []error
	// The warm set raced concurrent feeds between the List and the
	// draining mark above: a transaction could have rehydrated a device
	// at its old owner in that window. Re-listing the owner now is
	// authoritative — the mark is in place, so no *new* admission can
	// happen there — and anything found live drains normally after all.
	warmed := 0
	for _, src := range sortedKeys(warm) {
		stillLive := r.liveSet(src)
		var restore []string
		for _, device := range warm[src] {
			if stillLive[device] {
				moves[src] = append(moves[src], device)
			} else {
				restore = append(restore, device)
			}
		}
		if len(restore) == 0 {
			continue
		}
		warmed += len(restore)
		if err := r.settle(restore, m.Name); err != nil {
			errs = append(errs, err)
		}
	}
	if warmed > 0 {
		statWarmRestores.Add(uint64(warmed))
	}
	for _, src := range sortedKeys(moves) {
		if _, err := r.drain(src, m.Name, moves[src], false); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// liveSet reports the devices a member holds live right now. Any error
// yields the empty set: an unreachable node holds nothing reachable.
func (r *Router) liveSet(name string) map[string]bool {
	r.mu.Lock()
	h := r.nodes[name]
	r.mu.Unlock()
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names, err := h.client.List()
	h.mu.Unlock()
	if err != nil {
		return nil
	}
	set := make(map[string]bool, len(names))
	for _, d := range names {
		set[d] = true
	}
	return set
}

// dialMember opens the router's connection to one member, with the
// router's client config and alert fan-in.
func (r *Router) dialMember(m Member) (*NodeClient, error) {
	cfg := r.cfg.Client
	if cfg.ClientID != "" {
		// Distinct per-node dedup identities under one configured prefix.
		cfg.ClientID = cfg.ClientID + "/" + m.Name
	}
	return DialNodeConfig(m.Addr, r.tagged(m.Name), cfg)
}

// discoverPlacement maps every known device to the node currently
// holding it: each live member's List report, first-seen wins in sorted
// node order, then the routing table on top (routes are authoritative —
// a mid-settle device may be listed by two nodes for an instant). A
// member that cannot answer contributes nothing: its devices stay where
// they are anyway.
// The second return maps each device some node reported live — under
// SharedState the complement (routed but listed nowhere) is exactly the
// warm-restorable set, since SharedSpill nodes list live devices only.
func (r *Router) discoverPlacement() (placement map[string]string, live map[string]bool) {
	r.mu.Lock()
	handles := make([]*nodeHandle, 0, len(r.nodes))
	for _, h := range r.nodes {
		if !h.leaving {
			handles = append(handles, h)
		}
	}
	r.mu.Unlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].member.Name < handles[j].member.Name })

	placement = make(map[string]string)
	live = make(map[string]bool)
	for _, h := range handles {
		h.mu.Lock()
		names, err := h.client.List()
		h.mu.Unlock()
		if err != nil {
			continue
		}
		for _, d := range names {
			live[d] = true
			if _, ok := placement[d]; !ok {
				placement[d] = h.member.Name
			}
		}
	}
	r.mu.Lock()
	for device, rt := range r.routes {
		placement[device] = rt.node
	}
	r.mu.Unlock()
	return placement, live
}

// RemoveNode drains every device off a member (each to its rendezvous
// owner among the remaining members) and drops it from the view. Removing
// an unknown member is an idempotent no-op; removing the last member is
// an error. If a destination refuses an import, the affected devices are
// restored onto the leaving node and the removal is aborted — the node
// stays a member — so state is never stranded on a closed connection.
func (r *Router) RemoveNode(name string) error {
	r.balMu.Lock()
	defer r.balMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClientClosed
	}
	h, ok := r.nodes[name]
	if !ok {
		r.mu.Unlock()
		return nil // duplicate membership event: idempotent
	}
	live := 0
	for _, other := range r.nodes {
		if !other.leaving {
			live++
		}
	}
	if live <= 1 {
		r.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove %s: it is the last member", name)
	}
	h.leaving = true // new devices stop placing here
	r.mu.Unlock()

	// The leaving node's full holdings, not just what this router has
	// routed: swept routes and devices fed through a replica still live
	// there and must drain. Unreachable node → empty report → the routes
	// are all we know (and its state is unreachable regardless).
	h.mu.Lock()
	listed, listErr := h.client.List()
	h.mu.Unlock()
	if listErr != nil {
		listed = nil
	}

	r.mu.Lock()
	moves := make(map[string][]string)
	for _, device := range listed {
		if _, ok := r.routes[device]; !ok {
			r.routes[device] = &route{node: name, lastTs: r.clock}
		}
	}
	for device, rt := range r.routes {
		if rt.node != name {
			continue
		}
		dst := r.effectiveOwnerLocked(device) // leaving members never win
		rt.draining = true
		moves[dst] = append(moves[dst], device)
	}
	r.mu.Unlock()

	var errs []error
	aborted := false
	for _, dst := range sortedKeys(moves) {
		fellBack, err := r.drain(name, dst, moves[dst], true)
		if err != nil {
			errs = append(errs, err)
		}
		if fellBack {
			aborted = true
		}
	}
	if aborted {
		// Some devices are back on the leaving node: keep it a member.
		r.mu.Lock()
		h.leaving = false
		r.mu.Unlock()
		return errors.Join(append(errs, fmt.Errorf("cluster: removal of %s aborted, node remains a member", name))...)
	}
	r.mu.Lock()
	delete(r.nodes, name)
	r.version++
	r.mu.Unlock()
	if err := h.client.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// FailNode drops a dead member without draining it: RemoveNode for a
// node that cannot answer. Its devices reroute immediately to their
// rendezvous owners among the remaining members, and buffered
// transactions replay there. With a shared state tier
// (RouterConfig.SharedState + checkpointed or spilled nodes) nothing is
// lost: each rerouted device rehydrates from the tier at its new owner
// on its next transaction — failover without handoff. Without the tier
// the devices restart fresh, which is still the best available outcome
// for a dead node. Failing an unknown member is an idempotent no-op;
// failing the last member is an error.
func (r *Router) FailNode(name string) error {
	r.balMu.Lock()
	defer r.balMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClientClosed
	}
	h, ok := r.nodes[name]
	if !ok {
		r.mu.Unlock()
		return nil // duplicate membership event: idempotent
	}
	if len(r.nodes) <= 1 {
		r.mu.Unlock()
		return fmt.Errorf("cluster: cannot fail %s: it is the last member", name)
	}
	delete(r.nodes, name)
	r.version++
	// Mark every route on the dead node draining (feeds buffer during
	// the reroute), grouped by the new owner under the shrunk view.
	moves := make(map[string][]string)
	failed := 0
	for device, rt := range r.routes {
		if rt.node != name {
			continue
		}
		rt.draining = true
		dst := r.effectiveOwnerLocked(device)
		moves[dst] = append(moves[dst], device)
		failed++
	}
	r.mu.Unlock()

	// The dead node's connection may still be retrying; cut it loose.
	errs := []error{h.client.Close()}
	for _, dst := range sortedKeys(moves) {
		devices := moves[dst]
		sort.Strings(devices)
		if err := r.settle(devices, dst); err != nil {
			errs = append(errs, err)
		}
	}
	if failed > 0 {
		statFailoverReroutes.Add(uint64(failed))
	}
	return errors.Join(errs...)
}

// drain moves the named devices (already marked draining by the caller)
// from src to dst as a two-phase handoff:
//
//	ExportStaged(src) → ImportStaged(dst) → Commit(dst) → Commit(src)
//
// Until the destination commits, the moving copy is invisible on both
// sides (held on src, staged on dst) and every step is idempotent per
// handoff id, so any step can be retried across reconnects and any
// failure can be unwound by aborting both sides — Abort on the source
// re-adopts the held state automatically, which is why a failed drain
// needs no operator intervention and can never leave two *live* copies.
// A lost commit acknowledgement is resolved by asking the destination to
// abort: a "handoff already committed" refusal is the proof the commit
// landed.
//
// On failure the devices settle back on src (fellBack=true), except on
// export failure with leavingSrc, where they settle on dst fresh — their
// state is unreachable on the node being removed either way.
func (r *Router) drain(src, dst string, devices []string, leavingSrc bool) (fellBack bool, err error) {
	sort.Strings(devices)
	r.handoffN++
	id := fmt.Sprintf("%s/%d", r.id, r.handoffN)
	r.mu.Lock()
	hs, hd := r.nodes[src], r.nodes[dst]
	r.mu.Unlock()

	hs.mu.Lock()
	blob, exported, exportErr := hs.client.ExportHandoff(id, devices)
	hs.mu.Unlock()
	if exportErr != nil {
		if leavingSrc {
			// The leaving node could not hand its state over; the devices
			// restart fresh on their new owner rather than pointing at a
			// node that is going away.
			serr := r.settle(devices, dst)
			return false, errors.Join(fmt.Errorf("cluster: exporting %d devices from leaving %s (state lost): %w", len(devices), src, exportErr), serr)
		}
		// If the staging landed but its acknowledgement didn't, Abort
		// re-adopts it; against a truly dead node it fails like the
		// export did, and the staging stays invisible until then.
		hs.mu.Lock()
		_, abortErr := hs.client.Abort(id)
		hs.mu.Unlock()
		statHandoffAborts.Add(1)
		serr := r.settle(devices, src)
		return true, errors.Join(fmt.Errorf("cluster: exporting %d devices from %s: %w", len(devices), src, exportErr), abortErr, serr)
	}

	hd.mu.Lock()
	_, importErr := hd.client.ImportHandoff(id, blob)
	hd.mu.Unlock()
	if importErr != nil {
		// The importer refused or died before staging. Nothing on dst is
		// visible either way; abort both sides — on src that re-adopts
		// the held state, so the devices keep identifying where they were
		// with nothing lost and nothing for an operator to clean up.
		hd.mu.Lock()
		hd.client.Abort(id) // best-effort: clears a staging whose ack was lost
		hd.mu.Unlock()
		hs.mu.Lock()
		_, restoreErr := hs.client.Abort(id)
		hs.mu.Unlock()
		statHandoffAborts.Add(1)
		serr := r.settle(devices, src)
		return true, errors.Join(fmt.Errorf("cluster: importing %d devices into %s, kept on %s: %w", exported, dst, src, importErr), restoreErr, serr)
	}

	// Commit the destination first: this is the single step where
	// ownership flips.
	hd.mu.Lock()
	_, commitErr := hd.client.Commit(id)
	hd.mu.Unlock()
	if commitErr != nil {
		// Commit is idempotent and was retried; a surviving failure means
		// dst refused (e.g. the staging died with a restart —
		// ErrUnknownHandoff is definitive) or dst is unreachable. Ask it
		// to abort: a "committed" refusal proves the commit actually
		// landed and only its acknowledgement was lost.
		hd.mu.Lock()
		_, dstAbort := hd.client.Abort(id)
		hd.mu.Unlock()
		if dstAbort != nil && strings.Contains(dstAbort.Error(), core.ErrHandoffCommitted.Error()) {
			commitErr = nil // the handoff committed; fall through to success
		} else {
			hs.mu.Lock()
			_, restoreErr := hs.client.Abort(id)
			hs.mu.Unlock()
			statHandoffAborts.Add(1)
			serr := r.settle(devices, src)
			err := fmt.Errorf("cluster: committing %d devices on %s, kept on %s: %w", exported, dst, src, commitErr)
			if !errors.Is(commitErr, ErrNodeRefused) && dstAbort != nil {
				// Neither the commit nor the abort got an answer: the
				// commit's outcome on dst is unknown. The staging is
				// invisible and the node's StagedTTL sweep clears it, but
				// flag the ambiguity.
				err = fmt.Errorf("%w (commit outcome on %s unknown; its staging is invisible and sweeps by StagedTTL)", err, dst)
			}
			return true, errors.Join(err, restoreErr, serr)
		}
	}

	// Release the source's held copy. A failure here does not move
	// ownership back — dst committed — it only delays reclaiming the
	// invisible held copy on src.
	hs.mu.Lock()
	_, releaseErr := hs.client.Commit(id)
	hs.mu.Unlock()
	if releaseErr != nil {
		releaseErr = fmt.Errorf("cluster: source %s did not release handoff %s (held copy stays staged, invisible): %w", src, id, releaseErr)
	}
	return false, errors.Join(releaseErr, r.settle(devices, dst))
}

// settle replays the drained devices' buffered transactions to owner
// until the buffers run dry, then reopens the routes there. The loop
// chases feeds that keep arriving mid-replay; each pass replays what
// accumulated during the previous one, and the routes reopen atomically
// with observing all buffers empty.
func (r *Router) settle(devices []string, owner string) error {
	var errs []error
	for {
		r.mu.Lock()
		h := r.nodes[owner]
		var pend []weblog.Transaction
		for _, d := range devices {
			if rt := r.routes[d]; rt != nil && len(rt.buf) > 0 {
				pend = append(pend, rt.buf...)
				rt.buf = nil
			}
		}
		if len(pend) == 0 || h == nil {
			for _, d := range devices {
				if rt := r.routes[d]; rt != nil {
					rt.node = owner
					rt.draining = false
				}
				// Record the settled placement in the override table when
				// it disagrees with the pure hash, clear it when it
				// agrees. This keeps route == effective owner (what makes
				// the idle-route sweep safe) and is the only placement
				// state router replicas gossip to each other.
				pure := r.ownerLocked(d)
				pin, pinned := r.overrides.Get(d)
				switch {
				case owner != pure && (!pinned || pin != owner):
					r.overrides.Set(Override{Device: d, Node: owner, Ver: r.overrides.MaxVer() + 1})
				case owner == pure && pinned:
					r.overrides.Set(Override{Device: d, Ver: r.overrides.MaxVer() + 1})
				}
			}
			r.mu.Unlock()
			if h == nil {
				errs = append(errs, fmt.Errorf("cluster: settling %d devices on unknown node %s", len(devices), owner))
			}
			return errors.Join(errs...)
		}
		r.mu.Unlock()
		for len(pend) > 0 {
			n := min(r.cfg.DrainBatch, len(pend))
			h.mu.Lock()
			err := h.client.Feed(pend[:n])
			h.mu.Unlock()
			if err != nil {
				// Surface the error but keep settling: the routes must
				// reopen or the devices buffer forever.
				errs = append(errs, fmt.Errorf("cluster: replaying %d buffered transactions to %s: %w", n, owner, err))
			}
			pend = pend[n:]
		}
	}
}

// tagged builds the per-node alert relay feeding the router's fan-in
// callback.
func (r *Router) tagged(node string) func(NodeAlert) {
	return func(a NodeAlert) {
		// Trust the tag the node wrote; fall back to the member name for
		// older nodes that leave it empty.
		if a.Node == "" {
			a.Node = node
		}
		r.alerts(a)
	}
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
