package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"webtxprofile/internal/weblog"
)

// Member is one node of the cluster as the router sees it.
type Member struct {
	// Name is the node's cluster name — the rendezvous-hash identity.
	// Renaming a node reshuffles its devices; readdressing it does not.
	Name string
	// Addr is the node's TCP address.
	Addr string
}

// Membership is the router's versioned view of the cluster. Version
// increments on every effective AddNode/RemoveNode; duplicate events
// (adding a present member, removing an absent one) change nothing and
// keep the version, which is what makes membership delivery idempotent.
type Membership struct {
	Version int
	Members []Member // sorted by name
}

// RouterConfig tunes the router. The zero value selects the defaults.
type RouterConfig struct {
	// DrainBatch caps the transactions replayed per RPC when a drained
	// device's buffered backlog is flushed to its new owner (default 256).
	DrainBatch int
	// MaxWire caps the wire version the router advertises to nodes
	// (default MaxWireVersion). Each connection still negotiates down to
	// what its node speaks, so a mixed-version cluster works either way;
	// setting 1 forces JSON frames everywhere.
	MaxWire int
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.DrainBatch <= 0 {
		c.DrainBatch = 256
	}
	if c.MaxWire <= 0 || c.MaxWire > MaxWireVersion {
		c.MaxWire = MaxWireVersion
	}
	return c
}

// Router is the cluster front end: it places every device on a member
// node by rendezvous (highest-random-weight) hashing over the current
// membership view, forwards transactions to the owning node's monitor,
// and rebalances on membership changes by draining only the devices whose
// placement changed.
//
// Placement guarantees:
//
//   - A device's owner is the member with the highest rendezvous score
//     for it, so placement is stable: AddNode moves only devices whose
//     top score shifts to the new node (an expected 1/n of them), and
//     RemoveNode moves only the removed node's devices. No other device
//     is touched by a membership change.
//   - The routing table is authoritative over the hash: if a drain fails
//     (the importer refused or died), the affected devices stay routed to
//     their old owner — placement degrades, state does not.
//
// Drain guarantees:
//
//   - A drained device's identification state travels whole: window
//     buffer, consecutive-accept streaks, confirmed identity and
//     last-seen stamp (the core.DeviceState blob).
//   - Transactions arriving for a device mid-drain are buffered and
//     replayed to the new owner after the import, in arrival order, so no
//     window or streak is lost or reordered. Devices not being drained
//     keep feeding live throughout.
//   - The old owner's alerts for a drained device are all delivered
//     before the new owner's (the export reply is ordered after the
//     alerts on the node connection), so per-device alert order is
//     preserved across the handoff — the cluster-equivalence property the
//     clustertest suites assert.
//
// Feed, FeedBatch and membership changes may be called concurrently;
// transactions for one device must come from one goroutine at a time (the
// monitor's own contract). Rebalances are serialized internally.
type Router struct {
	alerts func(NodeAlert)
	cfg    RouterConfig

	// balMu serializes AddNode/RemoveNode so at most one rebalance is in
	// flight: drains assume no route is already draining when they mark
	// theirs.
	balMu sync.Mutex

	// mu guards the fields below. Lock order: a node handle's mu, when
	// held together with mu, is always acquired first — nothing waits for
	// a handle while holding mu.
	mu      sync.Mutex
	version int
	nodes   map[string]*nodeHandle
	routes  map[string]*route
	closed  bool
}

// nodeHandle is the router's connection to one member. Its mu serializes
// every RPC to the node, which is what makes a drain safe: once the
// drainer holds it, no previously-routed transaction is still in flight
// to that node.
type nodeHandle struct {
	member  Member
	mu      sync.Mutex
	client  *NodeClient
	leaving bool
}

// route is the authoritative placement of one device. While draining,
// arriving transactions accumulate in buf and are replayed by the drainer.
type route struct {
	node     string
	draining bool
	buf      []weblog.Transaction
}

// NewRouter creates a router with no members. alerts receives every
// identity transition from every node, tagged with its origin; it runs on
// the per-node receive goroutines and must be safe for concurrent use and
// non-blocking. Add at least one node before feeding.
func NewRouter(alerts func(NodeAlert), cfg RouterConfig) *Router {
	if alerts == nil {
		alerts = func(NodeAlert) {}
	}
	return &Router{
		alerts: alerts,
		cfg:    cfg.withDefaults(),
		nodes:  make(map[string]*nodeHandle),
		routes: make(map[string]*route),
	}
}

// View returns the current versioned membership.
func (r *Router) View() Membership {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Membership{Version: r.version}
	for _, h := range r.nodes {
		if !h.leaving {
			m.Members = append(m.Members, h.member)
		}
	}
	sort.Slice(m.Members, func(i, j int) bool { return m.Members[i].Name < m.Members[j].Name })
	return m
}

// Owner reports which node a device is currently routed to (ok=false for
// a device the router has never seen).
func (r *Router) Owner(device string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[device]
	if !ok {
		return "", false
	}
	return rt.node, true
}

// Devices returns the number of devices the router has placed.
func (r *Router) Devices() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.routes)
}

// Close disconnects from every node. Nodes keep running — closing the
// front end must not destroy the cluster's identification state.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	handles := make([]*nodeHandle, 0, len(r.nodes))
	for _, h := range r.nodes {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	var errs []error
	for _, h := range handles {
		if err := h.client.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Flush asks every node to complete pending windows and deliver all
// outstanding alerts (end-of-stream semantics); every resulting alert has
// been handed to the router's callback when Flush returns. Call it once
// feeding has stopped.
func (r *Router) Flush() error {
	r.mu.Lock()
	handles := make([]*nodeHandle, 0, len(r.nodes))
	for _, h := range r.nodes {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	var errs []error
	for _, h := range handles {
		h.mu.Lock()
		err := h.client.Flush()
		h.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("cluster: flushing node %s: %w", h.member.Name, err))
		}
	}
	return errors.Join(errs...)
}

// hrwScore is the rendezvous weight of placing device on node: FNV-1a
// over device then node (NUL-separated) pushed through a splitmix64
// finalizer. The finalizer matters: raw FNV-1a diffuses so weakly that
// the *comparison* of two scores is correlated across keys sharing a
// suffix — with similar node names, whole device ranges land on one node.
// Deterministic across processes so an operator can predict placement.
func hrwScore(node, device string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(device))
	h.Write([]byte{0})
	h.Write([]byte(node))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ownerLocked picks the highest-scoring non-leaving member for a device
// ("" when there are none). Ties break to the lexicographically smaller
// name so placement is total and deterministic.
func (r *Router) ownerLocked(device string) string {
	best, bestScore := "", uint64(0)
	for name, h := range r.nodes {
		if h.leaving {
			continue
		}
		s := hrwScore(name, device)
		if best == "" || s > bestScore || (s == bestScore && name < best) {
			best, bestScore = name, s
		}
	}
	return best
}

// routeLocked returns the device's route, placing it by rendezvous hash
// on first sight. Returns nil when the cluster has no usable members.
func (r *Router) routeLocked(device string) *route {
	if rt, ok := r.routes[device]; ok {
		if rt.draining || r.nodes[rt.node] != nil {
			return rt
		}
		// The recorded owner is gone (a failed drain settled onto a node
		// that then disappeared): re-place the device fresh.
		delete(r.routes, device)
	}
	owner := r.ownerLocked(device)
	if owner == "" {
		return nil
	}
	rt := &route{node: owner}
	r.routes[device] = rt
	return rt
}

// errNoMembers reports feeding an empty cluster.
var errNoMembers = errors.New("cluster: router has no member nodes")

// Feed routes one transaction to its device's owner. A transaction for a
// device mid-drain is buffered and replayed after the handoff; Feed
// returns immediately for it (its feed error, if any, surfaces from the
// membership call driving the drain). Feed is FeedBatch for one
// transaction — the routing, buffering and recheck rules are identical
// by construction.
func (r *Router) Feed(tx weblog.Transaction) error {
	return r.FeedBatch([]weblog.Transaction{tx})
}

// FeedBatch routes a batch, partitioning it per owning node and feeding
// each node its sub-batch in one RPC. Per-device transaction order is
// preserved (a device's transactions share one partition and are sent in
// slice order); transactions for devices mid-drain are buffered exactly
// like Feed's.
func (r *Router) FeedBatch(txs []weblog.Transaction) error {
	var errs []error
	pending := txs
	for rounds := 0; len(pending) > 0; rounds++ {
		if rounds > len(txs)+2 {
			// Each round either feeds, buffers, or re-routes after an
			// observed topology change; this bound is unreachable without
			// a livelock bug.
			errs = append(errs, fmt.Errorf("cluster: batch routing did not settle after %d rounds", rounds))
			break
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			errs = append(errs, ErrClientClosed)
			break
		}
		groups := make(map[string][]weblog.Transaction)
		for _, tx := range pending {
			rt := r.routeLocked(tx.SourceIP)
			if rt == nil {
				r.mu.Unlock()
				return errors.Join(append(errs, errNoMembers)...)
			}
			if rt.draining {
				rt.buf = append(rt.buf, tx)
				continue
			}
			groups[rt.node] = append(groups[rt.node], tx)
		}
		r.mu.Unlock()
		pending = nil
		// Deterministic node order keeps joined errors stable.
		names := make([]string, 0, len(groups))
		for name := range groups {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			group := groups[name]
			r.mu.Lock()
			h := r.nodes[name]
			r.mu.Unlock()
			if h == nil {
				pending = append(pending, group...) // node left; re-route
				continue
			}
			h.mu.Lock()
			r.mu.Lock()
			send := group[:0]
			for _, tx := range group {
				rt := r.routes[tx.SourceIP]
				switch {
				case rt == nil || rt.node != name:
					pending = append(pending, tx) // moved; re-route
				case rt.draining:
					rt.buf = append(rt.buf, tx)
				default:
					send = append(send, tx)
				}
			}
			r.mu.Unlock()
			if len(send) > 0 {
				if err := h.client.Feed(send); err != nil {
					errs = append(errs, fmt.Errorf("cluster: feeding node %s: %w", name, err))
				}
			}
			h.mu.Unlock()
		}
	}
	return errors.Join(errs...)
}

// AddNode joins a member and rebalances: exactly the devices whose
// rendezvous placement moves to the new node are drained from their
// current owners (state exported, transactions buffered and replayed) and
// imported there. Adding an already-present member with the same address
// is an idempotent no-op; the same name at a different address is an
// error (drop the old member first). If the new node refuses or loses an
// import, those devices stay on their old owner with nothing lost, and
// AddNode reports the failure while the membership (already extended)
// stands.
func (r *Router) AddNode(m Member) error {
	if m.Name == "" || m.Addr == "" {
		return fmt.Errorf("cluster: member needs name and addr, got %+v", m)
	}
	r.balMu.Lock()
	defer r.balMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClientClosed
	}
	if h, ok := r.nodes[m.Name]; ok {
		known := h.member
		r.mu.Unlock()
		if known.Addr == m.Addr {
			return nil // duplicate membership event: idempotent
		}
		return fmt.Errorf("cluster: member %s already at %s (got %s)", m.Name, known.Addr, m.Addr)
	}
	r.mu.Unlock()

	client, err := DialNodeWire(m.Addr, r.tagged(m.Name), r.cfg.MaxWire)
	if err != nil {
		return err
	}
	h := &nodeHandle{member: m, client: client}

	r.mu.Lock()
	r.nodes[m.Name] = h
	r.version++
	// Devices whose top rendezvous score moved to the new node drain
	// from their current owners. balMu guarantees none is mid-drain.
	moves := make(map[string][]string)
	for device, rt := range r.routes {
		if rt.node != m.Name && r.ownerLocked(device) == m.Name {
			rt.draining = true
			moves[rt.node] = append(moves[rt.node], device)
		}
	}
	r.mu.Unlock()

	var errs []error
	for _, src := range sortedKeys(moves) {
		if _, err := r.drain(src, m.Name, moves[src], false); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// RemoveNode drains every device off a member (each to its rendezvous
// owner among the remaining members) and drops it from the view. Removing
// an unknown member is an idempotent no-op; removing the last member is
// an error. If a destination refuses an import, the affected devices are
// restored onto the leaving node and the removal is aborted — the node
// stays a member — so state is never stranded on a closed connection.
func (r *Router) RemoveNode(name string) error {
	r.balMu.Lock()
	defer r.balMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClientClosed
	}
	h, ok := r.nodes[name]
	if !ok {
		r.mu.Unlock()
		return nil // duplicate membership event: idempotent
	}
	live := 0
	for _, other := range r.nodes {
		if !other.leaving {
			live++
		}
	}
	if live <= 1 {
		r.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove %s: it is the last member", name)
	}
	h.leaving = true // new devices stop placing here
	moves := make(map[string][]string)
	for device, rt := range r.routes {
		if rt.node != name {
			continue
		}
		dst := r.ownerLocked(device)
		rt.draining = true
		moves[dst] = append(moves[dst], device)
	}
	r.mu.Unlock()

	var errs []error
	aborted := false
	for _, dst := range sortedKeys(moves) {
		fellBack, err := r.drain(name, dst, moves[dst], true)
		if err != nil {
			errs = append(errs, err)
		}
		if fellBack {
			aborted = true
		}
	}
	if aborted {
		// Some devices are back on the leaving node: keep it a member.
		r.mu.Lock()
		h.leaving = false
		r.mu.Unlock()
		return errors.Join(append(errs, fmt.Errorf("cluster: removal of %s aborted, node remains a member", name))...)
	}
	r.mu.Lock()
	delete(r.nodes, name)
	r.version++
	r.mu.Unlock()
	if err := h.client.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// drain moves the named devices (already marked draining by the caller)
// from src to dst: export, import, then replay of the transactions
// buffered meanwhile. On import failure the state blob is put back on src
// and the devices settle there (fellBack=true). On export failure with
// leavingSrc the devices settle on dst fresh — their state is lost with
// the failing source, which is exactly the node being removed — otherwise
// they settle back on src.
func (r *Router) drain(src, dst string, devices []string, leavingSrc bool) (fellBack bool, err error) {
	sort.Strings(devices)
	r.mu.Lock()
	hs, hd := r.nodes[src], r.nodes[dst]
	r.mu.Unlock()

	hs.mu.Lock()
	blob, exported, exportErr := hs.client.Export(devices)
	hs.mu.Unlock()
	if exportErr != nil {
		if leavingSrc {
			// The leaving node could not hand its state over; the devices
			// restart fresh on their new owner rather than pointing at a
			// node that is going away.
			serr := r.settle(devices, dst)
			return false, errors.Join(fmt.Errorf("cluster: exporting %d devices from leaving %s (state lost): %w", len(devices), src, exportErr), serr)
		}
		serr := r.settle(devices, src)
		return true, errors.Join(fmt.Errorf("cluster: exporting %d devices from %s: %w", len(devices), src, exportErr), serr)
	}

	hd.mu.Lock()
	_, importErr := hd.client.Import(blob)
	hd.mu.Unlock()
	if importErr != nil {
		// The importer refused or died mid-import. The blob is still in
		// hand: put the devices back on their old owner so nothing is
		// lost. Re-import into src cannot collide — src stopped tracking
		// these devices when it exported them.
		hs.mu.Lock()
		_, restoreErr := hs.client.Import(blob)
		hs.mu.Unlock()
		serr := r.settle(devices, src)
		err := fmt.Errorf("cluster: importing %d devices into %s, kept on %s: %w", exported, dst, src, importErr)
		if !errors.Is(importErr, ErrNodeRefused) {
			// A transport failure, not a refusal: the import may have
			// been applied before the reply was lost, in which case dst
			// now holds a copy that will diverge. Surface it — the
			// operator must clear dst (restart, or drop and re-add the
			// member) before it can own these devices again.
			err = fmt.Errorf("%w; importer unreachable mid-import, %s may hold a stale copy — clear it before it rejoins", err, dst)
		}
		return true, errors.Join(err, restoreErr, serr)
	}
	return false, r.settle(devices, dst)
}

// settle replays the drained devices' buffered transactions to owner
// until the buffers run dry, then reopens the routes there. The loop
// chases feeds that keep arriving mid-replay; each pass replays what
// accumulated during the previous one, and the routes reopen atomically
// with observing all buffers empty.
func (r *Router) settle(devices []string, owner string) error {
	var errs []error
	for {
		r.mu.Lock()
		h := r.nodes[owner]
		var pend []weblog.Transaction
		for _, d := range devices {
			if rt := r.routes[d]; rt != nil && len(rt.buf) > 0 {
				pend = append(pend, rt.buf...)
				rt.buf = nil
			}
		}
		if len(pend) == 0 || h == nil {
			for _, d := range devices {
				if rt := r.routes[d]; rt != nil {
					rt.node = owner
					rt.draining = false
				}
			}
			r.mu.Unlock()
			if h == nil {
				errs = append(errs, fmt.Errorf("cluster: settling %d devices on unknown node %s", len(devices), owner))
			}
			return errors.Join(errs...)
		}
		r.mu.Unlock()
		for len(pend) > 0 {
			n := min(r.cfg.DrainBatch, len(pend))
			h.mu.Lock()
			err := h.client.Feed(pend[:n])
			h.mu.Unlock()
			if err != nil {
				// Surface the error but keep settling: the routes must
				// reopen or the devices buffer forever.
				errs = append(errs, fmt.Errorf("cluster: replaying %d buffered transactions to %s: %w", n, owner, err))
			}
			pend = pend[n:]
		}
	}
}

// tagged builds the per-node alert relay feeding the router's fan-in
// callback.
func (r *Router) tagged(node string) func(NodeAlert) {
	return func(a NodeAlert) {
		// Trust the tag the node wrote; fall back to the member name for
		// older nodes that leave it empty.
		if a.Node == "" {
			a.Node = node
		}
		r.alerts(a)
	}
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
