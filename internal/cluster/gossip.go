package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Router replication. Routers are stateless by design — placement is
// derivable from membership by rendezvous hashing, and the devices
// themselves are discoverable from the nodes (List) — so any number of
// router replicas can front the same cluster. The one piece of state
// that is *not* derivable is the override table: the memory of settled
// placements that disagree with the pure hash (failed drains, aborted
// removals). Replicas reconcile it, together with the versioned
// membership view, by exchanging GossipState — a last-writer-wins merge
// that converges under any interleaving of exchanges.

// Gossip snapshots this router's shareable state: the versioned
// membership and the override table.
func (r *Router) Gossip() GossipState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return GossipState{Membership: r.viewLocked(), Overrides: r.overrides.Snapshot()}
}

func (r *Router) viewLocked() Membership {
	m := Membership{Version: r.version}
	for _, h := range r.nodes {
		if !h.leaving {
			m.Members = append(m.Members, h.member)
		}
	}
	sort.Slice(m.Members, func(i, j int) bool { return m.Members[i].Name < m.Members[j].Name })
	return m
}

// MergeGossip reconciles a peer's state into this router and returns
// this router's (post-merge) state, so one exchange converges both ends.
// Overrides merge by version with a deterministic tie-break — the merge
// is commutative, associative and idempotent, so replicas converge
// regardless of exchange order. A membership view with a strictly higher
// version is adopted wholesale: missing members are dialed, departed
// members dropped, and — deliberately — nothing is drained: rebalancing
// is the job of the router that ran the membership change; a replica
// merely catching up must not move state. A dial failure rejects the
// adoption (the old view stands) and surfaces in the error.
func (r *Router) MergeGossip(g GossipState) (GossipState, error) {
	statGossipRounds.Add(1)
	err := r.adoptMembership(g.Membership)
	r.mu.Lock()
	r.overrides.Merge(g.Overrides)
	reply := GossipState{Membership: r.viewLocked(), Overrides: r.overrides.Snapshot()}
	r.mu.Unlock()
	return reply, err
}

// adoptMembership installs a strictly newer membership view without
// rebalancing.
func (r *Router) adoptMembership(m Membership) error {
	r.balMu.Lock()
	defer r.balMu.Unlock()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClientClosed
	}
	if m.Version <= r.version {
		r.mu.Unlock()
		return nil
	}
	current := make(map[string]Member, len(r.nodes))
	for name, h := range r.nodes {
		current[name] = h.member
	}
	r.mu.Unlock()

	// Dial additions outside the lock; all must succeed before anything
	// is installed, so a half-reachable view never replaces a working one.
	added := make(map[string]*nodeHandle)
	abort := func() {
		for _, h := range added {
			h.client.Close()
		}
	}
	for _, mem := range m.Members {
		if known, ok := current[mem.Name]; ok && known.Addr == mem.Addr {
			continue
		}
		client, err := r.dialMember(mem)
		if err != nil {
			abort()
			return fmt.Errorf("cluster: adopting membership v%d: %w", m.Version, err)
		}
		added[mem.Name] = &nodeHandle{member: mem, client: client}
	}

	keep := make(map[string]bool, len(m.Members))
	for _, mem := range m.Members {
		keep[mem.Name] = true
	}
	var closing []*nodeHandle
	r.mu.Lock()
	if m.Version <= r.version { // raced with a local membership change
		r.mu.Unlock()
		abort()
		return nil
	}
	for name, h := range added {
		if old := r.nodes[name]; old != nil {
			closing = append(closing, old) // readdressed member
		}
		r.nodes[name] = h
	}
	for name, h := range r.nodes {
		if !keep[name] {
			closing = append(closing, h)
			delete(r.nodes, name)
		}
	}
	r.version = m.Version
	r.mu.Unlock()
	statViewAdoptions.Add(1)
	for _, h := range closing {
		h.client.Close()
	}
	return nil
}

// GossipServer accepts gossip exchanges for one router over the frame
// protocol: each inbound gossip frame is merged and answered with the
// router's own state (FrameOK carrying GossipState).
type GossipServer struct {
	router *Router
	ln     net.Listener
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ServeGossip starts a gossip listener for the router on addr (e.g.
// "127.0.0.1:0").
func ServeGossip(r *Router, addr string) (*GossipServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &GossipServer{router: r, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *GossipServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for in-flight exchanges.
func (s *GossipServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *GossipServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *GossipServer) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(time.Minute))
		f, err := ReadFrame(br)
		if err != nil {
			return
		}
		reply := Frame{Seq: f.Seq}
		if f.Type != FrameGossip || f.Gossip == nil {
			reply.Type = FrameError
			reply.Error = fmt.Sprintf("gossip endpoint got %q frame", f.Type)
		} else {
			state, err := s.router.MergeGossip(*f.Gossip)
			reply.Type = FrameOK
			reply.Gossip = &state
			if err != nil {
				// The merge result is still valid (overrides merged, old
				// view kept); the error travels in-band so the peer knows
				// its view was not adopted.
				reply.Type = FrameError
				reply.Error = err.Error()
				reply.Gossip = &state
			}
		}
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := WriteFrame(bw, reply); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// GossipWith runs one exchange against a peer router's gossip listener:
// sends this router's state, merges the peer's reply. One successful
// call converges both replicas' override tables and membership views.
func (r *Router) GossipWith(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("cluster: gossip dial %s: %w", addr, err)
	}
	defer conn.Close()
	own := r.Gossip()
	bw := bufio.NewWriter(conn)
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := WriteFrame(bw, Frame{Type: FrameGossip, Seq: 1, Gossip: &own}); err != nil {
		return fmt.Errorf("cluster: gossip to %s: %w", addr, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cluster: gossip to %s: %w", addr, err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Minute))
	reply, err := ReadFrame(bufio.NewReader(conn))
	if err != nil {
		return fmt.Errorf("cluster: gossip reply from %s: %w", addr, err)
	}
	var peerErr error
	if reply.Type == FrameError {
		peerErr = fmt.Errorf("cluster: gossip peer %s: %s", addr, reply.Error)
	}
	if reply.Gossip != nil {
		if _, err := r.MergeGossip(*reply.Gossip); err != nil {
			return errors.Join(peerErr, err)
		}
	}
	return peerErr
}
