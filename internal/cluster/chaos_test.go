package cluster_test

import (
	"strings"
	"testing"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
)

// Fault-injection suite for the drain path: a router facing a node that
// refuses or dies on ImportShard must keep the affected devices on their
// old owner with no identification state lost, and membership events must
// be idempotent. The failing nodes are protocol-level impostors
// (clustertest.FlakyNode), so the router is tested against real wire
// behaviour, not injected hooks.

// runFlakyJoin feeds half the workload into a healthy 2-node cluster,
// joins a flaky node (which fails every import per mode), feeds the rest,
// and asserts nothing diverged from the single-monitor reference.
func runFlakyJoin(t *testing.T, mode clustertest.FlakyMode) {
	set, ds := clustertest.TrainedSet(t)
	txs, devices := clustertest.Workload(t, ds, 7, 4000)
	want := clustertest.ReferenceSigs(t, set, equivK, txs)
	h := clustertest.NewHarness(t, set, equivK, "n1", "n2")

	half := len(txs) / 2
	if err := h.Router.FeedBatch(txs[:half]); err != nil {
		t.Fatal(err)
	}
	flaky := clustertest.StartFlakyNode(t, "chaos", mode)
	err := h.Router.AddNode(cluster.Member{Name: "chaos", Addr: flaky.Addr()})
	if err == nil {
		t.Fatal("AddNode(flaky) reported success though every import failed")
	}
	if !strings.Contains(err.Error(), "kept on") {
		t.Errorf("AddNode error does not describe the fallback: %v", err)
	}
	// The two-phase handoff aborts and re-adopts on its own: a failed
	// drain must not tell the operator to clean up a stale copy.
	if strings.Contains(err.Error(), "stale") {
		t.Errorf("failed drain warns about a stale copy — abort re-adopts automatically: %v", err)
	}
	if flaky.Imports() == 0 {
		t.Fatal("no import ever reached the flaky node — the drain path was not exercised")
	}
	// Every device must still be owned by a healthy founding member.
	for _, d := range devices {
		owner, ok := h.Router.Owner(d)
		if !ok {
			t.Fatalf("device %s lost its route", d)
		}
		if owner == "chaos" {
			t.Errorf("device %s routed to the node that failed its import", d)
		}
	}
	// Drop the broken member (the operator's move after a failed join).
	// It holds no devices, so the removal is a pure membership event —
	// and repeating it is a no-op.
	if err := h.Router.RemoveNode("chaos"); err != nil {
		t.Errorf("RemoveNode(chaos): %v", err)
	}
	if err := h.Router.RemoveNode("chaos"); err != nil {
		t.Errorf("second RemoveNode(chaos): %v", err)
	}
	if err := h.Router.FeedBatch(txs[half:]); err != nil {
		t.Fatal(err)
	}
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	// The proof that no state was lost: alert sequences byte-identical
	// to the never-resharded reference, across the failed rebalance.
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
}

func TestClusterImportRefusedKeepsOldOwner(t *testing.T) {
	runFlakyJoin(t, clustertest.FailImport)
}

func TestClusterImporterDiesMidDrain(t *testing.T) {
	runFlakyJoin(t, clustertest.DieOnImport)
}

// TestNodeRejectsCorruptImport: a corrupt state blob must fail exactly
// the import RPC — the node survives it and keeps identifying.
func TestNodeRejectsCorruptImport(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 2, 100)
	h := clustertest.NewHarness(t, set, equivK, "lone")
	n := h.Node("lone")

	c, err := cluster.DialNode(n.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, blob := range [][]byte{nil, []byte("not gzip"), {0x1f, 0x8b, 0xff, 0xff}} {
		if _, err := c.Import(blob); err == nil {
			t.Errorf("corrupt blob %q imported without error", blob)
		}
	}
	// The failing transactions are the imports only: the node still
	// feeds, exports and reports stats afterwards.
	if err := c.Feed(txs); err != nil {
		t.Fatalf("feed after corrupt imports: %v", err)
	}
	devs, err := c.Devices()
	if err != nil || devs != 2 {
		t.Fatalf("Devices = %d, %v; want 2", devs, err)
	}
	blob, exported, err := c.Export([]string{txs[0].SourceIP})
	if err != nil || exported != 1 {
		t.Fatalf("Export = %d, %v; want 1", exported, err)
	}
	if imported, err := c.Import(blob); err != nil || imported != 1 {
		t.Fatalf("re-Import of healthy blob = %d, %v; want 1", imported, err)
	}
}

// TestClusterDuplicateMembershipIdempotent: replaying membership events
// must not change the view, re-drain devices, or disturb routing.
func TestClusterDuplicateMembershipIdempotent(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 5, 500)
	h := clustertest.NewHarness(t, set, equivK, "n1", "n2")
	if err := h.Router.FeedBatch(txs); err != nil {
		t.Fatal(err)
	}
	v0 := h.Router.View()

	// Duplicate AddNode: same member, same address.
	n1 := h.Node("n1")
	if err := h.Router.AddNode(cluster.Member{Name: "n1", Addr: n1.Addr().String()}); err != nil {
		t.Errorf("duplicate AddNode(n1): %v", err)
	}
	// Same name at a different address is a conflict, not a duplicate.
	if err := h.Router.AddNode(cluster.Member{Name: "n1", Addr: "127.0.0.1:1"}); err == nil {
		t.Error("AddNode(n1) at a different address accepted")
	}
	// Duplicate RemoveNode of a node that was never a member.
	if err := h.Router.RemoveNode("never-joined"); err != nil {
		t.Errorf("RemoveNode(never-joined): %v", err)
	}
	if v := h.Router.View(); v.Version != v0.Version || len(v.Members) != len(v0.Members) {
		t.Errorf("duplicate events changed the view: %+v -> %+v", v0, v)
	}

	// Removing the last member must be refused, twice over.
	if err := h.Router.RemoveNode("n2"); err != nil {
		t.Fatalf("RemoveNode(n2): %v", err)
	}
	if err := h.Router.RemoveNode("n1"); err == nil {
		t.Error("removed the last member")
	}
	if v := h.Router.View(); v.Version != v0.Version+1 {
		t.Errorf("version = %d after one effective removal, want %d", v.Version, v0.Version+1)
	}
}
