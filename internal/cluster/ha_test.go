package cluster_test

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
	"webtxprofile/internal/weblog"
)

// High-availability suite: every fault here is injected at an exact
// protocol step through clustertest.ChaosProxy, so the runs are
// deterministic (probabilistic choices replay from the logged
// WTP_CHAOS_SEED) and the invariant under test is always the same one —
// per-device alert sequences byte-identical to a single never-resharded
// monitor, no matter which connection died when.

// fastReconnect keeps chaos runs quick: the production defaults back off
// over seconds, which is right for operators and wrong for tests.
func fastReconnect() cluster.ReconnectConfig {
	return cluster.ReconnectConfig{MaxAttempts: 20, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
}

// TestChaosReconnectStorm kills the connection under a bounded random
// sample of feed frames to one node. The client must reconnect, replay
// its unacknowledged queue, and the node's dedup window must collapse the
// re-sends — proven end to end by alert-sequence equivalence, which fails
// on any lost or double-fed transaction.
func TestChaosReconnectStorm(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 6, 4000)
	want := clustertest.ReferenceSigs(t, set, equivK, txs)

	rng := rand.New(rand.NewSource(clustertest.ChaosSeed(t)))
	var mu sync.Mutex
	kills := 0
	// Only feed frames are killed: handshakes always succeed, so every
	// kill is a mid-stream loss, never a dial failure counting toward the
	// node-down verdict.
	plan := func(ev clustertest.FaultEvent) clustertest.FaultAction {
		if ev.Dir != clustertest.ToNode || ev.Frame.Type != cluster.FrameFeed {
			return clustertest.Pass
		}
		mu.Lock()
		defer mu.Unlock()
		if kills < 6 && rng.Intn(4) == 0 {
			kills++
			return clustertest.Kill
		}
		return clustertest.Pass
	}

	h := clustertest.NewHarnessConfig(t, set, equivK, clustertest.HarnessConfig{
		Router: cluster.RouterConfig{Client: cluster.ClientConfig{Reconnect: fastReconnect()}},
	}, "n1")
	n2 := h.StartNode(t, "n2")
	proxy := clustertest.StartChaosProxy(t, n2.Addr().String(), plan)
	if err := h.Router.AddNode(cluster.Member{Name: "n2", Addr: proxy.Addr()}); err != nil {
		t.Fatal(err)
	}

	// Feed in small batches so the stream to n2 spans many frames — each
	// one a kill candidate.
	for i := 0; i < len(txs); i += 50 {
		end := min(i+50, len(txs))
		if err := h.Router.FeedBatch(txs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	// Feeding is asynchronous — the frames cross the proxy (and meet the
	// storm) during this barrier. Sync is idempotent, so it retries until
	// the kill budget runs out and a pass gets through.
	for attempt := 0; ; attempt++ {
		err := h.Router.Sync()
		if err == nil {
			break
		}
		if attempt >= 10 {
			t.Fatalf("sync never survived the storm: %v", err)
		}
	}
	proxy.SetPlan(nil)
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	if proxy.Kills() == 0 {
		t.Fatal("no connection was ever killed — the storm tested nothing")
	}
	t.Logf("survived %d mid-stream connection kills", proxy.Kills())
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
}

// TestReplayOverflowTyped partitions the node and feeds past the replay
// queue's depth: the overflow must surface as the typed ErrReplayOverflow
// (callers shed load on it), and after the partition heals the queued
// entries must still deliver.
func TestReplayOverflowTyped(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, devices := clustertest.Workload(t, ds, 3, 60)
	h := clustertest.NewHarness(t, set, equivK) // nodes only, no router members
	n := h.StartNode(t, "solo")
	proxy := clustertest.StartChaosProxy(t, n.Addr().String(), nil)

	const depth = 4
	rc := fastReconnect()
	rc.MaxAttempts = 500 // survive the partition; the test heals it
	rc.ReplayDepth = depth
	c, err := cluster.DialNodeConfig(proxy.Addr(), nil, cluster.ClientConfig{Reconnect: rc})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	i := 0
	for ; i < 10; i++ {
		if err := c.FeedSync(txs[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	proxy.Partition()

	// The next feeds buffer (the queue has room even before the client
	// notices the dead socket); once the queue is full the call blocks
	// until the failure is detected, then fails typed.
	var overflow error
	for i < len(txs) {
		err := c.Feed(txs[i : i+1])
		if err != nil {
			overflow = err
			break
		}
		i++
	}
	if overflow == nil {
		t.Fatal("the replay queue never overflowed across a partition")
	}
	if !errors.Is(overflow, cluster.ErrReplayOverflow) {
		t.Fatalf("overflow error is not ErrReplayOverflow: %v", overflow)
	}
	if i >= len(txs)-1 {
		t.Fatalf("only %d of %d transactions left to deliver after overflow — workload too small to prove recovery", len(txs)-i, len(txs))
	}

	proxy.Heal()
	// The overflowed transaction was never queued: delivery resumes from
	// it, retrying while the backlog drains.
	deadline := time.Now().Add(10 * time.Second)
	for ; i < len(txs); i++ {
		for {
			err := c.FeedSync(txs[i : i+1])
			if err == nil {
				break
			}
			if !errors.Is(err, cluster.ErrReplayOverflow) || time.Now().After(deadline) {
				t.Fatalf("tx %d after heal: %v", i, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if devs, err := c.Devices(); err != nil || devs != len(devices) {
		t.Fatalf("Devices = %d, %v; want %d — the healed queue did not deliver", devs, err, len(devices))
	}
}

// TestRouterReplicationKillMidStream runs two router replicas over the
// same nodes: B adopts A's membership by gossip, A feeds the first
// segment and crashes, B feeds the rest. The shared recorder must see
// every alert exactly once (replica subscriptions overlap, so nonzero
// dedup proves B really was live the whole time) and the merged sequence
// must match the reference.
func TestRouterReplicationKillMidStream(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 6, 4000)
	want := clustertest.ReferenceSigs(t, set, equivK, txs)
	h := clustertest.NewHarness(t, set, equivK, "n1", "n2")

	rB := cluster.NewRouter(h.Alerts.Record, cluster.RouterConfig{})
	defer rB.Close()
	if _, err := rB.MergeGossip(h.Router.Gossip()); err != nil {
		t.Fatal(err)
	}
	if got, wantView := rB.View(), h.Router.View(); !reflect.DeepEqual(got, wantView) {
		t.Fatalf("replica view %+v after gossip, want %+v", got, wantView)
	}

	cut := len(txs) * 3 / 5
	if err := h.Router.FeedBatch(txs[:cut]); err != nil {
		t.Fatal(err)
	}
	// Sync, not Flush: the nodes must have processed A's queued feeds
	// before B takes over the stream, but no window may complete early.
	if err := h.Router.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Router.Close(); err != nil { // replica A crashes
		t.Fatal(err)
	}
	if err := rB.FeedBatch(txs[cut:]); err != nil {
		t.Fatal(err)
	}
	if err := rB.Flush(); err != nil {
		t.Fatal(err)
	}
	if h.Alerts.Dups() == 0 {
		t.Error("no duplicate alert delivery was collapsed — the replica subscriptions never overlapped")
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
}

// TestChaosPartitionMidDrain stages an import on the joining node, kills
// the connection carrying its acknowledgement, and partitions the node
// away. The two-phase handoff must resolve this worst case — staging
// landed, router cannot know — with zero live copies on the new node:
// the devices stay on their old owners, the orphaned staging is invisible
// (held for the TTL sweep, never identified against), and the operator
// gets a fallback report, not a stale-copy warning.
func TestChaosPartitionMidDrain(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	txs, devices := clustertest.Workload(t, ds, 7, 4000)
	want := clustertest.ReferenceSigs(t, set, equivK, txs)

	rc := fastReconnect()
	rc.MaxAttempts = 2 // fail over quickly once the partition hits
	h := clustertest.NewHarnessConfig(t, set, equivK, clustertest.HarnessConfig{
		Router: cluster.RouterConfig{Client: cluster.ClientConfig{Reconnect: rc}},
	}, "n1", "n2")

	half := len(txs) / 2
	if err := h.Router.FeedBatch(txs[:half]); err != nil {
		t.Fatal(err)
	}

	n3 := h.StartNode(t, "n3")
	var mu sync.Mutex
	var impConn int
	var impSeq uint64
	dead := false
	plan := func(ev clustertest.FaultEvent) clustertest.FaultAction {
		mu.Lock()
		defer mu.Unlock()
		if dead {
			return clustertest.Kill
		}
		if ev.Dir == clustertest.ToNode && ev.Frame.Type == cluster.FrameImport {
			impConn, impSeq = ev.Conn, ev.Frame.Seq
			return clustertest.Pass // the staging reaches the node…
		}
		if ev.Dir == clustertest.ToClient && impSeq != 0 && ev.Conn == impConn && ev.Frame.Seq == impSeq {
			dead = true // …but its ack is lost, and the node partitions away
			return clustertest.Kill
		}
		return clustertest.Pass
	}
	proxy := clustertest.StartChaosProxy(t, n3.Addr().String(), plan)

	err := h.Router.AddNode(cluster.Member{Name: "n3", Addr: proxy.Addr()})
	if err == nil {
		t.Fatal("AddNode reported success though the importer partitioned mid-drain")
	}
	if !strings.Contains(err.Error(), "kept on") {
		t.Errorf("AddNode error does not describe the fallback: %v", err)
	}
	if strings.Contains(err.Error(), "stale") {
		t.Errorf("failed drain warns about a stale copy — abort re-adopts automatically, nothing is stale: %v", err)
	}
	// The lost ack left exactly one orphaned staging on n3 — invisible:
	// no device on the node identifies against it.
	if p := n3.Monitor().PendingHandoffs(); p != 1 {
		t.Errorf("n3 pending handoffs = %d, want 1 (the staging whose ack was lost)", p)
	}
	if d := n3.Monitor().Devices(); d != 0 {
		t.Errorf("n3 tracks %d devices — the uncommitted staging leaked into live state", d)
	}
	for _, d := range devices {
		owner, ok := h.Router.Owner(d)
		if !ok {
			t.Fatalf("device %s lost its route", d)
		}
		if owner == "n3" {
			t.Errorf("device %s routed to the partitioned importer", d)
		}
	}
	if err := h.Router.RemoveNode("n3"); err != nil {
		t.Errorf("RemoveNode(n3): %v", err)
	}
	if err := h.Router.FeedBatch(txs[half:]); err != nil {
		t.Fatal(err)
	}
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
}

// TestRouterRouteSweep bounds the routing table: a device idle past
// RouteIdleTTL in stream time loses its route, and a late transaction
// re-derives the same placement — so sweeping is invisible to
// correctness, which the equivalence check confirms.
func TestRouterRouteSweep(t *testing.T) {
	set, ds := clustertest.TrainedSet(t)
	all, devices := clustertest.Workload(t, ds, 5, 4000)
	idle := devices[0]
	cutoff := all[len(all)/2].Timestamp

	// The idle device goes quiet at the cutoff; exactly one of its late
	// transactions is held back and fed after everything else.
	var early, late []weblog.Transaction
	var held weblog.Transaction
	haveHeld := false
	for _, tx := range all {
		if tx.SourceIP == idle && !tx.Timestamp.Before(cutoff) {
			if !haveHeld {
				held, haveHeld = tx, true
			}
			continue
		}
		if tx.Timestamp.Before(cutoff) {
			early = append(early, tx)
		} else {
			late = append(late, tx)
		}
	}
	if !haveHeld {
		t.Fatal("workload has no late transaction for the idle device")
	}
	stream := make([]weblog.Transaction, 0, len(early)+len(late)+1)
	stream = append(append(append(stream, early...), late...), held)
	want := clustertest.ReferenceSigs(t, set, equivK, stream)

	ttl := all[len(all)-1].Timestamp.Sub(cutoff) / 4
	if ttl <= 0 {
		t.Fatalf("workload spans no stream time past the cutoff")
	}
	h := clustertest.NewHarnessConfig(t, set, equivK, clustertest.HarnessConfig{
		Router: cluster.RouterConfig{RouteIdleTTL: ttl},
	}, "n1", "n2")

	if err := h.Router.FeedBatch(early); err != nil {
		t.Fatal(err)
	}
	ownerBefore, ok := h.Router.Owner(idle)
	if !ok {
		t.Fatalf("device %s has no route while actively feeding", idle)
	}
	if err := h.Router.FeedBatch(late); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Router.Owner(idle); ok {
		t.Errorf("device %s still routed after %v of stream idleness", idle, ttl)
	}
	if n := h.Router.Devices(); n >= len(devices) {
		t.Errorf("routing table holds %d routes, want under %d — the sweep is not bounding it", n, len(devices))
	}
	if err := h.Router.FeedBatch([]weblog.Transaction{held}); err != nil {
		t.Fatal(err)
	}
	ownerAfter, ok := h.Router.Owner(idle)
	if !ok {
		t.Fatalf("device %s has no route after its late transaction", idle)
	}
	if ownerAfter != ownerBefore {
		t.Errorf("device %s re-placed on %s after the sweep, was on %s — placement must be derivable", idle, ownerAfter, ownerBefore)
	}
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
}

// TestGossipWireExchange runs one gossip exchange over the wire and
// requires full convergence: the fresh replica adopts the serving
// router's membership and override table, byte for byte, and a repeat
// exchange changes nothing.
func TestGossipWireExchange(t *testing.T) {
	set, _ := clustertest.TrainedSet(t)
	h := clustertest.NewHarness(t, set, equivK, "n1", "n2")

	// Seed a nonempty override table — one live pin, one tombstone — the
	// way a peer's gossip would.
	var tbl cluster.OverrideTable
	tbl.Set(cluster.Override{Device: "10.9.0.1", Node: "n1", Ver: 7})
	tbl.Set(cluster.Override{Device: "10.9.0.2", Ver: 3})
	if _, err := h.Router.MergeGossip(cluster.GossipState{Overrides: tbl.Snapshot()}); err != nil {
		t.Fatal(err)
	}

	srv, err := cluster.ServeGossip(h.Router, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rB := cluster.NewRouter(nil, cluster.RouterConfig{})
	defer rB.Close()
	for round := 1; round <= 2; round++ {
		if err := rB.GossipWith(srv.Addr().String()); err != nil {
			t.Fatalf("exchange %d: %v", round, err)
		}
		a, b := h.Router.Gossip(), rB.Gossip()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("exchange %d did not converge:\n a: %+v\n b: %+v", round, a, b)
		}
	}
	if v := rB.View(); len(v.Members) != 2 {
		t.Fatalf("replica adopted %d members, want 2", len(v.Members))
	}
}
