package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

// sampleWireTx is a minimal valid transaction for routing-only tests.
func sampleWireTx() weblog.Transaction {
	return weblog.Transaction{
		Timestamp: time.Date(2015, 1, 5, 9, 0, 0, 0, time.UTC),
		Host:      "svc.example.com", Scheme: taxonomy.SchemeHTTP,
		Action: taxonomy.ActionGet, UserID: "user_1",
		SourceIP: "10.0.0.1", Category: "Games",
		MediaType: taxonomy.MediaType{Super: "text", Sub: "html"},
		AppType:   "app", Reputation: taxonomy.MinimalRisk,
	}
}

// fakeView builds a router with bare member handles (no connections) —
// enough for the placement logic, which never touches clients.
func fakeView(names ...string) *Router {
	r := NewRouter(nil, RouterConfig{})
	for _, n := range names {
		r.nodes[n] = &nodeHandle{member: Member{Name: n, Addr: "-"}}
	}
	return r
}

func devices(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.%d.%d.%d", i/65536, (i/256)%256, i%256)
	}
	return out
}

// TestRendezvousPlacementStability is the HRW contract: growing the view
// moves devices only onto the new node, shrinking it moves only the
// removed node's devices, and nothing else shifts.
func TestRendezvousPlacementStability(t *testing.T) {
	devs := devices(4096)
	small := fakeView("n1", "n2", "n3")
	big := fakeView("n1", "n2", "n3", "n4")

	moved := 0
	for _, d := range devs {
		a, b := small.ownerLocked(d), big.ownerLocked(d)
		if a == "" || b == "" {
			t.Fatalf("no owner for %s", d)
		}
		if a != b {
			moved++
			if b != "n4" {
				t.Fatalf("device %s moved %s→%s on AddNode(n4): only moves onto the new node are allowed", d, a, b)
			}
		} else if b == "n4" {
			t.Fatalf("device %s owned by n4 in both views; n4 is not in the small view", d)
		}
	}
	// An expected 1/4 of devices lands on the new node; far off means the
	// hash is biased or the stability property is vacuous.
	if frac := float64(moved) / float64(len(devs)); frac < 0.15 || frac > 0.35 {
		t.Errorf("AddNode moved %.2f of devices, want ≈0.25", frac)
	}

	// Shrink: removing n2 moves exactly n2's devices.
	noN2 := fakeView("n1", "n3", "n4")
	for _, d := range devs {
		a, b := big.ownerLocked(d), noN2.ownerLocked(d)
		if a == "n2" {
			if b == "n2" {
				t.Fatalf("device %s still owned by removed n2", d)
			}
			continue
		}
		if a != b {
			t.Fatalf("device %s moved %s→%s on RemoveNode(n2) though n2 never owned it", d, a, b)
		}
	}
}

// TestRendezvousPlacementDeterministic: same inputs, same owner — across
// router instances (operators can predict placement).
func TestRendezvousPlacementDeterministic(t *testing.T) {
	a := fakeView("alpha", "beta", "gamma")
	b := fakeView("gamma", "alpha", "beta")
	for _, d := range devices(512) {
		if oa, ob := a.ownerLocked(d), b.ownerLocked(d); oa != ob {
			t.Fatalf("placement of %s depends on construction order: %s vs %s", d, oa, ob)
		}
	}
}

// TestRendezvousSkipsLeaving: a leaving member takes no new placements.
func TestRendezvousSkipsLeaving(t *testing.T) {
	r := fakeView("n1", "n2", "n3")
	r.nodes["n2"].leaving = true
	for _, d := range devices(512) {
		if r.ownerLocked(d) == "n2" {
			t.Fatalf("device %s placed on leaving node", d)
		}
	}
}

// TestRouteSelfHealsVanishedOwner: a route left pointing at a node that
// is gone re-places the device instead of black-holing it.
func TestRouteSelfHealsVanishedOwner(t *testing.T) {
	r := fakeView("n1", "n2")
	r.routes["10.0.0.1"] = &route{node: "ghost"}
	rt := r.routeLocked("10.0.0.1")
	if rt == nil || rt.node == "ghost" {
		t.Fatalf("route not re-placed, got %+v", rt)
	}
	if got := r.ownerLocked("10.0.0.1"); rt.node != got {
		t.Errorf("re-placed on %s, rendezvous says %s", rt.node, got)
	}
}

// TestRouterMemberValidation covers the cheap AddNode argument errors.
func TestRouterMemberValidation(t *testing.T) {
	r := NewRouter(nil, RouterConfig{})
	if err := r.AddNode(Member{Name: "", Addr: "x"}); err == nil {
		t.Error("nameless member accepted")
	}
	if err := r.AddNode(Member{Name: "x", Addr: ""}); err == nil {
		t.Error("addressless member accepted")
	}
	if err := r.Feed(sampleWireTx()); !errors.Is(err, errNoMembers) {
		t.Errorf("feeding empty cluster: %v, want errNoMembers", err)
	}
	if err := r.RemoveNode("nobody"); err != nil {
		t.Errorf("removing unknown member: %v, want nil (idempotent)", err)
	}
}
