package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"webtxprofile/internal/weblog"
)

// Wire v2: a compact binary frame encoding negotiated per connection in
// the hello exchange (see doc.go for the layout and negotiation rules).
// The hello itself — and every frame from a v1 peer — stays JSON; the
// reader distinguishes the two per frame by the payload's first byte,
// which is the binary magic for v2 frames and '{' for JSON.

// Wire protocol versions. A peer advertises the highest version it speaks
// in its hello frame; the node replies with min(peer, own), and both sides
// write that version from the next frame on.
const (
	// WireV1 is length-prefixed JSON — the original protocol, and the
	// version assumed for peers whose hello carries no wire field.
	WireV1 = 1
	// WireV2 is the length-prefixed binary frame encoding; transactions
	// travel as weblog binary records instead of log lines.
	WireV2 = 2
	// MaxWireVersion is the highest version this build speaks.
	MaxWireVersion = WireV2
)

// binaryMagic is the first payload byte of every binary frame. JSON
// payloads always start with '{', so one byte disambiguates.
const binaryMagic = 0xF7

// normWire maps a hello's advertised wire version to an effective one:
// absent (0) means a v1 peer; anything higher than this build is capped by
// negotiation, not here.
func normWire(w int) int {
	if w <= 0 {
		return WireV1
	}
	return w
}

// negotiateWire picks the version both ends speak.
func negotiateWire(peer, own int) int {
	p, o := normWire(peer), normWire(own)
	if p < o {
		return p
	}
	return o
}

// Binary frame type codes, fixed on the wire (the JSON type strings are
// not sent in v2).
var frameTypeCodes = map[string]byte{
	FrameHello: 1, FrameFeed: 2, FrameExport: 3, FrameImport: 4,
	FrameFlush: 5, FrameStats: 6, FrameOK: 7, FrameError: 8, FrameAlert: 9,
	FrameCommit: 10, FrameAbort: 11, FrameGossip: 12, FrameList: 13,
}

// frameTypeNames inverts frameTypeCodes (index = code).
var frameTypeNames = func() [14]string {
	var names [14]string
	for name, code := range frameTypeCodes {
		names[code] = name
	}
	return names
}()

// Binary frame field tags. Fields at their zero value are omitted; an
// unknown tag is a decode error (protocol drift must surface, as with
// unknown JSON frame types).
const (
	tagNode      = 1 // uvarint length + bytes
	tagSubscribe = 2 // no payload; presence means true
	tagWire      = 3 // uvarint
	tagLines     = 4 // uvarint count, then per line: uvarint length + bytes
	tagDevices   = 5 // uvarint count, then per device: uvarint length + bytes
	tagBlob      = 6 // uvarint length + bytes
	tagCount     = 7 // zigzag varint
	tagError     = 8 // uvarint length + bytes
	tagAlert     = 9 // uvarint length + JSON-encoded NodeAlert
	tagTxs       = 10
	// tagTxs: uvarint count, then count weblog binary records back to back
	// (the records are self-delimiting).
	tagHandoff = 11 // uvarint length + bytes
	tagClient  = 12 // uvarint length + bytes
	tagCursor  = 13 // uvarint
	tagResume  = 14 // no payload; presence means true
	tagReplay  = 15 // no payload; presence means true
	tagGossip  = 16 // uvarint length + JSON-encoded GossipState
)

// AppendBinaryFrame appends f's wire-v2 encoding to dst. The layout is
//
//	magic byte, version byte (2), frame type code, uvarint seq,
//	tagged fields until the payload ends
//
// Feed payloads use Txs when set, Lines otherwise — a frame carrying both
// would encode both, but no producer does.
func AppendBinaryFrame(dst []byte, f Frame) ([]byte, error) {
	code, ok := frameTypeCodes[f.Type]
	if !ok {
		return dst, fmt.Errorf("cluster: frame type %q has no binary encoding", f.Type)
	}
	dst = append(dst, binaryMagic, WireV2, code)
	dst = binary.AppendUvarint(dst, f.Seq)
	if f.Node != "" {
		dst = appendTagString(dst, tagNode, f.Node)
	}
	if f.Subscribe {
		dst = append(dst, tagSubscribe)
	}
	if f.Wire != 0 {
		dst = append(dst, tagWire)
		dst = binary.AppendUvarint(dst, uint64(f.Wire))
	}
	if len(f.Lines) > 0 {
		dst = appendTagStrings(dst, tagLines, f.Lines)
	}
	if len(f.Devices) > 0 {
		dst = appendTagStrings(dst, tagDevices, f.Devices)
	}
	if len(f.Blob) > 0 {
		dst = append(dst, tagBlob)
		dst = binary.AppendUvarint(dst, uint64(len(f.Blob)))
		dst = append(dst, f.Blob...)
	}
	if f.Count != 0 {
		dst = append(dst, tagCount)
		dst = binary.AppendVarint(dst, int64(f.Count))
	}
	if f.Error != "" {
		dst = appendTagString(dst, tagError, f.Error)
	}
	if f.Alert != nil {
		payload, err := json.Marshal(f.Alert)
		if err != nil {
			return dst, fmt.Errorf("cluster: encoding alert: %w", err)
		}
		dst = append(dst, tagAlert)
		dst = binary.AppendUvarint(dst, uint64(len(payload)))
		dst = append(dst, payload...)
	}
	if len(f.Txs) > 0 {
		dst = append(dst, tagTxs)
		dst = binary.AppendUvarint(dst, uint64(len(f.Txs)))
		for i := range f.Txs {
			dst = f.Txs[i].AppendBinary(dst)
		}
	}
	if f.Handoff != "" {
		dst = appendTagString(dst, tagHandoff, f.Handoff)
	}
	if f.Client != "" {
		dst = appendTagString(dst, tagClient, f.Client)
	}
	if f.Cursor != 0 {
		dst = append(dst, tagCursor)
		dst = binary.AppendUvarint(dst, f.Cursor)
	}
	if f.Resume {
		dst = append(dst, tagResume)
	}
	if f.Replay {
		dst = append(dst, tagReplay)
	}
	if f.Gossip != nil {
		payload, err := json.Marshal(f.Gossip)
		if err != nil {
			return dst, fmt.Errorf("cluster: encoding gossip: %w", err)
		}
		dst = append(dst, tagGossip)
		dst = binary.AppendUvarint(dst, uint64(len(payload)))
		dst = append(dst, payload...)
	}
	return dst, nil
}

func appendTagString(dst []byte, tag byte, s string) []byte {
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendTagStrings(dst []byte, tag byte, ss []string) []byte {
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// decodeBinaryFrame decodes one wire-v2 payload. The payload is converted
// to a string once; every decoded string field (including the transactions'
// fields) aliases that one copy, so a feed frame decodes with no per-field
// allocation. Malformed input returns an error, never panics
// (FuzzBinaryFrame).
func decodeBinaryFrame(payload []byte) (Frame, error) {
	s := string(payload)
	if len(s) < 3 || s[0] != binaryMagic {
		return Frame{}, fmt.Errorf("cluster: not a binary frame")
	}
	if s[1] != WireV2 {
		return Frame{}, fmt.Errorf("cluster: unsupported binary frame version %d", s[1])
	}
	code := s[2]
	if int(code) >= len(frameTypeNames) || frameTypeNames[code] == "" {
		return Frame{}, fmt.Errorf("cluster: unknown binary frame type %d", code)
	}
	f := Frame{Type: frameTypeNames[code]}
	s = s[3:]
	seq, s, err := readWireUvarint(s)
	if err != nil {
		return Frame{}, fmt.Errorf("cluster: frame seq: %w", err)
	}
	f.Seq = seq
	for len(s) > 0 {
		tag := s[0]
		s = s[1:]
		switch tag {
		case tagNode:
			f.Node, s, err = readWireString(s)
		case tagSubscribe:
			f.Subscribe = true
		case tagWire:
			var w uint64
			if w, s, err = readWireUvarint(s); err == nil {
				if w > MaxWireVersion {
					// Cap instead of reject: a future peer advertising v9
					// must still negotiate down to what this build speaks.
					w = MaxWireVersion
				}
				f.Wire = int(w)
			}
		case tagLines:
			f.Lines, s, err = readWireStrings(s)
		case tagDevices:
			f.Devices, s, err = readWireStrings(s)
		case tagBlob:
			var b string
			if b, s, err = readWireString(s); err == nil {
				f.Blob = []byte(b)
			}
		case tagCount:
			var c int64
			if c, s, err = readWireVarint(s); err == nil {
				f.Count = int(c)
			}
		case tagError:
			f.Error, s, err = readWireString(s)
		case tagAlert:
			var b string
			if b, s, err = readWireString(s); err == nil {
				var a NodeAlert
				if err = json.Unmarshal([]byte(b), &a); err == nil {
					f.Alert = &a
				}
			}
		case tagTxs:
			var count uint64
			if count, s, err = readWireUvarint(s); err != nil {
				break
			}
			// A minimal record is 12 bytes (1-byte timestamp varint, nine
			// empty fields, reputation, flags): a count claiming more
			// records than the remaining bytes could hold is corrupt, and
			// rejecting it here keeps the allocation below proportional to
			// real input.
			if count > uint64(len(s)/12)+1 {
				err = fmt.Errorf("%d transactions cannot fit in %d bytes", count, len(s))
				break
			}
			txs := make([]weblog.Transaction, count)
			for i := range txs {
				if txs[i], s, err = weblog.DecodeBinaryFrom(s); err != nil {
					err = fmt.Errorf("transaction %d: %w", i, err)
					break
				}
			}
			if err == nil {
				f.Txs = txs
			}
		case tagHandoff:
			f.Handoff, s, err = readWireString(s)
		case tagClient:
			f.Client, s, err = readWireString(s)
		case tagCursor:
			f.Cursor, s, err = readWireUvarint(s)
		case tagResume:
			f.Resume = true
		case tagReplay:
			f.Replay = true
		case tagGossip:
			var b string
			if b, s, err = readWireString(s); err == nil {
				var g GossipState
				if err = json.Unmarshal([]byte(b), &g); err == nil {
					f.Gossip = &g
				}
			}
		default:
			err = fmt.Errorf("unknown field tag %d", tag)
		}
		if err != nil {
			return Frame{}, fmt.Errorf("cluster: decoding binary %s frame: %w", f.Type, err)
		}
	}
	return f, nil
}

// readWireUvarint is binary.Uvarint over a string, returning the rest.
func readWireUvarint(s string) (uint64, string, error) {
	var x uint64
	var shift uint
	for i := 0; i < len(s) && i < binary.MaxVarintLen64; i++ {
		b := s[i]
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, "", fmt.Errorf("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<shift, s[i+1:], nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	if len(s) > binary.MaxVarintLen64 {
		return 0, "", fmt.Errorf("uvarint overflows 64 bits")
	}
	return 0, "", fmt.Errorf("truncated uvarint")
}

func readWireVarint(s string) (int64, string, error) {
	ux, rest, err := readWireUvarint(s)
	if err != nil {
		return 0, "", err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, rest, nil
}

// readWireString reads one uvarint-length-prefixed string aliasing s.
func readWireString(s string) (string, string, error) {
	n, rest, err := readWireUvarint(s)
	if err != nil {
		return "", "", err
	}
	if n > uint64(len(rest)) {
		return "", "", fmt.Errorf("field of %d bytes exceeds remaining %d", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// readWireStrings reads a counted list of length-prefixed strings.
func readWireStrings(s string) ([]string, string, error) {
	count, s, err := readWireUvarint(s)
	if err != nil {
		return nil, "", err
	}
	if count == 0 {
		return nil, s, nil
	}
	// Each entry needs at least its 1-byte length prefix.
	if count > uint64(len(s)) {
		return nil, "", fmt.Errorf("%d strings cannot fit in %d bytes", count, len(s))
	}
	out := make([]string, count)
	for i := range out {
		if out[i], s, err = readWireString(s); err != nil {
			return nil, "", fmt.Errorf("string %d: %w", i, err)
		}
	}
	return out, s, nil
}
