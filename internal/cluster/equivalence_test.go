package cluster_test

import (
	"sync"
	"testing"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
	"webtxprofile/internal/weblog"
)

// The cluster-equivalence suite: a 3-node cluster with one AddNode and
// one RemoveNode landing mid-stream — while transactions keep flowing
// from a concurrent feeder, so the drain's buffer-and-replay path is
// genuinely exercised — must emit per-device alert sequences
// byte-identical to a single never-resharded monitor. Run with -race.

const equivK = 2

// clusterWorkload builds the shared workload and its reference sequences.
func clusterWorkload(t *testing.T) ([]weblog.Transaction, map[string][]string) {
	t.Helper()
	set, ds := clustertest.TrainedSet(t)
	txs, _ := clustertest.Workload(t, ds, 9, 6000)
	return txs, clustertest.ReferenceSigs(t, set, equivK, txs)
}

// runWithMembershipChanges feeds the workload from one goroutine while
// the test goroutine joins node n4 once a third of the stream is in and
// removes the founding node n2 at two thirds. feed is the per-step feed
// function (single transaction or batch).
func runWithMembershipChanges(t *testing.T, h *clustertest.Harness, txs []weblog.Transaction,
	feed func(stream []weblog.Transaction) error) {
	t.Helper()
	third := make(chan struct{})
	twoThirds := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		thirdFired, twoThirdsFired := false, false
		defer func() {
			// A feed failure must not leave the test goroutine parked on
			// an unfired trigger; the t.Errorf above already failed it.
			if !thirdFired {
				close(third)
			}
			if !twoThirdsFired {
				close(twoThirds)
			}
		}()
		for i := 0; i < len(txs); {
			if !thirdFired && i >= len(txs)/3 {
				thirdFired = true
				close(third)
			}
			if !twoThirdsFired && i >= 2*len(txs)/3 {
				twoThirdsFired = true
				close(twoThirds)
			}
			n := min(64, len(txs)-i)
			if err := feed(txs[i : i+n]); err != nil {
				t.Errorf("feed at %d: %v", i, err)
				return
			}
			i += n
		}
	}()
	<-third
	n4 := h.StartNode(t, "n4")
	if err := h.Router.AddNode(cluster.Member{Name: "n4", Addr: n4.Addr().String()}); err != nil {
		t.Errorf("AddNode(n4): %v", err)
	}
	<-twoThirds
	if err := h.Router.RemoveNode("n2"); err != nil {
		t.Errorf("RemoveNode(n2): %v", err)
	}
	<-done
	if err := h.Router.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	view := h.Router.View()
	if len(view.Members) != 3 {
		t.Errorf("final members = %v, want 3 (n1, n3, n4)", view.Members)
	}
	if view.Version != 5 {
		// 3 founding joins + AddNode(n4) + RemoveNode(n2).
		t.Errorf("membership version = %d, want 5", view.Version)
	}
	for _, m := range view.Members {
		if m.Name == "n2" {
			t.Error("removed node n2 still in the view")
		}
	}
}

// wireVersions enumerates the wire encodings the equivalence contract
// must hold on; the suite runs once per entry.
var wireVersions = []struct {
	name string
	wire int
}{
	{"wire1", cluster.WireV1},
	{"wire2", cluster.WireV2},
}

func TestClusterEquivalenceFeed(t *testing.T) {
	for _, wv := range wireVersions {
		t.Run(wv.name, func(t *testing.T) {
			txs, want := clusterWorkload(t)
			set, _ := clustertest.TrainedSet(t)
			h := clustertest.NewHarnessWire(t, set, equivK, wv.wire, "n1", "n2", "n3")
			runWithMembershipChanges(t, h, txs, func(stream []weblog.Transaction) error {
				for _, tx := range stream {
					if err := h.Router.Feed(tx); err != nil {
						return err
					}
				}
				return nil
			})
			clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())

			// Fan-in tagging: with devices spread across nodes and two
			// membership changes, alerts must have arrived from more than
			// one origin, and only from nodes that were ever members.
			origins := h.Alerts.Origins()
			if len(origins) < 2 {
				t.Errorf("alerts arrived from %d origin(s) %v, want several", len(origins), origins)
			}
			valid := map[string]bool{"n1": true, "n2": true, "n3": true, "n4": true}
			for node := range origins {
				if !valid[node] {
					t.Errorf("alert tagged with unknown origin %q", node)
				}
			}
		})
	}
}

func TestClusterEquivalenceFeedBatch(t *testing.T) {
	for _, wv := range wireVersions {
		t.Run(wv.name, func(t *testing.T) {
			txs, want := clusterWorkload(t)
			set, _ := clustertest.TrainedSet(t)
			h := clustertest.NewHarnessWire(t, set, equivK, wv.wire, "n1", "n2", "n3")
			runWithMembershipChanges(t, h, txs, h.Router.FeedBatch)
			clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
		})
	}
}

// TestClusterSingleNodeEquivalence pins the degenerate topology: one node
// behind the router behaves exactly like the monitor it wraps.
func TestClusterSingleNodeEquivalence(t *testing.T) {
	txs, want := clusterWorkload(t)
	set, _ := clustertest.TrainedSet(t)
	h := clustertest.NewHarness(t, set, equivK, "solo")
	if err := h.Router.FeedBatch(txs); err != nil {
		t.Fatal(err)
	}
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
	if got := h.Router.Devices(); got != 9 {
		t.Errorf("router placed %d devices, want 9", got)
	}
	if n, err := h.Node("solo").Monitor().Devices(), error(nil); err != nil || n != 9 {
		t.Errorf("node tracks %d devices, want 9", n)
	}
}

// TestClusterConcurrentFeeders drives the router from several goroutines
// owning disjoint device sets (the monitor's per-device single-writer
// contract) under -race, with a membership change mid-flight.
func TestClusterConcurrentFeeders(t *testing.T) {
	txs, want := clusterWorkload(t)
	set, _ := clustertest.TrainedSet(t)
	h := clustertest.NewHarness(t, set, equivK, "n1", "n2")

	const workers = 3
	streams := make([][]weblog.Transaction, workers)
	owner := map[string]int{}
	for _, tx := range txs {
		w, ok := owner[tx.SourceIP]
		if !ok {
			w = len(owner) % workers
			owner[tx.SourceIP] = w
		}
		streams[w] = append(streams[w], tx)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(stream []weblog.Transaction) {
			defer wg.Done()
			for len(stream) > 0 {
				n := min(48, len(stream))
				if err := h.Router.FeedBatch(stream[:n]); err != nil {
					t.Errorf("FeedBatch: %v", err)
					return
				}
				stream = stream[n:]
			}
		}(streams[w])
	}
	n3 := h.StartNode(t, "n3")
	if err := h.Router.AddNode(cluster.Member{Name: "n3", Addr: n3.Addr().String()}); err != nil {
		t.Errorf("AddNode(n3): %v", err)
	}
	wg.Wait()
	if err := h.Router.Flush(); err != nil {
		t.Fatal(err)
	}
	clustertest.AssertSameSigs(t, want, h.Alerts.Sigs())
}
