package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"webtxprofile/internal/weblog"
)

// ErrClientClosed reports an RPC attempted on (or interrupted by) a
// closed or failed node connection.
var ErrClientClosed = errors.New("cluster: node connection closed")

// ErrNodeRefused marks an error *reply*: the node received the request,
// processed it, and definitively failed it. Its absence on a failed RPC
// means a transport error — the request may or may not have been applied
// remotely, which matters to the router's drain fallback.
var ErrNodeRefused = errors.New("request refused")

// NodeClient is one end of a node connection: synchronous request/reply
// RPCs multiplexed with unsolicited alert pushes. RPCs may be issued from
// multiple goroutines; replies are matched by sequence number.
type NodeClient struct {
	conn net.Conn
	w    *frameWriter
	name string // remote node's self-reported name, from the hello reply
	wire int    // negotiated wire version, from the hello reply

	onAlert func(NodeAlert)

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]chan Frame
	err     error // terminal receive error, set once
	closed  bool
}

// DialNode connects to a cluster node, performs the hello handshake —
// negotiating the highest wire version both ends speak — and (when
// onAlert is non-nil) subscribes this connection to alert pushes.
// onAlert runs on the client's single receive goroutine, strictly in the
// order the node pushed — per-device alert order is preserved — and
// before any reply that the node wrote after those alerts is delivered to
// its waiter. It must not block: a stalled callback stalls every pending
// RPC on this connection.
func DialNode(addr string, onAlert func(NodeAlert)) (*NodeClient, error) {
	return DialNodeWire(addr, onAlert, 0)
}

// DialNodeWire is DialNode with a cap on the wire version this client will
// advertise (0 or anything above MaxWireVersion means MaxWireVersion;
// 1 forces JSON frames against any node).
func DialNodeWire(addr string, onAlert func(NodeAlert), maxWire int) (*NodeClient, error) {
	if maxWire <= 0 || maxWire > MaxWireVersion {
		maxWire = MaxWireVersion
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial node %s: %w", addr, err)
	}
	c := &NodeClient{
		conn: conn,
		// The write deadline mirrors the node side's: a node that stops
		// reading fails the RPC instead of blocking the caller on the
		// kernel buffer. (The reply wait has no deadline — a slow but
		// live node is allowed to take its time.)
		w:       &frameWriter{bw: bufio.NewWriter(conn), conn: conn, timeout: 30 * time.Second},
		onAlert: onAlert,
		pending: make(map[uint64]chan Frame),
	}
	go c.receiveLoop()
	reply, err := c.roundTrip(Frame{Type: FrameHello, Subscribe: onAlert != nil, Wire: maxWire})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: hello to %s: %w", addr, err)
	}
	c.name = reply.Node
	// An old node omits Wire from its reply: normWire reads that as v1.
	// A node must not negotiate above what we advertised; if a buggy one
	// does, cap it rather than speak frames it may not intend.
	c.wire = negotiateWire(reply.Wire, maxWire)
	if c.wire >= WireV2 {
		c.w.setWire(c.wire)
	}
	return c, nil
}

// Name returns the node's self-reported cluster name.
func (c *NodeClient) Name() string { return c.name }

// Wire returns the wire version negotiated in the hello exchange.
func (c *NodeClient) Wire() int { return c.wire }

// Close tears down the connection; in-flight RPCs fail with
// ErrClientClosed.
func (c *NodeClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// Feed sends transactions for the node's monitor, returning once the node
// has fed them all. On a wire-v2 connection they travel as binary records;
// on v1 they are marshaled to log lines.
func (c *NodeClient) Feed(txs []weblog.Transaction) error {
	if len(txs) == 0 {
		return nil
	}
	if c.wire >= WireV2 {
		_, err := c.roundTrip(Frame{Type: FrameFeed, Txs: txs})
		return err
	}
	lines := make([]string, len(txs))
	for i := range txs {
		lines[i] = txs[i].MarshalLine()
	}
	_, err := c.roundTrip(Frame{Type: FrameFeed, Lines: lines})
	return err
}

// Export drains the named devices from the node, returning their portable
// state blob and the count actually exported. All alerts the drained
// devices produced on the node have been delivered through onAlert by the
// time Export returns.
func (c *NodeClient) Export(devices []string) ([]byte, int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameExport, Devices: devices})
	if err != nil {
		return nil, 0, err
	}
	return reply.Blob, reply.Count, nil
}

// Import hands a state blob to the node, returning the number of devices
// it adopted.
func (c *NodeClient) Import(blob []byte) (int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameImport, Blob: blob})
	if err != nil {
		return 0, err
	}
	return reply.Count, nil
}

// Flush asks the node to complete pending windows and deliver every
// outstanding alert; all resulting alerts have passed through onAlert
// when it returns.
func (c *NodeClient) Flush() error {
	_, err := c.roundTrip(Frame{Type: FrameFlush})
	return err
}

// Devices returns the node's tracked-device count.
func (c *NodeClient) Devices() (int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameStats})
	if err != nil {
		return 0, err
	}
	return reply.Count, nil
}

// roundTrip issues one RPC and blocks for its reply (or a terminal
// connection error). An error reply from the node surfaces as an error
// carrying the node's message.
func (c *NodeClient) roundTrip(req Frame) (Frame, error) {
	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return Frame{}, err
	}
	c.seq++
	req.Seq = c.seq
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	if err := c.w.write(req); err != nil {
		c.mu.Lock()
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		return Frame{}, err
	}
	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return Frame{}, err
	}
	if reply.Type == FrameError {
		return Frame{}, fmt.Errorf("cluster: node %s %w: %s", c.name, ErrNodeRefused, reply.Error)
	}
	return reply, nil
}

// receiveLoop is the single reader: alerts are dispatched in-line (so
// they are observed before any later reply), replies are routed to their
// waiting RPC. A receive error fails every pending and future RPC.
func (c *NodeClient) receiveLoop() {
	br := bufio.NewReader(c.conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				if err == io.EOF || c.closed {
					c.err = ErrClientClosed
				} else {
					c.err = err
				}
			}
			for seq, ch := range c.pending {
				close(ch)
				delete(c.pending, seq)
			}
			c.mu.Unlock()
			return
		}
		if f.Type == FrameAlert {
			if c.onAlert != nil && f.Alert != nil {
				c.onAlert(*f.Alert)
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[f.Seq]
		if ok {
			delete(c.pending, f.Seq)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
		// Replies nobody waits for (caller gave up after a write error)
		// are dropped.
	}
}
