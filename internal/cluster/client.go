package cluster

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"webtxprofile/internal/weblog"
)

// ErrClientClosed reports an RPC attempted on (or interrupted by) a
// closed node connection.
var ErrClientClosed = errors.New("cluster: node connection closed")

// ErrNodeRefused marks an error *reply*: the node received the request,
// processed it, and definitively failed it. Its absence on a failed RPC
// means a transport error — the request may or may not have been applied
// remotely, which matters to the router's drain fallback.
var ErrNodeRefused = errors.New("request refused")

// ErrNodeDown reports a node that stayed unreachable through the whole
// reconnect schedule (ClientConfig.Reconnect.MaxAttempts consecutive
// dial failures). The client is terminal: every queued feed is lost and
// every RPC fails, so the owner should drop it and re-plan placement.
var ErrNodeDown = errors.New("cluster: node down")

// ErrReplayOverflow reports a feed rejected because the node is
// disconnected and the bounded replay queue is full. Nothing was
// buffered and nothing will be retried for this call — the typed error
// is the contract that overflow is loud, never a silent drop.
var ErrReplayOverflow = errors.New("cluster: replay queue full while node is down")

// ReconnectConfig tunes the client's automatic reconnect.
type ReconnectConfig struct {
	// MaxAttempts is how many consecutive dial failures declare the node
	// down (terminal ErrNodeDown). Default 8; negative disables
	// reconnecting entirely — the first connection failure is terminal,
	// the pre-reconnect behavior.
	MaxAttempts int
	// BaseDelay is the first retry delay; each failure doubles it up to
	// MaxDelay. Defaults 25ms and 2s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// ReplayDepth bounds the feed replay queue: the number of
	// unacknowledged feed frames the client holds for re-delivery across
	// reconnects (default 256). While connected a full queue exerts
	// backpressure (Feed blocks); while reconnecting it fails fast with
	// ErrReplayOverflow.
	ReplayDepth int
}

func (r ReconnectConfig) withDefaults() ReconnectConfig {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 8
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 25 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 2 * time.Second
	}
	if r.ReplayDepth <= 0 {
		r.ReplayDepth = 256
	}
	return r
}

// ClientConfig configures a NodeClient beyond the address.
type ClientConfig struct {
	// MaxWire caps the advertised wire version (0 = MaxWireVersion; 1
	// forces JSON frames).
	MaxWire int
	// ClientID is this client's stable identity for node-side replay
	// dedup. Defaults to a random id, which is correct for every normal
	// use: the id must be stable across reconnects of one client, not
	// across client restarts (a restarted client has an empty replay
	// queue, so it replays nothing).
	ClientID string
	// Reconnect tunes automatic reconnection and the replay queue.
	Reconnect ReconnectConfig
	// OnDrop is called (if non-nil) when a buffered feed is discarded
	// because the node definitively refused it after a replay — a
	// protocol-bug signal, not a transport condition. Called from the
	// receive goroutine; must not block.
	OnDrop func(error)
}

// Client connection states.
const (
	clientReady      = iota // connected, handshake done, replay drained or draining
	clientConnecting        // manager is dialing/backing off
	clientDead              // terminal: ErrNodeDown or closed
)

// feedEntry is one unacknowledged feed frame in the replay queue.
type feedEntry struct {
	frame   Frame
	written bool       // written at least once: re-sends carry the Replay flag
	done    chan error // non-nil only for FeedSync callers; buffered
}

// NodeClient is one end of a node connection: synchronous request/reply
// RPCs multiplexed with unsolicited alert pushes, over a connection that
// automatically redials with exponential backoff when it dies. Feeds go
// through a bounded replay queue: Feed returns once the frame is
// buffered (and written, when connected), acknowledgements retire
// entries, and after a reconnect every unretired entry is re-sent in
// order with the Replay flag — the node's per-client dedup window turns
// that into exactly-once delivery. Alert pushes resume from the last
// sequence number the client saw, replayed from the node's alert ring,
// so a silently dying connection loses no alerts within the ring's
// horizon. Idempotent RPCs (staged exports and imports, commit, abort,
// flush, stats, list) are retried across reconnects — always after the
// replay queue has been re-sent, which preserves the feeds-before-export
// ordering the drain barrier needs; the non-idempotent legacy
// Export/Import fail on the first transport error, as before.
//
// RPCs may be issued from multiple goroutines; replies are matched by
// sequence number.
type NodeClient struct {
	addr    string
	cfg     ClientConfig
	onAlert func(NodeAlert)

	mu        sync.Mutex
	cond      sync.Cond
	conn      net.Conn
	w         *frameWriter
	name      string // remote node's self-reported name, from the hello reply
	wire      int    // negotiated wire version, from the hello reply
	state     int
	gen       int // connection generation; stale goroutines detect themselves
	deadGen   int // newest generation already reported dead
	err       error
	closed    bool
	seq       uint64
	pending   map[uint64]chan Frame
	replay    []*feedEntry
	unsent    int // index of the first entry not yet written on this connection
	lastAlert uint64
	everConn  bool // a hello has succeeded at least once (resume vs fresh subscribe)
}

// rpcRetryAttempts bounds how many connections an idempotent RPC will
// try before reporting the transport error. Each attempt waits for a
// live, replay-drained connection first, so the bound is on connection
// generations, not time.
const rpcRetryAttempts = 4

// DialNode connects to a cluster node with default configuration,
// performs the hello handshake — negotiating the highest wire version
// both ends speak — and (when onAlert is non-nil) subscribes this
// connection to alert pushes. onAlert runs on the client's receive
// goroutine, strictly in push order — per-device alert order is
// preserved — and before any reply the node wrote after those alerts is
// delivered to its waiter. It must not block: a stalled callback stalls
// every pending RPC on this connection.
func DialNode(addr string, onAlert func(NodeAlert)) (*NodeClient, error) {
	return DialNodeConfig(addr, onAlert, ClientConfig{})
}

// DialNodeWire is DialNode with a cap on the wire version this client
// will advertise (0 or anything above MaxWireVersion means
// MaxWireVersion; 1 forces JSON frames against any node).
func DialNodeWire(addr string, onAlert func(NodeAlert), maxWire int) (*NodeClient, error) {
	return DialNodeConfig(addr, onAlert, ClientConfig{MaxWire: maxWire})
}

// DialNodeConfig is DialNode with full configuration. The first dial is
// synchronous — an unreachable node fails construction — and later
// failures go through the reconnect schedule.
func DialNodeConfig(addr string, onAlert func(NodeAlert), cfg ClientConfig) (*NodeClient, error) {
	if cfg.MaxWire <= 0 || cfg.MaxWire > MaxWireVersion {
		cfg.MaxWire = MaxWireVersion
	}
	cfg.Reconnect = cfg.Reconnect.withDefaults()
	if cfg.ClientID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("cluster: client id: %w", err)
		}
		cfg.ClientID = hex.EncodeToString(b[:])
	}
	c := &NodeClient{
		addr:    addr,
		cfg:     cfg,
		onAlert: onAlert,
		pending: make(map[uint64]chan Frame),
		seq:     1, // seq 1 is the hello on every connection
	}
	c.cond.L = &c.mu
	if err := c.connect(); err != nil {
		return nil, err
	}
	go c.sendLoop()
	go c.manageLoop()
	return c, nil
}

// Name returns the node's self-reported cluster name.
func (c *NodeClient) Name() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.name
}

// Wire returns the wire version negotiated in the latest hello exchange.
func (c *NodeClient) Wire() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wire
}

// Close tears down the connection; in-flight RPCs fail with
// ErrClientClosed and no reconnect happens.
func (c *NodeClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.state = clientDead
	if c.err == nil {
		c.err = ErrClientClosed
	}
	conn := c.conn
	c.failPendingLocked()
	c.failFeedWaitersLocked(c.err)
	c.cond.Broadcast()
	c.mu.Unlock()
	if conn != nil {
		// Best-effort: the connection may already be dead (that can be
		// exactly why the caller is closing us).
		conn.Close()
	}
	return nil
}

// connect dials and completes the hello handshake, installing the new
// connection under the lock. Called from the constructor (fresh) and the
// manager (resume).
func (c *NodeClient) connect() error {
	c.mu.Lock()
	resume := c.everConn && c.onAlert != nil
	cursor := c.lastAlert
	c.mu.Unlock()

	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("cluster: dial node %s: %w", c.addr, err)
	}
	w := &frameWriter{bw: bufio.NewWriter(conn), conn: conn, timeout: 30 * time.Second}
	hello := Frame{
		Type: FrameHello, Seq: 1, Subscribe: c.onAlert != nil,
		Wire: c.cfg.MaxWire, Client: c.cfg.ClientID,
		Resume: resume, Cursor: cursor,
	}
	if err := w.write(hello); err != nil {
		conn.Close()
		return fmt.Errorf("cluster: hello to %s: %w", c.addr, err)
	}
	// The handshake is synchronous: the node pauses the subscription
	// outbox until the hello reply is written, so the first frame back is
	// always the reply.
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	reply, err := ReadFrame(br)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return fmt.Errorf("cluster: hello to %s: %w", c.addr, err)
	}
	if reply.Type == FrameError {
		conn.Close()
		return fmt.Errorf("cluster: hello to %s %w: %s", c.addr, ErrNodeRefused, reply.Error)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return ErrClientClosed
	}
	c.conn = conn
	c.w = w
	c.name = reply.Node
	// An old node omits Wire from its reply: normWire reads that as v1.
	// A node must not negotiate above what we advertised; if a buggy one
	// does, cap it rather than speak frames it may not intend.
	c.wire = negotiateWire(reply.Wire, c.cfg.MaxWire)
	if c.wire >= WireV2 {
		w.setWire(c.wire)
	}
	if !c.everConn {
		// The reply's cursor is the node's current alert sequence; alerts
		// before it predate this subscription.
		c.lastAlert = reply.Cursor
	}
	c.everConn = true
	c.gen++
	c.unsent = 0 // every unretired feed entry is re-sent on this connection
	c.state = clientReady
	gen := c.gen
	c.cond.Broadcast()
	c.mu.Unlock()
	go c.receiveLoop(conn, br, gen)
	return nil
}

// connFailed reports connection generation gen dead: pending RPCs fail
// over to the retry path, the replay queue rewinds, and the manager is
// woken to redial. Duplicate reports for one generation (reader and
// writer both erroring) collapse to the first.
func (c *NodeClient) connFailed(gen int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || gen != c.gen || gen <= c.deadGen {
		return
	}
	c.deadGen = gen
	c.state = clientConnecting
	if c.conn != nil {
		c.conn.Close()
	}
	c.failPendingLocked()
	c.unsent = 0
	c.cond.Broadcast()
}

func (c *NodeClient) failPendingLocked() {
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
}

// failFeedWaitersLocked releases FeedSync waiters with err — called only
// on terminal transitions (close, node down), when their entries will
// never be delivered. The entries themselves stay queued; they are dead
// with the client.
func (c *NodeClient) failFeedWaitersLocked(err error) {
	for _, e := range c.replay {
		if e.done != nil {
			e.done <- err
			e.done = nil
		}
	}
}

// manageLoop owns reconnection: whenever a connection generation dies it
// redials with exponential backoff until a handshake succeeds or
// MaxAttempts consecutive failures declare the node down.
func (c *NodeClient) manageLoop() {
	for {
		c.mu.Lock()
		for !c.closed && c.state != clientConnecting {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		if c.cfg.Reconnect.MaxAttempts < 0 {
			c.terminate(fmt.Errorf("%w: %s (reconnect disabled)", ErrNodeDown, c.addr))
			return
		}
		delay := c.cfg.Reconnect.BaseDelay
		var lastErr error
		recovered := false
		for attempt := 1; attempt <= c.cfg.Reconnect.MaxAttempts; attempt++ {
			if err := c.connect(); err == nil {
				recovered = true
				break
			} else if errors.Is(err, ErrClientClosed) {
				return
			} else {
				lastErr = err
			}
			time.Sleep(delay)
			if delay *= 2; delay > c.cfg.Reconnect.MaxDelay {
				delay = c.cfg.Reconnect.MaxDelay
			}
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
		}
		if !recovered {
			c.terminate(fmt.Errorf("%w: %s after %d attempts: %v", ErrNodeDown, c.addr, c.cfg.Reconnect.MaxAttempts, lastErr))
			return
		}
	}
}

// terminate makes the client terminally dead with err.
func (c *NodeClient) terminate(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.state = clientDead
	c.failPendingLocked()
	c.failFeedWaitersLocked(c.err)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// sendLoop is the single feed writer: it drains the replay queue in
// order onto whatever connection is live, re-marking entries for replay
// when a connection dies before acknowledging them. Feeds never
// interleave out of order because only this goroutine writes them.
func (c *NodeClient) sendLoop() {
	for {
		c.mu.Lock()
		for !c.closed && c.err == nil && !(c.state == clientReady && c.unsent < len(c.replay)) {
			c.cond.Wait()
		}
		if c.closed || c.err != nil {
			c.mu.Unlock()
			return
		}
		e := c.replay[c.unsent]
		c.unsent++
		f := e.frame
		f.Replay = e.written
		e.written = true
		gen := c.gen
		w := c.w
		// An RPC barrier may be waiting for the queue to be fully sent.
		c.cond.Broadcast()
		c.mu.Unlock()
		if err := w.write(f); err != nil {
			c.connFailed(gen, err)
		}
	}
}

// Feed queues transactions for the node's monitor and returns once the
// frame is buffered in the replay queue (the send itself is
// asynchronous; acknowledgement retires the entry, reconnect replays
// it). On a wire-v2 connection they travel as binary records; on v1 they
// are marshaled to log lines. A full queue blocks while the node is
// connected (backpressure) and fails with ErrReplayOverflow while it is
// down; a terminally dead node fails with ErrNodeDown.
func (c *NodeClient) Feed(txs []weblog.Transaction) error {
	_, err := c.feed(txs, false)
	return err
}

// FeedSync is Feed plus waiting until the frame is acknowledged or
// refused — the synchronous semantics pre-reconnect Feed had, used where
// the caller needs refusals (or a delivery barrier) in-line.
func (c *NodeClient) FeedSync(txs []weblog.Transaction) error {
	done, err := c.feed(txs, true)
	if err != nil || done == nil {
		return err
	}
	return <-done
}

func (c *NodeClient) feed(txs []weblog.Transaction, sync bool) (chan error, error) {
	if len(txs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || c.err != nil {
			err := c.err
			if err == nil {
				err = ErrClientClosed
			}
			return nil, err
		}
		if len(c.replay) < c.cfg.Reconnect.ReplayDepth {
			break
		}
		if c.state != clientReady {
			return nil, fmt.Errorf("%w (depth %d)", ErrReplayOverflow, c.cfg.Reconnect.ReplayDepth)
		}
		c.cond.Wait()
	}
	c.seq++
	f := Frame{Type: FrameFeed, Seq: c.seq}
	if c.wire >= WireV2 {
		f.Txs = txs
	} else {
		lines := make([]string, len(txs))
		for i := range txs {
			lines[i] = txs[i].MarshalLine()
		}
		f.Lines = lines
	}
	e := &feedEntry{frame: f}
	if sync {
		e.done = make(chan error, 1)
	}
	c.replay = append(c.replay, e)
	c.cond.Broadcast()
	return e.done, nil
}

// retireFeed retires the replay entry seq acknowledges, if any. A
// refusal (error reply) is routed to the FeedSync waiter when there is
// one and to OnDrop otherwise — either way the entry is gone: the node
// definitively rejected it, so replaying it would refuse forever.
func (c *NodeClient) retireFeed(f Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.replay {
		if e.frame.Seq != f.Seq {
			continue
		}
		c.replay = append(c.replay[:i], c.replay[i+1:]...)
		if c.unsent > i {
			c.unsent--
		}
		c.cond.Broadcast()
		var ferr error
		if f.Type == FrameError {
			ferr = fmt.Errorf("cluster: node %s %w: %s", c.name, ErrNodeRefused, f.Error)
		}
		if e.done != nil {
			e.done <- ferr
		} else if ferr != nil && c.cfg.OnDrop != nil {
			c.cfg.OnDrop(ferr)
		}
		return
	}
}

// Export drains the named devices from the node, returning their
// portable state blob and the count actually exported. All alerts the
// drained devices produced on the node have been delivered through
// onAlert by the time Export returns. Not idempotent, so not retried: a
// transport error mid-export is ambiguous and surfaces as one.
func (c *NodeClient) Export(devices []string) ([]byte, int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameExport, Devices: devices}, false)
	if err != nil {
		return nil, 0, err
	}
	return reply.Blob, reply.Count, nil
}

// Import hands a state blob to the node, returning the number of devices
// it adopted. Not idempotent, so not retried.
func (c *NodeClient) Import(blob []byte) (int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameImport, Blob: blob}, false)
	if err != nil {
		return 0, err
	}
	return reply.Count, nil
}

// ExportHandoff stages an export of the named devices under a handoff id
// (see core.Monitor.ExportStaged). Idempotent per id, so it is retried
// across reconnects; the returned blob is identical on every retry. The
// drained devices' prior alerts have been delivered through onAlert when
// it returns.
func (c *NodeClient) ExportHandoff(id string, devices []string) ([]byte, int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameExport, Handoff: id, Devices: devices}, true)
	if err != nil {
		return nil, 0, err
	}
	return reply.Blob, reply.Count, nil
}

// ImportHandoff stages a state blob on the node under a handoff id,
// invisible until Commit. Idempotent per id; retried across reconnects.
func (c *NodeClient) ImportHandoff(id string, blob []byte) (int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameImport, Handoff: id, Blob: blob}, true)
	if err != nil {
		return 0, err
	}
	return reply.Count, nil
}

// Commit finalizes a staged handoff on the node (adopt the staged
// import, or release the held export). Idempotent; retried across
// reconnects. A definitive refusal — including core.ErrUnknownHandoff
// when the staged state died with a restart — surfaces as ErrNodeRefused.
func (c *NodeClient) Commit(id string) (int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameCommit, Handoff: id}, true)
	if err != nil {
		return 0, err
	}
	return reply.Count, nil
}

// Abort cancels a staged handoff on the node (drop the staged import, or
// re-adopt the held export). Idempotent; retried across reconnects.
func (c *NodeClient) Abort(id string) (int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameAbort, Handoff: id}, true)
	if err != nil {
		return 0, err
	}
	return reply.Count, nil
}

// List returns the devices the node holds state for (live or spilled).
func (c *NodeClient) List() ([]string, error) {
	reply, err := c.roundTrip(Frame{Type: FrameList}, true)
	if err != nil {
		return nil, err
	}
	return reply.Devices, nil
}

// Flush asks the node to complete pending windows and deliver every
// outstanding alert; all resulting alerts have passed through onAlert
// when it returns.
func (c *NodeClient) Flush() error {
	_, err := c.roundTrip(Frame{Type: FrameFlush}, true)
	return err
}

// Devices returns the node's tracked-device count.
func (c *NodeClient) Devices() (int, error) {
	reply, err := c.roundTrip(Frame{Type: FrameStats}, true)
	if err != nil {
		return 0, err
	}
	return reply.Count, nil
}

// roundTrip issues one RPC and blocks for its reply. It first waits for
// a live connection whose replay queue is fully (re)written, so the node
// processes the request after every feed queued before it — the ordering
// the drain barrier relies on. A connection death fails the attempt;
// retryable (idempotent) requests then wait for the next connection and
// try again, up to rpcRetryAttempts generations. An error reply from the
// node surfaces as an error carrying the node's message.
func (c *NodeClient) roundTrip(req Frame, retryable bool) (Frame, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 && (!retryable || attempt >= rpcRetryAttempts) {
			return Frame{}, lastErr
		}
		c.mu.Lock()
		for !c.closed && c.err == nil && !(c.state == clientReady && c.unsent == len(c.replay)) {
			c.cond.Wait()
		}
		if c.closed || c.err != nil {
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClientClosed
			}
			return Frame{}, err
		}
		gen := c.gen
		w := c.w
		name := c.name
		c.seq++
		req.Seq = c.seq
		ch := make(chan Frame, 1)
		c.pending[req.Seq] = ch
		c.mu.Unlock()

		if err := w.write(req); err != nil {
			c.mu.Lock()
			delete(c.pending, req.Seq)
			c.mu.Unlock()
			c.connFailed(gen, err)
			lastErr = err
			continue
		}
		reply, ok := <-ch
		if !ok {
			// Connection died before the reply; the manager is already
			// redialing (or the client is closed/dead).
			c.mu.Lock()
			err := c.err
			closed := c.closed
			c.mu.Unlock()
			if closed || err != nil {
				if err == nil {
					err = ErrClientClosed
				}
				return Frame{}, err
			}
			lastErr = fmt.Errorf("cluster: node %s: connection lost awaiting %s reply", name, req.Type)
			continue
		}
		if reply.Type == FrameError {
			return Frame{}, fmt.Errorf("cluster: node %s %w: %s", name, ErrNodeRefused, reply.Error)
		}
		return reply, nil
	}
}

// receiveLoop is the single reader of one connection generation: alerts
// are dispatched in-line (so they are observed before any later reply)
// and advance the resume cursor; feed acknowledgements retire replay
// entries; other replies are routed to their waiting RPC. A receive
// error reports the generation dead, which wakes the reconnect manager.
func (c *NodeClient) receiveLoop(conn net.Conn, br *bufio.Reader, gen int) {
	for {
		f, err := ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				err = ErrClientClosed
			}
			c.connFailed(gen, err)
			return
		}
		if f.Type == FrameAlert {
			c.mu.Lock()
			dup := f.Seq != 0 && f.Seq <= c.lastAlert
			if !dup && f.Seq > c.lastAlert {
				c.lastAlert = f.Seq
			}
			c.mu.Unlock()
			if !dup && c.onAlert != nil && f.Alert != nil {
				c.onAlert(*f.Alert)
			}
			continue
		}
		c.mu.Lock()
		ch, isRPC := c.pending[f.Seq]
		if isRPC {
			delete(c.pending, f.Seq)
		}
		c.mu.Unlock()
		if isRPC {
			ch <- f
			continue
		}
		// Not a pending RPC: a feed acknowledgement (or a reply nobody
		// waits for anymore, which retireFeed ignores).
		c.retireFeed(f)
	}
}
