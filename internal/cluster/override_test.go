package cluster_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"webtxprofile/internal/cluster"
	"webtxprofile/internal/cluster/clustertest"
)

// TestOverrideTableConvergence is the CRDT property test the override
// merge rule promises (see override.go): for a random set of register
// writes delivered to three replicas in independent random interleavings
// — with duplicates — a round of pairwise exchanges leaves all three
// tables identical. Versions are drawn from a tiny range on purpose, so
// ties (resolved by node name) occur constantly.
func TestOverrideTableConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(clustertest.ChaosSeed(t)))
	for round := 0; round < 100; round++ {
		nDev := 1 + rng.Intn(6)
		writes := make([]cluster.Override, 12)
		for i := range writes {
			writes[i] = cluster.Override{
				Device: fmt.Sprintf("d%d", rng.Intn(nDev)),
				Ver:    uint64(1 + rng.Intn(4)),
			}
			if rng.Intn(3) > 0 { // a third of the writes are tombstones
				writes[i].Node = fmt.Sprintf("n%d", rng.Intn(4))
			}
		}

		var tables [3]cluster.OverrideTable
		for i := range tables {
			for _, j := range rng.Perm(len(writes)) {
				tables[i].Merge(writes[j : j+1])
			}
			// Redeliver a random prefix: merges must be idempotent.
			tables[i].Merge(writes[:rng.Intn(len(writes)+1)])
		}

		// Two passes of randomized pairwise anti-entropy reach every
		// replica from every other, whatever the order.
		for pass := 0; pass < 2; pass++ {
			for _, i := range rng.Perm(len(tables)) {
				snap := tables[i].Snapshot()
				for j := range tables {
					if j != i {
						tables[j].Merge(snap)
					}
				}
			}
		}

		s0 := tables[0].Snapshot()
		for i := 1; i < len(tables); i++ {
			if si := tables[i].Snapshot(); !reflect.DeepEqual(s0, si) {
				t.Fatalf("round %d: replicas diverged\n table0: %+v\n table%d: %+v", round, s0, i, si)
			}
		}
		if len(s0) == 0 {
			t.Fatalf("round %d: converged on an empty table — the writes never landed", round)
		}
	}
}

// TestOverrideTombstoneWins: a tombstone at a higher version must lift a
// pin and survive re-merging the stale pin afterwards — a lifted pin may
// never resurrect from a lagging peer.
func TestOverrideTombstoneWins(t *testing.T) {
	pin := cluster.Override{Device: "d", Node: "n1", Ver: 1}
	tomb := cluster.Override{Device: "d", Ver: 2}

	var tbl cluster.OverrideTable
	tbl.Set(pin)
	if node, ok := tbl.Get("d"); !ok || node != "n1" {
		t.Fatalf("Get after pin = %q, %v; want n1, true", node, ok)
	}
	tbl.Set(tomb)
	if _, ok := tbl.Get("d"); ok {
		t.Fatal("pin survived a newer tombstone")
	}
	if changed := tbl.Merge([]cluster.Override{pin}); changed != nil {
		t.Fatalf("stale pin re-merge changed %v — tombstone must win", changed)
	}
	if _, ok := tbl.Get("d"); ok {
		t.Fatal("stale pin resurrected through merge")
	}
	// The tombstone still travels in snapshots, or a peer that never saw
	// it would keep gossiping the pin back.
	if snap := tbl.Snapshot(); len(snap) != 1 || snap[0] != tomb {
		t.Fatalf("snapshot = %+v, want the tombstone", snap)
	}
}
