package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"webtxprofile/internal/core"
	"webtxprofile/internal/weblog"
)

// The cluster wire protocol is length-prefixed: each frame is a 4-byte
// big-endian payload length followed by one encoded Frame. A payload is
// either JSON (wire v1, and every hello) or the compact binary encoding of
// wirecodec.go (wire v2, negotiated in the hello exchange); the reader
// tells them apart by the first payload byte. Transactions travel inside
// v1 feed frames as the newline-less log-line format of package weblog
// (the same lines the collector's proxies stream) and inside v2 feed
// frames as weblog binary records; shard handoffs travel in both versions
// as the opaque versioned blobs core.Monitor's ExportDevices/ImportShard
// produce, so the node protocol reuses the existing serializations rather
// than inventing new ones.
//
// One TCP connection carries both directions: the client writes request
// frames with a non-zero Seq and the node answers each with an "ok" or
// "error" frame echoing that Seq; subscribed connections additionally
// receive unsolicited "alert" frames (Seq 0) interleaved between replies.
// Frames on a connection are written atomically (under a write lock), so
// a reader always sees whole frames in write order.

// MaxFrameBytes caps one frame's JSON payload. Shard-export blobs are the
// largest frames; 64 MiB is ~100k devices at typical state sizes. The
// reader rejects larger headers before allocating, so a corrupt or
// hostile length prefix cannot balloon memory.
const MaxFrameBytes = 64 << 20

// Frame types.
const (
	// FrameHello opens a session: the client names itself and may
	// subscribe to alert pushes. The node replies ok with its own name.
	FrameHello = "hello"
	// FrameFeed carries transactions as weblog log lines; the node feeds
	// them to its monitor and replies ok with the count fed.
	FrameFeed = "feed"
	// FrameExport names devices to drain; the node exports them from its
	// monitor and replies ok with the state blob and count.
	FrameExport = "export"
	// FrameImport carries a state blob to adopt; the node imports it and
	// replies ok with the count of devices adopted.
	FrameImport = "import"
	// FrameFlush asks the node to complete pending windows and deliver
	// every outstanding alert before replying ok.
	FrameFlush = "flush"
	// FrameStats asks for the node's tracked-device count.
	FrameStats = "stats"
	// FrameCommit finishes a two-phase handoff: on the importer it adopts
	// the blob staged under Handoff, on the exporter it releases the held
	// copy. The node replies ok with the device count; committing an id a
	// second time replies ok again (idempotent), so the router can retry
	// a commit whose first reply was lost.
	FrameCommit = "commit"
	// FrameAbort cancels a two-phase handoff: a staged import is dropped,
	// a held export is re-adopted into the monitor. Aborting an unknown
	// id replies ok with count 0 (idempotent); aborting a committed id is
	// an error, because the devices now live on the other side.
	FrameAbort = "abort"
	// FrameGossip exchanges router state: the request and its ok reply
	// both carry a GossipState, so one round trip reconciles both peers.
	FrameGossip = "gossip"
	// FrameList asks for the node's tracked device names (live and
	// spilled); the ok reply carries them in Devices.
	FrameList = "list"
	// FrameOK is the success reply; payload fields depend on the request.
	FrameOK = "ok"
	// FrameError is the failure reply; Error carries the message.
	FrameError = "error"
	// FrameAlert is an unsolicited identity-transition push (Seq 0) sent
	// to subscribed connections, tagged with the origin node.
	FrameAlert = "alert"
)

// Frame is the unit of the cluster wire protocol. Exactly the fields
// relevant to a frame's Type are populated; the rest stay at their zero
// values and are omitted from the JSON.
type Frame struct {
	Type string `json:"type"`
	// Seq correlates a reply with its request; alert pushes use 0.
	Seq uint64 `json:"seq,omitempty"`
	// Node names the sender in hello frames and hello replies.
	Node string `json:"node,omitempty"`
	// Subscribe asks (in a hello) for alert pushes on this connection.
	Subscribe bool `json:"subscribe,omitempty"`
	// Wire negotiates the connection's encoding: in a hello it advertises
	// the sender's highest supported wire version, in the hello reply it
	// fixes the negotiated one. Zero means wire v1 (a peer that predates
	// the field).
	Wire int `json:"wire,omitempty"`
	// Lines are weblog log lines (feed, wire v1).
	Lines []string `json:"lines,omitempty"`
	// Txs are decoded transactions (feed, wire v2). They never appear in
	// JSON frames: v2 payloads carry them as weblog binary records, and a
	// v1 sender uses Lines.
	Txs []weblog.Transaction `json:"-"`
	// Devices names the devices to drain (export).
	Devices []string `json:"devices,omitempty"`
	// Blob is a shard-state blob (import request, export reply).
	Blob []byte `json:"blob,omitempty"`
	// Count reports how many transactions were fed or devices were
	// exported/imported/tracked (ok replies).
	Count int `json:"count,omitempty"`
	// Error is the failure message (error replies).
	Error string `json:"error,omitempty"`
	// Alert is the pushed identity transition (alert frames). Alert
	// frames carry the origin node's alert sequence number in Seq, so a
	// resubscribing client can resume from its last-seen cursor.
	Alert *NodeAlert `json:"alert,omitempty"`
	// Handoff identifies a two-phase drain. An export or import carrying
	// a handoff id is staged — held (export) or invisible (import) until
	// a commit for the same id; commit and abort frames always carry one.
	Handoff string `json:"handoff,omitempty"`
	// Client is the caller's stable identity (hello). Named clients get
	// replay dedup: a re-sent feed whose (Client, Seq) was already
	// applied is acknowledged without feeding the monitor twice.
	Client string `json:"client,omitempty"`
	// Cursor is an alert sequence position: in a resuming hello, the last
	// alert Seq the client saw (the node replays newer ring entries); in
	// every hello reply, the node's current alert sequence.
	Cursor uint64 `json:"cursor,omitempty"`
	// Resume marks a reconnect hello: the node replays ring alerts after
	// Cursor instead of starting the subscription fresh.
	Resume bool `json:"resume,omitempty"`
	// Replay marks a frame re-sent after a reconnect; the node consults
	// its per-client dedup window before applying it.
	Replay bool `json:"replay,omitempty"`
	// Gossip carries router-to-router reconciliation state (gossip frames
	// and their ok replies).
	Gossip *GossipState `json:"gossip,omitempty"`
}

// NodeAlert is one identity transition observed somewhere in the cluster,
// tagged with the node whose monitor raised it — the fan-in unit the
// router delivers.
type NodeAlert struct {
	// Node names the member whose monitor emitted the alert. During a
	// drain a device's alerts may switch origin (old owner first, new
	// owner after the handoff); the per-device alert order is preserved
	// across the switch.
	Node  string     `json:"node"`
	Alert core.Alert `json:"alert"`
	// Seq is the origin node's alert sequence number (1-based, per node).
	// (node, seq) identifies an alert instance cluster-wide: replicated
	// subscribers of one node can merge their streams by deduping on it.
	Seq uint64 `json:"seq,omitempty"`
}

// knownFrameTypes rejects frames whose type no handler understands at
// decode time, so protocol drift surfaces as a clean error on the reader
// rather than a silent no-op.
var knownFrameTypes = map[string]bool{
	FrameHello: true, FrameFeed: true, FrameExport: true, FrameImport: true,
	FrameFlush: true, FrameStats: true, FrameOK: true, FrameError: true,
	FrameAlert: true, FrameCommit: true, FrameAbort: true, FrameGossip: true,
	FrameList: true,
}

// WriteFrame encodes one frame onto w. Callers sharing a connection must
// serialize WriteFrame calls (the protocol requires whole frames in write
// order).
func WriteFrame(w io.Writer, f Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s frame: %w", f.Type, err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("cluster: %s frame of %d bytes exceeds limit %d", f.Type, len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("cluster: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("cluster: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame decodes one frame from r, accepting JSON (wire v1) and binary
// (wire v2) payloads interchangeably: the binary magic in the first
// payload byte selects the decoder, so a reader needs no per-connection
// version state. Malformed input — truncated headers or payloads,
// oversized lengths, invalid JSON or binary structure, unknown frame
// types — returns an error, never panics (FuzzReadFrame,
// FuzzBinaryFrame). A clean EOF before any header byte returns io.EOF
// unwrapped so callers can detect an orderly connection end.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("cluster: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, fmt.Errorf("cluster: zero-length frame")
	}
	if n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("cluster: reading %d-byte frame payload: %w", n, err)
	}
	if payload[0] == binaryMagic {
		return decodeBinaryFrame(payload)
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return Frame{}, fmt.Errorf("cluster: decoding frame: %w", err)
	}
	if !knownFrameTypes[f.Type] {
		return Frame{}, fmt.Errorf("cluster: unknown frame type %q", f.Type)
	}
	return f, nil
}

// errorFrame builds the failure reply for a request.
func errorFrame(seq uint64, err error) Frame {
	return Frame{Type: FrameError, Seq: seq, Error: err.Error()}
}
