package weblog

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"webtxprofile/internal/taxonomy"
)

// splitParseLine is the historic strings.Split-based parser, kept verbatim
// as the reference implementation: the in-place field scanner must accept
// exactly the lines it accepted, reject exactly the lines it rejected, and
// produce identical transactions (FuzzParseLine).
func splitParseLine(line string) (Transaction, error) {
	fields := strings.Split(line, ", ")
	if len(fields) != 11 {
		return Transaction{}, fmt.Errorf("weblog: expected 11 fields, got %d in %q", len(fields), line)
	}
	ts, err := time.Parse(timeLayout, fields[0])
	if err != nil {
		return Transaction{}, fmt.Errorf("weblog: bad timestamp: %w", err)
	}
	mt, err := parseMediaTypeField(fields[7])
	if err != nil {
		return Transaction{}, err
	}
	rep, err := taxonomy.ParseReputation(fields[9])
	if err != nil {
		return Transaction{}, err
	}
	var private bool
	switch fields[10] {
	case visPublic:
	case visPrivate:
		private = true
	default:
		return Transaction{}, fmt.Errorf("weblog: bad visibility %q", fields[10])
	}
	tx := Transaction{
		Timestamp:  ts,
		Host:       fields[1],
		Scheme:     fields[2],
		Action:     fields[3],
		UserID:     fields[4],
		SourceIP:   fields[5],
		Category:   fields[6],
		MediaType:  mt,
		AppType:    fields[8],
		Reputation: rep,
		Private:    private,
	}
	if err := tx.Validate(); err != nil {
		return Transaction{}, err
	}
	return tx, nil
}

// parseLineSeeds are the checked-in FuzzParseLine seeds: valid lines across
// the field variants plus the malformed shapes both parsers must reject
// identically. Kept in code so the testdata corpus is reproducible
// (TestRegenerateParseLineCorpus).
func parseLineSeeds() []string {
	valid := []Transaction{
		{
			Timestamp: time.Date(2015, 5, 29, 5, 5, 4, 0, time.UTC),
			Host:      "www.inlinegames.com", Scheme: taxonomy.SchemeHTTP,
			Action: taxonomy.ActionGet, UserID: "user_9", SourceIP: "10.0.0.9",
			Category:  "Games",
			MediaType: taxonomy.MediaType{Super: "text", Sub: "html"},
			AppType:   "browser", Reputation: taxonomy.MinimalRisk,
		},
		{
			Timestamp: time.Date(2015, 5, 29, 5, 5, 4, 123e6, time.UTC),
			Host:      "intranet.example", Scheme: taxonomy.SchemeHTTPS,
			Action: taxonomy.ActionConnect, UserID: "user_1", SourceIP: "10.0.0.1",
			Reputation: taxonomy.Unverified, Private: true,
		},
		{
			Timestamp: time.Date(2016, 1, 2, 23, 59, 59, 999e6, time.UTC),
			Host:      "cdn.example.org", Scheme: taxonomy.SchemeHTTP,
			Action: taxonomy.ActionPost, UserID: "user_22", SourceIP: "192.168.4.7",
			Category:   "Streaming Media",
			MediaType:  taxonomy.MediaType{Super: "video", Sub: "mp4"},
			Reputation: taxonomy.HighRisk,
		},
	}
	var seeds []string
	for _, tx := range valid {
		seeds = append(seeds, tx.MarshalLine())
	}
	seeds = append(seeds,
		"",                        // no fields
		"a, b",                    // too few fields
		strings.Repeat("x, ", 20), // too many fields
		"not-a-time, h, http, GET, u, s, c, /, , minimal-risk, public",                // bad timestamp
		"2015-05-29 05:05:04.000, h, http, GET, u, s, c, bad, , minimal-risk, public", // bad media type
		"2015-05-29 05:05:04.000, h, http, GET, u, s, c, /, , shady, public",          // bad reputation
		"2015-05-29 05:05:04.000, h, http, GET, u, s, c, /, , minimal-risk, secret",   // bad visibility
		"2015-05-29 05:05:04.000, h, warp, GET, u, s, c, /, , minimal-risk, public",   // bad scheme
		"2015-05-29 05:05:04.000, h, http, YEET, u, s, c, /, , minimal-risk, public",  // bad action
		"2015-05-29 05:05:04.000, , http, GET, u, s, c, /, , minimal-risk, public",    // empty host
		"2015-05-29 05:05:04.000, h,x, http, GET, u, s, c, /, , minimal-risk, public", // embedded comma
	)
	return seeds
}

// FuzzParseLine pins parse parity between the in-place field scanner and
// the historic Split-based parser, and the marshal round trip: any line
// either parser accepts must produce the same transaction from both, and
// re-marshaling that transaction must re-parse to itself.
func FuzzParseLine(f *testing.F) {
	for _, seed := range parseLineSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		got, gotErr := ParseLine(line)
		want, wantErr := splitParseLine(line)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("parser parity broke on %q:\n scanner: %v, %v\n   split: %v, %v",
				line, got, gotErr, want, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("error parity broke on %q:\n scanner: %v\n   split: %v", line, gotErr, wantErr)
			}
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parse parity broke on %q:\n scanner: %+v\n   split: %+v", line, got, want)
		}
		back, err := ParseLine(got.MarshalLine())
		if err != nil {
			t.Fatalf("re-marshaled line does not parse: %v", err)
		}
		if !reflect.DeepEqual(back, got) {
			t.Fatalf("marshal round trip drifted:\n first: %+v\nsecond: %+v", got, back)
		}
	})
}

// TestRegenerateParseLineCorpus rewrites testdata/fuzz/FuzzParseLine from
// parseLineSeeds when WTP_REGEN_CORPUS=1, so the checked-in corpus never
// drifts from the format. Normally it only verifies the files exist.
func TestRegenerateParseLineCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParseLine")
	if os.Getenv("WTP_REGEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range old {
			os.Remove(f)
		}
		for i, seed := range parseLineSeeds() {
			body := fmt.Sprintf("go test fuzz v1\nstring(%q)\n", seed)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing (run with WTP_REGEN_CORPUS=1 to create): %v", err)
	}
	if len(entries) < len(parseLineSeeds()) {
		t.Errorf("corpus has %d entries, want >= %d", len(entries), len(parseLineSeeds()))
	}
}

// TestParseLineAllocs gates the scanner's allocation budget: parsing a
// stable line string must not allocate at all in steady state.
func TestParseLineAllocs(t *testing.T) {
	line := parseLineSeeds()[0]
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := ParseLine(line); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Errorf("ParseLine allocates %.1f times per line, want 0", avg)
	}
}
