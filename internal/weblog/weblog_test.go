package weblog

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"webtxprofile/internal/taxonomy"
)

var t0 = time.Date(2015, 5, 29, 5, 5, 4, 0, time.UTC)

func sampleTx(i int) Transaction {
	actions := taxonomy.Actions
	schemes := taxonomy.Schemes
	reps := taxonomy.Reputations
	return Transaction{
		Timestamp:  t0.Add(time.Duration(i) * 13 * time.Second),
		Host:       "www.inlinegames.com",
		Scheme:     schemes[i%len(schemes)],
		Action:     actions[i%len(actions)],
		UserID:     "user_9",
		SourceIP:   "10.0.0.17",
		Category:   "Games",
		MediaType:  taxonomy.MediaType{Super: "text", Sub: "html"},
		AppType:    "Rhapsody",
		Reputation: reps[i%len(reps)],
		Private:    i%3 == 0,
	}
}

func TestLineRoundTrip(t *testing.T) {
	for i := 0; i < 8; i++ {
		tx := sampleTx(i)
		line := tx.MarshalLine()
		back, err := ParseLine(line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if !reflect.DeepEqual(tx, back) {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", tx, back)
		}
	}
}

// genTx generates random valid transactions for property tests.
type genTx Transaction

func (genTx) Generate(r *rand.Rand, _ int) reflect.Value {
	tx := Transaction{
		Timestamp:  t0.Add(time.Duration(r.Int63n(1e6)) * time.Millisecond),
		Host:       "host" + string(rune('a'+r.Intn(26))) + ".example.com",
		Scheme:     taxonomy.Schemes[r.Intn(2)],
		Action:     taxonomy.Actions[r.Intn(4)],
		UserID:     "user_" + string(rune('0'+r.Intn(10))),
		SourceIP:   "10.0.0." + string(rune('1'+r.Intn(9))),
		Category:   "Games",
		AppType:    "CloudFlare",
		Reputation: taxonomy.Reputations[r.Intn(4)],
		Private:    r.Intn(2) == 0,
	}
	if r.Intn(4) != 0 {
		tx.MediaType = taxonomy.MediaType{Super: "video", Sub: "mp4"}
	}
	return reflect.ValueOf(genTx(tx))
}

func TestLineRoundTripProperty(t *testing.T) {
	f := func(g genTx) bool {
		tx := Transaction(g)
		back, err := ParseLine(tx.MarshalLine())
		return err == nil && reflect.DeepEqual(tx, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	// sampleTx(1) carries scheme HTTPS, action POST, reputation
	// minimal-risk and visibility public, so every replacement below
	// actually corrupts the line.
	good := sampleTx(1).MarshalLine()
	bad := []string{
		"",
		"only, three, fields",
		strings.Replace(good, "2015", "not-a-year", 1),
		strings.Replace(good, "POST", "FETCH", 1),
		strings.Replace(good, "HTTPS", "GOPHER", 1),
		strings.Replace(good, "minimal-risk", "who-knows", 1),
		strings.Replace(good, "public", "hidden", 1),
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine accepted %q", line)
		}
	}
}

func TestValidate(t *testing.T) {
	tx := sampleTx(1)
	if err := tx.Validate(); err != nil {
		t.Fatalf("valid transaction rejected: %v", err)
	}
	mutations := map[string]func(*Transaction){
		"zero timestamp": func(x *Transaction) { x.Timestamp = time.Time{} },
		"empty host":     func(x *Transaction) { x.Host = "" },
		"bad scheme":     func(x *Transaction) { x.Scheme = "FTP" },
		"bad action":     func(x *Transaction) { x.Action = "PUT" },
		"empty user":     func(x *Transaction) { x.UserID = "" },
		"empty source":   func(x *Transaction) { x.SourceIP = "" },
		"bad reputation": func(x *Transaction) { x.Reputation = taxonomy.Reputation(42) },
		"comma in field": func(x *Transaction) { x.Category = "a,b" },
	}
	for name, mutate := range mutations {
		x := sampleTx(1)
		mutate(&x)
		if err := x.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid transaction", name)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 100
	for i := 0; i < n; i++ {
		tx := sampleTx(i)
		if err := w.Write(tx); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != n {
		t.Errorf("Count = %d, want %d", w.Count(), n)
	}
	if !strings.HasPrefix(buf.String(), "#") {
		t.Error("output missing header line")
	}

	r := NewReader(&buf)
	ds, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if ds.Len() != n {
		t.Fatalf("read %d records, want %d", ds.Len(), n)
	}
	for i := 0; i < n; i++ {
		want := sampleTx(i)
		if !reflect.DeepEqual(ds.Transactions[i], want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	tx := sampleTx(0)
	input := "# comment\n\n" + tx.MarshalLine() + "\n\n# trailing\n"
	r := NewReader(strings.NewReader(input))
	got, err := r.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(got, tx) {
		t.Error("transaction mismatch")
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestReaderReportsLineNumber(t *testing.T) {
	input := "# header\ngarbage line\n"
	r := NewReader(strings.NewReader(input))
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func buildDataset(usersTx map[string]int) *Dataset {
	ds := NewDataset()
	i := 0
	for _, u := range []string{"user_1", "user_2", "user_3"} {
		n, ok := usersTx[u]
		if !ok {
			continue
		}
		for k := 0; k < n; k++ {
			tx := sampleTx(i)
			tx.UserID = u
			tx.SourceIP = "10.0.0." + u[len(u)-1:]
			ds.Add(tx)
			i++
		}
	}
	ds.SortByTime()
	return ds
}

func TestDatasetViews(t *testing.T) {
	ds := buildDataset(map[string]int{"user_1": 10, "user_2": 5, "user_3": 1})
	if got := ds.Users(); !reflect.DeepEqual(got, []string{"user_1", "user_2", "user_3"}) {
		t.Errorf("Users = %v", got)
	}
	if ds.UserCount("user_1") != 10 || ds.UserCount("user_2") != 5 {
		t.Error("UserCount wrong")
	}
	if got := len(ds.UserTransactions("user_2")); got != 5 {
		t.Errorf("UserTransactions(user_2) len = %d", got)
	}
	if got := len(ds.HostTransactions("10.0.0.2")); got != 5 {
		t.Errorf("HostTransactions len = %d", got)
	}
	for i, tx := range ds.UserTransactions("user_1") {
		if tx.UserID != "user_1" {
			t.Fatalf("record %d belongs to %s", i, tx.UserID)
		}
	}
}

func TestFilterMinTransactions(t *testing.T) {
	ds := buildDataset(map[string]int{"user_1": 10, "user_2": 5, "user_3": 1})
	kept, dropped := ds.FilterMinTransactions(5)
	if !reflect.DeepEqual(dropped, []string{"user_3"}) {
		t.Errorf("dropped = %v", dropped)
	}
	if kept.Len() != 15 {
		t.Errorf("kept %d transactions", kept.Len())
	}
	if got := kept.Users(); !reflect.DeepEqual(got, []string{"user_1", "user_2"}) {
		t.Errorf("kept users = %v", got)
	}
}

func TestSplitChronological(t *testing.T) {
	ds := buildDataset(map[string]int{"user_1": 8, "user_2": 4})
	train, test, err := ds.SplitChronological(0.75)
	if err != nil {
		t.Fatalf("SplitChronological: %v", err)
	}
	if train.UserCount("user_1") != 6 || test.UserCount("user_1") != 2 {
		t.Errorf("user_1 split %d/%d", train.UserCount("user_1"), test.UserCount("user_1"))
	}
	if train.UserCount("user_2") != 3 || test.UserCount("user_2") != 1 {
		t.Errorf("user_2 split %d/%d", train.UserCount("user_2"), test.UserCount("user_2"))
	}
	// Chronology: every train transaction of a user precedes every test one.
	for _, u := range []string{"user_1", "user_2"} {
		tr, te := train.UserTransactions(u), test.UserTransactions(u)
		if tr[len(tr)-1].Timestamp.After(te[0].Timestamp) {
			t.Errorf("%s: train overlaps test in time", u)
		}
	}
	if _, _, err := ds.SplitChronological(1.5); err == nil {
		t.Error("accepted fraction > 1")
	}
}

func TestSplitAtTime(t *testing.T) {
	ds := buildDataset(map[string]int{"user_1": 10})
	cut := ds.Transactions[5].Timestamp
	obs, sub := ds.SplitAtTime(cut)
	if obs.Len() != 5 || sub.Len() != 5 {
		t.Errorf("split %d/%d, want 5/5", obs.Len(), sub.Len())
	}
	for i := range obs.Transactions {
		if !obs.Transactions[i].Timestamp.Before(cut) {
			t.Error("observed contains transaction at/after cut")
		}
	}
}

func TestComputeStats(t *testing.T) {
	ds := buildDataset(map[string]int{"user_1": 10, "user_2": 5, "user_3": 1})
	s := ds.ComputeStats()
	if s.Transactions != 16 || s.Users != 3 || s.Hosts != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.MinPerUser != 1 || s.MedianPerUser != 5 || s.MaxPerUser != 10 {
		t.Errorf("per-user stats = %+v", s)
	}
	if s.UsersPerHost != 1 || s.HostsPerUserMin != 1 || s.HostsPerUserMax != 1 {
		t.Errorf("sharing stats = %+v", s)
	}
}

func TestTimeSpan(t *testing.T) {
	ds := NewDataset()
	if _, _, ok := ds.TimeSpan(); ok {
		t.Error("empty dataset reported a time span")
	}
	ds = buildDataset(map[string]int{"user_1": 3})
	start, end, ok := ds.TimeSpan()
	if !ok || !start.Equal(t0) || !end.After(start) {
		t.Errorf("TimeSpan = %v..%v ok=%v", start, end, ok)
	}
}

func TestBusiestHost(t *testing.T) {
	ds := NewDataset()
	if _, ok := ds.BusiestHost(); ok {
		t.Error("empty dataset reported a busiest host")
	}
	ds = buildDataset(map[string]int{"user_1": 10, "user_2": 5})
	h, ok := ds.BusiestHost()
	if !ok || h != "10.0.0.1" {
		t.Errorf("busiest = %q ok=%v", h, ok)
	}
}
