package weblog

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Header is the first line of a transaction log file. It names the fields
// so the format is self-describing.
const Header = "# timestamp, host, scheme, action, user, source-ip, category, media-type, application-type, reputation, visibility"

// Writer streams transactions to an io.Writer in the log-line format.
type Writer struct {
	bw       *bufio.Writer
	wroteHdr bool
	count    int
}

// NewWriter wraps w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one transaction. The header line is emitted before the
// first record.
func (w *Writer) Write(tx Transaction) error {
	if err := tx.Validate(); err != nil {
		return err
	}
	if !w.wroteHdr {
		if _, err := w.bw.WriteString(Header + "\n"); err != nil {
			return err
		}
		w.wroteHdr = true
	}
	if _, err := w.bw.WriteString(tx.MarshalLine()); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams transactions from an io.Reader, skipping header and
// comment lines (prefix '#') and blank lines.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{sc: sc}
}

// Read returns the next transaction, or io.EOF when the input is
// exhausted. Malformed lines return an error identifying the line number.
func (r *Reader) Read() (Transaction, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tx, err := ParseLine(line)
		if err != nil {
			return Transaction{}, fmt.Errorf("weblog: line %d: %w", r.line, err)
		}
		return tx, nil
	}
	if err := r.sc.Err(); err != nil {
		return Transaction{}, err
	}
	return Transaction{}, io.EOF
}

// ReadAll consumes the remaining input into a Dataset.
func (r *Reader) ReadAll() (*Dataset, error) {
	ds := NewDataset()
	for {
		tx, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ds.Add(tx)
	}
	ds.SortByTime()
	return ds, nil
}

// WriteDataset writes all transactions of ds to w in time order.
func WriteDataset(w io.Writer, ds *Dataset) error {
	lw := NewWriter(w)
	for i := range ds.Transactions {
		if err := lw.Write(ds.Transactions[i]); err != nil {
			return err
		}
	}
	return lw.Flush()
}
