// Package weblog models web transaction logs as produced by the paper's
// secure proxy: one record per HTTP(S) transaction, augmented by the
// logging service with website category, application type, media type and
// URL reputation (Sect. III-A). It provides the on-disk log-line format,
// streaming readers and writers, and an in-memory dataset with the
// per-user and per-host views the profiling pipeline needs.
package weblog

import (
	"fmt"
	"strings"
	"time"

	"webtxprofile/internal/taxonomy"
)

// Transaction is one logged web transaction. Fields mirror the log excerpt
// in Sect. III-A of the paper:
//
//	2015-05-29 05:05:04, www.inlinegames.com, HTTP/1.0, GET, user_9,
//	Games, text/html, ...
//
// extended with the source host (device) identity that host-specific
// windowing requires, and the augmentation fields used for features.
type Transaction struct {
	// Timestamp is when the proxy observed the transaction.
	Timestamp time.Time
	// Host is the requested server name (target of the single-URL
	// transaction).
	Host string
	// Scheme is the URI scheme: taxonomy.SchemeHTTP or SchemeHTTPS.
	Scheme string
	// Action is the HTTP action: GET, POST, CONNECT or HEAD.
	Action string
	// UserID identifies the authenticated user (e.g. "user_9").
	UserID string
	// SourceIP identifies the device the request came from; host-specific
	// windowing aggregates on this field.
	SourceIP string
	// Category is the website category assigned by the logging service.
	Category string
	// MediaType is the response media type; may be zero (e.g. CONNECT).
	MediaType taxonomy.MediaType
	// AppType is the application running on the target resource; may be
	// empty when the service has no application knowledge.
	AppType string
	// Reputation is the URL reputation assigned by the logging service.
	Reputation taxonomy.Reputation
	// Private marks requests to internal-network (private) destinations.
	Private bool
}

// Validate checks structural integrity of the record. It does not check
// taxonomy membership; unknown labels are permitted (the feature
// vocabulary is data-driven).
func (t Transaction) Validate() error {
	if t.Timestamp.IsZero() {
		return fmt.Errorf("weblog: transaction has zero timestamp")
	}
	if t.Host == "" {
		return fmt.Errorf("weblog: transaction has empty host")
	}
	switch t.Scheme {
	case taxonomy.SchemeHTTP, taxonomy.SchemeHTTPS:
	default:
		return fmt.Errorf("weblog: unknown scheme %q", t.Scheme)
	}
	switch t.Action {
	case taxonomy.ActionGet, taxonomy.ActionPost, taxonomy.ActionConnect, taxonomy.ActionHead:
	default:
		return fmt.Errorf("weblog: unknown action %q", t.Action)
	}
	if t.UserID == "" {
		return fmt.Errorf("weblog: transaction has empty user id")
	}
	if t.SourceIP == "" {
		return fmt.Errorf("weblog: transaction has empty source ip")
	}
	if !t.Reputation.Valid() {
		return fmt.Errorf("weblog: invalid reputation %d", int(t.Reputation))
	}
	// Checked field by field (not on one concatenated string) so the hot
	// ingest path validates without allocating.
	if strings.ContainsAny(t.Host, ",\n") || strings.ContainsAny(t.UserID, ",\n") ||
		strings.ContainsAny(t.SourceIP, ",\n") || strings.ContainsAny(t.Category, ",\n") ||
		strings.ContainsAny(t.AppType, ",\n") {
		return fmt.Errorf("weblog: field contains log delimiter")
	}
	return nil
}

// timeLayout is the on-disk timestamp format. Millisecond precision keeps
// sub-second ordering stable across a round-trip.
const timeLayout = "2006-01-02 15:04:05.000"

// visibility tokens for the private-destination flag.
const (
	visPublic  = "public"
	visPrivate = "private"
)

// MarshalLine renders the transaction as one log line (no trailing
// newline). Field order:
//
//	timestamp, host, scheme, action, user, source-ip, category,
//	media-type, application-type, reputation, visibility
func (t Transaction) MarshalLine() string {
	vis := visPublic
	if t.Private {
		vis = visPrivate
	}
	return strings.Join([]string{
		t.Timestamp.UTC().Format(timeLayout),
		t.Host,
		t.Scheme,
		t.Action,
		t.UserID,
		t.SourceIP,
		t.Category,
		t.MediaType.String(),
		t.AppType,
		t.Reputation.String(),
		vis,
	}, ", ")
}

// numLineFields is the field count of the log-line format.
const numLineFields = 11

// splitLineFields scans the ", "-separated fields of a log line in place:
// the returned fields alias line's backing memory, so the steady-state
// ingest path pays no per-line []string (or per-field string) allocation
// the way strings.Split does. The separator semantics match strings.Split
// exactly — non-overlapping, left to right — and the total field count is
// reported even when it exceeds the fixed array, so error messages agree
// with the historic Split-based parser (FuzzParseLine pins that parity).
func splitLineFields(line string) (fields [numLineFields]string, n int) {
	rest := line
	for {
		j := strings.Index(rest, ", ")
		if j < 0 {
			break
		}
		if n < numLineFields {
			fields[n] = rest[:j]
		}
		n++
		rest = rest[j+2:]
	}
	if n < numLineFields {
		fields[n] = rest
	}
	n++
	return fields, n
}

// ParseLine parses one log line produced by MarshalLine. The string fields
// of the returned transaction alias line's backing memory rather than
// copying it — callers that retain transactions past the lifetime of a
// reused line buffer must pass a stable string (the collector converts
// each wire line to a fresh string, which is the feed path's single
// steady-state allocation per transaction).
func ParseLine(line string) (Transaction, error) {
	fields, n := splitLineFields(line)
	if n != numLineFields {
		return Transaction{}, fmt.Errorf("weblog: expected 11 fields, got %d in %q", n, line)
	}
	ts, err := time.Parse(timeLayout, fields[0])
	if err != nil {
		return Transaction{}, fmt.Errorf("weblog: bad timestamp: %w", err)
	}
	mt, err := parseMediaTypeField(fields[7])
	if err != nil {
		return Transaction{}, err
	}
	rep, err := taxonomy.ParseReputation(fields[9])
	if err != nil {
		return Transaction{}, err
	}
	var private bool
	switch fields[10] {
	case visPublic:
	case visPrivate:
		private = true
	default:
		return Transaction{}, fmt.Errorf("weblog: bad visibility %q", fields[10])
	}
	tx := Transaction{
		Timestamp:  ts,
		Host:       fields[1],
		Scheme:     fields[2],
		Action:     fields[3],
		UserID:     fields[4],
		SourceIP:   fields[5],
		Category:   fields[6],
		MediaType:  mt,
		AppType:    fields[8],
		Reputation: rep,
		Private:    private,
	}
	if err := tx.Validate(); err != nil {
		return Transaction{}, err
	}
	return tx, nil
}

// parseMediaTypeField tolerates the "super/" empty rendering of the zero
// MediaType that MarshalLine produces ("/" for a zero value).
func parseMediaTypeField(s string) (taxonomy.MediaType, error) {
	if s == "/" || s == "" {
		return taxonomy.MediaType{}, nil
	}
	return taxonomy.ParseMediaType(s)
}
