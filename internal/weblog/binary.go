package weblog

import (
	"encoding/binary"
	"fmt"
	"time"

	"webtxprofile/internal/taxonomy"
)

// Binary transaction record — the wire-v2 payload unit shared by the
// collector's binary ingest mode and the cluster's binary feed frames.
// One record is:
//
//	varint   timestamp (UnixNano, zigzag-encoded)
//	9 ×      uvarint length + raw bytes: host, scheme, action, user,
//	         source-ip, category, media super-type, media sub-type,
//	         application type
//	byte     reputation
//	byte     flags (bit 0: private destination)
//
// Unlike the log-line format the record is 8-bit clean (fields may contain
// the line delimiter) and keeps full nanosecond timestamps; every line the
// line format can carry round-trips losslessly. The record is
// self-delimiting, so feed frames concatenate records with only a count,
// while the collector's stream mode adds a uvarint length prefix per
// record for framing.

// MaxBinaryRecord caps one encoded record, mirroring the collector's 1 MiB
// line cap; a corrupt length prefix cannot balloon memory.
const MaxBinaryRecord = 1 << 20

// binaryFlagPrivate is the Private field's bit in the record's flags byte.
const binaryFlagPrivate = 0x01

// AppendBinary appends t encoded as one binary record to dst and returns
// the extended slice. Encode validated transactions only: the format
// assumes a timestamp inside the int64 UnixNano range.
func (t *Transaction) AppendBinary(dst []byte) []byte {
	ts := t.Timestamp.UnixNano()
	dst = binary.AppendVarint(dst, ts)
	dst = appendBinaryString(dst, t.Host)
	dst = appendBinaryString(dst, t.Scheme)
	dst = appendBinaryString(dst, t.Action)
	dst = appendBinaryString(dst, t.UserID)
	dst = appendBinaryString(dst, t.SourceIP)
	dst = appendBinaryString(dst, t.Category)
	dst = appendBinaryString(dst, t.MediaType.Super)
	dst = appendBinaryString(dst, t.MediaType.Sub)
	dst = appendBinaryString(dst, t.AppType)
	dst = append(dst, byte(t.Reputation))
	var flags byte
	if t.Private {
		flags |= binaryFlagPrivate
	}
	return append(dst, flags)
}

func appendBinaryString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeBinary decodes exactly one binary record. The record's string
// fields are carved out of a single fresh copy of rec, so the call costs
// one allocation regardless of field count.
func DecodeBinary(rec []byte) (Transaction, error) {
	tx, rest, err := DecodeBinaryFrom(string(rec))
	if err != nil {
		return Transaction{}, err
	}
	if rest != "" {
		return Transaction{}, fmt.Errorf("weblog: %d trailing bytes after binary record", len(rest))
	}
	return tx, nil
}

// DecodeBinaryFrom decodes one binary record from the front of s and
// returns the remainder — the shape a frame decoder wants for records
// concatenated back to back. The decoded string fields alias s's backing
// memory (zero copies); convert the wire payload to a string once and
// every record shares it. Structural validity only: run Validate for the
// log-line format's semantic checks.
func DecodeBinaryFrom(s string) (Transaction, string, error) {
	ts, s, err := readBinaryVarint(s)
	if err != nil {
		return Transaction{}, "", fmt.Errorf("weblog: binary record timestamp: %w", err)
	}
	var tx Transaction
	tx.Timestamp = time.Unix(0, ts).UTC()
	fields := [9]*string{
		&tx.Host, &tx.Scheme, &tx.Action, &tx.UserID, &tx.SourceIP,
		&tx.Category, &tx.MediaType.Super, &tx.MediaType.Sub, &tx.AppType,
	}
	for i, f := range fields {
		if *f, s, err = readBinaryString(s); err != nil {
			return Transaction{}, "", fmt.Errorf("weblog: binary record field %d: %w", i, err)
		}
	}
	if len(s) < 2 {
		return Transaction{}, "", fmt.Errorf("weblog: binary record truncated before reputation")
	}
	tx.Reputation = taxonomy.Reputation(s[0])
	flags := s[1]
	if flags&^binaryFlagPrivate != 0 {
		return Transaction{}, "", fmt.Errorf("weblog: binary record has unknown flag bits %#x", flags)
	}
	tx.Private = flags&binaryFlagPrivate != 0
	return tx, s[2:], nil
}

// readBinaryVarint is binary.Varint over a string, returning the rest.
func readBinaryVarint(s string) (int64, string, error) {
	ux, rest, err := readBinaryUvarint(s)
	if err != nil {
		return 0, "", err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, rest, nil
}

// readBinaryUvarint is binary.Uvarint over a string, returning the rest.
func readBinaryUvarint(s string) (uint64, string, error) {
	var x uint64
	var shift uint
	for i := 0; i < len(s); i++ {
		if i == binary.MaxVarintLen64 {
			break
		}
		b := s[i]
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, "", fmt.Errorf("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<shift, s[i+1:], nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	if len(s) > binary.MaxVarintLen64 {
		return 0, "", fmt.Errorf("uvarint overflows 64 bits")
	}
	return 0, "", fmt.Errorf("truncated uvarint")
}

// readBinaryString reads one uvarint-length-prefixed string, returning the
// field (aliasing s) and the rest.
func readBinaryString(s string) (string, string, error) {
	n, rest, err := readBinaryUvarint(s)
	if err != nil {
		return "", "", err
	}
	if n > uint64(len(rest)) {
		return "", "", fmt.Errorf("field of %d bytes exceeds remaining %d", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}
