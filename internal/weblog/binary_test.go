package weblog

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"webtxprofile/internal/taxonomy"
)

func binarySampleTxs() []Transaction {
	return []Transaction{
		{
			Timestamp: time.Date(2015, 5, 29, 5, 5, 4, 123e6, time.UTC),
			Host:      "www.inlinegames.com", Scheme: taxonomy.SchemeHTTP,
			Action: taxonomy.ActionGet, UserID: "user_9", SourceIP: "10.0.0.9",
			Category:  "Games",
			MediaType: taxonomy.MediaType{Super: "text", Sub: "html"},
			AppType:   "browser", Reputation: taxonomy.MinimalRisk,
		},
		{
			// Nanosecond timestamp and 8-bit-dirty fields: both are legal in
			// the binary record though the line format cannot carry them.
			Timestamp: time.Date(2021, 11, 3, 17, 0, 0, 987654321, time.UTC),
			Host:      "a,b\nc", Scheme: taxonomy.SchemeHTTPS,
			Action: taxonomy.ActionConnect, UserID: "u", SourceIP: "10.1.2.3",
			Reputation: taxonomy.HighRisk, Private: true,
		},
		{
			Timestamp: time.Date(1969, 12, 31, 23, 59, 59, 0, time.UTC),
			Host:      "pre-epoch.example", Scheme: taxonomy.SchemeHTTP,
			Action: taxonomy.ActionHead, UserID: "u2", SourceIP: "10.9.9.9",
			Reputation: taxonomy.MediumRisk,
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, tx := range binarySampleTxs() {
		rec := tx.AppendBinary(nil)
		back, err := DecodeBinary(rec)
		if err != nil {
			t.Fatalf("decode %+v: %v", tx, err)
		}
		if !reflect.DeepEqual(back, tx) {
			t.Errorf("round trip drifted:\n  in: %+v\n out: %+v", tx, back)
		}
	}
}

// TestBinaryMatchesLineFormat: any transaction that survives the log-line
// format must decode identically from its binary record — the binary
// codec is a lossless superset of the line format, which is what makes
// wire v1 and v2 feeds equivalent.
func TestBinaryMatchesLineFormat(t *testing.T) {
	for _, tx := range binarySampleTxs()[:1] {
		viaLine, err := ParseLine(tx.MarshalLine())
		if err != nil {
			t.Fatal(err)
		}
		viaBinary, err := DecodeBinary(viaLine.AppendBinary(nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaBinary, viaLine) {
			t.Errorf("binary record drifts from line format:\n line: %+v\n  bin: %+v", viaLine, viaBinary)
		}
	}
}

func TestDecodeBinaryFromConcatenated(t *testing.T) {
	txs := binarySampleTxs()
	var buf []byte
	for i := range txs {
		buf = txs[i].AppendBinary(buf)
	}
	rest := string(buf)
	for i := range txs {
		var tx Transaction
		var err error
		tx, rest, err = DecodeBinaryFrom(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(tx, txs[i]) {
			t.Errorf("record %d drifted:\n  in: %+v\n out: %+v", i, txs[i], tx)
		}
	}
	if rest != "" {
		t.Errorf("%d trailing bytes after last record", len(rest))
	}
}

func TestDecodeBinaryRejectsMalformed(t *testing.T) {
	valid := binarySampleTxs()[0].AppendBinary(nil)
	cases := map[string][]byte{
		"empty":             nil,
		"truncated varint":  {0x80, 0x80},
		"truncated field":   valid[:len(valid)/2],
		"missing flags":     valid[:len(valid)-1],
		"unknown flag bits": append(append([]byte(nil), valid[:len(valid)-1]...), 0xFE),
		"trailing bytes":    append(append([]byte(nil), valid...), 0x00),
		"huge field length": {0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for name, rec := range cases {
		if _, err := DecodeBinary(rec); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestBinaryDecodeAllocs gates the zero-copy contract: decoding from an
// already-converted string allocates nothing.
func TestBinaryDecodeAllocs(t *testing.T) {
	tx := binarySampleTxs()[0]
	s := string(tx.AppendBinary(nil))
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeBinaryFrom(s); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Errorf("DecodeBinaryFrom allocates %.1f times per record, want 0", avg)
	}
}

func TestBinaryFieldsAliasInput(t *testing.T) {
	tx := binarySampleTxs()[0]
	s := string(tx.AppendBinary(nil))
	got, _, err := DecodeBinaryFrom(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, got.Host) {
		t.Fatal("decoded host not present in input")
	}
}
