package weblog

import (
	"fmt"
	"sort"
	"time"
)

// Dataset is an in-memory collection of transactions with per-user and
// per-host views. The profiling pipeline slices it chronologically
// (train/test epochs, Sect. IV-B) and by entity (user-specific vs
// host-specific windowing, Sect. III-C/D).
type Dataset struct {
	Transactions []Transaction

	sorted  bool
	byUser  map[string][]int
	byHost  map[string][]int
	indexed bool
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{}
}

// FromTransactions builds a dataset from a slice (which is retained).
func FromTransactions(txs []Transaction) *Dataset {
	ds := &Dataset{Transactions: txs}
	ds.SortByTime()
	return ds
}

// Add appends one transaction, invalidating indexes.
func (d *Dataset) Add(tx Transaction) {
	d.Transactions = append(d.Transactions, tx)
	d.sorted = false
	d.indexed = false
}

// Len returns the number of transactions.
func (d *Dataset) Len() int { return len(d.Transactions) }

// SortByTime sorts transactions chronologically (stable, so equal
// timestamps keep input order).
func (d *Dataset) SortByTime() {
	if d.sorted {
		return
	}
	sort.SliceStable(d.Transactions, func(i, j int) bool {
		return d.Transactions[i].Timestamp.Before(d.Transactions[j].Timestamp)
	})
	d.sorted = true
	d.indexed = false
}

func (d *Dataset) buildIndex() {
	if d.indexed {
		return
	}
	d.SortByTime()
	d.byUser = make(map[string][]int)
	d.byHost = make(map[string][]int)
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		d.byUser[tx.UserID] = append(d.byUser[tx.UserID], i)
		d.byHost[tx.SourceIP] = append(d.byHost[tx.SourceIP], i)
	}
	d.indexed = true
}

// Users returns all user ids in deterministic (sorted) order.
func (d *Dataset) Users() []string {
	d.buildIndex()
	users := make([]string, 0, len(d.byUser))
	for u := range d.byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	return users
}

// Hosts returns all source addresses in deterministic (sorted) order.
func (d *Dataset) Hosts() []string {
	d.buildIndex()
	hosts := make([]string, 0, len(d.byHost))
	for h := range d.byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// UserCount returns the number of transactions for user id.
func (d *Dataset) UserCount(id string) int {
	d.buildIndex()
	return len(d.byUser[id])
}

// UserTransactions returns the chronologically ordered transactions of one
// user. The returned slice is freshly allocated.
func (d *Dataset) UserTransactions(id string) []Transaction {
	d.buildIndex()
	return d.collect(d.byUser[id])
}

// HostTransactions returns the chronologically ordered transactions seen
// from one source address. The returned slice is freshly allocated.
func (d *Dataset) HostTransactions(ip string) []Transaction {
	d.buildIndex()
	return d.collect(d.byHost[ip])
}

func (d *Dataset) collect(idx []int) []Transaction {
	out := make([]Transaction, len(idx))
	for k, i := range idx {
		out[k] = d.Transactions[i]
	}
	return out
}

// TimeSpan returns the timestamps of the first and last transactions.
// ok is false for an empty dataset.
func (d *Dataset) TimeSpan() (start, end time.Time, ok bool) {
	if len(d.Transactions) == 0 {
		return time.Time{}, time.Time{}, false
	}
	d.SortByTime()
	return d.Transactions[0].Timestamp, d.Transactions[len(d.Transactions)-1].Timestamp, true
}

// FilterMinTransactions returns a new dataset containing only users with
// at least min transactions, plus the ids of the dropped users. The paper
// drops users with fewer than 1,500 transactions (Sect. IV-A).
func (d *Dataset) FilterMinTransactions(min int) (*Dataset, []string) {
	d.buildIndex()
	keep := make(map[string]bool, len(d.byUser))
	var dropped []string
	for u, idx := range d.byUser {
		if len(idx) >= min {
			keep[u] = true
		} else {
			dropped = append(dropped, u)
		}
	}
	sort.Strings(dropped)
	out := NewDataset()
	for i := range d.Transactions {
		if keep[d.Transactions[i].UserID] {
			out.Add(d.Transactions[i])
		}
	}
	out.SortByTime()
	out.sorted = true
	return out, dropped
}

// SplitChronological splits each user's transactions at the given fraction
// (0 < frac < 1): the oldest frac go to train, the remainder to test. This
// is the per-user 75/25 split of Sect. IV-B.
func (d *Dataset) SplitChronological(frac float64) (train, test *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("weblog: split fraction %v out of (0,1)", frac)
	}
	d.buildIndex()
	train, test = NewDataset(), NewDataset()
	for _, u := range d.Users() {
		idx := d.byUser[u]
		cut := int(float64(len(idx)) * frac)
		for k, i := range idx {
			if k < cut {
				train.Add(d.Transactions[i])
			} else {
				test.Add(d.Transactions[i])
			}
		}
	}
	train.SortByTime()
	test.SortByTime()
	return train, test, nil
}

// SplitAtTime splits the dataset into transactions strictly before t
// (observed) and at-or-after t (subsequent). Used by the novelty analysis
// of Sect. IV-B.
func (d *Dataset) SplitAtTime(t time.Time) (observed, subsequent *Dataset) {
	d.SortByTime()
	observed, subsequent = NewDataset(), NewDataset()
	for i := range d.Transactions {
		if d.Transactions[i].Timestamp.Before(t) {
			observed.Add(d.Transactions[i])
		} else {
			subsequent.Add(d.Transactions[i])
		}
	}
	observed.sorted = true
	subsequent.sorted = true
	return observed, subsequent
}

// Stats summarizes a dataset the way Sect. IV-A reports the vendor
// benchmark: transaction total, user/device counts and the distribution of
// per-user volumes.
type Stats struct {
	Transactions  int
	Users         int
	Hosts         int
	MinPerUser    int
	MedianPerUser int
	MaxPerUser    int
	// UsersPerHost is the mean number of distinct users per device.
	UsersPerHost float64
	// HostsPerUserMin/Max bound the devices-per-user distribution.
	HostsPerUserMin int
	HostsPerUserMax int
}

// ComputeStats derives summary statistics.
func (d *Dataset) ComputeStats() Stats {
	d.buildIndex()
	s := Stats{
		Transactions: len(d.Transactions),
		Users:        len(d.byUser),
		Hosts:        len(d.byHost),
	}
	counts := make([]int, 0, len(d.byUser))
	for _, idx := range d.byUser {
		counts = append(counts, len(idx))
	}
	sort.Ints(counts)
	if len(counts) > 0 {
		s.MinPerUser = counts[0]
		s.MedianPerUser = counts[len(counts)/2]
		s.MaxPerUser = counts[len(counts)-1]
	}
	usersOnHost := make(map[string]map[string]bool)
	hostsOfUser := make(map[string]map[string]bool)
	for i := range d.Transactions {
		tx := &d.Transactions[i]
		if usersOnHost[tx.SourceIP] == nil {
			usersOnHost[tx.SourceIP] = make(map[string]bool)
		}
		usersOnHost[tx.SourceIP][tx.UserID] = true
		if hostsOfUser[tx.UserID] == nil {
			hostsOfUser[tx.UserID] = make(map[string]bool)
		}
		hostsOfUser[tx.UserID][tx.SourceIP] = true
	}
	var totalUsers int
	for _, us := range usersOnHost {
		totalUsers += len(us)
	}
	if len(usersOnHost) > 0 {
		s.UsersPerHost = float64(totalUsers) / float64(len(usersOnHost))
	}
	first := true
	for _, hs := range hostsOfUser {
		n := len(hs)
		if first {
			s.HostsPerUserMin, s.HostsPerUserMax = n, n
			first = false
			continue
		}
		if n < s.HostsPerUserMin {
			s.HostsPerUserMin = n
		}
		if n > s.HostsPerUserMax {
			s.HostsPerUserMax = n
		}
	}
	return s
}

// BusiestHost returns the source address with the most transactions
// (ties broken lexicographically); ok is false for an empty dataset.
func (d *Dataset) BusiestHost() (host string, ok bool) {
	d.buildIndex()
	bestN := -1
	for _, h := range d.Hosts() {
		if n := len(d.byHost[h]); n > bestN {
			host, bestN = h, n
		}
	}
	return host, bestN >= 0
}
