package taxonomy

import "fmt"

// The generators below synthesize label pools of arbitrary size from small
// seed lists of realistic names. Generation is purely positional (no RNG),
// so the same size always yields the same pool. Seed lists include the
// labels quoted by the paper (Games, Restaurants, Phishing, Messaging,
// Rhapsody, CloudFlare, Speedyshare, video/mp4, text/plain, audio/wav,
// text/html) so the worked examples from Sect. III parse against the
// default taxonomy.

var seedCategories = []string{
	"Games", "Restaurants", "Phishing", "Messaging", "News", "Shopping",
	"SocialNetworking", "Streaming", "Banking", "Travel", "Education",
	"Government", "Health", "JobSearch", "Gambling", "Sports", "Weather",
	"WebMail", "SearchEngines", "Technology", "FileSharing", "Adult",
	"Advertising", "Auctions", "Blogs", "BusinessServices", "Chat",
	"CloudStorage", "ContentDelivery", "Dating", "Forums", "Hosting",
	"InstantMessaging", "Malware", "Music", "OnlineTrading", "Parking",
	"PersonalSites", "Photography", "Politics", "Portals", "RealEstate",
	"Religion", "Science", "SoftwareDownloads", "Translation", "VPN",
	"VideoConferencing", "Webcams", "Wikis",
}

var categoryQualifiers = []string{
	"Local", "Global", "Corporate", "Community", "Premium", "Academic",
	"Regional", "Mobile", "Secure", "Public", "Private", "Archived",
}

var seedSuperTypes = []string{
	"text", "image", "video", "audio", "application", "font", "message",
	"model",
}

// subTypeStems seed media sub-type generation; the first entries reproduce
// the sub-types quoted in the paper.
var subTypeStems = []string{
	"mp4", "plain", "wav", "html", "css", "javascript", "json", "xml",
	"png", "jpeg", "gif", "webp", "svg", "bmp", "ico", "tiff",
	"mpeg", "webm", "ogg", "avi", "quicktime", "flv", "3gpp",
	"mp3", "aac", "flac", "midi", "opus",
	"pdf", "zip", "gzip", "octet-stream", "x-tar", "msword", "x-rar",
	"vnd-excel", "vnd-powerpoint", "x-shockwave-flash", "x-font-ttf",
	"woff", "woff2", "rfc822", "http", "gltf", "obj", "stl", "x-3ds",
}

var seedAppTypes = []string{
	"Rhapsody", "CloudFlare", "Speedyshare", "YouTube", "Netflix",
	"Spotify", "Dropbox", "Slack", "Skype", "Office365", "GoogleDocs",
	"Salesforce", "GitHub", "Jira", "Confluence", "Zoom", "WebEx",
	"Twitter", "Facebook", "LinkedIn", "Instagram", "WhatsAppWeb",
	"Telegram", "OneDrive", "Box", "AmazonAWS", "Akamai", "Fastly",
	"Steam", "EpicGames", "Twitch", "Reddit", "Pinterest", "Ebay",
	"Amazon", "PayPal", "Stripe", "Shopify", "Wordpress", "Drupal",
	"Joomla", "Magento", "Zendesk", "Intercom", "Mailchimp", "HubSpot",
	"Tableau", "PowerBI", "Datadog", "NewRelic",
}

var appQualifiers = []string{
	"CDN", "API", "Sync", "Mobile", "Beta", "Enterprise", "Analytics",
	"Auth", "Mail", "Chat", "Media", "Upload",
}

// generateCategories returns n unique website category labels.
func generateCategories(n int) []string {
	return expand(seedCategories, categoryQualifiers, n, func(base, qual string) string {
		return qual + base
	})
}

// generateSuperTypes returns the 8 media super-types.
func generateSuperTypes() []string {
	out := make([]string, len(seedSuperTypes))
	copy(out, seedSuperTypes)
	return out
}

// generateSubTypeNames returns n unique media sub-type labels.
func generateSubTypeNames(n int) []string {
	return expand(subTypeStems, nil, n, nil)
}

// generateSubToSuper deterministically assigns each generated sub-type to a
// super-type. The paper-quoted pairs are pinned so that "video/mp4",
// "text/plain", "audio/wav" and "text/html" hold in the default taxonomy.
func generateSubToSuper(n int) map[string]string {
	pinned := map[string]string{
		"mp4": "video", "plain": "text", "wav": "audio", "html": "text",
		"css": "text", "javascript": "application", "json": "application",
		"xml": "text", "png": "image", "jpeg": "image", "gif": "image",
		"webp": "image", "svg": "image", "bmp": "image", "ico": "image",
		"tiff": "image", "mpeg": "video", "webm": "video", "ogg": "audio",
		"avi": "video", "quicktime": "video", "flv": "video",
		"3gpp": "video", "mp3": "audio", "aac": "audio", "flac": "audio",
		"midi": "audio", "opus": "audio", "pdf": "application",
		"zip": "application", "gzip": "application",
		"octet-stream": "application", "x-tar": "application",
		"msword": "application", "x-rar": "application",
		"vnd-excel": "application", "vnd-powerpoint": "application",
		"x-shockwave-flash": "application", "x-font-ttf": "font",
		"woff": "font", "woff2": "font", "rfc822": "message",
		"http": "message", "gltf": "model", "obj": "model", "stl": "model",
		"x-3ds": "model",
	}
	out := make(map[string]string, n)
	for i, sub := range generateSubTypeNames(n) {
		if super, ok := pinned[sub]; ok {
			out[sub] = super
			continue
		}
		out[sub] = seedSuperTypes[i%len(seedSuperTypes)]
	}
	return out
}

// generateAppTypes returns n unique application-type labels.
func generateAppTypes(n int) []string {
	return expand(seedAppTypes, appQualifiers, n, func(base, qual string) string {
		return base + qual
	})
}

// expand grows a seed list to exactly n unique labels. Labels beyond the
// seeds are formed by combining seeds with qualifiers via join; once those
// combinations are exhausted a numeric suffix guarantees uniqueness.
func expand(seeds, qualifiers []string, n int, join func(base, qual string) string) []string {
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	add := func(s string) bool {
		if len(out) >= n {
			return false
		}
		if _, dup := seen[s]; dup {
			return true
		}
		seen[s] = struct{}{}
		out = append(out, s)
		return len(out) < n
	}
	for _, s := range seeds {
		if !add(s) {
			return out
		}
	}
	for _, q := range qualifiers {
		for _, s := range seeds {
			if !add(join(s, q)) {
				return out
			}
		}
	}
	for i := 0; len(out) < n; i++ {
		add(fmt.Sprintf("%s-%d", seeds[i%len(seeds)], i/len(seeds)+2))
	}
	return out
}
