package taxonomy

import (
	"fmt"
	"strings"
)

// MediaType is a MIME-style media type split into its super-type and
// sub-type, as the feature extraction in Sect. III-B requires
// ("video/mp4 -> super-type:video, sub-type:mp4").
type MediaType struct {
	Super string
	Sub   string
}

// String renders the media type in "super/sub" form.
func (m MediaType) String() string {
	return m.Super + "/" + m.Sub
}

// IsZero reports whether the media type is empty (transaction without a
// response body, e.g. a CONNECT tunnel).
func (m MediaType) IsZero() bool {
	return m.Super == "" && m.Sub == ""
}

// ParseMediaType splits a "super/sub" string into a MediaType. The empty
// string parses to the zero MediaType.
func ParseMediaType(s string) (MediaType, error) {
	if s == "" {
		return MediaType{}, nil
	}
	super, sub, ok := strings.Cut(s, "/")
	if !ok || super == "" || sub == "" {
		return MediaType{}, fmt.Errorf("taxonomy: malformed media type %q", s)
	}
	return MediaType{Super: super, Sub: sub}, nil
}
