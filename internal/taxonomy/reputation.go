package taxonomy

import "fmt"

// Reputation is the URL reputation reported by the logging service
// (Sect. III-A of the paper): Minimal, Medium or High risk when verified,
// or Unverified.
type Reputation int

// Reputation levels. Unverified is deliberately the zero value so that an
// absent reputation field decodes safely.
const (
	Unverified Reputation = iota
	MinimalRisk
	MediumRisk
	HighRisk
)

// Reputations lists all reputation levels in canonical order.
var Reputations = []Reputation{Unverified, MinimalRisk, MediumRisk, HighRisk}

// reputationNames are the on-disk tokens used in log files.
var reputationNames = map[Reputation]string{
	Unverified:  "unverified",
	MinimalRisk: "minimal-risk",
	MediumRisk:  "medium-risk",
	HighRisk:    "high-risk",
}

// String returns the log-file token for r.
func (r Reputation) String() string {
	if s, ok := reputationNames[r]; ok {
		return s
	}
	return fmt.Sprintf("reputation(%d)", int(r))
}

// Verified reports whether the logging service verified the URL's
// reputation. Sect. III-B maps this to the first reputation feature.
func (r Reputation) Verified() bool {
	return r != Unverified
}

// Risk returns the numeric risk feature from Sect. III-B:
// Minimal = 0, Medium = 0.5, High = 1; Unverified defaults to Minimal = 0.
func (r Reputation) Risk() float64 {
	switch r {
	case MediumRisk:
		return 0.5
	case HighRisk:
		return 1
	default:
		return 0
	}
}

// Valid reports whether r is one of the defined reputation levels.
func (r Reputation) Valid() bool {
	_, ok := reputationNames[r]
	return ok
}

// ParseReputation converts a log-file token back into a Reputation.
func ParseReputation(s string) (Reputation, error) {
	for r, name := range reputationNames {
		if s == name {
			return r, nil
		}
	}
	return Unverified, fmt.Errorf("taxonomy: unknown reputation %q", s)
}
