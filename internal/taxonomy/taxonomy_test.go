package taxonomy

import (
	"reflect"
	"testing"
)

func TestDefaultCardinalities(t *testing.T) {
	tax := Default()
	if got := len(tax.Categories); got != NumCategories {
		t.Errorf("categories: got %d, want %d", got, NumCategories)
	}
	if got := len(tax.SuperTypes); got != NumSuperTypes {
		t.Errorf("super-types: got %d, want %d", got, NumSuperTypes)
	}
	if got := len(tax.SubTypes); got != NumSubTypes {
		t.Errorf("sub-types: got %d, want %d", got, NumSubTypes)
	}
	if got := len(tax.AppTypes); got != NumAppTypes {
		t.Errorf("application types: got %d, want %d", got, NumAppTypes)
	}
}

func TestDefaultDeterministic(t *testing.T) {
	a, b := Default(), Default()
	if !reflect.DeepEqual(a.Categories, b.Categories) {
		t.Error("categories differ between calls")
	}
	if !reflect.DeepEqual(a.SubTypes, b.SubTypes) {
		t.Error("sub-types differ between calls")
	}
	if !reflect.DeepEqual(a.AppTypes, b.AppTypes) {
		t.Error("application types differ between calls")
	}
	if !reflect.DeepEqual(a.SubToSuper, b.SubToSuper) {
		t.Error("sub-to-super mapping differs between calls")
	}
}

func TestDefaultContainsPaperLabels(t *testing.T) {
	tax := Default()
	for _, c := range []string{"Games", "Restaurants", "Phishing", "Messaging"} {
		if !tax.HasCategory(c) {
			t.Errorf("missing paper category %q", c)
		}
	}
	for _, a := range []string{"Rhapsody", "CloudFlare", "Speedyshare"} {
		if !tax.HasAppType(a) {
			t.Errorf("missing paper application type %q", a)
		}
	}
	// Paper-quoted media types must resolve with the right super-type.
	for sub, super := range map[string]string{
		"mp4": "video", "plain": "text", "wav": "audio", "html": "text",
	} {
		if got := tax.SubToSuper[sub]; got != super {
			t.Errorf("SubToSuper[%q] = %q, want %q", sub, got, super)
		}
	}
}

func TestSubToSuperComplete(t *testing.T) {
	tax := Default()
	for _, sub := range tax.SubTypes {
		super, ok := tax.SubToSuper[sub]
		if !ok {
			t.Fatalf("sub-type %q has no super-type", sub)
		}
		if !tax.HasSuperType(super) {
			t.Fatalf("sub-type %q maps to unknown super-type %q", sub, super)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name       string
		categories []string
		subs       []string
		subToSuper map[string]string
	}{
		{"duplicate category", []string{"A", "A"}, []string{"x"}, map[string]string{"x": "text"}},
		{"empty category", []string{""}, []string{"x"}, map[string]string{"x": "text"}},
		{"unmapped sub-type", []string{"A"}, []string{"x"}, nil},
		{"unknown super-type", []string{"A"}, []string{"x"}, map[string]string{"x": "nosuch"}},
		{"mapping for unknown sub", []string{"A"}, []string{"x"}, map[string]string{"x": "text", "y": "text"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.categories, []string{"text"}, tc.subs, []string{"App"}, tc.subToSuper)
			if err == nil {
				t.Fatal("expected validation error, got nil")
			}
		})
	}
}

func TestMediaTypesOf(t *testing.T) {
	tax := Default()
	videos := tax.MediaTypesOf("video")
	if len(videos) == 0 {
		t.Fatal("no video media types")
	}
	found := false
	for _, m := range videos {
		if m == "video/mp4" {
			found = true
		}
	}
	if !found {
		t.Error("video/mp4 not listed under super-type video")
	}
}

func TestExpandUniqueAndSized(t *testing.T) {
	for _, n := range []int{1, 10, 50, 105, 257, 464, 1000} {
		got := expand(seedCategories, categoryQualifiers, n, func(b, q string) string { return q + b })
		if len(got) != n {
			t.Fatalf("expand(n=%d): got %d labels", n, len(got))
		}
		seen := make(map[string]struct{}, n)
		for _, s := range got {
			if _, dup := seen[s]; dup {
				t.Fatalf("expand(n=%d): duplicate label %q", n, s)
			}
			seen[s] = struct{}{}
		}
	}
}

func TestReputation(t *testing.T) {
	cases := []struct {
		r        Reputation
		verified bool
		risk     float64
		token    string
	}{
		{Unverified, false, 0, "unverified"},
		{MinimalRisk, true, 0, "minimal-risk"},
		{MediumRisk, true, 0.5, "medium-risk"},
		{HighRisk, true, 1, "high-risk"},
	}
	for _, c := range cases {
		if c.r.Verified() != c.verified {
			t.Errorf("%v.Verified() = %v", c.r, c.r.Verified())
		}
		if c.r.Risk() != c.risk {
			t.Errorf("%v.Risk() = %v, want %v", c.r, c.r.Risk(), c.risk)
		}
		if c.r.String() != c.token {
			t.Errorf("%v.String() = %q, want %q", c.r, c.r.String(), c.token)
		}
		back, err := ParseReputation(c.token)
		if err != nil || back != c.r {
			t.Errorf("ParseReputation(%q) = %v, %v", c.token, back, err)
		}
		if !c.r.Valid() {
			t.Errorf("%v.Valid() = false", c.r)
		}
	}
	if _, err := ParseReputation("bogus"); err == nil {
		t.Error("ParseReputation(bogus) succeeded")
	}
	if Reputation(99).Valid() {
		t.Error("Reputation(99).Valid() = true")
	}
}

func TestMediaTypeParse(t *testing.T) {
	m, err := ParseMediaType("video/mp4")
	if err != nil {
		t.Fatalf("ParseMediaType: %v", err)
	}
	if m.Super != "video" || m.Sub != "mp4" {
		t.Errorf("got %+v", m)
	}
	if m.String() != "video/mp4" {
		t.Errorf("String() = %q", m.String())
	}
	if m.IsZero() {
		t.Error("IsZero() = true for video/mp4")
	}
	z, err := ParseMediaType("")
	if err != nil || !z.IsZero() {
		t.Errorf("empty media type: %+v, %v", z, err)
	}
	for _, bad := range []string{"video", "/mp4", "video/"} {
		if _, err := ParseMediaType(bad); err == nil {
			t.Errorf("ParseMediaType(%q) succeeded", bad)
		}
	}
}
