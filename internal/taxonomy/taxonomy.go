// Package taxonomy models the proprietary service-knowledge base that the
// paper's secure web proxy uses to augment transaction logs: website
// categories, application types, media types and URL reputation levels.
//
// The paper's vendor taxonomy is proprietary; this package synthesizes a
// deterministic stand-in with exactly the cardinalities reported in Table I
// of the paper (105 categories, 8 media super-types, 257 media sub-types,
// 464 application types). Label strings are opaque to the downstream
// classifiers, so only these cardinalities — and which labels co-occur —
// matter for reproduction.
package taxonomy

import (
	"fmt"
	"sort"
)

// Cardinalities of the label pools, matching Table I of the paper.
const (
	NumCategories = 105
	NumSuperTypes = 8
	NumSubTypes   = 257
	NumAppTypes   = 464
)

// HTTP actions observed in web transaction logs (Sect. III-A).
const (
	ActionGet     = "GET"
	ActionPost    = "POST"
	ActionConnect = "CONNECT"
	ActionHead    = "HEAD"
)

// Actions lists all HTTP actions in canonical order.
var Actions = []string{ActionGet, ActionPost, ActionConnect, ActionHead}

// URI schemes observed in web transaction logs (Sect. III-A).
const (
	SchemeHTTP  = "HTTP"
	SchemeHTTPS = "HTTPS"
)

// Schemes lists both URI schemes in canonical order.
var Schemes = []string{SchemeHTTP, SchemeHTTPS}

// Taxonomy is a complete label universe for the log-augmentation service.
// All slices are sorted and free of duplicates; membership queries use the
// accompanying lookup sets.
type Taxonomy struct {
	Categories []string
	SuperTypes []string
	SubTypes   []string
	AppTypes   []string

	// SubToSuper maps every media sub-type to its super-type, e.g.
	// "mp4" -> "video".
	SubToSuper map[string]string

	categorySet map[string]struct{}
	superSet    map[string]struct{}
	subSet      map[string]struct{}
	appSet      map[string]struct{}
}

// New builds a taxonomy from explicit label pools. It validates that the
// pools are duplicate-free and that every sub-type maps to a known
// super-type.
func New(categories, superTypes, subTypes, appTypes []string, subToSuper map[string]string) (*Taxonomy, error) {
	t := &Taxonomy{
		Categories: sortedCopy(categories),
		SuperTypes: sortedCopy(superTypes),
		SubTypes:   sortedCopy(subTypes),
		AppTypes:   sortedCopy(appTypes),
		SubToSuper: make(map[string]string, len(subToSuper)),
	}
	var err error
	if t.categorySet, err = toSet("category", t.Categories); err != nil {
		return nil, err
	}
	if t.superSet, err = toSet("super-type", t.SuperTypes); err != nil {
		return nil, err
	}
	if t.subSet, err = toSet("sub-type", t.SubTypes); err != nil {
		return nil, err
	}
	if t.appSet, err = toSet("application-type", t.AppTypes); err != nil {
		return nil, err
	}
	for sub, super := range subToSuper {
		if _, ok := t.subSet[sub]; !ok {
			return nil, fmt.Errorf("taxonomy: sub-type mapping references unknown sub-type %q", sub)
		}
		if _, ok := t.superSet[super]; !ok {
			return nil, fmt.Errorf("taxonomy: sub-type %q maps to unknown super-type %q", sub, super)
		}
		t.SubToSuper[sub] = super
	}
	for _, sub := range t.SubTypes {
		if _, ok := t.SubToSuper[sub]; !ok {
			return nil, fmt.Errorf("taxonomy: sub-type %q has no super-type mapping", sub)
		}
	}
	return t, nil
}

// Default returns the standard synthetic taxonomy with the paper's Table I
// cardinalities. The result is deterministic: repeated calls return
// identical label pools.
func Default() *Taxonomy {
	t, err := New(
		generateCategories(NumCategories),
		generateSuperTypes(),
		generateSubTypeNames(NumSubTypes),
		generateAppTypes(NumAppTypes),
		generateSubToSuper(NumSubTypes),
	)
	if err != nil {
		// The generators are deterministic and tested; a failure here is a
		// programming error, not an input error.
		panic("taxonomy: default taxonomy invalid: " + err.Error())
	}
	return t
}

// HasCategory reports whether c is a known website category.
func (t *Taxonomy) HasCategory(c string) bool {
	_, ok := t.categorySet[c]
	return ok
}

// HasSuperType reports whether s is a known media super-type.
func (t *Taxonomy) HasSuperType(s string) bool {
	_, ok := t.superSet[s]
	return ok
}

// HasSubType reports whether s is a known media sub-type.
func (t *Taxonomy) HasSubType(s string) bool {
	_, ok := t.subSet[s]
	return ok
}

// HasAppType reports whether a is a known application type.
func (t *Taxonomy) HasAppType(a string) bool {
	_, ok := t.appSet[a]
	return ok
}

// MediaTypesOf returns, in deterministic order, the full media type strings
// ("super/sub") whose super-type is super.
func (t *Taxonomy) MediaTypesOf(super string) []string {
	var out []string
	for _, sub := range t.SubTypes {
		if t.SubToSuper[sub] == super {
			out = append(out, super+"/"+sub)
		}
	}
	return out
}

func sortedCopy(in []string) []string {
	out := make([]string, len(in))
	copy(out, in)
	sort.Strings(out)
	return out
}

func toSet(kind string, in []string) (map[string]struct{}, error) {
	set := make(map[string]struct{}, len(in))
	for _, v := range in {
		if v == "" {
			return nil, fmt.Errorf("taxonomy: empty %s label", kind)
		}
		if _, dup := set[v]; dup {
			return nil, fmt.Errorf("taxonomy: duplicate %s label %q", kind, v)
		}
		set[v] = struct{}{}
	}
	return set, nil
}
