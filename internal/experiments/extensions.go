package experiments

import (
	"fmt"
	"time"

	"webtxprofile/internal/autoenc"
	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/stats"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
)

// oneClass is the shared surface of svm.Model and autoenc.Model the
// extension experiments need.
type oneClass interface {
	AcceptanceRatio(xs []sparse.Vector) float64
}

// ExtensionAlgorithms compares the paper's two classifiers against the
// one-class autoencoder named in its future work (Sect. VII: "We plan to
// test other one-class classification algorithms e.g. auto encoders"),
// all with fixed parameters at the retained window configuration.
func ExtensionAlgorithms(e *Env) (*Table, error) {
	trainWs, err := e.TrainWindows()
	if err != nil {
		return nil, err
	}
	testWs, err := e.TestWindows()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext_algorithms",
		Title:  "Extension: one-class algorithm families (fixed parameters, D=60s S=30s)",
		Header: []string{"algorithm", "ACCself", "ACCother", "ACC", "train time/user (ms)"},
	}
	families := []struct {
		name  string
		train func(xs []sparse.Vector) (oneClass, error)
	}{
		{"oc-svm (linear, nu=0.1)", func(xs []sparse.Vector) (oneClass, error) {
			return svm.TrainOCSVM(xs, 0.1, svm.TrainConfig{Kernel: svm.Linear(), CacheMB: 32})
		}},
		{"svdd (linear, C=0.5)", func(xs []sparse.Vector) (oneClass, error) {
			return svm.TrainSVDD(xs, 0.5, svm.TrainConfig{Kernel: svm.Linear(), CacheMB: 32})
		}},
		{"autoencoder (h=48, nu=0.1)", func(xs []sparse.Vector) (oneClass, error) {
			return autoenc.Train(xs, e.Vocab.Size(), autoenc.Config{Seed: 1, Epochs: 40, Hidden: 48})
		}},
	}
	for _, fam := range families {
		var selfSum, otherSum float64
		var trainTime time.Duration
		for _, u := range e.Users {
			xs := features.Vectors(capWindows(trainWs[u], e.Scale.GridTrainCap))
			start := time.Now()
			m, err := fam.train(xs)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s for %s: %w", fam.name, u, err)
			}
			trainTime += time.Since(start)
			selfSum += m.AcceptanceRatio(features.Vectors(capWindows(testWs[u], e.Scale.EvalCap)))
			var sum float64
			n := 0
			for _, o := range e.Users {
				if o == u {
					continue
				}
				sum += m.AcceptanceRatio(features.Vectors(capWindows(testWs[o], e.Scale.EvalCap)))
				n++
			}
			otherSum += sum / float64(n)
		}
		nu := float64(len(e.Users))
		t.Rows = append(t.Rows, []string{
			fam.name,
			pct(selfSum / nu), pct(otherSum / nu), pct((selfSum - otherSum) / nu),
			fmt.Sprintf("%.1f", float64(trainTime.Milliseconds())/nu),
		})
	}
	t.Notes = append(t.Notes,
		"the autoencoder row answers the paper's future-work question: comparable separation is achievable, at a different train-time/accuracy trade-off")
	return t, nil
}

// ExtensionTrainingEpoch sweeps the training-epoch length — the paper's
// "seasonal behaviors" future work (Sect. VII: train on only a week or a
// month of data). For each epoch length the models train on the most
// recent weeks of the training split only, then evaluate on the usual test
// split.
func ExtensionTrainingEpoch(e *Env) (*Table, error) {
	testWs, err := e.TestWindows()
	if err != nil {
		return nil, err
	}
	_, trainEnd, ok := e.Train.TimeSpan()
	if !ok {
		return nil, fmt.Errorf("experiments: empty training set")
	}
	t := &Table{
		ID:     "ext_epoch",
		Title:  "Extension: training-epoch length (OC-SVM, linear, nu=0.1, D=60s S=30s)",
		Header: []string{"training epoch", "ACCself", "ACCother", "ACC"},
	}
	epochs := []struct {
		name  string
		weeks int // 0 = full training split
	}{
		{"last 1 week", 1},
		{"last 2 weeks", 2},
		{"last 4 weeks", 4},
		{"full training split", 0},
	}
	for _, ep := range epochs {
		train := e.Train
		if ep.weeks > 0 {
			cut := trainEnd.Add(-time.Duration(ep.weeks) * 7 * 24 * time.Hour)
			_, train = e.Train.SplitAtTime(cut)
		}
		if train.Len() == 0 {
			t.Rows = append(t.Rows, []string{ep.name, "-", "-", "-"})
			continue
		}
		trainWs, err := features.ComposeUsers(e.Vocab, RetainedWindow(), train)
		if err != nil {
			return nil, err
		}
		acc, err := meanAcceptance(e, trainWs, testWs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{ep.name, pct(acc.Self), pct(acc.Other), pct(acc.ACC())})
	}
	t.Notes = append(t.Notes,
		"the paper conjectures short epochs could model seasonal behaviour; the sweep quantifies the accuracy cost of shorter observation")
	return t, nil
}

// ExtensionROC sweeps each OC-SVM model's acceptance threshold on the
// test windows and reports the per-user AUC — how much head-room the
// fixed-threshold operating point of the paper leaves.
func ExtensionROC(e *Env) (*Table, error) {
	models, err := e.Models(svm.OCSVM)
	if err != nil {
		return nil, err
	}
	testWs, err := e.TestWindows()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext_roc",
		Title:  "Extension: per-user ROC AUC (OC-SVM, optimized parameters, test windows)",
		Header: []string{"user", "AUC", "TPR@trained threshold", "FPR@trained threshold"},
	}
	var aucSum float64
	for _, u := range e.Users {
		self := features.Vectors(capWindows(testWs[u], e.Scale.EvalCap))
		var others []sparse.Vector
		for _, o := range e.Users {
			if o == u {
				continue
			}
			others = append(others, features.Vectors(capWindows(testWs[o], e.Scale.GridOtherCap))...)
		}
		auc, err := eval.AUC(models[u], self, others)
		if err != nil {
			return nil, fmt.Errorf("experiments: AUC for %s: %w", u, err)
		}
		aucSum += auc
		tpr := models[u].AcceptanceRatio(self)
		fpr := models[u].AcceptanceRatio(others)
		t.Rows = append(t.Rows, []string{u, fmt.Sprintf("%.3f", auc), pct(tpr), pct(fpr)})
	}
	t.Rows = append(t.Rows, []string{"mean", fmt.Sprintf("%.3f", aucSum/float64(len(e.Users))), "", ""})
	t.Notes = append(t.Notes,
		"AUC near 1 means the decision values separate users even where the fixed threshold misclassifies — threshold tuning head-room")
	return t, nil
}

// ExtensionIdentificationLatency quantifies the abstract's "<5 minutes"
// identification claim: for each profiled user, their test windows stream
// through the consecutive-k rule against all models, measuring when
// identification first fires and whether it names the right user.
func ExtensionIdentificationLatency(e *Env) (*Table, error) {
	models, err := e.Models(svm.OCSVM)
	if err != nil {
		return nil, err
	}
	testWs, err := e.TestWindows()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ext_latency",
		Title:  "Extension: time to identification (OC-SVM, consecutive-k rule on test windows)",
		Header: []string{"k", "identified", "correct", "median windows", "median active time"},
	}
	shift := RetainedWindow().Shift
	duration := RetainedWindow().Duration
	for _, k := range []int{1, 3, 5, 10} {
		identified, correct := 0, 0
		var windowCounts []float64
		for _, u := range e.Users {
			tl := eval.Timeline(models, capWindows(testWs[u], e.Scale.EvalCap))
			who, idx, ok := eval.IdentifyConsecutive(tl, k)
			if !ok {
				continue
			}
			identified++
			if who == u {
				correct++
			}
			windowCounts = append(windowCounts, float64(idx+1))
		}
		medianWindows := stats.Quantile(windowCounts, 0.5)
		activeTime := duration + time.Duration(medianWindows-1)*shift
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%d/%d", identified, len(e.Users)),
			fmt.Sprintf("%d/%d", correct, len(e.Users)),
			fmt.Sprintf("%.0f", medianWindows),
			activeTime.String(),
		})
	}
	t.Notes = append(t.Notes,
		"paper abstract: accurate (90%) and quick (<5 minutes) identification; k=10 consecutive 30s-shifted windows ≈ the 5-minute rule discussed in Sect. V-B")
	return t, nil
}

// ExtensionDrift demonstrates the profile-refresh workflow on behavioural
// drift: a user switches half their service pool mid-corpus; the model
// trained pre-drift degrades on the new behaviour, and a Refresher-style
// retrain on recently observed windows (with the vocabulary extended to
// the newly seen services) recovers acceptance.
func ExtensionDrift(e *Env) (*Table, error) {
	cfg := e.Scale.Synth
	cfg.DriftWeek = cfg.Weeks / 2
	if cfg.DriftWeek < 1 {
		cfg.DriftWeek = 1
	}
	cfg.DriftUsers = min(3, cfg.Users-cfg.SmallUsers)
	gen, err := synth.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	ds := gen.Generate()
	cut := cfg.Start.Add(time.Duration(cfg.DriftWeek) * 7 * 24 * time.Hour)
	pre, post := ds.SplitAtTime(cut)
	vocab := features.BuildFromDataset(pre)

	t := &Table{
		ID:     "ext_drift",
		Title:  "Extension: behavioural drift and profile refresh (OC-SVM, linear, nu=0.1)",
		Header: []string{"user", "pre-drift self", "stale on post-drift", "refreshed on post-drift"},
	}
	for i := 0; i < cfg.DriftUsers; i++ {
		u := fmt.Sprintf("user_%d", i+1)
		preWs, err := features.Compose(vocab, RetainedWindow(), pre.UserTransactions(u), u)
		if err != nil {
			return nil, err
		}
		preWs = capWindows(preWs, e.Scale.FinalTrainCap)
		if len(preWs) < 20 {
			continue
		}
		stale, err := svm.TrainOCSVM(features.Vectors(preWs), 0.1,
			svm.TrainConfig{Kernel: svm.Linear(), CacheMB: 32})
		if err != nil {
			return nil, err
		}
		// Extend the vocabulary with the post-drift observations, then
		// window the post-drift epoch: first half adapts, second half
		// evaluates.
		extVocab := vocab.Extend(post.UserTransactions(u))
		postWs, err := features.Compose(extVocab, RetainedWindow(), post.UserTransactions(u), u)
		if err != nil {
			return nil, err
		}
		if len(postWs) < 40 {
			continue
		}
		half := len(postWs) / 2
		adapt := capWindows(postWs[:half], e.Scale.FinalTrainCap)
		holdout := capWindows(postWs[half:], e.Scale.EvalCap)
		fresh, err := svm.TrainOCSVM(features.Vectors(adapt), 0.1,
			svm.TrainConfig{Kernel: svm.Linear(), CacheMB: 32})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			u,
			pct(stale.AcceptanceRatio(features.Vectors(preWs))),
			pct(stale.AcceptanceRatio(features.Vectors(holdout))),
			pct(fresh.AcceptanceRatio(features.Vectors(holdout))),
		})
	}
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("experiments: no drifted user had enough windows")
	}
	t.Notes = append(t.Notes,
		"expected shape: stale acceptance collapses after the drift; refreshing on recent windows (plus vocabulary extension) restores it")
	return t, nil
}
