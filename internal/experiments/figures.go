package experiments

import (
	"fmt"
	"time"

	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/stats"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
	"webtxprofile/internal/weblog"
)

// Figure1 reproduces Fig. 1: the novelty ratio (mean and variance across
// users) over observation weeks for the three largest feature categories.
func Figure1(e *Env) (*Table, error) {
	fields := []struct {
		name string
		sel  eval.FieldSelector
	}{
		{"category", eval.SelectCategory},
		{"application_type", eval.SelectAppType},
		{"media_type", eval.SelectMediaSubType},
	}
	t := &Table{
		ID:     "fig1",
		Title:  "Novelty ratio per feature category over observation weeks (mean ± variance across users)",
		Header: []string{"week"},
	}
	for _, f := range fields {
		t.Header = append(t.Header, f.name+" mean", f.name+" var")
	}
	cols := make([][]eval.NoveltyPoint, len(fields))
	for i, f := range fields {
		pts, err := eval.FieldNovelty(e.Full, e.Users, e.Scale.NoveltyWeeks, e.Scale.Synth.Start, f.sel)
		if err != nil {
			return nil, err
		}
		cols[i] = pts
	}
	for wi, w := range e.Scale.NoveltyWeeks {
		row := []string{fmt.Sprint(w)}
		for i := range fields {
			row = append(row,
				fmt.Sprintf("%.3f", cols[i][wi].Mean),
				fmt.Sprintf("%.4f", cols[i][wi].Variance))
		}
		t.Rows = append(t.Rows, row)
	}
	// The paper's per-user coverage counts accompany this figure
	// (Sect. IV-B).
	var catCov, subCov, appCov float64
	for _, u := range e.Users {
		txs := e.Full.UserTransactions(u)
		catCov += float64(eval.CoverageCount(txs, eval.SelectCategory))
		subCov += float64(eval.CoverageCount(txs, eval.SelectMediaSubType))
		appCov += float64(eval.CoverageCount(txs, eval.SelectAppType))
	}
	n := float64(len(e.Users))
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean per-user coverage: %.2f categories, %.2f sub-types, %.2f application types (paper: 17.84, 17.12, 19.08)",
			catCov/n, subCov/n, appCov/n),
		"paper shape: ~25%% media-type novelty after week 1, <10%% for categories/apps, all falling to ~5%%")
	return t, nil
}

// Figure2 reproduces Fig. 2: the novelty ratio of transaction windows
// (strict vector equality) over observation weeks.
func Figure2(e *Env) (*Table, error) {
	pts, err := eval.WindowNovelty(e.Full, e.Users, e.Scale.NoveltyWeeks,
		e.Scale.Synth.Start, e.Vocab, RetainedWindow())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Novelty ratio of transaction windows over observation weeks (D=60s, S=30s)",
		Header: []string{"week", "mean", "variance"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Week), fmt.Sprintf("%.3f", p.Mean), fmt.Sprintf("%.4f", p.Variance),
		})
	}
	t.Notes = append(t.Notes, "paper shape: ~25%% window novelty after one week of observation, declining with the epoch")
	return t, nil
}

// Figure3 reproduces Fig. 3: three users take turns on one device for 100
// minutes; every OC-SVM model classifies each 1-minute window. Rows are
// models that accepted at least one window; the timeline marks accepted
// windows and the actual user.
func Figure3(e *Env) (*Table, error) {
	models, err := e.Models(svm.OCSVM)
	if err != nil {
		return nil, err
	}
	if len(e.Users) < 3 {
		return nil, fmt.Errorf("experiments: need >= 3 users for fig3")
	}
	// Mirror the paper's cast: a confusable-cluster user first, then two
	// users from elsewhere in the population.
	cast := []string{e.Users[0], e.Users[len(e.Users)/2], e.Users[len(e.Users)-1]}
	const device = "10.99.0.1"
	scenarioStart := e.Scale.Synth.Start.Add(time.Duration(e.Scale.Synth.Weeks)*7*24*time.Hour + 9*time.Hour)
	scenario, err := e.Gen.GenerateDeviceScenario(device, scenarioStart, []synth.Segment{
		{UserID: cast[0], Offset: 0, Length: 40 * time.Minute},
		{UserID: cast[1], Offset: 40 * time.Minute, Length: 30 * time.Minute},
		{UserID: cast[2], Offset: 70 * time.Minute, Length: 30 * time.Minute},
	})
	if err != nil {
		return nil, err
	}
	windows, err := features.Compose(e.Vocab, RetainedWindow(), scenario.Transactions, device)
	if err != nil {
		return nil, err
	}
	tl := eval.Timeline(models, windows)
	st := eval.Summarize(tl, e.Users)

	t := &Table{
		ID:     "fig3",
		Title:  "User identification on one device over 100 minutes (rows: models accepting >= 1 window; '#' accepted, '.' not; header row: actual user index)",
		Header: []string{"model", "timeline (1 column per window)"},
	}
	actual := make([]byte, len(tl))
	for i, pt := range tl {
		idx := '?'
		for ci, u := range cast {
			if pt.ActualUser == u {
				idx = rune('1' + ci)
			}
		}
		actual[i] = byte(idx)
	}
	t.Rows = append(t.Rows, []string{"actual", string(actual)})
	for _, u := range e.Users {
		line := make([]byte, len(tl))
		any := false
		for i, pt := range tl {
			line[i] = '.'
			for _, a := range pt.Accepted {
				if a == u {
					line[i] = '#'
					any = true
				}
			}
		}
		if any {
			t.Rows = append(t.Rows, []string{u, string(line)})
		}
	}
	id1, _, ok := eval.IdentifyConsecutive(tl, 5)
	t.Notes = append(t.Notes,
		fmt.Sprintf("cast: %s (0-40min), %s (40-70min), %s (70-100min)", cast[0], cast[1], cast[2]),
		fmt.Sprintf("windows: %d, true-user acceptance %d/%d, exclusive-correct %d, mean accepting models/window %.2f",
			st.Windows, st.ActualAccepted, st.Windows, st.ExclusiveCorrect, st.MeanAccepting),
		fmt.Sprintf("consecutive-5 identification: %q (ok=%v); paper: 7 of 25 models accepted windows, true user holds the longest runs", id1, ok))
	return t, nil
}

// Figure4 reproduces Fig. 4: the distribution of single-window prediction
// time for OC-SVM vs SVDD (box-and-whiskers five-number summaries).
func Figure4(e *Env) (*Table, error) {
	testWs, err := e.TestWindows()
	if err != nil {
		return nil, err
	}
	// Probe windows: a mix across users.
	var probes []sparse.Vector
	for _, u := range e.Users {
		ws := testWs[u]
		if len(ws) > 40 {
			ws = ws[:40]
		}
		probes = append(probes, features.Vectors(ws)...)
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("experiments: no probe windows")
	}
	t := &Table{
		ID:     "fig4",
		Title:  "Prediction time per window (µs)",
		Header: []string{"algorithm", "min", "q1", "median", "q3", "max", "SVs(median model)"},
	}
	for _, algo := range []svm.Algorithm{svm.OCSVM, svm.SVDD} {
		models, err := e.Models(algo)
		if err != nil {
			return nil, err
		}
		m := models[e.Users[len(e.Users)/2]]
		samples := make([]float64, 0, len(probes))
		for _, x := range probes {
			start := time.Now()
			_ = m.Decision(x)
			samples = append(samples, float64(time.Since(start).Nanoseconds())/1e3)
		}
		five, err := stats.Summarize(samples)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			algo.String(),
			fmt.Sprintf("%.2f", five.Min), fmt.Sprintf("%.2f", five.Q1),
			fmt.Sprintf("%.2f", five.Median), fmt.Sprintf("%.2f", five.Q3),
			fmt.Sprintf("%.2f", five.Max), fmt.Sprint(m.NumSVs()),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: both algorithms decide in < 100µs; SVDD decides faster than OC-SVM (simpler surface, fewer support vectors at the optimized parameters)")
	return t, nil
}

// Figure5 reproduces Fig. 5: feature extraction + window composition time
// as a function of the transaction count in a 1-minute window, with a
// linear fit. The paper sweeps from the observed median (54) to the
// maximum (6,048).
func Figure5(e *Env) (*Table, error) {
	countsToTest := []int{54, 250, 500, 1000, 2000, 4000, 6048}
	// Build a dense 1-minute burst per count from one user's scenario
	// traffic.
	u := e.Users[0]
	const device = "10.99.0.2"
	base := e.Scale.Synth.Start.Add(time.Duration(e.Scale.Synth.Weeks) * 7 * 24 * time.Hour)
	scenario, err := e.Gen.GenerateDeviceScenario(device, base, []synth.Segment{
		{UserID: u, Offset: 0, Length: 10 * time.Minute},
	})
	if err != nil {
		return nil, err
	}
	pool := scenario.Transactions
	if len(pool) == 0 {
		return nil, fmt.Errorf("experiments: empty scenario pool")
	}
	t := &Table{
		ID:     "fig5",
		Title:  "Feature vector composition time vs transactions per 1-minute window",
		Header: []string{"transactions", "time (ms)"},
	}
	var xs, ys []float64
	for _, n := range countsToTest {
		txs := synthesizeWindow(pool, n, base)
		// Warm-up run (allocator, caches), then the median of several
		// timed repetitions — robust against scheduler noise on busy
		// machines.
		if _, err := features.Compose(e.Vocab, RetainedWindow(), txs, u); err != nil {
			return nil, err
		}
		const reps = 9
		samples := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			start := time.Now()
			ws, err := features.Compose(e.Vocab, RetainedWindow(), txs, u)
			if err != nil {
				return nil, err
			}
			if len(ws) == 0 {
				return nil, fmt.Errorf("experiments: no window composed for n=%d", n)
			}
			samples = append(samples, float64(time.Since(start).Nanoseconds())/1e6)
		}
		ms := stats.Quantile(samples, 0.5)
		xs = append(xs, float64(n))
		ys = append(ys, ms)
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprintf("%.3f", ms)})
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("linear fit: time(ms) = %.5f·n + %.3f, R² = %.4f", fit.Slope, fit.Intercept, fit.R2),
		"paper shape: linear growth, < 1s even for the largest window (6,048 transactions)")
	return t, nil
}

// synthesizeWindow packs exactly n transactions into one minute starting
// at t0, reusing the pool cyclically with evenly spread timestamps.
func synthesizeWindow(pool []weblog.Transaction, n int, t0 time.Time) []weblog.Transaction {
	out := make([]weblog.Transaction, n)
	step := 60 * float64(time.Second) / float64(n)
	for i := 0; i < n; i++ {
		tx := pool[i%len(pool)]
		tx.Timestamp = t0.Add(time.Duration(float64(i) * step))
		out[i] = tx
	}
	return out
}
