package experiments

import (
	"fmt"
	"sync"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/grid"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
	"webtxprofile/internal/weblog"
)

// Scale bundles the dataset size and search budgets of one experiment run.
// Small keeps a laptop-class single-core run in minutes; Paper mirrors the
// vendor dataset's shape (and takes correspondingly longer).
type Scale struct {
	Name string
	// Synth configures the benchmark generator.
	Synth synth.Config
	// NoveltyWeeks are the epoch lengths for Figs. 1–2.
	NoveltyWeeks []int
	// GridTrainCap / GridOtherCap bound grid-search cost (see DESIGN.md).
	GridTrainCap, GridOtherCap int
	// FinalTrainCap bounds the windows used to fit final models.
	FinalTrainCap int
	// EvalCap bounds per-user test windows during evaluation (0 = all).
	EvalCap int
	// Params and window combos for the grids; default to the paper's.
	Params []float64
	Combos []features.WindowConfig
}

// SmallScale is the default experiment scale: 12 users over 8 weeks.
func SmallScale(seed int64) Scale {
	sc := synth.DefaultConfig()
	sc.Seed = seed
	sc.Users = 15
	sc.SmallUsers = 3
	sc.Devices = 12
	sc.Weeks = 8
	sc.Services = 400
	sc.Archetypes = 10
	sc.ConfusableUsers = 3
	sc.WeeklyTxMedian = 700
	sc.WeeklyTxSigma = 0.8
	return Scale{
		Name:          "small",
		Synth:         sc,
		NoveltyWeeks:  weeksUpTo(sc.Weeks - 1),
		GridTrainCap:  250,
		GridOtherCap:  80,
		FinalTrainCap: 800,
		EvalCap:       400,
		Params:        grid.PaperParams,
		Combos:        grid.PaperWindowCombos(),
	}
}

// PaperScale mirrors the vendor benchmark shape: 36 users, 26 weeks.
func PaperScale(seed int64) Scale {
	sc := synth.DefaultConfig()
	sc.Seed = seed
	return Scale{
		Name:          "paper",
		Synth:         sc,
		NoveltyWeeks:  weeksUpTo(21),
		GridTrainCap:  600,
		GridOtherCap:  150,
		FinalTrainCap: 2000,
		EvalCap:       1500,
		Params:        grid.PaperParams,
		Combos:        grid.PaperWindowCombos(),
	}
}

func weeksUpTo(n int) []int {
	if n < 1 {
		n = 1
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// RetainedWindow is the paper's retained configuration: D=60s, S=30s.
func RetainedWindow() features.WindowConfig {
	return features.WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}
}

// Env is the prepared state shared by all experiments of one run: the
// generated corpus, the filtered 75/25 split, and the training-epoch
// vocabulary. Optimized per-user parameters and windows are cached across
// experiments.
type Env struct {
	Scale Scale
	Gen   *synth.Generator
	Full  *weblog.Dataset
	Train *weblog.Dataset
	Test  *weblog.Dataset
	Vocab *features.Vocabulary
	Users []string

	mu           sync.Mutex
	trainWindows map[string][]features.Window // retained-window training sets
	testWindows  map[string][]features.Window // retained-window test sets
	optimized    map[svm.Algorithm]map[string]grid.ParamCell
	models       map[svm.Algorithm]map[string]*svm.Model
}

// NewEnv generates the dataset and prepares the split.
func NewEnv(scale Scale) (*Env, error) {
	gen, err := synth.NewGenerator(scale.Synth)
	if err != nil {
		return nil, err
	}
	full := gen.Generate()
	kept, _ := full.FilterMinTransactions(1500)
	if len(kept.Users()) == 0 {
		return nil, fmt.Errorf("experiments: no users above threshold")
	}
	train, test, err := kept.SplitChronological(0.75)
	if err != nil {
		return nil, err
	}
	return &Env{
		Scale:     scale,
		Gen:       gen,
		Full:      full,
		Train:     train,
		Test:      test,
		Vocab:     features.BuildFromDataset(train),
		Users:     train.Users(),
		optimized: make(map[svm.Algorithm]map[string]grid.ParamCell),
		models:    make(map[svm.Algorithm]map[string]*svm.Model),
	}, nil
}

// gridConfig assembles the bounded grid-search configuration.
func (e *Env) gridConfig(algo svm.Algorithm) grid.Config {
	return grid.Config{
		Algorithm:       algo,
		MaxTrainWindows: e.Scale.GridTrainCap,
		MaxOtherWindows: e.Scale.GridOtherCap,
		Train:           svm.TrainConfig{CacheMB: 32},
	}
}

// TrainWindows returns (and caches) the per-user training windows at the
// retained D=60s/S=30s configuration.
func (e *Env) TrainWindows() (map[string][]features.Window, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trainWindows == nil {
		ws, err := features.ComposeUsers(e.Vocab, RetainedWindow(), e.Train)
		if err != nil {
			return nil, err
		}
		e.trainWindows = ws
	}
	return e.trainWindows, nil
}

// TestWindows returns (and caches) the per-user test windows at the
// retained configuration.
func (e *Env) TestWindows() (map[string][]features.Window, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.testWindows == nil {
		ws, err := features.ComposeUsers(e.Vocab, RetainedWindow(), e.Test)
		if err != nil {
			return nil, err
		}
		e.testWindows = ws
	}
	return e.testWindows, nil
}

// Optimized returns each user's grid-search winner for the algorithm at
// the retained window configuration, running the Table III search on first
// use. Sect. IV-C optimizes kernel and ν/C per user once at D=60s/S=30s;
// Table IV applies those winners across the (D, S) combinations.
func (e *Env) Optimized(algo svm.Algorithm) (map[string]grid.ParamCell, error) {
	e.mu.Lock()
	if cached, ok := e.optimized[algo]; ok {
		e.mu.Unlock()
		return cached, nil
	}
	e.mu.Unlock()

	trainWs, err := e.TrainWindows()
	if err != nil {
		return nil, err
	}
	tables, err := grid.ParamSearch(trainWs, e.Scale.Params, grid.PaperKernels(e.Vocab.Size()), e.gridConfig(algo))
	if err != nil {
		return nil, err
	}
	bests, err := grid.BestParams(tables)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.optimized[algo] = bests
	e.mu.Unlock()
	return bests, nil
}

// Models returns (and caches) the final per-user models for the algorithm:
// optimized parameters, fit on the (capped) retained-window training sets.
func (e *Env) Models(algo svm.Algorithm) (map[string]*svm.Model, error) {
	e.mu.Lock()
	if cached, ok := e.models[algo]; ok {
		e.mu.Unlock()
		return cached, nil
	}
	e.mu.Unlock()

	bests, err := e.Optimized(algo)
	if err != nil {
		return nil, err
	}
	trainWs, err := e.TrainWindows()
	if err != nil {
		return nil, err
	}
	models := make(map[string]*svm.Model, len(e.Users))
	for _, u := range e.Users {
		ws := capWindows(trainWs[u], e.Scale.FinalTrainCap)
		m, err := svm.Train(algo, features.Vectors(ws), bests[u].Param,
			svm.TrainConfig{Kernel: bests[u].Kernel, CacheMB: 64})
		if err != nil {
			return nil, fmt.Errorf("experiments: final model for %s: %w", u, err)
		}
		models[u] = m
	}
	e.mu.Lock()
	e.models[algo] = models
	e.mu.Unlock()
	return models, nil
}

func capWindows(ws []features.Window, n int) []features.Window {
	if n > 0 && len(ws) > n {
		return ws[:n]
	}
	return ws
}
