package experiments

import (
	"fmt"
	"time"

	"webtxprofile/internal/baseline"
	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

// AblationFlow compares the paper's transaction-level features against the
// coarse IP-flow features of the related work ([3], [11]) at the retained
// 60-second windows — quantifying the paper's claim that flow records need
// far longer observation to identify users (Sect. VI).
func AblationFlow(e *Env) (*Table, error) {
	trainWs, err := e.TrainWindows()
	if err != nil {
		return nil, err
	}
	testWs, err := e.TestWindows()
	if err != nil {
		return nil, err
	}
	txAcc, err := meanAcceptance(e, trainWs, testWs)
	if err != nil {
		return nil, err
	}

	flowTrain, err := baseline.UserFlowWindows(e.Train, 5*time.Minute, RetainedWindow())
	if err != nil {
		return nil, err
	}
	flowTest, err := baseline.UserFlowWindows(e.Test, 5*time.Minute, RetainedWindow())
	if err != nil {
		return nil, err
	}
	flowAcc, err := meanAcceptance(e, flowTrain, flowTest)
	if err != nil {
		return nil, err
	}

	// Markov category-transition baseline over the same epochs.
	const chunk = 32
	var mkSelf, mkOther float64
	for _, u := range e.Users {
		m, err := baseline.TrainMarkov(u, e.Train.UserTransactions(u), 0.1, chunk)
		if err != nil {
			return nil, err
		}
		mkSelf += m.AcceptanceRatio(e.Test.UserTransactions(u), chunk)
		var sum float64
		n := 0
		for _, o := range e.Users {
			if o == u {
				continue
			}
			sum += m.AcceptanceRatio(e.Test.UserTransactions(o), chunk)
			n++
		}
		mkOther += sum / float64(n)
	}
	nu := float64(len(e.Users))

	t := &Table{
		ID:     "abl_flow",
		Title:  "Ablation: transaction features vs IP-flow features vs Markov transitions (D=60s windows / 32-tx chunks)",
		Header: []string{"feature family", "ACCself", "ACCother", "ACC"},
	}
	t.Rows = append(t.Rows,
		[]string{"web transactions (this work)", pct(txAcc.Self), pct(txAcc.Other), pct(txAcc.ACC())},
		[]string{"IP flow records [3,11]", pct(flowAcc.Self), pct(flowAcc.Other), pct(flowAcc.ACC())},
		[]string{"Markov category transitions", pct(mkSelf / nu), pct(mkOther / nu), pct((mkSelf - mkOther) / nu)},
	)
	t.Notes = append(t.Notes,
		"expected shape: transaction features dominate at short windows — the paper's argument for fast identification")
	return t, nil
}

// AblationFeatures knocks out one feature group at a time and reports the
// resulting differentiation quality — the design-choice ablation DESIGN.md
// calls out (which log fields carry the identifying signal).
func AblationFeatures(e *Env) (*Table, error) {
	variants := []struct {
		name string
		mask func(*weblog.Transaction)
	}{
		{"all features", nil},
		{"without application type", func(tx *weblog.Transaction) { tx.AppType = "" }},
		{"without category", func(tx *weblog.Transaction) { tx.Category = "" }},
		{"without media type", func(tx *weblog.Transaction) { tx.MediaType = taxonomy.MediaType{} }},
		{"without reputation", func(tx *weblog.Transaction) { tx.Reputation = taxonomy.Unverified }},
		{"actions+schemes only", func(tx *weblog.Transaction) {
			tx.AppType = ""
			tx.Category = ""
			tx.MediaType = taxonomy.MediaType{}
			tx.Reputation = taxonomy.Unverified
			tx.Private = false
		}},
	}
	t := &Table{
		ID:     "abl_features",
		Title:  "Ablation: feature-group knockout (OC-SVM, linear, nu=0.1, D=60s S=30s)",
		Header: []string{"variant", "ACCself", "ACCother", "ACC"},
	}
	for _, v := range variants {
		train, test := e.Train, e.Test
		if v.mask != nil {
			train = maskDataset(e.Train, v.mask)
			test = maskDataset(e.Test, v.mask)
		}
		vocab := features.BuildFromDataset(train)
		trainWs, err := features.ComposeUsers(vocab, RetainedWindow(), train)
		if err != nil {
			return nil, err
		}
		testWs, err := features.ComposeUsers(vocab, RetainedWindow(), test)
		if err != nil {
			return nil, err
		}
		acc, err := meanAcceptance(e, trainWs, testWs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, pct(acc.Self), pct(acc.Other), pct(acc.ACC())})
	}
	t.Notes = append(t.Notes,
		"expected shape: the service-knowledge groups (application type, category, media type) carry most of the discriminative signal; bare protocol features do not differentiate users")
	return t, nil
}

// maskDataset deep-copies a dataset applying the mask to every record.
func maskDataset(ds *weblog.Dataset, mask func(*weblog.Transaction)) *weblog.Dataset {
	txs := make([]weblog.Transaction, len(ds.Transactions))
	copy(txs, ds.Transactions)
	for i := range txs {
		mask(&txs[i])
	}
	return weblog.FromTransactions(txs)
}

// meanAcceptance fits fixed-parameter OC-SVM models on the train windows
// and averages each user's test-set acceptance triple.
func meanAcceptance(e *Env, trainWs, testWs map[string][]features.Window) (eval.Acceptance, error) {
	var self, other float64
	n := 0
	for _, u := range e.Users {
		tws := capWindows(trainWs[u], e.Scale.GridTrainCap)
		if len(tws) == 0 {
			continue
		}
		m, err := svm.TrainOCSVM(features.Vectors(tws), 0.1,
			svm.TrainConfig{Kernel: svm.Linear(), CacheMB: 32})
		if err != nil {
			return eval.Acceptance{}, fmt.Errorf("experiments: ablation model for %s: %w", u, err)
		}
		acc := eval.UserAcceptance(m, u, capAll(testWs, e.Scale.EvalCap))
		self += acc.Self
		other += acc.Other
		n++
	}
	if n == 0 {
		return eval.Acceptance{}, fmt.Errorf("experiments: no users with windows")
	}
	return eval.Acceptance{Self: self / float64(n), Other: other / float64(n)}, nil
}
