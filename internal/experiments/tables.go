package experiments

import (
	"fmt"

	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/grid"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/taxonomy"
)

// Table1 reproduces Table I: the feature-vector composition. The observed
// corpus drives the data-driven groups; the full-taxonomy column shows the
// upper bound (the paper's 843 columns arise the same way from the vendor
// taxonomy).
func Table1(e *Env) (*Table, error) {
	counts, total := e.Vocab.GroupCounts()
	fullCounts, fullTotal := features.BuildFull(taxonomy.Default()).GroupCounts()
	labels := []string{
		"http action", "uri scheme", "public address flag", "reputation",
		"reputation verified", "category", "supertype", "subtype",
		"application type",
	}
	paper := []string{"4", "2", "1", "1", "1", "105", "8", "257", "464"}
	t := &Table{
		ID:     "tab1",
		Title:  "Feature vector composition (counts per group)",
		Header: []string{"feature category", "observed corpus", "full taxonomy", "paper"},
	}
	for i, label := range labels {
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(counts[i]), fmt.Sprint(fullCounts[i]), paper[i],
		})
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprint(total), fmt.Sprint(fullTotal), "843"})
	t.Notes = append(t.Notes,
		"observed-corpus counts cover only values present in the training epoch (the paper's 843 arise the same way from the vendor corpus)")
	return t, nil
}

// Table2 reproduces Table II: the (D, S) grid search for SVDD with a
// linear kernel and C = 0.5, scored on training windows.
func Table2(e *Env) (*Table, error) {
	results, err := grid.WindowSearch(e.Train, e.Vocab, e.Scale.Combos,
		svm.Linear(), 0.5, e.gridConfig(svm.SVDD))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "tab2",
		Title:  "Grid search over window duration D and shift S (SVDD, linear kernel, C=0.5)",
		Header: []string{"metric"},
	}
	for _, r := range results {
		t.Header = append(t.Header, fmt.Sprintf("D=%s S=%s", r.Window.Duration, r.Window.Shift))
	}
	selfRow := []string{"ACCself"}
	otherRow := []string{"ACCother"}
	accRow := []string{"ACC"}
	for _, r := range results {
		selfRow = append(selfRow, pct(r.Mean.Self))
		otherRow = append(otherRow, pct(r.Mean.Other))
		accRow = append(accRow, pct(r.Mean.ACC()))
	}
	t.Rows = [][]string{selfRow, otherRow, accRow}
	best, err := grid.BestWindow(results)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("retained combination (max ACCself, the paper's rule): D=%s S=%s", best.Duration, best.Shift),
		"paper: ACCself 91.1/93.3/90.1/90.9/87.6/83.6; retained D=60s S=30s")
	return t, nil
}

// Table3 reproduces Table III: the kernel × C grid for one user's SVDD
// model at the retained window configuration.
func Table3(e *Env, user string) (*Table, error) {
	if user == "" {
		user = e.Users[0]
	}
	trainWs, err := e.TrainWindows()
	if err != nil {
		return nil, err
	}
	if len(trainWs[user]) == 0 {
		return nil, fmt.Errorf("experiments: unknown user %q", user)
	}
	kernels := grid.PaperKernels(e.Vocab.Size())
	tables, err := grid.ParamSearchUsers([]string{user}, trainWs,
		e.Scale.Params, kernels, e.gridConfig(svm.SVDD))
	if err != nil {
		return nil, err
	}
	tbl := tables[user]
	t := &Table{
		ID:     "tab3",
		Title:  fmt.Sprintf("Grid search (ACC) on SVDD kernel and C for %s (D=60s, S=30s)", user),
		Header: []string{"C \\ kernel"},
	}
	for _, k := range kernels {
		t.Header = append(t.Header, k.Kind.String())
	}
	for i, p := range tbl.Params {
		row := []string{fmt.Sprint(p)}
		for j := range tbl.Kernels {
			cell := tbl.Cells[i][j]
			if cell.Err != nil {
				row = append(row, "err")
			} else {
				row = append(row, pct(cell.Acc.ACC()))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	best, err := tbl.Best()
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("retained for %s: %v kernel, C=%g (ACC %s)", user, best.Kernel.Kind, best.Param, pct(best.Acc.ACC())),
		"paper (user1): linear kernel, C=0.4, ACC 95.4")
	return t, nil
}

// Table3AllUsers runs the per-user search across every user and reports
// each user's winner — the optimization step behind Table IV.
func Table3AllUsers(e *Env, algo svm.Algorithm) (*Table, error) {
	bests, err := e.Optimized(algo)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "tab3all",
		Title:  fmt.Sprintf("Per-user optimized parameters (%v, D=60s S=30s)", algo),
		Header: []string{"user", "kernel", "nu/C", "ACCself", "ACCother", "ACC"},
	}
	for _, u := range e.Users {
		b := bests[u]
		t.Rows = append(t.Rows, []string{
			u, b.Kernel.Kind.String(), fmt.Sprint(b.Param),
			pct(b.Acc.Self), pct(b.Acc.Other), pct(b.Acc.ACC()),
		})
	}
	return t, nil
}

// Table4 reproduces Table IV: averaged acceptance on the TEST sets for
// OC-SVM and SVDD across the (D, S) combinations, using each user's
// individually optimized kernel and ν/C (optimized once at the retained
// configuration, as discussed in DESIGN.md).
func Table4(e *Env) (*Table, error) {
	t := &Table{
		ID:     "tab4",
		Title:  "Averaged acceptance ratio test results (per-user optimized parameters)",
		Header: []string{"algorithm", "metric"},
	}
	for _, c := range e.Scale.Combos {
		t.Header = append(t.Header, fmt.Sprintf("D=%s S=%s", c.Duration, c.Shift))
	}
	for _, algo := range []svm.Algorithm{svm.OCSVM, svm.SVDD} {
		bests, err := e.Optimized(algo)
		if err != nil {
			return nil, err
		}
		selfRow := []string{algo.String(), "ACCself"}
		otherRow := []string{"", "ACCother"}
		accRow := []string{"", "ACC"}
		for _, combo := range e.Scale.Combos {
			trainWs, err := features.ComposeUsers(e.Vocab, combo, e.Train)
			if err != nil {
				return nil, err
			}
			testWs, err := features.ComposeUsers(e.Vocab, combo, e.Test)
			if err != nil {
				return nil, err
			}
			var selfSum, otherSum float64
			for _, u := range e.Users {
				m, err := svm.Train(algo,
					features.Vectors(capWindows(trainWs[u], e.Scale.GridTrainCap)),
					bests[u].Param, svm.TrainConfig{Kernel: bests[u].Kernel, CacheMB: 32})
				if err != nil {
					return nil, fmt.Errorf("experiments: tab4 %v %s: %w", algo, u, err)
				}
				acc := eval.UserAcceptance(m, u, capAll(testWs, e.Scale.EvalCap))
				selfSum += acc.Self
				otherSum += acc.Other
			}
			n := float64(len(e.Users))
			selfRow = append(selfRow, pct(selfSum/n))
			otherRow = append(otherRow, pct(otherSum/n))
			accRow = append(accRow, pct(selfSum/n-otherSum/n))
		}
		t.Rows = append(t.Rows, selfRow, otherRow, accRow)
	}
	t.Notes = append(t.Notes,
		"paper: OC-SVM self 91.7/89.6/85.9(10m)/87.0(5m)/83.7/81.6, other 7.1/7.3/5.5/6.0/4.1/4.3",
		"paper: SVDD self 91.4/89.4/92.8/90.7/85.9/89.7, other 10.4/10.7/4.5/4.1/3.6/3.6")
	return t, nil
}

// Table5 reproduces Table V: the OC-SVM acceptance confusion matrix on the
// test sets, with optimized per-user parameters.
func Table5(e *Env) (*Table, error) {
	models, err := e.Models(svm.OCSVM)
	if err != nil {
		return nil, err
	}
	testWs, err := e.TestWindows()
	if err != nil {
		return nil, err
	}
	cm := eval.Confusion(models, capAll(testWs, e.Scale.EvalCap))
	t := &Table{
		ID:     "tab5",
		Title:  "Confusion matrix for all OC-SVM user models (percent of test windows accepted)",
		Header: []string{"model"},
	}
	for j := range cm.Users {
		t.Header = append(t.Header, fmt.Sprintf("t%d", j+1))
	}
	for i := range cm.Users {
		row := []string{fmt.Sprintf("m%d (%s)", i+1, cm.Users[i])}
		for j := range cm.Ratio[i] {
			row = append(row, pct(cm.Ratio[i][j]))
		}
		t.Rows = append(t.Rows, row)
	}
	mean := cm.Mean()
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean diagonal (ACCself) %s, mean off-diagonal (ACCother) %s, ACC %s",
			pct(mean.Self), pct(mean.Other), pct(mean.ACC())),
		"paper: self-acceptance ~90% with low off-diagonal acceptance and a confusable cluster (m13–m17)")
	return t, nil
}

// capAll caps each user's window list.
func capAll(ws map[string][]features.Window, n int) map[string][]features.Window {
	out := make(map[string][]features.Window, len(ws))
	for u, list := range ws {
		out[u] = capWindows(list, n)
	}
	return out
}
