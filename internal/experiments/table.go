// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I–V, Figures 1–5) plus the ablations called out in
// DESIGN.md, on the synthetic benchmark substitute. Each experiment
// returns a Table that the experiments command renders to text files under
// results/ and EXPERIMENTS.md compares against the paper.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid with optional
// footnotes.
type Table struct {
	ID     string // e.g. "tab2", "fig1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// pct renders a ratio as a percent with one decimal, the paper's table
// style.
func pct(x float64) string { return fmt.Sprintf("%.1f", 100*x) }
