package experiments

import (
	"strings"
	"testing"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
)

// tinyScale keeps every experiment runnable in a few seconds of test time.
func tinyScale() Scale {
	s := SmallScale(7)
	s.Name = "tiny"
	s.Synth.Users = 6
	s.Synth.SmallUsers = 1
	s.Synth.Devices = 5
	s.Synth.Weeks = 3
	s.Synth.Services = 150
	s.Synth.Archetypes = 5
	s.Synth.ConfusableUsers = 2
	s.Synth.WeeklyTxMedian = 1200
	s.Synth.WeeklyTxSigma = 0.4
	s.NoveltyWeeks = []int{1, 2}
	s.GridTrainCap = 120
	s.GridOtherCap = 40
	s.FinalTrainCap = 200
	s.EvalCap = 150
	s.Params = []float64{0.5, 0.1}
	s.Combos = []features.WindowConfig{
		RetainedWindow(),
		{Duration: 300e9, Shift: 60e9},
	}
	return s
}

// sharedEnv is built once; experiments only read from it.
var sharedEnv = func() *Env {
	e, err := NewEnv(tinyScale())
	if err != nil {
		panic(err)
	}
	return e
}()

func formatted(t *testing.T, tab *Table) string {
	t.Helper()
	var sb strings.Builder
	if err := tab.Format(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestEnvPreparation(t *testing.T) {
	if len(sharedEnv.Users) != 5 {
		t.Fatalf("users = %v", sharedEnv.Users)
	}
	if sharedEnv.Vocab.Size() == 0 {
		t.Fatal("empty vocabulary")
	}
	if sharedEnv.Train.Len() == 0 || sharedEnv.Test.Len() == 0 {
		t.Fatal("empty split")
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	out := formatted(t, tab)
	if !strings.Contains(out, "843") {
		t.Errorf("missing full-taxonomy total:\n%s", out)
	}
	if len(tab.Rows) != 10 {
		t.Errorf("rows = %d, want 9 groups + total", len(tab.Rows))
	}
}

func TestFigure1(t *testing.T) {
	tab, err := Figure1(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(sharedEnv.Scale.NoveltyWeeks) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := formatted(t, tab)
	if !strings.Contains(out, "application_type") {
		t.Errorf("missing series:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	tab, err := Figure2(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(sharedEnv.Scale.NoveltyWeeks) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Rows[0]) != len(sharedEnv.Scale.Combos)+1 {
		t.Errorf("columns = %d", len(tab.Rows[0]))
	}
}

func TestTable3(t *testing.T) {
	tab, err := Table3(sharedEnv, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(sharedEnv.Scale.Params) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if _, err := Table3(sharedEnv, "no_such_user"); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestTable4AndTable5AndFig34(t *testing.T) {
	// These share the cached optimized parameters; run in sequence.
	tab4, err := Table4(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab4.Rows) != 6 {
		t.Fatalf("tab4 rows = %d", len(tab4.Rows))
	}
	tab5, err := Table5(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab5.Rows) != len(sharedEnv.Users) {
		t.Fatalf("tab5 rows = %d", len(tab5.Rows))
	}
	out := formatted(t, tab5)
	if !strings.Contains(out, "mean diagonal") {
		t.Errorf("missing summary note:\n%s", out)
	}

	fig3, err := Figure3(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Rows) < 2 {
		t.Fatalf("fig3 rows = %d", len(fig3.Rows))
	}
	if !strings.HasPrefix(fig3.Rows[0][0], "actual") {
		t.Errorf("first row should be the actual-user track")
	}

	fig4, err := Figure4(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Rows) != 2 {
		t.Fatalf("fig4 rows = %d", len(fig4.Rows))
	}
}

func TestFigure5(t *testing.T) {
	tab, err := Figure5(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := formatted(t, tab)
	if !strings.Contains(out, "linear fit") {
		t.Errorf("missing fit note:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	flow, err := AblationFlow(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(flow.Rows) != 3 {
		t.Fatalf("flow ablation rows = %d", len(flow.Rows))
	}
	feat, err := AblationFeatures(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(feat.Rows) != 6 {
		t.Fatalf("feature ablation rows = %d", len(feat.Rows))
	}
}

func TestOptimizedCached(t *testing.T) {
	a, err := sharedEnv.Optimized(svm.OCSVM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharedEnv.Optimized(svm.OCSVM)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a {
		if a[u].Param != b[u].Param || a[u].Kernel != b[u].Kernel {
			t.Errorf("cache drift for %s", u)
		}
	}
}

func TestScalesValidate(t *testing.T) {
	for _, s := range []Scale{SmallScale(1), PaperScale(1)} {
		if err := s.Synth.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if len(s.NoveltyWeeks) == 0 || len(s.Params) == 0 || len(s.Combos) == 0 {
			t.Errorf("%s: incomplete scale", s.Name)
		}
	}
}

func TestExtensions(t *testing.T) {
	algos, err := ExtensionAlgorithms(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(algos.Rows) != 3 {
		t.Fatalf("algorithm rows = %d", len(algos.Rows))
	}
	out := formatted(t, algos)
	if !strings.Contains(out, "autoencoder") {
		t.Errorf("missing autoencoder row:\n%s", out)
	}
	epoch, err := ExtensionTrainingEpoch(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(epoch.Rows) != 4 {
		t.Fatalf("epoch rows = %d", len(epoch.Rows))
	}
}

func TestExtensionROCAndLatency(t *testing.T) {
	roc, err := ExtensionROC(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(roc.Rows) != len(sharedEnv.Users)+1 {
		t.Fatalf("roc rows = %d", len(roc.Rows))
	}
	if !strings.HasPrefix(roc.Rows[len(roc.Rows)-1][0], "mean") {
		t.Error("missing mean row")
	}
	lat, err := ExtensionIdentificationLatency(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != 4 {
		t.Fatalf("latency rows = %d", len(lat.Rows))
	}
}

func TestExtensionDrift(t *testing.T) {
	tab, err := ExtensionDrift(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no drift rows")
	}
	if len(tab.Rows[0]) != 4 {
		t.Fatalf("row shape = %d", len(tab.Rows[0]))
	}
}
