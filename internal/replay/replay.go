// Package replay streams a recorded transaction log to a destination in
// (optionally accelerated) log time — the test harness for the live
// continuous-authentication deployment: profilerd listens, replay plays a
// recorded day back at 60× speed.
package replay

import (
	"context"
	"fmt"
	"time"

	"webtxprofile/internal/weblog"
)

// Sink consumes replayed transactions (collector.Client.Send satisfies
// this shape via a closure).
type Sink func(tx weblog.Transaction) error

// Config controls pacing.
type Config struct {
	// Speedup divides inter-transaction gaps: 1 = real time, 60 = one
	// minute of log time per second, 0 = as fast as possible.
	Speedup float64
	// MaxGap caps a single sleep regardless of the log gap (long idle
	// periods skip ahead). Zero means no cap.
	MaxGap time.Duration
	// Sleep injects the clock; nil uses a context-aware time.Sleep.
	// Tests replace it to run instantly.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

func (c Config) validate() error {
	if c.Speedup < 0 {
		return fmt.Errorf("replay: negative speedup %g", c.Speedup)
	}
	if c.MaxGap < 0 {
		return fmt.Errorf("replay: negative max gap %v", c.MaxGap)
	}
	return nil
}

// Run replays the transactions in order, sleeping between records to
// reproduce the original pacing (divided by Speedup). It stops early when
// the context is cancelled or the sink errors, reporting how many records
// were delivered.
func Run(ctx context.Context, txs []weblog.Transaction, sink Sink, cfg Config) (int, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if sink == nil {
		return 0, fmt.Errorf("replay: nil sink")
	}
	sent := 0
	for i := range txs {
		if i > 0 && cfg.Speedup > 0 {
			gap := txs[i].Timestamp.Sub(txs[i-1].Timestamp)
			if gap < 0 {
				return sent, fmt.Errorf("replay: transactions not sorted at index %d", i)
			}
			pause := time.Duration(float64(gap) / cfg.Speedup)
			if cfg.MaxGap > 0 && pause > cfg.MaxGap {
				pause = cfg.MaxGap
			}
			if pause > 0 {
				if err := cfg.Sleep(ctx, pause); err != nil {
					return sent, err
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return sent, err
		}
		if err := sink(txs[i]); err != nil {
			return sent, fmt.Errorf("replay: sink at record %d: %w", i, err)
		}
		sent++
	}
	return sent, nil
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
