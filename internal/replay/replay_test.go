package replay

import (
	"context"
	"errors"
	"testing"
	"time"

	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

func txAt(offset time.Duration) weblog.Transaction {
	return weblog.Transaction{
		Timestamp: time.Date(2015, 1, 5, 9, 0, 0, 0, time.UTC).Add(offset),
		Host:      "a.example.com", Scheme: taxonomy.SchemeHTTP,
		Action: taxonomy.ActionGet, UserID: "u", SourceIP: "10.0.0.1",
		Category: "Games", Reputation: taxonomy.MinimalRisk,
	}
}

// fakeSleep records requested pauses without sleeping.
type fakeSleep struct{ pauses []time.Duration }

func (f *fakeSleep) sleep(_ context.Context, d time.Duration) error {
	f.pauses = append(f.pauses, d)
	return nil
}

func TestRunPacing(t *testing.T) {
	txs := []weblog.Transaction{txAt(0), txAt(10 * time.Second), txAt(70 * time.Second)}
	fs := &fakeSleep{}
	var got []weblog.Transaction
	sink := func(tx weblog.Transaction) error {
		got = append(got, tx)
		return nil
	}
	n, err := Run(context.Background(), txs, sink, Config{Speedup: 10, Sleep: fs.sleep})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(got) != 3 {
		t.Fatalf("sent %d", n)
	}
	// Gaps 10s and 60s divided by 10.
	want := []time.Duration{time.Second, 6 * time.Second}
	if len(fs.pauses) != 2 || fs.pauses[0] != want[0] || fs.pauses[1] != want[1] {
		t.Errorf("pauses = %v, want %v", fs.pauses, want)
	}
}

func TestRunMaxGapCapsSleeps(t *testing.T) {
	txs := []weblog.Transaction{txAt(0), txAt(time.Hour)}
	fs := &fakeSleep{}
	_, err := Run(context.Background(), txs, func(weblog.Transaction) error { return nil },
		Config{Speedup: 1, MaxGap: 2 * time.Second, Sleep: fs.sleep})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.pauses) != 1 || fs.pauses[0] != 2*time.Second {
		t.Errorf("pauses = %v", fs.pauses)
	}
}

func TestRunFullSpeedSkipsSleeps(t *testing.T) {
	txs := []weblog.Transaction{txAt(0), txAt(time.Hour)}
	fs := &fakeSleep{}
	n, err := Run(context.Background(), txs, func(weblog.Transaction) error { return nil },
		Config{Speedup: 0, Sleep: fs.sleep})
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if len(fs.pauses) != 0 {
		t.Errorf("pauses = %v, want none", fs.pauses)
	}
}

func TestRunSinkErrorStops(t *testing.T) {
	txs := []weblog.Transaction{txAt(0), txAt(time.Second), txAt(2 * time.Second)}
	boom := errors.New("boom")
	calls := 0
	sink := func(weblog.Transaction) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	}
	n, err := Run(context.Background(), txs, sink, Config{Speedup: 0})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n != 1 {
		t.Errorf("sent = %d, want 1", n)
	}
}

func TestRunContextCancel(t *testing.T) {
	txs := []weblog.Transaction{txAt(0), txAt(time.Second)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := Run(ctx, txs, func(weblog.Transaction) error { return nil }, Config{Speedup: 0})
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
	if n != 0 {
		t.Errorf("sent = %d", n)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, nil, Config{}); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := Run(context.Background(), nil, func(weblog.Transaction) error { return nil },
		Config{Speedup: -1}); err == nil {
		t.Error("negative speedup accepted")
	}
	unsorted := []weblog.Transaction{txAt(time.Minute), txAt(0)}
	if _, err := Run(context.Background(), unsorted, func(weblog.Transaction) error { return nil },
		Config{Speedup: 1, Sleep: (&fakeSleep{}).sleep}); err == nil {
		t.Error("unsorted input accepted")
	}
}

func TestSleepCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sleepCtx(ctx, 5*time.Second)
	if err == nil {
		t.Fatal("no cancellation error")
	}
	if time.Since(start) > time.Second {
		t.Error("sleep did not abort promptly")
	}
}
