package features

import (
	"fmt"
	"maps"
	"time"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/weblog"
)

// Streamer composes windows incrementally from a live transaction feed —
// the online counterpart of Compose used by the continuous-authentication
// pipeline. Transactions must arrive in non-decreasing timestamp order;
// windows are emitted as soon as their interval can no longer receive
// transactions (that is, when a transaction at or past the window end
// arrives, or on Close).
//
// Streamer produces exactly the windows Compose would produce on the full
// transaction sequence; TestStreamerMatchesCompose asserts that
// equivalence.
type Streamer struct {
	vocab  *Vocabulary
	cfg    WindowConfig
	entity string

	buf       []weblog.Transaction // pending transactions, oldest first
	nextIdx   int                  // index k of the next window to emit
	anchored  bool
	anchor    weblog.Transaction // first transaction; defines t0
	lastSeen  weblog.Transaction
	closed    bool
	emitCount int

	// Reusable window-build scratch (lazily created): the accumulator, the
	// per-transaction extract destination and the user tally live across
	// windows so steady-state builds allocate only what each emitted Window
	// carries away. Deliberately absent from StreamerState.
	acc     *sparse.Accumulator
	scratch sparse.Vector
	users   map[string]int
}

// NewStreamer returns a streaming window composer for one entity.
func NewStreamer(vocab *Vocabulary, cfg WindowConfig, entity string) (*Streamer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Streamer{vocab: vocab, cfg: cfg, entity: entity}, nil
}

// Add feeds one transaction and returns any windows completed by its
// arrival (possibly none).
func (s *Streamer) Add(tx weblog.Transaction) ([]Window, error) {
	if s.closed {
		return nil, fmt.Errorf("features: Add after Close")
	}
	if !s.anchored {
		s.anchored = true
		s.anchor = tx
	} else if tx.Timestamp.Before(s.lastSeen.Timestamp) {
		return nil, fmt.Errorf("features: out-of-order transaction at %v (last %v)",
			tx.Timestamp, s.lastSeen.Timestamp)
	}
	s.lastSeen = tx
	// Emit every window whose end is at or before the new arrival: no
	// later transaction can fall inside it.
	var out []Window
	for {
		start := s.anchor.Timestamp.Add(time.Duration(s.nextIdx) * s.cfg.Shift)
		end := start.Add(s.cfg.Duration)
		if tx.Timestamp.Before(end) {
			break
		}
		if w, ok := s.build(start, end); ok {
			out = append(out, w)
		}
		s.nextIdx++
		s.gc(start.Add(s.cfg.Shift))
	}
	s.buf = append(s.buf, tx)
	return out, nil
}

// Close flushes the windows still covering buffered transactions and marks
// the streamer finished. It mirrors Compose's trailing behaviour: windows
// are generated while their start is not after the last transaction.
func (s *Streamer) Close() []Window {
	if s.closed || !s.anchored {
		s.closed = true
		return nil
	}
	s.closed = true
	var out []Window
	for {
		start := s.anchor.Timestamp.Add(time.Duration(s.nextIdx) * s.cfg.Shift)
		if start.After(s.lastSeen.Timestamp) {
			break
		}
		end := start.Add(s.cfg.Duration)
		if w, ok := s.build(start, end); ok {
			out = append(out, w)
		}
		s.nextIdx++
		s.gc(start.Add(s.cfg.Shift))
	}
	return out
}

// Emitted returns the number of windows produced so far.
func (s *Streamer) Emitted() int { return s.emitCount }

// StreamerState is a serializable snapshot of a Streamer: the window
// anchor, the transactions still buffered for open windows, and the
// position of the next window to emit. A streamer restored from a snapshot
// produces exactly the window sequence the original would have produced —
// the checkpoint/resume property the durable identifier state in core
// builds on (TestStreamerSnapshotResume proves it against Compose).
//
// The state is plain data with JSON tags; it carries no vocabulary or
// window configuration — RestoreStreamer re-binds it to those, so the
// snapshot stays valid as long as the profile bundle it belongs to does.
type StreamerState struct {
	Entity    string               `json:"entity"`
	Anchored  bool                 `json:"anchored,omitempty"`
	Closed    bool                 `json:"closed,omitempty"`
	NextIdx   int                  `json:"next_idx,omitempty"`
	EmitCount int                  `json:"emit_count,omitempty"`
	Anchor    *weblog.Transaction  `json:"anchor,omitempty"`
	LastSeen  *weblog.Transaction  `json:"last_seen,omitempty"`
	Buffered  []weblog.Transaction `json:"buffered,omitempty"`
}

// Snapshot captures the streamer's full resumable state. The buffered
// transactions are copied, so the snapshot stays valid while the streamer
// keeps running.
func (s *Streamer) Snapshot() StreamerState {
	st := StreamerState{
		Entity:    s.entity,
		Anchored:  s.anchored,
		Closed:    s.closed,
		NextIdx:   s.nextIdx,
		EmitCount: s.emitCount,
	}
	if s.anchored {
		anchor, last := s.anchor, s.lastSeen
		st.Anchor, st.LastSeen = &anchor, &last
		st.Buffered = append([]weblog.Transaction(nil), s.buf...)
	}
	return st
}

// RestoreStreamer rebuilds a streamer from a snapshot taken with Snapshot,
// re-bound to the given vocabulary and window configuration (which must be
// the ones the original streamer ran with — they are not part of the
// state). The restored streamer resumes at the exact window sequence the
// snapshotted one would have emitted next.
func RestoreStreamer(vocab *Vocabulary, cfg WindowConfig, st StreamerState) (*Streamer, error) {
	s, err := NewStreamer(vocab, cfg, st.Entity)
	if err != nil {
		return nil, err
	}
	if st.NextIdx < 0 || st.EmitCount < 0 {
		return nil, fmt.Errorf("features: negative window counters in streamer state for %q", st.Entity)
	}
	if !st.Anchored {
		if st.Anchor != nil || st.LastSeen != nil || len(st.Buffered) > 0 {
			return nil, fmt.Errorf("features: unanchored streamer state for %q carries transactions", st.Entity)
		}
		s.closed = st.Closed
		s.nextIdx = st.NextIdx
		s.emitCount = st.EmitCount
		return s, nil
	}
	if st.Anchor == nil || st.LastSeen == nil {
		return nil, fmt.Errorf("features: anchored streamer state for %q missing anchor or last-seen", st.Entity)
	}
	for i := range st.Buffered {
		if i > 0 && st.Buffered[i].Timestamp.Before(st.Buffered[i-1].Timestamp) {
			return nil, fmt.Errorf("features: buffered transactions out of order in streamer state for %q", st.Entity)
		}
	}
	if n := len(st.Buffered); n > 0 && st.LastSeen.Timestamp.Before(st.Buffered[n-1].Timestamp) {
		return nil, fmt.Errorf("features: streamer state for %q has last-seen before buffered tail", st.Entity)
	}
	s.anchored = true
	s.anchor = *st.Anchor
	s.lastSeen = *st.LastSeen
	s.closed = st.Closed
	s.nextIdx = st.NextIdx
	s.emitCount = st.EmitCount
	s.buf = append([]weblog.Transaction(nil), st.Buffered...)
	return s, nil
}

// build aggregates buffered transactions inside [start, end) using the
// streamer's reusable scratch; only an emitted Window materializes fresh
// slices and a fresh user-count map.
func (s *Streamer) build(start, end time.Time) (Window, bool) {
	if s.acc == nil {
		s.acc = sparse.NewAccumulator(s.vocab.NumericCols())
		s.users = make(map[string]int)
	}
	s.acc.Reset()
	clear(s.users)
	for i := range s.buf {
		ts := s.buf[i].Timestamp
		if ts.Before(start) || !ts.Before(end) {
			continue
		}
		s.vocab.ExtractInto(&s.buf[i], &s.scratch)
		s.acc.Add(s.scratch)
		s.users[s.buf[i].UserID]++
	}
	if s.acc.Count() == 0 {
		return Window{}, false
	}
	s.emitCount++
	return Window{
		Start:      start,
		End:        end,
		Vector:     s.acc.Vector(),
		Count:      s.acc.Count(),
		Entity:     s.entity,
		UserCounts: maps.Clone(s.users),
	}, true
}

// gc drops buffered transactions older than the next window's start.
func (s *Streamer) gc(nextStart time.Time) {
	drop := 0
	for drop < len(s.buf) && s.buf[drop].Timestamp.Before(nextStart) {
		drop++
	}
	if drop > 0 {
		s.buf = append(s.buf[:0], s.buf[drop:]...)
	}
}
