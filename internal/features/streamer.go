package features

import (
	"fmt"
	"time"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/weblog"
)

// Streamer composes windows incrementally from a live transaction feed —
// the online counterpart of Compose used by the continuous-authentication
// pipeline. Transactions must arrive in non-decreasing timestamp order;
// windows are emitted as soon as their interval can no longer receive
// transactions (that is, when a transaction at or past the window end
// arrives, or on Close).
//
// Streamer produces exactly the windows Compose would produce on the full
// transaction sequence; TestStreamerMatchesCompose asserts that
// equivalence.
type Streamer struct {
	vocab  *Vocabulary
	cfg    WindowConfig
	entity string

	buf       []weblog.Transaction // pending transactions, oldest first
	nextIdx   int                  // index k of the next window to emit
	anchored  bool
	anchor    weblog.Transaction // first transaction; defines t0
	lastSeen  weblog.Transaction
	closed    bool
	emitCount int
}

// NewStreamer returns a streaming window composer for one entity.
func NewStreamer(vocab *Vocabulary, cfg WindowConfig, entity string) (*Streamer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Streamer{vocab: vocab, cfg: cfg, entity: entity}, nil
}

// Add feeds one transaction and returns any windows completed by its
// arrival (possibly none).
func (s *Streamer) Add(tx weblog.Transaction) ([]Window, error) {
	if s.closed {
		return nil, fmt.Errorf("features: Add after Close")
	}
	if !s.anchored {
		s.anchored = true
		s.anchor = tx
	} else if tx.Timestamp.Before(s.lastSeen.Timestamp) {
		return nil, fmt.Errorf("features: out-of-order transaction at %v (last %v)",
			tx.Timestamp, s.lastSeen.Timestamp)
	}
	s.lastSeen = tx
	// Emit every window whose end is at or before the new arrival: no
	// later transaction can fall inside it.
	var out []Window
	for {
		start := s.anchor.Timestamp.Add(time.Duration(s.nextIdx) * s.cfg.Shift)
		end := start.Add(s.cfg.Duration)
		if tx.Timestamp.Before(end) {
			break
		}
		if w, ok := s.build(start, end); ok {
			out = append(out, w)
		}
		s.nextIdx++
		s.gc(start.Add(s.cfg.Shift))
	}
	s.buf = append(s.buf, tx)
	return out, nil
}

// Close flushes the windows still covering buffered transactions and marks
// the streamer finished. It mirrors Compose's trailing behaviour: windows
// are generated while their start is not after the last transaction.
func (s *Streamer) Close() []Window {
	if s.closed || !s.anchored {
		s.closed = true
		return nil
	}
	s.closed = true
	var out []Window
	for {
		start := s.anchor.Timestamp.Add(time.Duration(s.nextIdx) * s.cfg.Shift)
		if start.After(s.lastSeen.Timestamp) {
			break
		}
		end := start.Add(s.cfg.Duration)
		if w, ok := s.build(start, end); ok {
			out = append(out, w)
		}
		s.nextIdx++
		s.gc(start.Add(s.cfg.Shift))
	}
	return out
}

// Emitted returns the number of windows produced so far.
func (s *Streamer) Emitted() int { return s.emitCount }

// build aggregates buffered transactions inside [start, end).
func (s *Streamer) build(start, end time.Time) (Window, bool) {
	acc := sparse.NewAccumulator(s.vocab.NumericCols())
	users := make(map[string]int)
	for i := range s.buf {
		ts := s.buf[i].Timestamp
		if ts.Before(start) || !ts.Before(end) {
			continue
		}
		acc.Add(s.vocab.Extract(&s.buf[i]))
		users[s.buf[i].UserID]++
	}
	if acc.Count() == 0 {
		return Window{}, false
	}
	s.emitCount++
	return Window{
		Start:      start,
		End:        end,
		Vector:     acc.Vector(),
		Count:      acc.Count(),
		Entity:     s.entity,
		UserCounts: users,
	}, true
}

// gc drops buffered transactions older than the next window's start.
func (s *Streamer) gc(nextStart time.Time) {
	drop := 0
	for drop < len(s.buf) && s.buf[drop].Timestamp.Before(nextStart) {
		drop++
	}
	if drop > 0 {
		s.buf = append(s.buf[:0], s.buf[drop:]...)
	}
}
