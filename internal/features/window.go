package features

import (
	"fmt"
	"time"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/weblog"
)

// WindowConfig holds the sliding-window parameters of Sect. III-C: windows
// of duration D moving by a shifting factor S with S <= D.
type WindowConfig struct {
	Duration time.Duration // D
	Shift    time.Duration // S
}

// Validate enforces 0 < S <= D.
func (c WindowConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("features: window duration %v must be positive", c.Duration)
	}
	if c.Shift <= 0 {
		return fmt.Errorf("features: window shift %v must be positive", c.Shift)
	}
	if c.Shift > c.Duration {
		return fmt.Errorf("features: shift %v exceeds duration %v", c.Shift, c.Duration)
	}
	return nil
}

// String renders the config as "D=60s S=30s".
func (c WindowConfig) String() string {
	return fmt.Sprintf("D=%s S=%s", c.Duration, c.Shift)
}

// Window is one aggregated transaction window: the feature vector plus the
// ground truth needed for evaluation.
type Window struct {
	// Start and End delimit the half-open interval [Start, End).
	Start, End time.Time
	// Vector is the aggregated feature vector (OR for binary columns,
	// mean for numeric columns).
	Vector sparse.Vector
	// Count is the number of transactions aggregated.
	Count int
	// Entity identifies the windowing subject: a user id under
	// user-specific windowing, a source address under host-specific.
	Entity string
	// UserCounts records, per user id, how many of the window's
	// transactions that user performed — the ground truth for
	// identification experiments.
	UserCounts map[string]int
}

// DominantUser returns the user contributing the most transactions to the
// window (ties broken lexicographically for determinism).
func (w *Window) DominantUser() string {
	best, bestN := "", -1
	for u, n := range w.UserCounts {
		if n > bestN || (n == bestN && u < best) {
			best, bestN = u, n
		}
	}
	return best
}

// Compose aggregates the chronologically sorted transactions of one entity
// into sliding windows. Windows are anchored at the first transaction's
// timestamp; a window materializes only if at least one transaction falls
// inside it (empty windows carry no information and are skipped, see
// DESIGN.md). The transactions slice must be sorted by timestamp.
func Compose(vocab *Vocabulary, cfg WindowConfig, txs []weblog.Transaction, entity string) ([]Window, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(txs) == 0 {
		return nil, nil
	}
	for i := 1; i < len(txs); i++ {
		if txs[i].Timestamp.Before(txs[i-1].Timestamp) {
			return nil, fmt.Errorf("features: transactions not sorted at index %d", i)
		}
	}
	var windows []Window
	acc := sparse.NewAccumulator(vocab.NumericCols())
	var scratch sparse.Vector
	t0 := txs[0].Timestamp
	last := txs[len(txs)-1].Timestamp
	lo := 0 // first transaction with Timestamp >= start
	for k := 0; ; k++ {
		start := t0.Add(time.Duration(k) * cfg.Shift)
		if start.After(last) {
			break
		}
		end := start.Add(cfg.Duration)
		for lo < len(txs) && txs[lo].Timestamp.Before(start) {
			lo++
		}
		if lo >= len(txs) {
			break
		}
		acc.Reset()
		users := make(map[string]int)
		for i := lo; i < len(txs) && txs[i].Timestamp.Before(end); i++ {
			vocab.ExtractInto(&txs[i], &scratch)
			acc.Add(scratch)
			users[txs[i].UserID]++
		}
		if acc.Count() == 0 {
			continue
		}
		windows = append(windows, Window{
			Start:      start,
			End:        end,
			Vector:     acc.Vector(),
			Count:      acc.Count(),
			Entity:     entity,
			UserCounts: users,
		})
	}
	return windows, nil
}

// ComposeUsers builds user-specific windows (Sect. III-C) for every user in
// ds, returning them keyed by user id.
func ComposeUsers(vocab *Vocabulary, cfg WindowConfig, ds *weblog.Dataset) (map[string][]Window, error) {
	out := make(map[string][]Window)
	for _, u := range ds.Users() {
		ws, err := Compose(vocab, cfg, ds.UserTransactions(u), u)
		if err != nil {
			return nil, fmt.Errorf("features: windowing user %s: %w", u, err)
		}
		out[u] = ws
	}
	return out, nil
}

// ComposeHosts builds host-specific windows (Sect. III-D) for every source
// address in ds, keyed by address.
func ComposeHosts(vocab *Vocabulary, cfg WindowConfig, ds *weblog.Dataset) (map[string][]Window, error) {
	out := make(map[string][]Window)
	for _, h := range ds.Hosts() {
		ws, err := Compose(vocab, cfg, ds.HostTransactions(h), h)
		if err != nil {
			return nil, fmt.Errorf("features: windowing host %s: %w", h, err)
		}
		out[h] = ws
	}
	return out, nil
}

// Vectors projects windows onto their feature vectors.
func Vectors(ws []Window) []sparse.Vector {
	out := make([]sparse.Vector, len(ws))
	for i := range ws {
		out[i] = ws[i].Vector
	}
	return out
}
