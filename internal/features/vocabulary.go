// Package features implements the paper's feature pipeline (Sect. III):
// a data-driven bag-of-words vocabulary over the augmented log fields, a
// per-transaction feature extractor, and the sliding-window composer that
// aggregates transaction vectors into the window vectors the one-class
// classifiers consume.
package features

import (
	"encoding/json"
	"fmt"
	"sort"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

// Group identifies a feature-column group; the groups mirror the rows of
// Table I in the paper.
type Group int

// Feature groups in column-layout order.
const (
	GroupAction Group = iota
	GroupScheme
	GroupPublicFlag
	GroupReputationRisk
	GroupReputationVerified
	GroupCategory
	GroupSuperType
	GroupSubType
	GroupAppType
	numGroups
)

var groupNames = [numGroups]string{
	"http action", "uri scheme", "public address flag", "reputation",
	"reputation verified", "category", "supertype", "subtype",
	"application type",
}

// String returns the Table I row label for g.
func (g Group) String() string {
	if g < 0 || g >= numGroups {
		return fmt.Sprintf("group(%d)", int(g))
	}
	return groupNames[g]
}

// Vocabulary maps log-field values to feature columns. The HTTP-action and
// URI-scheme groups and the three numeric columns are fixed; the category,
// super-type, sub-type and application-type groups contain exactly the
// values observed in the corpus the vocabulary was built from (Sect. IV-A:
// the vendor dataset yields 843 columns this way).
type Vocabulary struct {
	actions  map[string]int
	schemes  map[string]int
	colPub   int
	colRisk  int
	colVerif int
	cats     map[string]int
	supers   map[string]int
	subs     map[string]int
	apps     map[string]int
	size     int
	numeric  map[int32]bool
}

// Build constructs a vocabulary from a corpus of transactions. Column
// assignment is deterministic: fixed groups first, then each data-driven
// group with its observed values in sorted order.
func Build(txs []weblog.Transaction) *Vocabulary {
	catSet := map[string]bool{}
	superSet := map[string]bool{}
	subSet := map[string]bool{}
	appSet := map[string]bool{}
	for i := range txs {
		tx := &txs[i]
		if tx.Category != "" {
			catSet[tx.Category] = true
		}
		if !tx.MediaType.IsZero() {
			superSet[tx.MediaType.Super] = true
			subSet[tx.MediaType.Sub] = true
		}
		if tx.AppType != "" {
			appSet[tx.AppType] = true
		}
	}
	return assemble(setToSorted(catSet), setToSorted(superSet), setToSorted(subSet), setToSorted(appSet))
}

// BuildFromDataset is Build over every transaction in ds.
func BuildFromDataset(ds *weblog.Dataset) *Vocabulary {
	return Build(ds.Transactions)
}

// BuildFull constructs a vocabulary covering an entire taxonomy rather than
// an observed corpus; useful when train/test vocabularies must coincide by
// construction.
func BuildFull(tax *taxonomy.Taxonomy) *Vocabulary {
	return assemble(tax.Categories, tax.SuperTypes, tax.SubTypes, tax.AppTypes)
}

func assemble(cats, supers, subs, apps []string) *Vocabulary {
	v := &Vocabulary{
		actions: make(map[string]int, len(taxonomy.Actions)),
		schemes: make(map[string]int, len(taxonomy.Schemes)),
		cats:    make(map[string]int, len(cats)),
		supers:  make(map[string]int, len(supers)),
		subs:    make(map[string]int, len(subs)),
		apps:    make(map[string]int, len(apps)),
		numeric: make(map[int32]bool, 3),
	}
	col := 0
	for _, a := range taxonomy.Actions {
		v.actions[a] = col
		col++
	}
	for _, s := range taxonomy.Schemes {
		v.schemes[s] = col
		col++
	}
	v.colPub = col
	col++
	v.colRisk = col
	col++
	v.colVerif = col
	col++
	v.numeric[int32(v.colPub)] = true
	v.numeric[int32(v.colRisk)] = true
	v.numeric[int32(v.colVerif)] = true
	for _, c := range cats {
		v.cats[c] = col
		col++
	}
	for _, s := range supers {
		v.supers[s] = col
		col++
	}
	for _, s := range subs {
		v.subs[s] = col
		col++
	}
	for _, a := range apps {
		v.apps[a] = col
		col++
	}
	v.size = col
	return v
}

func setToSorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of feature columns.
func (v *Vocabulary) Size() int { return v.size }

// NumericCols returns the set of mean-aggregated columns (the public flag
// and the two reputation features; everything else ORs). The map is shared:
// callers must not mutate it.
func (v *Vocabulary) NumericCols() map[int32]bool { return v.numeric }

// GroupCounts returns the number of columns per group in Table I order,
// plus the total, reproducing Table I of the paper.
func (v *Vocabulary) GroupCounts() (counts [9]int, total int) {
	counts = [9]int{
		len(v.actions), len(v.schemes), 1, 1, 1,
		len(v.cats), len(v.supers), len(v.subs), len(v.apps),
	}
	return counts, v.size
}

// Extract encodes one transaction as a sparse feature vector per
// Sect. III-B: bag-of-words presence columns for action, scheme, category,
// media super/sub-type and application type; numeric columns for the
// public-destination flag, reputation risk and reputation-verified.
// Values absent from the vocabulary contribute no column.
func (v *Vocabulary) Extract(tx *weblog.Transaction) sparse.Vector {
	out := sparse.Vector{Idx: make([]int32, 0, 10), Val: make([]float64, 0, 10)}
	v.ExtractInto(tx, &out)
	return out
}

// ExtractInto is Extract writing into dst's backing arrays (length reset to
// zero, grown only when the transaction has more columns than any before).
// It is the streaming hot path's extractor: once dst has warmed up, a call
// allocates nothing. dst is only valid until the next ExtractInto with the
// same destination.
func (v *Vocabulary) ExtractInto(tx *weblog.Transaction, dst *sparse.Vector) {
	// Columns are assigned in strictly increasing group order, and within
	// a group lookups may hit at most one column, so indexes collected in
	// group order arrive sorted — no sort needed. A transaction never emits
	// a zero value: presence columns are 1 by construction and a zero
	// reputation risk is skipped like an absent column.
	idx, val := dst.Idx[:0], dst.Val[:0]
	if c, ok := v.actions[tx.Action]; ok {
		idx, val = append(idx, int32(c)), append(val, 1)
	}
	if c, ok := v.schemes[tx.Scheme]; ok {
		idx, val = append(idx, int32(c)), append(val, 1)
	}
	if tx.Private {
		idx, val = append(idx, int32(v.colPub)), append(val, 1)
	}
	if risk := tx.Reputation.Risk(); risk != 0 {
		idx, val = append(idx, int32(v.colRisk)), append(val, risk)
	}
	if tx.Reputation.Verified() {
		idx, val = append(idx, int32(v.colVerif)), append(val, 1)
	}
	if c, ok := v.cats[tx.Category]; ok {
		idx, val = append(idx, int32(c)), append(val, 1)
	}
	if !tx.MediaType.IsZero() {
		if c, ok := v.supers[tx.MediaType.Super]; ok {
			idx, val = append(idx, int32(c)), append(val, 1)
		}
		if c, ok := v.subs[tx.MediaType.Sub]; ok {
			idx, val = append(idx, int32(c)), append(val, 1)
		}
	}
	if c, ok := v.apps[tx.AppType]; ok {
		idx, val = append(idx, int32(c)), append(val, 1)
	}
	dst.Idx, dst.Val = idx, val
}

// vocabularyJSON is the serialized form of a Vocabulary. Explicit
// value→column maps are stored (rather than ordered pools) because
// Extend-ed vocabularies interleave group columns; the fixed layout
// (actions, schemes, numeric columns) is reconstructed.
type vocabularyJSON struct {
	Categories map[string]int `json:"categories"`
	SuperTypes map[string]int `json:"super_types"`
	SubTypes   map[string]int `json:"sub_types"`
	AppTypes   map[string]int `json:"app_types"`
	Size       int            `json:"size"`
}

// MarshalJSON serializes the vocabulary.
func (v *Vocabulary) MarshalJSON() ([]byte, error) {
	return json.Marshal(vocabularyJSON{
		Categories: v.cats,
		SuperTypes: v.supers,
		SubTypes:   v.subs,
		AppTypes:   v.apps,
		Size:       v.size,
	})
}

// UnmarshalJSON restores a vocabulary serialized by MarshalJSON and
// validates the column assignment.
func (v *Vocabulary) UnmarshalJSON(data []byte) error {
	var j vocabularyJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	base := assemble(nil, nil, nil, nil)
	base.cats = orEmpty(j.Categories)
	base.supers = orEmpty(j.SuperTypes)
	base.subs = orEmpty(j.SubTypes)
	base.apps = orEmpty(j.AppTypes)
	base.size = j.Size
	if err := base.validateColumns(); err != nil {
		return err
	}
	*v = *base
	return nil
}

func orEmpty(m map[string]int) map[string]int {
	if m == nil {
		return map[string]int{}
	}
	return m
}

// validateColumns checks that data-driven columns are distinct, above the
// fixed region, and below size.
func (v *Vocabulary) validateColumns() error {
	const fixed = 9 // 4 actions + 2 schemes + 3 numeric
	if v.size < fixed {
		return fmt.Errorf("features: vocabulary size %d below fixed region %d", v.size, fixed)
	}
	seen := make(map[int]string, v.size)
	for _, group := range []map[string]int{v.cats, v.supers, v.subs, v.apps} {
		for val, col := range group {
			if col < fixed || col >= v.size {
				return fmt.Errorf("features: column %d for %q out of range [%d, %d)", col, val, fixed, v.size)
			}
			if prev, dup := seen[col]; dup {
				return fmt.Errorf("features: column %d assigned to both %q and %q", col, prev, val)
			}
			seen[col] = val
		}
	}
	return nil
}

// ColumnName returns a human-readable name for column i, for debugging and
// experiment reports.
func (v *Vocabulary) ColumnName(i int) string {
	switch i {
	case v.colPub:
		return "public-address-flag"
	case v.colRisk:
		return "reputation-risk"
	case v.colVerif:
		return "reputation-verified"
	}
	for _, g := range []struct {
		prefix string
		m      map[string]int
	}{
		{"action:", v.actions}, {"scheme:", v.schemes}, {"category:", v.cats},
		{"supertype:", v.supers}, {"subtype:", v.subs}, {"application:", v.apps},
	} {
		for name, col := range g.m {
			if col == i {
				return g.prefix + name
			}
		}
	}
	return fmt.Sprintf("column(%d)", i)
}

// Extend returns a vocabulary containing every column of v — with
// unchanged column ids — plus new columns for label values observed in
// txs but absent from v. Models trained against v stay valid against the
// extended vocabulary (their support vectors reference unchanged ids),
// which is how a long-running deployment absorbs new services without
// immediate retraining.
func (v *Vocabulary) Extend(txs []weblog.Transaction) *Vocabulary {
	out := &Vocabulary{
		actions:  v.actions,
		schemes:  v.schemes,
		colPub:   v.colPub,
		colRisk:  v.colRisk,
		colVerif: v.colVerif,
		cats:     cloneCols(v.cats),
		supers:   cloneCols(v.supers),
		subs:     cloneCols(v.subs),
		apps:     cloneCols(v.apps),
		size:     v.size,
		numeric:  v.numeric,
	}
	// Collect new values in first-seen order, then append columns in
	// sorted order per group for determinism.
	newCats := map[string]bool{}
	newSupers := map[string]bool{}
	newSubs := map[string]bool{}
	newApps := map[string]bool{}
	for i := range txs {
		tx := &txs[i]
		if tx.Category != "" {
			if _, ok := out.cats[tx.Category]; !ok {
				newCats[tx.Category] = true
			}
		}
		if !tx.MediaType.IsZero() {
			if _, ok := out.supers[tx.MediaType.Super]; !ok {
				newSupers[tx.MediaType.Super] = true
			}
			if _, ok := out.subs[tx.MediaType.Sub]; !ok {
				newSubs[tx.MediaType.Sub] = true
			}
		}
		if tx.AppType != "" {
			if _, ok := out.apps[tx.AppType]; !ok {
				newApps[tx.AppType] = true
			}
		}
	}
	for _, group := range []struct {
		fresh map[string]bool
		into  map[string]int
	}{
		{newCats, out.cats}, {newSupers, out.supers},
		{newSubs, out.subs}, {newApps, out.apps},
	} {
		for _, val := range setToSorted(group.fresh) {
			group.into[val] = out.size
			out.size++
		}
	}
	return out
}

func cloneCols(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
