package features

import (
	"reflect"
	"testing"
	"time"

	"webtxprofile/internal/sparse"
	"webtxprofile/internal/weblog"
)

// TestExtractIntoMatchesExtract pins the scratch extractor to the
// allocating one across the corpus variants (including the zero media type
// and the unverified reputation, whose risk column is skipped).
func TestExtractIntoMatchesExtract(t *testing.T) {
	vocab := Build(corpus())
	var scratch sparse.Vector
	for i, tr := range corpus() {
		want := vocab.Extract(&tr)
		vocab.ExtractInto(&tr, &scratch)
		if !reflect.DeepEqual(want.Idx, scratch.Idx) || !reflect.DeepEqual(want.Val, scratch.Val) {
			t.Errorf("tx %d: ExtractInto %+v, Extract %+v", i, scratch, want)
		}
	}
}

// TestExtractIntoAllocs gates the extractor's budget: with a warm
// destination, extraction allocates nothing.
func TestExtractIntoAllocs(t *testing.T) {
	vocab := Build(corpus())
	tr := corpus()[0]
	var scratch sparse.Vector
	vocab.ExtractInto(&tr, &scratch)
	if avg := testing.AllocsPerRun(200, func() {
		vocab.ExtractInto(&tr, &scratch)
	}); avg > 0 {
		t.Errorf("warm ExtractInto allocates %.1f times per tx, want 0", avg)
	}
}

// TestStreamerFeedAllocs gates the whole steady-state feed path: parsing a
// log line and feeding it through a long-running streamer — windows
// emitting as they complete — must average at most 2 allocations per
// transaction. The budget covers the collector's per-line string plus the
// slices an emitted Window legitimately carries away; the per-window maps
// and extract vectors the path used to allocate would blow it immediately.
func TestStreamerFeedAllocs(t *testing.T) {
	vocab := Build(corpus())
	s, err := NewStreamer(vocab, WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, len(corpus()))
	for i, tr := range corpus() {
		tr.Timestamp = time.Time{} // timestamp is re-stamped per feed below
		lines[i] = tx(0, tr.UserID, tr.Category, tr.AppType, tr.MediaType, tr.Reputation).MarshalLine()
	}
	var fed int
	const perRun = 120
	feed := func(tb testing.TB) {
		for i := 0; i < perRun; i++ {
			tr, err := weblog.ParseLine(lines[fed%len(lines)])
			if err != nil {
				tb.Fatal(err)
			}
			tr.Timestamp = t0.Add(time.Duration(fed) * time.Second)
			fed++
			if _, err := s.Add(tr); err != nil {
				tb.Fatal(err)
			}
		}
	}
	feed(t) // warm-up: grows the buffer, accumulator scratch and user tally
	avg := testing.AllocsPerRun(20, func() { feed(t) })
	if perTx := avg / perRun; perTx > 2 {
		t.Errorf("feed path allocates %.2f times per tx, want <= 2", perTx)
	}
}
