package features

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

var t0 = time.Date(2015, 5, 29, 5, 0, 0, 0, time.UTC)

func tx(offset time.Duration, user, category, app string, mt taxonomy.MediaType, rep taxonomy.Reputation) weblog.Transaction {
	return weblog.Transaction{
		Timestamp:  t0.Add(offset),
		Host:       "www.example.com",
		Scheme:     taxonomy.SchemeHTTP,
		Action:     taxonomy.ActionGet,
		UserID:     user,
		SourceIP:   "10.0.0.1",
		Category:   category,
		MediaType:  mt,
		AppType:    app,
		Reputation: rep,
	}
}

func corpus() []weblog.Transaction {
	return []weblog.Transaction{
		tx(0, "user_1", "Games", "Rhapsody", taxonomy.MediaType{Super: "text", Sub: "html"}, taxonomy.MinimalRisk),
		tx(10*time.Second, "user_1", "News", "CloudFlare", taxonomy.MediaType{Super: "video", Sub: "mp4"}, taxonomy.MediumRisk),
		tx(20*time.Second, "user_2", "Games", "", taxonomy.MediaType{}, taxonomy.Unverified),
	}
}

func TestBuildVocabularyLayout(t *testing.T) {
	v := Build(corpus())
	counts, total := v.GroupCounts()
	want := [9]int{4, 2, 1, 1, 1, 2, 2, 2, 2}
	if counts != want {
		t.Errorf("GroupCounts = %v, want %v", counts, want)
	}
	if total != 17 || v.Size() != 17 {
		t.Errorf("Size = %d, want 17", v.Size())
	}
	if len(v.NumericCols()) != 3 {
		t.Errorf("numeric cols = %v", v.NumericCols())
	}
}

func TestBuildFullMatchesTableI(t *testing.T) {
	v := BuildFull(taxonomy.Default())
	counts, total := v.GroupCounts()
	want := [9]int{4, 2, 1, 1, 1, 105, 8, 257, 464}
	if counts != want {
		t.Errorf("GroupCounts = %v, want %v", counts, want)
	}
	if total != 843 {
		t.Errorf("total columns = %d, want 843 (Table I)", total)
	}
}

func TestExtract(t *testing.T) {
	v := Build(corpus())
	c := corpus()

	x := v.Extract(&c[0]) // GET, HTTP, Games, text/html, Rhapsody, minimal
	if err := x.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// GET is column 0, HTTP is column 4 (after the 4 actions).
	if x.At(0) != 1 {
		t.Error("GET column not set")
	}
	if x.At(4) != 1 {
		t.Error("HTTP column not set")
	}
	// minimal risk: verified=1, risk=0 (not stored).
	if x.At(8) != 1 { // colVerif = 4+2+1+1 = 8
		t.Error("verified column not set for minimal-risk")
	}
	if x.At(7) != 0 {
		t.Error("risk column set for minimal-risk")
	}

	y := v.Extract(&c[1]) // medium risk
	if y.At(7) != 0.5 {
		t.Errorf("risk column = %v, want 0.5", y.At(7))
	}

	z := v.Extract(&c[2]) // unverified, no media, no app
	if z.At(8) != 0 || z.At(7) != 0 {
		t.Error("unverified transaction has reputation columns set")
	}
	// Exactly: GET, HTTP, Games => 3 non-zeros.
	if z.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3 (%v)", z.NNZ(), z)
	}
}

func TestExtractUnknownValuesIgnored(t *testing.T) {
	v := Build(corpus())
	u := tx(0, "user_9", "NeverSeen", "NoSuchApp", taxonomy.MediaType{Super: "font", Sub: "woff"}, taxonomy.MinimalRisk)
	x := v.Extract(&u)
	// Only action, scheme, verified survive.
	if x.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3 (%v)", x.NNZ(), x)
	}
}

func TestExtractPrivateFlag(t *testing.T) {
	v := Build(corpus())
	p := tx(0, "user_1", "Games", "", taxonomy.MediaType{}, taxonomy.Unverified)
	p.Private = true
	x := v.Extract(&p)
	if x.At(6) != 1 { // colPub = 4+2 = 6
		t.Error("public-address flag not set for private destination")
	}
}

func TestVocabularyJSONRoundTrip(t *testing.T) {
	v := Build(corpus())
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Vocabulary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Size() != v.Size() {
		t.Fatalf("size mismatch %d != %d", back.Size(), v.Size())
	}
	c := corpus()
	for i := range c {
		a, b := v.Extract(&c[i]), back.Extract(&c[i])
		if !reflect.DeepEqual(a, b) {
			t.Errorf("transaction %d extracts differently after round trip", i)
		}
	}
}

func TestColumnName(t *testing.T) {
	v := Build(corpus())
	if got := v.ColumnName(0); got != "action:GET" {
		t.Errorf("ColumnName(0) = %q", got)
	}
	if got := v.ColumnName(6); got != "public-address-flag" {
		t.Errorf("ColumnName(6) = %q", got)
	}
	if got := v.ColumnName(999); got != "column(999)" {
		t.Errorf("ColumnName(999) = %q", got)
	}
}

func TestWindowConfigValidate(t *testing.T) {
	good := WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []WindowConfig{
		{Duration: 0, Shift: time.Second},
		{Duration: time.Minute, Shift: 0},
		{Duration: time.Second, Shift: time.Minute},
		{Duration: -time.Minute, Shift: -time.Minute},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %v accepted", c)
		}
	}
}

// windowCorpus spreads transactions over 3 minutes: 3 in minute one,
// 1 in minute two, none in minute three, 1 at 3m30s.
func windowCorpus() []weblog.Transaction {
	return []weblog.Transaction{
		tx(0, "user_1", "Games", "Rhapsody", taxonomy.MediaType{Super: "text", Sub: "html"}, taxonomy.MinimalRisk),
		tx(15*time.Second, "user_1", "News", "CloudFlare", taxonomy.MediaType{Super: "video", Sub: "mp4"}, taxonomy.MediumRisk),
		tx(45*time.Second, "user_2", "Games", "", taxonomy.MediaType{}, taxonomy.Unverified),
		tx(70*time.Second, "user_1", "Games", "Rhapsody", taxonomy.MediaType{Super: "text", Sub: "html"}, taxonomy.HighRisk),
		tx(210*time.Second, "user_1", "News", "CloudFlare", taxonomy.MediaType{Super: "video", Sub: "mp4"}, taxonomy.MinimalRisk),
	}
}

func TestComposeBasic(t *testing.T) {
	txs := windowCorpus()
	v := Build(txs)
	cfg := WindowConfig{Duration: time.Minute, Shift: time.Minute}
	ws, err := Compose(v, cfg, txs, "user_1")
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	// Windows anchored at t0: [0,60) has 3 txs, [60,120) has 1, [120,180)
	// empty (skipped), [180,240) has 1.
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3: %+v", len(ws), ws)
	}
	if ws[0].Count != 3 || ws[1].Count != 1 || ws[2].Count != 1 {
		t.Errorf("window counts = %d,%d,%d", ws[0].Count, ws[1].Count, ws[2].Count)
	}
	if !ws[0].Start.Equal(t0) || !ws[0].End.Equal(t0.Add(time.Minute)) {
		t.Errorf("window 0 span %v..%v", ws[0].Start, ws[0].End)
	}
	if ws[2].Start != t0.Add(3*time.Minute) {
		t.Errorf("window 2 start %v", ws[2].Start)
	}
	if ws[0].Entity != "user_1" {
		t.Errorf("entity = %q", ws[0].Entity)
	}
	if ws[0].UserCounts["user_1"] != 2 || ws[0].UserCounts["user_2"] != 1 {
		t.Errorf("user counts = %v", ws[0].UserCounts)
	}
	if ws[0].DominantUser() != "user_1" {
		t.Errorf("dominant = %q", ws[0].DominantUser())
	}
}

func TestComposeOverlap(t *testing.T) {
	txs := windowCorpus()
	v := Build(txs)
	cfg := WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}
	ws, err := Compose(v, cfg, txs, "x")
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	// Overlapping windows: [0,60) count 3, [30,90) count 2, [60,120) count
	// 1, [90,150)/[120,180)/[150,210) empty, [180,240) count 1, [210,270)
	// count 1.
	counts := make([]int, len(ws))
	for i := range ws {
		counts[i] = ws[i].Count
	}
	want := []int{3, 2, 1, 1, 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
}

func TestComposeAggregation(t *testing.T) {
	txs := windowCorpus()[:3] // first three in one window
	v := Build(windowCorpus())
	cfg := WindowConfig{Duration: time.Minute, Shift: time.Minute}
	ws, err := Compose(v, cfg, txs, "x")
	if err != nil || len(ws) != 1 {
		t.Fatalf("Compose: %v (%d windows)", err, len(ws))
	}
	vec := ws[0].Vector
	// risk mean: (0 + 0.5 + 0)/3
	if math.Abs(vec.At(7)-0.5/3) > 1e-9 {
		t.Errorf("risk mean = %v", vec.At(7))
	}
	// verified mean: (1+1+0)/3
	if math.Abs(vec.At(8)-2.0/3) > 1e-9 {
		t.Errorf("verified mean = %v", vec.At(8))
	}
	// GET OR'd across all three.
	if vec.At(0) != 1 {
		t.Error("GET column not 1")
	}
}

func TestComposeRejectsUnsorted(t *testing.T) {
	txs := windowCorpus()
	txs[0], txs[1] = txs[1], txs[0]
	v := Build(txs)
	if _, err := Compose(v, WindowConfig{Duration: time.Minute, Shift: time.Minute}, txs, "x"); err == nil {
		t.Error("Compose accepted unsorted input")
	}
}

func TestComposeEmptyInput(t *testing.T) {
	v := Build(nil)
	ws, err := Compose(v, WindowConfig{Duration: time.Minute, Shift: time.Minute}, nil, "x")
	if err != nil || ws != nil {
		t.Errorf("empty compose: %v, %v", ws, err)
	}
}

func TestComposeUsersAndHosts(t *testing.T) {
	txs := windowCorpus()
	ds := weblog.FromTransactions(txs)
	v := BuildFromDataset(ds)
	cfg := WindowConfig{Duration: time.Minute, Shift: time.Minute}
	byUser, err := ComposeUsers(v, cfg, ds)
	if err != nil {
		t.Fatalf("ComposeUsers: %v", err)
	}
	if len(byUser) != 2 {
		t.Fatalf("got %d users", len(byUser))
	}
	for u, ws := range byUser {
		for _, w := range ws {
			if len(w.UserCounts) != 1 || w.UserCounts[u] != w.Count {
				t.Errorf("user window for %s contains foreign transactions: %v", u, w.UserCounts)
			}
		}
	}
	byHost, err := ComposeHosts(v, cfg, ds)
	if err != nil {
		t.Fatalf("ComposeHosts: %v", err)
	}
	// All transactions share one source address.
	if len(byHost) != 1 {
		t.Fatalf("got %d hosts", len(byHost))
	}
}

func TestStreamerMatchesCompose(t *testing.T) {
	configs := []WindowConfig{
		{Duration: time.Minute, Shift: time.Minute},
		{Duration: time.Minute, Shift: 30 * time.Second},
		{Duration: 90 * time.Second, Shift: 10 * time.Second},
	}
	txs := windowCorpus()
	v := Build(txs)
	for _, cfg := range configs {
		want, err := Compose(v, cfg, txs, "x")
		if err != nil {
			t.Fatalf("Compose: %v", err)
		}
		st, err := NewStreamer(v, cfg, "x")
		if err != nil {
			t.Fatalf("NewStreamer: %v", err)
		}
		var got []Window
		for _, x := range txs {
			ws, err := st.Add(x)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			got = append(got, ws...)
		}
		got = append(got, st.Close()...)
		if len(got) != len(want) {
			t.Fatalf("%v: streamer emitted %d windows, compose %d", cfg, len(got), len(want))
		}
		for i := range got {
			if !got[i].Start.Equal(want[i].Start) || got[i].Count != want[i].Count {
				t.Errorf("%v: window %d differs: %+v vs %+v", cfg, i, got[i], want[i])
			}
			if got[i].Vector.Key() != want[i].Vector.Key() {
				t.Errorf("%v: window %d vectors differ", cfg, i)
			}
		}
		if st.Emitted() != len(want) {
			t.Errorf("Emitted = %d, want %d", st.Emitted(), len(want))
		}
	}
}

// TestStreamerSnapshotResume is the durable-state property: snapshotting a
// streamer at any point of the stream — with the state pushed through a
// JSON round trip, as the core state store does — and restoring it must
// produce exactly the window sequence of the uninterrupted run (which
// TestStreamerMatchesCompose pins to Compose). Splits at every index cover
// the edge positions: before the anchor, mid-window, and on window
// boundaries.
func TestStreamerSnapshotResume(t *testing.T) {
	configs := []WindowConfig{
		{Duration: time.Minute, Shift: time.Minute},
		{Duration: time.Minute, Shift: 30 * time.Second},
		{Duration: 90 * time.Second, Shift: 10 * time.Second},
	}
	txs := windowCorpus()
	v := Build(txs)
	for _, cfg := range configs {
		want, err := Compose(v, cfg, txs, "x")
		if err != nil {
			t.Fatalf("Compose: %v", err)
		}
		for split := 0; split <= len(txs); split++ {
			st, err := NewStreamer(v, cfg, "x")
			if err != nil {
				t.Fatal(err)
			}
			var got []Window
			for _, x := range txs[:split] {
				ws, err := st.Add(x)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, ws...)
			}
			blob, err := json.Marshal(st.Snapshot())
			if err != nil {
				t.Fatalf("marshal state: %v", err)
			}
			var state StreamerState
			if err := json.Unmarshal(blob, &state); err != nil {
				t.Fatalf("unmarshal state: %v", err)
			}
			resumed, err := RestoreStreamer(v, cfg, state)
			if err != nil {
				t.Fatalf("RestoreStreamer at split %d: %v", split, err)
			}
			for _, x := range txs[split:] {
				ws, err := resumed.Add(x)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, ws...)
			}
			got = append(got, resumed.Close()...)
			if len(got) != len(want) {
				t.Fatalf("%v split %d: %d windows, want %d", cfg, split, len(got), len(want))
			}
			for i := range got {
				if !got[i].Start.Equal(want[i].Start) || !got[i].End.Equal(want[i].End) ||
					got[i].Count != want[i].Count || got[i].Vector.Key() != want[i].Vector.Key() {
					t.Errorf("%v split %d: window %d differs: %+v vs %+v", cfg, split, i, got[i], want[i])
				}
			}
			if resumed.Emitted() != len(want) {
				t.Errorf("%v split %d: Emitted = %d, want %d (emit count not restored)",
					cfg, split, resumed.Emitted(), len(want))
			}
		}
	}
}

// TestRestoreStreamerRejectsCorruptState covers the validation paths of
// RestoreStreamer.
func TestRestoreStreamerRejectsCorruptState(t *testing.T) {
	txs := windowCorpus()
	v := Build(txs)
	cfg := WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}
	st, err := NewStreamer(v, cfg, "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range txs {
		if _, err := st.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	good := st.Snapshot()

	if _, err := RestoreStreamer(v, WindowConfig{}, good); err == nil {
		t.Error("invalid window config accepted")
	}
	bad := good
	bad.NextIdx = -1
	if _, err := RestoreStreamer(v, cfg, bad); err == nil {
		t.Error("negative next index accepted")
	}
	bad = good
	bad.Anchor = nil
	if _, err := RestoreStreamer(v, cfg, bad); err == nil {
		t.Error("anchored state without anchor accepted")
	}
	bad = good
	bad.Anchored = false
	if _, err := RestoreStreamer(v, cfg, bad); err == nil {
		t.Error("unanchored state with buffered transactions accepted")
	}
	if len(good.Buffered) >= 2 {
		bad = good
		bad.Buffered = append([]weblog.Transaction(nil), good.Buffered...)
		bad.Buffered[0], bad.Buffered[1] = bad.Buffered[1], bad.Buffered[0]
		if bad.Buffered[0].Timestamp.Equal(bad.Buffered[1].Timestamp) {
			t.Skip("corpus buffer lacks distinct timestamps for the order check")
		}
		if _, err := RestoreStreamer(v, cfg, bad); err == nil {
			t.Error("out-of-order buffer accepted")
		}
	}
	bad = good
	earlier := *good.Anchor
	earlier.Timestamp = good.Buffered[len(good.Buffered)-1].Timestamp.Add(-time.Hour)
	bad.LastSeen = &earlier
	if _, err := RestoreStreamer(v, cfg, bad); err == nil {
		t.Error("last-seen before buffered tail accepted")
	}

	// A closed streamer's state restores closed: Add must keep failing.
	st.Close()
	resumed, err := RestoreStreamer(v, cfg, st.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Add(txs[len(txs)-1]); err == nil {
		t.Error("Add accepted on a restored closed streamer")
	}
}

func TestStreamerRejectsOutOfOrder(t *testing.T) {
	txs := windowCorpus()
	v := Build(txs)
	st, err := NewStreamer(v, WindowConfig{Duration: time.Minute, Shift: time.Minute}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(txs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(txs[0]); err == nil {
		t.Error("accepted out-of-order transaction")
	}
}

func TestStreamerCloseIdempotent(t *testing.T) {
	v := Build(nil)
	st, err := NewStreamer(v, WindowConfig{Duration: time.Minute, Shift: time.Minute}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if ws := st.Close(); ws != nil {
		t.Errorf("Close on empty streamer: %v", ws)
	}
	if ws := st.Close(); ws != nil {
		t.Errorf("second Close: %v", ws)
	}
	if _, err := st.Add(windowCorpus()[0]); err == nil {
		t.Error("Add after Close succeeded")
	}
}

func TestVectorsProjection(t *testing.T) {
	txs := windowCorpus()
	v := Build(txs)
	ws, err := Compose(v, WindowConfig{Duration: time.Minute, Shift: time.Minute}, txs, "x")
	if err != nil {
		t.Fatal(err)
	}
	vecs := Vectors(ws)
	if len(vecs) != len(ws) {
		t.Fatalf("got %d vectors", len(vecs))
	}
	for i := range vecs {
		if vecs[i].Key() != ws[i].Vector.Key() {
			t.Errorf("vector %d differs", i)
		}
	}
}

func TestGroupString(t *testing.T) {
	if GroupAction.String() != "http action" || GroupAppType.String() != "application type" {
		t.Error("group names wrong")
	}
	if Group(99).String() != "group(99)" {
		t.Error("out-of-range group name wrong")
	}
}

func TestVocabularyExtend(t *testing.T) {
	base := Build(corpus())
	// New transactions introduce a category, a media type and an app the
	// base never saw.
	fresh := []weblog.Transaction{
		tx(0, "user_3", "Travel", "Spotify", taxonomy.MediaType{Super: "audio", Sub: "mp3"}, taxonomy.MinimalRisk),
	}
	ext := base.Extend(fresh)
	if ext.Size() <= base.Size() {
		t.Fatalf("extended size %d not larger than base %d", ext.Size(), base.Size())
	}
	// Base columns keep their ids: every base-corpus transaction extracts
	// identically under both vocabularies.
	c := corpus()
	for i := range c {
		a, b := base.Extract(&c[i]), ext.Extract(&c[i])
		if a.Key() != b.Key() {
			t.Errorf("transaction %d extracts differently after Extend", i)
		}
	}
	// The fresh transaction gains columns under the extended vocabulary.
	before := base.Extract(&fresh[0]).NNZ()
	after := ext.Extract(&fresh[0]).NNZ()
	if after <= before {
		t.Errorf("fresh transaction NNZ %d -> %d, want growth", before, after)
	}
	// Group counts reflect the additions.
	baseCounts, _ := base.GroupCounts()
	extCounts, _ := ext.GroupCounts()
	if extCounts[5] != baseCounts[5]+1 { // category group
		t.Errorf("category count %d -> %d", baseCounts[5], extCounts[5])
	}
	// Extending with nothing new is a no-op size-wise.
	same := ext.Extend(fresh)
	if same.Size() != ext.Size() {
		t.Errorf("no-op extend grew vocabulary: %d -> %d", ext.Size(), same.Size())
	}
}

func TestVocabularyExtendJSONRoundTrip(t *testing.T) {
	base := Build(corpus())
	fresh := []weblog.Transaction{
		tx(0, "user_3", "Travel", "Spotify", taxonomy.MediaType{Super: "audio", Sub: "mp3"}, taxonomy.MinimalRisk),
	}
	ext := base.Extend(fresh)
	data, err := json.Marshal(ext)
	if err != nil {
		t.Fatal(err)
	}
	var back Vocabulary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Size() != ext.Size() {
		t.Fatalf("size drift %d != %d", back.Size(), ext.Size())
	}
	probe := append(corpus(), fresh...)
	for i := range probe {
		if ext.Extract(&probe[i]).Key() != back.Extract(&probe[i]).Key() {
			t.Errorf("transaction %d extracts differently after round trip", i)
		}
	}
}

func TestComposeCountConservation(t *testing.T) {
	// With S == D (non-overlapping windows), every transaction lands in
	// exactly one window: window counts must sum to the input length.
	f := func(gaps []uint16) bool {
		if len(gaps) == 0 || len(gaps) > 200 {
			return true
		}
		txs := make([]weblog.Transaction, len(gaps))
		ts := t0
		for i, gp := range gaps {
			ts = ts.Add(time.Duration(gp%5000) * time.Millisecond)
			txs[i] = tx(ts.Sub(t0), "u", "Games", "Rhapsody",
				taxonomy.MediaType{Super: "text", Sub: "html"}, taxonomy.MinimalRisk)
		}
		v := Build(txs)
		ws, err := Compose(v, WindowConfig{Duration: time.Minute, Shift: time.Minute}, txs, "u")
		if err != nil {
			return false
		}
		total := 0
		for i := range ws {
			total += ws[i].Count
		}
		return total == len(txs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComposeOverlapCountConservation(t *testing.T) {
	// With S = D/2, interior transactions appear in exactly two windows;
	// total window count is between n and 2n.
	f := func(gaps []uint16) bool {
		if len(gaps) < 2 || len(gaps) > 200 {
			return true
		}
		txs := make([]weblog.Transaction, len(gaps))
		ts := t0
		for i, gp := range gaps {
			ts = ts.Add(time.Duration(gp%3000) * time.Millisecond)
			txs[i] = tx(ts.Sub(t0), "u", "Games", "Rhapsody",
				taxonomy.MediaType{Super: "text", Sub: "html"}, taxonomy.MinimalRisk)
		}
		v := Build(txs)
		ws, err := Compose(v, WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}, txs, "u")
		if err != nil {
			return false
		}
		total := 0
		for i := range ws {
			total += ws[i].Count
		}
		return total >= len(txs) && total <= 2*len(txs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWindowVectorsValidate(t *testing.T) {
	// Every composed window vector satisfies the sparse invariants and
	// stays within the vocabulary dimensionality.
	txs := windowCorpus()
	v := Build(txs)
	ws, err := Compose(v, WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}, txs, "u")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if err := ws[i].Vector.Validate(); err != nil {
			t.Errorf("window %d: %v", i, err)
		}
		if n := ws[i].Vector.NNZ(); n > 0 && int(ws[i].Vector.Idx[n-1]) >= v.Size() {
			t.Errorf("window %d exceeds vocabulary", i)
		}
	}
}
