// Package grid implements the paper's learning-parameter optimization
// (Sect. IV-C): a global grid search over window duration D and shifting
// factor S (Table II) and a per-user grid search over the kernel and the
// ν/C parameter (Table III), both scored by the global acceptance
// ACC = ACC_self − ACC_other. Work distributes over a bounded worker pool.
package grid

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/weblog"
)

// PaperParams are the ν/C grid values of Table III, in row order.
var PaperParams = []float64{
	0.999, 0.99, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1,
	0.05, 0.01, 0.001,
}

// PaperWindowCombos returns the (D, S) combinations of Table II.
func PaperWindowCombos() []features.WindowConfig {
	m := func(d, s int) features.WindowConfig {
		return features.WindowConfig{
			Duration: time.Duration(d) * time.Second,
			Shift:    time.Duration(s) * time.Second,
		}
	}
	return []features.WindowConfig{
		m(60, 6), m(60, 30), m(300, 60), m(600, 60), m(1800, 300), m(3600, 300),
	}
}

// PaperKernels returns the four Table III kernel columns with LIBSVM-style
// defaults scaled to the feature dimensionality (γ = 1/dim).
func PaperKernels(dim int) []svm.Kernel {
	gamma := 1.0
	if dim > 0 {
		gamma = 1 / float64(dim)
	}
	return []svm.Kernel{
		svm.Linear(),
		svm.Poly(gamma, 0, 3),
		svm.RBF(gamma),
		svm.Sigmoid(gamma, 0),
	}
}

// Config bounds the cost of a search on large corpora; zero values select
// the documented defaults.
type Config struct {
	// Algorithm is OC-SVM or SVDD; required.
	Algorithm svm.Algorithm
	// MaxTrainWindows caps the per-user windows used to fit grid models
	// (chronological prefix; default 600, 0 keeps the default, negative
	// means unlimited).
	MaxTrainWindows int
	// MaxOtherWindows caps the per-user windows used to score ACC_other
	// (uniform subsample; default 200, 0 keeps the default, negative
	// means unlimited).
	MaxOtherWindows int
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Train carries SMO knobs (Eps, MaxIter, CacheMB); the Kernel field
	// is ignored where the grid supplies kernels.
	Train svm.TrainConfig
}

func (c Config) withDefaults() Config {
	if c.MaxTrainWindows == 0 {
		c.MaxTrainWindows = 600
	}
	if c.MaxOtherWindows == 0 {
		c.MaxOtherWindows = 200
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// capPrefix keeps the chronological prefix of windows.
func capPrefix(ws []features.Window, n int) []features.Window {
	if n > 0 && len(ws) > n {
		return ws[:n]
	}
	return ws
}

// subsample keeps at most n windows, uniformly spread (deterministic).
func subsample(ws []features.Window, n int) []features.Window {
	if n <= 0 || len(ws) <= n {
		return ws
	}
	out := make([]features.Window, 0, n)
	step := float64(len(ws)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, ws[int(float64(i)*step)])
	}
	return out
}

// WindowResult is one Table II column: averaged acceptance over users for
// one (D, S) combination.
type WindowResult struct {
	Window features.WindowConfig
	Mean   eval.Acceptance
	// PerUser holds each user's triple in sorted user order.
	PerUser map[string]eval.Acceptance
}

// WindowSearch reproduces the Table II sweep: for each (D, S) combination,
// fit one model per user (fixed kernel and parameter) on the user's
// training windows and score ACC_self on those same windows and ACC_other
// on every other user's training windows, averaging over users — exactly
// the paper's protocol for this table.
func WindowSearch(train *weblog.Dataset, vocab *features.Vocabulary, combos []features.WindowConfig, kernel svm.Kernel, param float64, cfg Config) ([]WindowResult, error) {
	cfg = cfg.withDefaults()
	if len(combos) == 0 {
		return nil, fmt.Errorf("grid: no window combinations")
	}
	users := train.Users()
	if len(users) == 0 {
		return nil, fmt.Errorf("grid: empty training set")
	}
	results := make([]WindowResult, len(combos))
	for ci, combo := range combos {
		windows, err := features.ComposeUsers(vocab, combo, train)
		if err != nil {
			return nil, err
		}
		trainSets := make(map[string][]features.Window, len(users))
		otherSets := make(map[string][]features.Window, len(users))
		for _, u := range users {
			trainSets[u] = capPrefix(windows[u], cfg.MaxTrainWindows)
			otherSets[u] = subsample(windows[u], cfg.MaxOtherWindows)
		}
		models, err := trainAll(users, trainSets, cfg, func(string) svm.Kernel { return kernel }, func(string) float64 { return param })
		if err != nil {
			return nil, err
		}
		res := WindowResult{Window: combo, PerUser: make(map[string]eval.Acceptance, len(users))}
		var selfSum, otherSum float64
		for _, u := range users {
			a := eval.Acceptance{Self: eval.Accept(models[u], trainSets[u])}
			var sum float64
			n := 0
			for _, o := range users {
				if o == u || len(otherSets[o]) == 0 {
					continue
				}
				sum += eval.Accept(models[u], otherSets[o])
				n++
			}
			if n > 0 {
				a.Other = sum / float64(n)
			}
			res.PerUser[u] = a
			selfSum += a.Self
			otherSum += a.Other
		}
		res.Mean = eval.Acceptance{
			Self:  selfSum / float64(len(users)),
			Other: otherSum / float64(len(users)),
		}
		results[ci] = res
	}
	return results, nil
}

// BestWindow returns the combination maximizing mean ACC_self — the
// paper's retention rule for Table II (it keeps D=60s, S=30s for its best
// self-acceptance, not the best global ACC).
func BestWindow(results []WindowResult) (features.WindowConfig, error) {
	if len(results) == 0 {
		return features.WindowConfig{}, fmt.Errorf("grid: no results")
	}
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].Mean.Self > results[best].Mean.Self {
			best = i
		}
	}
	return results[best].Window, nil
}

// ParamCell is one cell of a Table III grid: the acceptance achieved by
// one (kernel, param) pair for one user.
type ParamCell struct {
	Kernel svm.Kernel
	Param  float64
	Acc    eval.Acceptance
	Err    error // training failure for this cell, if any
}

// ParamTable is a full per-user grid (Table III for that user): rows are
// params, columns kernels.
type ParamTable struct {
	User    string
	Params  []float64
	Kernels []svm.Kernel
	Cells   [][]ParamCell // [param][kernel]
}

// Best returns the cell with maximal ACC (ties: first in row-major order,
// matching the paper's table reading order).
func (t *ParamTable) Best() (ParamCell, error) {
	var best *ParamCell
	for i := range t.Cells {
		for j := range t.Cells[i] {
			c := &t.Cells[i][j]
			if c.Err != nil {
				continue
			}
			if best == nil || c.Acc.ACC() > best.Acc.ACC() {
				best = c
			}
		}
	}
	if best == nil {
		return ParamCell{}, fmt.Errorf("grid: no successful cell for %s", t.User)
	}
	return *best, nil
}

// ParamSearch reproduces the Table III per-user optimization for every
// user: for each (kernel, param) cell it fits a model on the user's
// training windows and scores ACC_self on those windows and ACC_other on
// the other users' windows. It returns one full table per user, keyed by
// user id.
func ParamSearch(trainSets map[string][]features.Window, params []float64, kernels []svm.Kernel, cfg Config) (map[string]*ParamTable, error) {
	users := make([]string, 0, len(trainSets))
	for u := range trainSets {
		users = append(users, u)
	}
	sort.Strings(users)
	return ParamSearchUsers(users, trainSets, params, kernels, cfg)
}

// ParamSearchUsers runs the per-user grid only for the named subset while
// still scoring ACC_other against every user present in trainSets — the
// exact setting of the paper's Table III, which shows the full grid for
// user1 alone.
func ParamSearchUsers(subset []string, trainSets map[string][]features.Window, params []float64, kernels []svm.Kernel, cfg Config) (map[string]*ParamTable, error) {
	cfg = cfg.withDefaults()
	if len(params) == 0 || len(kernels) == 0 {
		return nil, fmt.Errorf("grid: empty parameter or kernel grid")
	}
	users := make([]string, 0, len(trainSets))
	for u := range trainSets {
		users = append(users, u)
	}
	sort.Strings(users)
	if len(users) == 0 || len(subset) == 0 {
		return nil, fmt.Errorf("grid: no users")
	}
	for _, u := range subset {
		if _, ok := trainSets[u]; !ok {
			return nil, fmt.Errorf("grid: subset user %q not in training sets", u)
		}
	}

	// Hoist the per-user vector materialization out of the cells: the
	// training vectors are shared by every cell of a user (previously
	// features.Vectors re-allocated the slice for each of the user's
	// params×kernels cells), and the ACC_other probe vectors are shared by
	// every cell of every user.
	trainVecs := make(map[string][]sparse.Vector, len(subset))
	for _, u := range subset {
		trainVecs[u] = features.Vectors(capPrefix(trainSets[u], cfg.MaxTrainWindows))
	}
	otherVecs := make(map[string][]sparse.Vector, len(users))
	for _, u := range users {
		otherVecs[u] = features.Vectors(subsample(trainSets[u], cfg.MaxOtherWindows))
	}

	tables := make(map[string]*ParamTable, len(subset))
	for _, u := range subset {
		t := &ParamTable{User: u, Params: params, Kernels: kernels}
		t.Cells = make([][]ParamCell, len(params))
		for i := range t.Cells {
			t.Cells[i] = make([]ParamCell, len(kernels))
		}
		tables[u] = t
	}

	// Work distributes at (user, kernel)-row granularity rather than per
	// cell: the kernel matrix depends only on the kernel and the training
	// windows — not on ν/C — so all cells of a row share one Gram instead
	// of recomputing kernel columns per cell. One level further down, the
	// dot-product matrix xᵢ·xⱼ depends only on the training windows — every
	// kernel of the paper factors through x·y — so all kernel rows of a
	// user derive their Grams from one shared DotProducts, built lazily by
	// whichever row of the user a worker picks up first.
	type task struct {
		user string
		ki   int
	}
	// One shared dot matrix per user, built lazily by the first of the
	// user's kernel rows a worker picks up and released after the last:
	// pinning every user's dense n×n matrix for the whole search would
	// retain O(users·n²) bytes, while the countdown caps live matrices at
	// the users currently in flight — matching the per-row Gram lifetime
	// the previous code had.
	type userDots struct {
		once sync.Once
		d    *svm.DotProducts
		err  error
		left atomic.Int32
	}
	dots := make(map[string]*userDots, len(subset))
	for _, u := range subset {
		ud := &userDots{}
		ud.left.Store(int32(len(kernels)))
		dots[u] = ud
	}
	tasks := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				ud := dots[tk.user]
				get := func() (*svm.DotProducts, error) {
					ud.once.Do(func() { ud.d, ud.err = svm.NewDotProducts(trainVecs[tk.user]) })
					return ud.d, ud.err
				}
				cells := runRow(tk.user, users, get, trainVecs, otherVecs, params, kernels[tk.ki], cfg)
				if ud.left.Add(-1) == 0 {
					ud.d = nil // every kernel row of the user is done
				}
				for pi := range params {
					tables[tk.user].Cells[pi][tk.ki] = cells[pi]
				}
			}
		}()
	}
	for _, u := range subset {
		for ki := range kernels {
			tasks <- task{user: u, ki: ki}
		}
	}
	close(tasks)
	wg.Wait()
	return tables, nil
}

// runRow fits and scores one (user, kernel) row of the grid: the Gram
// matrix for the row is derived from the user's shared dot-product matrix
// (computed once across all kernel rows of the user) and every ν/C cell of
// the row trains against it.
func runRow(user string, users []string, userDots func() (*svm.DotProducts, error), trainVecs, otherVecs map[string][]sparse.Vector, params []float64, kernel svm.Kernel, cfg Config) []ParamCell {
	cells := make([]ParamCell, len(params))
	for i := range cells {
		cells[i] = ParamCell{Kernel: kernel, Param: params[i]}
	}
	gram, err := func() (*svm.Gram, error) {
		d, err := userDots()
		if err != nil {
			return nil, err
		}
		return svm.NewGramFromDots(d, kernel)
	}()
	if err != nil {
		for i := range cells {
			cells[i].Err = fmt.Errorf("grid: user %s %v: %w", user, kernel, err)
		}
		return cells
	}
	for i, param := range params {
		model, err := svm.TrainGram(cfg.Algorithm, gram, param, cfg.Train)
		if err != nil {
			cells[i].Err = fmt.Errorf("grid: user %s %v param=%g: %w", user, kernel, param, err)
			continue
		}
		cells[i].Acc.Self = model.AcceptanceRatio(trainVecs[user])
		var sum float64
		n := 0
		for _, o := range users {
			if o == user || len(otherVecs[o]) == 0 {
				continue
			}
			sum += model.AcceptanceRatio(otherVecs[o])
			n++
		}
		if n > 0 {
			cells[i].Acc.Other = sum / float64(n)
		}
	}
	return cells
}

// BestParams extracts each user's winning (kernel, param) from the tables.
func BestParams(tables map[string]*ParamTable) (map[string]ParamCell, error) {
	out := make(map[string]ParamCell, len(tables))
	for u, t := range tables {
		best, err := t.Best()
		if err != nil {
			return nil, err
		}
		out[u] = best
	}
	return out, nil
}

// trainAll fits one model per user over a worker pool.
func trainAll(users []string, trainSets map[string][]features.Window, cfg Config, kernelOf func(string) svm.Kernel, paramOf func(string) float64) (map[string]*svm.Model, error) {
	models := make(map[string]*svm.Model, len(users))
	var mu sync.Mutex
	var firstErr error
	tasks := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range tasks {
				tc := cfg.Train
				tc.Kernel = kernelOf(u)
				m, err := svm.Train(cfg.Algorithm, features.Vectors(trainSets[u]), paramOf(u), tc)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("grid: training %s: %w", u, err)
					}
				} else {
					models[u] = m
				}
				mu.Unlock()
			}
		}()
	}
	for _, u := range users {
		tasks <- u
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return models, nil
}
