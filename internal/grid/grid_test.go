package grid

import (
	"math/rand"
	"testing"
	"time"

	"webtxprofile/internal/eval"
	"webtxprofile/internal/features"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

var start = time.Date(2015, 1, 5, 9, 0, 0, 0, time.UTC)

// buildTrainSet synthesizes a small two-user dataset where the users visit
// disjoint categories, trivially separable.
func buildTrainSet() *weblog.Dataset {
	ds := weblog.NewDataset()
	r := rand.New(rand.NewSource(3))
	cats := map[string][]string{
		"user_1": {"Games", "News"},
		"user_2": {"Banking", "Travel"},
	}
	for u, cs := range cats {
		ip := "10.0.0.1"
		if u == "user_2" {
			ip = "10.0.0.2"
		}
		for i := 0; i < 400; i++ {
			ds.Add(weblog.Transaction{
				Timestamp: start.Add(time.Duration(i)*20*time.Second + time.Duration(r.Intn(1000))*time.Millisecond),
				Host:      "h.example.com", Scheme: taxonomy.SchemeHTTP,
				Action: taxonomy.ActionGet, UserID: u, SourceIP: ip,
				Category:   cs[i%len(cs)],
				MediaType:  taxonomy.MediaType{Super: "text", Sub: "html"},
				AppType:    "App" + u,
				Reputation: taxonomy.MinimalRisk,
			})
		}
	}
	ds.SortByTime()
	return ds
}

func TestPaperGrids(t *testing.T) {
	if len(PaperParams) != 15 {
		t.Errorf("PaperParams has %d values, want 15 (Table III rows)", len(PaperParams))
	}
	combos := PaperWindowCombos()
	if len(combos) != 6 {
		t.Fatalf("combos = %d, want 6 (Table II columns)", len(combos))
	}
	for _, c := range combos {
		if err := c.Validate(); err != nil {
			t.Errorf("combo %v invalid: %v", c, err)
		}
	}
	if combos[1].Duration != time.Minute || combos[1].Shift != 30*time.Second {
		t.Errorf("retained combo = %v, want D=60s S=30s", combos[1])
	}
	kernels := PaperKernels(843)
	if len(kernels) != 4 {
		t.Fatalf("kernels = %d", len(kernels))
	}
	for _, k := range kernels {
		if err := k.Validate(); err != nil {
			t.Errorf("kernel %v invalid: %v", k, err)
		}
	}
}

func TestWindowSearch(t *testing.T) {
	ds := buildTrainSet()
	vocab := features.BuildFromDataset(ds)
	combos := []features.WindowConfig{
		{Duration: time.Minute, Shift: 30 * time.Second},
		{Duration: 5 * time.Minute, Shift: time.Minute},
	}
	cfg := Config{Algorithm: svm.SVDD, Workers: 2}
	results, err := WindowSearch(ds, vocab, combos, svm.Linear(), 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Mean.Self < 0.8 {
			t.Errorf("%v: mean self = %v", r.Window, r.Mean.Self)
		}
		if r.Mean.Other > 0.2 {
			t.Errorf("%v: mean other = %v", r.Window, r.Mean.Other)
		}
		if len(r.PerUser) != 2 {
			t.Errorf("%v: per-user = %d entries", r.Window, len(r.PerUser))
		}
	}
	best, err := BestWindow(results)
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Validate(); err != nil {
		t.Errorf("best window invalid: %v", err)
	}
}

func TestWindowSearchErrors(t *testing.T) {
	ds := buildTrainSet()
	vocab := features.BuildFromDataset(ds)
	if _, err := WindowSearch(ds, vocab, nil, svm.Linear(), 0.5, Config{Algorithm: svm.SVDD}); err == nil {
		t.Error("empty combos accepted")
	}
	empty := weblog.NewDataset()
	combos := []features.WindowConfig{{Duration: time.Minute, Shift: time.Minute}}
	if _, err := WindowSearch(empty, vocab, combos, svm.Linear(), 0.5, Config{Algorithm: svm.SVDD}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := BestWindow(nil); err == nil {
		t.Error("BestWindow(nil) succeeded")
	}
}

func windowsFor(t *testing.T, ds *weblog.Dataset) map[string][]features.Window {
	t.Helper()
	vocab := features.BuildFromDataset(ds)
	ws, err := features.ComposeUsers(vocab, features.WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}, ds)
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestParamSearchAndBest(t *testing.T) {
	ds := buildTrainSet()
	ws := windowsFor(t, ds)
	params := []float64{0.5, 0.1}
	kernels := []svm.Kernel{svm.Linear(), svm.RBF(0.1)}
	tables, err := ParamSearch(ws, params, kernels, Config{Algorithm: svm.OCSVM, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for u, tbl := range tables {
		if tbl.User != u || len(tbl.Cells) != 2 || len(tbl.Cells[0]) != 2 {
			t.Fatalf("table shape wrong for %s", u)
		}
		for i := range tbl.Cells {
			for j := range tbl.Cells[i] {
				if tbl.Cells[i][j].Err != nil {
					t.Errorf("%s cell [%d][%d]: %v", u, i, j, tbl.Cells[i][j].Err)
				}
			}
		}
		best, err := tbl.Best()
		if err != nil {
			t.Fatal(err)
		}
		if best.Acc.ACC() < 0.6 {
			t.Errorf("%s best ACC = %v", u, best.Acc.ACC())
		}
	}
	bests, err := BestParams(tables)
	if err != nil {
		t.Fatal(err)
	}
	if len(bests) != 2 {
		t.Errorf("bests = %d", len(bests))
	}
}

// TestParamSearchMatchesPerCellTraining cross-checks the Gram-sharing row
// path against independent per-cell training: every cell's model quality
// triple must be identical, since the shared Gram feeds the solver the
// same kernel matrix the per-cell column cache would compute.
func TestParamSearchMatchesPerCellTraining(t *testing.T) {
	ds := buildTrainSet()
	ws := windowsFor(t, ds)
	params := []float64{0.999, 0.5, 0.1, 0.01}
	kernels := []svm.Kernel{svm.Linear(), svm.Poly(0.1, 0, 3), svm.RBF(0.1), svm.Sigmoid(0.1, 0)}
	cfg := Config{Algorithm: svm.OCSVM, Workers: 2}.withDefaults()
	tables, err := ParamSearch(ws, params, kernels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"user_1", "user_2"}
	for _, u := range users {
		capped := capPrefix(ws[u], cfg.MaxTrainWindows)
		for pi, param := range params {
			for ki, kernel := range kernels {
				cell := tables[u].Cells[pi][ki]
				if cell.Err != nil {
					t.Fatalf("%s cell [%d][%d]: %v", u, pi, ki, cell.Err)
				}
				m, err := svm.Train(cfg.Algorithm, features.Vectors(capped), param, svm.TrainConfig{Kernel: kernel})
				if err != nil {
					t.Fatal(err)
				}
				wantSelf := eval.Accept(m, capped)
				if cell.Acc.Self != wantSelf {
					t.Errorf("%s %v param=%g: grid self %v != per-cell %v",
						u, kernel, param, cell.Acc.Self, wantSelf)
				}
				var sum float64
				n := 0
				for _, o := range users {
					if o == u {
						continue
					}
					sum += eval.Accept(m, subsample(ws[o], cfg.MaxOtherWindows))
					n++
				}
				if wantOther := sum / float64(n); cell.Acc.Other != wantOther {
					t.Errorf("%s %v param=%g: grid other %v != per-cell %v",
						u, kernel, param, cell.Acc.Other, wantOther)
				}
			}
		}
	}
}

// TestParamSearchKernelEvalBudget is the acceptance criterion for the
// Gram-sharing grid: on a Table III-shaped search (full 15-value ν grid),
// ParamSearch must perform at most 1/10 of the kernel evaluations the old
// per-cell column-cache path pays, measured by the svm kernel counters.
func TestParamSearchKernelEvalBudget(t *testing.T) {
	ds := buildTrainSet()
	ws := windowsFor(t, ds)
	kernels := []svm.Kernel{svm.Poly(0.1, 0, 3), svm.RBF(0.1)}
	cfg := Config{Algorithm: svm.OCSVM, Workers: 2}.withDefaults()

	before := svm.ReadKernelStats()
	if _, err := ParamSearch(ws, PaperParams, kernels, cfg); err != nil {
		t.Fatal(err)
	}
	gram := svm.ReadKernelStats().Sub(before)

	// The old path: one independent training (own column cache) per cell.
	before = svm.ReadKernelStats()
	for _, u := range []string{"user_1", "user_2"} {
		vecs := features.Vectors(capPrefix(ws[u], cfg.MaxTrainWindows))
		for _, kernel := range kernels {
			for _, param := range PaperParams {
				if _, err := svm.Train(cfg.Algorithm, vecs, param, svm.TrainConfig{Kernel: kernel}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	perCell := svm.ReadKernelStats().Sub(before)

	t.Logf("kernel evals: gram path %d, per-cell path %d (%.1f×), cache hits %d",
		gram.KernelEvals, perCell.KernelEvals,
		float64(perCell.KernelEvals)/float64(gram.KernelEvals), perCell.CacheHits)
	if gram.KernelEvals*10 > perCell.KernelEvals {
		t.Errorf("gram path used %d kernel evals, want ≤ 1/10 of per-cell %d",
			gram.KernelEvals, perCell.KernelEvals)
	}
	if want := uint64(len(kernels) * 2); gram.GramBuilds != want {
		t.Errorf("gram builds = %d, want %d (one per user×kernel row)", gram.GramBuilds, want)
	}
}

// TestParamSearchSharesDotsAcrossKernels is the cross-kernel sharing
// assertion: all kernel rows of a user (linear/poly/sigmoid/RBF — every
// family factors through x·y) must derive their Grams from one shared
// dot-product matrix, so a search over K kernels performs exactly one
// triangular dot pass per user — 1/K of what per-row Gram builds would pay.
func TestParamSearchSharesDotsAcrossKernels(t *testing.T) {
	ds := buildTrainSet()
	ws := windowsFor(t, ds)
	kernels := []svm.Kernel{svm.Linear(), svm.Poly(0.1, 0, 3), svm.RBF(0.1), svm.Sigmoid(0.1, 0)}
	cfg := Config{Algorithm: svm.OCSVM, Workers: 3}.withDefaults()
	users := []string{"user_1", "user_2"}

	var wantEvals uint64
	for _, u := range users {
		n := uint64(len(capPrefix(ws[u], cfg.MaxTrainWindows)))
		wantEvals += n * (n + 1) / 2
	}

	before := svm.ReadKernelStats()
	if _, err := ParamSearch(ws, []float64{0.5, 0.1}, kernels, cfg); err != nil {
		t.Fatal(err)
	}
	d := svm.ReadKernelStats().Sub(before)

	if d.KernelEvals != wantEvals {
		t.Errorf("grid kernel evals = %d, want exactly %d (one dot pass per user, shared by %d kernel rows)",
			d.KernelEvals, wantEvals, len(kernels))
	}
	if want := uint64(len(users)); d.DotBuilds != want {
		t.Errorf("dot builds = %d, want %d (one per user)", d.DotBuilds, want)
	}
	if want := uint64(len(users) * len(kernels)); d.GramBuilds != want {
		t.Errorf("gram builds = %d, want %d (one derived Gram per user×kernel row)", d.GramBuilds, want)
	}
}

func TestParamSearchErrors(t *testing.T) {
	ds := buildTrainSet()
	ws := windowsFor(t, ds)
	if _, err := ParamSearch(ws, nil, []svm.Kernel{svm.Linear()}, Config{Algorithm: svm.OCSVM}); err == nil {
		t.Error("empty params accepted")
	}
	if _, err := ParamSearch(map[string][]features.Window{}, []float64{0.5}, []svm.Kernel{svm.Linear()}, Config{Algorithm: svm.OCSVM}); err == nil {
		t.Error("no users accepted")
	}
}

func TestParamSearchRecordsCellErrors(t *testing.T) {
	ds := buildTrainSet()
	ws := windowsFor(t, ds)
	// An invalid kernel makes every cell fail but ParamSearch itself
	// succeeds, recording the error per cell.
	tables, err := ParamSearch(ws, []float64{0.5}, []svm.Kernel{{Kind: svm.KernelRBF, Gamma: -1}}, Config{Algorithm: svm.OCSVM})
	if err != nil {
		t.Fatal(err)
	}
	for u, tbl := range tables {
		if tbl.Cells[0][0].Err == nil {
			t.Errorf("%s: expected cell error", u)
		}
		if _, err := tbl.Best(); err == nil {
			t.Errorf("%s: Best succeeded with all cells failed", u)
		}
	}
}

func TestSubsampleAndCap(t *testing.T) {
	ws := make([]features.Window, 10)
	for i := range ws {
		ws[i].Count = i
	}
	if got := len(subsample(ws, 3)); got != 3 {
		t.Errorf("subsample len = %d", got)
	}
	if got := subsample(ws, 20); len(got) != 10 {
		t.Errorf("subsample overshoot len = %d", len(got))
	}
	if got := subsample(ws, -1); len(got) != 10 {
		t.Errorf("subsample unlimited len = %d", len(got))
	}
	if got := capPrefix(ws, 4); len(got) != 4 || got[0].Count != 0 {
		t.Errorf("capPrefix = %v", got)
	}
	if got := capPrefix(ws, -1); len(got) != 10 {
		t.Errorf("capPrefix unlimited len = %d", len(got))
	}
}

func TestWindowSearchHonorsCaps(t *testing.T) {
	ds := buildTrainSet()
	vocab := features.BuildFromDataset(ds)
	combos := []features.WindowConfig{{Duration: time.Minute, Shift: 30 * time.Second}}
	cfg := Config{Algorithm: svm.OCSVM, MaxTrainWindows: 10, MaxOtherWindows: 5}
	results, err := WindowSearch(ds, vocab, combos, svm.Linear(), 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 10 train windows the model has at most 10 SVs.
	_ = results
}

func TestAcceptHelper(t *testing.T) {
	v := sparse.New(map[int]float64{0: 1})
	m, err := svm.TrainOCSVM([]sparse.Vector{v, v, v, v}, 0.5, svm.TrainConfig{Kernel: svm.Linear()})
	if err != nil {
		t.Fatal(err)
	}
	ws := []features.Window{{Vector: v}}
	if got := eval.Accept(m, ws); got != 1 {
		t.Errorf("Accept = %v", got)
	}
}
