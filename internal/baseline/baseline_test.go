package baseline

import (
	"math"
	"testing"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/svm"
	"webtxprofile/internal/synth"
	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

var start = time.Date(2015, 1, 5, 9, 0, 0, 0, time.UTC)

func tx(off time.Duration, user, host, cat, super string) weblog.Transaction {
	mt := taxonomy.MediaType{}
	if super != "" {
		mt = taxonomy.MediaType{Super: super, Sub: "x"}
	}
	return weblog.Transaction{
		Timestamp: start.Add(off), Host: host, Scheme: taxonomy.SchemeHTTP,
		Action: taxonomy.ActionGet, UserID: user, SourceIP: "10.0.0.1",
		Category: cat, MediaType: mt, Reputation: taxonomy.MinimalRisk,
	}
}

func TestFlowsFromTransactions(t *testing.T) {
	txs := []weblog.Transaction{
		tx(0, "u", "a.com", "C", "text"),
		tx(2*time.Second, "u", "a.com", "C", "text"),
		tx(3*time.Second, "u", "b.com", "C", "video"),
		// Idle gap on a.com: new flow.
		tx(10*time.Minute, "u", "a.com", "C", "text"),
	}
	flows, err := FlowsFromTransactions(txs, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3 {
		t.Fatalf("flows = %d, want 3 (%+v)", len(flows), flows)
	}
	// First a.com flow spans 2 transactions.
	if flows[0].DestHost != "a.com" || flows[0].Duration() != 2*time.Second {
		t.Errorf("flow 0 = %+v", flows[0])
	}
	// Video flow is much heavier than text flows.
	var video, text *Flow
	for i := range flows {
		switch flows[i].DestHost {
		case "b.com":
			video = &flows[i]
		case "a.com":
			if text == nil {
				text = &flows[i]
			}
		}
	}
	if video.Bytes <= 4*text.Bytes {
		t.Errorf("video flow bytes %d not >> text %d", video.Bytes, text.Bytes)
	}
}

func TestFlowsErrors(t *testing.T) {
	if _, err := FlowsFromTransactions(nil, 0); err == nil {
		t.Error("zero idle gap accepted")
	}
	bad := []weblog.Transaction{
		tx(time.Minute, "u", "a.com", "C", "text"),
		tx(0, "u", "a.com", "C", "text"),
	}
	if _, err := FlowsFromTransactions(bad, time.Minute); err == nil {
		t.Error("unsorted transactions accepted")
	}
}

func TestFlowWindows(t *testing.T) {
	txs := []weblog.Transaction{
		tx(0, "u", "a.com", "C", "text"),
		tx(10*time.Second, "u", "b.com", "C", "text"),
		tx(70*time.Second, "u", "c.com", "C", "text"),
	}
	flows, err := FlowsFromTransactions(txs, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := FlowWindows(flows, features.WindowConfig{Duration: time.Minute, Shift: time.Minute}, "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].Count != 2 || ws[1].Count != 1 {
		t.Errorf("counts = %d, %d", ws[0].Count, ws[1].Count)
	}
	v := ws[0].Vector
	if v.At(colFlowCount) != 2 || v.At(colDistinctHosts) != 2 {
		t.Errorf("vector = %v", v)
	}
	if v.At(colMeanLogBytes) <= 0 {
		t.Error("log bytes not positive")
	}
	// Empty input.
	none, err := FlowWindows(nil, features.WindowConfig{Duration: time.Minute, Shift: time.Minute}, "u")
	if err != nil || none != nil {
		t.Errorf("empty: %v %v", none, err)
	}
	if _, err := FlowWindows(flows, features.WindowConfig{}, "u"); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMarkovSelfVsOther(t *testing.T) {
	// user A alternates between two categories; user B uses different
	// ones. A's model should accept A's held-out traffic and reject B's.
	var aTrain, aTest, bTest []weblog.Transaction
	for i := 0; i < 400; i++ {
		cat := "News"
		if i%3 == 0 {
			cat = "Games"
		}
		ttx := tx(time.Duration(i)*5*time.Second, "a", "a.com", cat, "text")
		if i < 300 {
			aTrain = append(aTrain, ttx)
		} else {
			aTest = append(aTest, ttx)
		}
	}
	for i := 0; i < 100; i++ {
		cat := "Banking"
		if i%2 == 0 {
			cat = "Travel"
		}
		bTest = append(bTest, tx(time.Duration(i)*5*time.Second, "b", "b.com", cat, "text"))
	}
	m, err := TrainMarkov("a", aTrain, 0.1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if self := m.AcceptanceRatio(aTest, 32); self < 0.6 {
		t.Errorf("self acceptance = %v", self)
	}
	if other := m.AcceptanceRatio(bTest, 32); other > 0.2 {
		t.Errorf("other acceptance = %v", other)
	}
	if m.UserID != "a" {
		t.Errorf("user = %q", m.UserID)
	}
	if math.IsInf(m.Threshold(), 0) {
		t.Error("threshold not finite")
	}
}

func TestMarkovErrors(t *testing.T) {
	one := []weblog.Transaction{tx(0, "u", "a.com", "C", "text")}
	if _, err := TrainMarkov("u", one, 0.1, 32); err == nil {
		t.Error("single transaction accepted")
	}
	two := []weblog.Transaction{one[0], tx(time.Second, "u", "a.com", "C", "text")}
	if _, err := TrainMarkov("u", two, 1.0, 32); err == nil {
		t.Error("outlier fraction 1 accepted")
	}
	m, err := TrainMarkov("u", two, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Score(one); !math.IsInf(s, -1) {
		t.Errorf("short sequence score = %v", s)
	}
	if m.AcceptanceRatio(one, 32) != 0 {
		t.Error("unscorable sequence accepted")
	}
}

func TestFlowBaselineWeakerThanTransactions(t *testing.T) {
	// The headline ablation: at D=60s windows, flow features barely
	// separate users that transaction features separate well — the
	// paper's argument against flow-record profiling for fast
	// identification (Sect. VI).
	cfg := synth.DefaultConfig()
	cfg.Users = 4
	cfg.SmallUsers = 0
	cfg.Devices = 4
	cfg.Weeks = 2
	cfg.Services = 120
	cfg.Archetypes = 5
	cfg.ConfusableUsers = 0
	cfg.ServicesPerUserMin = 10
	cfg.ServicesPerUserMax = 16
	cfg.WeeklyTxMedian = 1500
	cfg.WeeklyTxSigma = 0.3
	g, err := synth.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Generate()
	wcfg := features.WindowConfig{Duration: time.Minute, Shift: 30 * time.Second}

	// Transaction-feature models.
	vocab := features.BuildFromDataset(ds)
	txWindows, err := features.ComposeUsers(vocab, wcfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Flow-feature models.
	flowWindows, err := UserFlowWindows(ds, 5*time.Minute, wcfg)
	if err != nil {
		t.Fatal(err)
	}

	acc := func(windows map[string][]features.Window) float64 {
		users := ds.Users()
		var accSum float64
		for _, u := range users {
			ws := windows[u]
			if len(ws) > 400 {
				ws = ws[:400]
			}
			m, err := svm.TrainOCSVM(features.Vectors(ws), 0.1, svm.TrainConfig{Kernel: svm.Linear()})
			if err != nil {
				t.Fatal(err)
			}
			self := m.AcceptanceRatio(features.Vectors(ws))
			var other float64
			n := 0
			for _, o := range users {
				if o == u {
					continue
				}
				ows := windows[o]
				if len(ows) > 200 {
					ows = ows[:200]
				}
				other += m.AcceptanceRatio(features.Vectors(ows))
				n++
			}
			accSum += self - other/float64(n)
		}
		return accSum / float64(len(users))
	}

	txACC := acc(txWindows)
	flowACC := acc(flowWindows)
	if txACC <= flowACC {
		t.Errorf("transaction ACC %.3f not better than flow ACC %.3f", txACC, flowACC)
	}
	if txACC < 0.5 {
		t.Errorf("transaction ACC %.3f unexpectedly low", txACC)
	}
}
