package baseline

import (
	"fmt"
	"math"
	"sort"

	"webtxprofile/internal/weblog"
)

// MarkovModel is a first-order Markov chain over website categories — a
// light-weight stand-in for the per-service HMMs of Verde et al. [11]. A
// user is modeled by their category-transition distribution; a sequence is
// accepted when its mean per-transition log-likelihood clears a threshold
// calibrated on training data.
type MarkovModel struct {
	UserID string
	// states maps category -> index; index len(states) is the shared
	// "unknown" state.
	states map[string]int
	// logp[i][j] is the smoothed transition log-probability i -> j.
	logp [][]float64
	// threshold is the acceptance cut on mean log-likelihood.
	threshold float64
}

// TrainMarkov fits a category-transition model on a user's chronological
// transactions. outlierFrac plays the role of ν: the acceptance threshold
// is set at that quantile of the training sequences' own scores (scored
// over consecutive chunks of chunkSize transitions).
func TrainMarkov(user string, txs []weblog.Transaction, outlierFrac float64, chunkSize int) (*MarkovModel, error) {
	if len(txs) < 2 {
		return nil, fmt.Errorf("baseline: need at least 2 transactions, got %d", len(txs))
	}
	if outlierFrac < 0 || outlierFrac >= 1 {
		return nil, fmt.Errorf("baseline: outlier fraction %g out of [0,1)", outlierFrac)
	}
	if chunkSize < 2 {
		chunkSize = 32
	}
	// State space: observed categories plus one catch-all state.
	states := make(map[string]int)
	for i := range txs {
		c := txs[i].Category
		if _, ok := states[c]; !ok {
			states[c] = len(states)
		}
	}
	n := len(states) + 1 // +1 unknown
	counts := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
	}
	idx := func(c string) int {
		if i, ok := states[c]; ok {
			return i
		}
		return n - 1
	}
	for i := 1; i < len(txs); i++ {
		counts[idx(txs[i-1].Category)][idx(txs[i].Category)]++
	}
	logp := make([][]float64, n)
	for i := range logp {
		logp[i] = make([]float64, n)
		var rowSum float64
		for j := range counts[i] {
			rowSum += counts[i][j]
		}
		for j := range logp[i] {
			// Laplace smoothing keeps unseen transitions finite.
			logp[i][j] = math.Log((counts[i][j] + 1) / (rowSum + float64(n)))
		}
	}
	m := &MarkovModel{UserID: user, states: states, logp: logp}

	// Calibrate the threshold on the training data's own chunk scores.
	var scores []float64
	for lo := 0; lo+1 < len(txs); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(txs) {
			hi = len(txs)
		}
		if hi-lo < 2 {
			break
		}
		scores = append(scores, m.Score(txs[lo:hi]))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("baseline: no scorable chunks")
	}
	sort.Float64s(scores)
	k := int(outlierFrac * float64(len(scores)))
	if k > len(scores)-1 {
		k = len(scores) - 1
	}
	m.threshold = scores[k]
	return m, nil
}

// Score returns the mean per-transition log-likelihood of a transaction
// sequence under the model. Sequences shorter than 2 score -Inf.
func (m *MarkovModel) Score(txs []weblog.Transaction) float64 {
	if len(txs) < 2 {
		return math.Inf(-1)
	}
	n := len(m.logp)
	idx := func(c string) int {
		if i, ok := m.states[c]; ok {
			return i
		}
		return n - 1
	}
	var sum float64
	for i := 1; i < len(txs); i++ {
		sum += m.logp[idx(txs[i-1].Category)][idx(txs[i].Category)]
	}
	return sum / float64(len(txs)-1)
}

// Accept reports whether the sequence's score clears the calibrated
// threshold.
func (m *MarkovModel) Accept(txs []weblog.Transaction) bool {
	return m.Score(txs) >= m.threshold
}

// Threshold exposes the calibrated acceptance cut.
func (m *MarkovModel) Threshold() float64 { return m.threshold }

// AcceptanceRatio scores consecutive chunks of the sequence and returns
// the accepted fraction — the Markov counterpart of window acceptance.
func (m *MarkovModel) AcceptanceRatio(txs []weblog.Transaction, chunkSize int) float64 {
	if chunkSize < 2 {
		chunkSize = 32
	}
	total, accepted := 0, 0
	for lo := 0; lo+1 < len(txs); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(txs) {
			hi = len(txs)
		}
		if hi-lo < 2 {
			break
		}
		total++
		if m.Accept(txs[lo:hi]) {
			accepted++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(accepted) / float64(total)
}
