// Package baseline implements the comparators the paper positions itself
// against (Sect. VI): a coarse IP-flow-record profiler in the spirit of
// Verde et al. [11] (NetFlow features, no service knowledge) and a Markov
// service-transition model. Both plug into the same one-class classifiers
// and windowing as the main pipeline, so ablation benches can show why
// transaction-level features identify users faster than flow-level ones.
package baseline

import (
	"fmt"
	"math"
	"sort"
	"time"

	"webtxprofile/internal/features"
	"webtxprofile/internal/sparse"
	"webtxprofile/internal/weblog"
)

// Flow is a synthesized IP-flow record: the coarse view a NetFlow collector
// would have of the same traffic — endpoints and volumes, but none of the
// proxy's service augmentation.
type Flow struct {
	Start, End time.Time
	UserID     string
	SourceIP   string
	DestHost   string
	Packets    int
	Bytes      int
}

// Duration returns the flow duration.
func (f *Flow) Duration() time.Duration { return f.End.Sub(f.Start) }

// FlowsFromTransactions synthesizes flow records from transaction logs:
// consecutive transactions from one (user, device, destination host)
// within idleGap collapse into one flow. Packet and byte counts derive
// deterministically from the transactions' media types (video and download
// responses are heavy, text light), preserving the relative volume signal
// a NetFlow collector would see. Transactions must be time-sorted.
func FlowsFromTransactions(txs []weblog.Transaction, idleGap time.Duration) ([]Flow, error) {
	if idleGap <= 0 {
		return nil, fmt.Errorf("baseline: idle gap %v must be positive", idleGap)
	}
	type key struct{ user, src, dst string }
	open := make(map[key]*Flow)
	var flows []Flow
	flush := func(k key) {
		if f := open[k]; f != nil {
			flows = append(flows, *f)
			delete(open, k)
		}
	}
	for i := range txs {
		tx := &txs[i]
		if i > 0 && tx.Timestamp.Before(txs[i-1].Timestamp) {
			return nil, fmt.Errorf("baseline: transactions not sorted at index %d", i)
		}
		k := key{tx.UserID, tx.SourceIP, tx.Host}
		f := open[k]
		if f != nil && tx.Timestamp.Sub(f.End) > idleGap {
			flush(k)
			f = nil
		}
		if f == nil {
			open[k] = &Flow{
				Start: tx.Timestamp, End: tx.Timestamp,
				UserID: tx.UserID, SourceIP: tx.SourceIP, DestHost: tx.Host,
			}
			f = open[k]
		}
		f.End = tx.Timestamp
		pkts, bytes := txVolume(tx)
		f.Packets += pkts
		f.Bytes += bytes
	}
	for k := range open {
		flows = append(flows, *open[k])
	}
	sort.Slice(flows, func(i, j int) bool {
		if !flows[i].Start.Equal(flows[j].Start) {
			return flows[i].Start.Before(flows[j].Start)
		}
		return flows[i].DestHost < flows[j].DestHost
	})
	return flows, nil
}

// txVolume derives a deterministic packet/byte volume for one transaction
// from its media type — the part of the flow signal that correlates with
// content kind.
func txVolume(tx *weblog.Transaction) (packets, bytes int) {
	base := 6
	size := 4 << 10
	switch tx.MediaType.Super {
	case "video":
		base, size = 600, 2<<20
	case "audio":
		base, size = 150, 512<<10
	case "image":
		base, size = 30, 64<<10
	case "application":
		base, size = 80, 256<<10
	}
	// Small deterministic jitter from the host name keeps flows from
	// being byte-identical.
	h := 0
	for _, c := range tx.Host {
		h = (h*31 + int(c)) % 97
	}
	return base + h%7, size + h*137
}

// Flow feature columns (all numeric; aggregated by mean via the window
// accumulator's numeric path).
const (
	colFlowCount = iota
	colMeanDurationS
	colMeanLogBytes
	colMeanLogPackets
	colMeanGapS
	colDistinctHosts
	numFlowCols
)

// FlowVocabSize is the dimensionality of flow feature vectors.
const FlowVocabSize = numFlowCols

// FlowWindows aggregates one entity's flows into sliding windows of coarse
// numeric features: flow count, mean duration, mean log-volume, mean
// inter-flow gap and distinct destination count — the feature family of
// flow-based profiling [3], [11]. A flow belongs to every window its start
// falls into.
func FlowWindows(flows []Flow, cfg features.WindowConfig, entity string) ([]features.Window, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(flows) == 0 {
		return nil, nil
	}
	var windows []features.Window
	t0 := flows[0].Start
	last := flows[len(flows)-1].Start
	lo := 0
	for k := 0; ; k++ {
		start := t0.Add(time.Duration(k) * cfg.Shift)
		if start.After(last) {
			break
		}
		end := start.Add(cfg.Duration)
		for lo < len(flows) && flows[lo].Start.Before(start) {
			lo++
		}
		if lo >= len(flows) {
			break
		}
		var inWin []Flow
		users := make(map[string]int)
		for i := lo; i < len(flows) && flows[i].Start.Before(end); i++ {
			inWin = append(inWin, flows[i])
			users[flows[i].UserID]++
		}
		if len(inWin) == 0 {
			continue
		}
		windows = append(windows, features.Window{
			Start:      start,
			End:        end,
			Vector:     flowVector(inWin),
			Count:      len(inWin),
			Entity:     entity,
			UserCounts: users,
		})
	}
	return windows, nil
}

// flowVector summarizes the flows of one window.
func flowVector(flows []Flow) sparse.Vector {
	var durSum, logBytes, logPkts, gapSum float64
	hosts := make(map[string]bool, len(flows))
	for i := range flows {
		f := &flows[i]
		durSum += f.Duration().Seconds()
		logBytes += math.Log1p(float64(f.Bytes))
		logPkts += math.Log1p(float64(f.Packets))
		hosts[f.DestHost] = true
		if i > 0 {
			gapSum += f.Start.Sub(flows[i-1].Start).Seconds()
		}
	}
	n := float64(len(flows))
	dense := map[int]float64{
		colFlowCount:      n,
		colMeanDurationS:  durSum / n,
		colMeanLogBytes:   logBytes / n,
		colMeanLogPackets: logPkts / n,
		colDistinctHosts:  float64(len(hosts)),
	}
	if len(flows) > 1 {
		dense[colMeanGapS] = gapSum / (n - 1)
	}
	return sparse.New(dense)
}

// UserFlowWindows builds per-user flow windows for a whole dataset, the
// flow-based counterpart of features.ComposeUsers.
func UserFlowWindows(ds *weblog.Dataset, idleGap time.Duration, cfg features.WindowConfig) (map[string][]features.Window, error) {
	out := make(map[string][]features.Window)
	for _, u := range ds.Users() {
		flows, err := FlowsFromTransactions(ds.UserTransactions(u), idleGap)
		if err != nil {
			return nil, fmt.Errorf("baseline: flows for %s: %w", u, err)
		}
		ws, err := FlowWindows(flows, cfg, u)
		if err != nil {
			return nil, err
		}
		out[u] = ws
	}
	return out, nil
}
