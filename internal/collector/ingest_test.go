package collector

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/weblog"
)

// TestBinaryIngest: a DialBinary client's records arrive parsed and in
// order, interleaved with a plain log-line client on the same server.
func TestBinaryIngest(t *testing.T) {
	var g gather
	s, err := Listen("127.0.0.1:0", g.add)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 50
	bc, err := DialBinary(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		btx := sampleTx(i)
		btx.SourceIP = "10.50.0.1"
		if err := bc.Send(btx); err != nil {
			t.Fatal(err)
		}
		ltx := sampleTx(i)
		ltx.SourceIP = "10.50.1.1"
		if err := lc.Send(ltx); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lc.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return g.len() == 2*n })

	g.mu.Lock()
	defer g.mu.Unlock()
	next := map[string]int{}
	for _, tx := range g.txs {
		seq := next[tx.SourceIP]
		if want := sampleTx(seq).Timestamp; !tx.Timestamp.Equal(want) {
			t.Fatalf("%s out of order: got stamp %v, want %v", tx.SourceIP, tx.Timestamp, want)
		}
		next[tx.SourceIP]++
	}
	if fails := s.ParseFailures(); fails != 0 {
		t.Errorf("parse failures = %d, want 0", fails)
	}
}

// TestBinaryIngestSkipsInvalidRecord: a record that frames and decodes but
// fails semantic validation is counted and skipped; the connection (and
// its later valid records) survives.
func TestBinaryIngestSkipsInvalidRecord(t *testing.T) {
	var g gather
	s, err := Listen("127.0.0.1:0", g.add)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialBinary(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	bad := sampleTx(0)
	bad.UserID = "" // decodes fine, Validate rejects
	if err := sendRawBinary(c, bad); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(sampleTx(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return g.len() == 1 && s.ParseFailures() == 1 })
}

// sendRawBinary writes tx as a framed binary record without Send's
// client-side validation, to exercise the server-side reject path.
func sendRawBinary(c *Client, tx weblog.Transaction) error {
	rec := tx.AppendBinary(nil)
	var hdr [10]byte
	n := 0
	l := uint64(len(rec))
	for l >= 0x80 {
		hdr[n] = byte(l) | 0x80
		l >>= 7
		n++
	}
	hdr[n] = byte(l)
	if _, err := c.bw.Write(hdr[:n+1]); err != nil {
		return err
	}
	_, err := c.bw.Write(rec)
	return err
}

// TestIngestBackpressure: with a blocked handler and a small queue, the
// server must hold senders back on the sockets instead of buffering
// without bound — and deliver everything, in order, once the handler
// unblocks.
func TestIngestBackpressure(t *testing.T) {
	release := make(chan struct{})
	var g batchGather
	first := true
	handler := func(txs []weblog.Transaction) {
		if first {
			first = false
			<-release // wedge the ingest goroutine on its first delivery
		}
		g.add(txs)
	}
	const maxBatch, depth, n = 8, 16, 400
	s, err := ListenBatch("127.0.0.1:0", handler, BatchConfig{
		MaxBatch: maxBatch, FlushInterval: 5 * time.Millisecond, QueueDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sendErr := make(chan error, 1)
	go func() {
		c, err := Dial(s.Addr().String())
		if err != nil {
			sendErr <- err
			return
		}
		for i := 0; i < n; i++ {
			if err := c.Send(sampleTx(i)); err != nil {
				sendErr <- err
				return
			}
			if err := c.Flush(); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- c.Close()
	}()

	// While the handler is wedged the server can hold at most the queue,
	// the in-flight batch and whatever the kernel socket buffers absorbed —
	// Received must plateau far below n.
	waitFor(t, func() bool { return s.Received() >= int64(depth) })
	time.Sleep(100 * time.Millisecond)
	if got := s.Received(); got > int64(depth+maxBatch+1) {
		t.Errorf("received %d transactions while handler blocked, want <= %d (no backpressure?)", got, depth+maxBatch+1)
	}
	close(release)
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return g.len() == n })
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, tx := range g.txs {
		if !tx.Timestamp.Equal(sampleTx(i).Timestamp) {
			t.Fatalf("delivery out of order at %d after backpressure", i)
		}
	}
}

// TestServerGoroutineHygiene: a server that saw traffic on several
// connections leaves no goroutines behind after Close — the regression
// fence for the old per-connection flush timers, whose callbacks could
// still be in flight at close.
func TestServerGoroutineHygiene(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		var g batchGather
		s, err := ListenBatch("127.0.0.1:0", g.add, BatchConfig{MaxBatch: 4, FlushInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := Dial(s.Addr().String())
				if err != nil {
					return
				}
				for i := 0; i < 30; i++ {
					cl.Send(sampleTx(i))
				}
				cl.Close()
			}()
		}
		wg.Wait()
		waitFor(t, func() bool { return g.len() == 4*30 })
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })
}

// TestCloseDeliversQueuedTail: Close returns only after everything already
// read off the sockets has reached the handler.
func TestCloseDeliversQueuedTail(t *testing.T) {
	var g batchGather
	s, err := ListenBatch("127.0.0.1:0", g.add, BatchConfig{MaxBatch: 64, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 9
	for i := 0; i < n; i++ {
		if err := c.Send(sampleTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Received() == n })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := g.len(); got != n {
		t.Errorf("handler saw %d transactions after Close, want %d", got, n)
	}
}

// TestClientBinarySendAllocs gates the binary client's budget: a warm Send
// into the buffered writer allocates nothing.
func TestClientBinarySendAllocs(t *testing.T) {
	var g gather
	s, err := Listen("127.0.0.1:0", g.add)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialBinary(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx := sampleTx(0)
	if err := c.Send(tx); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.Send(tx); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Errorf("binary Send allocates %.1f times per record, want 0", avg)
	}
}
