package collector

import (
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/weblog"
)

// batchGather records delivered batches (copying each, since the batch
// slice is reused by the server).
type batchGather struct {
	mu      sync.Mutex
	txs     []weblog.Transaction
	batches int
	maxSeen int
}

func (g *batchGather) add(txs []weblog.Transaction) {
	g.mu.Lock()
	g.txs = append(g.txs, txs...)
	g.batches++
	if len(txs) > g.maxSeen {
		g.maxSeen = len(txs)
	}
	g.mu.Unlock()
}

func (g *batchGather) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.txs)
}

func TestServerBatchDelivery(t *testing.T) {
	var g batchGather
	s, err := ListenBatch("127.0.0.1:0", g.add, BatchConfig{MaxBatch: 8, FlushInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 21 // 2 full batches of 8 + a timer-flushed remainder of 5
	for i := 0; i < n; i++ {
		if err := c.Send(sampleTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return g.len() == n })

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.maxSeen > 8 {
		t.Errorf("batch of %d exceeds MaxBatch 8", g.maxSeen)
	}
	if g.batches < 3 {
		t.Errorf("batches = %d, want >= 3", g.batches)
	}
	for i, tx := range g.txs {
		if !tx.Timestamp.Equal(sampleTx(i).Timestamp) {
			t.Fatalf("batch delivery out of order at %d", i)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Received(); got != n {
		t.Errorf("received = %d, want %d", got, n)
	}
}

func TestServerBatchFlushOnDisconnect(t *testing.T) {
	var g batchGather
	// Long flush interval: only the connection close can flush the
	// partial batch.
	s, err := ListenBatch("127.0.0.1:0", g.add, BatchConfig{MaxBatch: 64, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Send(sampleTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return g.len() == 5 })
}

func TestListenBatchValidation(t *testing.T) {
	if _, err := ListenBatch("127.0.0.1:0", nil, BatchConfig{}); err == nil {
		t.Error("nil batch handler accepted")
	}
}
