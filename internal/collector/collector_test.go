package collector

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

func sampleTx(i int) weblog.Transaction {
	return weblog.Transaction{
		Timestamp: time.Date(2015, 1, 5, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		Host:      "svc.example.com", Scheme: taxonomy.SchemeHTTP,
		Action: taxonomy.ActionGet, UserID: "user_1",
		SourceIP: "10.0.0.1", Category: "Games",
		MediaType: taxonomy.MediaType{Super: "text", Sub: "html"},
		AppType:   "Rhapsody", Reputation: taxonomy.MinimalRisk,
	}
}

// gather collects handled transactions safely.
type gather struct {
	mu  sync.Mutex
	txs []weblog.Transaction
}

func (g *gather) add(tx weblog.Transaction) {
	g.mu.Lock()
	g.txs = append(g.txs, tx)
	g.mu.Unlock()
}

func (g *gather) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.txs)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

func TestServerReceivesTransactions(t *testing.T) {
	var g gather
	s, err := Listen("127.0.0.1:0", g.add)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Send(sampleTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return g.len() == n })
	if s.Received() != n {
		t.Errorf("Received = %d", s.Received())
	}
	if s.ParseFailures() != 0 {
		t.Errorf("ParseFailures = %d", s.ParseFailures())
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, tx := range g.txs {
		if tx.UserID != "user_1" {
			t.Fatalf("tx %d user = %s", i, tx.UserID)
		}
	}
}

func TestServerSkipsMalformedLines(t *testing.T) {
	var g gather
	s, err := Listen("127.0.0.1:0", g.add)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "# header comment\n")
	fmt.Fprintf(conn, "garbage line\n")
	fmt.Fprintf(conn, "%s\n", sampleTx(0).MarshalLine())
	fmt.Fprintf(conn, "\n")
	conn.Close()

	waitFor(t, func() bool { return g.len() == 1 })
	if s.ParseFailures() != 1 {
		t.Errorf("ParseFailures = %d, want 1", s.ParseFailures())
	}
}

func TestServerMultipleClients(t *testing.T) {
	var g gather
	s, err := Listen("127.0.0.1:0", g.add)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients, per = 4, 25
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if err := c.Send(sampleTx(i)); err != nil {
					t.Error(err)
					return
				}
			}
			c.Close()
		}()
	}
	wg.Wait()
	waitFor(t, func() bool { return g.len() == clients*per })
}

func TestServerCloseIdempotentAndStopsAccepting(t *testing.T) {
	s, err := Listen("127.0.0.1:0", func(weblog.Transaction) {})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Error("server still accepting after Close")
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := Listen("256.0.0.1:99999", func(weblog.Transaction) {}); err == nil {
		t.Error("bad address accepted")
	}
}

func TestClientSendValidates(t *testing.T) {
	s, err := Listen("127.0.0.1:0", func(weblog.Transaction) {})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := sampleTx(0)
	bad.UserID = ""
	if err := c.Send(bad); err == nil {
		t.Error("invalid transaction accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Skip("port 1 unexpectedly open")
	}
}
