// Package collector provides the network substrate for the paper's
// deployment scenario (Sect. I): a centralized continuous-authentication
// service receiving web-transaction logs from a secure proxy. The wire
// format is the newline-delimited log-line format of package weblog, so a
// proxy can stream its log file verbatim.
package collector

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"webtxprofile/internal/weblog"
)

// Handler consumes one parsed transaction. Handlers are called from
// per-connection goroutines and must be safe for concurrent use.
type Handler func(tx weblog.Transaction)

// Server accepts TCP connections carrying newline-delimited transaction
// log lines and dispatches parsed records to the handler. Malformed lines
// are counted and skipped — a log collector must outlive bad input.
type Server struct {
	ln      net.Listener
	handler Handler
	errLog  *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg         sync.WaitGroup
	received   atomic.Int64
	parseFails atomic.Int64
}

// Listen starts a collector on addr (e.g. "127.0.0.1:0") and begins
// accepting connections.
func Listen(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("collector: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:      ln,
		handler: handler,
		errLog:  log.New(discard{}, "", 0),
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetErrorLog directs malformed-line and connection diagnostics to l.
// Call before traffic arrives.
func (s *Server) SetErrorLog(l *log.Logger) {
	if l != nil {
		s.errLog = l
	}
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Received returns the count of successfully parsed transactions.
func (s *Server) Received() int64 { return s.received.Load() }

// ParseFailures returns the count of skipped malformed lines.
func (s *Server) ParseFailures() int64 { return s.parseFails.Load() }

// Close stops accepting, closes every live connection and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tx, err := weblog.ParseLine(line)
		if err != nil {
			s.parseFails.Add(1)
			s.errLog.Printf("collector: %s: %v", conn.RemoteAddr(), err)
			continue
		}
		s.received.Add(1)
		s.handler(tx)
	}
	if err := sc.Err(); err != nil {
		s.errLog.Printf("collector: %s: read: %v", conn.RemoteAddr(), err)
	}
}

// discard is an io.Writer that drops everything (log.Logger needs one).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Client streams transactions to a collector.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
}

// Dial connects to a collector at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, bw: bufio.NewWriter(conn)}, nil
}

// Send queues one transaction; call Flush (or Close) to push buffered
// records to the wire.
func (c *Client) Send(tx weblog.Transaction) error {
	if err := tx.Validate(); err != nil {
		return err
	}
	if _, err := c.bw.WriteString(tx.MarshalLine()); err != nil {
		return err
	}
	return c.bw.WriteByte('\n')
}

// Flush pushes buffered records to the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Close flushes and closes the connection.
func (c *Client) Close() error {
	flushErr := c.Flush()
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
