// Package collector provides the network substrate for the paper's
// deployment scenario (Sect. I): a centralized continuous-authentication
// service receiving web-transaction logs from a secure proxy. The default
// wire format is the newline-delimited log-line format of package weblog,
// so a proxy can stream its log file verbatim; a connection can upgrade
// itself to length-prefixed binary transaction records (see DialBinary)
// for an allocation-free ingest path.
//
// All connections feed one bounded ingest queue consumed by a single
// goroutine: when the handler falls behind, the queue fills and the
// connection goroutines block on the enqueue, which stops their socket
// reads and pushes back on the senders through TCP flow control instead of
// buffering without bound.
package collector

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"webtxprofile/internal/weblog"
)

// Handler consumes one parsed transaction. The handler is called from the
// server's single ingest goroutine, so calls never overlap; per-connection
// arrival order is preserved.
type Handler func(tx weblog.Transaction)

// BatchHandler consumes a batch of parsed transactions in arrival order —
// the shape the sharded monitor's FeedBatch wants, taking each shard lock
// once per batch instead of once per transaction. The handler is called
// from the server's single ingest goroutine, so calls never overlap;
// per-connection arrival order is preserved. The slice is reused after the
// call returns; handlers must not retain it.
type BatchHandler func(txs []weblog.Transaction)

// BatchConfig tunes batch ingestion. The zero value selects the defaults.
type BatchConfig struct {
	// MaxBatch flushes the pending batch once it holds this many
	// transactions (default 256).
	MaxBatch int
	// FlushInterval bounds how long a partial batch waits before being
	// flushed, keeping identification latency low on quiet links
	// (default 50ms).
	FlushInterval time.Duration
	// QueueDepth bounds the shared ingest queue, in transactions
	// (default 4×MaxBatch). When the queue is full, connection reads
	// block — backpressure reaches the proxies as TCP flow control.
	QueueDepth int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// maxLineBytes caps one log line, matching weblog.MaxBinaryRecord for the
// binary mode: a runaway sender cannot balloon memory.
const maxLineBytes = 1 << 20

// wirePreamble is the in-band upgrade request for binary-record mode. It
// is deliberately shaped as a comment line: a collector that predates the
// binary mode skips it and keeps expecting log lines, so a binary-capable
// client talking to an old server fails per record (counted, logged)
// rather than corrupting the stream.
const wirePreamble = "#wire2"

// qitem is one unit on the shared ingest queue: a transaction, or a flush
// marker enqueued when a connection ends so its partial batch is delivered
// without waiting for the timer.
type qitem struct {
	tx    weblog.Transaction
	flush bool
}

// Server accepts TCP connections carrying transaction records — log lines
// by default, length-prefixed binary records after a connection sends the
// wire preamble — and dispatches parsed records to the handler through the
// shared ingest queue. Malformed records are counted and skipped — a log
// collector must outlive bad input.
type Server struct {
	ln      net.Listener
	handler Handler
	batch   BatchHandler
	bcfg    BatchConfig
	errLog  *log.Logger

	queue chan qitem
	qdone chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg         sync.WaitGroup
	received   atomic.Int64
	parseFails atomic.Int64
}

// Listen starts a collector on addr (e.g. "127.0.0.1:0") and begins
// accepting connections.
func Listen(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("collector: nil handler")
	}
	return listen(addr, &Server{handler: handler, bcfg: BatchConfig{}.withDefaults()})
}

// ListenBatch starts a collector that delivers transactions in batches:
// the ingest goroutine accumulates up to cfg.MaxBatch records and flushes
// when the batch fills, when cfg.FlushInterval elapses, or when a
// connection ends.
func ListenBatch(addr string, handler BatchHandler, cfg BatchConfig) (*Server, error) {
	if handler == nil {
		return nil, errors.New("collector: nil batch handler")
	}
	return listen(addr, &Server{batch: handler, bcfg: cfg.withDefaults()})
}

func listen(addr string, s *Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.errLog = log.New(discard{}, "", 0)
	s.conns = make(map[net.Conn]struct{})
	s.queue = make(chan qitem, s.bcfg.QueueDepth)
	s.qdone = make(chan struct{})
	go s.consume()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetErrorLog directs malformed-record and connection diagnostics to l.
// Call before traffic arrives.
func (s *Server) SetErrorLog(l *log.Logger) {
	if l != nil {
		s.errLog = l
	}
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Received returns the count of successfully parsed transactions.
func (s *Server) Received() int64 { return s.received.Load() }

// ParseFailures returns the count of skipped malformed records.
func (s *Server) ParseFailures() int64 { return s.parseFails.Load() }

// Close stops accepting, closes every live connection, waits for the
// connection goroutines to drain and for the ingest goroutine to deliver
// everything still queued. When Close returns, no more handler calls will
// be made.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.qdone
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	close(s.queue)
	<-s.qdone
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// consume is the single ingest goroutine: it drains the shared queue into
// the handler, batching when the server runs in batch mode. One flush
// timer serves the whole server; it is armed when a partial batch starts
// waiting and stopped-and-drained whenever the batch flushes for another
// reason, so closing the server never strands a timer.
func (s *Server) consume() {
	defer close(s.qdone)
	if s.batch == nil {
		for it := range s.queue {
			if !it.flush {
				s.handler(it.tx)
			}
		}
		return
	}
	buf := make([]weblog.Transaction, 0, s.bcfg.MaxBatch)
	timer := time.NewTimer(s.bcfg.FlushInterval)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false // a value may be pending on timer.C
	flush := func() {
		if armed {
			if !timer.Stop() {
				<-timer.C
			}
			armed = false
		}
		if len(buf) > 0 {
			s.batch(buf)
			buf = buf[:0]
		}
	}
	defer flush()
	for {
		select {
		case it, ok := <-s.queue:
			if !ok {
				return // deferred flush delivers the tail
			}
			if it.flush {
				flush()
				continue
			}
			buf = append(buf, it.tx)
			if len(buf) >= s.bcfg.MaxBatch {
				flush()
			} else if !armed {
				timer.Reset(s.bcfg.FlushInterval)
				armed = true
			}
		case <-timer.C:
			armed = false
			if len(buf) > 0 {
				s.batch(buf)
				buf = buf[:0]
			}
		}
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if s.batch != nil {
		// Deliver the connection's tail immediately on disconnect rather
		// than waiting out the flush timer. The queue cannot be closed
		// before this send: Close waits for this goroutine first.
		defer func() { s.queue <- qitem{flush: true} }()
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		raw, err := readLine(br)
		if err != nil {
			if err != io.EOF {
				s.errLog.Printf("collector: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			continue
		}
		if line[0] == '#' {
			if string(line) == wirePreamble {
				s.ingestBinary(conn, br)
				return
			}
			continue
		}
		// The one steady-state allocation per transaction: the line is
		// copied out of the read buffer because ParseLine's fields alias it.
		tx, err := weblog.ParseLine(string(line))
		if err != nil {
			s.parseFails.Add(1)
			s.errLog.Printf("collector: %s: %v", conn.RemoteAddr(), err)
			continue
		}
		s.received.Add(1)
		s.queue <- qitem{tx: tx}
	}
}

// ingestBinary consumes uvarint-length-prefixed binary transaction records
// until the connection ends. Framing damage (a bad length, a short read)
// terminates the connection; a record that frames but does not decode or
// validate is counted and skipped like a malformed line.
func (s *Server) ingestBinary(conn net.Conn, br *bufio.Reader) {
	var rec []byte
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			if err != io.EOF {
				s.errLog.Printf("collector: %s: binary read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if n == 0 || n > weblog.MaxBinaryRecord {
			s.errLog.Printf("collector: %s: binary record of %d bytes out of range", conn.RemoteAddr(), n)
			return
		}
		if uint64(cap(rec)) < n {
			rec = make([]byte, n)
		}
		rec = rec[:n]
		if _, err := io.ReadFull(br, rec); err != nil {
			s.errLog.Printf("collector: %s: binary read: %v", conn.RemoteAddr(), err)
			return
		}
		tx, err := weblog.DecodeBinary(rec)
		if err == nil {
			err = tx.Validate()
		}
		if err != nil {
			s.parseFails.Add(1)
			s.errLog.Printf("collector: %s: %v", conn.RemoteAddr(), err)
			continue
		}
		s.received.Add(1)
		s.queue <- qitem{tx: tx}
	}
}

// readLine returns the next newline-terminated line, excluding the
// delimiter; a final unterminated line is returned before io.EOF. The
// returned bytes alias the reader's buffer and are only valid until the
// next read.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	switch err {
	case nil:
		return line[:len(line)-1], nil
	case io.EOF:
		if len(line) > 0 {
			return line, nil
		}
		return nil, io.EOF
	case bufio.ErrBufferFull:
		// Oversized line: fall through to the copying slow path.
	default:
		return nil, err
	}
	buf := append([]byte(nil), line...)
	for {
		if len(buf) > maxLineBytes {
			return nil, fmt.Errorf("line exceeds %d bytes", maxLineBytes)
		}
		line, err = br.ReadSlice('\n')
		buf = append(buf, line...)
		switch err {
		case nil:
			return buf[:len(buf)-1], nil
		case io.EOF:
			if len(buf) > 0 {
				return buf, nil
			}
			return nil, io.EOF
		case bufio.ErrBufferFull:
			continue
		default:
			return nil, err
		}
	}
}

// discard is an io.Writer that drops everything (log.Logger needs one).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Client streams transactions to a collector.
type Client struct {
	conn    net.Conn
	bw      *bufio.Writer
	binary  bool
	rec     []byte // reused record scratch (binary mode)
	scratch []byte // reused framed-record scratch (binary mode)
}

// Dial connects to a collector at addr, speaking the log-line format.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, bw: bufio.NewWriter(conn)}, nil
}

// DialBinary connects to a collector at addr and upgrades the connection
// to binary transaction records: Send then encodes with AppendBinary into
// a reused buffer instead of marshaling a log line, removing the per-send
// allocations. Requires a binary-capable collector; an older server skips
// the upgrade preamble as a comment and will count every record as a
// malformed line.
func DialBinary(addr string) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	if _, err := c.bw.WriteString(wirePreamble + "\n"); err != nil {
		c.conn.Close()
		return nil, err
	}
	c.binary = true
	return c, nil
}

// Send queues one transaction; call Flush (or Close) to push buffered
// records to the wire.
func (c *Client) Send(tx weblog.Transaction) error {
	if err := tx.Validate(); err != nil {
		return err
	}
	if c.binary {
		c.rec = tx.AppendBinary(c.rec[:0])
		c.scratch = binary.AppendUvarint(c.scratch[:0], uint64(len(c.rec)))
		c.scratch = append(c.scratch, c.rec...)
		_, err := c.bw.Write(c.scratch)
		return err
	}
	if _, err := c.bw.WriteString(tx.MarshalLine()); err != nil {
		return err
	}
	return c.bw.WriteByte('\n')
}

// Flush pushes buffered records to the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Close flushes and closes the connection.
func (c *Client) Close() error {
	flushErr := c.Flush()
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
