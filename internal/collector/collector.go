// Package collector provides the network substrate for the paper's
// deployment scenario (Sect. I): a centralized continuous-authentication
// service receiving web-transaction logs from a secure proxy. The wire
// format is the newline-delimited log-line format of package weblog, so a
// proxy can stream its log file verbatim.
package collector

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webtxprofile/internal/weblog"
)

// Handler consumes one parsed transaction. Handlers are called from
// per-connection goroutines and must be safe for concurrent use.
type Handler func(tx weblog.Transaction)

// BatchHandler consumes a batch of parsed transactions in arrival order —
// the shape the sharded monitor's FeedBatch wants, taking each shard lock
// once per batch instead of once per transaction. Batch handlers are
// called from per-connection goroutines (and their flush timers) and must
// be safe for concurrent use. The slice is reused after the call returns;
// handlers must not retain it.
type BatchHandler func(txs []weblog.Transaction)

// BatchConfig tunes batch ingestion. The zero value selects the defaults.
type BatchConfig struct {
	// MaxBatch flushes a connection's batch once it holds this many
	// transactions (default 256).
	MaxBatch int
	// FlushInterval bounds how long a partial batch waits before being
	// flushed, keeping identification latency low on quiet links
	// (default 50ms).
	FlushInterval time.Duration
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	return c
}

// Server accepts TCP connections carrying newline-delimited transaction
// log lines and dispatches parsed records to the handler. Malformed lines
// are counted and skipped — a log collector must outlive bad input.
type Server struct {
	ln      net.Listener
	handler Handler
	batch   BatchHandler
	bcfg    BatchConfig
	errLog  *log.Logger

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg         sync.WaitGroup
	received   atomic.Int64
	parseFails atomic.Int64
}

// Listen starts a collector on addr (e.g. "127.0.0.1:0") and begins
// accepting connections.
func Listen(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("collector: nil handler")
	}
	return listen(addr, &Server{handler: handler})
}

// ListenBatch starts a collector that delivers transactions in batches:
// each connection accumulates up to cfg.MaxBatch records and flushes when
// the batch fills, when cfg.FlushInterval elapses, or when the connection
// ends.
func ListenBatch(addr string, handler BatchHandler, cfg BatchConfig) (*Server, error) {
	if handler == nil {
		return nil, errors.New("collector: nil batch handler")
	}
	return listen(addr, &Server{batch: handler, bcfg: cfg.withDefaults()})
}

func listen(addr string, s *Server) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.errLog = log.New(discard{}, "", 0)
	s.conns = make(map[net.Conn]struct{})
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetErrorLog directs malformed-line and connection diagnostics to l.
// Call before traffic arrives.
func (s *Server) SetErrorLog(l *log.Logger) {
	if l != nil {
		s.errLog = l
	}
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Received returns the count of successfully parsed transactions.
func (s *Server) Received() int64 { return s.received.Load() }

// ParseFailures returns the count of skipped malformed lines.
func (s *Server) ParseFailures() int64 { return s.parseFails.Load() }

// Close stops accepting, closes every live connection and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var b *batcher
	deliver := s.handler
	if s.batch != nil {
		b = newBatcher(s.batch, s.bcfg)
		defer b.close()
		deliver = b.add
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tx, err := weblog.ParseLine(line)
		if err != nil {
			s.parseFails.Add(1)
			s.errLog.Printf("collector: %s: %v", conn.RemoteAddr(), err)
			continue
		}
		s.received.Add(1)
		deliver(tx)
	}
	if err := sc.Err(); err != nil {
		s.errLog.Printf("collector: %s: read: %v", conn.RemoteAddr(), err)
	}
}

// batcher accumulates one connection's transactions and flushes them to
// the batch handler when full, on a timer, or at connection end. The
// buffer is reused across flushes.
type batcher struct {
	h     BatchHandler
	max   int
	delay time.Duration

	mu    sync.Mutex
	buf   []weblog.Transaction
	timer *time.Timer
}

func newBatcher(h BatchHandler, cfg BatchConfig) *batcher {
	b := &batcher{h: h, max: cfg.MaxBatch, delay: cfg.FlushInterval,
		buf: make([]weblog.Transaction, 0, cfg.MaxBatch)}
	b.timer = time.AfterFunc(cfg.FlushInterval, b.flush)
	b.timer.Stop()
	return b
}

func (b *batcher) add(tx weblog.Transaction) {
	b.mu.Lock()
	b.buf = append(b.buf, tx)
	switch len(b.buf) {
	case b.max:
		b.flushLocked()
	case 1:
		b.timer.Reset(b.delay)
	}
	b.mu.Unlock()
}

func (b *batcher) flush() {
	b.mu.Lock()
	b.flushLocked()
	b.mu.Unlock()
}

func (b *batcher) flushLocked() {
	if len(b.buf) == 0 {
		return
	}
	b.h(b.buf)
	b.buf = b.buf[:0]
	b.timer.Stop()
}

func (b *batcher) close() {
	b.flush()
	b.timer.Stop()
}

// discard is an io.Writer that drops everything (log.Logger needs one).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Client streams transactions to a collector.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
}

// Dial connects to a collector at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, bw: bufio.NewWriter(conn)}, nil
}

// Send queues one transaction; call Flush (or Close) to push buffered
// records to the wire.
func (c *Client) Send(tx weblog.Transaction) error {
	if err := tx.Validate(); err != nil {
		return err
	}
	if _, err := c.bw.WriteString(tx.MarshalLine()); err != nil {
		return err
	}
	return c.bw.WriteByte('\n')
}

// Flush pushes buffered records to the wire.
func (c *Client) Flush() error { return c.bw.Flush() }

// Close flushes and closes the connection.
func (c *Client) Close() error {
	flushErr := c.Flush()
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
