package collector

import (
	"sync/atomic"
	"testing"
	"time"

	"webtxprofile/internal/taxonomy"
	"webtxprofile/internal/weblog"
)

// benchTx is a representative proxy transaction for the ingest benches.
func benchTx() weblog.Transaction {
	return weblog.Transaction{
		Timestamp: time.Date(2015, 5, 29, 5, 5, 4, 0, time.UTC),
		Host:      "www.inlinegames.com", Scheme: taxonomy.SchemeHTTP,
		Action: taxonomy.ActionGet, UserID: "user_9", SourceIP: "10.0.0.9",
		Category:  "Games",
		MediaType: taxonomy.MediaType{Super: "text", Sub: "html"},
		AppType:   "browser", Reputation: taxonomy.MinimalRisk,
	}
}

// benchCollectorIngest measures end-to-end collector throughput over
// loopback TCP — client encode, wire, server decode, batching, shared
// queue, handler delivery — for one sender in the given encoding.
func benchCollectorIngest(b *testing.B, binary bool) {
	var received atomic.Int64
	done := make(chan struct{})
	target := int64(b.N)
	srv, err := ListenBatch("127.0.0.1:0", func(txs []weblog.Transaction) {
		if received.Add(int64(len(txs))) >= target {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	}, BatchConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	dial := Dial
	if binary {
		dial = DialBinary
	}
	c, err := dial(srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	tx := benchTx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Timestamp = tx.Timestamp.Add(time.Millisecond)
		if err := c.Send(tx); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	// Closing the connection enqueues the conn-end flush marker, so a
	// final partial batch is delivered immediately instead of waiting out
	// the flush timer.
	c.Close()
	<-done
	b.StopTimer()
	if n := received.Load(); n < target {
		b.Fatalf("handler saw %d of %d transactions", n, target)
	}
}

// BenchmarkCollectorIngest compares the two sender encodings through the
// full ingest path: log lines parsed by the in-place scanner versus
// length-prefixed binary records decoded zero-copy (the #wire2 path).
func BenchmarkCollectorIngest(b *testing.B) {
	b.Run("lines", func(b *testing.B) { benchCollectorIngest(b, false) })
	b.Run("binary", func(b *testing.B) { benchCollectorIngest(b, true) })
}
