package collector

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"webtxprofile/internal/weblog"
)

// Shared-ingest regression suite: one ListenCollectorBatch server fed by
// many concurrent clients — the deployment shape of a vantage point with
// several proxies. integration_test.go only ever drives a single
// connection; these pin down the multi-client contract: batches fill
// under concurrent load, per-client transaction order survives, and a
// client disconnect flushes its partial batch instead of dropping it.

// clientTx marks a transaction with its client and sequence number so
// delivery can be audited per client: the client index rides in the
// source address, the sequence in the timestamp.
func clientTx(client, seq int) weblog.Transaction {
	tx := sampleTx(seq)
	tx.SourceIP = fmt.Sprintf("10.50.%d.1", client)
	return tx
}

// runClients streams per-client transaction sequences concurrently, each
// on its own connection, closing the connection right after its last
// send (no explicit server-side flush can be forced by the client).
func runClients(t *testing.T, addr string, clients, perClient int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perClient; i++ {
				if err := cl.Send(clientTx(c, i)); err != nil {
					errs <- err
					cl.Close()
					return
				}
			}
			errs <- cl.Close()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// auditDelivery checks nothing was lost and per-client order holds.
func auditDelivery(t *testing.T, g *batchGather, clients, perClient int) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	next := make([]int, clients)
	for _, tx := range g.txs {
		var c int
		if _, err := fmt.Sscanf(tx.SourceIP, "10.50.%d.1", &c); err != nil || c < 0 || c >= clients {
			t.Fatalf("unexpected source %s", tx.SourceIP)
		}
		want := sampleTx(next[c]).Timestamp
		if !tx.Timestamp.Equal(want) {
			t.Fatalf("client %d delivery out of order: got seq stamp %v, want %v", c, tx.Timestamp, want)
		}
		next[c]++
	}
	for c, n := range next {
		if n != perClient {
			t.Errorf("client %d: delivered %d transactions, want %d (loss on disconnect?)", c, n, perClient)
		}
	}
}

// TestSharedIngestBatchFill: with enough volume per connection, batches
// must actually fill to MaxBatch (the shape Monitor.FeedBatch wants) —
// not trickle out one timer flush at a time — and every transaction from
// every client must arrive, in per-client order.
func TestSharedIngestBatchFill(t *testing.T) {
	const clients, perClient, maxBatch = 8, 100, 16
	var g batchGather
	// A generous flush interval so full batches, not the timer, dominate
	// delivery while the burst is in flight.
	s, err := ListenBatch("127.0.0.1:0", g.add, BatchConfig{MaxBatch: maxBatch, FlushInterval: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	runClients(t, s.Addr().String(), clients, perClient)
	waitFor(t, func() bool { return g.len() == clients*perClient })

	g.mu.Lock()
	maxSeen, batches := g.maxSeen, g.batches
	g.mu.Unlock()
	if maxSeen != maxBatch {
		t.Errorf("largest batch = %d, want a full %d under sustained load", maxSeen, maxBatch)
	}
	if minBatches := clients * perClient / maxBatch; batches < minBatches/4 {
		t.Errorf("only %d batches for %d transactions — batching degenerated", batches, clients*perClient)
	}
	auditDelivery(t, &g, clients, perClient)
	if got := s.Received(); got != int64(clients*perClient) {
		t.Errorf("received = %d, want %d", got, clients*perClient)
	}
}

// TestSharedIngestDisconnectFlush: partial batches must survive client
// disconnects. The flush interval is an hour and every client's stream
// length is coprime to MaxBatch, so the only way the tail of each
// client's data reaches the handler is the connection-end flush.
func TestSharedIngestDisconnectFlush(t *testing.T) {
	const clients, perClient = 6, 37
	var g batchGather
	s, err := ListenBatch("127.0.0.1:0", g.add, BatchConfig{MaxBatch: 64, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	runClients(t, s.Addr().String(), clients, perClient)
	waitFor(t, func() bool { return g.len() == clients*perClient })
	auditDelivery(t, &g, clients, perClient)
	if fails := s.ParseFailures(); fails != 0 {
		t.Errorf("parse failures = %d, want 0", fails)
	}
}

// TestSharedIngestAbruptDisconnect: a client whose connection dies with
// data already on the wire (no clean shutdown beyond the TCP close) still
// gets everything it flushed delivered; nothing wedges the server for the
// remaining clients.
func TestSharedIngestAbruptDisconnect(t *testing.T) {
	const perClient = 23
	var g batchGather
	s, err := ListenBatch("127.0.0.1:0", g.add, BatchConfig{MaxBatch: 64, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Client 0 writes, flushes to the socket, then closes immediately.
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < perClient; i++ {
		if err := cl.Send(clientTx(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	// A second client keeps the server demonstrably live afterwards.
	runClients(t, s.Addr().String(), 1, perClient) // client index 0 again: audit as 1 client × 2 runs
	waitFor(t, func() bool { return g.len() == 2*perClient })
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.txs) != 2*perClient {
		t.Fatalf("delivered %d transactions, want %d", len(g.txs), 2*perClient)
	}
}
