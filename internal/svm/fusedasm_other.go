//go:build !amd64

package svm

// Off amd64 the packed kernels never run: asmKernelsSupported is false,
// so KernelsAuto resolves to the portable Go lane kernels and these stubs
// are unreachable.

// disablePackedKernels mirrors the amd64 test hook; it has no effect here
// because asmKernelsSupported is already false.
var disablePackedKernels bool

func asmKernelsSupported() bool { return false }

func accumGroup64(ord *int32, val *float64, n int, w float64, acc *float64) {
	panic("svm: packed kernel called without AVX-512 support")
}

func accumGroup32(ord *int32, val *float32, n int, w float32, acc *float32) {
	panic("svm: packed kernel called without AVX-512 support")
}

func fusedRBFSumBoundVec64(coef, snGH, dots []float64, b0, slope float64) float64 {
	panic("svm: packed kernel called without AVX-512 support")
}

func fusedRBFSumBoundVec32(coef, snGH []float64, dots []float32, b0, slope float64) float64 {
	panic("svm: packed kernel called without AVX-512 support")
}
