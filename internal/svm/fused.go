package svm

import (
	"math"

	"webtxprofile/internal/sparse"
)

// How each model of a FusedIndex is scored (see NewFusedIndex).
const (
	fusedLinear   uint8 = iota // prepared linear model: weight-vector postings
	fusedSV                    // prepared non-linear model: support-vector postings
	fusedFallback              // unprepared model: per-model generic decision
)

// screenSlack is the relative floating-point safety margin of the decision
// screen: a model is only screened out when its upper bound clears the
// accept tolerance by this fraction of the bound's magnitude, so the few
// ulps of rounding between the bound computation and the exact kernel loop
// can never flip an accept into a screened reject.
const screenSlack = 1e-9

// FusedConfig selects how a FusedIndex stores and accumulates postings.
type FusedConfig struct {
	// Float32 stores the postings values in float32 and runs the
	// per-window dot-product accumulators in float32 too, roughly halving
	// the index and scratch memory and the accumulation bandwidth. The
	// scalar kernel loop still runs in float64 on the converted dots.
	// Decisions then match the exact float64 path only within
	// Float32DecisionBound (instead of bit-identically), so accepts may
	// differ for windows within that bound of a model's boundary. The
	// zero value — exact float64 — is the default everywhere.
	Float32 bool
}

// FusedIndex merges every model's decision structure into one population-
// wide inverted index, so a single pass over a window's non-zeros
// accumulates the inputs of *all* models' decision functions at once —
// instead of re-walking the window once per model as the per-model
// svIndex/weight-vector path does. Two postings families share the pass:
//
//   - Linear postings, feature → (model, weight): each prepared linear
//     model contributes the non-zeros of its dense weight vector
//     w = Σᵢ αᵢxᵢ, and the pass accumulates w·x per model directly.
//   - Support-vector postings, feature → (global SV ordinal, value): each
//     prepared non-linear model's support vectors occupy a contiguous
//     range of global ordinals (svBase), and the pass accumulates xᵢ·x
//     per support vector, exactly as svIndex.dotsInto would — in the same
//     column-major order, so the accumulated sums are bit-identical.
//
// Postings within a column are laid out contiguously and sorted by model
// (resp. global ordinal), so the accumulation is one linear sweep per
// matched column. Models that are not prepared (hand-assembled without
// Validate) take the per-model fallback path.
//
// The index also caches, per model, the screening inputs of
// Scorer.AcceptMask: Σαᵢ and the min/max support-vector norms (every
// αᵢ > 0 by Validate, which makes Σαᵢ·max k an admissible bound on the
// kernel sum — see screenReject).
//
// A FusedIndex is immutable after build and safe for concurrent readers:
// Monitor shards share one index and attach per-shard Scorer scratch.
type FusedIndex struct {
	models []*Model
	cfg    FusedConfig
	kind   []uint8

	// Linear postings: for column c, linModel/linVal[linStarts[c]:linStarts[c+1]].
	linStarts []int32
	linModel  []int32
	linVal    []float64
	linVal32  []float32

	// SV postings: for column c, svOrd/svVal[svStarts[c]:svStarts[c+1]].
	svStarts []int32
	svOrd    []int32
	svVal    []float64
	svVal32  []float32

	// Per-model global SV ordinal ranges: model mi owns [svBase[mi],
	// svBase[mi+1]) (empty for linear/fallback models).
	svBase []int32
	// Per global ordinal: owning model, dual coefficient, ‖sv‖².
	svOwner []int32
	coef    []float64
	svNorms []float64

	// Per-model screening caches: Σαᵢ, min/max ‖svᵢ‖ and min ‖svᵢ‖²
	// (zero for linear and fallback models, which are never screened).
	sumAlpha []float64
	minNorm  []float64
	maxNorm  []float64
	snMin    []float64
}

// NewFusedIndex builds the fused population index over models. The models
// are shared, not copied; prepared models (Train, UnmarshalJSON, Validate)
// take the fused path, unprepared ones are recorded for per-model fallback.
func NewFusedIndex(models []*Model, cfg FusedConfig) *FusedIndex {
	n := len(models)
	ix := &FusedIndex{
		models:   models,
		cfg:      cfg,
		kind:     make([]uint8, n),
		svBase:   make([]int32, n+1),
		sumAlpha: make([]float64, n),
		minNorm:  make([]float64, n),
		maxNorm:  make([]float64, n),
		snMin:    make([]float64, n),
	}

	// Classify each model and measure both postings families.
	maxLinCol, maxSVCol := -1, -1
	totalLin, totalSV, numSVs := 0, 0, 0
	for mi, m := range models {
		switch {
		case m == nil:
			ix.kind[mi] = fusedFallback // fails at decision time, like the per-model path
		case m.w != nil && m.Kernel.Kind == KernelLinear:
			ix.kind[mi] = fusedLinear
			for c, wv := range m.w {
				if wv != 0 {
					totalLin++
					if c > maxLinCol {
						maxLinCol = c
					}
				}
			}
		case m.idx != nil:
			ix.kind[mi] = fusedSV
			numSVs += len(m.SVs)
			for _, sv := range m.SVs {
				totalSV += len(sv.Idx)
				if n := len(sv.Idx); n > 0 && int(sv.Idx[n-1]) > maxSVCol {
					maxSVCol = int(sv.Idx[n-1])
				}
			}
		default:
			ix.kind[mi] = fusedFallback
		}
		ix.svBase[mi+1] = int32(numSVs)
	}

	// Linear postings: counting sort by column, models in index order, so
	// postings within a column are sorted by model.
	ix.linStarts = make([]int32, maxLinCol+2)
	ix.linModel = make([]int32, totalLin)
	ix.linVal = make([]float64, totalLin)
	for mi, m := range models {
		if ix.kind[mi] != fusedLinear {
			continue
		}
		for c, wv := range m.w {
			if wv != 0 {
				ix.linStarts[c+1]++
			}
		}
	}
	for c := 1; c < len(ix.linStarts); c++ {
		ix.linStarts[c] += ix.linStarts[c-1]
	}
	linFill := make([]int32, maxLinCol+1)
	copy(linFill, ix.linStarts[:maxLinCol+1])
	for mi, m := range models {
		if ix.kind[mi] != fusedLinear {
			continue
		}
		for c, wv := range m.w {
			if wv == 0 {
				continue
			}
			p := linFill[c]
			ix.linModel[p] = int32(mi)
			ix.linVal[p] = wv
			linFill[c] = p + 1
		}
	}

	// SV postings: same counting sort over global ordinals, plus the
	// per-ordinal caches (owner, coefficient, norm) and the per-model
	// screening bounds.
	ix.svStarts = make([]int32, maxSVCol+2)
	ix.svOrd = make([]int32, totalSV)
	ix.svVal = make([]float64, totalSV)
	ix.svOwner = make([]int32, numSVs)
	ix.coef = make([]float64, numSVs)
	ix.svNorms = make([]float64, numSVs)
	for mi, m := range models {
		if ix.kind[mi] != fusedSV {
			continue
		}
		for _, sv := range m.SVs {
			for _, c := range sv.Idx {
				ix.svStarts[c+1]++
			}
		}
	}
	for c := 1; c < len(ix.svStarts); c++ {
		ix.svStarts[c] += ix.svStarts[c-1]
	}
	svFill := make([]int32, maxSVCol+1)
	copy(svFill, ix.svStarts[:maxSVCol+1])
	for mi, m := range models {
		if ix.kind[mi] != fusedSV {
			continue
		}
		base := ix.svBase[mi]
		sumA, minN, maxN := 0.0, math.Inf(1), 0.0
		for si, sv := range m.SVs {
			g := base + int32(si)
			ix.svOwner[g] = int32(mi)
			ix.coef[g] = m.Coef[si]
			ix.svNorms[g] = m.svNorms[si]
			sumA += m.Coef[si]
			if m.svNorms[si] < minN {
				minN = m.svNorms[si]
			}
			if m.svNorms[si] > maxN {
				maxN = m.svNorms[si]
			}
			for k, c := range sv.Idx {
				p := svFill[c]
				ix.svOrd[p] = g
				ix.svVal[p] = sv.Val[k]
				svFill[c] = p + 1
			}
		}
		ix.sumAlpha[mi] = sumA
		ix.snMin[mi] = minN
		ix.minNorm[mi] = math.Sqrt(minN)
		ix.maxNorm[mi] = math.Sqrt(maxN)
	}

	if cfg.Float32 {
		ix.linVal32 = toFloat32(ix.linVal)
		ix.svVal32 = toFloat32(ix.svVal)
		ix.linVal, ix.svVal = nil, nil
	}
	return ix
}

func toFloat32(v []float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// NumModels returns the number of models fused into the index.
func (ix *FusedIndex) NumModels() int { return len(ix.models) }

// numSVs returns the total support-vector count across fused models.
func (ix *FusedIndex) numSVs() int { return int(ix.svBase[len(ix.models)]) }

// accumulateFused is the single shared pass of the fused engine: it walks
// x's non-zeros once, adding into the per-model weight accumulators (wx)
// and the per-global-ordinal dot accumulators (dots), and stamps the
// models whose support vectors were touched with the scorer's epoch.
// Both accumulator families must be zero on entry (clearFused restores
// that by re-walking the same postings). Returns the postings visited.
//
// For T = float64 the accumulation order and arithmetic are identical to
// svIndex.dotsInto (column-major over x, postings in build order), so the
// fused dots are bit-identical to the per-model path.
func accumulateFused[T float32 | float64](ix *FusedIndex, linVal, svVal []T, x sparse.Vector, wx, dots []T, marks []uint64, epoch uint64) int {
	visited := 0
	if lim := int32(len(ix.linStarts)) - 1; lim > 0 {
		for k, c := range x.Idx {
			if c >= lim {
				break // x.Idx is sorted: everything after is out of range too
			}
			s, e := ix.linStarts[c], ix.linStarts[c+1]
			if s == e {
				continue
			}
			xv := T(x.Val[k])
			for p := s; p < e; p++ {
				wx[ix.linModel[p]] += xv * linVal[p]
			}
			visited += int(e - s)
		}
	}
	if lim := int32(len(ix.svStarts)) - 1; lim > 0 {
		for k, c := range x.Idx {
			if c >= lim {
				break
			}
			s, e := ix.svStarts[c], ix.svStarts[c+1]
			if s == e {
				continue
			}
			xv := T(x.Val[k])
			for p := s; p < e; p++ {
				g := ix.svOrd[p]
				dots[g] += xv * svVal[p]
				marks[ix.svOwner[g]] = epoch
			}
			visited += int(e - s)
		}
	}
	return visited
}

// clearFused re-walks exactly the postings accumulateFused touched for x
// and zeroes their accumulator cells, leaving the scratch all-zero again
// in O(matched postings) instead of O(population).
func clearFused[T float32 | float64](ix *FusedIndex, x sparse.Vector, wx, dots []T) {
	if lim := int32(len(ix.linStarts)) - 1; lim > 0 {
		for _, c := range x.Idx {
			if c >= lim {
				break
			}
			for p := ix.linStarts[c]; p < ix.linStarts[c+1]; p++ {
				wx[ix.linModel[p]] = 0
			}
		}
	}
	if lim := int32(len(ix.svStarts)) - 1; lim > 0 {
		for _, c := range x.Idx {
			if c >= lim {
				break
			}
			for p := ix.svStarts[c]; p < ix.svStarts[c+1]; p++ {
				dots[ix.svOrd[p]] = 0
			}
		}
	}
}

// fusedLinearDecision folds an accumulated weight dot product into the
// decision value, mirroring the linear branch of Model.decisionScratch.
func fusedLinearDecision(m *Model, wx, nx float64) float64 {
	switch m.Algo {
	case OCSVM:
		return wx - m.Rho
	case SVDD:
		return m.R2 - m.SumAA + 2*wx - nx
	default:
		panic("svm: Decision on invalid model")
	}
}

// fusedSVDecision evaluates model mi's exact decision value from the
// accumulated per-SV dot products — the same scalar kernel loop as
// Model.decisionIndexed, reading the model's contiguous ordinal range.
// For T = float64 the result is bit-identical to the per-model path.
func fusedSVDecision[T float32 | float64](ix *FusedIndex, mi int, dots []T, nx float64) float64 {
	m := ix.models[mi]
	lo, hi := ix.svBase[mi], ix.svBase[mi+1]
	sum := fusedKernelSum(m.Kernel, ix.coef[lo:hi], ix.svNorms[lo:hi], dots[lo:hi], nx)
	switch m.Algo {
	case OCSVM:
		return sum - m.Rho
	case SVDD:
		return m.R2 - m.SumAA + 2*sum - m.Kernel.evalSelf(nx)
	default:
		panic("svm: Decision on invalid model")
	}
}

// fusedKernelSum computes Σᵢ αᵢ·k(xᵢ,x) from accumulated dot products,
// kernel-specialized exactly like Model.decisionIndexed (same operations
// in the same order, so float64 sums are bit-identical to that path).
func fusedKernelSum[T float32 | float64](k Kernel, coef, sn []float64, dots []T, nx float64) float64 {
	var sum float64
	switch k.Kind {
	case KernelPoly:
		g, c0 := k.Gamma, k.Coef0
		if k.Degree == 3 { // LIBSVM's default degree, worth a closed form
			for i := range dots {
				b := g*float64(dots[i]) + c0
				sum += coef[i] * b * b * b
			}
		} else {
			for i := range dots {
				sum += coef[i] * ipow(g*float64(dots[i])+c0, k.Degree)
			}
		}
	case KernelRBF:
		g := k.Gamma
		for i := range dots {
			d2 := sn[i] + nx - 2*float64(dots[i])
			if d2 < 0 {
				d2 = 0
			}
			sum += coef[i] * math.Exp(-g*d2)
		}
	case KernelSigmoid:
		g, c0 := k.Gamma, k.Coef0
		for i := range dots {
			sum += coef[i] * math.Tanh(g*float64(dots[i])+c0)
		}
	default: // linear models take the weight-vector path; kept for completeness
		for i := range dots {
			sum += coef[i] * float64(dots[i])
		}
	}
	return sum
}

// fusedDotRange returns [dmin, dmax] ∋ 0 covering the accumulated dot
// products (0 is always included: untouched support vectors hold an
// exact zero).
func fusedDotRange[T float32 | float64](dots []T) (dmin, dmax float64) {
	for i := range dots {
		d := float64(dots[i])
		if d < dmin {
			dmin = d
		} else if d > dmax {
			dmax = d
		}
	}
	return dmin, dmax
}

// kernelMax bounds k(xᵢ,x) from above given that every support-vector dot
// product lies in [dlo, dhi] and (for RBF) every squared distance is at
// least d2lo. Admissibility per kernel: polynomial b^d is monotone in b
// for odd d and convex for even d (max at an interval endpoint either
// way); RBF exp(−γd²) is decreasing in d²; tanh is increasing.
func kernelMax(k Kernel, dlo, dhi, d2lo float64) float64 {
	switch k.Kind {
	case KernelPoly:
		hi := ipow(k.Gamma*dhi+k.Coef0, k.Degree)
		if k.Degree%2 == 0 {
			if lo := ipow(k.Gamma*dlo+k.Coef0, k.Degree); lo > hi {
				hi = lo
			}
		}
		return hi
	case KernelRBF:
		if d2lo < 0 {
			d2lo = 0
		}
		return math.Exp(-k.Gamma * d2lo)
	case KernelSigmoid:
		return math.Tanh(k.Gamma*dhi + k.Coef0)
	case KernelLinear:
		return dhi // linear models take the weight path; kept for completeness
	default:
		return math.Inf(1)
	}
}

// rejectWithSum reports whether a proven upper bound s on the kernel sum
// Σαᵢk(xᵢ,x), substituted into the decision function, falls below the
// accept tolerance by more than the floating-point safety margin. A
// false return says nothing; the exact loop decides.
func rejectWithSum(m *Model, s, nx, tol float64) bool {
	var ub float64
	switch m.Algo {
	case OCSVM:
		ub = s - m.Rho
	case SVDD:
		ub = m.R2 - m.SumAA + 2*s - m.Kernel.evalSelf(nx)
	default:
		return false
	}
	return ub < -(tol + screenSlack*(1+math.Abs(s)))
}

// screenReject reports whether the model provably cannot accept x: the
// decision value's upper bound — Σαᵢ·max k, admissible because Validate
// guarantees every αᵢ > 0 — rules the window out.
func screenReject(m *Model, sumA, dlo, dhi, d2lo, nx, tol float64) bool {
	return rejectWithSum(m, sumA*kernelMax(m.Kernel, dlo, dhi, d2lo), nx, tol)
}

// fusedRBFSumBound bounds Σαᵢ·exp(−γ‖xᵢ−x‖²) from above per support
// vector, transcendental-free: for z ≥ 0 every Taylor term of eᶻ is
// positive, so eᶻ ≥ Σ_{k≤6} zᵏ/k! and exp(−z) ≤ 1/Σ_{k≤6} zᵏ/k!. Degree
// 6 keeps the overshoot under ~1.5× across the z range rejected windows
// actually produce (z ≈ 3–8), where the cubic bound is 4× too loose.
// Each d2ᵢ uses exactly the exact loop's arithmetic, and negative d2 (a
// rounding artifact the exact loop clamps to k=1) is bounded by 1. This
// third screening level is what separates a model with one near-ish
// support vector from a model that genuinely accepts: the interval bound
// Σα·exp(−γ·min d²) charges every vector at the closest one's distance,
// while this sum charges each at its own.
func fusedRBFSumBound[T float32 | float64](coef, sn []float64, dots []T, gamma, nx float64) float64 {
	var sum float64
	for i := range dots {
		z := gamma * (sn[i] + nx - 2*float64(dots[i]))
		if z <= 0 {
			sum += coef[i]
			continue
		}
		p := 1 + z*(1+z*(1.0/2+z*(1.0/6+z*(1.0/24+z*(1.0/120+z*(1.0/720))))))
		sum += coef[i] / p
	}
	return sum
}

// screenSV runs the layered decision screen for non-linear model mi.
//
// Level 1 is O(1): Cauchy–Schwarz bounds every dot product by
// ‖xᵢ‖·‖x‖ using the cached norm extrema (for RBF, equivalently
// ‖xᵢ−x‖ ≥ |‖xᵢ‖−‖x‖|) — no accumulated state read at all. Untouched
// models (no posting matched the window, so every dot is exactly zero)
// get the tighter dlo = dhi = 0 interval. Level 2 is O(#SVs of mi) but
// transcendental-free, reading the model's accumulated dots directly:
// RBF takes the per-support-vector algebraic bound (fusedRBFSumBound) in
// one pass; polynomial and sigmoid re-apply the interval bound to the
// dots' actual range. In float32 mode the level-1 norm product does not
// bound the float32-rounded accumulators, so touched models go straight
// to level 2, whose bounds are computed from the very values the exact
// loop would consume.
func (s *Scorer) screenSV(mi int, touched bool, nx, normX float64) bool {
	ix := s.ix
	m := ix.models[mi]
	sumA := ix.sumAlpha[mi]
	tol := m.acceptTol()
	if !touched {
		return screenReject(m, sumA, 0, 0, ix.snMin[mi]+nx, nx, tol)
	}
	if !ix.cfg.Float32 {
		mn := ix.maxNorm[mi] * normX
		var gap float64
		if normX > ix.maxNorm[mi] {
			gap = normX - ix.maxNorm[mi]
		} else if normX < ix.minNorm[mi] {
			gap = ix.minNorm[mi] - normX
		}
		if screenReject(m, sumA, -mn, mn, gap*gap, nx, tol) {
			return true
		}
	}
	lo, hi := ix.svBase[mi], ix.svBase[mi+1]
	if m.Kernel.Kind == KernelRBF {
		var sb float64
		if ix.cfg.Float32 {
			sb = fusedRBFSumBound(ix.coef[lo:hi], ix.svNorms[lo:hi], s.dots32[lo:hi], m.Kernel.Gamma, nx)
		} else {
			sb = fusedRBFSumBound(ix.coef[lo:hi], ix.svNorms[lo:hi], s.dots[lo:hi], m.Kernel.Gamma, nx)
		}
		return rejectWithSum(m, sb, nx, tol)
	}
	var dlo, dhi float64
	if ix.cfg.Float32 {
		dlo, dhi = fusedDotRange(s.dots32[lo:hi])
	} else {
		dlo, dhi = fusedDotRange(s.dots[lo:hi])
	}
	return screenReject(m, sumA, dlo, dhi, 0, nx, tol)
}

// Float32DecisionBound returns the documented accuracy contract of the
// float32 fused mode for model m on window x: the float32-mode decision
// value differs from the exact float64 value by at most this much. The
// bound combines the worst-case float32 storage/accumulation error of a
// dot product (≈ (nnz+2)·2⁻²⁴·‖x‖·max‖svᵢ‖, with generous constant) with
// the kernel's Lipschitz constant in the dot product (RBF: 2γ since
// k ≤ 1; sigmoid: γ since tanh' ≤ 1; polynomial: dγ·B^(d−1) on the
// attainable |γ·d+c₀| ≤ B interval; linear: 1) and Σαᵢ. It is
// deliberately loose — a cheap certificate, not a tight estimate.
func Float32DecisionBound(m *Model, x sparse.Vector) float64 {
	const eps32 = 1.0 / (1 << 24)
	nnz := float64(len(x.Idx) + 2)
	nx := x.NormSq()
	normX := math.Sqrt(nx)
	floor := 1e-12 * (1 + math.Abs(m.Rho) + math.Abs(m.R2) + math.Abs(m.SumAA))

	if m.Kernel.Kind == KernelLinear && m.w != nil {
		var nw float64
		for _, wv := range m.w {
			nw += wv * wv
		}
		err := 8 * nnz * eps32 * (1 + normX*math.Sqrt(nw))
		if m.Algo == SVDD {
			err *= 2
		}
		return err + floor
	}

	sn := m.svNorms
	if sn == nil {
		sn = norms(m.SVs)
	}
	maxSN, sumA := 0.0, 0.0
	for i := range sn {
		if sn[i] > maxSN {
			maxSN = sn[i]
		}
		sumA += m.Coef[i]
	}
	maxDot := normX * math.Sqrt(maxSN)
	errDot := 8 * nnz * eps32 * (1 + maxDot)

	var lip float64
	k := m.Kernel
	switch k.Kind {
	case KernelRBF:
		lip = 2 * k.Gamma
	case KernelSigmoid:
		lip = k.Gamma
	case KernelPoly:
		b := k.Gamma*maxDot + math.Abs(k.Coef0) + 1
		lip = float64(k.Degree) * k.Gamma * ipow(b, k.Degree-1)
	default:
		lip = 1
	}
	err := sumA * lip * errDot
	if m.Algo == SVDD {
		err *= 2
	}
	return err + floor
}
